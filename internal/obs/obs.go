// Package obs is the observability layer of the simulation pipeline: atomic
// counters, monotonic stage timers, fixed-bucket log-scale histograms and
// per-worker utilisation stats, collected into a versioned Snapshot that the
// commands serialise next to their results.
//
// The package is a zero-dependency leaf (standard library only) so every
// layer of the pipeline — the simulator, the trace cache, the sweep
// scheduler, the bench harness — can depend on it without cycles.
//
// The collector contract (see DESIGN.md, "Observability"):
//
//   - A nil *Collector is the disabled state. Every method of every type in
//     this package is safe on a nil receiver and is a zero-allocation no-op,
//     so instrumented hot loops carry no branch-prediction-visible cost and
//     no allocations when metrics are off.
//   - Collection never changes simulation results: collectors only observe.
//     Result output with metrics on is byte-identical to metrics off.
//   - All mutation is lock-free (atomics); many goroutines may write the
//     same collector concurrently. Snapshot reads each value atomically —
//     the snapshot is per-value consistent, not a global atomic cut, which
//     is sufficient for monotonic counters (documented in DESIGN.md).
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// SnapshotVersion identifies the metrics JSON schema. Bump it when a field
// changes meaning, so downstream parsers can reject what they don't know.
const SnapshotVersion = 1

// Stage enumerates the timed stages of the simulation pipeline.
type Stage int

// Pipeline stages.
const (
	// StageRead is time spent inside the trace reader: file read,
	// decompression and packet decode. On the batched pipeline it accrues on
	// the prefetch producer goroutine; on cache loads it accrues on the
	// loading worker.
	StageRead Stage = iota
	// StageWarmup is consumer time simulating batches that lie wholly
	// inside the warm-up window (predictor trains, mispredictions not
	// counted). Attribution is at batch granularity: a batch straddling the
	// warm-up boundary counts toward StageSim.
	StageWarmup
	// StageSim is consumer time in the predict+train+track loop past
	// warm-up.
	StageSim
	// StagePrefetchStall is consumer time blocked waiting for the next
	// decoded batch — non-zero when decode is the bottleneck.
	StagePrefetchStall
	// StageProduceStall is producer time blocked waiting for a free buffer
	// or for the consumer to accept a batch — non-zero when simulation is
	// the bottleneck (the healthy state).
	StageProduceStall
	// StageCacheWait is worker time blocked waiting for another worker's
	// in-flight load of the same trace (single-flight coalescing).
	StageCacheWait
	// StageJournal is worker time spent making sweep results durable:
	// encoding, writing and fsyncing cell records and in-flight checkpoints
	// of the resume journal.
	StageJournal
	numStages
)

// stageNames indexes Stage for snapshots; keep in sync with the constants.
var stageNames = [numStages]string{
	"read", "warmup", "sim", "prefetch_stall", "produce_stall", "cache_wait", "journal",
}

// Ctr enumerates the counters of the pipeline.
type Ctr int

// Pipeline counters. The cache_* counters mirror tracecache.Stats so live
// progress can read them without reaching into the cache.
const (
	// CtrEvents is dynamic branch events simulated (all predictors).
	CtrEvents Ctr = iota
	// CtrBatches is decoded batches delivered by readers.
	CtrBatches
	// CtrCellsDone is completed (trace, predictor) cells of a sweep.
	CtrCellsDone
	// CtrCellsTotal is the size of the sweep matrix (a gauge, set once).
	CtrCellsTotal
	// CtrQueueDepth is the number of sweep cells not yet completed (gauge).
	CtrQueueDepth
	CtrCacheHits
	CtrCacheMisses
	CtrCacheEvictions
	// CtrCacheCoalesced is Acquire calls that joined another worker's
	// in-flight load instead of starting their own (single-flight sharing).
	CtrCacheCoalesced
	CtrCacheTooBig
	// CtrCacheBytes is the decoded bytes currently resident (gauge).
	CtrCacheBytes
	// CtrJournalRecords is records durably appended to the sweep journal
	// (finished cells plus in-flight checkpoints).
	CtrJournalRecords
	// CtrJournalBytes is bytes appended to the sweep journal, framing
	// included — the numerator of the journal-overhead bench stage.
	CtrJournalBytes
	// CtrCheckpoints is in-flight cell checkpoints written to the journal.
	CtrCheckpoints
	// CtrCellsReplayed is sweep cells satisfied from the journal of a
	// previous run without simulating (gauge, set once before dispatch).
	CtrCellsReplayed
	// CtrCellsDrained is sweep cells abandoned by a graceful drain —
	// never started, or interrupted and checkpointed for resume.
	CtrCellsDrained
	// CtrDraining is 1 once a graceful drain was requested (gauge).
	CtrDraining
	// CtrDispatchKernel is simulated batches dispatched to a predictor's
	// native BatchPredictor kernel (the fused TrainBatch fast path).
	CtrDispatchKernel
	// CtrDispatchScalar is simulated batches that went through the scalar
	// Predict/Train/Track loop instead: the predictor has no kernel, or the
	// batch straddles a warm-up/limit boundary and takes the careful path.
	CtrDispatchScalar
	numCtrs
)

// String returns the counter's snapshot key, as it appears in
// Snapshot.Counters and the -metrics output.
func (c Ctr) String() string { return ctrNames[c] }

// ctrNames indexes Ctr for snapshots; keep in sync with the constants.
var ctrNames = [numCtrs]string{
	"events", "batches", "cells_done", "cells_total", "queue_depth",
	"cache_hits", "cache_misses", "cache_evictions", "cache_coalesced",
	"cache_too_big", "cache_bytes",
	"journal_records", "journal_bytes", "checkpoints",
	"cells_replayed", "cells_drained", "draining",
	"dispatch_kernel", "dispatch_scalar",
}

// Hist enumerates the histograms of the pipeline.
type Hist int

// Pipeline histograms.
const (
	// HistBatchReadNs is the per-batch reader latency (decompress+decode).
	HistBatchReadNs Hist = iota
	// HistCellNs is the per-cell duration of a sweep (one trace through one
	// predictor).
	HistCellNs
	// HistBatchEvents is the event count of each simulated batch, recorded
	// at dispatch so -metrics shows how much of a run actually moved in
	// kernel-sized batches versus short edge batches.
	HistBatchEvents
	numHists
)

// String returns the histogram's snapshot key, as it appears in
// Snapshot.Histograms and the -metrics output.
func (h Hist) String() string { return histNames[h] }

// histNames indexes Hist for snapshots; keep in sync with the constants.
var histNames = [numHists]string{"batch_read_ns", "cell_ns", "batch_events"}

// Counter is a monotonically increasing (or gauge-style Store'd) uint64.
// The zero value is ready to use; all methods are nil-safe no-ops.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Store sets the counter to n (gauge semantics).
func (c *Counter) Store(n uint64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Load returns the current value, 0 on a nil counter.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Timer accumulates wall-clock durations of one pipeline stage. Durations
// from concurrent goroutines sum, so a stage's total can exceed the run's
// wall time on a parallel sweep (it is CPU-seconds, not elapsed seconds).
type Timer struct {
	ns    atomic.Int64
	count atomic.Uint64
}

// Add accrues one observation of d.
func (t *Timer) Add(d time.Duration) {
	if t != nil {
		t.ns.Add(int64(d))
		t.count.Add(1)
	}
}

// Since accrues the time elapsed since start, as returned by Collector.Now.
// On a disabled collector start is the zero Time and t is nil, so nothing is
// computed.
func (t *Timer) Since(start time.Time) {
	if t != nil {
		t.Add(time.Since(start))
	}
}

// Total returns the accumulated duration, 0 on a nil timer.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Count returns how many observations accrued, 0 on a nil timer.
func (t *Timer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// histBuckets is the fixed bucket count of every histogram: bucket i counts
// values v with bits.Len64(v) == i, i.e. power-of-two ranges [2^(i-1), 2^i).
// 64 buckets cover the full uint64 range with no configuration and no
// allocation, which is what keeps Observe wait-free.
const histBuckets = 65

// Histogram counts observations into fixed log2-scale buckets. The zero
// value is ready to use; all methods are nil-safe no-ops.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds (negative clamps to 0).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// WorkerStats is the per-worker record of a parallel sweep.
type WorkerStats struct {
	busyNs atomic.Int64
	cells  atomic.Uint64
}

// Record accrues one completed cell that took d of worker time.
func (w *WorkerStats) Record(d time.Duration) {
	if w != nil {
		w.busyNs.Add(int64(d))
		w.cells.Add(1)
	}
}

// Collector aggregates every metric of one run or sweep. Construct with New;
// a nil *Collector is the disabled state and all operations on it (and on
// anything it returns) are zero-allocation no-ops.
type Collector struct {
	start  time.Time
	stages [numStages]Timer
	ctrs   [numCtrs]Counter
	hists  [numHists]Histogram

	mu      sync.Mutex
	workers []*WorkerStats
}

// New returns an enabled collector whose wall clock starts now.
func New() *Collector {
	return &Collector{start: time.Now()}
}

// Enabled reports whether the collector is collecting.
func (c *Collector) Enabled() bool { return c != nil }

// Now returns the current time on an enabled collector and the zero Time on
// a disabled one, so hot paths skip the clock read entirely when metrics are
// off. Pair with Timer.Since.
func (c *Collector) Now() time.Time {
	if c == nil {
		return time.Time{}
	}
	return time.Now()
}

// Stage returns the timer of stage s (nil when disabled).
func (c *Collector) Stage(s Stage) *Timer {
	if c == nil {
		return nil
	}
	return &c.stages[s]
}

// Ctr returns counter k (nil when disabled).
func (c *Collector) Ctr(k Ctr) *Counter {
	if c == nil {
		return nil
	}
	return &c.ctrs[k]
}

// Hist returns histogram h (nil when disabled).
func (c *Collector) Hist(h Hist) *Histogram {
	if c == nil {
		return nil
	}
	return &c.hists[h]
}

// Worker returns the stats slot of worker i, growing the registry as needed.
// Nil when disabled. Slots are stable: the same i always yields the same
// *WorkerStats.
func (c *Collector) Worker(i int) *WorkerStats {
	if c == nil || i < 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.workers) <= i {
		c.workers = append(c.workers, &WorkerStats{})
	}
	return c.workers[i]
}

// StageSnapshot is one stage's totals in a Snapshot.
type StageSnapshot struct {
	// Seconds is accumulated stage time; on parallel runs it sums across
	// goroutines (CPU-seconds), so it can exceed WallSeconds.
	Seconds float64 `json:"seconds"`
	// Count is how many timed sections accrued.
	Count uint64 `json:"count"`
}

// HistBucket is one non-empty bucket of a histogram snapshot.
type HistBucket struct {
	// Le is the bucket's exclusive upper bound (a power of two); values v in
	// the bucket satisfy Le/2 <= v < Le (the first bucket holds v == 0).
	Le uint64 `json:"le"`
	// Count is the number of observations in the bucket.
	Count uint64 `json:"count"`
}

// HistSnapshot is one histogram's non-empty buckets plus totals.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// WorkerSnapshot is one worker's share of a sweep.
type WorkerSnapshot struct {
	Worker int `json:"worker"`
	// Cells is how many (trace, predictor) cells the worker completed.
	Cells uint64 `json:"cells"`
	// BusySeconds is time spent simulating (not waiting for work).
	BusySeconds float64 `json:"busy_seconds"`
	// Utilization is BusySeconds over the collector's wall time, in [0, 1]
	// (modulo clock skew).
	Utilization float64 `json:"utilization"`
}

// Snapshot is the versioned serialisable state of a collector. Map keys
// serialise sorted (encoding/json), so two snapshots of the same state are
// byte-identical.
type Snapshot struct {
	Version     int                      `json:"metrics_version"`
	WallSeconds float64                  `json:"wall_seconds"`
	Stages      map[string]StageSnapshot `json:"stages,omitempty"`
	Counters    map[string]uint64        `json:"counters,omitempty"`
	Histograms  map[string]HistSnapshot  `json:"histograms,omitempty"`
	Workers     []WorkerSnapshot         `json:"workers,omitempty"`
}

// Snapshot captures the collector's current state. Safe to call while
// writers are active: each value is read atomically (per-value consistency).
// A nil collector yields an empty versioned snapshot.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{Version: SnapshotVersion}
	if c == nil {
		return s
	}
	wall := time.Since(c.start).Seconds()
	s.WallSeconds = wall
	for i := range c.stages {
		t := &c.stages[i]
		if t.Count() == 0 {
			continue
		}
		if s.Stages == nil {
			s.Stages = make(map[string]StageSnapshot, numStages)
		}
		s.Stages[stageNames[i]] = StageSnapshot{Seconds: t.Total().Seconds(), Count: t.Count()}
	}
	for i := range c.ctrs {
		v := c.ctrs[i].Load()
		if v == 0 {
			continue
		}
		if s.Counters == nil {
			s.Counters = make(map[string]uint64, numCtrs)
		}
		s.Counters[ctrNames[i]] = v
	}
	for i := range c.hists {
		h := &c.hists[i]
		var hs HistSnapshot
		for b := range h.buckets {
			n := h.buckets[b].Load()
			if n == 0 {
				continue
			}
			le := uint64(0)
			switch {
			case b >= 64: // top bucket: v >= 2^63, no finite power-of-two bound
				le = ^uint64(0)
			case b > 0:
				le = 1 << b // bits.Len64(v) == b  =>  v < 2^b
			}
			hs.Buckets = append(hs.Buckets, HistBucket{Le: le, Count: n})
			hs.Count += n
		}
		if hs.Count == 0 {
			continue
		}
		hs.Sum = h.sum.Load()
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistSnapshot, numHists)
		}
		s.Histograms[histNames[i]] = hs
	}
	c.mu.Lock()
	workers := make([]*WorkerStats, len(c.workers))
	copy(workers, c.workers)
	c.mu.Unlock()
	for i, w := range workers {
		ws := WorkerSnapshot{
			Worker:      i,
			Cells:       w.cells.Load(),
			BusySeconds: time.Duration(w.busyNs.Load()).Seconds(),
		}
		if wall > 0 {
			ws.Utilization = ws.BusySeconds / wall
		}
		s.Workers = append(s.Workers, ws)
	}
	return s
}
