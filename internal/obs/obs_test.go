package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCollectorBasics(t *testing.T) {
	c := New()
	c.Stage(StageRead).Add(2 * time.Second)
	c.Stage(StageRead).Add(time.Second)
	c.Ctr(CtrEvents).Add(10)
	c.Ctr(CtrEvents).Add(5)
	c.Ctr(CtrCacheBytes).Store(42)
	c.Hist(HistBatchReadNs).Observe(3)
	c.Hist(HistBatchReadNs).Observe(1000)
	c.Worker(1).Record(time.Second)
	c.Worker(0).Record(2 * time.Second)

	if got := c.Stage(StageRead).Total(); got != 3*time.Second {
		t.Errorf("StageRead total = %v, want 3s", got)
	}
	if got := c.Stage(StageRead).Count(); got != 2 {
		t.Errorf("StageRead count = %d, want 2", got)
	}
	if got := c.Ctr(CtrEvents).Load(); got != 15 {
		t.Errorf("events = %d, want 15", got)
	}
	if got := c.Ctr(CtrCacheBytes).Load(); got != 42 {
		t.Errorf("cache bytes = %d, want 42", got)
	}

	s := c.Snapshot()
	if s.Version != SnapshotVersion {
		t.Errorf("version = %d, want %d", s.Version, SnapshotVersion)
	}
	if s.Stages["read"].Count != 2 || s.Stages["read"].Seconds != 3 {
		t.Errorf("read stage snapshot = %+v", s.Stages["read"])
	}
	if s.Counters["events"] != 15 {
		t.Errorf("counters = %v", s.Counters)
	}
	if _, ok := s.Stages["sim"]; ok {
		t.Errorf("untouched stage serialized: %v", s.Stages)
	}
	h := s.Histograms["batch_read_ns"]
	if h.Count != 2 || h.Sum != 1003 {
		t.Errorf("histogram = %+v", h)
	}
	// 3 has bit length 2 -> bucket le=4; 1000 has bit length 10 -> le=1024.
	want := []HistBucket{{Le: 4, Count: 1}, {Le: 1024, Count: 1}}
	if len(h.Buckets) != 2 || h.Buckets[0] != want[0] || h.Buckets[1] != want[1] {
		t.Errorf("buckets = %v, want %v", h.Buckets, want)
	}
	if len(s.Workers) != 2 {
		t.Fatalf("workers = %v", s.Workers)
	}
	if s.Workers[0].BusySeconds != 2 || s.Workers[0].Cells != 1 || s.Workers[1].BusySeconds != 1 {
		t.Errorf("worker snapshots = %+v", s.Workers)
	}
	if s.Workers[0].Utilization <= 0 {
		t.Errorf("worker 0 utilization = %v, want > 0", s.Workers[0].Utilization)
	}
}

// TestNilCollectorNoOps: the whole disabled surface must be callable and
// inert — the contract instrumented code relies on.
func TestNilCollectorNoOps(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	if !c.Now().IsZero() {
		t.Error("nil collector Now() is not the zero time")
	}
	c.Stage(StageSim).Add(time.Second)
	c.Stage(StageSim).Since(c.Now())
	c.Ctr(CtrEvents).Add(1)
	c.Ctr(CtrEvents).Store(1)
	c.Hist(HistCellNs).Observe(1)
	c.Hist(HistCellNs).ObserveDuration(time.Second)
	c.Worker(3).Record(time.Second)
	if got := c.Stage(StageSim).Total(); got != 0 {
		t.Errorf("nil stage accumulated %v", got)
	}
	s := c.Snapshot()
	if s.Version != SnapshotVersion || s.Stages != nil || s.Counters != nil || s.Workers != nil {
		t.Errorf("nil snapshot not empty: %+v", s)
	}
}

// TestDisabledCollectorZeroAlloc is the off-path guard: every operation an
// instrumented hot loop performs on a disabled collector must allocate
// nothing.
func TestDisabledCollectorZeroAlloc(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(1000, func() {
		start := c.Now()
		c.Stage(StageRead).Since(start)
		c.Stage(StageSim).Add(time.Second)
		c.Ctr(CtrEvents).Add(4096)
		c.Ctr(CtrCacheBytes).Store(1)
		c.Hist(HistBatchReadNs).ObserveDuration(time.Millisecond)
		c.Worker(0).Record(time.Millisecond)
		_ = c.Enabled()
	})
	if allocs != 0 {
		t.Errorf("disabled collector ops allocate %v per run, want 0", allocs)
	}
}

// TestEnabledHotOpsZeroAlloc: the per-batch operations must not allocate
// even when enabled — Snapshot may allocate, the hot path may not.
func TestEnabledHotOpsZeroAlloc(t *testing.T) {
	c := New()
	w := c.Worker(0) // registered once, outside the hot loop
	allocs := testing.AllocsPerRun(1000, func() {
		c.Stage(StageRead).Add(time.Millisecond)
		c.Ctr(CtrEvents).Add(4096)
		c.Hist(HistBatchReadNs).Observe(1 << 20)
		w.Record(time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("enabled hot ops allocate %v per run, want 0", allocs)
	}
}

// TestConcurrentWriters exercises the lock-free paths under -race and
// checks the totals add up.
func TestConcurrentWriters(t *testing.T) {
	c := New()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Ctr(CtrEvents).Add(1)
				c.Stage(StageSim).Add(time.Microsecond)
				c.Hist(HistCellNs).Observe(uint64(i))
				c.Worker(g % 4).Record(time.Microsecond)
				if i%100 == 0 {
					c.Snapshot() // concurrent reads must be safe
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Ctr(CtrEvents).Load(); got != goroutines*per {
		t.Errorf("events = %d, want %d", got, goroutines*per)
	}
	s := c.Snapshot()
	if s.Stages["sim"].Count != goroutines*per {
		t.Errorf("sim stage count = %d, want %d", s.Stages["sim"].Count, goroutines*per)
	}
	if s.Histograms["cell_ns"].Count != goroutines*per {
		t.Errorf("histogram count = %d", s.Histograms["cell_ns"].Count)
	}
	var cells uint64
	for _, w := range s.Workers {
		cells += w.Cells
	}
	if cells != goroutines*per {
		t.Errorf("worker cells = %d, want %d", cells, goroutines*per)
	}
}

// TestSnapshotJSONDeterministic: the same state serialises to the same
// bytes (map keys sort), so metrics sections diff cleanly.
func TestSnapshotJSONDeterministic(t *testing.T) {
	c := New()
	c.Stage(StageRead).Add(time.Second)
	c.Stage(StageSim).Add(time.Second)
	for k := Ctr(0); k < numCtrs; k++ {
		c.Ctr(k).Add(uint64(k) + 1)
	}
	s := c.Snapshot()
	a, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("snapshot JSON not deterministic:\n%s\n%s", a, b)
	}
	if !strings.Contains(string(a), `"metrics_version":1`) {
		t.Errorf("snapshot JSON missing version: %s", a)
	}
}

func TestHistogramTopBucket(t *testing.T) {
	c := New()
	c.Hist(HistCellNs).Observe(^uint64(0)) // bit length 64 -> top bucket
	h := c.Snapshot().Histograms["cell_ns"]
	if len(h.Buckets) != 1 || h.Buckets[0].Le != ^uint64(0) || h.Buckets[0].Count != 1 {
		t.Errorf("top bucket = %+v", h.Buckets)
	}
}

func TestRenderProgress(t *testing.T) {
	c := New()
	c.Ctr(CtrCellsDone).Add(4)
	c.Ctr(CtrCellsTotal).Store(16)
	c.Ctr(CtrEvents).Add(2_000_000)
	c.Ctr(CtrCacheHits).Add(3)
	c.Ctr(CtrCacheMisses).Add(1)
	line := RenderProgress(c.Snapshot(), 2*time.Second)
	for _, want := range []string{"4/16 cells", "1.0M ev/s", "cache 75.0% hit", "ETA 6s"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
	// Completed sweeps report the total time, not an ETA.
	c.Ctr(CtrCellsDone).Add(12)
	line = RenderProgress(c.Snapshot(), 2*time.Second)
	if !strings.Contains(line, "done in 2s") {
		t.Errorf("final line %q missing completion time", line)
	}
}

func TestStartProgressWritesAndStops(t *testing.T) {
	var buf bytes.Buffer
	c := New()
	c.Ctr(CtrCellsTotal).Store(4)
	c.Ctr(CtrCellsDone).Add(4)
	stop := StartProgress(&buf, c, 10*time.Millisecond)
	time.Sleep(35 * time.Millisecond)
	stop()
	out := buf.String()
	if !strings.Contains(out, "4/4 cells") {
		t.Errorf("progress output %q missing cells", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("progress output does not end with newline: %q", out)
	}
	// Disabled reporter: no writes, stop is a no-op.
	var silent bytes.Buffer
	StartProgress(&silent, nil, time.Millisecond)()
	if silent.Len() != 0 {
		t.Errorf("nil-collector progress wrote %q", silent.String())
	}
}
