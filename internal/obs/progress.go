package obs

import (
	"fmt"
	"io"
	"time"
)

// DefaultProgressInterval is how often the progress line refreshes.
const DefaultProgressInterval = 500 * time.Millisecond

// Progress periodically renders a single carriage-return-refreshed status
// line for a long sweep: cells done/total, simulated events per second,
// decoded-trace cache hit rate, and an ETA extrapolated from the completion
// rate. It reads the collector's counters; it never touches the pipeline.
type Progress struct {
	w        io.Writer
	col      *Collector
	interval time.Duration
	start    time.Time
	stop     chan struct{}
	done     chan struct{}
}

// StartProgress launches a reporter writing to w (conventionally stderr)
// every interval (<= 0 means DefaultProgressInterval). It returns a stop
// function that renders one final line, terminates it with a newline, and
// waits for the reporter goroutine to exit; the stop function is safe to
// call exactly once. A nil collector yields a no-op reporter.
func StartProgress(w io.Writer, col *Collector, interval time.Duration) (stop func()) {
	if col == nil || w == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	p := &Progress{
		w: w, col: col, interval: interval, start: time.Now(),
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go p.run()
	return func() {
		close(p.stop)
		<-p.done
	}
}

func (p *Progress) run() {
	defer close(p.done)
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			fmt.Fprintf(p.w, "\r%s", p.line())
		case <-p.stop:
			fmt.Fprintf(p.w, "\r%s\n", p.line())
			return
		}
	}
}

// line renders the current status from the collector's counters.
func (p *Progress) line() string {
	elapsed := time.Since(p.start)
	return RenderProgress(p.col.Snapshot(), elapsed)
}

// RenderProgress formats one progress line from a snapshot and the elapsed
// wall time. Exposed as a pure function so tests can pin the format.
func RenderProgress(s Snapshot, elapsed time.Duration) string {
	done := s.Counters[ctrNames[CtrCellsDone]]
	total := s.Counters[ctrNames[CtrCellsTotal]]
	events := s.Counters[ctrNames[CtrEvents]]
	hits := s.Counters[ctrNames[CtrCacheHits]]
	misses := s.Counters[ctrNames[CtrCacheMisses]]

	line := fmt.Sprintf("%d/%d cells", done, total)
	if sec := elapsed.Seconds(); sec > 0 {
		line += fmt.Sprintf(" | %s ev/s", siRate(float64(events)/sec))
	}
	if hits+misses > 0 {
		line += fmt.Sprintf(" | cache %.1f%% hit", 100*float64(hits)/float64(hits+misses))
	}
	switch {
	case total > 0 && done >= total:
		line += fmt.Sprintf(" | done in %s", roundDuration(elapsed))
	case done > 0 && total > done:
		eta := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
		line += fmt.Sprintf(" | ETA %s", roundDuration(eta))
	}
	return line
}

// siRate renders an events-per-second rate with an SI suffix.
func siRate(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}

// roundDuration trims a duration to a human scale for the progress line.
func roundDuration(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(100 * time.Millisecond)
	}
	return d.Round(time.Millisecond)
}
