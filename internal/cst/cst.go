// Package cst implements a ChampSim-Style Trace: a binary format with one
// fixed-size record per executed instruction (not just branches), consumed
// by the cycle-level processor model in internal/uarch.
//
// The format stands in for the champsimtrace format used by the DPC3 trace
// set in the paper's evaluation (§VII-A). Like ChampSim's input_instr, each
// 64-byte record carries the instruction pointer, destination/source
// registers and destination/source memory addresses; branches are not
// described explicitly but inferred from reads and writes of the special
// instruction-pointer, stack-pointer and flags registers, and the branch
// target is recovered from the IP of the next record. This is why the
// format is an order of magnitude larger per instruction than SBBT is per
// branch — the effect Table I quantifies (42× for DPC3).
//
// Record layout (64 bytes, little endian):
//
//	bytes 0-7   instruction pointer
//	byte  8     is_branch
//	byte  9     branch_taken
//	bytes 10-11 destination registers
//	bytes 12-15 source registers
//	bytes 16-31 destination memory addresses (2 × uint64)
//	bytes 32-63 source memory addresses (4 × uint64)
//
// A register slot value of 0 means "unused".
package cst

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mbplib/internal/bp"
)

// Special architectural registers, mirroring ChampSim's champsim::REG_*.
const (
	RegInvalid            = 0
	RegStackPointer       = 6
	RegInstructionPointer = 26
	RegFlags              = 25
	// RegGeneralFirst is the first register number free for general use.
	RegGeneralFirst = 32
	// NumRegs is the size of the architectural register file modeled.
	NumRegs = 256
)

// RecordSize is the encoded size of one instruction record.
const RecordSize = 64

// Magic opens every CST trace, followed by a little-endian uint64
// instruction count.
var Magic = [4]byte{'C', 'S', 'T', '1'}

// HeaderSize is the encoded size of the trace header.
const HeaderSize = 12

// Instruction is one executed instruction.
type Instruction struct {
	IP          uint64
	IsBranch    bool
	BranchTaken bool
	DestRegs    [2]uint8
	SrcRegs     [4]uint8
	DestMem     [2]uint64
	SrcMem      [4]uint64
}

// readsReg reports whether the instruction reads architectural register r.
func (in *Instruction) readsReg(r uint8) bool {
	for _, s := range in.SrcRegs {
		if s == r {
			return true
		}
	}
	return false
}

// writesReg reports whether the instruction writes architectural register r.
func (in *Instruction) writesReg(r uint8) bool {
	for _, d := range in.DestRegs {
		if d == r {
			return true
		}
	}
	return false
}

// readsGeneral reports whether the instruction reads any general register.
func (in *Instruction) readsGeneral() bool {
	for _, s := range in.SrcRegs {
		if s >= RegGeneralFirst {
			return true
		}
	}
	return false
}

// IsLoad reports whether the instruction reads memory.
func (in *Instruction) IsLoad() bool { return in.SrcMem[0] != 0 }

// IsStore reports whether the instruction writes memory.
func (in *Instruction) IsStore() bool { return in.DestMem[0] != 0 }

// Classify infers the branch opcode from the register sets, following
// ChampSim's classification of input_instr:
//
//	writes IP                            → it is a branch
//	reads FLAGS                          → conditional (direct jump)
//	reads IP and writes SP               → call (push of the return address)
//	reads SP, writes SP, no IP read      → return
//	reads a general register             → indirect
//
// It returns false if the instruction is not a branch.
func (in *Instruction) Classify() (bp.Opcode, bool) {
	if !in.IsBranch || !in.writesReg(RegInstructionPointer) {
		return 0, false
	}
	indirect := in.readsGeneral()
	switch {
	case in.readsReg(RegFlags):
		return bp.NewOpcode(bp.Jump, true, indirect), true
	case in.readsReg(RegInstructionPointer) && in.writesReg(RegStackPointer):
		return bp.NewOpcode(bp.Call, false, indirect), true
	case in.readsReg(RegStackPointer) && in.writesReg(RegStackPointer):
		return bp.NewOpcode(bp.Ret, false, true), true
	default:
		return bp.NewOpcode(bp.Jump, false, indirect), true
	}
}

// SetBranch fills the register sets so that Classify recovers op, the way
// the tracing tool marks branches when producing ChampSim traces.
func (in *Instruction) SetBranch(op bp.Opcode, taken bool) {
	in.IsBranch = true
	in.BranchTaken = taken
	in.DestRegs = [2]uint8{RegInstructionPointer, 0}
	in.SrcRegs = [4]uint8{}
	i := 0
	add := func(r uint8) { in.SrcRegs[i] = r; i++ }
	if op.IsConditional() {
		add(RegFlags)
	}
	switch op.Base() {
	case bp.Call:
		add(RegInstructionPointer)
		add(RegStackPointer)
		in.DestRegs[1] = RegStackPointer
	case bp.Ret:
		add(RegStackPointer)
		in.DestRegs[1] = RegStackPointer
	}
	if op.IsIndirect() && op.Base() != bp.Ret {
		add(RegGeneralFirst)
	}
}

// AppendTo encodes the record into buf and returns the extended slice.
func (in *Instruction) AppendTo(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, in.IP)
	buf = append(buf, b2u(in.IsBranch), b2u(in.BranchTaken))
	buf = append(buf, in.DestRegs[0], in.DestRegs[1])
	buf = append(buf, in.SrcRegs[0], in.SrcRegs[1], in.SrcRegs[2], in.SrcRegs[3])
	for _, m := range in.DestMem {
		buf = binary.LittleEndian.AppendUint64(buf, m)
	}
	for _, m := range in.SrcMem {
		buf = binary.LittleEndian.AppendUint64(buf, m)
	}
	return buf
}

func b2u(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Decode fills the record from the first RecordSize bytes of buf.
func (in *Instruction) Decode(buf []byte) error {
	if len(buf) < RecordSize {
		return fmt.Errorf("cst: record needs %d bytes, have %d: %w", RecordSize, len(buf), bp.ErrTruncated)
	}
	in.IP = binary.LittleEndian.Uint64(buf[0:8])
	in.IsBranch = buf[8] != 0
	in.BranchTaken = buf[9] != 0
	in.DestRegs[0], in.DestRegs[1] = buf[10], buf[11]
	copy(in.SrcRegs[:], buf[12:16])
	for i := range in.DestMem {
		in.DestMem[i] = binary.LittleEndian.Uint64(buf[16+8*i:])
	}
	for i := range in.SrcMem {
		in.SrcMem[i] = binary.LittleEndian.Uint64(buf[32+8*i:])
	}
	return nil
}

// Reader streams instruction records from a CST trace.
type Reader struct {
	r     io.Reader
	total uint64
	read  uint64
	buf   []byte
	pos   int
	end   int
	err   error
}

const readerBufRecords = 1024

// NewReader validates the trace header and returns a Reader positioned at
// the first record.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("cst: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != Magic {
		return nil, errors.New("cst: bad magic")
	}
	total := binary.LittleEndian.Uint64(hdr[4:12])
	return &Reader{r: r, total: total, buf: make([]byte, readerBufRecords*RecordSize)}, nil
}

// TotalInstructions returns the instruction count from the header.
func (r *Reader) TotalInstructions() uint64 { return r.total }

// Read decodes the next instruction into in. It returns io.EOF after the
// last record.
func (r *Reader) Read(in *Instruction) error {
	if r.err != nil {
		return r.err
	}
	if r.end-r.pos < RecordSize {
		if err := r.fill(); err != nil {
			r.err = err
			return err
		}
	}
	if err := in.Decode(r.buf[r.pos : r.pos+RecordSize]); err != nil {
		r.err = err
		return err
	}
	r.pos += RecordSize
	r.read++
	return nil
}

func (r *Reader) fill() error {
	leftover := copy(r.buf, r.buf[r.pos:r.end])
	r.pos, r.end = 0, leftover
	for r.end < RecordSize {
		n, err := r.r.Read(r.buf[r.end:])
		r.end += n
		if err != nil {
			if err == io.EOF {
				// Readers may return data together with io.EOF; whole
				// buffered records are still consumable, and the next fill
				// observes the bare EOF.
				if r.end >= RecordSize {
					return nil
				}
				if r.end == 0 {
					if r.read < r.total {
						return fmt.Errorf("cst: trace ends after %d of %d records: %w", r.read, r.total, bp.ErrTruncated)
					}
					return io.EOF
				}
				return fmt.Errorf("cst: trace ends mid-record: %w", bp.ErrTruncated)
			}
			return err
		}
	}
	return nil
}

// Writer encodes instruction records into a CST trace.
type Writer struct {
	w       io.Writer
	total   uint64
	written uint64
	buf     []byte
	err     error
}

// NewWriter writes the header (with the promised instruction count) and
// returns a Writer ready for records.
func NewWriter(w io.Writer, totalInstructions uint64) (*Writer, error) {
	buf := make([]byte, 0, readerBufRecords*RecordSize)
	buf = append(buf, Magic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, totalInstructions)
	return &Writer{w: w, total: totalInstructions, buf: buf}, nil
}

// Write appends one record.
func (w *Writer) Write(in *Instruction) error {
	if w.err != nil {
		return w.err
	}
	if w.written == w.total {
		w.err = fmt.Errorf("cst: more than the %d records promised by the header", w.total)
		return w.err
	}
	w.buf = in.AppendTo(w.buf)
	w.written++
	if len(w.buf) >= readerBufRecords*RecordSize {
		_, err := w.w.Write(w.buf)
		w.buf = w.buf[:0]
		w.err = err
	}
	return w.err
}

// Close flushes buffered records and verifies the promised count. It does
// not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) > 0 {
		if _, err := w.w.Write(w.buf); err != nil {
			w.err = err
			return err
		}
		w.buf = w.buf[:0]
	}
	w.err = errors.New("cst: writer closed")
	if w.written != w.total {
		return fmt.Errorf("cst: wrote %d records, header promised %d", w.written, w.total)
	}
	return nil
}
