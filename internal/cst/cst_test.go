package cst

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"mbplib/internal/bp"
)

func TestRecordSize(t *testing.T) {
	var in Instruction
	buf := in.AppendTo(nil)
	if len(buf) != RecordSize {
		t.Fatalf("encoded record is %d bytes, want %d", len(buf), RecordSize)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	in := Instruction{
		IP:          0x400123,
		IsBranch:    true,
		BranchTaken: true,
		DestRegs:    [2]uint8{RegInstructionPointer, RegStackPointer},
		SrcRegs:     [4]uint8{RegFlags, 40, 0, 0},
		DestMem:     [2]uint64{0xdead0000, 0},
		SrcMem:      [4]uint64{0xbeef0000, 0xbeef0040, 0, 0},
	}
	buf := in.AppendTo(nil)
	var out Instruction
	if err := out.Decode(buf); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out != in {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(ip uint64, isBr, taken bool, d0, d1, s0, s1 uint8, m0, m1 uint64) bool {
		in := Instruction{IP: ip, IsBranch: isBr, BranchTaken: taken,
			DestRegs: [2]uint8{d0, d1}, SrcRegs: [4]uint8{s0, s1, 0, 0},
			DestMem: [2]uint64{m0, 0}, SrcMem: [4]uint64{m1, 0, 0, 0}}
		var out Instruction
		if err := out.Decode(in.AppendTo(nil)); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeShort(t *testing.T) {
	var in Instruction
	if err := in.Decode(make([]byte, 10)); err == nil {
		t.Errorf("short record accepted")
	}
}

func TestSetBranchClassifyRoundTrip(t *testing.T) {
	opcodes := []bp.Opcode{
		bp.OpJump, bp.OpCondJump, bp.OpIndJump,
		bp.OpCall, bp.OpIndCall, bp.OpRet,
		bp.NewOpcode(bp.Jump, true, true),
	}
	for _, op := range opcodes {
		var in Instruction
		in.SetBranch(op, true)
		got, ok := in.Classify()
		if !ok {
			t.Errorf("opcode %v: Classify says not a branch", op)
			continue
		}
		if got != op {
			t.Errorf("opcode %v classified as %v", op, got)
		}
	}
}

func TestClassifyNonBranch(t *testing.T) {
	in := Instruction{IP: 4, DestRegs: [2]uint8{40, 0}, SrcRegs: [4]uint8{41, 42, 0, 0}}
	if _, ok := in.Classify(); ok {
		t.Errorf("ALU instruction classified as branch")
	}
}

func TestLoadStoreDetection(t *testing.T) {
	load := Instruction{SrcMem: [4]uint64{0x1000}}
	store := Instruction{DestMem: [2]uint64{0x2000}}
	if !load.IsLoad() || load.IsStore() {
		t.Errorf("load detection wrong")
	}
	if !store.IsStore() || store.IsLoad() {
		t.Errorf("store detection wrong")
	}
}

func TestReaderWriterRoundTrip(t *testing.T) {
	const n = 5000
	var buf bytes.Buffer
	w, err := NewWriter(&buf, n)
	if err != nil {
		t.Fatal(err)
	}
	var want []Instruction
	for i := 0; i < n; i++ {
		in := Instruction{IP: 0x400000 + uint64(i)*4, SrcRegs: [4]uint8{uint8(i), 0, 0, 0}}
		if i%7 == 0 {
			in.SetBranch(bp.OpCondJump, i%2 == 0)
		}
		want = append(want, in)
		if err := w.Write(&in); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if buf.Len() != HeaderSize+n*RecordSize {
		t.Errorf("trace size = %d, want %d", buf.Len(), HeaderSize+n*RecordSize)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalInstructions() != n {
		t.Errorf("TotalInstructions = %d", r.TotalInstructions())
	}
	var got Instruction
	for i := 0; i < n; i++ {
		if err := r.Read(&got); err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if err := r.Read(&got); err != io.EOF {
		t.Errorf("final Read = %v, want io.EOF", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 10)
	in := Instruction{IP: 4}
	for i := 0; i < 10; i++ {
		_ = w.Write(&in)
	}
	_ = w.Close()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:HeaderSize+3*RecordSize+7]))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 20; i++ {
		if lastErr = r.Read(&in); lastErr != nil {
			break
		}
	}
	if lastErr == nil || lastErr == io.EOF {
		t.Errorf("truncated trace error = %v", lastErr)
	}
}

func TestWriterEnforcesCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	in := Instruction{IP: 4}
	_ = w.Write(&in)
	if err := w.Write(&in); err == nil {
		t.Errorf("Write beyond promised count succeeded")
	}
	w2, _ := NewWriter(&buf, 5)
	_ = w2.Write(&in)
	if err := w2.Close(); err == nil {
		t.Errorf("Close with undercount succeeded")
	}
}

func TestNewReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX12345678"))); err == nil {
		t.Errorf("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("CS"))); err == nil {
		t.Errorf("short header accepted")
	}
}
