package daemon_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mbplib/internal/api"
	"mbplib/internal/bench"
	"mbplib/internal/daemon"
	"mbplib/internal/sweep"
)

// prepTraces materialises a small healthy trace suite and returns a glob.
func prepTraces(t *testing.T, scale uint64) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := bench.PrepareSuite(dir, "cbp5-train", scale, bench.Formats{SBBT: true}); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "*.sbbt*")
}

// newServer builds a daemon over a fresh data dir and serves its handler.
func newServer(t *testing.T, start bool, cfg daemon.Config) (*daemon.Daemon, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	d, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if start {
		d.Start()
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		if err := d.Close(); err != nil {
			t.Errorf("closing daemon: %v", err)
		}
	})
	return d, srv
}

func submit(t *testing.T, srv *httptest.Server, spec api.SweepSpec) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(api.SubmitRequest{APIVersion: api.Version, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	return doReq(t, http.MethodPost, srv.URL+"/v1/jobs", bytes.NewReader(body))
}

func doReq(t *testing.T, method, url string, body io.Reader) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeErr(t *testing.T, body []byte) api.Error {
	t.Helper()
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("decoding error envelope %q: %v", body, err)
	}
	return e
}

func decodeJob(t *testing.T, body []byte) api.Job {
	t.Helper()
	var j api.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatalf("decoding job %q: %v", body, err)
	}
	return j
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(t *testing.T, srv *httptest.Server, id string) api.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := doReq(t, http.MethodGet, srv.URL+"/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s = %d: %s", id, resp.StatusCode, body)
		}
		job := decodeJob(t, body)
		if api.TerminalState(job.State) {
			return job
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return api.Job{}
}

// smallSpec is a sweep that finishes in well under a second.
func smallSpec(glob string) api.SweepSpec {
	return api.SweepSpec{
		Traces: glob, Predictor: "gshare:t=12,h=%d",
		From: 4, To: 6, Policy: "skip",
	}
}

// TestAPIContract pins the HTTP surface: malformed bodies, unknown jobs,
// version checks, invalid specs and the bounded queue all map onto the
// documented statuses and error codes.
func TestAPIContract(t *testing.T) {
	glob := prepTraces(t, 2000)
	// Runner deliberately not started: jobs stay queued, so queue bounds
	// and queued-job transitions are deterministic.
	_, srv := newServer(t, false, daemon.Config{QueueDepth: 1})

	t.Run("bad-json", func(t *testing.T) {
		resp, body := doReq(t, http.MethodPost, srv.URL+"/v1/jobs", strings.NewReader("{not json"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400: %s", resp.StatusCode, body)
		}
		if e := decodeErr(t, body); e.Err.Code != api.CodeBadRequest {
			t.Fatalf("code = %q, want %q", e.Err.Code, api.CodeBadRequest)
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		resp, body := doReq(t, http.MethodPost, srv.URL+"/v1/jobs",
			strings.NewReader(`{"api_version": 99, "spec": {"traces": "x", "predictor": "gshare:t=12,h=%d", "from": 4, "to": 6}}`))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400: %s", resp.StatusCode, body)
		}
		if e := decodeErr(t, body); e.Err.Code != api.CodeBadRequest {
			t.Fatalf("code = %q, want %q", e.Err.Code, api.CodeBadRequest)
		}
	})
	t.Run("invalid-spec", func(t *testing.T) {
		spec := smallSpec(glob)
		spec.Predictor = "gshare:t=12,h=4" // no %d placeholder
		resp, body := submit(t, srv, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400: %s", resp.StatusCode, body)
		}
		e := decodeErr(t, body)
		if e.Err.Code != api.CodeInvalidSpec {
			t.Fatalf("code = %q, want %q", e.Err.Code, api.CodeInvalidSpec)
		}
		if !strings.Contains(e.Err.Message, "placeholder") {
			t.Fatalf("message = %q, want the CLI's placeholder error", e.Err.Message)
		}
	})
	t.Run("unknown-job", func(t *testing.T) {
		resp, body := doReq(t, http.MethodGet, srv.URL+"/v1/jobs/deadbeef0000", nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404: %s", resp.StatusCode, body)
		}
		if e := decodeErr(t, body); e.Err.Code != api.CodeNotFound {
			t.Fatalf("code = %q, want %q", e.Err.Code, api.CodeNotFound)
		}
	})
	t.Run("queue-full-and-cancel", func(t *testing.T) {
		resp, body := submit(t, srv, smallSpec(glob))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("first submit = %d, want 202: %s", resp.StatusCode, body)
		}
		var sub api.SubmitResponse
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		if sub.State != api.StateQueued || sub.Cached {
			t.Fatalf("first submit = %+v, want fresh queued job", sub)
		}

		other := smallSpec(glob)
		other.To = 8 // different work, different key
		resp, body = submit(t, srv, other)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("over-queue submit = %d, want 503: %s", resp.StatusCode, body)
		}
		if e := decodeErr(t, body); e.Err.Code != api.CodeQueueFull {
			t.Fatalf("code = %q, want %q", e.Err.Code, api.CodeQueueFull)
		}

		// Resubmitting the queued job is idempotent, not queue-full.
		resp, body = submit(t, srv, smallSpec(glob))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("idempotent resubmit = %d, want 202: %s", resp.StatusCode, body)
		}

		// Cancelling the queued job lands in the canonical failure class.
		resp, body = doReq(t, http.MethodDelete, srv.URL+"/v1/jobs/"+sub.ID, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("cancel = %d, want 202: %s", resp.StatusCode, body)
		}
		job := decodeJob(t, decodeGet(t, srv, sub.ID))
		if job.State != api.StateCancelled {
			t.Fatalf("state = %q, want cancelled", job.State)
		}
		if job.FailureClass != "drained" {
			t.Fatalf("failure class = %q, want drained", job.FailureClass)
		}
		if job.ExitCode != sweep.ExitDrained {
			t.Fatalf("exit code = %d, want %d", job.ExitCode, sweep.ExitDrained)
		}

		// A second cancel is a conflict.
		resp, body = doReq(t, http.MethodDelete, srv.URL+"/v1/jobs/"+sub.ID, nil)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("second cancel = %d, want 409: %s", resp.StatusCode, body)
		}
		if e := decodeErr(t, body); e.Err.Code != api.CodeConflict {
			t.Fatalf("code = %q, want %q", e.Err.Code, api.CodeConflict)
		}
	})
}

func decodeGet(t *testing.T, srv *httptest.Server, id string) []byte {
	t.Helper()
	resp, body := doReq(t, http.MethodGet, srv.URL+"/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s = %d: %s", id, resp.StatusCode, body)
	}
	return body
}

// getResult fetches the verbatim result bytes of a finished job.
func getResult(t *testing.T, srv *httptest.Server, id, format string) []byte {
	t.Helper()
	resp, body := doReq(t, http.MethodGet, srv.URL+"/v1/jobs/"+id+"/result?format="+format, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result %s = %d: %s", id, resp.StatusCode, body)
	}
	return body
}

// TestRunResubmitCacheHitAndLocalEquivalence runs one job to completion and
// pins the two core guarantees: the stored result JSON is byte-identical to
// the same spec run through the local pipeline, and resubmitting the same
// spec is a cache hit served without re-simulating.
func TestRunResubmitCacheHitAndLocalEquivalence(t *testing.T) {
	glob := prepTraces(t, 2000)
	_, srv := newServer(t, true, daemon.Config{Jobs: 4})
	spec := smallSpec(glob)

	resp, body := submit(t, srv, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sub api.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	job := waitTerminal(t, srv, sub.ID)
	if job.State != api.StateDone || job.ExitCode != sweep.ExitOK {
		t.Fatalf("job = %s (exit %d, error %q), want done/0", job.State, job.ExitCode, job.Error)
	}
	if job.Result == nil || len(job.Result.JSON) == 0 || job.Result.Text == "" {
		t.Fatalf("finished job has no stored result: %+v", job)
	}

	// The local run of the same spec — the exact pipeline behind mbpsweep.
	resolved, err := daemon.SweepSpec(spec).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	sets, err := resolved.Run(sweep.RunOptions{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if code := sweep.Render(&local, io.Discard, resolved.Specs, sets, len(resolved.Sources), true); code != sweep.ExitOK {
		t.Fatalf("local render exited %d", code)
	}
	remote := getResult(t, srv, sub.ID, "json")
	if !bytes.Equal(local.Bytes(), remote) {
		t.Errorf("daemon result JSON differs from the local pipeline:\nlocal:  %s\ndaemon: %s", local.Bytes(), remote)
	}

	// Resubmitting the same spec: cache hit, no new job, no simulation.
	resp, body = submit(t, srv, spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200 (cached): %s", resp.StatusCode, body)
	}
	var again api.SubmitResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.ID != sub.ID || again.State != api.StateDone {
		t.Fatalf("resubmit = %+v, want cached done job %s", again, sub.ID)
	}
	if got := decodeJob(t, decodeGet(t, srv, sub.ID)); got.Finished != job.Finished {
		t.Errorf("cache hit re-ran the job: finished %s -> %s", job.Finished, got.Finished)
	}
}

// TestEventsStreamTerminates subscribes to a job's SSE stream and requires
// it to deliver state frames and a final done frame, then close.
func TestEventsStreamTerminates(t *testing.T) {
	glob := prepTraces(t, 2000)
	_, srv := newServer(t, true, daemon.Config{Jobs: 4, SnapshotEvery: 10 * time.Millisecond})

	resp, body := submit(t, srv, smallSpec(glob))
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sub api.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	stream, err := http.Get(srv.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", stream.StatusCode)
	}
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	// The stream must end on its own once the job completes.
	data, err := io.ReadAll(stream.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "event: "+api.EventState) {
		t.Errorf("stream carried no state frame:\n%s", text)
	}
	if !strings.Contains(text, "event: "+api.EventDone) {
		t.Errorf("stream carried no done frame:\n%s", text)
	}
	if !strings.Contains(text, fmt.Sprintf("%q: %q", "state", api.StateDone)) &&
		!strings.Contains(text, `"state": "done"`) && !strings.Contains(text, `"state":"done"`) {
		t.Errorf("done frame does not show the done state:\n%s", text)
	}

	// SSE on an unknown job is a plain 404.
	notFound, err := http.Get(srv.URL + "/v1/jobs/ffffffffffff/events")
	if err != nil {
		t.Fatal(err)
	}
	defer notFound.Body.Close()
	if notFound.StatusCode != http.StatusNotFound {
		t.Fatalf("events on unknown job = %d, want 404", notFound.StatusCode)
	}
}

// TestHealthAndDrain pins the healthz document and the draining contract:
// once draining, the daemon refuses submissions with 503 and says so in
// healthz.
func TestHealthAndDrain(t *testing.T) {
	glob := prepTraces(t, 2000)
	d, srv := newServer(t, false, daemon.Config{})

	resp, body := doReq(t, http.MethodGet, srv.URL+"/v1/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var h api.Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != api.HealthOK || h.APIVersion != api.Version {
		t.Fatalf("health = %+v, want ok/v%d", h, api.Version)
	}

	d.Drain()
	resp, body = doReq(t, http.MethodGet, srv.URL+"/v1/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != api.HealthDraining {
		t.Fatalf("health status = %q, want %q", h.Status, api.HealthDraining)
	}

	resp, body = submit(t, srv, smallSpec(glob))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Err.Code != api.CodeDraining {
		t.Fatalf("code = %q, want %q", e.Err.Code, api.CodeDraining)
	}
}
