package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"mbplib/internal/api"
	"mbplib/internal/faults"
	"mbplib/internal/obs"
)

// Handler returns the versioned JSON HTTP API of the daemon. All routes live
// under api.PathPrefix (/v1); bodies and error envelopes are the types of
// internal/api.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", d.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", d.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", d.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", d.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", d.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", d.handleEvents)
	mux.HandleFunc("GET /v1/healthz", d.handleHealth)
	return mux
}

// maxBodyBytes bounds submit bodies; a sweep spec is a few hundred bytes.
const maxBodyBytes = 1 << 20

func (d *Daemon) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		d.logf("daemon: writing response: %v", err)
	}
}

func (d *Daemon) writeErr(w http.ResponseWriter, code, class, format string, args ...any) {
	d.writeJSON(w, api.StatusForCode(code), api.Error{
		APIVersion: api.Version,
		Err:        api.ErrorBody{Code: code, Message: fmt.Sprintf(format, args...), Class: class},
	})
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var req api.SubmitRequest
	if err := dec.Decode(&req); err != nil {
		d.writeErr(w, api.CodeBadRequest, "", "decoding request: %v", err)
		return
	}
	if req.APIVersion != 0 && req.APIVersion != api.Version {
		d.writeErr(w, api.CodeBadRequest, "", "unsupported api_version %d (this daemon speaks %d)", req.APIVersion, api.Version)
		return
	}
	resolved, err := SweepSpec(req.Spec).Resolve()
	if err != nil {
		d.writeErr(w, api.CodeInvalidSpec, faults.Class(err), "%v", err)
		return
	}
	resolved.AttachDigests()
	view, cached, err := d.Submit(resolved)
	switch {
	case errors.Is(err, ErrQueueFull):
		d.writeErr(w, api.CodeQueueFull, "", "%v (queue depth %d)", err, d.cfg.QueueDepth)
		return
	case errors.Is(err, ErrDraining):
		d.writeErr(w, api.CodeDraining, "", "%v", err)
		return
	case err != nil:
		d.writeErr(w, api.CodeInternal, "", "%v", err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	d.writeJSON(w, status, api.SubmitResponse{
		APIVersion: api.Version, ID: view.ID, State: view.State, Cached: cached,
	})
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	d.writeJSON(w, http.StatusOK, api.JobList{APIVersion: api.Version, Jobs: d.Jobs()})
}

func (d *Daemon) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := d.lookup(id)
	if !ok {
		d.writeErr(w, api.CodeNotFound, "", "unknown job %q", id)
		return
	}
	d.writeJSON(w, http.StatusOK, j.view())
}

// handleResult serves a finished job's rendering verbatim — the exact bytes
// sweep.Render produced, untouched by any re-marshalling — which is what
// makes `mbpctl wait` byte-identical to a local mbpsweep run. ?format=text
// selects the text table; the default is the JSON document.
func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := d.lookup(id)
	if !ok {
		d.writeErr(w, api.CodeNotFound, "", "unknown job %q", id)
		return
	}
	j.mu.Lock()
	state := j.state
	result := j.result
	j.mu.Unlock()
	if result == nil {
		d.writeErr(w, api.CodeConflict, "", "job %s has no result (state %s)", id, state)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(result.JSON); err != nil {
			d.logf("daemon: writing result: %v", err)
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if _, err := io.WriteString(w, result.Text); err != nil {
			d.logf("daemon: writing result: %v", err)
		}
	default:
		d.writeErr(w, api.CodeBadRequest, "", "unknown result format %q (want json or text)", format)
	}
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, err := d.Cancel(id)
	switch {
	case err == nil:
		d.writeJSON(w, http.StatusAccepted, view)
	case IsConflict(err):
		d.writeErr(w, api.CodeConflict, "", "%v", err)
	default:
		d.writeErr(w, api.CodeNotFound, "", "%v", err)
	}
}

func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	d.writeJSON(w, http.StatusOK, d.Health())
}

// handleEvents streams a job's lifecycle as server-sent events: a "state"
// frame on every transition, "snapshot" frames with the obs metrics snapshot
// at the configured cadence while the job runs, and a final "done" frame
// with the full job body before the stream closes.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := d.lookup(id)
	if !ok {
		d.writeErr(w, api.CodeNotFound, "", "unknown job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		d.writeErr(w, api.CodeInternal, "", "response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	ticker := time.NewTicker(d.cfg.SnapshotEvery)
	defer ticker.Stop()
	for {
		view, changed := j.snapshot()
		d.sendEvent(w, fl, api.EventState, view)
		if api.TerminalState(view.State) {
			d.sendEvent(w, fl, api.EventDone, view)
			return
		}
		waiting := true
		for waiting {
			select {
			case <-changed:
				waiting = false
			case <-ticker.C:
				if snap := j.metricsSnapshot(); snap != nil {
					d.sendEvent(w, fl, api.EventSnapshot, snap)
				}
			case <-r.Context().Done():
				return
			}
		}
	}
}

// sendEvent writes one SSE frame and flushes it through to the client.
func (d *Daemon) sendEvent(w http.ResponseWriter, fl http.Flusher, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		d.logf("daemon: encoding %s event: %v", event, err)
		return
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		d.logf("daemon: writing %s event: %v", event, err)
		return
	}
	fl.Flush()
}

// lookup finds a job by ID.
func (d *Daemon) lookup(id string) (*job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	return j, ok
}

// snapshot returns the job's API view together with the channel that closes
// on its next transition, atomically — so a watcher never misses the change
// between reading the state and starting to wait.
func (j *job) snapshot() (api.Job, <-chan struct{}) {
	j.mu.Lock()
	changed := j.changed
	j.mu.Unlock()
	return j.view(), changed
}

// metricsSnapshot captures the running job's observability snapshot, nil
// when the job has no collector (not yet started).
func (j *job) metricsSnapshot() *obs.Snapshot {
	j.mu.Lock()
	m := j.metrics
	j.mu.Unlock()
	if m == nil {
		return nil
	}
	s := m.Snapshot()
	return &s
}
