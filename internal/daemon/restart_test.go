package daemon_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mbplib/internal/api"
	"mbplib/internal/bench"
	"mbplib/internal/daemon"
	"mbplib/internal/sweep"
)

// TestRestartServesFinishedJobsWithoutResimulating is the kill-and-resume
// acceptance test for the store: a daemon restarted over the same data dir
// must serve previously finished jobs from their persisted results. The
// trace files are deleted before the restart, so any attempt to re-simulate
// would fail loudly rather than silently recompute.
func TestRestartServesFinishedJobsWithoutResimulating(t *testing.T) {
	traceDir := t.TempDir()
	if _, err := bench.PrepareSuite(traceDir, "cbp5-train", 2000, bench.Formats{SBBT: true}); err != nil {
		t.Fatal(err)
	}
	glob := filepath.Join(traceDir, "*.sbbt*")
	dataDir := t.TempDir()
	spec := smallSpec(glob)

	// First life: run the job to completion.
	d1, err := daemon.New(daemon.Config{DataDir: dataDir, Jobs: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	d1.Start()
	srv1 := httptest.NewServer(d1.Handler())
	resp, body := submit(t, srv1, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sub api.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	first := waitTerminal(t, srv1, sub.ID)
	if first.State != api.StateDone {
		t.Fatalf("job = %s (%q), want done", first.State, first.Error)
	}
	firstJSON := getResult(t, srv1, sub.ID, "json")
	firstText := getResult(t, srv1, sub.ID, "text")
	srv1.Close()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	// Remove the traces: a restarted daemon that tried to re-run the job
	// could only fail, so identical results prove it served the store.
	if err := os.RemoveAll(traceDir); err != nil {
		t.Fatal(err)
	}

	// Second life over the same data dir.
	d2, err := daemon.New(daemon.Config{DataDir: dataDir, Jobs: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	d2.Start()
	srv2 := httptest.NewServer(d2.Handler())
	defer srv2.Close()
	defer func() {
		if err := d2.Close(); err != nil {
			t.Errorf("closing daemon: %v", err)
		}
	}()

	second := decodeJob(t, decodeGet(t, srv2, sub.ID))
	if second.State != api.StateDone || second.ExitCode != first.ExitCode {
		t.Fatalf("recovered job = %s (exit %d), want done (exit %d)", second.State, second.ExitCode, first.ExitCode)
	}
	if second.Result == nil {
		t.Fatal("recovered job has no result")
	}
	if got := getResult(t, srv2, sub.ID, "json"); !bytes.Equal(firstJSON, got) {
		t.Errorf("recovered result JSON differs:\nbefore: %s\nafter:  %s", firstJSON, got)
	}
	if got := getResult(t, srv2, sub.ID, "text"); !bytes.Equal(firstText, got) {
		t.Errorf("recovered result text differs:\nbefore: %s\nafter:  %s", firstText, got)
	}

	// Resubmitting against the restarted daemon is a cache hit even though
	// the traces are gone: the job is identified before resolution only by
	// its ID, so the spec must re-resolve — which would fail — making this
	// a pure store lookup. (Resolution needs the trace files for digests,
	// so a cache hit on a missing-traces spec is impossible; assert the
	// clean 400 instead of a surprise re-simulation.)
	resp, body = submit(t, srv2, spec)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("resubmit without traces = %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestDrainMidJobThenResume interrupts a running job with a daemon drain
// and requires the revived job (same spec resubmitted to a fresh daemon over
// the same data dir) to finish with byte-identical result JSON to an
// uninterrupted run — the journal replays the finished cells.
func TestDrainMidJobThenResume(t *testing.T) {
	traceDir := t.TempDir()
	if _, err := bench.PrepareSuite(traceDir, "cbp5-train", 60_000, bench.Formats{SBBT: true}); err != nil {
		t.Fatal(err)
	}
	glob := filepath.Join(traceDir, "*.sbbt*")
	spec := api.SweepSpec{
		Traces: glob, Predictor: "gshare:t=14,h=%d",
		From: 4, To: 12, Policy: "skip",
	}

	// The uninterrupted reference, straight through the pipeline.
	resolved, err := daemon.SweepSpec(spec).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	sets, err := resolved.Run(sweep.RunOptions{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	sweep.Render(&want, os.Stderr, resolved.Specs, sets, len(resolved.Sources), true)

	dataDir := t.TempDir()
	d1, err := daemon.New(daemon.Config{
		DataDir: dataDir, Jobs: 4, CheckpointEvery: 4096, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	d1.Start()
	srv1 := httptest.NewServer(d1.Handler())
	resp, body := submit(t, srv1, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sub api.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	// Wait until the job's journal holds at least one committed cell, so
	// the drain lands mid-sweep with real progress to preserve.
	seg := filepath.Join(dataDir, "jobs", sub.ID, "journal", "journal-000000.mbpj")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if fi, err := os.Stat(seg); err == nil && fi.Size() > 200 {
			break
		}
		job := decodeJob(t, decodeGet(t, srv1, sub.ID))
		if api.TerminalState(job.State) {
			// The sweep outran the test; the cache-hit path is already
			// covered elsewhere, but the drain can't land any more.
			t.Skipf("job finished before the drain could land (state %s)", job.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal %s never saw a committed cell", seg)
		}
		time.Sleep(2 * time.Millisecond)
	}
	d1.Drain()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	interrupted := decodeJob(t, decodeGet(t, srv1, sub.ID))
	srv1.Close()
	if interrupted.State != api.StateCancelled {
		t.Fatalf("interrupted job = %s, want cancelled", interrupted.State)
	}
	if interrupted.FailureClass != "drained" {
		t.Fatalf("failure class = %q, want drained", interrupted.FailureClass)
	}

	// Second life: resubmitting the same spec revives the job; the journal
	// replays every finished cell and the sweep completes.
	d2, err := daemon.New(daemon.Config{
		DataDir: dataDir, Jobs: 4, CheckpointEvery: 4096, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	d2.Start()
	srv2 := httptest.NewServer(d2.Handler())
	defer srv2.Close()
	defer func() {
		if err := d2.Close(); err != nil {
			t.Errorf("closing daemon: %v", err)
		}
	}()
	resp, body = submit(t, srv2, spec)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit = %d: %s", resp.StatusCode, body)
	}
	final := waitTerminal(t, srv2, sub.ID)
	if final.State != api.StateDone {
		t.Fatalf("revived job = %s (%q), want done", final.State, final.Error)
	}
	if got := getResult(t, srv2, sub.ID, "json"); !bytes.Equal(got, want.Bytes()) {
		t.Errorf("resumed result differs from the uninterrupted run:\nwant: %s\ngot:  %s", want.Bytes(), got)
	}
}
