// Package daemon is the long-running sweep service behind mbpd. It owns the
// behaviour of the JSON HTTP API whose wire types live in internal/api: a
// bounded job queue feeding the internal/sweep pipeline, journal-backed
// persistence under a data directory so finished jobs survive restarts and
// resubmissions are cache hits, and a graceful drain that finishes in-flight
// cells, checkpoints them, and reports "draining" until the process exits.
//
// The layering mirrors moby's daemon/api/cli split: internal/api is the
// contract, this package the server-side behaviour, cmd/mbpd the process
// wrapper and cmd/mbpctl the remote client. Because jobs execute through the
// very same internal/sweep functions as mbpsweep, a job's stored result JSON
// is byte-identical to a local run of the same spec.
//
// On-disk layout under DataDir:
//
//	jobs/<id>/job.json     the job record (spec, state, timestamps)
//	jobs/<id>/result.json  the rendered result of a finished job
//	jobs/<id>/journal/     the resume journal of the sweep's cells
//
// <id> is a prefix of the sweep's content-addressed key (trace digests,
// expanded predictor specs, simulation window, policy), so two submissions
// of the same work are the same job: the second is served from the store
// without simulating, and a restarted daemon replays the journal of an
// interrupted job instead of starting over.
package daemon

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"mbplib/internal/api"
	"mbplib/internal/faults"
	"mbplib/internal/obs"
	"mbplib/internal/sim"
	"mbplib/internal/sim/journal"
	"mbplib/internal/sweep"
)

// IDLength is how many hex digits of the sweep key name a job. 48 bits of
// content hash: enough that distinct sweeps never collide in one data
// directory, short enough to paste into curl.
const IDLength = 12

// Config configures a daemon. The zero value of every field except DataDir
// picks a sensible default.
type Config struct {
	// DataDir is the root of the job store. Required.
	DataDir string
	// Jobs is the scheduler width of each sweep (the -j of mbpsweep).
	// <= 0 means GOMAXPROCS.
	Jobs int
	// CacheBytes has sim.ParallelOptions semantics: 0 default, negative
	// disables the decoded-trace cache.
	CacheBytes int64
	// QueueDepth bounds the number of jobs admitted but not yet finished
	// (queued + running). Submissions beyond it are refused with 503.
	// <= 0 means DefaultQueueDepth.
	QueueDepth int
	// CheckpointEvery is the per-cell checkpoint interval (events) written
	// to each job's journal. 0 disables in-flight checkpoints.
	CheckpointEvery uint64
	// CellTimeout bounds each (value, trace) cell's wall time. 0 = none.
	CellTimeout time.Duration
	// Backoff is the delay before the first transient-open retry.
	Backoff time.Duration
	// SnapshotEvery is the cadence of SSE progress snapshots.
	// <= 0 means DefaultSnapshotEvery.
	SnapshotEvery time.Duration
	// Logf receives operational log lines. Nil discards them.
	Logf func(format string, args ...any)
}

// Defaults for Config's zero values.
const (
	DefaultQueueDepth    = 16
	DefaultSnapshotEvery = time.Second
)

// Sentinel errors of Submit, written as API envelopes by the HTTP layer.
var (
	// ErrQueueFull reports a bounded queue at capacity.
	ErrQueueFull = errors.New("job queue is full")
	// ErrDraining reports a daemon refusing work during graceful drain.
	ErrDraining = errors.New("daemon is draining")
)

// Daemon is one sweep service instance. Construct with New, serve its
// Handler, Start the runner, and Drain then Close on shutdown.
type Daemon struct {
	cfg  Config
	logf func(string, ...any)

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // job IDs in submission order

	wake      chan struct{} // runner wake-up, buffered 1
	draining  chan struct{} // closed by Drain
	drainOnce sync.Once
	started   bool
	wg        sync.WaitGroup
}

// job is the mutable server-side state of one sweep. Guarded by its own
// mutex so the HTTP handlers never block on a running simulation.
type job struct {
	mu       sync.Mutex
	id       string
	spec     sweep.Spec
	state    string
	exitCode int
	errMsg   string
	class    string
	created  time.Time
	started  time.Time
	finished time.Time
	result   *api.JobResult

	resolved *sweep.Resolved // nil for jobs recovered from disk
	metrics  *obs.Collector  // non-nil while running
	cancel   chan struct{}   // closed to cancel this job
	closed   bool            // cancel already closed
	changed  chan struct{}   // replaced and closed on every transition
}

// New opens (or creates) the job store under cfg.DataDir and recovers every
// persisted job: finished jobs are served from their stored results without
// re-simulating, interrupted ones go back to the queue and replay their
// journals when the runner reaches them. Call Start to begin executing.
func New(cfg Config) (*Daemon, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("daemon: DataDir is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(jobsDir(cfg.DataDir), 0o755); err != nil {
		return nil, fmt.Errorf("daemon: creating job store: %w", err)
	}
	d := &Daemon{
		cfg:      cfg,
		logf:     cfg.Logf,
		jobs:     map[string]*job{},
		wake:     make(chan struct{}, 1),
		draining: make(chan struct{}),
	}
	if d.logf == nil {
		d.logf = func(string, ...any) {}
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	return d, nil
}

func jobsDir(dataDir string) string       { return filepath.Join(dataDir, "jobs") }
func (d *Daemon) jobDir(id string) string { return filepath.Join(jobsDir(d.cfg.DataDir), id) }

// recover loads every job directory. Records that were mid-flight when the
// previous process died (queued or running) restart as queued; their
// journals make the re-run a replay, not a redo.
func (d *Daemon) recover() error {
	entries, err := os.ReadDir(jobsDir(d.cfg.DataDir))
	if err != nil {
		return fmt.Errorf("daemon: reading job store: %w", err)
	}
	var recovered []*job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		j, err := d.loadJob(e.Name())
		if err != nil {
			d.logf("daemon: skipping job %s: %v", e.Name(), err)
			continue
		}
		recovered = append(recovered, j)
	}
	sort.Slice(recovered, func(i, k int) bool {
		if !recovered[i].created.Equal(recovered[k].created) {
			return recovered[i].created.Before(recovered[k].created)
		}
		return recovered[i].id < recovered[k].id
	})
	d.mu.Lock()
	for _, j := range recovered {
		d.jobs[j.id] = j
		d.order = append(d.order, j.id)
	}
	d.mu.Unlock()
	return nil
}

func (d *Daemon) loadJob(id string) (*job, error) {
	data, err := os.ReadFile(filepath.Join(d.jobDir(id), "job.json"))
	if err != nil {
		return nil, err
	}
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("decoding job.json: %w", err)
	}
	if rec.ID != id {
		return nil, fmt.Errorf("job.json names %q", rec.ID)
	}
	j := &job{
		id: id, spec: rec.Spec, state: rec.State,
		exitCode: rec.ExitCode, errMsg: rec.Error, class: rec.FailureClass,
		created: rec.Created, started: rec.Started, finished: rec.Finished,
		cancel: make(chan struct{}), changed: make(chan struct{}),
	}
	if !api.TerminalState(j.state) {
		// Interrupted mid-flight: back to the queue. The journal replays
		// its finished cells when the runner picks it up again.
		j.state = api.StateQueued
		j.started, j.finished = time.Time{}, time.Time{}
	} else if j.state != api.StateFailed {
		// The renderings are stored verbatim — the JSON document exactly as
		// sweep.Render wrote it — so a recovered job serves the same bytes
		// the first life did.
		raw, jerr := os.ReadFile(filepath.Join(d.jobDir(id), "result.json"))
		text, terr := os.ReadFile(filepath.Join(d.jobDir(id), "result.txt"))
		if jerr == nil && terr == nil {
			j.result = &api.JobResult{ExitCode: rec.ExitCode, JSON: raw, Text: string(text)}
		}
	}
	return j, nil
}

// jobRecord is the persisted form of a job (jobs/<id>/job.json).
type jobRecord struct {
	ID           string     `json:"id"`
	Spec         sweep.Spec `json:"spec"`
	State        string     `json:"state"`
	ExitCode     int        `json:"exit_code"`
	Error        string     `json:"error,omitempty"`
	FailureClass string     `json:"failure_class,omitempty"`
	Created      time.Time  `json:"created"`
	Started      time.Time  `json:"started,omitempty"`
	Finished     time.Time  `json:"finished,omitempty"`
}

// persist writes the job record atomically (tmp + rename). Persistence
// failures are logged, not fatal: the daemon keeps serving from memory.
func (d *Daemon) persist(j *job) {
	j.mu.Lock()
	rec := jobRecord{
		ID: j.id, Spec: j.spec, State: j.state, ExitCode: j.exitCode,
		Error: j.errMsg, FailureClass: j.class,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
	j.mu.Unlock()
	dir := d.jobDir(j.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		d.logf("daemon: persisting job %s: %v", j.id, err)
		return
	}
	if err := writeFileAtomic(filepath.Join(dir, "job.json"), rec); err != nil {
		d.logf("daemon: persisting job %s: %v", j.id, err)
	}
}

func writeFileAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeBytesAtomic(path, append(data, '\n'))
}

func writeBytesAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// transition moves a job to a new state under its lock, stamps the relevant
// timestamp, wakes watchers, and persists the record.
func (d *Daemon) transition(j *job, state string, mutate func(*job)) {
	j.mu.Lock()
	j.state = state
	now := time.Now().UTC()
	switch state {
	case api.StateRunning:
		j.started = now
	case api.StateDone, api.StateFailed, api.StateCancelled:
		j.finished = now
	}
	if mutate != nil {
		mutate(j)
	}
	close(j.changed)
	j.changed = make(chan struct{})
	j.mu.Unlock()
	d.persist(j)
}

// view renders the API form of a job.
func (j *job) view() api.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := api.Job{
		APIVersion:   api.Version,
		ID:           j.id,
		State:        j.state,
		Spec:         apiSpec(j.spec),
		ExitCode:     j.exitCode,
		Error:        j.errMsg,
		FailureClass: j.class,
		Result:       j.result,
	}
	if !j.created.IsZero() {
		out.Created = j.created.Format(time.RFC3339Nano)
	}
	if !j.started.IsZero() {
		out.Started = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		out.Finished = j.finished.Format(time.RFC3339Nano)
	}
	return out
}

func apiSpec(s sweep.Spec) api.SweepSpec {
	return api.SweepSpec{
		Traces: s.Traces, Predictor: s.Predictor,
		From: s.From, To: s.To, Step: s.Step,
		Policy: s.Policy, Retries: s.Retries,
	}
}

// SweepSpec converts the wire spec into the pipeline spec.
func SweepSpec(s api.SweepSpec) sweep.Spec {
	return sweep.Spec{
		Traces: s.Traces, Predictor: s.Predictor,
		From: s.From, To: s.To, Step: s.Step,
		Policy: s.Policy, Retries: s.Retries,
	}
}

// Submit admits one sweep. The resolved spec's content key names the job:
// resubmitting work the store has already finished returns the stored job
// with cached=true and simulates nothing; resubmitting a cancelled job
// revives it (its journal replays the cells that did finish); resubmitting
// a queued or running job returns it unchanged.
func (d *Daemon) Submit(resolved *sweep.Resolved) (api.Job, bool, error) {
	id := resolved.Key()[:IDLength]
	d.mu.Lock()
	defer d.mu.Unlock()
	if j, ok := d.jobs[id]; ok {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		switch state {
		case api.StateDone, api.StateFailed:
			return j.view(), true, nil
		case api.StateCancelled:
			select {
			case <-d.draining:
				return api.Job{}, false, ErrDraining
			default:
			}
			// Revive: the journal already holds every finished cell.
			j.mu.Lock()
			j.state = api.StateQueued
			j.exitCode, j.errMsg, j.class = 0, "", ""
			j.started, j.finished = time.Time{}, time.Time{}
			j.result = nil
			j.resolved = resolved
			j.cancel = make(chan struct{})
			j.closed = false
			close(j.changed)
			j.changed = make(chan struct{})
			j.mu.Unlock()
			d.persist(j)
			d.kick()
			return j.view(), false, nil
		default:
			return j.view(), false, nil
		}
	}
	select {
	case <-d.draining:
		return api.Job{}, false, ErrDraining
	default:
	}
	if d.pendingLocked() >= d.cfg.QueueDepth {
		return api.Job{}, false, ErrQueueFull
	}
	j := &job{
		id: id, spec: resolved.Spec, state: api.StateQueued,
		created: time.Now().UTC(), resolved: resolved,
		cancel: make(chan struct{}), changed: make(chan struct{}),
	}
	d.jobs[id] = j
	d.order = append(d.order, id)
	d.persist(j)
	d.kick()
	return j.view(), false, nil
}

// pendingLocked counts admitted-but-unfinished jobs. Caller holds d.mu.
func (d *Daemon) pendingLocked() int {
	n := 0
	for _, j := range d.jobs {
		j.mu.Lock()
		if !api.TerminalState(j.state) {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// kick wakes the runner without blocking.
func (d *Daemon) kick() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// Jobs lists every job in submission order.
func (d *Daemon) Jobs() []api.Job {
	d.mu.Lock()
	ids := append([]string(nil), d.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, d.jobs[id])
	}
	d.mu.Unlock()
	out := make([]api.Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.view()
	}
	return out
}

// Health summarises the daemon for /v1/healthz.
func (d *Daemon) Health() api.Health {
	h := api.Health{APIVersion: api.Version, Status: api.HealthOK}
	select {
	case <-d.draining:
		h.Status = api.HealthDraining
	default:
	}
	for _, j := range d.Jobs() {
		switch j.State {
		case api.StateQueued:
			h.Queued++
		case api.StateRunning:
			h.Running++
		case api.StateDone:
			h.Done++
		case api.StateFailed:
			h.Failed++
		case api.StateCancelled:
			h.Cancelled++
		}
	}
	return h
}

// Cancel asks a job to stop. A queued job cancels immediately; a running
// job drains (its in-flight cells checkpoint, unfinished cells journal as
// resumable) and reaches the cancelled state when the scheduler lets go.
// Cancelling a terminal job is a conflict.
func (d *Daemon) Cancel(id string) (api.Job, error) {
	j, ok := d.lookup(id)
	if !ok {
		return api.Job{}, fmt.Errorf("unknown job %q", id)
	}
	j.mu.Lock()
	switch j.state {
	case api.StateDone, api.StateFailed, api.StateCancelled:
		state := j.state
		j.mu.Unlock()
		return j.view(), fmt.Errorf("job %s is already %s: %w", id, state, errConflict)
	case api.StateQueued:
		if !j.closed {
			close(j.cancel)
			j.closed = true
		}
		j.mu.Unlock()
		d.transition(j, api.StateCancelled, func(j *job) {
			j.exitCode = sweep.ExitDrained
			j.class = faults.Class(faults.ErrDrained)
			j.errMsg = "cancelled before starting"
		})
		return j.view(), nil
	default: // running
		if !j.closed {
			close(j.cancel)
			j.closed = true
		}
		j.mu.Unlock()
		return j.view(), nil
	}
}

// errConflict marks cancellations of already-terminal jobs.
var errConflict = errors.New("conflict")

// IsConflict reports whether a Cancel error was a terminal-state conflict
// (HTTP 409) rather than an unknown job (404).
func IsConflict(err error) bool { return errors.Is(err, errConflict) }

// Start launches the runner goroutine. Jobs execute one at a time, each
// using the configured scheduler width internally — the same resource shape
// as one mbpsweep process.
func (d *Daemon) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		d.run()
	}()
}

// Drain begins graceful shutdown: no new submissions, no new jobs started,
// the in-flight job checkpoints and journals its unfinished cells as
// resumable. Safe to call more than once.
func (d *Daemon) Drain() {
	d.drainOnce.Do(func() { close(d.draining) })
}

// Close drains (if not already draining) and waits for the runner to stop.
func (d *Daemon) Close() error {
	d.Drain()
	d.wg.Wait()
	return nil
}

// Interrupted reports whether any admitted work did not finish: a queued
// job left behind, or a job cancelled by the drain. The mbpd process exits
// with the drained code (4) when true, matching mbpsweep's contract.
func (d *Daemon) Interrupted() bool {
	for _, j := range d.Jobs() {
		switch j.State {
		case api.StateQueued, api.StateRunning:
			return true
		case api.StateCancelled:
			return true
		}
	}
	return false
}

// run is the scheduler loop: pick the oldest queued job, execute it, repeat
// until drain.
func (d *Daemon) run() {
	for {
		j := d.nextQueued()
		if j == nil {
			select {
			case <-d.wake:
				continue
			case <-d.draining:
				return
			}
		}
		select {
		case <-d.draining:
			return
		default:
		}
		d.runJob(j)
	}
}

func (d *Daemon) nextQueued() *job {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, id := range d.order {
		j := d.jobs[id]
		j.mu.Lock()
		queued := j.state == api.StateQueued
		j.mu.Unlock()
		if queued {
			return j
		}
	}
	return nil
}

// runJob executes one sweep through the shared pipeline and stores both
// renderings of its result. Failures are classified with the faults
// taxonomy; a drain (job cancel or daemon shutdown) ends in the cancelled
// state with the drained class and exit code 4.
func (d *Daemon) runJob(j *job) {
	j.mu.Lock()
	resolved := j.resolved
	spec := j.spec
	cancel := j.cancel
	metrics := obs.New()
	j.metrics = metrics
	j.mu.Unlock()

	d.transition(j, api.StateRunning, nil)
	d.logf("daemon: job %s running (%s, [%d..%d])", j.id, spec.Predictor, spec.From, spec.To)

	if resolved == nil {
		// Recovered from disk: re-resolve. The traces must still exist on
		// this host; digests re-key the journal cells identically.
		r, err := spec.Resolve()
		if err != nil {
			d.failJob(j, err)
			return
		}
		r.AttachDigests()
		resolved = r
	}

	jnl, err := journal.Open(filepath.Join(d.jobDir(j.id), "journal"))
	if err != nil {
		d.failJob(j, fmt.Errorf("opening job journal: %w", err))
		return
	}

	// Merge the per-job cancel and the daemon-wide drain into the single
	// drain channel the scheduler watches.
	drain := make(chan struct{})
	stopMerge := make(chan struct{})
	var mergeWG sync.WaitGroup
	mergeWG.Add(1)
	go func() {
		defer mergeWG.Done()
		select {
		case <-cancel:
		case <-d.draining:
		case <-stopMerge:
			return
		}
		close(drain)
	}()

	mode, _ := spec.Mode() // validated at resolve time
	sets, runErr := resolved.Run(sweep.RunOptions{
		Jobs:       d.cfg.Jobs,
		CacheBytes: d.cfg.CacheBytes,
		Policy:     sim.Policy{Mode: mode, Retries: spec.Retries, Backoff: d.cfg.Backoff},
		Metrics:    metrics,
		Journal:    jnl, CheckpointEvery: d.cfg.CheckpointEvery,
		Drain: drain, CellTimeout: d.cfg.CellTimeout,
	})
	close(stopMerge)
	mergeWG.Wait()
	if err := jnl.Close(); err != nil {
		d.logf("daemon: job %s: closing journal: %v", j.id, err)
	}

	if runErr != nil {
		if errors.Is(runErr, faults.ErrDrained) {
			d.transition(j, api.StateCancelled, func(j *job) {
				j.exitCode = sweep.ExitDrained
				j.class = faults.Class(faults.ErrDrained)
				j.errMsg = runErr.Error()
			})
			d.logf("daemon: job %s drained", j.id)
			return
		}
		d.failJob(j, runErr)
		return
	}

	result, exit := renderResult(resolved, sets)
	// Both renderings persist verbatim (not re-marshalled), so the result
	// endpoint serves byte-identical output across daemon restarts.
	if err := writeBytesAtomic(filepath.Join(d.jobDir(j.id), "result.json"), result.JSON); err != nil {
		d.logf("daemon: job %s: storing result: %v", j.id, err)
	}
	if err := writeBytesAtomic(filepath.Join(d.jobDir(j.id), "result.txt"), []byte(result.Text)); err != nil {
		d.logf("daemon: job %s: storing result: %v", j.id, err)
	}
	state := api.StateDone
	mutate := func(j *job) {
		j.exitCode = exit
		j.result = &result
	}
	if exit == sweep.ExitDrained {
		// Under -policy skip a drain surfaces as resumable failure rows in
		// an otherwise rendered report: keep the report, but the job is
		// cancelled (resubmitting revives it and replays the journal).
		state = api.StateCancelled
		mutate = func(j *job) {
			j.exitCode = exit
			j.class = faults.Class(faults.ErrDrained)
			j.result = &result
		}
	}
	d.transition(j, state, mutate)
	d.logf("daemon: job %s %s (exit %d)", j.id, state, exit)
}

func (d *Daemon) failJob(j *job, err error) {
	d.transition(j, api.StateFailed, func(j *job) {
		j.exitCode = sweep.ExitTotal
		j.errMsg = err.Error()
		j.class = faults.Class(err)
	})
	d.logf("daemon: job %s failed: %v", j.id, err)
}

// renderResult runs the shared renderer twice — once for the JSON document,
// once for the text table — so mbpctl can print either form byte-identically
// to a local mbpsweep run. Both renderings agree on the exit code.
func renderResult(r *sweep.Resolved, sets []*sim.SetResult) (api.JobResult, int) {
	var jsonBuf, textBuf, errBuf bytes.Buffer
	exit := sweep.Render(&jsonBuf, &errBuf, r.Specs, sets, len(r.Sources), true)
	sweep.Render(&textBuf, &errBuf, r.Specs, sets, len(r.Sources), false)
	return api.JobResult{
		ExitCode: exit,
		JSON:     json.RawMessage(jsonBuf.Bytes()),
		Text:     textBuf.String(),
	}, exit
}
