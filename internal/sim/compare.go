package sim

import (
	"io"
	"sort"
	"time"

	"mbplib/internal/bp"
)

// CompareName identifies the comparison simulator in result metadata.
const CompareName = "MBPlib comparison simulator (Go)"

// CompareMetrics reports one predictor's side of a comparison run.
type CompareMetrics struct {
	MPKI           float64 `json:"mpki"`
	Mispredictions uint64  `json:"mispredictions"`
	Accuracy       float64 `json:"accuracy"`
}

// CompareBranchReport is one entry of a comparison's most_failed section:
// the branches accounting for the biggest difference in MPKI between the
// two predictors (§VI-C), telling which branches get predicted better and
// whether some got worse.
type CompareBranchReport struct {
	IP          uint64  `json:"ip"`
	Occurrences uint64  `json:"occurrences"`
	MPKI0       float64 `json:"mpki_0"`
	MPKI1       float64 `json:"mpki_1"`
	MPKIDiff    float64 `json:"mpki_diff"` // MPKI1 - MPKI0; negative means predictor 1 is better here
}

// CompareMetadata is the metadata section of a comparison result.
type CompareMetadata struct {
	Simulator              string         `json:"simulator"`
	Version                string         `json:"version"`
	Trace                  string         `json:"trace"`
	WarmupInstr            uint64         `json:"warmup_instr"`
	SimulationInstr        uint64         `json:"simulation_instr"`
	ExhaustedTrace         bool           `json:"exhausted_trace"`
	NumConditionalBranches uint64         `json:"num_conditional_branches"`
	Predictor0             map[string]any `json:"predictor_0"`
	Predictor1             map[string]any `json:"predictor_1"`
}

// CompareResult is the output of the comparison simulator.
type CompareResult struct {
	Metadata   CompareMetadata       `json:"metadata"`
	Metrics0   CompareMetrics        `json:"metrics_0"`
	Metrics1   CompareMetrics        `json:"metrics_1"`
	MostFailed []CompareBranchReport `json:"most_failed"`
	// SimulationTime is the wall-clock time of the whole comparison.
	SimulationTime float64 `json:"simulation_time"`
}

// compareStats tracks per-branch misses for both predictors at once.
type compareStats struct {
	index  map[uint64]int32
	ips    []uint64
	occ    []uint64
	missed [2][]uint64
}

// Compare simulates two predictors in parallel over one reading of the
// trace, so the per-branch misprediction deltas come from exactly the same
// event stream (§VI-C).
func Compare(r bp.Reader, p0, p1 bp.Predictor, cfg Config) (*CompareResult, error) {
	if p0 == nil || p1 == nil {
		return nil, ErrNilPredictor
	}
	start := time.Now()
	stats := &compareStats{index: make(map[uint64]int32, 1024)}
	var (
		instr        uint64
		condBranches uint64
		misses       [2]uint64
		exhausted    bool
		limit        uint64
	)
	if cfg.SimInstructions > 0 {
		limit = cfg.WarmupInstructions + cfg.SimInstructions
	}
	for {
		ev, err := r.Read()
		if err != nil {
			if err == io.EOF {
				exhausted = true
				break
			}
			return nil, err
		}
		instr += ev.InstrsSinceLastBranch + 1
		b := ev.Branch
		if b.Opcode.IsConditional() {
			miss0 := p0.Predict(b.IP) != b.Taken
			miss1 := p1.Predict(b.IP) != b.Taken
			if instr > cfg.WarmupInstructions {
				condBranches++
				if miss0 {
					misses[0]++
				}
				if miss1 {
					misses[1]++
				}
				stats.record(b.IP, miss0, miss1)
			}
			p0.Train(b)
			p1.Train(b)
		}
		p0.Track(b)
		p1.Track(b)
		if limit > 0 && instr >= limit {
			break
		}
	}

	simInstr := uint64(0)
	if instr > cfg.WarmupInstructions {
		simInstr = instr - cfg.WarmupInstructions
	}
	res := &CompareResult{
		Metadata: CompareMetadata{
			Simulator:              CompareName,
			Version:                Version,
			Trace:                  cfg.TraceName,
			WarmupInstr:            cfg.WarmupInstructions,
			SimulationInstr:        simInstr,
			ExhaustedTrace:         exhausted,
			NumConditionalBranches: condBranches,
			Predictor0:             predictorMetadata(p0),
			Predictor1:             predictorMetadata(p1),
		},
		SimulationTime: time.Since(start).Seconds(),
	}
	res.Metrics0 = compareMetrics(misses[0], condBranches, simInstr)
	res.Metrics1 = compareMetrics(misses[1], condBranches, simInstr)
	res.MostFailed = compareMostFailed(stats, simInstr, cfg.MostFailedLimit)
	return res, nil
}

func compareMetrics(misses, cond, simInstr uint64) CompareMetrics {
	m := CompareMetrics{Mispredictions: misses}
	if simInstr > 0 {
		m.MPKI = float64(misses) / (float64(simInstr) / 1000)
	}
	if cond > 0 {
		m.Accuracy = 1 - float64(misses)/float64(cond)
	}
	return m
}

func (s *compareStats) record(ip uint64, miss0, miss1 bool) {
	i, ok := s.index[ip]
	if !ok {
		i = int32(len(s.ips))
		s.index[ip] = i
		s.ips = append(s.ips, ip)
		s.occ = append(s.occ, 0)
		s.missed[0] = append(s.missed[0], 0)
		s.missed[1] = append(s.missed[1], 0)
	}
	s.occ[i]++
	if miss0 {
		s.missed[0][i]++
	}
	if miss1 {
		s.missed[1][i]++
	}
}

// compareMostFailed lists branches by descending |MPKI difference|. limit
// caps the report; 0 defaults to 20 entries.
func compareMostFailed(s *compareStats, simInstr uint64, limit int) []CompareBranchReport {
	if simInstr == 0 || len(s.ips) == 0 {
		return nil
	}
	if limit <= 0 {
		limit = 20
	}
	type entry struct {
		i    int32
		diff int64
	}
	var entries []entry
	for i := range s.ips {
		d := int64(s.missed[1][i]) - int64(s.missed[0][i])
		if d != 0 {
			entries = append(entries, entry{int32(i), d})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		da, db := abs64(entries[a].diff), abs64(entries[b].diff)
		if da != db {
			return da > db
		}
		return s.ips[entries[a].i] < s.ips[entries[b].i]
	})
	if len(entries) > limit {
		entries = entries[:limit]
	}
	kilo := float64(simInstr) / 1000
	reports := make([]CompareBranchReport, 0, len(entries))
	for _, e := range entries {
		reports = append(reports, CompareBranchReport{
			IP:          s.ips[e.i],
			Occurrences: s.occ[e.i],
			MPKI0:       float64(s.missed[0][e.i]) / kilo,
			MPKI1:       float64(s.missed[1][e.i]) / kilo,
			MPKIDiff:    float64(e.diff) / kilo,
		})
	}
	return reports
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
