package sim

// This file is the crash-safe resumable-sweep machinery: it lets
// SweepParallel journal finished cells, checkpoint in-flight ones, replay a
// previous run's journal, and drain gracefully on a signal. See
// internal/sim/journal for the durability substrate and DESIGN.md
// ("Resumable sweeps") for the recovery rules.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
	"mbplib/internal/obs"
	"mbplib/internal/sim/journal"
	"mbplib/internal/sim/tracecache"
)

// CellKey is the journal identity of one (trace, predictor) cell: the trace
// identity (content digest when the source carries one), the canonical
// predictor spec, and the simulation window. Any difference — other trace
// bytes, other predictor configuration, other warmup/limit — yields another
// key, so a journal never replays a result the current invocation would not
// have produced itself.
func CellKey(src TraceSource, predictor string, cfg Config) string {
	id := src.Digest
	if id == "" {
		id = src.Name
	}
	return fmt.Sprintf("%s|%s|w=%d|s=%d", id, predictor, cfg.WarmupInstructions, cfg.SimInstructions)
}

// journalCell durably appends one finished cell. Resumable (drained)
// failures are never journalled: the cell must run again on resume.
func journalCell(jnl *journal.Journal, col *obs.Collector, key string, res *Result, fail *TraceFailure) error {
	start := col.Now()
	defer col.Stage(obs.StageJournal).Since(start)
	rec := journal.CellRecord{Key: key}
	var err error
	if res != nil {
		rec.Result, err = json.Marshal(res)
	} else {
		rec.Failure, err = json.Marshal(fail)
	}
	if err != nil {
		return err
	}
	n, err := jnl.AppendCell(rec)
	if err != nil {
		return err
	}
	col.Ctr(obs.CtrJournalRecords).Add(1)
	col.Ctr(obs.CtrJournalBytes).Add(uint64(n))
	return nil
}

// decodeCell rehydrates one journalled cell. Replayed results are
// re-marshalled from the typed structs downstream, which is where the
// byte-identical-output guarantee of a resumed sweep is enforced (the
// journal envelope itself only promises semantic JSON equality).
func decodeCell(rec journal.CellRecord) (*Result, *TraceFailure, error) {
	if rec.Result != nil {
		var res Result
		if err := json.Unmarshal(rec.Result, &res); err != nil {
			return nil, nil, err
		}
		return &res, nil, nil
	}
	var fail TraceFailure
	if err := json.Unmarshal(rec.Failure, &fail); err != nil {
		return nil, nil, err
	}
	fail.Err = &replayedError{msg: fail.Message, class: classErr(fail.Class)}
	return nil, &fail, nil
}

// replayedError resurrects the fault class of a journalled failure so
// errors.Is-based decisions (FailFast selection, drained exit codes) behave
// the same on replay as they did live.
type replayedError struct {
	msg   string
	class error
}

func (e *replayedError) Error() string { return e.msg }
func (e *replayedError) Unwrap() error { return e.class }

// classErr maps a faults taxonomy class name back to its sentinel; nil for
// "other" (and anything unknown), whose failures carry no sentinel.
func classErr(class string) error {
	switch class {
	case "corrupt":
		return faults.ErrCorrupt
	case "truncated":
		return faults.ErrTruncated
	case "limit":
		return faults.ErrLimit
	case "panic":
		return faults.ErrPredictorPanic
	case "deadline":
		return faults.ErrDeadline
	case "drained":
		return faults.ErrDrained
	}
	return nil
}

// drainedFailure marks a cell the drain stopped before it was admitted.
func drainedFailure(trace string) *TraceFailure {
	err := fmt.Errorf("not started: %w", faults.ErrDrained)
	return &TraceFailure{
		Trace:     trace,
		Class:     faults.Class(err),
		Message:   err.Error(),
		Resumable: true,
		Err:       err,
	}
}

// mapDeadline rewrites a cell-timeout expiry into the typed deadline fault;
// anything else — in particular context.Canceled, which the worker's
// cancellation-echo check matches on — passes through untouched.
func mapDeadline(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("cell deadline exceeded: %w", faults.ErrDeadline)
	}
	return err
}

// interruptErr reports why an in-flight cell must stop: the sweep is
// draining (faults.ErrDrained, resumable), its deadline expired
// (faults.ErrDeadline), or the sweep was cancelled (raw context.Canceled).
// nil means keep going; a nil drain channel never fires.
func interruptErr(ctx context.Context, drain <-chan struct{}) error {
	select {
	case <-drain:
		return fmt.Errorf("interrupted: %w", faults.ErrDrained)
	default:
	}
	if err := ctx.Err(); err != nil {
		return mapDeadline(err)
	}
	return nil
}

// interruptSource wraps a trace source so its readers observe cancellation,
// the cell deadline and the drain between batches, letting the scheduler
// interrupt an in-flight streaming simulation. The open-phase check covers
// only the drain: drained opens must fail permanently (no retry), while
// context errors keep flowing through the reader as before.
func interruptSource(ctx context.Context, drain <-chan struct{}, src TraceSource) TraceSource {
	return TraceSource{Name: src.Name, Digest: src.Digest, Open: func() (bp.Reader, io.Closer, error) {
		select {
		case <-drain:
			return nil, nil, fmt.Errorf("not started: %w", faults.ErrDrained)
		default:
		}
		r, closer, err := src.Open()
		if err != nil {
			return nil, nil, err
		}
		return &interruptReader{ctx: ctx, drain: drain, r: r}, closer, nil
	}}
}

// interruptReader checks for interruption before each read of the wrapped
// reader. The error surfaces through the normal sticky-error path, so the
// prefetch pipeline shuts down cleanly.
type interruptReader struct {
	ctx   context.Context
	drain <-chan struct{}
	r     bp.Reader
}

func (c *interruptReader) Read() (bp.Event, error) {
	if err := interruptErr(c.ctx, c.drain); err != nil {
		return bp.Event{}, err
	}
	return c.r.Read()
}

func (c *interruptReader) ReadBatch(dst []bp.Event) (int, error) {
	if err := interruptErr(c.ctx, c.drain); err != nil {
		return 0, err
	}
	return bp.ReadBatch(c.r, dst)
}

// cellJournal is the journalling context of one in-flight cell.
type cellJournal struct {
	j     *journal.Journal
	key   string
	every uint64
	col   *obs.Collector
}

// checkpoint durably snapshots the cell at consumed events.
func (jc *cellJournal) checkpoint(loop *runLoop, p bp.Predictor, consumed uint64) error {
	start := jc.col.Now()
	defer jc.col.Stage(obs.StageJournal).Since(start)
	state, err := encodeCellState(loop, p)
	if err != nil {
		return err
	}
	n, err := jc.j.AppendCheckpoint(journal.CheckpointRecord{Key: jc.key, Events: consumed, State: state})
	if err != nil {
		return err
	}
	jc.col.Ctr(obs.CtrCheckpoints).Add(1)
	jc.col.Ctr(obs.CtrJournalRecords).Add(1)
	jc.col.Ctr(obs.CtrJournalBytes).Add(uint64(n))
	return nil
}

// cellStateVersion versions the sim-owned half of a cell checkpoint (the
// loop counters and branch statistics around the predictor's own payload).
const cellStateVersion = 1

// encodeCellState serializes the resumable state of an in-flight cell: the
// loop counters, the per-branch statistics, and the predictor's own
// checkpoint, all through the bp checkpoint codec.
func encodeCellState(loop *runLoop, p bp.Predictor) ([]byte, error) {
	ck, ok := p.(bp.Checkpointer)
	if !ok {
		return nil, errors.New("sim: predictor does not implement bp.Checkpointer")
	}
	var pstate bytes.Buffer
	if err := ck.Checkpoint(&pstate); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	cw := bp.NewCkptWriter(&buf)
	cw.Header("simcell", cellStateVersion)
	cw.U64(loop.instr)
	cw.U64(loop.condBranches)
	cw.U64(loop.mispredictions)
	cw.U64s(loop.stats.index.ips)
	cw.U64s(loop.stats.occ)
	cw.U64s(loop.stats.missed)
	cw.Bytes(pstate.Bytes())
	if err := cw.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// restoreCellState rebuilds loop and predictor state from a checkpoint. On
// error the receivers are unspecified; the caller restarts the cell on
// fresh instances (a bad checkpoint must never condemn the cell).
func restoreCellState(state []byte, loop *runLoop, p bp.Predictor) error {
	ck, ok := p.(bp.Checkpointer)
	if !ok {
		return fmt.Errorf("sim: predictor does not implement bp.Checkpointer: %w", faults.ErrCorrupt)
	}
	cr := bp.NewCkptReader(bytes.NewReader(state))
	if v := cr.Header("simcell"); cr.Err() == nil && v != cellStateVersion {
		cr.Corrupt("simcell checkpoint version %d, want %d", v, cellStateVersion)
	}
	instr := cr.U64()
	cond := cr.U64()
	miss := cr.U64()
	ips := cr.U64s()
	occ := cr.U64s()
	missed := cr.U64s()
	pstate := cr.Bytes()
	if err := cr.Err(); err != nil {
		return err
	}
	if len(occ) > len(ips) || len(missed) != len(occ) {
		return fmt.Errorf("simcell checkpoint: %d stats rows over %d branches: %w", len(occ), len(ips), faults.ErrCorrupt)
	}
	// Reinserting the dense key array in order reproduces the exact dense
	// indices the counters were recorded under.
	for _, ip := range ips {
		loop.stats.index.lookup(ip)
	}
	loop.stats.occ, loop.stats.missed = occ, missed
	loop.instr, loop.condBranches, loop.mispredictions = instr, cond, miss
	return ck.Restore(bytes.NewReader(pstate))
}

// batchStream abstracts how a worker consumes a trace: replayed cached
// batches or direct streaming reads. next returns a non-empty batch, or
// (nil, io.EOF) on clean exhaustion, or (nil, err) on a decode error —
// always after every event decoded before the error was delivered.
type batchStream interface {
	next() ([]bp.Event, error)
}

// entryStream replays the batches of a pinned decoded-trace cache entry.
type entryStream struct {
	entry *tracecache.Entry
	i     int
}

func (s *entryStream) next() ([]bp.Event, error) {
	batches := s.entry.Batches()
	for s.i < len(batches) {
		b := batches[s.i]
		s.i++
		if len(b) > 0 {
			return b, nil
		}
	}
	return nil, s.entry.Err() // io.EOF when fully decoded
}

// readStream batches a reader directly. A terminal error arriving with a
// non-empty batch is held back until that batch was delivered, preserving
// the "error after n events" precedence of the prefetched pipeline.
type readStream struct {
	r   bp.Reader
	buf []bp.Event
	err error
}

func (s *readStream) next() ([]bp.Event, error) {
	if s.err != nil {
		return nil, s.err
	}
	n, err := bp.ReadBatch(s.r, s.buf)
	if n == 0 {
		if err == nil {
			err = io.EOF // defensive: a healthy reader never returns (0, nil)
		}
		return nil, err
	}
	s.err = err
	return s.buf[:n], nil
}

// runCell simulates one predictor over a batch stream with the
// resumable-cell machinery: restore from a journalled checkpoint, periodic
// checkpointing every jc.every events, and drain/deadline observation
// between batches. With a nil jc and a never-closed drain it reduces to the
// exact historical cached-entry loop, so results stay byte-identical to the
// sequential path. On a drain the current state is checkpointed (when
// journalling a checkpointable predictor) before the drained error returns,
// so the resumed sweep continues mid-trace instead of starting over.
func runCell(ctx context.Context, drain <-chan struct{}, stream batchStream, newP func() bp.Predictor, cfg Config, jc *cellJournal) (*Result, error) {
	start := time.Now()
	col := cfg.Metrics
	loop := newRunLoop(cfg)
	p := newP()
	var consumed, toSkip, lastCkpt uint64
	every := uint64(0)
	if jc != nil {
		if _, ok := p.(bp.Checkpointer); ok {
			every = jc.every
		}
		if rec, ok := jc.j.Checkpoint(jc.key); ok {
			if err := restoreCellState(rec.State, loop, p); err != nil {
				loop, p = newRunLoop(cfg), newP() // bad checkpoint: restart clean
			} else {
				consumed, toSkip, lastCkpt = rec.Events, rec.Events, rec.Events
			}
		}
	}
	for {
		if err := interruptErr(ctx, drain); err != nil {
			if errors.Is(err, faults.ErrDrained) {
				col.Ctr(obs.CtrDraining).Store(1)
				if every > 0 && consumed > lastCkpt {
					if cerr := jc.checkpoint(loop, p, consumed); cerr != nil {
						return nil, cerr
					}
				}
			}
			return nil, err
		}
		b, err := stream.next()
		if err != nil {
			if err == io.EOF {
				return loop.result(p, cfg, true, start), nil
			}
			return nil, err
		}
		if toSkip >= uint64(len(b)) {
			// Entirely inside the restored prefix: the loop and predictor
			// already account for these events.
			toSkip -= uint64(len(b))
			continue
		}
		b = b[toSkip:]
		toSkip = 0
		simStage := obs.StageSim
		if loop.instr < loop.warmup {
			simStage = obs.StageWarmup
		}
		tSim := col.Now()
		stop := loop.process(b, p)
		col.Stage(simStage).Since(tSim)
		col.Ctr(obs.CtrEvents).Add(uint64(len(b)))
		consumed += uint64(len(b))
		if stop {
			// Instruction limit hit: a pending decode error past the stop
			// point is moot, exactly like Run's precedence.
			return loop.result(p, cfg, false, start), nil
		}
		if every > 0 && consumed-lastCkpt >= every {
			if err := jc.checkpoint(loop, p, consumed); err != nil {
				return nil, err
			}
			lastCkpt = consumed
		}
	}
}

// runStream is the journalling variant of the too-big-to-cache path: it
// streams the trace directly — no prefetch goroutine, so checkpoints cut at
// a consistent "events consumed" boundary — through the same resumable loop
// as cached cells.
func runStream(ctx context.Context, drain <-chan struct{}, src TraceSource, pred PredictorSpec, cfg Config, policy Policy, jc *cellJournal, start time.Time) (*Result, *TraceFailure) {
	r, closer, attempts, err := openWithRetry(ctx, src, policy)
	if err != nil {
		return nil, newFailure(src.Name, mapDeadline(err), attempts, start)
	}
	if closer != nil {
		defer closer.Close() //mbpvet:ignore droppederr -- read side: a close failure cannot corrupt the already-consumed trace
	}
	cfg.TraceName = src.Name
	res, err := runCell(ctx, drain, &readStream{r: r, buf: make([]bp.Event, batchSizeFor(r))}, pred.New, cfg, jc)
	if err != nil {
		return nil, newFailure(src.Name, mapDeadline(err), attempts, start)
	}
	return res, nil
}
