package sim

import (
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"

	"mbplib/internal/bp"
)

// sliceReader serves events from memory.
type sliceReader struct {
	evs []bp.Event
	pos int
}

func (r *sliceReader) Read() (bp.Event, error) {
	if r.pos >= len(r.evs) {
		return bp.Event{}, io.EOF
	}
	ev := r.evs[r.pos]
	r.pos++
	return ev, nil
}

// staticPredictor always predicts the configured outcome.
type staticPredictor struct {
	taken  bool
	trains []bp.Branch
	tracks []bp.Branch
}

func (p *staticPredictor) Predict(uint64) bool { return p.taken }
func (p *staticPredictor) Train(b bp.Branch)   { p.trains = append(p.trains, b) }
func (p *staticPredictor) Track(b bp.Branch)   { p.tracks = append(p.tracks, b) }

// describedPredictor also provides metadata and statistics.
type describedPredictor struct {
	staticPredictor
}

func (p *describedPredictor) Metadata() map[string]any {
	return map[string]any{"name": "test predictor", "param": 3}
}

func (p *describedPredictor) Statistics() map[string]any {
	return map[string]any{"conflicts": 7}
}

func condEvent(ip uint64, taken bool, gap uint64) bp.Event {
	return bp.Event{
		Branch:                bp.Branch{IP: ip, Target: ip + 64, Opcode: bp.OpCondJump, Taken: taken},
		InstrsSinceLastBranch: gap,
	}
}

func callEvent(ip uint64) bp.Event {
	return bp.Event{Branch: bp.Branch{IP: ip, Target: ip + 0x100, Opcode: bp.OpCall, Taken: true}}
}

func TestRunCountsMispredictions(t *testing.T) {
	evs := []bp.Event{
		condEvent(0x10, true, 4),  // predicted taken: hit
		condEvent(0x20, false, 4), // predicted taken: miss
		condEvent(0x10, true, 4),  // hit
		condEvent(0x20, false, 4), // miss
	}
	p := &staticPredictor{taken: true}
	res, err := Run(&sliceReader{evs: evs}, p, Config{TraceName: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Mispredictions != 2 {
		t.Errorf("mispredictions = %d, want 2", res.Metrics.Mispredictions)
	}
	if res.Metadata.NumConditionalBranches != 4 {
		t.Errorf("conditional branches = %d, want 4", res.Metadata.NumConditionalBranches)
	}
	if res.Metadata.SimulationInstr != 20 {
		t.Errorf("simulation instructions = %d, want 20", res.Metadata.SimulationInstr)
	}
	wantMPKI := 2.0 / (20.0 / 1000)
	if res.Metrics.MPKI != wantMPKI {
		t.Errorf("MPKI = %v, want %v", res.Metrics.MPKI, wantMPKI)
	}
	if res.Metrics.Accuracy != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", res.Metrics.Accuracy)
	}
	if !res.Metadata.ExhaustedTrace {
		t.Errorf("exhausted_trace = false, want true")
	}
	if res.Metrics.SimulationTime < 0 {
		t.Errorf("simulation_time negative")
	}
}

func TestRunTrainTrackSemantics(t *testing.T) {
	evs := []bp.Event{
		condEvent(0x10, true, 0),
		callEvent(0x20),
		condEvent(0x30, false, 0),
	}
	p := &staticPredictor{taken: true}
	if _, err := Run(&sliceReader{evs: evs}, p, Config{}); err != nil {
		t.Fatal(err)
	}
	// Train only on conditional branches; Track on every branch.
	if len(p.trains) != 2 {
		t.Errorf("Train called %d times, want 2", len(p.trains))
	}
	if len(p.tracks) != 3 {
		t.Errorf("Track called %d times, want 3", len(p.tracks))
	}
	if p.trains[0].IP != 0x10 || p.trains[1].IP != 0x30 {
		t.Errorf("Train branches wrong: %+v", p.trains)
	}
}

func TestRunWarmup(t *testing.T) {
	var evs []bp.Event
	for i := 0; i < 100; i++ {
		evs = append(evs, condEvent(0x10, false, 9)) // 10 instructions each
	}
	p := &staticPredictor{taken: true} // always wrong
	res, err := Run(&sliceReader{evs: evs}, p, Config{WarmupInstructions: 500})
	if err != nil {
		t.Fatal(err)
	}
	// Instructions 1..500 are warm-up: the first 50 branches (ending at
	// instruction 500) do not count.
	if res.Metrics.Mispredictions != 50 {
		t.Errorf("mispredictions = %d, want 50", res.Metrics.Mispredictions)
	}
	if res.Metadata.NumConditionalBranches != 50 {
		t.Errorf("counted branches = %d, want 50", res.Metadata.NumConditionalBranches)
	}
	if res.Metadata.SimulationInstr != 500 {
		t.Errorf("simulation instructions = %d, want 500", res.Metadata.SimulationInstr)
	}
	if res.Metadata.WarmupInstr != 500 {
		t.Errorf("warmup_instr = %d", res.Metadata.WarmupInstr)
	}
	// Predictor still trained during warm-up.
	if len(p.trains) != 100 {
		t.Errorf("Train called %d times, want 100", len(p.trains))
	}
}

func TestRunInstructionLimit(t *testing.T) {
	var evs []bp.Event
	for i := 0; i < 100; i++ {
		evs = append(evs, condEvent(0x10, false, 9))
	}
	res, err := Run(&sliceReader{evs: evs}, &staticPredictor{taken: true}, Config{SimInstructions: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metadata.ExhaustedTrace {
		t.Errorf("exhausted_trace = true for limited run")
	}
	if res.Metadata.SimulationInstr != 200 {
		t.Errorf("simulation instructions = %d, want 200", res.Metadata.SimulationInstr)
	}
	if res.Metrics.Mispredictions != 20 {
		t.Errorf("mispredictions = %d, want 20", res.Metrics.Mispredictions)
	}
}

func TestRunStaticBranchCount(t *testing.T) {
	evs := []bp.Event{
		condEvent(0x10, true, 0), condEvent(0x10, true, 0),
		condEvent(0x20, true, 0), callEvent(0x30),
	}
	res, err := Run(&sliceReader{evs: evs}, &staticPredictor{taken: true}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metadata.NumBranchInstructions != 3 {
		t.Errorf("static branches = %d, want 3", res.Metadata.NumBranchInstructions)
	}
}

func TestRunMostFailed(t *testing.T) {
	var evs []bp.Event
	// Branch A: 60 misses; B: 30 misses; C: 10 misses. Half of 100 = 50:
	// branch A alone covers it.
	for i := 0; i < 60; i++ {
		evs = append(evs, condEvent(0xA, false, 0))
	}
	for i := 0; i < 30; i++ {
		evs = append(evs, condEvent(0xB, false, 0))
	}
	for i := 0; i < 10; i++ {
		evs = append(evs, condEvent(0xC, false, 0))
	}
	// And a perfectly predicted branch that must not appear.
	for i := 0; i < 50; i++ {
		evs = append(evs, condEvent(0xD, true, 0))
	}
	res, err := Run(&sliceReader{evs: evs}, &staticPredictor{taken: true}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.NumMostFailedBranches != 1 {
		t.Errorf("num_most_failed_branches = %d, want 1", res.Metrics.NumMostFailedBranches)
	}
	if len(res.MostFailed) != 1 || res.MostFailed[0].IP != 0xA {
		t.Fatalf("most_failed = %+v, want branch 0xA", res.MostFailed)
	}
	mf := res.MostFailed[0]
	if mf.Occurrences != 60 {
		t.Errorf("occurrences = %d, want 60", mf.Occurrences)
	}
	if mf.Accuracy != 0 {
		t.Errorf("accuracy = %v, want 0", mf.Accuracy)
	}
	wantMPKI := 60.0 / (float64(res.Metadata.SimulationInstr) / 1000)
	if mf.MPKI != wantMPKI {
		t.Errorf("branch MPKI = %v, want %v", mf.MPKI, wantMPKI)
	}
}

func TestRunMostFailedLimit(t *testing.T) {
	var evs []bp.Event
	for ip := uint64(1); ip <= 10; ip++ {
		for i := 0; i < 10; i++ {
			evs = append(evs, condEvent(ip, false, 0))
		}
	}
	res, err := Run(&sliceReader{evs: evs}, &staticPredictor{taken: true}, Config{MostFailedLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MostFailed) != 3 {
		t.Errorf("report length = %d, want 3", len(res.MostFailed))
	}
	// The metric itself is not truncated: 5 branches cover half of 100.
	if res.Metrics.NumMostFailedBranches != 5 {
		t.Errorf("num_most_failed_branches = %d, want 5", res.Metrics.NumMostFailedBranches)
	}
}

func TestRunEmptyTrace(t *testing.T) {
	res, err := Run(&sliceReader{}, &staticPredictor{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MPKI != 0 || res.Metrics.Accuracy != 0 || len(res.MostFailed) != 0 {
		t.Errorf("empty trace produced non-zero metrics: %+v", res.Metrics)
	}
}

type failingReader struct{}

func (failingReader) Read() (bp.Event, error) { return bp.Event{}, errors.New("boom") }

func TestRunPropagatesReaderError(t *testing.T) {
	if _, err := Run(failingReader{}, &staticPredictor{}, Config{}); err == nil {
		t.Errorf("reader error swallowed")
	}
}

func TestResultJSONSchema(t *testing.T) {
	evs := []bp.Event{condEvent(0x10, false, 4), condEvent(0x10, true, 4)}
	p := &describedPredictor{staticPredictor{taken: true}}
	res, err := Run(&sliceReader{evs: evs}, p, Config{TraceName: "traces/SHORT_SERVER-1.sbbt.mlz"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	// The section and key names of Listing 1 (with the paper's
	// "num_conditonal_branches" typo corrected).
	for _, key := range []string{
		`"metadata"`, `"simulator"`, `"version"`, `"trace"`, `"warmup_instr"`,
		`"simulation_instr"`, `"exhausted_trace"`, `"num_conditional_branches"`,
		`"num_branch_instructions"`, `"predictor"`, `"metrics"`, `"mpki"`,
		`"mispredictions"`, `"accuracy"`, `"num_most_failed_branches"`,
		`"simulation_time"`, `"predictor_statistics"`, `"most_failed"`,
		`"ip"`, `"occurrences"`,
	} {
		if !strings.Contains(text, key) {
			t.Errorf("JSON output missing key %s", key)
		}
	}
	// User data embedded in both sections.
	if !strings.Contains(text, `"name": "test predictor"`) {
		t.Errorf("predictor metadata not embedded:\n%s", text)
	}
	if !strings.Contains(text, `"conflicts": 7`) {
		t.Errorf("predictor statistics not embedded:\n%s", text)
	}
	// Round-trips as generic JSON.
	var generic map[string]any
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
}

func TestRunWithoutMetadataProviders(t *testing.T) {
	res, err := Run(&sliceReader{evs: []bp.Event{condEvent(1, true, 0)}}, &staticPredictor{taken: true}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metadata.Predictor == nil || res.PredictorStatistics == nil {
		t.Errorf("sections should be empty objects, not null")
	}
}
