// Metrics contract tests: collection must never change results (byte-
// identical output with metrics on or off, for every reader kind and for
// the parallel scheduler), must populate the snapshot the commands
// serialise, and must add no allocations to the simulation hot loops.
package sim_test

import (
	"bytes"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/obs"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/sim"
)

// TestRunMetricsOutputByteIdentical: for all six reader kinds, sim.Run with
// an enabled collector returns byte-identical result JSON to a run with
// metrics disabled, and the collector sees the pipeline.
func TestRunMetricsOutputByteIdentical(t *testing.T) {
	spec := equivSpec(30000)
	cfg := sim.Config{TraceName: "t", WarmupInstructions: 50_000}
	for name, newReader := range equivReaders(t, spec) {
		t.Run(name, func(t *testing.T) {
			off, err := sim.Run(newReader(), gshare.New(), cfg)
			if err != nil {
				t.Fatalf("Run without metrics: %v", err)
			}
			col := obs.New()
			cfgOn := cfg
			cfgOn.Metrics = col
			on, err := sim.Run(newReader(), gshare.New(), cfgOn)
			if err != nil {
				t.Fatalf("Run with metrics: %v", err)
			}
			offJSON, onJSON := resultJSON(t, off), resultJSON(t, on)
			if !bytes.Equal(offJSON, onJSON) {
				t.Errorf("metrics changed the result:\noff: %s\non:  %s", offJSON, onJSON)
			}
			s := col.Snapshot()
			if s.Counters["events"] != 30000 {
				t.Errorf("events = %d, want 30000", s.Counters["events"])
			}
			if s.Counters["batches"] == 0 {
				t.Errorf("no batches counted: %v", s.Counters)
			}
			if s.Stages["read"].Count == 0 {
				t.Errorf("no read stage time: %v", s.Stages)
			}
			if s.Stages["warmup"].Count == 0 && s.Stages["sim"].Count == 0 {
				t.Errorf("no consumer stage time: %v", s.Stages)
			}
			if s.Histograms["batch_read_ns"].Count != s.Counters["batches"] {
				t.Errorf("batch histogram count %d != batches %d",
					s.Histograms["batch_read_ns"].Count, s.Counters["batches"])
			}
		})
	}
}

// TestSweepParallelMetricsPopulated: an instrumented sweep produces the
// same results as an uninstrumented one and a snapshot with per-worker
// utilisation, cell progress and cache counters — the data behind the
// -metrics and -progress command flags.
func TestSweepParallelMetricsPopulated(t *testing.T) {
	srcs := genSources(t, 8000)
	cfg := sim.Config{WarmupInstructions: 5_000}
	base := sim.ParallelOptions{Workers: 4}

	plain, err := sim.SweepParallel(srcs, equivPredictors, cfg, base)
	if err != nil {
		t.Fatalf("sweep without metrics: %v", err)
	}
	col := obs.New()
	withM := base
	withM.Metrics = col
	metered, err := sim.SweepParallel(srcs, equivPredictors, cfg, withM)
	if err != nil {
		t.Fatalf("sweep with metrics: %v", err)
	}
	diffSweeps(t, plain, metered, equivPredictors)

	nCells := uint64(len(srcs) * len(equivPredictors))
	s := col.Snapshot()
	if s.Counters["cells_done"] != nCells || s.Counters["cells_total"] != nCells {
		t.Errorf("cells done/total = %d/%d, want %d/%d",
			s.Counters["cells_done"], s.Counters["cells_total"], nCells, nCells)
	}
	if _, ok := s.Counters["queue_depth"]; ok {
		t.Errorf("queue_depth = %d after completion, want 0 (omitted)", s.Counters["queue_depth"])
	}
	if s.Counters["events"] == 0 {
		t.Errorf("no events counted: %v", s.Counters)
	}
	// Trace-major scheduling: each trace misses once, then hits for every
	// further predictor of the column.
	wantMisses := uint64(len(srcs))
	if s.Counters["cache_misses"] != wantMisses {
		t.Errorf("cache_misses = %d, want %d", s.Counters["cache_misses"], wantMisses)
	}
	if s.Counters["cache_hits"] != nCells-wantMisses {
		t.Errorf("cache_hits = %d, want %d", s.Counters["cache_hits"], nCells-wantMisses)
	}
	if s.Stages["sim"].Count == 0 {
		t.Errorf("no sim stage time: %v", s.Stages)
	}
	if s.Histograms["cell_ns"].Count != nCells {
		t.Errorf("cell histogram count = %d, want %d", s.Histograms["cell_ns"].Count, nCells)
	}
	if len(s.Workers) != 4 {
		t.Fatalf("workers = %d, want 4", len(s.Workers))
	}
	var cells uint64
	var busy float64
	for _, w := range s.Workers {
		cells += w.Cells
		busy += w.BusySeconds
	}
	if cells != nCells {
		t.Errorf("worker cells sum = %d, want %d", cells, nCells)
	}
	if busy <= 0 {
		t.Errorf("no worker busy time recorded: %+v", s.Workers)
	}
}

// TestRunMetricsNoExtraAllocs is the hot-loop allocation guard: running the
// batched pipeline with an enabled collector must allocate no more than
// running it with metrics disabled — instrumentation is counters and clock
// reads, never per-batch or per-event allocation.
func TestRunMetricsNoExtraAllocs(t *testing.T) {
	spec := equivSpec(20000)
	readers := equivReaders(t, spec)
	newReader := readers["sbbt"]
	col := obs.New() // reused across runs: steady-state collection

	runWith := func(c *obs.Collector) float64 {
		cfg := sim.Config{TraceName: "t", Metrics: c}
		return testing.AllocsPerRun(3, func() {
			if _, err := sim.Run(newReader(), gshare.New(), cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := runWith(nil)
	metered := runWith(col)
	// Small slack for goroutine scheduling variance; the real failure mode —
	// an allocation per batch or per event — is thousands over this trace.
	if metered > base+8 {
		t.Errorf("metrics added allocations: %v with vs %v without", metered, base)
	}
}

// TestRunSetParallelMetrics: the single-predictor wrapper threads the
// collector through to the scheduler.
func TestRunSetParallelMetrics(t *testing.T) {
	srcs := genSources(t, 4000)
	col := obs.New()
	opts := sim.ParallelOptions{Workers: 2, Metrics: col}
	set, err := sim.RunSetParallel(srcs, func() bp.Predictor { return gshare.New() }, sim.Config{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Results) != len(srcs) {
		t.Fatalf("results = %d, want %d", len(set.Results), len(srcs))
	}
	s := col.Snapshot()
	if got := s.Counters["cells_done"]; got != uint64(len(srcs)) {
		t.Errorf("cells_done = %d, want %d", got, len(srcs))
	}
	if s.Counters["events"] == 0 {
		t.Errorf("no events counted: %v", s.Counters)
	}
}
