package sim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
	"mbplib/internal/obs"
	"mbplib/internal/sim/journal"
	"mbplib/internal/sim/tracecache"
)

// PredictorSpec names one predictor configuration of a sweep and knows how
// to construct fresh instances of it. Construction happens on the worker
// goroutine that simulates each (trace, predictor) pair — predictors are
// stateful, so instances are never shared across workers or traces.
type PredictorSpec struct {
	Name string
	New  func() bp.Predictor
}

// DefaultCacheBytes is the default decoded-trace cache budget of the
// parallel scheduler: at 32 bytes per event, 1 GiB pins about 33M branches
// of decoded trace.
const DefaultCacheBytes int64 = 1 << 30

// ParallelOptions configures the parallel sweep scheduler.
type ParallelOptions struct {
	// Workers is the number of concurrent (trace, predictor) simulations.
	// ≤ 0 means GOMAXPROCS.
	Workers int
	// CacheBytes bounds the shared decoded-trace cache. 0 means
	// DefaultCacheBytes; negative disables the cache (every pair streams
	// and re-decodes its trace, like the sequential path does).
	CacheBytes int64
	// Policy is the per-pair failure policy, with RunSetPolicy semantics.
	Policy Policy
	// Metrics receives scheduler observability (per-worker utilisation,
	// cells done, queue depth, cache counters) when non-nil. nil disables
	// collection at zero cost; results are identical either way.
	Metrics *obs.Collector
	// Journal, when non-nil, makes the sweep crash-safe: every finished
	// cell is appended durably before the sweep moves on, cells already on
	// record (keyed by CellKey) replay verbatim without simulating, and
	// in-flight cells of checkpointable predictors snapshot their state
	// every CheckpointEvery events. A sweep restarted against the same
	// journal produces byte-identical results to an uninterrupted run.
	Journal *journal.Journal
	// CheckpointEvery is the event interval between in-flight checkpoints
	// when Journal is set and the predictor implements bp.Checkpointer.
	// 0 disables checkpointing: interrupted cells restart from zero.
	CheckpointEvery uint64
	// Drain, when non-nil, requests a graceful drain once closed: no new
	// cells are admitted, in-flight cells checkpoint (when journalling)
	// and fail as resumable faults.ErrDrained, and the sweep returns with
	// everything it finished. Drained failures never trip FailFast.
	Drain <-chan struct{}
	// CellTimeout bounds the wall time of one cell. An expired cell fails
	// with a faults.ErrDeadline-classified failure and is journalled as
	// final — a cell that blows its budget once will blow it again.
	// 0 means no deadline.
	CellTimeout time.Duration
}

// SweepError is the error SweepParallel returns under FailFast: the
// lowest-indexed (predictor, trace) failure observed before cancellation.
// When several pairs fail close together, the reported pair may differ
// from the one a sequential sweep would have hit first — cancellation
// stops lower-indexed pairs from running — but the text format matches
// the sequential path: "<predictor>: sim: trace "<name>": <cause>".
type SweepError struct {
	Predictor string
	Trace     string
	Err       error
}

func (e *SweepError) Error() string {
	return fmt.Sprintf("%s: sim: trace %q: %v", e.Predictor, e.Trace, e.Err)
}

func (e *SweepError) Unwrap() error { return e.Err }

// SweepParallel scores every predictor of a sweep over every trace of a
// set, fanning the (trace, predictor) pairs across a worker pool backed by
// a shared decoded-trace cache: each trace is read, decompressed and
// decoded once (subject to the cache budget) and then simulated by many
// predictors, instead of being re-decoded once per predictor the way
// sequential per-predictor RunSetPolicy calls would.
//
// Results are deterministic regardless of completion order: the returned
// slice is indexed like predictors, each SetResult.Results like sources,
// and failures are listed in source order — byte-identical JSON to the
// sequential path. Under SkipFailed a failing pair costs exactly its own
// cell; under FailFast the first failure cancels in-flight workers via
// context and is returned as a *SweepError.
//
// With opts.Journal set the sweep is crash-safe and resumable: journalled
// cells replay verbatim before dispatch, finished cells are appended
// durably as they complete, and a drain (opts.Drain) checkpoints in-flight
// cells so a later run with the same journal picks up mid-trace. Drained
// cells surface as resumable faults.ErrDrained failures and never trip
// FailFast — a drain is an interruption, not a verdict.
func SweepParallel(sources []TraceSource, predictors []PredictorSpec, cfg Config, opts ParallelOptions) ([]*SetResult, error) {
	for _, ps := range predictors {
		if ps.New == nil {
			return nil, ErrNilPredictor
		}
	}
	nP, nT := len(predictors), len(sources)
	results := make([][]*Result, nP)
	failures := make([][]*TraceFailure, nP)
	skip := make([][]bool, nP)
	for pi := range predictors {
		results[pi] = make([]*Result, nT)
		failures[pi] = make([]*TraceFailure, nT)
		skip[pi] = make([]bool, nT)
	}
	col := opts.Metrics
	cfg.Metrics = col // stage timings and event counts accrue per pair

	// Replay: cells the journal already holds are filled in up front and
	// never scheduled; only the missing ones cost simulation time. An
	// undecodable record (foreign schema, truncated by hand) re-runs the
	// cell rather than failing the sweep.
	jnl := opts.Journal
	replayed := 0
	if jnl != nil {
		for pi := range predictors {
			for ti := range sources {
				rec, ok := jnl.Cell(CellKey(sources[ti], predictors[pi].Name, cfg))
				if !ok {
					continue
				}
				res, fail, err := decodeCell(rec)
				if err != nil {
					continue
				}
				results[pi][ti], failures[pi][ti] = res, fail
				skip[pi][ti] = true
				replayed++
			}
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nP*nT {
		workers = nP * nT
	}
	cacheBytes := opts.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = DefaultCacheBytes
	}
	cache := tracecache.New(cacheBytes) // nil (stream everything) when negative
	cache.SetCollector(col)
	col.Ctr(obs.CtrCellsTotal).Store(uint64(nP * nT))
	col.Ctr(obs.CtrCellsReplayed).Store(uint64(replayed))
	col.Ctr(obs.CtrCellsDone).Store(uint64(replayed))
	col.Ctr(obs.CtrQueueDepth).Store(uint64(nP*nT - replayed))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The first journal-append failure ends the sweep with an error: a
	// sweep that silently stopped journalling would break the crash-safety
	// its caller asked for.
	var jmu sync.Mutex
	var jerr error
	type pair struct{ pi, ti int }
	tasks := make(chan pair)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		ws := col.Worker(w) // registered up front so snapshots list idle workers
		go func() {
			defer wg.Done()
			for tk := range tasks {
				if ctx.Err() != nil {
					continue // cancelled: leave the cell empty, the sweep is aborting
				}
				tCell := col.Now()
				res, fail := runPair(ctx, cache, sources[tk.ti], predictors[tk.pi], cfg, opts)
				cellDur := col.Now().Sub(tCell)
				ws.Record(cellDur)
				col.Hist(obs.HistCellNs).ObserveDuration(cellDur)
				col.Ctr(obs.CtrCellsDone).Add(1)
				col.Ctr(obs.CtrQueueDepth).Store(uint64(nP*nT) - col.Ctr(obs.CtrCellsDone).Load())
				if fail != nil && errors.Is(fail.Err, context.Canceled) {
					continue // a cancellation echo, not a trace failure
				}
				results[tk.pi][tk.ti], failures[tk.pi][tk.ti] = res, fail
				if fail != nil && fail.Resumable {
					col.Ctr(obs.CtrCellsDrained).Add(1)
					continue // drained: not final, not journalled, no FailFast
				}
				if jnl != nil {
					key := CellKey(sources[tk.ti], predictors[tk.pi].Name, cfg)
					if err := journalCell(jnl, col, key, res, fail); err != nil {
						jmu.Lock()
						if jerr == nil {
							jerr = err
						}
						jmu.Unlock()
						cancel()
					}
				}
				if fail != nil && opts.Policy.Mode == FailFast {
					cancel()
				}
			}
		}()
	}
	// Trace-major order maximises decode sharing: the nP pairs of one trace
	// cluster in time, so its cache entry is loaded once, read nP times,
	// and then becomes the eviction candidate. A drain stops admission at
	// the current cell; everything not yet admitted is marked drained so
	// the caller can report (and later resume) exactly what remains.
	pending := make([]pair, 0, nP*nT-replayed)
	for ti := range sources {
		for pi := range predictors {
			if !skip[pi][ti] {
				pending = append(pending, pair{pi, ti})
			}
		}
	}
	for i, tk := range pending {
		admitted := false
		select {
		case tasks <- pair{tk.pi, tk.ti}:
			admitted = true
		case <-opts.Drain:
		}
		if !admitted {
			col.Ctr(obs.CtrDraining).Store(1)
			for _, rest := range pending[i:] {
				failures[rest.pi][rest.ti] = drainedFailure(sources[rest.ti].Name)
				col.Ctr(obs.CtrCellsDrained).Add(1)
			}
			break
		}
	}
	close(tasks)
	wg.Wait()

	out := make([]*SetResult, nP)
	var firstErr *SweepError
	for pi := range predictors {
		set := &SetResult{Results: results[pi]}
		for ti := range sources {
			if f := failures[pi][ti]; f != nil {
				set.Failures = append(set.Failures, *f)
				if opts.Policy.Mode == FailFast && firstErr == nil && !f.Resumable {
					firstErr = &SweepError{Predictor: predictors[pi].Name, Trace: sources[ti].Name, Err: f.Err}
				}
			}
		}
		out[pi] = set
	}
	if firstErr != nil {
		return nil, firstErr
	}
	jmu.Lock()
	defer jmu.Unlock()
	if jerr != nil {
		return nil, fmt.Errorf("sweep journal: %w", jerr)
	}
	return out, nil
}

// RunSetParallel is the single-predictor form of SweepParallel: one
// predictor configuration over a trace set, with the scheduler's cache and
// cancellation semantics. Under FailFast the returned error matches
// RunSetPolicy's format. The sequential equivalent — and the exact legacy
// path behind a CLI's -j 1 — is RunSetPolicy.
func RunSetParallel(sources []TraceSource, newPredictor func() bp.Predictor, cfg Config, opts ParallelOptions) (*SetResult, error) {
	if newPredictor == nil {
		return nil, ErrNilPredictor
	}
	sets, err := SweepParallel(sources, []PredictorSpec{{Name: "predictor", New: newPredictor}}, cfg, opts)
	if err != nil {
		var se *SweepError
		if errors.As(err, &se) {
			return nil, fmt.Errorf("sim: trace %q: %w", se.Trace, se.Err)
		}
		return nil, err
	}
	return sets[0], nil
}

// runPair simulates one (trace, predictor) pair, preferring the decoded
// cache and falling back to streaming for traces too big to pin. A panic
// anywhere in the pair — predictor or replayed decode — is recovered and
// classified, exactly like runOne on the sequential path. With a cell
// timeout configured the whole pair (cache wait included) runs under a
// per-cell deadline.
func runPair(ctx context.Context, cache *tracecache.Cache, src TraceSource, pred PredictorSpec, cfg Config, opts ParallelOptions) (result *Result, failure *TraceFailure) {
	policy := opts.Policy
	start := time.Now()
	attempts := 1
	defer func() {
		if v := recover(); v != nil {
			err := faults.NewPanicError(v, debug.Stack())
			result = nil
			failure = newFailure(src.Name, err, attempts, start)
		}
	}()
	if opts.CellTimeout > 0 {
		var cancelCell context.CancelFunc
		ctx, cancelCell = context.WithTimeout(ctx, opts.CellTimeout)
		defer cancelCell()
	}
	var jc *cellJournal
	if opts.Journal != nil {
		jc = &cellJournal{j: opts.Journal, key: CellKey(src, pred.Name, cfg), every: opts.CheckpointEvery, col: cfg.Metrics}
	}
	if src.OpenChunked != nil && cache != nil {
		if res, fail, ok := runChunked(ctx, cache, src, pred, cfg, opts, jc, start); ok {
			return res, fail
		}
		// Not an eligible container: fall through to the streaming path.
	}
	entry, err := cache.Acquire(ctx, src.Name, func() (bp.Reader, io.Closer, int, error) {
		return openWithRetry(ctx, src, policy)
	})
	if err != nil {
		// ctx expired or was cancelled while waiting on the cache.
		return nil, newFailure(src.Name, mapDeadline(err), attempts, start)
	}
	defer cache.Release(entry)
	attempts = entry.Attempts()
	if entry.TooBig() {
		if jc == nil {
			return runOne(interruptSource(ctx, opts.Drain, src), pred.New, cfg, policy)
		}
		return runStream(ctx, opts.Drain, src, pred, cfg, policy, jc, start)
	}
	cfg.TraceName = src.Name
	res, err := runCell(ctx, opts.Drain, &entryStream{entry: entry}, pred.New, cfg, jc)
	if err != nil {
		// mapDeadline covers a deadline surfacing through the entry's
		// terminal decode error rather than through interruptErr.
		return nil, newFailure(src.Name, mapDeadline(err), attempts, start)
	}
	return res, nil
}

// openWithRetry opens a trace source with the policy's transient-open
// retry loop (the same full-jitter schedule as the sequential runOne),
// reporting the attempt count for failure accounting. Open failures are
// wrapped as "opening: ..." to match sequential failure messages.
func openWithRetry(ctx context.Context, src TraceSource, policy Policy) (bp.Reader, io.Closer, int, error) {
	bo := newBackoff(policy, src.Name)
	attempts := 0
	for {
		attempts++
		if err := ctx.Err(); err != nil {
			return nil, nil, attempts, err
		}
		r, closer, err := src.Open()
		if err == nil {
			return r, closer, attempts, nil
		}
		if attempts > policy.Retries || faults.Permanent(err) {
			return nil, nil, attempts, fmt.Errorf("opening: %w", err)
		}
		if d := bo.nextDelay(); d > 0 {
			time.Sleep(d)
		}
	}
}
