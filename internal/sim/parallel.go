package sim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
	"mbplib/internal/obs"
	"mbplib/internal/sim/tracecache"
)

// PredictorSpec names one predictor configuration of a sweep and knows how
// to construct fresh instances of it. Construction happens on the worker
// goroutine that simulates each (trace, predictor) pair — predictors are
// stateful, so instances are never shared across workers or traces.
type PredictorSpec struct {
	Name string
	New  func() bp.Predictor
}

// DefaultCacheBytes is the default decoded-trace cache budget of the
// parallel scheduler: at 32 bytes per event, 1 GiB pins about 33M branches
// of decoded trace.
const DefaultCacheBytes int64 = 1 << 30

// ParallelOptions configures the parallel sweep scheduler.
type ParallelOptions struct {
	// Workers is the number of concurrent (trace, predictor) simulations.
	// ≤ 0 means GOMAXPROCS.
	Workers int
	// CacheBytes bounds the shared decoded-trace cache. 0 means
	// DefaultCacheBytes; negative disables the cache (every pair streams
	// and re-decodes its trace, like the sequential path does).
	CacheBytes int64
	// Policy is the per-pair failure policy, with RunSetPolicy semantics.
	Policy Policy
	// Metrics receives scheduler observability (per-worker utilisation,
	// cells done, queue depth, cache counters) when non-nil. nil disables
	// collection at zero cost; results are identical either way.
	Metrics *obs.Collector
}

// SweepError is the error SweepParallel returns under FailFast: the
// lowest-indexed (predictor, trace) failure observed before cancellation.
// When several pairs fail close together, the reported pair may differ
// from the one a sequential sweep would have hit first — cancellation
// stops lower-indexed pairs from running — but the text format matches
// the sequential path: "<predictor>: sim: trace "<name>": <cause>".
type SweepError struct {
	Predictor string
	Trace     string
	Err       error
}

func (e *SweepError) Error() string {
	return fmt.Sprintf("%s: sim: trace %q: %v", e.Predictor, e.Trace, e.Err)
}

func (e *SweepError) Unwrap() error { return e.Err }

// SweepParallel scores every predictor of a sweep over every trace of a
// set, fanning the (trace, predictor) pairs across a worker pool backed by
// a shared decoded-trace cache: each trace is read, decompressed and
// decoded once (subject to the cache budget) and then simulated by many
// predictors, instead of being re-decoded once per predictor the way
// sequential per-predictor RunSetPolicy calls would.
//
// Results are deterministic regardless of completion order: the returned
// slice is indexed like predictors, each SetResult.Results like sources,
// and failures are listed in source order — byte-identical JSON to the
// sequential path. Under SkipFailed a failing pair costs exactly its own
// cell; under FailFast the first failure cancels in-flight workers via
// context and is returned as a *SweepError.
func SweepParallel(sources []TraceSource, predictors []PredictorSpec, cfg Config, opts ParallelOptions) ([]*SetResult, error) {
	for _, ps := range predictors {
		if ps.New == nil {
			return nil, ErrNilPredictor
		}
	}
	nP, nT := len(predictors), len(sources)
	results := make([][]*Result, nP)
	failures := make([][]*TraceFailure, nP)
	for pi := range predictors {
		results[pi] = make([]*Result, nT)
		failures[pi] = make([]*TraceFailure, nT)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nP*nT {
		workers = nP * nT
	}
	cacheBytes := opts.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = DefaultCacheBytes
	}
	cache := tracecache.New(cacheBytes) // nil (stream everything) when negative
	col := opts.Metrics
	cache.SetCollector(col)
	cfg.Metrics = col // stage timings and event counts accrue per pair
	col.Ctr(obs.CtrCellsTotal).Store(uint64(nP * nT))
	col.Ctr(obs.CtrQueueDepth).Store(uint64(nP * nT))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type pair struct{ pi, ti int }
	tasks := make(chan pair)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		ws := col.Worker(w) // registered up front so snapshots list idle workers
		go func() {
			defer wg.Done()
			for tk := range tasks {
				if ctx.Err() != nil {
					continue // cancelled: leave the cell empty, the sweep is aborting
				}
				tCell := col.Now()
				res, fail := runPair(ctx, cache, sources[tk.ti], predictors[tk.pi], cfg, opts.Policy)
				cellDur := col.Now().Sub(tCell)
				ws.Record(cellDur)
				col.Hist(obs.HistCellNs).ObserveDuration(cellDur)
				col.Ctr(obs.CtrCellsDone).Add(1)
				col.Ctr(obs.CtrQueueDepth).Store(uint64(nP*nT) - col.Ctr(obs.CtrCellsDone).Load())
				if fail != nil && errors.Is(fail.Err, context.Canceled) {
					continue // a cancellation echo, not a trace failure
				}
				results[tk.pi][tk.ti], failures[tk.pi][tk.ti] = res, fail
				if fail != nil && opts.Policy.Mode == FailFast {
					cancel()
				}
			}
		}()
	}
	// Trace-major order maximises decode sharing: the nP pairs of one trace
	// cluster in time, so its cache entry is loaded once, read nP times,
	// and then becomes the eviction candidate.
	for ti := range sources {
		for pi := range predictors {
			tasks <- pair{pi, ti}
		}
	}
	close(tasks)
	wg.Wait()

	out := make([]*SetResult, nP)
	var firstErr *SweepError
	for pi := range predictors {
		set := &SetResult{Results: results[pi]}
		for ti := range sources {
			if f := failures[pi][ti]; f != nil {
				set.Failures = append(set.Failures, *f)
				if opts.Policy.Mode == FailFast && firstErr == nil {
					firstErr = &SweepError{Predictor: predictors[pi].Name, Trace: sources[ti].Name, Err: f.Err}
				}
			}
		}
		out[pi] = set
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// RunSetParallel is the single-predictor form of SweepParallel: one
// predictor configuration over a trace set, with the scheduler's cache and
// cancellation semantics. Under FailFast the returned error matches
// RunSetPolicy's format. The sequential equivalent — and the exact legacy
// path behind a CLI's -j 1 — is RunSetPolicy.
func RunSetParallel(sources []TraceSource, newPredictor func() bp.Predictor, cfg Config, opts ParallelOptions) (*SetResult, error) {
	if newPredictor == nil {
		return nil, ErrNilPredictor
	}
	sets, err := SweepParallel(sources, []PredictorSpec{{Name: "predictor", New: newPredictor}}, cfg, opts)
	if err != nil {
		var se *SweepError
		if errors.As(err, &se) {
			return nil, fmt.Errorf("sim: trace %q: %w", se.Trace, se.Err)
		}
		return nil, err
	}
	return sets[0], nil
}

// runPair simulates one (trace, predictor) pair, preferring the decoded
// cache and falling back to streaming for traces too big to pin. A panic
// anywhere in the pair — predictor or replayed decode — is recovered and
// classified, exactly like runOne on the sequential path.
func runPair(ctx context.Context, cache *tracecache.Cache, src TraceSource, pred PredictorSpec, cfg Config, policy Policy) (result *Result, failure *TraceFailure) {
	attempts := 1
	defer func() {
		if v := recover(); v != nil {
			err := faults.NewPanicError(v, debug.Stack())
			result = nil
			failure = newFailure(src.Name, err, attempts)
		}
	}()
	entry, err := cache.Acquire(ctx, src.Name, func() (bp.Reader, io.Closer, int, error) {
		return openWithRetry(ctx, src, policy)
	})
	if err != nil {
		return nil, newFailure(src.Name, err, attempts) // ctx cancelled while waiting
	}
	defer cache.Release(entry)
	attempts = entry.Attempts()
	if entry.TooBig() {
		return runOne(ctxSource(ctx, src), pred.New, cfg, policy)
	}
	cfg.TraceName = src.Name
	res, err := runEntry(ctx, entry, pred.New(), cfg)
	if err != nil {
		return nil, newFailure(src.Name, err, attempts)
	}
	return res, nil
}

// runEntry simulates a predictor over a pinned decoded trace. The batches
// replay the exact event stream the prefetched Run would deliver, and the
// entry's terminal error is honoured with the same precedence: an
// instruction-limit stop discards a pending decode error, so a limited run
// succeeds even over a trace corrupt past the stop point.
func runEntry(ctx context.Context, entry *tracecache.Entry, p bp.Predictor, cfg Config) (*Result, error) {
	start := time.Now()
	col := cfg.Metrics
	loop := newRunLoop(cfg)
	for _, b := range entry.Batches() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		simStage := obs.StageSim
		if loop.instr < loop.warmup {
			simStage = obs.StageWarmup
		}
		tSim := col.Now()
		stop := loop.process(b, p)
		col.Stage(simStage).Since(tSim)
		col.Ctr(obs.CtrEvents).Add(uint64(len(b)))
		if stop {
			return loop.result(p, cfg, false, start), nil
		}
	}
	if err := entry.Err(); err != io.EOF {
		return nil, err
	}
	return loop.result(p, cfg, true, start), nil
}

// openWithRetry opens a trace source with the policy's transient-open
// retry loop (the same schedule as the sequential runOne), reporting the
// attempt count for failure accounting. Open failures are wrapped as
// "opening: ..." to match sequential failure messages.
func openWithRetry(ctx context.Context, src TraceSource, policy Policy) (bp.Reader, io.Closer, int, error) {
	backoff := policy.Backoff
	attempts := 0
	for {
		attempts++
		if err := ctx.Err(); err != nil {
			return nil, nil, attempts, err
		}
		r, closer, err := src.Open()
		if err == nil {
			return r, closer, attempts, nil
		}
		if attempts > policy.Retries || faults.Permanent(err) {
			return nil, nil, attempts, fmt.Errorf("opening: %w", err)
		}
		if backoff > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
}

// ctxSource wraps a trace source so its readers observe context
// cancellation between batches, letting FailFast interrupt an in-flight
// streaming simulation.
func ctxSource(ctx context.Context, src TraceSource) TraceSource {
	return TraceSource{Name: src.Name, Open: func() (bp.Reader, io.Closer, error) {
		r, closer, err := src.Open()
		if err != nil {
			return nil, nil, err
		}
		return &ctxReader{ctx: ctx, r: r}, closer, nil
	}}
}

// ctxReader checks for cancellation before each read of the wrapped
// reader. The context error is surfaced through the normal sticky-error
// path, so the prefetch pipeline shuts down cleanly.
type ctxReader struct {
	ctx context.Context
	r   bp.Reader
}

func (c *ctxReader) Read() (bp.Event, error) {
	if err := c.ctx.Err(); err != nil {
		return bp.Event{}, err
	}
	return c.r.Read()
}

func (c *ctxReader) ReadBatch(dst []bp.Event) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return bp.ReadBatch(c.r, dst)
}
