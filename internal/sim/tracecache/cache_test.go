package tracecache

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
	"mbplib/internal/obs"
	"mbplib/internal/sbbt"
	"mbplib/internal/tracegen"
)

func testSpec(name string, branches uint64) tracegen.Spec {
	return tracegen.Spec{
		Name: name, Seed: 7, Branches: branches,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Biased}, {Kind: tracegen.Loop}},
	}
}

// genOpen opens a synthetic trace, counting open calls. The generator
// implements bp.Sizer, so the cache can pre-judge oversized traces.
func genOpen(t *testing.T, spec tracegen.Spec, opens *atomic.Int32) OpenFunc {
	t.Helper()
	return func() (bp.Reader, io.Closer, int, error) {
		if opens != nil {
			opens.Add(1)
		}
		g, err := tracegen.New(spec)
		return g, nil, 1, err
	}
}

// hideSizer strips the Sizer interface so mid-decode budget enforcement is
// exercised instead of the header pre-check.
type hideSizer struct{ r bp.Reader }

func (h hideSizer) Read() (bp.Event, error) { return h.r.Read() }

func drain(t *testing.T, e *Entry) []bp.Event {
	t.Helper()
	var evs []bp.Event
	for _, b := range e.Batches() {
		evs = append(evs, b...)
	}
	return evs
}

func readAll(t *testing.T, spec tracegen.Spec) []bp.Event {
	t.Helper()
	g, err := tracegen.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	var evs []bp.Event
	for {
		ev, err := g.Read()
		if err == io.EOF {
			return evs
		}
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
}

func TestAcquireDecodesOnce(t *testing.T) {
	spec := testSpec("t0", 10_000)
	want := readAll(t, spec)
	c := New(1 << 20)
	var opens atomic.Int32
	open := genOpen(t, spec, &opens)
	ctx := context.Background()

	const readers = 8
	entries := make([]*Entry, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := c.Acquire(ctx, "t0", open)
			if err != nil {
				t.Error(err)
				return
			}
			// Concurrent readers of one entry: walk every event.
			evs := drain(t, e)
			if len(evs) != len(want) {
				t.Errorf("reader %d saw %d events, want %d", i, len(evs), len(want))
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	if got := opens.Load(); got != 1 {
		t.Errorf("trace opened %d times, want 1 (single-flight)", got)
	}
	for i, e := range entries {
		if e == nil {
			t.Fatalf("reader %d got no entry", i)
		}
		if e.Err() != io.EOF {
			t.Errorf("entry err = %v, want io.EOF", e.Err())
		}
		if !equalEvents(drain(t, e), want) {
			t.Errorf("reader %d events differ from direct decode", i)
		}
		c.Release(e)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != readers-1 {
		t.Errorf("stats = %+v, want 1 miss, %d hits", st, readers-1)
	}
	if st.Entries != 1 || st.BytesUsed != int64(len(want))*eventBytes {
		t.Errorf("stats = %+v, want 1 entry of %d bytes", st, int64(len(want))*eventBytes)
	}
}

func equalEvents(a, b []bp.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEvictionUnderTinyBudget(t *testing.T) {
	const branches = 2000
	// Budget fits one decoded trace (2000 events) but not two.
	c := New(3000 * eventBytes)
	ctx := context.Background()
	names := []string{"a", "b", "c"}
	var opens [3]atomic.Int32
	for round := 0; round < 2; round++ {
		for i, name := range names {
			e, err := c.Acquire(ctx, name, genOpen(t, testSpec(name, branches), &opens[i]))
			if err != nil {
				t.Fatal(err)
			}
			if e.TooBig() {
				t.Fatalf("round %d, trace %s: unexpected too-big verdict", round, name)
			}
			if got := len(drain(t, e)); got != branches {
				t.Fatalf("round %d, trace %s: %d events, want %d", round, name, got, branches)
			}
			c.Release(e)
			if st := c.Stats(); st.BytesUsed > 3000*eventBytes {
				t.Fatalf("budget exceeded: %+v", st)
			}
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions under a one-trace budget: %+v", st)
	}
	// With every access a capacity miss, each trace is re-decoded per round.
	for i := range names {
		if got := opens[i].Load(); got != 2 {
			t.Errorf("trace %s opened %d times, want 2", names[i], got)
		}
	}
}

func TestLRUPrefersColdEntries(t *testing.T) {
	const branches = 1000
	// Budget fits two decoded traces.
	c := New(2500 * eventBytes)
	ctx := context.Background()
	var opensA atomic.Int32
	acquire := func(name string, opens *atomic.Int32) {
		t.Helper()
		e, err := c.Acquire(ctx, name, genOpen(t, testSpec(name, branches), opens))
		if err != nil {
			t.Fatal(err)
		}
		c.Release(e)
	}
	acquire("a", &opensA)
	acquire("b", nil)
	acquire("a", &opensA) // refresh a: b becomes the LRU victim
	acquire("c", nil)     // evicts b, not a
	acquire("a", &opensA)
	if got := opensA.Load(); got != 1 {
		t.Errorf("recently-used trace re-opened: %d opens, want 1", got)
	}
}

func TestTooBigFallsBackToStreaming(t *testing.T) {
	c := New(100 * eventBytes)
	ctx := context.Background()

	// Sizer pre-check: the header already rules the trace out — the decode
	// must not even start, and the verdict is cached.
	var opens atomic.Int32
	spec := testSpec("big", 5000)
	for i := 0; i < 2; i++ {
		e, err := c.Acquire(ctx, "big", genOpen(t, spec, &opens))
		if err != nil {
			t.Fatal(err)
		}
		if !e.TooBig() {
			t.Fatalf("acquire %d: want too-big verdict", i)
		}
		if len(e.Batches()) != 0 || e.Bytes() != 0 {
			t.Errorf("too-big entry retains data: %d batches, %d bytes", len(e.Batches()), e.Bytes())
		}
		c.Release(e)
	}
	if got := opens.Load(); got != 1 {
		t.Errorf("size verdict not cached: %d opens, want 1", got)
	}

	// Without a Sizer the decode discovers the overflow mid-stream.
	noSizer := func() (bp.Reader, io.Closer, int, error) {
		g, err := tracegen.New(testSpec("big-nosizer", 5000))
		return hideSizer{g}, nil, 1, err
	}
	e, err := c.Acquire(ctx, "big-nosizer", noSizer)
	if err != nil {
		t.Fatal(err)
	}
	if !e.TooBig() {
		t.Fatal("mid-decode overflow not detected")
	}
	c.Release(e)
	if st := c.Stats(); st.BytesUsed != 0 || st.TooBig != 2 {
		t.Errorf("stats after too-big loads = %+v", st)
	}
}

func TestContentionTooBigIsVolatile(t *testing.T) {
	const branches = 1000
	c := New(1500 * eventBytes) // fits one trace
	ctx := context.Background()
	held, err := c.Acquire(ctx, "held", genOpen(t, testSpec("held", branches), nil))
	if err != nil {
		t.Fatal(err)
	}
	if held.TooBig() {
		t.Fatal("first trace should fit")
	}
	// While "held" is pinned, a second trace cannot evict it: streamed, but
	// the verdict must not stick.
	var opens atomic.Int32
	e, err := c.Acquire(ctx, "later", genOpen(t, testSpec("later", branches), &opens))
	if err != nil {
		t.Fatal(err)
	}
	if !e.TooBig() {
		t.Fatal("want contention too-big while the budget is pinned")
	}
	c.Release(e)
	c.Release(held)
	// With the pin gone, the same trace now caches normally.
	e, err = c.Acquire(ctx, "later", genOpen(t, testSpec("later", branches), &opens))
	if err != nil {
		t.Fatal(err)
	}
	if e.TooBig() {
		t.Fatal("contention verdict was cached; want a fresh load after release")
	}
	if got := len(drain(t, e)); got != branches {
		t.Fatalf("reloaded entry has %d events, want %d", got, branches)
	}
	c.Release(e)
}

// corruptSBBT returns checksummed SBBT bytes with a bit flipped mid-stream,
// so the decode fails with a typed corruption error after some valid events.
func corruptSBBT(t *testing.T, branches int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := sbbt.NewChecksumWriter(&buf, uint64(branches), uint64(branches))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < branches; i++ {
		ev := bp.Event{Branch: bp.Branch{IP: 0x400000 + uint64(i)*4, Target: 0x500000, Opcode: bp.OpCondJump, Taken: i%3 == 0}}
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x10 // reserved bit inside a packet
	return data
}

func TestCorruptTracePoisonsOnlyItself(t *testing.T) {
	data := corruptSBBT(t, 4096)
	c := New(1 << 20)
	ctx := context.Background()
	var opens atomic.Int32
	openCorrupt := func() (bp.Reader, io.Closer, int, error) {
		opens.Add(1)
		r, err := sbbt.NewReader(bytes.NewReader(data))
		return r, nil, 1, err
	}
	for i := 0; i < 3; i++ {
		e, err := c.Acquire(ctx, "corrupt", openCorrupt)
		if err != nil {
			t.Fatal(err)
		}
		if e.Err() == nil || e.Err() == io.EOF {
			t.Fatalf("acquire %d: corrupt trace decoded cleanly", i)
		}
		if got := faults.Class(e.Err()); got != "corrupt" {
			t.Errorf("acquire %d: class = %q, want corrupt", i, got)
		}
		if len(e.Batches()) == 0 {
			t.Errorf("acquire %d: events before the fault were dropped", i)
		}
		c.Release(e)
	}
	// Permanent decode faults are cached: one decode serves every predictor.
	if got := opens.Load(); got != 1 {
		t.Errorf("corrupt trace decoded %d times, want 1", got)
	}
	// The cache itself stays healthy for other traces.
	e, err := c.Acquire(ctx, "healthy", genOpen(t, testSpec("healthy", 2000), nil))
	if err != nil {
		t.Fatal(err)
	}
	if e.TooBig() || e.Err() != io.EOF {
		t.Errorf("healthy trace affected by corrupt neighbour: tooBig=%v err=%v", e.TooBig(), e.Err())
	}
	c.Release(e)
}

func TestTransientOpenFailureNotCached(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	var opens atomic.Int32
	spec := testSpec("flaky", 1000)
	open := func() (bp.Reader, io.Closer, int, error) {
		if opens.Add(1) == 1 {
			return nil, nil, 1, errors.New("transient: too many open files")
		}
		g, err := tracegen.New(spec)
		return g, nil, 1, err
	}
	e, err := c.Acquire(ctx, "flaky", open)
	if err != nil {
		t.Fatal(err)
	}
	if e.Err() == nil || e.Err() == io.EOF {
		t.Fatal("first acquire should surface the open failure")
	}
	c.Release(e)
	// The failure was transient, so the entry must not have been cached.
	e, err = c.Acquire(ctx, "flaky", open)
	if err != nil {
		t.Fatal(err)
	}
	if e.Err() != io.EOF {
		t.Fatalf("second acquire err = %v, want clean decode", e.Err())
	}
	c.Release(e)
	if got := opens.Load(); got != 2 {
		t.Errorf("opens = %d, want 2", got)
	}

	// A permanent open failure, by contrast, is cached.
	var permOpens atomic.Int32
	permanent := func() (bp.Reader, io.Closer, int, error) {
		permOpens.Add(1)
		return nil, nil, 1, faults.ErrCorrupt
	}
	for i := 0; i < 2; i++ {
		e, err := c.Acquire(ctx, "perm", permanent)
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(e.Err(), faults.ErrCorrupt) {
			t.Fatalf("acquire %d err = %v, want ErrCorrupt", i, e.Err())
		}
		c.Release(e)
	}
	if got := permOpens.Load(); got != 1 {
		t.Errorf("permanent failure re-opened: %d opens, want 1", got)
	}
}

func TestDisabledCacheStreamsEverything(t *testing.T) {
	for _, budget := range []int64{0, -1} {
		c := New(budget)
		e, err := c.Acquire(context.Background(), "t", genOpen(t, testSpec("t", 100), nil))
		if err != nil {
			t.Fatal(err)
		}
		if !e.TooBig() {
			t.Errorf("budget %d: want too-big verdict from a disabled cache", budget)
		}
		c.Release(e) // must not panic on a nil cache
		if st := c.Stats(); st != (Stats{}) {
			t.Errorf("budget %d: stats = %+v, want zero", budget, st)
		}
	}
}

func TestReplayReaderMatchesDirectDecode(t *testing.T) {
	spec := testSpec("replay", 9000) // spans multiple internal batches
	want := readAll(t, spec)
	c := New(1 << 20)
	e, err := c.Acquire(context.Background(), "replay", genOpen(t, spec, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Release(e)

	// Scalar replay.
	r := e.Reader()
	var got []bp.Event
	for {
		ev, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	if !equalEvents(got, want) {
		t.Fatalf("scalar replay differs: %d events vs %d", len(got), len(want))
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("terminal error not sticky: %v", err)
	}

	// Batched replay with an awkward batch size.
	r = e.Reader()
	got = got[:0]
	dst := make([]bp.Event, 1000)
	for {
		n, err := bp.ReadBatch(r, dst)
		got = append(got, dst[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !equalEvents(got, want) {
		t.Fatalf("batched replay differs: %d events vs %d", len(got), len(want))
	}
}

func TestAcquireCancelledWhileWaiting(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	unblock := make(chan struct{})
	slowOpen := func() (bp.Reader, io.Closer, int, error) {
		close(started)
		<-unblock
		g, err := tracegen.New(testSpec("slow", 100))
		return g, nil, 1, err
	}
	go func() {
		e, err := c.Acquire(context.Background(), "slow", slowOpen)
		if err == nil {
			c.Release(e)
		}
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Acquire(ctx, "slow", slowOpen); !errors.Is(err, context.Canceled) {
		t.Errorf("Acquire under cancelled ctx = %v, want context.Canceled", err)
	}
	close(unblock)
}

// TestSetCollectorDuringLoads pins the locking protocol around the metrics
// collector: loads read it through Cache.collector (under c.mu), so wiring a
// collector while decodes are in flight must be race-free and must not
// disturb byte accounting. Regression test for the mbpvet guardedby audit,
// which also renamed unreserve to unreserveLocked to document that budget
// accounting happens only under c.mu.
func TestSetCollectorDuringLoads(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	var wg, spinner sync.WaitGroup
	stop := make(chan struct{})
	spinner.Add(1)
	go func() {
		defer spinner.Done()
		col := obs.New()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.SetCollector(col)
			c.SetCollector(nil)
		}
	}()
	const traces = 4
	var total int64
	var mu sync.Mutex
	for i := 0; i < traces; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := testSpec("sc"+string(rune('a'+i)), 2_000)
			e, err := c.Acquire(ctx, spec.Name, genOpen(t, spec, nil))
			if err != nil {
				t.Error(err)
				return
			}
			if e.Err() != io.EOF {
				t.Errorf("trace %d err = %v, want io.EOF", i, e.Err())
			}
			mu.Lock()
			total += int64(len(drain(t, e))) * eventBytes
			mu.Unlock()
			c.Release(e)
		}(i)
	}
	wg.Wait()
	close(stop)
	spinner.Wait()
	st := c.Stats()
	if st.Misses != traces {
		t.Errorf("misses = %d, want %d", st.Misses, traces)
	}
	if st.BytesUsed != total {
		t.Errorf("bytes used = %d, want %d", st.BytesUsed, total)
	}
}

// TestCancelledLoadReturnsBudget locks in unreserveLocked's contract: a
// load abandoned by context cancellation gives its partially charged bytes
// back to the budget, drops its batches, and is removed from the map so a
// later Acquire retries.
func TestCancelledLoadReturnsBudget(t *testing.T) {
	c := New(1 << 20)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	open := func() (bp.Reader, io.Closer, int, error) {
		g, err := tracegen.New(testSpec("cancelled", 100_000))
		if err != nil {
			return nil, nil, 1, err
		}
		return &cancelAfter{r: g, after: 5_000, cancel: cancel}, nil, 1, nil
	}
	e, err := c.Acquire(ctx, "cancelled", open)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(e.Err(), context.Canceled) {
		t.Fatalf("entry err = %v, want context.Canceled", e.Err())
	}
	if got := len(drain(t, e)); got != 0 {
		t.Errorf("abandoned entry kept %d events, want 0", got)
	}
	c.Release(e)
	st := c.Stats()
	if st.BytesUsed != 0 {
		t.Errorf("bytes used = %d after abandoned load, want 0 (unreserveLocked must return the budget)", st.BytesUsed)
	}
	if st.Entries != 0 {
		t.Errorf("entries = %d, want 0 (cancellation is volatile: a later Acquire retries)", st.Entries)
	}
}

// cancelAfter cancels the surrounding context after n events, so the load
// loop observes ctx.Err() at its next batch boundary.
type cancelAfter struct {
	r      bp.Reader
	n      int
	after  int
	cancel context.CancelFunc
}

func (f *cancelAfter) Read() (bp.Event, error) {
	f.n++
	if f.n == f.after {
		f.cancel()
	}
	return f.r.Read()
}
