package tracecache

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
)

// chunkEvents builds a deterministic, chunk-distinct event slice.
func chunkEvents(chunk, n int) []bp.Event {
	evs := make([]bp.Event, n)
	for i := range evs {
		evs[i] = bp.Event{
			Branch:                bp.Branch{IP: uint64(chunk)<<32 | uint64(i), Opcode: bp.OpCondJump, Taken: i%2 == 0},
			InstrsSinceLastBranch: uint64(i % 5),
		}
	}
	return evs
}

// countingChunkLoad returns a ChunkLoadFunc serving chunkEvents(chunk, n)
// and counting invocations.
func countingChunkLoad(chunk, n int, loads *atomic.Int32) ChunkLoadFunc {
	return func() ([]bp.Event, error) {
		if loads != nil {
			loads.Add(1)
		}
		return chunkEvents(chunk, n), nil
	}
}

func TestAcquireChunkSingleFlight(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	var loads atomic.Int32

	const readers = 8
	var wg sync.WaitGroup
	entries := make([]*Entry, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := c.AcquireChunk(ctx, "trace", 3, countingChunkLoad(3, 1000, &loads))
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	if got := loads.Load(); got != 1 {
		t.Errorf("chunk loaded %d times, want 1 (single-flight)", got)
	}
	want := chunkEvents(3, 1000)
	for i, e := range entries {
		if e == nil {
			t.Fatalf("reader %d got no entry", i)
		}
		if e.Err() != io.EOF {
			t.Errorf("entry err = %v, want io.EOF", e.Err())
		}
		if !equalEvents(drain(t, e), want) {
			t.Errorf("reader %d events differ from direct decode", i)
		}
		c.Release(e)
	}
	// Chunks of the same trace are independent entries.
	e0, err := c.AcquireChunk(ctx, "trace", 0, countingChunkLoad(0, 10, &loads))
	if err != nil {
		t.Fatal(err)
	}
	if !equalEvents(drain(t, e0), chunkEvents(0, 10)) {
		t.Error("chunk 0 served chunk 3's events")
	}
	c.Release(e0)
	if st := c.Stats(); st.Entries != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 entries, 2 misses", st)
	}
}

// TestAcquireChunkKeyIsolation: a chunk entry never collides with a
// whole-trace entry of the same name, nor with other chunk numbers.
func TestAcquireChunkKeyIsolation(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	e1, err := c.AcquireChunk(ctx, "t", 12, countingChunkLoad(12, 50, nil))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.AcquireChunk(ctx, "t", 1, countingChunkLoad(1, 50, nil))
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e2 {
		t.Fatal("chunks 12 and 1 shared one entry")
	}
	if !equalEvents(drain(t, e1), chunkEvents(12, 50)) || !equalEvents(drain(t, e2), chunkEvents(1, 50)) {
		t.Error("chunk entries returned wrong events")
	}
	c.Release(e1)
	c.Release(e2)
}

// TestAcquireChunkCorruptPoisonsOnlyItself: a permanent decode fault is
// cached with the chunk's pre-error events, and neighbouring chunks stay
// clean — damage is confined to the chunk that carries it.
func TestAcquireChunkCorruptPoisonsOnlyItself(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	var badLoads atomic.Int32
	corrupt := fmt.Errorf("decode: %w", faults.ErrCorrupt)
	badLoad := func() ([]bp.Event, error) {
		badLoads.Add(1)
		return chunkEvents(1, 100), corrupt // events before the fault survive
	}

	e1, err := c.AcquireChunk(ctx, "t", 1, badLoad)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(e1.Err(), faults.ErrCorrupt) {
		t.Fatalf("chunk 1 err = %v, want ErrCorrupt", e1.Err())
	}
	if got := drain(t, e1); !equalEvents(got, chunkEvents(1, 100)) {
		t.Errorf("pre-error events lost: got %d", len(got))
	}
	c.Release(e1)

	// The permanent fault is cached: no re-decode on a second acquire.
	e1b, err := c.AcquireChunk(ctx, "t", 1, badLoad)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(e1b.Err(), faults.ErrCorrupt) {
		t.Errorf("cached err = %v, want ErrCorrupt", e1b.Err())
	}
	c.Release(e1b)
	if got := badLoads.Load(); got != 1 {
		t.Errorf("corrupt chunk decoded %d times, want 1 (cached poison)", got)
	}

	// Neighbours decode cleanly.
	for _, i := range []int{0, 2} {
		e, err := c.AcquireChunk(ctx, "t", i, countingChunkLoad(i, 100, nil))
		if err != nil {
			t.Fatal(err)
		}
		if e.Err() != io.EOF {
			t.Errorf("chunk %d err = %v, want io.EOF", i, e.Err())
		}
		c.Release(e)
	}
}

// TestAcquireChunkTransientNotCached: a non-permanent failure is volatile —
// every waiter sees it, but a later acquire retries the load.
func TestAcquireChunkTransientNotCached(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	transient := errors.New("open: resource temporarily unavailable")
	var loads atomic.Int32
	flaky := func() ([]bp.Event, error) {
		if loads.Add(1) == 1 {
			return nil, transient
		}
		return chunkEvents(0, 64), nil
	}

	e, err := c.AcquireChunk(ctx, "t", 0, flaky)
	if err != nil {
		t.Fatal(err)
	}
	if e.Err() != transient {
		t.Fatalf("first acquire err = %v, want the transient error", e.Err())
	}
	c.Release(e)

	e2, err := c.AcquireChunk(ctx, "t", 0, flaky)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Err() != io.EOF || !equalEvents(drain(t, e2), chunkEvents(0, 64)) {
		t.Errorf("retry entry err = %v, want clean decode", e2.Err())
	}
	c.Release(e2)
	if got := loads.Load(); got != 2 {
		t.Errorf("load ran %d times, want 2 (transient not cached)", got)
	}
}

// TestAcquireChunkPanicIsTyped: a panicking chunk decoder becomes a cached
// typed fault, never a crashed scheduler.
func TestAcquireChunkPanicIsTyped(t *testing.T) {
	c := New(1 << 20)
	e, err := c.AcquireChunk(context.Background(), "t", 0, func() ([]bp.Event, error) {
		panic("deliberate test panic")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(e.Err(), faults.ErrPredictorPanic) && faults.Class(e.Err()) != "panic" {
		t.Errorf("panic load err = %v (class %s), want a typed panic fault", e.Err(), faults.Class(e.Err()))
	}
	c.Release(e)
}

// TestAcquireChunkTooBig: a chunk that alone exceeds the budget yields a
// too-big verdict and charges nothing.
func TestAcquireChunkTooBig(t *testing.T) {
	c := New(100 * eventBytes)
	e, err := c.AcquireChunk(context.Background(), "t", 0, countingChunkLoad(0, 1000, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !e.TooBig() {
		t.Fatal("oversized chunk was pinned")
	}
	c.Release(e)
	if st := c.Stats(); st.BytesUsed != 0 || st.TooBig != 1 {
		t.Errorf("stats = %+v, want 0 bytes used, 1 too-big", st)
	}
}

// TestAcquireChunkEvictionBudget hammers the cache with concurrent
// pin/release cycles over more chunks than fit, checking the budget
// invariant after every acquire and the final accounting.
func TestAcquireChunkEvictionBudget(t *testing.T) {
	const chunkLen = 500
	budget := 3 * chunkLen * eventBytes // fits 3 chunks of 500 events
	c := New(budget)
	ctx := context.Background()

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				chunk := (w + round) % 8
				e, err := c.AcquireChunk(ctx, "big-trace", chunk, countingChunkLoad(chunk, chunkLen, nil))
				if err != nil {
					t.Error(err)
					return
				}
				if !e.TooBig() {
					if !equalEvents(drain(t, e), chunkEvents(chunk, chunkLen)) {
						t.Errorf("chunk %d decoded wrong events", chunk)
					}
				}
				if st := c.Stats(); st.BytesUsed > budget {
					t.Errorf("budget exceeded: %d > %d", st.BytesUsed, budget)
				}
				c.Release(e)
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.BytesUsed > budget {
		t.Errorf("final bytes %d exceed budget %d", st.BytesUsed, budget)
	}
	if st.Evictions == 0 {
		t.Error("8 chunks cycled through a 3-chunk budget with no evictions")
	}
	// Every resident entry is idle now; its bytes must all be accounted.
	var sum int64
	c.mu.Lock()
	for _, e := range c.entries {
		if e.refs != 0 {
			t.Errorf("entry %q still pinned (refs %d) after all releases", e.name, e.refs)
		}
		sum += e.bytes
	}
	c.mu.Unlock()
	if sum != st.BytesUsed {
		t.Errorf("entry bytes sum %d != BytesUsed %d", sum, st.BytesUsed)
	}
}

// TestAcquireChunkDisabledCache: a nil cache hands every chunk a too-big
// verdict so callers decode directly.
func TestAcquireChunkDisabledCache(t *testing.T) {
	var c *Cache
	e, err := c.AcquireChunk(context.Background(), "t", 0, countingChunkLoad(0, 10, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !e.TooBig() {
		t.Error("disabled cache pinned a chunk")
	}
	c.Release(e)
}
