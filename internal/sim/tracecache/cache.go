// Package tracecache is the shared decoded-trace cache behind the parallel
// sweep scheduler: when P predictors are scored over T traces, each trace is
// opened, decompressed and decoded once into pinned event batches and then
// simulated by many predictors concurrently, instead of being re-decoded P
// times.
//
// The cache is bounded by a byte budget with LRU eviction of idle entries.
// Traces whose decoded form cannot fit the budget are never pinned: callers
// receive a "too big" verdict and fall back to streaming re-decode through
// their own reader. Decoded entries are immutable and may be read by any
// number of workers at once; an entry is pinned (ineligible for eviction)
// while at least one worker holds it.
//
// Failure semantics mirror the sequential simulation path (see DESIGN.md):
//
//   - An entry records its terminal error exactly as a bp.BatchReader
//     would deliver it — io.EOF after a clean decode, or the typed fault
//     that ended the stream. Events decoded before the fault are kept, so a
//     limited run (sim.Config.SimInstructions) that would stop before the
//     corruption point still succeeds, byte-identically to streaming.
//   - A corrupt trace therefore poisons exactly the (trace, predictor)
//     cells that read past the corruption point — never other entries, and
//     never the cache itself.
//   - Transient open failures (not faults.Permanent) are reported to every
//     waiter of the in-flight load but are not cached: a later Acquire
//     retries the open. Permanent failures are cached so a 30-predictor
//     sweep does not re-decode a corrupt trace 30 times.
package tracecache

import (
	"context"
	"io"
	"runtime/debug"
	"strconv"
	"sync"
	"unsafe"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
	"mbplib/internal/obs"
)

// batchEvents matches the simulator's prefetch batch size: entries hold the
// decoded trace as a sequence of batches this long, ready to be handed to
// the batched simulation loop without copying.
const batchEvents = 4096

// eventBytes is the in-memory footprint charged per decoded event.
const eventBytes = int64(unsafe.Sizeof(bp.Event{}))

// OpenFunc opens the underlying trace stream for a cache load. It reports
// how many open attempts were made (≥ 1; retry logic belongs to the caller,
// the cache only records the count for failure accounting). A non-nil err
// is an open failure: if faults.Permanent(err) it is cached as the entry's
// terminal error, otherwise the entry is dropped so a later Acquire retries.
type OpenFunc func() (r bp.Reader, closer io.Closer, attempts int, err error)

// Stats is a snapshot of the cache counters, for logging and tests.
type Stats struct {
	// Entries and BytesUsed describe the current resident set.
	Entries   int
	BytesUsed int64
	// Hits counts Acquire calls served by an existing entry (including
	// waits on an in-flight load); Misses counts loads started.
	Hits   uint64
	Misses uint64
	// Coalesced counts the subset of Hits that joined another worker's
	// still-in-flight load instead of finding a completed entry
	// (single-flight sharing saved a redundant decode).
	Coalesced uint64
	// Evictions counts idle entries discarded to make room; TooBig counts
	// loads that exceeded the budget and fell back to streaming.
	Evictions uint64
	TooBig    uint64
}

// Cache is a bounded, concurrency-safe store of decoded traces keyed by
// trace name. The zero value is not usable; use New. A nil *Cache is valid
// and caches nothing (every Acquire yields a too-big verdict).
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	clock   uint64 // LRU timestamp source, advanced under mu
	entries map[string]*Entry
	stats   Stats
	col     *obs.Collector // nil when metrics are disabled
}

// New returns a cache bounded to budget bytes of decoded events. A budget
// ≤ 0 disables caching: every Acquire reports too-big and callers stream.
func New(budget int64) *Cache {
	if budget <= 0 {
		return nil
	}
	return &Cache{budget: budget, entries: make(map[string]*Entry)}
}

// Entry is one decoded trace, pinned from Acquire until Release. All fields
// are immutable once the load completes (the ready channel is closed), so
// any number of goroutines may read the batches concurrently.
type Entry struct {
	c     *Cache
	name  string
	ready chan struct{}

	// Guarded by c.mu.
	refs    int
	lastUse uint64
	bytes   int64

	// Written by the loader before close(ready), read-only afterwards.
	batches  [][]bp.Event
	err      error // terminal error: io.EOF after a clean decode
	attempts int
	tooBig   bool
	volatile bool // transient failure: not kept in the map
}

// Batches returns the decoded events, in trace order, split into the
// simulator's batch granularity. Valid only when TooBig is false. Callers
// must not modify the events and must not retain the slices past Release.
func (e *Entry) Batches() [][]bp.Event { return e.batches }

// Err returns the terminal error of the decode: io.EOF after a clean end
// of trace, or the typed fault (classified by the faults taxonomy) that
// ended it. The events of Batches remain valid either way.
func (e *Entry) Err() error { return e.err }

// TooBig reports that the trace was not pinned — its decoded form exceeds
// the cache budget (or caching is disabled) — and the caller must stream it
// through its own reader.
func (e *Entry) TooBig() bool { return e.tooBig }

// Attempts reports how many open attempts the load performed, for
// retry-aware failure accounting.
func (e *Entry) Attempts() int { return e.attempts }

// Bytes reports the budget bytes charged to this entry.
func (e *Entry) Bytes() int64 { return e.bytes }

// SetCollector mirrors the cache counters into col as they change, so a
// live progress reporter can read hit rates without polling Stats. Call it
// before the first Acquire; a nil col (the default) disables mirroring.
// Safe on a nil (disabled) cache.
func (c *Cache) SetCollector(col *obs.Collector) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.col = col
	c.mu.Unlock()
}

// collector returns the current metrics collector (nil when disabled).
func (c *Cache) collector() *obs.Collector {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.col
}

// Acquire returns the decoded form of the named trace, loading it through
// open on first use. Concurrent Acquires of the same name share one load:
// the first caller decodes, the rest wait. The returned entry is pinned;
// the caller must Release it exactly once, even when Err reports a failure
// or TooBig is set. A non-nil error is returned only when ctx is cancelled
// while waiting for another goroutine's load.
func (c *Cache) Acquire(ctx context.Context, name string, open OpenFunc) (*Entry, error) {
	if c == nil {
		return disabledEntry(), nil
	}
	e, created, err := c.acquireEntry(ctx, name)
	if err != nil || !created {
		return e, err
	}
	e.load(ctx, open)
	return e, nil
}

// ChunkLoadFunc decodes one chunk of a trace for AcquireChunk, returning
// its events in order. On a decode failure the events preceding the fault
// are still returned (the "error after n" contract), so limited runs that
// stop before the corruption point replay byte-identically to streaming.
type ChunkLoadFunc func() ([]bp.Event, error)

// AcquireChunk is Acquire at chunk granularity: it returns the decoded form
// of one chunk of the named trace, loading it through load on first use.
// Each chunk is an independent cache entry — pinned, evicted, and poisoned
// on its own under the shared byte budget, with single-flight per chunk —
// so one huge trace no longer has to fit the budget whole, and damage to
// one chunk fails only the cells that read that chunk. The entry contract
// matches Acquire: the caller must Release exactly once; Err is io.EOF
// after a clean chunk decode or the typed fault that ended it; TooBig means
// the chunk must be decoded directly by the caller.
func (c *Cache) AcquireChunk(ctx context.Context, name string, chunk int, load ChunkLoadFunc) (*Entry, error) {
	if c == nil {
		return disabledEntry(), nil
	}
	// Trace names are file paths, which never contain NUL, so the composite
	// key cannot collide with a whole-trace entry or another chunk's.
	key := name + "\x00" + strconv.Itoa(chunk)
	e, created, err := c.acquireEntry(ctx, key)
	if err != nil || !created {
		return e, err
	}
	e.loadChunk(load)
	return e, nil
}

// disabledEntry is the verdict a nil (disabled) cache hands every caller.
func disabledEntry() *Entry {
	e := &Entry{ready: make(chan struct{}), attempts: 1, tooBig: true}
	close(e.ready)
	return e
}

// acquireEntry is the single-flight core shared by Acquire and
// AcquireChunk: it returns the pinned entry for key, reporting created when
// this caller owns the load (the entry's ready channel is still open and
// the caller must run a load* method, which publishes by closing it). When
// created is false the entry is complete or being loaded by someone else;
// a non-nil error means ctx was cancelled while waiting for that load.
func (c *Cache) acquireEntry(ctx context.Context, key string) (e *Entry, created bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		e.refs++
		c.stats.Hits++
		c.col.Ctr(obs.CtrCacheHits).Add(1)
		// A hit on an entry whose load has not published yet is a coalesce:
		// single-flight sharing spared this caller a redundant decode.
		select {
		case <-e.ready:
		default:
			c.stats.Coalesced++
			c.col.Ctr(obs.CtrCacheCoalesced).Add(1)
		}
		col := c.col
		c.mu.Unlock()
		tWait := col.Now()
		select {
		case <-e.ready:
			col.Stage(obs.StageCacheWait).Since(tWait)
			return e, false, nil
		case <-ctx.Done():
			col.Stage(obs.StageCacheWait).Since(tWait)
			c.Release(e)
			return nil, false, ctx.Err()
		}
	}
	e = &Entry{c: c, name: key, ready: make(chan struct{}), refs: 1}
	c.entries[key] = e
	c.stats.Misses++
	c.col.Ctr(obs.CtrCacheMisses).Add(1)
	c.mu.Unlock()
	return e, true, nil
}

// Release unpins an entry obtained from Acquire. Once an entry's last
// holder releases it, it becomes eligible for LRU eviction.
func (e *Entry) release() {
	if e.c == nil {
		return
	}
	e.c.mu.Lock()
	e.refs--
	e.c.clock++
	e.lastUse = e.c.clock
	e.c.mu.Unlock()
}

// Release unpins an entry obtained from Acquire. Safe on entries from a nil
// (disabled) cache.
func (c *Cache) Release(e *Entry) {
	if e != nil {
		e.release()
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.BytesUsed = c.used
	return s
}

// load opens and decodes the trace into e, then publishes the outcome by
// closing ready. It runs on the Acquire caller that created the entry.
func (e *Entry) load(ctx context.Context, open OpenFunc) {
	defer close(e.ready)
	r, closer, attempts, err := open()
	if attempts < 1 {
		attempts = 1
	}
	e.attempts = attempts
	if err != nil {
		e.fail(err, !faults.Permanent(err))
		return
	}
	if closer != nil {
		defer closer.Close() //mbpvet:ignore droppederr -- read side: a close failure cannot corrupt the already-decoded events
	}
	// Header-declared sizes let oversized traces skip the decode entirely.
	if s, ok := r.(bp.Sizer); ok {
		if n := s.TotalBranches(); n > 0 && int64(n)*eventBytes > e.c.budget {
			e.markTooBig(false)
			return
		}
	}
	col := e.c.collector()
	for {
		if cerr := ctx.Err(); cerr != nil {
			e.fail(cerr, true)
			return
		}
		buf := make([]bp.Event, batchEvents)
		tRead := col.Now()
		n, rerr := readBatchSafe(r, buf)
		readDur := col.Now().Sub(tRead)
		col.Stage(obs.StageRead).Add(readDur)
		col.Hist(obs.HistBatchReadNs).ObserveDuration(readDur)
		col.Ctr(obs.CtrBatches).Add(1)
		if n > 0 {
			ok, contention := e.c.reserve(e, int64(n)*eventBytes)
			if !ok {
				e.markTooBig(contention)
				return
			}
			e.batches = append(e.batches, buf[:n])
		}
		if rerr != nil {
			// Terminal: io.EOF for a clean decode, or a typed decode fault.
			// Decode faults are a property of the trace bytes — they will
			// not improve on a retry — so both outcomes are cached, along
			// with every event decoded before the fault.
			e.err = rerr
			return
		}
	}
}

// loadChunk decodes one chunk into e and publishes the outcome by closing
// ready. It runs on the AcquireChunk caller that created the entry. The
// failure semantics mirror load: a typed decode fault is cached together
// with the events preceding it (the fault poisons exactly this chunk), a
// transient failure is volatile so a later AcquireChunk retries, and a
// chunk that cannot fit the budget yields a too-big verdict.
func (e *Entry) loadChunk(load ChunkLoadFunc) {
	defer close(e.ready)
	e.attempts = 1
	evs, err := loadChunkSafe(load)
	if len(evs) > 0 {
		ok, contention := e.c.reserve(e, int64(len(evs))*eventBytes)
		if !ok {
			e.markTooBig(contention)
			return
		}
		// Split to the simulator's batch granularity so downstream batch
		// consumers see the same shape Acquire entries have.
		for off := 0; off < len(evs); off += batchEvents {
			end := off + batchEvents
			if end > len(evs) {
				end = len(evs)
			}
			e.batches = append(e.batches, evs[off:end])
		}
	}
	if err != nil {
		if !faults.Permanent(err) {
			e.fail(err, true)
			return
		}
		e.err = err
		return
	}
	e.err = io.EOF
}

// loadChunkSafe converts a chunk-decoder panic into a typed error, the same
// containment readBatchSafe applies to streaming decoders.
func loadChunkSafe(load ChunkLoadFunc) (evs []bp.Event, err error) {
	defer func() {
		if v := recover(); v != nil {
			evs = nil
			err = faults.NewPanicError(v, debug.Stack())
		}
	}()
	return load()
}

// readBatchSafe converts a decoder panic into a typed error, the same
// containment the simulator's prefetch pipeline applies.
func readBatchSafe(r bp.Reader, dst []bp.Event) (n int, err error) {
	defer func() {
		if v := recover(); v != nil {
			n = 0
			err = faults.NewPanicError(v, debug.Stack())
		}
	}()
	return bp.ReadBatch(r, dst)
}

// fail records err as the entry's terminal error and returns its budget
// bytes. volatile failures are removed from the map so a later Acquire
// retries the load; current waiters still observe the error.
func (e *Entry) fail(err error, volatile bool) {
	e.err = err
	e.volatile = volatile
	c := e.c
	c.mu.Lock()
	c.unreserveLocked(e)
	e.batches = nil
	if volatile {
		delete(c.entries, e.name)
	}
	c.mu.Unlock()
}

// markTooBig drops any partially decoded batches. A size verdict (the
// trace alone exceeds the budget) is cached: the entry stays in the map at
// zero bytes, so later Acquires learn instantly that the trace must be
// streamed. A contention verdict (the budget is full of entries pinned by
// concurrent holders) is volatile: the entry is removed so a later Acquire
// can try again once the pins drain.
func (e *Entry) markTooBig(contention bool) {
	e.tooBig = true
	e.volatile = contention
	c := e.c
	c.mu.Lock()
	c.unreserveLocked(e)
	e.batches = nil
	c.stats.TooBig++
	c.col.Ctr(obs.CtrCacheTooBig).Add(1)
	if contention {
		delete(c.entries, e.name)
	}
	c.mu.Unlock()
}

// unreserveLocked returns an entry's bytes to the budget. Caller holds c.mu.
func (c *Cache) unreserveLocked(e *Entry) {
	c.used -= e.bytes
	e.bytes = 0
	c.col.Ctr(obs.CtrCacheBytes).Store(uint64(c.used))
}

// reserve charges delta more bytes to a loading entry, evicting idle
// entries (least recently used first) as needed. ok is false when the
// entry cannot fit; contention distinguishes "every other resident byte is
// pinned by concurrent holders" from "the entry alone exceeds the budget".
func (c *Cache) reserve(e *Entry, delta int64) (ok, contention bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.bytes+delta > c.budget {
		return false, false
	}
	for c.used+delta > c.budget {
		victim := c.idleLRU()
		if victim == nil {
			return false, true
		}
		c.used -= victim.bytes
		delete(c.entries, victim.name)
		c.stats.Evictions++
		c.col.Ctr(obs.CtrCacheEvictions).Add(1)
	}
	c.used += delta
	e.bytes += delta
	c.col.Ctr(obs.CtrCacheBytes).Store(uint64(c.used))
	return true, false
}

// idleLRU returns the least recently used resident entry with no holders,
// or nil when everything is pinned. Caller holds c.mu.
func (c *Cache) idleLRU() *Entry {
	var victim *Entry
	for _, e := range c.entries {
		if e.refs > 0 || e.bytes == 0 {
			continue
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	return victim
}

// Reader returns a fresh bp.BatchReader replaying the entry's decoded
// events followed by its terminal error, for consumers (like the
// comparison simulator) that want a stream rather than raw batches. Valid
// only while the entry is held and TooBig is false.
func (e *Entry) Reader() bp.Reader { return &replay{e: e} }

// replay streams a decoded entry with BatchReader semantics: events in
// order, then the sticky terminal error.
type replay struct {
	e   *Entry
	bi  int // current batch
	off int // offset within it
}

func (r *replay) Read() (bp.Event, error) {
	for r.bi < len(r.e.batches) {
		b := r.e.batches[r.bi]
		if r.off < len(b) {
			ev := b[r.off]
			r.off++
			return ev, nil
		}
		r.bi++
		r.off = 0
	}
	return bp.Event{}, r.terminal()
}

func (r *replay) ReadBatch(dst []bp.Event) (int, error) {
	n := 0
	for n < len(dst) && r.bi < len(r.e.batches) {
		b := r.e.batches[r.bi]
		copied := copy(dst[n:], b[r.off:])
		n += copied
		r.off += copied
		if r.off == len(b) {
			r.bi++
			r.off = 0
		}
	}
	if r.bi >= len(r.e.batches) && n < len(dst) {
		return n, r.terminal()
	}
	return n, nil
}

// terminal returns the entry's sticky end-of-stream error; a too-big or
// still-loading misuse degrades to io.EOF rather than panicking.
func (r *replay) terminal() error {
	if err := r.e.err; err != nil {
		return err
	}
	return io.EOF
}
