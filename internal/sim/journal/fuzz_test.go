package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"unicode/utf8"
)

// FuzzJournalRecord drives the two recovery invariants with arbitrary
// record contents and arbitrary damage:
//
//  1. round trip — records written through the public API come back
//     identical after a reopen;
//  2. torn/corrupt tails — truncating the segment anywhere, or flipping
//     any byte past the committed prefix boundary, never panics, never
//     loses a record committed before the damage, and never surfaces a
//     record after it.
func FuzzJournalRecord(f *testing.F) {
	f.Add("trace|gshare:t=18|w=0|s=0", []byte(`{"mpki":3.25}`), []byte{1, 2, 3}, uint64(7), 3, byte(0x40))
	f.Add("k", []byte(`{}`), []byte{}, uint64(0), 0, byte(0x00))
	f.Add("weird\x00key\xff", []byte(`{"a":[1,2,3]}`), bytes.Repeat([]byte{0xaa}, 300), uint64(1<<40), 17, byte(0xff))

	f.Fuzz(func(t *testing.T, key string, result, state []byte, events uint64, cut int, flip byte) {
		if key == "" {
			key = "k"
		}
		// Keys travel through JSON, which replaces invalid UTF-8 with
		// U+FFFD; real keys (hex digest + canonical spec) are always valid
		// UTF-8, so quote arbitrary fuzz bytes into an equivalent valid key.
		if !utf8.ValidString(key) {
			key = fmt.Sprintf("%q", key)
		}
		if !json.Valid(result) {
			result, _ = json.Marshal(string(result))
		}

		dir := t.TempDir()
		j, err := Open(dir)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		var sizes []int64
		size := int64(len(segMagic))
		n1, err := j.AppendCheckpoint(CheckpointRecord{Key: key, Events: events, State: state})
		if err != nil {
			t.Fatalf("AppendCheckpoint: %v", err)
		}
		size += int64(n1)
		sizes = append(sizes, size)
		n2, err := j.AppendCell(CellRecord{Key: key + "/done", Result: result})
		if err != nil {
			t.Fatalf("AppendCell: %v", err)
		}
		size += int64(n2)
		sizes = append(sizes, size)
		j.Close()

		seg := filepath.Join(dir, segPrefix+"000000"+segSuffix)
		full, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}

		// Invariant 1: clean reopen round-trips both records.
		r, err := Open(dir)
		if err != nil {
			t.Fatalf("clean reopen: %v", err)
		}
		if ck, ok := r.Checkpoint(key); !ok || ck.Events != events || !bytes.Equal(ck.State, state) {
			t.Fatalf("checkpoint did not round-trip: %+v, %v", ck, ok)
		}
		if cell, ok := r.Cell(key + "/done"); !ok || !jsonEqual(cell.Result, result) {
			t.Fatalf("cell did not round-trip: %+v, %v", cell, ok)
		}
		r.Close()

		// Invariant 2a: truncate at an arbitrary offset.
		cutAt := cut
		if cutAt < 0 {
			cutAt = -cutAt
		}
		cutAt %= len(full) + 1
		damaged := t.TempDir()
		if err := os.WriteFile(filepath.Join(damaged, segPrefix+"000000"+segSuffix), full[:cutAt], 0o666); err != nil {
			t.Fatal(err)
		}
		checkRecovered(t, damaged, sizes, int64(cutAt), key, events, state, result)

		// Invariant 2b: flip one byte somewhere in the record area. Damage
		// before offset X means only records fully committed before X are
		// guaranteed; the flipped frame and everything after it must vanish.
		if len(full) > len(segMagic) {
			pos := len(segMagic) + (cutAt % (len(full) - len(segMagic)))
			mut := append([]byte{}, full...)
			mut[pos] ^= flip | 1 // always an actual change
			flipDir := t.TempDir()
			if err := os.WriteFile(filepath.Join(flipDir, segPrefix+"000000"+segSuffix), mut, 0o666); err != nil {
				t.Fatal(err)
			}
			rr, err := Open(flipDir)
			if err != nil {
				t.Fatalf("reopen after bit flip: %v", err)
			}
			// Records whose frames end at or before the flipped byte must
			// survive; nothing can be recovered from the flipped frame on.
			for i, end := range sizes {
				if end <= int64(pos) {
					if i == 0 {
						if _, ok := rr.Checkpoint(key); !ok {
							// The later cell record may legitimately have
							// replaced the checkpoint if it also survived.
							if _, cellOK := rr.Cell(key + "/done"); !cellOK {
								t.Fatalf("record %d (ends %d) lost to flip at %d", i, end, pos)
							}
						}
					} else if _, ok := rr.Cell(key + "/done"); !ok {
						t.Fatalf("record %d (ends %d) lost to flip at %d", i, end, pos)
					}
				}
			}
			rr.Close()
		}
	})
}

// checkRecovered opens a damaged journal and asserts exactly the records
// fully committed within the first `limit` bytes are visible.
func checkRecovered(t *testing.T, dir string, sizes []int64, limit int64, key string, events uint64, state, result []byte) {
	t.Helper()
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after truncation to %d: %v", limit, err)
	}
	defer r.Close()
	ckptCommitted := sizes[0] <= limit
	cellCommitted := sizes[1] <= limit
	if ck, ok := r.Checkpoint(key); ok != ckptCommitted {
		t.Fatalf("truncated to %d: checkpoint present=%v, want %v", limit, ok, ckptCommitted)
	} else if ok && (ck.Events != events || !bytes.Equal(ck.State, state)) {
		t.Fatalf("truncated to %d: checkpoint mutated: %+v", limit, ck)
	}
	if cell, ok := r.Cell(key + "/done"); ok != cellCommitted {
		t.Fatalf("truncated to %d: cell present=%v, want %v", limit, ok, cellCommitted)
	} else if ok && !jsonEqual(cell.Result, result) {
		t.Fatalf("truncated to %d: cell mutated: %+v", limit, cell)
	}
}

// jsonEqual compares two JSON documents semantically: the journal envelope
// re-encodes embedded raw payloads (compaction, HTML escaping), so byte
// equality is not part of the contract — value equality is. The simulator
// re-marshals replayed results from typed structs, which is where the
// byte-identical-output guarantee is enforced.
func jsonEqual(a, b []byte) bool {
	var av, bv any
	if err := json.Unmarshal(a, &av); err != nil {
		return false
	}
	if err := json.Unmarshal(b, &bv); err != nil {
		return false
	}
	return reflect.DeepEqual(av, bv)
}
