package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"mbplib/internal/faults"
)

func mustOpen(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

func cellRec(key, result string) CellRecord {
	return CellRecord{Key: key, Result: json.RawMessage(result)}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	if _, err := j.AppendCell(cellRec("k1", `{"mpki":1.5}`)); err != nil {
		t.Fatalf("AppendCell: %v", err)
	}
	if _, err := j.AppendCell(CellRecord{Key: "k2", Failure: json.RawMessage(`{"class":"corrupt"}`)}); err != nil {
		t.Fatalf("AppendCell failure: %v", err)
	}
	if _, err := j.AppendCheckpoint(CheckpointRecord{Key: "k3", Events: 42, State: []byte{1, 2, 3}}); err != nil {
		t.Fatalf("AppendCheckpoint: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpen(t, dir)
	defer r.Close()
	if got := r.CellCount(); got != 2 {
		t.Fatalf("CellCount = %d, want 2", got)
	}
	if rec, ok := r.Cell("k1"); !ok || string(rec.Result) != `{"mpki":1.5}` {
		t.Errorf("Cell(k1) = %+v, %v", rec, ok)
	}
	if rec, ok := r.Cell("k2"); !ok || string(rec.Failure) != `{"class":"corrupt"}` {
		t.Errorf("Cell(k2) = %+v, %v", rec, ok)
	}
	if rec, ok := r.Checkpoint("k3"); !ok || rec.Events != 42 || len(rec.State) != 3 {
		t.Errorf("Checkpoint(k3) = %+v, %v", rec, ok)
	}
	if _, ok := r.Cell("k3"); ok {
		t.Errorf("checkpoint leaked into cells")
	}
}

func TestJournalLaterRecordsWin(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	for i := 1; i <= 3; i++ {
		if _, err := j.AppendCheckpoint(CheckpointRecord{Key: "cell", Events: uint64(i * 100), State: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if ck, ok := j.Checkpoint("cell"); !ok || ck.Events != 300 {
		t.Fatalf("live checkpoint = %+v, %v; want Events 300", ck, ok)
	}
	// Reopen: replay must keep only the newest checkpoint.
	j.Close()
	j = mustOpen(t, dir)
	if ck, ok := j.Checkpoint("cell"); !ok || ck.Events != 300 || ck.State[0] != 3 {
		t.Fatalf("replayed checkpoint = %+v, %v; want Events 300", ck, ok)
	}
	// A cell record finishes the cell: checkpoints disappear, live and replayed.
	if _, err := j.AppendCell(cellRec("cell", `{}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Checkpoint("cell"); ok {
		t.Errorf("checkpoint survived the cell record (live)")
	}
	j.Close()
	j = mustOpen(t, dir)
	defer j.Close()
	if _, ok := j.Checkpoint("cell"); ok {
		t.Errorf("checkpoint survived the cell record (replayed)")
	}
	if _, ok := j.Cell("cell"); !ok {
		t.Errorf("cell record lost")
	}
}

// activeSegment returns the path of the single (or last) segment file.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return matches[len(matches)-1]
}

func TestJournalTruncatesTornTail(t *testing.T) {
	tails := [][]byte{
		{0x01},                   // torn frame header
		{0xff, 0xff, 0xff, 0x7f}, // implausible length, header incomplete
		func() []byte { // complete header, missing payload
			b := make([]byte, frameHeader)
			binary.LittleEndian.PutUint32(b, 100)
			return b
		}(),
		func() []byte { // complete frame, wrong CRC
			payload := []byte(`{"cell":{"key":"x","result":{}}}`)
			b := make([]byte, frameHeader+len(payload))
			binary.LittleEndian.PutUint32(b, uint32(len(payload)))
			binary.LittleEndian.PutUint32(b[4:], 0xdeadbeef)
			copy(b[frameHeader:], payload)
			return b
		}(),
	}
	for i, tail := range tails {
		t.Run(fmt.Sprintf("tail%d", i), func(t *testing.T) {
			dir := t.TempDir()
			j := mustOpen(t, dir)
			if _, err := j.AppendCell(cellRec("committed", `{"ok":true}`)); err != nil {
				t.Fatal(err)
			}
			j.Close()
			seg := activeSegment(t, dir)
			clean, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, append(append([]byte{}, clean...), tail...), 0o666); err != nil {
				t.Fatal(err)
			}

			r := mustOpen(t, dir)
			if _, ok := r.Cell("committed"); !ok {
				t.Fatalf("committed record lost to torn-tail recovery")
			}
			// The tail must be physically gone and the journal appendable.
			after, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if len(after) != len(clean) {
				t.Errorf("segment is %d bytes after recovery, want %d", len(after), len(clean))
			}
			if _, err := r.AppendCell(cellRec("next", `{}`)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			r.Close()
			rr := mustOpen(t, dir)
			defer rr.Close()
			if rr.CellCount() != 2 {
				t.Errorf("CellCount after recovery+append = %d, want 2", rr.CellCount())
			}
		})
	}
}

// Every byte-level prefix of a segment must recover exactly the records
// whose frames are complete in that prefix — no committed record lost, no
// torn record surfaced, no panic.
func TestJournalEveryPrefixRecovers(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	var ends []int64 // cumulative segment size after each append
	size := int64(len(segMagic))
	for i := 0; i < 5; i++ {
		n, err := j.AppendCell(cellRec(fmt.Sprintf("k%d", i), fmt.Sprintf(`{"i":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		size += int64(n)
		ends = append(ends, size)
	}
	j.Close()
	seg := activeSegment(t, dir)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != size {
		t.Fatalf("segment is %d bytes, bookkeeping says %d", len(full), size)
	}

	for n := 0; n <= len(full); n++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, segPrefix+"000000"+segSuffix), full[:n], 0o666); err != nil {
			t.Fatal(err)
		}
		r, err := Open(sub)
		if err != nil {
			t.Fatalf("prefix %d: Open: %v", n, err)
		}
		wantCells := 0
		for _, e := range ends {
			if int64(n) >= e {
				wantCells++
			}
		}
		if got := r.CellCount(); got != wantCells {
			t.Fatalf("prefix %d: recovered %d cells, want %d", n, got, wantCells)
		}
		r.Close()
	}
}

func TestJournalRejectsCorruptClosedSegment(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	j.MaxSegmentBytes = 1 // rotate on every append
	for i := 0; i < 3; i++ {
		if _, err := j.AppendCell(cellRec(fmt.Sprintf("k%d", i), `{}`)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %v (%v)", segs, err)
	}
	// Flip a payload byte in the first (closed) segment.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, faults.ErrCorrupt) {
		t.Fatalf("Open over corrupt closed segment: err = %v, want ErrCorrupt", err)
	}
}

func TestJournalRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	j.MaxSegmentBytes = 256
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := j.AppendCell(cellRec(fmt.Sprintf("cell-%02d", i), `{"x":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	r := mustOpen(t, dir)
	defer r.Close()
	if got := r.CellCount(); got != n {
		t.Fatalf("recovered %d cells across segments, want %d", got, n)
	}
	// Appends continue into the newest segment, not a fresh one per open.
	before := len(segs)
	if _, err := r.AppendCell(cellRec("one-more", `{}`)); err != nil {
		t.Fatal(err)
	}
	segs, _ = filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) != before && len(segs) != before+1 {
		t.Errorf("segment count jumped from %d to %d on one append", before, len(segs))
	}
}

func TestJournalRemovesLeftoverTmp(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir).Close()
	tmp := filepath.Join(dir, segPrefix+"000099"+segSuffix+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o666); err != nil {
		t.Fatal(err)
	}
	mustOpen(t, dir).Close()
	if _, err := os.Stat(tmp); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("leftover tmp file survived Open: %v", err)
	}
}

// TestJournalRefusesCommittedUndecodableRecord: a frame whose CRC is intact
// but whose payload does not decode was fully committed — it cannot be a
// torn tail, so Open must refuse the journal (even in the final segment)
// rather than truncate it away along with everything after it. This is the
// failure mode of a caller violating the payload-is-json.Marshal-output
// contract, which the appender deliberately does not re-validate.
func TestJournalRefusesCommittedUndecodableRecord(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	if _, err := j.AppendCell(cellRec("good", `{}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendCell(cellRec("bad", `not json`)); err != nil {
		t.Fatalf("AppendCell embeds payloads verbatim, got %v", err)
	}
	j.Close()
	if _, err := Open(dir); !errors.Is(err, faults.ErrCorrupt) {
		t.Fatalf("Open over committed undecodable record: err = %v, want ErrCorrupt", err)
	}
}

func TestJournalValidatesRecords(t *testing.T) {
	j := mustOpen(t, t.TempDir())
	defer j.Close()
	if _, err := j.AppendCell(CellRecord{Key: "", Result: json.RawMessage(`{}`)}); err == nil {
		t.Errorf("empty key accepted")
	}
	if _, err := j.AppendCell(CellRecord{Key: "k"}); err == nil {
		t.Errorf("cell with neither result nor failure accepted")
	}
	if _, err := j.AppendCell(CellRecord{Key: "k", Result: json.RawMessage(`{}`), Failure: json.RawMessage(`{}`)}); err == nil {
		t.Errorf("cell with both result and failure accepted")
	}
	if _, err := j.AppendCheckpoint(CheckpointRecord{Key: ""}); err == nil {
		t.Errorf("checkpoint with empty key accepted")
	}
}

func TestJournalAppendAfterClose(t *testing.T) {
	j := mustOpen(t, t.TempDir())
	j.Close()
	if _, err := j.AppendCell(cellRec("k", `{}`)); err == nil {
		t.Errorf("append after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestDigestFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.sbbt")
	if err := os.WriteFile(path, []byte("abc"), 0o666); err != nil {
		t.Fatal(err)
	}
	got, err := DigestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// SHA-256("abc"), the FIPS 180 test vector.
	want := "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
	if got != want {
		t.Errorf("DigestFile = %s, want %s", got, want)
	}
	if _, err := DigestFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Errorf("DigestFile on missing file succeeded")
	}
}
