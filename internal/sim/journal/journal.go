// Package journal is the crash-safe sweep journal: an append-only log of
// completed (trace × predictor) cell results and in-flight predictor
// checkpoints, durable across SIGKILL. A sweep restarted with the same
// journal directory replays finished cells verbatim and schedules only the
// missing ones, so interrupting a long matrix never repeats finished work —
// the durability substrate the ROADMAP's mbpd daemon will mount directly.
//
// # On-disk format
//
// A journal is a directory of segment files named journal-NNNNNN.mbpj.
// Every segment starts with an 8-byte magic ("MBPJRNL1", the trailing digit
// is the format version) followed by length-prefixed records:
//
//	u32 LE  payload length
//	u32 LE  CRC-32C (Castagnoli) of the payload
//	bytes   payload (JSON-encoded record)
//
// Appends write the whole frame in one write call and fsync before
// reporting success, so a record is either fully committed or not present.
// Segments are created via tmp+rename (the header is synced before the
// rename, the directory after), and a new segment is started once the
// active one exceeds MaxSegmentBytes.
//
// # Recovery rules
//
// On Open the segments are replayed in name order. A torn frame (short
// header, short payload, or CRC mismatch) in the final segment is the tail
// of an interrupted append: everything after the last good record is
// truncated and the journal remains usable. A torn frame in any earlier
// segment cannot be explained by a crash — closed segments were fully
// synced before rotation — so it reports faults.ErrCorrupt and the journal
// refuses to open rather than silently dropping committed records. The same
// applies to a frame whose CRC is intact but whose payload does not decode,
// in any segment: the CRC proves the append completed, so the damage is not
// a crash artifact and truncation would drop committed records.
// Leftover *.tmp files (a crash between create and rename) are removed.
// Within the replay, later records win: a checkpoint supersedes earlier
// checkpoints for the same key, and a cell record supersedes checkpoints
// entirely — the cell is finished.
package journal

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mbplib/internal/faults"
)

const (
	segMagic    = "MBPJRNL1"
	segPrefix   = "journal-"
	segSuffix   = ".mbpj"
	frameHeader = 8 // u32 length + u32 crc

	// maxRecordBytes bounds a single record payload; a length prefix beyond
	// it is treated as a torn/corrupt frame rather than an allocation
	// request. Predictor checkpoints dominate record size; the largest
	// default-configuration checkpoint (TAGE) is well under 8 MiB.
	maxRecordBytes = 64 << 20

	// DefaultMaxSegmentBytes is the rotation threshold for segment files.
	DefaultMaxSegmentBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CellRecord is the durable result of one finished sweep cell. Exactly one
// of Result and Failure is set; both are opaque JSON owned by the caller
// (the journal does not depend on the simulator's types) and must be
// json.Marshal output — the appender embeds the bytes verbatim rather than
// paying a validation pass over every record.
type CellRecord struct {
	Key     string          `json:"key"`
	Result  json.RawMessage `json:"result,omitempty"`
	Failure json.RawMessage `json:"failure,omitempty"`
}

// CheckpointRecord is a point-in-time snapshot of an in-flight cell:
// the number of trace events consumed and the serialized simulation state
// (predictor checkpoint plus loop counters) needed to resume from there.
type CheckpointRecord struct {
	Key    string `json:"key"`
	Events uint64 `json:"events"`
	State  []byte `json:"state"`
}

// record is the JSON envelope framed into segments; exactly one field set.
type record struct {
	Cell *CellRecord       `json:"cell,omitempty"`
	Ckpt *CheckpointRecord `json:"ckpt,omitempty"`
}

// Journal is an open sweep journal. All methods are safe for concurrent
// use; appends from sweep workers serialize internally.
type Journal struct {
	// MaxSegmentBytes is the rotation threshold. It may be lowered (e.g. by
	// tests) between Open and the first append; concurrent modification is
	// not supported.
	MaxSegmentBytes int64

	mu      sync.Mutex
	dir     string
	active  *os.File // current segment, opened for append
	size    int64    // bytes written to the active segment
	nextSeg int      // index for the next rotation
	cells   map[string]CellRecord
	ckpts   map[string]CheckpointRecord
	closed  bool
}

// Open opens (creating if necessary) the journal in dir and replays its
// contents, truncating a torn tail left by a crash mid-append.
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		MaxSegmentBytes: DefaultMaxSegmentBytes,
		dir:             dir,
		cells:           make(map[string]CellRecord),
		ckpts:           make(map[string]CheckpointRecord),
	}
	segs, err := j.listSegments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := j.rotateLocked(); err != nil {
			return nil, err
		}
		return j, nil
	}
	for i, name := range segs {
		last := i == len(segs)-1
		if err := j.replaySegment(name, last); err != nil {
			return nil, err
		}
	}
	lastPath := filepath.Join(dir, segs[len(segs)-1])
	f, err := os.OpenFile(lastPath, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.active = f
	j.nextSeg = segIndex(segs[len(segs)-1]) + 1
	return j, nil
}

// listSegments returns the segment file names in replay order and removes
// leftover temporaries from an interrupted rotation.
func (j *Journal) listSegments() ([]string, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(j.dir, name)) //mbpvet:ignore droppederr -- best-effort cleanup: a stray .tmp never reaches replay and is retried next Open
			continue
		}
		if strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix) {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	return segs, nil
}

func segIndex(name string) int {
	num := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	n := 0
	for _, c := range num {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// replaySegment loads one segment into the in-memory maps. For the final
// segment a torn tail is truncated in place; for earlier segments it is
// corruption.
func (j *Journal) replaySegment(name string, last bool) error {
	path := filepath.Join(j.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	good, perr := j.parseSegment(data)
	if perr != nil && (!last || errors.Is(perr, faults.ErrCorrupt)) {
		return fmt.Errorf("journal: segment %s: %v: %w", name, perr, faults.ErrCorrupt)
	}
	if perr != nil {
		// Torn tail of the crash segment: drop everything after the last
		// committed record. A header shorter than the magic is replaced by
		// a fresh header so the segment stays appendable.
		if good < int64(len(segMagic)) {
			if err := os.WriteFile(path, []byte(segMagic), 0o666); err != nil {
				return fmt.Errorf("journal: rewriting torn header: %w", err)
			}
			good = int64(len(segMagic))
		} else if err := os.Truncate(path, good); err != nil {
			return fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if last {
		j.size = good
	}
	return nil
}

// parseSegment replays the frames of one segment, returning the byte
// offset just past the last well-formed record and a non-nil error if
// anything after that offset is torn or corrupt.
func (j *Journal) parseSegment(data []byte) (int64, error) {
	if len(data) < len(segMagic) {
		return 0, fmt.Errorf("short header (%d bytes)", len(data))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return 0, fmt.Errorf("bad magic %q", data[:len(segMagic)])
	}
	off := int64(len(segMagic))
	rest := data[len(segMagic):]
	for len(rest) > 0 {
		if len(rest) < frameHeader {
			return off, fmt.Errorf("torn frame header at offset %d", off)
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > maxRecordBytes {
			return off, fmt.Errorf("frame at offset %d declares %d bytes", off, n)
		}
		if len(rest) < frameHeader+int(n) {
			return off, fmt.Errorf("torn frame payload at offset %d", off)
		}
		payload := rest[frameHeader : frameHeader+int(n)]
		if crc32.Checksum(payload, crcTable) != sum {
			return off, fmt.Errorf("CRC mismatch at offset %d", off)
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The CRC proved this frame was fully committed, so a decode
			// failure is not a torn tail — truncating here would silently
			// drop it and everything after it. Refuse the journal instead.
			return off, fmt.Errorf("committed record undecodable at offset %d: %v: %w", off, err, faults.ErrCorrupt)
		}
		j.apply(rec)
		off += int64(frameHeader) + int64(n)
		rest = rest[frameHeader+int(n):]
	}
	return off, nil
}

// apply folds one replayed record into the maps, later records winning.
func (j *Journal) apply(rec record) {
	switch {
	case rec.Cell != nil:
		j.cells[rec.Cell.Key] = *rec.Cell
		delete(j.ckpts, rec.Cell.Key)
	case rec.Ckpt != nil:
		if _, done := j.cells[rec.Ckpt.Key]; !done {
			j.ckpts[rec.Ckpt.Key] = *rec.Ckpt
		}
	}
}

// rotateLocked starts a fresh segment via tmp+rename. Callers hold mu (or
// have exclusive access during Open).
func (j *Journal) rotateLocked() error {
	name := fmt.Sprintf("%s%06d%s", segPrefix, j.nextSeg, segSuffix)
	tmp := filepath.Join(j.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()      //mbpvet:ignore droppederr -- error path: the write failure outranks a close failure on the doomed tmp file
		os.Remove(tmp) //mbpvet:ignore droppederr -- error path: best-effort cleanup; a stray .tmp is ignored on recovery
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()      //mbpvet:ignore droppederr -- error path: the sync failure outranks a close failure on the doomed tmp file
		os.Remove(tmp) //mbpvet:ignore droppederr -- error path: best-effort cleanup; a stray .tmp is ignored on recovery
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //mbpvet:ignore droppederr -- error path: best-effort cleanup; a stray .tmp is ignored on recovery
		return fmt.Errorf("journal: %w", err)
	}
	final := filepath.Join(j.dir, name)
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp) //mbpvet:ignore droppederr -- error path: best-effort cleanup; a stray .tmp is ignored on recovery
		return fmt.Errorf("journal: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	af, err := os.OpenFile(final, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.active != nil {
		if err := j.active.Close(); err != nil {
			af.Close() //mbpvet:ignore droppederr -- error path: the rotated segment's close failure is the one to report
			return fmt.Errorf("journal: closing rotated segment: %w", err)
		}
	}
	j.active = af
	j.size = int64(len(segMagic))
	j.nextSeg++
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("journal: syncing directory: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("journal: %w", cerr)
	}
	return nil
}

// encodeRecord assembles the record envelope. Cell payloads are opaque
// pre-encoded JSON that can run to hundreds of KB (a full per-branch
// result), and pushing them through json.Marshal as a RawMessage
// re-validates and re-compacts every byte — more CPU than the fsync the
// append already pays. Cell envelopes are assembled by hand instead, with
// the payload bytes embedded verbatim and unchecked: callers own the
// payload contract (it must be json.Marshal output), and a violation is
// caught on replay, where the intact CRC distinguishes a committed
// undecodable record (corrupt, refuse the journal) from a torn tail.
func encodeRecord(rec record) ([]byte, error) {
	if rec.Cell == nil {
		return json.Marshal(rec)
	}
	body, field := rec.Cell.Result, `,"result":`
	if body == nil {
		body, field = rec.Cell.Failure, `,"failure":`
	}
	key, err := json.Marshal(rec.Cell.Key)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(len(`{"cell":{"key":`) + len(key) + len(field) + len(body) + len("}}"))
	buf.WriteString(`{"cell":{"key":`)
	buf.Write(key)
	buf.WriteString(field)
	buf.Write(body)
	buf.WriteString("}}")
	return buf.Bytes(), nil
}

// appendLocked frames, writes and fsyncs one record.
func (j *Journal) appendLocked(rec record) (int, error) {
	if j.closed {
		return 0, fmt.Errorf("journal: append after Close")
	}
	payload, err := encodeRecord(rec)
	if err != nil {
		return 0, err
	}
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("journal: record of %d bytes exceeds limit", len(payload))
	}
	if j.size >= j.MaxSegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)
	if _, err := j.active.Write(frame); err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	if err := j.active.Sync(); err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	j.size += int64(len(frame))
	return len(frame), nil
}

// AppendCell durably records a finished cell and returns the number of
// journal bytes written. Exactly one of rec.Result and rec.Failure must be
// set.
func (j *Journal) AppendCell(rec CellRecord) (int, error) {
	if rec.Key == "" {
		return 0, fmt.Errorf("journal: cell record without a key")
	}
	if (rec.Result == nil) == (rec.Failure == nil) {
		return 0, fmt.Errorf("journal: cell record needs exactly one of result and failure")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n, err := j.appendLocked(record{Cell: &rec})
	if err != nil {
		return 0, err
	}
	j.cells[rec.Key] = rec
	delete(j.ckpts, rec.Key)
	return n, nil
}

// AppendCheckpoint durably records an in-flight cell snapshot and returns
// the number of journal bytes written.
func (j *Journal) AppendCheckpoint(rec CheckpointRecord) (int, error) {
	if rec.Key == "" {
		return 0, fmt.Errorf("journal: checkpoint record without a key")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n, err := j.appendLocked(record{Ckpt: &rec})
	if err != nil {
		return 0, err
	}
	j.ckpts[rec.Key] = rec
	return n, nil
}

// Cell returns the journalled result for key, if the cell already finished
// in a previous run.
func (j *Journal) Cell(key string) (CellRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.cells[key]
	return rec, ok
}

// Checkpoint returns the latest in-flight snapshot for key, if one was
// journalled and the cell has not finished since.
func (j *Journal) Checkpoint(key string) (CheckpointRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.ckpts[key]
	return rec, ok
}

// CellCount returns the number of finished cells on record.
func (j *Journal) CellCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.cells)
}

// Close closes the active segment. Appended records are already durable;
// Close exists to release the file handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.active == nil {
		return nil
	}
	if err := j.active.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// DigestFile returns the hex SHA-256 of a file's bytes — the trace-identity
// half of a cell key. Content digests make journal entries survive renames
// and reject silently swapped trace files.
func DigestFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	_, cerr := io.Copy(h, f)
	if err := f.Close(); err != nil && cerr == nil {
		cerr = err
	}
	if cerr != nil {
		return "", fmt.Errorf("digesting %s: %w", path, cerr)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
