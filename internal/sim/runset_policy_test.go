package sim

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
	"mbplib/internal/sbbt"
)

// panicPredictor blows up after a fixed number of predictions.
type panicPredictor struct {
	fuse int
}

func (p *panicPredictor) Predict(uint64) bool {
	if p.fuse--; p.fuse < 0 {
		panic("deliberate test panic")
	}
	return true
}

func (p *panicPredictor) Train(bp.Branch) {}
func (p *panicPredictor) Track(bp.Branch) {}

// corruptSource opens an SBBT trace whose packet bytes have been damaged.
func corruptSource(t *testing.T, name string) TraceSource {
	t.Helper()
	evs := make([]bp.Event, 64)
	for i := range evs {
		evs[i] = bp.Event{Branch: bp.Branch{IP: 0x400000 + uint64(i)*4, Target: 0x500000, Opcode: bp.OpCondJump, Taken: true}}
	}
	var buf bytes.Buffer
	w, err := sbbt.NewWriter(&buf, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[sbbt.HeaderSize] ^= 0x10 // set reserved bit 4 in packet 0
	return TraceSource{Name: name, Open: func() (bp.Reader, io.Closer, error) {
		r, err := sbbt.NewReader(bytes.NewReader(data))
		return r, nil, err
	}}
}

// TestRunSetPolicySkipFailed is the tentpole acceptance scenario: a set with
// one corrupt trace and one panicking predictor still yields results for
// every healthy trace plus two classified failures.
func TestRunSetPolicySkipFailed(t *testing.T) {
	srcs := suiteSources(t, 2000)
	if len(srcs) < 5 {
		t.Fatalf("suite too small: %d traces", len(srcs))
	}
	corruptAt, panicAt := 1, 3
	srcs[corruptAt] = corruptSource(t, "corrupt-trace")

	// With a single worker, predictor instances are created in trace order,
	// so the factory can arm the panicking predictor for exactly one trace.
	var instance atomic.Int32
	newPred := func() bp.Predictor {
		if int(instance.Add(1))-1 == panicAt {
			return &panicPredictor{fuse: 3}
		}
		return &staticPredictor{taken: true}
	}
	set, err := RunSetPolicy(srcs, newPred, Config{}, 1, Policy{Mode: SkipFailed})
	if err != nil {
		t.Fatalf("RunSetPolicy: %v", err)
	}
	if len(set.Failures) != 2 {
		t.Fatalf("failures = %+v, want 2", set.Failures)
	}

	corrupt := set.Failures[0]
	if corrupt.Trace != "corrupt-trace" || corrupt.Class != "corrupt" {
		t.Errorf("failure 0 = %+v, want corrupt-trace/corrupt", corrupt)
	}
	if !errors.Is(corrupt.Err, faults.ErrCorrupt) {
		t.Errorf("failure 0 Err = %v, want ErrCorrupt", corrupt.Err)
	}

	panicked := set.Failures[1]
	if panicked.Trace != srcs[panicAt].Name || panicked.Class != "panic" {
		t.Errorf("failure 1 = %+v, want %s/panic", panicked, srcs[panicAt].Name)
	}
	if !errors.Is(panicked.Err, faults.ErrPredictorPanic) {
		t.Errorf("failure 1 Err = %v, want ErrPredictorPanic", panicked.Err)
	}
	if !strings.Contains(panicked.Stack, "panicPredictor") {
		t.Errorf("stack does not name the panicking predictor:\n%s", panicked.Stack)
	}

	if set.Results[corruptAt] != nil || set.Results[panicAt] != nil {
		t.Errorf("failed traces have results")
	}
	healthy := 0
	for _, r := range set.Results {
		if r != nil {
			healthy++
		}
	}
	if healthy != len(srcs)-2 {
		t.Errorf("healthy results = %d, want %d", healthy, len(srcs)-2)
	}
}

// TestRunSetFailFastOnPanic: under FailFast a predictor panic surfaces as a
// returned error, not a crash, preserving the one-error contract.
func TestRunSetFailFastOnPanic(t *testing.T) {
	srcs := suiteSources(t, 1000)
	_, err := RunSet(srcs, func() bp.Predictor { return &panicPredictor{} }, Config{}, 2)
	if err == nil {
		t.Fatal("panic did not surface as an error")
	}
	if !errors.Is(err, faults.ErrPredictorPanic) {
		t.Errorf("err = %v, want ErrPredictorPanic", err)
	}
}

// TestRunSetPolicyRetriesTransientOpen: a source that fails twice with an
// unclassified error and then succeeds is retried to success, while a
// classified (permanent) failure is not retried at all.
func TestRunSetPolicyRetriesTransientOpen(t *testing.T) {
	srcs := suiteSources(t, 1000)
	var opens atomic.Int32
	flaky := srcs[0].Open
	srcs[0] = TraceSource{Name: srcs[0].Name, Open: func() (bp.Reader, io.Closer, error) {
		if opens.Add(1) <= 2 {
			return nil, nil, errors.New("transient: too many open files")
		}
		return flaky()
	}}
	policy := Policy{Mode: SkipFailed, Retries: 3, Backoff: time.Microsecond}
	set, err := RunSetPolicy(srcs, func() bp.Predictor { return &staticPredictor{} }, Config{}, 1, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Failures) != 0 {
		t.Fatalf("failures = %+v", set.Failures)
	}
	if got := opens.Load(); got != 3 {
		t.Errorf("open attempts = %d, want 3", got)
	}

	// Permanent failure: retries are not spent on a corrupt trace.
	var corruptOpens atomic.Int32
	src := corruptSource(t, "corrupt")
	inner := src.Open
	src.Open = func() (bp.Reader, io.Closer, error) {
		corruptOpens.Add(1)
		return inner()
	}
	set, err = RunSetPolicy([]TraceSource{src}, func() bp.Predictor { return &staticPredictor{} }, Config{}, 1, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Failures) != 1 || set.Failures[0].Attempts != 1 {
		t.Fatalf("failures = %+v, want one single-attempt failure", set.Failures)
	}
	if got := corruptOpens.Load(); got != 1 {
		t.Errorf("corrupt trace opened %d times, want 1", got)
	}

	// Retries exhausted: the failure reports the attempt count.
	alwaysDown := TraceSource{Name: "down", Open: func() (bp.Reader, io.Closer, error) {
		return nil, nil, errors.New("transient outage")
	}}
	set, err = RunSetPolicy([]TraceSource{alwaysDown}, func() bp.Predictor { return &staticPredictor{} }, Config{}, 1, Policy{Mode: SkipFailed, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Failures) != 1 || set.Failures[0].Attempts != 3 {
		t.Fatalf("failures = %+v, want one three-attempt failure", set.Failures)
	}
	if set.Failures[0].Class != "other" {
		t.Errorf("class = %q, want other", set.Failures[0].Class)
	}
}
