// Chunk-path equivalence: sweeps over seekable (MLZS) containers through the
// chunk-granular cache path and the parallel-decode reader must produce
// byte-identical result JSON to the sequential streaming path, for every
// warmup/limit configuration, at every -decode-j width, with fault classes
// preserved — the MLZS mirror of the PR 3/4 reader-equivalence tables.
package sim_test

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/chunked"
	"mbplib/internal/compress"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
)

// writeMLZS encodes evs as a plain SBBT trace inside an aligned MLZS
// container at path, with a small chunk size so even short test traces span
// many chunks.
func writeMLZS(t *testing.T, path string, evs []bp.Event, chunkSize int) {
	t.Helper()
	f, err := compress.CreateMLZSFile(path, compress.MLZSOptions{
		ChunkSize:   chunkSize,
		Level:       compress.LevelBest,
		Align:       sbbt.PacketSize,
		AlignOffset: sbbt.HeaderSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(encodeSBBT(t, evs, false)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// mlzsSource builds a TraceSource for an MLZS file: a streaming open at the
// given decode width, plus the chunk-granular open when chunked is set.
func mlzsSource(path string, decodeWorkers int, chunkAccess bool) sim.TraceSource {
	src := sim.TraceSource{Name: path, Open: func() (bp.Reader, io.Closer, error) {
		f, err := compress.OpenFileParallel(path, decodeWorkers)
		if err != nil {
			return nil, nil, err
		}
		r, err := sbbt.NewReader(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return r, f, nil
	}}
	if chunkAccess {
		src.OpenChunked = func() (sim.ChunkedTrace, error) { return chunked.Open(path) }
	}
	return src
}

// chunkEquivTraces writes two MLZS traces (different kernels and seeds, one
// with a partially-filled final chunk) and returns their paths.
func chunkEquivTraces(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	specA, specB := equivSpec(12000), equivSpec(8000)
	specB.Name, specB.Seed = "equiv-b", 31
	paths := []string{filepath.Join(dir, "a.sbbt.mlzs"), filepath.Join(dir, "b.sbbt.mlzs")}
	// 4096-byte chunks hold 256 packets migrating to ~16 chunks per trace;
	// neither trace fills its last chunk, so end-of-trace lands mid-chunk.
	writeMLZS(t, paths[0], generate(t, specA), 4096)
	writeMLZS(t, paths[1], generate(t, specB), 4096)
	return paths
}

var chunkEquivConfigs = map[string]sim.Config{
	"plain":  {},
	"warmup": {WarmupInstructions: 4000},
	"limit":  {SimInstructions: 6000},
	"both":   {WarmupInstructions: 2000, SimInstructions: 5000},
}

// TestChunkedSweepMatchesStreaming: the chunk-granular cache path produces
// byte-identical sweeps to sequential streaming, across configs and at every
// decode width of the streaming fallback.
func TestChunkedSweepMatchesStreaming(t *testing.T) {
	paths := chunkEquivTraces(t)
	streamSrcs := []sim.TraceSource{mlzsSource(paths[0], 1, false), mlzsSource(paths[1], 1, false)}
	for cname, cfg := range chunkEquivConfigs {
		t.Run(cname, func(t *testing.T) {
			seq := sequentialSweep(t, streamSrcs, equivPredictors, cfg, sim.Policy{Mode: sim.SkipFailed})
			for _, decodeJ := range []int{1, 2, 4} {
				chunkSrcs := []sim.TraceSource{mlzsSource(paths[0], decodeJ, true), mlzsSource(paths[1], decodeJ, true)}
				par, err := sim.SweepParallel(chunkSrcs, equivPredictors, cfg, sim.ParallelOptions{
					Workers: 4, Policy: sim.Policy{Mode: sim.SkipFailed},
				})
				if err != nil {
					t.Fatalf("decode-j %d: SweepParallel: %v", decodeJ, err)
				}
				diffSweeps(t, seq, par, equivPredictors)
			}
		})
	}
}

// TestChunkedDecodeWorkersMatchSequential: the parallel-decode reader alone
// (no chunk access) is byte-identical to sequential decode at every width.
func TestChunkedDecodeWorkersMatchSequential(t *testing.T) {
	paths := chunkEquivTraces(t)
	seqSrcs := []sim.TraceSource{mlzsSource(paths[0], 1, false), mlzsSource(paths[1], 1, false)}
	for cname, cfg := range chunkEquivConfigs {
		t.Run(cname, func(t *testing.T) {
			seq := sequentialSweep(t, seqSrcs, equivPredictors, cfg, sim.Policy{Mode: sim.SkipFailed})
			for _, decodeJ := range []int{2, 4} {
				srcs := []sim.TraceSource{mlzsSource(paths[0], decodeJ, false), mlzsSource(paths[1], decodeJ, false)}
				par := sequentialSweep(t, srcs, equivPredictors, cfg, sim.Policy{Mode: sim.SkipFailed})
				diffSweeps(t, seq, par, equivPredictors)
			}
		})
	}
}

// corruptChunkFile flips one payload byte of a mid-container chunk and
// returns the chunk's raw offset, so configs can stop before or run past it.
func corruptChunkFile(t *testing.T, path string) (chunk int, rawOff int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := compress.ReadMLZSIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumChunks() < 4 {
		t.Fatalf("want >= 4 chunks, got %d", ix.NumChunks())
	}
	chunk = ix.NumChunks() - 2
	ci := ix.Chunks[chunk]
	// Flip a byte in the middle of the chunk's compressed payload. The frame
	// header (tag, lengths, kind, CRC) is at most 26 bytes; aim past it.
	data[ci.Off+30] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return chunk, ci.RawOff
}

// TestChunkedFaultEquivalence: a single corrupt chunk produces the same
// failure class and result JSON on the chunk path as on streaming, fails
// only the cells that read past it, and is invisible to limits that stop
// short of the damaged chunk.
func TestChunkedFaultEquivalence(t *testing.T) {
	paths := chunkEquivTraces(t)
	_, rawOff := corruptChunkFile(t, paths[1])
	// rawOff bytes of packets ≈ rawOff/16 branches before the bad chunk; a
	// limit far below that never touches the corruption.
	shortLimit := uint64(rawOff / sbbt.PacketSize / 4)
	if shortLimit == 0 {
		t.Fatalf("corrupt chunk too close to the start (raw offset %d)", rawOff)
	}
	for _, tc := range []struct {
		name     string
		cfg      sim.Config
		wantFail bool
	}{
		{"limit-stops-early", sim.Config{SimInstructions: shortLimit}, false},
		{"limit-past-fault", sim.Config{}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			streamSrcs := []sim.TraceSource{mlzsSource(paths[0], 1, false), mlzsSource(paths[1], 1, false)}
			chunkSrcs := []sim.TraceSource{mlzsSource(paths[0], 1, true), mlzsSource(paths[1], 1, true)}
			seq := sequentialSweep(t, streamSrcs, equivPredictors, tc.cfg, sim.Policy{Mode: sim.SkipFailed})
			par, err := sim.SweepParallel(chunkSrcs, equivPredictors, tc.cfg, sim.ParallelOptions{
				Workers: 4, Policy: sim.Policy{Mode: sim.SkipFailed},
			})
			if err != nil {
				t.Fatalf("SweepParallel: %v", err)
			}
			diffSweeps(t, seq, par, equivPredictors)
			for pi := range equivPredictors {
				// The intact trace always scores; the damaged one fails only
				// when the run reads past the corrupt chunk.
				if par[pi].Results[0] == nil {
					t.Errorf("predictor %d: intact trace failed", pi)
				}
				gotFail := par[pi].Results[1] == nil
				if gotFail != tc.wantFail {
					t.Errorf("predictor %d: corrupt trace failed=%v, want %v", pi, gotFail, tc.wantFail)
				}
				if tc.wantFail && par[pi].Failures[0].Class != "corrupt" {
					t.Errorf("predictor %d: class %q, want corrupt", pi, par[pi].Failures[0].Class)
				}
			}
		})
	}
}

// TestChunkedTruncatedContainerFallsBack: a container whose index trailer is
// cut off is ineligible for the chunk path (chunked.Open rejects it), and the
// scheduler silently falls back to streaming — which reports the truncation
// with the same typed class as the sequential path.
func TestChunkedTruncatedContainerFallsBack(t *testing.T) {
	paths := chunkEquivTraces(t)
	data, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[1], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := chunked.Open(paths[1]); err == nil {
		t.Fatal("chunked.Open accepted a truncated container")
	}
	streamSrcs := []sim.TraceSource{mlzsSource(paths[0], 1, false), mlzsSource(paths[1], 1, false)}
	chunkSrcs := []sim.TraceSource{mlzsSource(paths[0], 1, true), mlzsSource(paths[1], 1, true)}
	seq := sequentialSweep(t, streamSrcs, equivPredictors, sim.Config{}, sim.Policy{Mode: sim.SkipFailed})
	par, err := sim.SweepParallel(chunkSrcs, equivPredictors, sim.Config{}, sim.ParallelOptions{
		Workers: 4, Policy: sim.Policy{Mode: sim.SkipFailed},
	})
	if err != nil {
		t.Fatalf("SweepParallel: %v", err)
	}
	diffSweeps(t, seq, par, equivPredictors)
	for pi := range equivPredictors {
		if len(par[pi].Failures) != 1 || par[pi].Failures[0].Class != "truncated" {
			t.Errorf("predictor %d: failures = %+v, want one truncated", pi, par[pi].Failures)
		}
	}
}

// TestChunkedTinyCacheMatches: a cache too small to pin any chunk forces the
// direct-decode fallback inside the chunk path; results stay identical.
func TestChunkedTinyCacheMatches(t *testing.T) {
	paths := chunkEquivTraces(t)
	streamSrcs := []sim.TraceSource{mlzsSource(paths[0], 1, false), mlzsSource(paths[1], 1, false)}
	chunkSrcs := []sim.TraceSource{mlzsSource(paths[0], 1, true), mlzsSource(paths[1], 1, true)}
	seq := sequentialSweep(t, streamSrcs, equivPredictors, sim.Config{}, sim.Policy{Mode: sim.SkipFailed})
	par, err := sim.SweepParallel(chunkSrcs, equivPredictors, sim.Config{}, sim.ParallelOptions{
		Workers: 4, CacheBytes: 64, Policy: sim.Policy{Mode: sim.SkipFailed},
	})
	if err != nil {
		t.Fatalf("SweepParallel: %v", err)
	}
	diffSweeps(t, seq, par, equivPredictors)
}

// TestChunkedTraceDirect pins down the chunked.Trace contract itself:
// concatenated chunk decodes equal the streaming event sequence, and the
// header accessors match the SBBT header.
func TestChunkedTraceDirect(t *testing.T) {
	dir := t.TempDir()
	evs := generate(t, equivSpec(5000))
	path := filepath.Join(dir, "t.sbbt.mlzs")
	writeMLZS(t, path, evs, 2048)

	ct, err := chunked.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if ct.TotalBranches() != uint64(len(evs)) {
		t.Errorf("TotalBranches = %d, want %d", ct.TotalBranches(), len(evs))
	}
	var got []bp.Event
	for i := 0; i < ct.NumChunks(); i++ {
		chunk, err := ct.DecodeChunk(i)
		if err != nil {
			t.Fatalf("DecodeChunk(%d): %v", i, err)
		}
		got = append(got, chunk...)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	for i := range got {
		if got[i] != evs[i] {
			t.Fatalf("event %d differs between chunk decode and generator", i)
		}
	}
}

// TestChunkedOpenRejectsUnaligned: containers without packet alignment (the
// default recompress output for non-SBBT payloads) stream instead.
func TestChunkedOpenRejectsUnaligned(t *testing.T) {
	dir := t.TempDir()
	evs := generate(t, equivSpec(3000))
	path := filepath.Join(dir, "t.sbbt.mlzs")
	f, err := compress.CreateMLZSFile(path, compress.MLZSOptions{ChunkSize: 2048, Level: compress.LevelBest})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(encodeSBBT(t, evs, false)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := chunked.Open(path); err == nil {
		t.Fatal("chunked.Open accepted an unaligned container")
	}
}

// TestChunkedOpenRejectsChecksummed: checksummed SBBT interleaves CRC
// trailers with packets, so chunk boundaries cannot be packet-aligned in the
// record sense; those traces stream.
func TestChunkedOpenRejectsChecksummed(t *testing.T) {
	dir := t.TempDir()
	evs := generate(t, equivSpec(3000))
	path := filepath.Join(dir, "t.sbbt.mlzs")
	f, err := compress.CreateMLZSFile(path, compress.MLZSOptions{
		ChunkSize: 2048, Level: compress.LevelBest,
		Align: sbbt.PacketSize, AlignOffset: sbbt.HeaderSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(encodeSBBT(t, evs, true)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := chunked.Open(path); err == nil {
		t.Fatal("chunked.Open accepted a checksummed trace")
	}
}
