package sim_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

// takenPredictor is a trivial deterministic predictor for equivalence runs.
type takenPredictor struct{}

func (takenPredictor) Predict(uint64) bool { return true }
func (takenPredictor) Train(bp.Branch)     {}
func (takenPredictor) Track(bp.Branch)     {}

// fusedPredictor panics after a fixed number of predictions.
type fusedPredictor struct{ fuse int }

func (p *fusedPredictor) Predict(uint64) bool {
	if p.fuse--; p.fuse < 0 {
		panic("deliberate test panic")
	}
	return true
}
func (p *fusedPredictor) Train(bp.Branch) {}
func (p *fusedPredictor) Track(bp.Branch) {}

func genSource(spec tracegen.Spec) sim.TraceSource {
	return sim.TraceSource{Name: spec.Name, Open: func() (bp.Reader, io.Closer, error) {
		g, err := tracegen.New(spec)
		return g, nil, err
	}}
}

func suiteSpecs(t *testing.T, n uint64) []tracegen.Spec {
	t.Helper()
	specs, err := tracegen.Suite("cbp5-train", n)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func genSources(t *testing.T, n uint64) []sim.TraceSource {
	t.Helper()
	var srcs []sim.TraceSource
	for _, spec := range suiteSpecs(t, n) {
		srcs = append(srcs, genSource(spec))
	}
	return srcs
}

// lateCorruptSource encodes a checksummed SBBT trace of the spec's events and
// flips a bit in the final chunk, so the decode delivers most of the stream
// before failing with a corruption error.
func lateCorruptSource(t *testing.T, name string, spec tracegen.Spec) sim.TraceSource {
	t.Helper()
	data := encodeSBBT(t, generate(t, spec), true)
	data[len(data)-10] ^= 0x01
	return sim.TraceSource{Name: name, Open: func() (bp.Reader, io.Closer, error) {
		r, err := sbbt.NewReader(bytes.NewReader(data))
		return r, nil, err
	}}
}

var equivPredictors = []sim.PredictorSpec{
	{Name: "taken", New: func() bp.Predictor { return takenPredictor{} }},
	{Name: "gshare", New: func() bp.Predictor { return gshare.New() }},
}

// sequentialSweep is the legacy path the parallel scheduler must match:
// one single-worker RunSetPolicy per predictor.
func sequentialSweep(t *testing.T, srcs []sim.TraceSource, preds []sim.PredictorSpec, cfg sim.Config, policy sim.Policy) []*sim.SetResult {
	t.Helper()
	out := make([]*sim.SetResult, len(preds))
	for i, ps := range preds {
		set, err := sim.RunSetPolicy(srcs, ps.New, cfg, 1, policy)
		if err != nil {
			t.Fatalf("sequential sweep, predictor %s: %v", ps.Name, err)
		}
		out[i] = set
	}
	return out
}

// setJSON renders a SetResult with the nondeterministic fields zeroed: each
// result's wall-clock time, and failure stacks (goroutine dumps name
// different frames on the sequential and parallel paths).
func setJSON(t *testing.T, set *sim.SetResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("{\"results\":[")
	for i, r := range set.Results {
		if i > 0 {
			buf.WriteByte(',')
		}
		if r == nil {
			buf.WriteString("null")
			continue
		}
		buf.Write(resultJSON(t, r))
	}
	buf.WriteString("],\"failures\":[")
	for i, f := range set.Failures {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "{%q,%q,%q,%d}", f.Trace, f.Class, f.Message, f.Attempts)
	}
	buf.WriteString("]}")
	return buf.Bytes()
}

func diffSweeps(t *testing.T, seq, par []*sim.SetResult, preds []sim.PredictorSpec) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("sweep sizes differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		sj, pj := setJSON(t, seq[i]), setJSON(t, par[i])
		if !bytes.Equal(sj, pj) {
			t.Errorf("predictor %s: parallel result differs from sequential\nseq: %s\npar: %s",
				preds[i].Name, sj, pj)
		}
	}
}

// TestSweepParallelMatchesSequential is the core acceptance suite: for every
// reader kind and several warmup/limit configs, a 4-worker sweep must produce
// byte-identical result JSON to per-predictor single-worker RunSetPolicy.
func TestSweepParallelMatchesSequential(t *testing.T) {
	specA, specB := equivSpec(12000), equivSpec(8000)
	specB.Name, specB.Seed = "equiv-b", 31
	readersA := equivReaders(t, specA)
	readersB := equivReaders(t, specB)
	configs := map[string]sim.Config{
		"plain":  {},
		"warmup": {WarmupInstructions: 4000},
		"limit":  {SimInstructions: 6000},
		"both":   {WarmupInstructions: 2000, SimInstructions: 5000},
	}
	for kind := range readersA {
		openA, openB := readersA[kind], readersB[kind]
		srcs := []sim.TraceSource{
			{Name: "a-" + kind, Open: func() (bp.Reader, io.Closer, error) { return openA(), nil, nil }},
			{Name: "b-" + kind, Open: func() (bp.Reader, io.Closer, error) { return openB(), nil, nil }},
		}
		for cname, cfg := range configs {
			t.Run(kind+"/"+cname, func(t *testing.T) {
				seq := sequentialSweep(t, srcs, equivPredictors, cfg, sim.Policy{Mode: sim.SkipFailed})
				par, err := sim.SweepParallel(srcs, equivPredictors, cfg, sim.ParallelOptions{
					Workers: 4, Policy: sim.Policy{Mode: sim.SkipFailed},
				})
				if err != nil {
					t.Fatalf("SweepParallel: %v", err)
				}
				diffSweeps(t, seq, par, equivPredictors)
			})
		}
	}
}

// TestSweepParallelLimitBeforeCorruption: a trace corrupt near its end
// succeeds under an instruction limit that stops before the bad bytes — on
// both paths — and fails identically once the limit passes the corruption.
// The second predictor exercises the cached partial-batches replay.
func TestSweepParallelLimitBeforeCorruption(t *testing.T) {
	srcs := []sim.TraceSource{lateCorruptSource(t, "late-corrupt", equivSpec(20000))}
	for _, tc := range []struct {
		name    string
		cfg     sim.Config
		wantErr bool
	}{
		{"limit-stops-early", sim.Config{SimInstructions: 1000}, false},
		{"limit-past-fault", sim.Config{}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq := sequentialSweep(t, srcs, equivPredictors, tc.cfg, sim.Policy{Mode: sim.SkipFailed})
			par, err := sim.SweepParallel(srcs, equivPredictors, tc.cfg, sim.ParallelOptions{
				Workers: 2, Policy: sim.Policy{Mode: sim.SkipFailed},
			})
			if err != nil {
				t.Fatalf("SweepParallel: %v", err)
			}
			for pi := range equivPredictors {
				failed := len(par[pi].Failures) > 0
				if failed != tc.wantErr {
					t.Errorf("predictor %d: failed=%v, want %v", pi, failed, tc.wantErr)
				}
				if tc.wantErr && par[pi].Failures[0].Class != "corrupt" {
					t.Errorf("predictor %d: class %q, want corrupt", pi, par[pi].Failures[0].Class)
				}
			}
			diffSweeps(t, seq, par, equivPredictors)
		})
	}
}

// TestSweepParallelInterleavedFailures: a corrupt trace and a panicking
// predictor poison exactly their own (trace, predictor) cells. Every other
// cell matches the sequential sweep byte for byte.
func TestSweepParallelInterleavedFailures(t *testing.T) {
	srcs := genSources(t, 2000)
	if len(srcs) < 4 {
		t.Fatalf("suite too small: %d traces", len(srcs))
	}
	corruptAt := 1
	srcs[corruptAt] = lateCorruptSource(t, "corrupt-trace", equivSpec(2000))
	preds := []sim.PredictorSpec{
		{Name: "taken", New: func() bp.Predictor { return takenPredictor{} }},
		{Name: "fused", New: func() bp.Predictor { return &fusedPredictor{fuse: 40} }},
		{Name: "gshare", New: func() bp.Predictor { return gshare.New() }},
	}
	policy := sim.Policy{Mode: sim.SkipFailed}
	seq := sequentialSweep(t, srcs, preds, sim.Config{}, policy)
	par, err := sim.SweepParallel(srcs, preds, sim.Config{}, sim.ParallelOptions{Workers: 4, Policy: policy})
	if err != nil {
		t.Fatalf("SweepParallel: %v", err)
	}
	diffSweeps(t, seq, par, preds)

	// The fused predictor fails on every trace; the healthy predictors fail
	// only on the corrupt trace.
	for pi, ps := range preds {
		for ti := range srcs {
			got := par[pi].Results[ti] != nil
			want := ps.Name != "fused" && ti != corruptAt
			if got != want {
				t.Errorf("cell (%s, %s): scored=%v, want %v", ps.Name, srcs[ti].Name, got, want)
			}
		}
	}
	for ti, f := range par[1].Failures {
		if ti == corruptAt {
			continue // fuse may or may not blow before the corruption point
		}
		if f.Class != "panic" || !errors.Is(f.Err, faults.ErrPredictorPanic) {
			t.Errorf("fused failure on %s: class %q err %v, want panic", f.Trace, f.Class, f.Err)
		}
	}
	if f := par[0].Failures[0]; f.Trace != "corrupt-trace" || f.Class != "corrupt" {
		t.Errorf("taken failure = %+v, want corrupt-trace/corrupt", f)
	}
}

// TestSweepParallelFailFast: the first failure cancels the sweep and is
// returned as a *SweepError carrying the fault taxonomy.
func TestSweepParallelFailFast(t *testing.T) {
	srcs := genSources(t, 1500)
	srcs[0] = lateCorruptSource(t, "corrupt-trace", equivSpec(1500))
	_, err := sim.SweepParallel(srcs, equivPredictors, sim.Config{}, sim.ParallelOptions{
		Workers: 4, Policy: sim.Policy{Mode: sim.FailFast},
	})
	if err == nil {
		t.Fatal("FailFast sweep with a corrupt trace returned nil error")
	}
	var se *sim.SweepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *SweepError", err, err)
	}
	if se.Trace != "corrupt-trace" || !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("SweepError = %+v, want corrupt-trace wrapping ErrCorrupt", se)
	}
}

// TestRunSetParallelMatchesRunSetPolicy: the single-predictor wrapper is
// equivalent to sequential RunSetPolicy, failures included, and its FailFast
// error text matches the sequential format.
func TestRunSetParallelMatchesRunSetPolicy(t *testing.T) {
	srcs := genSources(t, 2500)
	srcs[2] = lateCorruptSource(t, "corrupt-trace", equivSpec(2500))
	newPred := func() bp.Predictor { return gshare.New() }
	policy := sim.Policy{Mode: sim.SkipFailed}

	seq, err := sim.RunSetPolicy(srcs, newPred, sim.Config{}, 1, policy)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sim.RunSetParallel(srcs, newPred, sim.Config{}, sim.ParallelOptions{Workers: 4, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := setJSON(t, seq), setJSON(t, par); !bytes.Equal(s, p) {
		t.Errorf("RunSetParallel differs from RunSetPolicy\nseq: %s\npar: %s", s, p)
	}

	_, seqErr := sim.RunSetPolicy(srcs, newPred, sim.Config{}, 1, sim.Policy{Mode: sim.FailFast})
	_, parErr := sim.RunSetParallel(srcs, newPred, sim.Config{}, sim.ParallelOptions{
		Workers: 4, Policy: sim.Policy{Mode: sim.FailFast},
	})
	if seqErr == nil || parErr == nil {
		t.Fatalf("FailFast errors: seq=%v par=%v, want both non-nil", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("FailFast error text differs:\nseq: %v\npar: %v", seqErr, parErr)
	}
}

// TestSweepParallelCacheBudgets: a cache too small to pin anything and a
// disabled cache both fall back to streaming with identical results.
func TestSweepParallelCacheBudgets(t *testing.T) {
	srcs := genSources(t, 2000)
	seq := sequentialSweep(t, srcs, equivPredictors, sim.Config{}, sim.Policy{Mode: sim.SkipFailed})
	for _, budget := range []int64{64, -1} {
		par, err := sim.SweepParallel(srcs, equivPredictors, sim.Config{}, sim.ParallelOptions{
			Workers: 4, CacheBytes: budget, Policy: sim.Policy{Mode: sim.SkipFailed},
		})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		diffSweeps(t, seq, par, equivPredictors)
	}
}

func TestSweepParallelNilPredictor(t *testing.T) {
	srcs := genSources(t, 500)
	_, err := sim.SweepParallel(srcs, []sim.PredictorSpec{{Name: "nil"}}, sim.Config{}, sim.ParallelOptions{})
	if !errors.Is(err, sim.ErrNilPredictor) {
		t.Errorf("err = %v, want ErrNilPredictor", err)
	}
	_, err = sim.RunSetParallel(srcs, nil, sim.Config{}, sim.ParallelOptions{})
	if !errors.Is(err, sim.ErrNilPredictor) {
		t.Errorf("RunSetParallel err = %v, want ErrNilPredictor", err)
	}
}
