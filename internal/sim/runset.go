package sim

import (
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
)

// TraceSource lazily opens one trace of a set. Open is called from a worker
// goroutine; the returned Closer (which may be nil) is closed when the
// simulation of that trace finishes.
type TraceSource struct {
	Name string
	Open func() (bp.Reader, io.Closer, error)
}

// FailureMode selects how a run set reacts to a per-trace failure.
type FailureMode int

// Failure modes.
const (
	// FailFast aborts the whole set on the first failure, the historical
	// RunSet behavior.
	FailFast FailureMode = iota
	// SkipFailed records the failure and keeps simulating the remaining
	// traces, so a 200-trace sweep with 3 corrupt traces still reports 197
	// scores plus a failure table.
	SkipFailed
)

// String returns the flag-style name of the mode ("failfast", "skip").
func (m FailureMode) String() string {
	switch m {
	case FailFast:
		return "failfast"
	case SkipFailed:
		return "skip"
	}
	return fmt.Sprintf("FailureMode(%d)", int(m))
}

// Policy describes how RunSetPolicy treats per-trace failures.
type Policy struct {
	// Mode selects abort-on-first-failure or skip-and-continue.
	Mode FailureMode
	// Retries is the number of additional Open attempts after a transient
	// open failure (one the faults taxonomy does not classify as
	// permanent, e.g. an EMFILE or a network-filesystem hiccup). Decode
	// errors and panics are never retried: the bytes will not improve.
	Retries int
	// Backoff is the delay before the first retry; it doubles per attempt
	// and is capped at maxBackoff. Zero means retry immediately.
	Backoff time.Duration
}

// maxBackoff caps the exponential retry delay.
const maxBackoff = 2 * time.Second

// TraceFailure describes one trace the set could not score.
type TraceFailure struct {
	// Trace is the TraceSource name.
	Trace string `json:"trace"`
	// Class is the faults taxonomy class: "corrupt", "truncated", "limit",
	// "panic", or "other".
	Class string `json:"class"`
	// Message is the full error text.
	Message string `json:"message"`
	// Attempts is how many times the trace was tried (1 when no retries).
	Attempts int `json:"attempts"`
	// Stack is the captured goroutine stack when Class is "panic".
	Stack string `json:"stack,omitempty"`
	// Err is the underlying error, for errors.Is/As; it is not serialized.
	Err error `json:"-"`
}

// SetResult carries the outcome of a run set under a failure policy:
// Results is index-aligned with the sources (nil for a failed trace) and
// Failures lists every trace that could not be scored.
type SetResult struct {
	Results  []*Result
	Failures []TraceFailure
}

// RunSet simulates a fresh predictor instance over every trace of a set,
// running up to workers traces concurrently — the evaluation workflow of
// the championships, where a design is scored over hundreds of traces
// (§II). Because MBPlib is a library, the fan-out is plain user-side code:
// each worker owns its predictor and its reader, so no locking touches the
// hot loop. Results are returned in source order. The first error aborts
// the set; use RunSetPolicy to degrade gracefully instead.
func RunSet(sources []TraceSource, newPredictor func() bp.Predictor, cfg Config, workers int) ([]*Result, error) {
	set, err := RunSetPolicy(sources, newPredictor, cfg, workers, Policy{Mode: FailFast})
	if err != nil {
		return nil, err
	}
	return set.Results, nil
}

// RunSetPolicy is RunSet under an explicit failure policy. A panic inside a
// predictor (or reader) is recovered per trace and reported as a
// faults.ErrPredictorPanic failure with the captured stack, so one broken
// design cannot kill a whole sweep. Under FailFast the first failure aborts
// the set and is returned as the error, preserving RunSet's historical
// contract; under SkipFailed the returned error is nil and per-trace
// failures are collected in SetResult.Failures.
func RunSetPolicy(sources []TraceSource, newPredictor func() bp.Predictor, cfg Config, workers int, policy Policy) (*SetResult, error) {
	if newPredictor == nil {
		return nil, ErrNilPredictor
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	results := make([]*Result, len(sources))
	failures := make([]*TraceFailure, len(sources))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], failures[i] = runOne(sources[i], newPredictor, cfg, policy)
			}
		}()
	}
	for i := range sources {
		next <- i
	}
	close(next)
	wg.Wait()
	set := &SetResult{Results: results}
	for i, f := range failures {
		if f == nil {
			continue
		}
		if policy.Mode == FailFast {
			return nil, fmt.Errorf("sim: trace %q: %w", sources[i].Name, f.Err)
		}
		set.Failures = append(set.Failures, *f)
	}
	return set, nil
}

// runOne opens and simulates a single trace under the policy, converting a
// panic anywhere in the unit — Open, the reader, or the predictor — into a
// classified failure. Only the open phase is retried: once decoding has
// started, a failure is a property of the trace bytes or the predictor, and
// the bytes will not improve on a second try.
func runOne(src TraceSource, newPredictor func() bp.Predictor, cfg Config, policy Policy) (result *Result, failure *TraceFailure) {
	attempts := 0
	defer func() {
		if v := recover(); v != nil {
			err := faults.NewPanicError(v, debug.Stack())
			result = nil
			failure = newFailure(src.Name, err, attempts)
		}
	}()
	backoff := policy.Backoff
	for {
		attempts++
		r, closer, err := src.Open()
		if err != nil {
			if attempts > policy.Retries || faults.Permanent(err) {
				return nil, newFailure(src.Name, fmt.Errorf("opening: %w", err), attempts)
			}
			if backoff > 0 {
				time.Sleep(backoff)
				if backoff *= 2; backoff > maxBackoff {
					backoff = maxBackoff
				}
			}
			continue
		}
		res, err := func() (*Result, error) {
			if closer != nil {
				defer closer.Close() //mbpvet:ignore droppederr -- read side: a close failure cannot corrupt the already-consumed trace
			}
			cfg.TraceName = src.Name
			return Run(r, newPredictor(), cfg)
		}()
		if err != nil {
			return nil, newFailure(src.Name, err, attempts)
		}
		return res, nil
	}
}

func newFailure(trace string, err error, attempts int) *TraceFailure {
	f := &TraceFailure{
		Trace:    trace,
		Class:    faults.Class(err),
		Message:  err.Error(),
		Attempts: attempts,
		Err:      err,
	}
	var pe *faults.PanicError
	if errors.As(err, &pe) {
		f.Stack = string(pe.Stack)
	}
	return f
}

// SetSummary aggregates a RunSet outcome the way championship scoreboards
// do: totals plus the arithmetic mean MPKI over traces.
type SetSummary struct {
	Traces                 int     `json:"traces"`
	TotalInstructions      uint64  `json:"total_instructions"`
	TotalConditional       uint64  `json:"total_conditional_branches"`
	TotalMispredictions    uint64  `json:"total_mispredictions"`
	MeanMPKI               float64 `json:"mean_mpki"`
	WorstMPKI              float64 `json:"worst_mpki"`
	WorstTrace             string  `json:"worst_trace"`
	AggregateMPKI          float64 `json:"aggregate_mpki"` // over summed counts
	AggregateAccuracy      float64 `json:"aggregate_accuracy"`
	TotalSimulationSeconds float64 `json:"total_simulation_seconds"`
}

// Summarize aggregates a RunSet result list. Nil entries (traces a
// SkipFailed policy could not score) are excluded from every statistic,
// including the trace count and the mean.
func Summarize(results []*Result) SetSummary {
	var s SetSummary
	var mpkiSum float64
	for _, r := range results {
		if r == nil {
			continue
		}
		s.Traces++
		s.TotalInstructions += r.Metadata.SimulationInstr
		s.TotalConditional += r.Metadata.NumConditionalBranches
		s.TotalMispredictions += r.Metrics.Mispredictions
		s.TotalSimulationSeconds += r.Metrics.SimulationTime
		mpkiSum += r.Metrics.MPKI
		if r.Metrics.MPKI > s.WorstMPKI {
			s.WorstMPKI = r.Metrics.MPKI
			s.WorstTrace = r.Metadata.Trace
		}
	}
	if s.Traces > 0 {
		s.MeanMPKI = mpkiSum / float64(s.Traces)
	}
	if s.TotalInstructions > 0 {
		s.AggregateMPKI = float64(s.TotalMispredictions) / (float64(s.TotalInstructions) / 1000)
	}
	if s.TotalConditional > 0 {
		s.AggregateAccuracy = 1 - float64(s.TotalMispredictions)/float64(s.TotalConditional)
	}
	return s
}
