package sim

import (
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
	"mbplib/internal/utils"
)

// TraceSource lazily opens one trace of a set. Open is called from a worker
// goroutine; the returned Closer (which may be nil) is closed when the
// simulation of that trace finishes.
type TraceSource struct {
	Name string
	Open func() (bp.Reader, io.Closer, error)
	// OpenChunked, when non-nil, offers chunk-granular random access to the
	// same trace (an indexed MLZS container; see internal/chunked). The
	// parallel scheduler prefers it so chunks are cached and evicted
	// independently; an error from OpenChunked is not a trace failure — the
	// scheduler silently falls back to Open, which reports any real damage
	// with the canonical streaming diagnostics.
	OpenChunked func() (ChunkedTrace, error)
	// Digest optionally identifies the trace contents (conventionally the
	// hex SHA-256 of the file, journal.DigestFile). The sweep journal keys
	// cells by it, so journalled results survive file renames and reject
	// silently swapped bytes. Empty falls back to Name.
	Digest string
}

// FailureMode selects how a run set reacts to a per-trace failure.
type FailureMode int

// Failure modes.
const (
	// FailFast aborts the whole set on the first failure, the historical
	// RunSet behavior.
	FailFast FailureMode = iota
	// SkipFailed records the failure and keeps simulating the remaining
	// traces, so a 200-trace sweep with 3 corrupt traces still reports 197
	// scores plus a failure table.
	SkipFailed
)

// String returns the flag-style name of the mode ("failfast", "skip").
func (m FailureMode) String() string {
	switch m {
	case FailFast:
		return "failfast"
	case SkipFailed:
		return "skip"
	}
	return fmt.Sprintf("FailureMode(%d)", int(m))
}

// Policy describes how RunSetPolicy treats per-trace failures.
type Policy struct {
	// Mode selects abort-on-first-failure or skip-and-continue.
	Mode FailureMode
	// Retries is the number of additional Open attempts after a transient
	// open failure (one the faults taxonomy does not classify as
	// permanent, e.g. an EMFILE or a network-filesystem hiccup). Decode
	// errors and panics are never retried: the bytes will not improve.
	Retries int
	// Backoff is the ceiling of the delay before the first retry; the
	// ceiling doubles per attempt and is capped at maxBackoff, and each
	// actual delay is drawn uniformly from [0, ceiling) — "full jitter",
	// which decorrelates the retry storms of many workers hitting the same
	// transient fault together. Zero means retry immediately.
	Backoff time.Duration
	// Seed seeds the backoff jitter. Zero derives a seed from the clock;
	// any fixed value makes the jitter schedule reproducible for tests.
	Seed uint64
}

// maxBackoff caps the exponential retry delay.
const maxBackoff = 2 * time.Second

// backoffState is the full-jitter retry schedule of one open-retry loop:
// nextDelay draws uniformly from [0, ceiling) and doubles the ceiling up to
// maxBackoff. Each loop owns its generator — utils.Rand is not safe for
// concurrent use — seeded from the policy seed mixed with the trace name,
// so workers sharing a seed still spread out.
type backoffState struct {
	ceil time.Duration
	rng  *utils.Rand
}

func newBackoff(policy Policy, traceName string) *backoffState {
	seed := policy.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	return &backoffState{ceil: policy.Backoff, rng: utils.NewRand(utils.Mix(seed ^ hashName(traceName)))}
}

// nextDelay returns the next sleep and advances the doubling ceiling.
func (b *backoffState) nextDelay() time.Duration {
	if b.ceil <= 0 {
		return 0
	}
	d := time.Duration(b.rng.Float64() * float64(b.ceil))
	if b.ceil *= 2; b.ceil > maxBackoff {
		b.ceil = maxBackoff
	}
	return d
}

// hashName is FNV-1a over a trace name, for seed mixing.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// TraceFailure describes one trace the set could not score.
type TraceFailure struct {
	// Trace is the TraceSource name.
	Trace string `json:"trace"`
	// Class is the faults taxonomy class: "corrupt", "truncated", "limit",
	// "panic", or "other".
	Class string `json:"class"`
	// Message is the full error text.
	Message string `json:"message"`
	// Attempts is how many times the trace was tried (1 when no retries).
	Attempts int `json:"attempts"`
	// Seconds is wall time spent on the cell across all attempts before it
	// failed. Wall time is not deterministic, so outputs that promise
	// byte-identical bytes across schedules must omit or scrub it.
	Seconds float64 `json:"seconds,omitempty"`
	// Resumable marks a failure that does not condemn the cell: the sweep
	// was drained before (or while) the cell ran, and a resumed sweep will
	// run it again. Resumable failures are never journalled as final.
	Resumable bool `json:"resumable,omitempty"`
	// Stack is the captured goroutine stack when Class is "panic".
	Stack string `json:"stack,omitempty"`
	// Err is the underlying error, for errors.Is/As; it is not serialized.
	Err error `json:"-"`
}

// SetResult carries the outcome of a run set under a failure policy:
// Results is index-aligned with the sources (nil for a failed trace) and
// Failures lists every trace that could not be scored.
type SetResult struct {
	Results  []*Result
	Failures []TraceFailure
}

// RunSet simulates a fresh predictor instance over every trace of a set,
// running up to workers traces concurrently — the evaluation workflow of
// the championships, where a design is scored over hundreds of traces
// (§II). Because MBPlib is a library, the fan-out is plain user-side code:
// each worker owns its predictor and its reader, so no locking touches the
// hot loop. Results are returned in source order. The first error aborts
// the set; use RunSetPolicy to degrade gracefully instead.
func RunSet(sources []TraceSource, newPredictor func() bp.Predictor, cfg Config, workers int) ([]*Result, error) {
	set, err := RunSetPolicy(sources, newPredictor, cfg, workers, Policy{Mode: FailFast})
	if err != nil {
		return nil, err
	}
	return set.Results, nil
}

// RunSetPolicy is RunSet under an explicit failure policy. A panic inside a
// predictor (or reader) is recovered per trace and reported as a
// faults.ErrPredictorPanic failure with the captured stack, so one broken
// design cannot kill a whole sweep. Under FailFast the first failure aborts
// the set and is returned as the error, preserving RunSet's historical
// contract; under SkipFailed the returned error is nil and per-trace
// failures are collected in SetResult.Failures.
func RunSetPolicy(sources []TraceSource, newPredictor func() bp.Predictor, cfg Config, workers int, policy Policy) (*SetResult, error) {
	if newPredictor == nil {
		return nil, ErrNilPredictor
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	results := make([]*Result, len(sources))
	failures := make([]*TraceFailure, len(sources))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], failures[i] = runOne(sources[i], newPredictor, cfg, policy)
			}
		}()
	}
	for i := range sources {
		next <- i
	}
	close(next)
	wg.Wait()
	set := &SetResult{Results: results}
	for i, f := range failures {
		if f == nil {
			continue
		}
		if policy.Mode == FailFast {
			return nil, fmt.Errorf("sim: trace %q: %w", sources[i].Name, f.Err)
		}
		set.Failures = append(set.Failures, *f)
	}
	return set, nil
}

// runOne opens and simulates a single trace under the policy, converting a
// panic anywhere in the unit — Open, the reader, or the predictor — into a
// classified failure. Only the open phase is retried: once decoding has
// started, a failure is a property of the trace bytes or the predictor, and
// the bytes will not improve on a second try.
func runOne(src TraceSource, newPredictor func() bp.Predictor, cfg Config, policy Policy) (result *Result, failure *TraceFailure) {
	start := time.Now()
	attempts := 0
	defer func() {
		if v := recover(); v != nil {
			err := faults.NewPanicError(v, debug.Stack())
			result = nil
			failure = newFailure(src.Name, err, attempts, start)
		}
	}()
	bo := newBackoff(policy, src.Name)
	for {
		attempts++
		r, closer, err := src.Open()
		if err != nil {
			if attempts > policy.Retries || faults.Permanent(err) {
				return nil, newFailure(src.Name, fmt.Errorf("opening: %w", err), attempts, start)
			}
			if d := bo.nextDelay(); d > 0 {
				time.Sleep(d)
			}
			continue
		}
		res, err := func() (*Result, error) {
			if closer != nil {
				defer closer.Close() //mbpvet:ignore droppederr -- read side: a close failure cannot corrupt the already-consumed trace
			}
			cfg.TraceName = src.Name
			return Run(r, newPredictor(), cfg)
		}()
		if err != nil {
			return nil, newFailure(src.Name, err, attempts, start)
		}
		return res, nil
	}
}

func newFailure(trace string, err error, attempts int, start time.Time) *TraceFailure {
	f := &TraceFailure{
		Trace:     trace,
		Class:     faults.Class(err),
		Message:   err.Error(),
		Attempts:  attempts,
		Seconds:   time.Since(start).Seconds(),
		Resumable: errors.Is(err, faults.ErrDrained),
		Err:       err,
	}
	var pe *faults.PanicError
	if errors.As(err, &pe) {
		f.Stack = string(pe.Stack)
	}
	return f
}

// DrainSources wraps a trace set so the legacy sequential path (RunSet,
// RunSetPolicy) observes a graceful drain: once drain closes, traces not
// yet opened fail immediately and in-flight reads stop at the next batch,
// all classified faults.ErrDrained (permanent, so never retried) and marked
// Resumable — the "run them again next time" signal the CLIs turn into the
// drained exit code. A nil drain returns the sources unchanged.
func DrainSources(sources []TraceSource, drain <-chan struct{}) []TraceSource {
	if drain == nil {
		return sources
	}
	out := make([]TraceSource, len(sources))
	for i, src := range sources {
		open := src.Open
		out[i] = TraceSource{Name: src.Name, Digest: src.Digest, Open: func() (bp.Reader, io.Closer, error) {
			select {
			case <-drain:
				return nil, nil, fmt.Errorf("not started: %w", faults.ErrDrained)
			default:
			}
			r, closer, err := open()
			if err != nil {
				return nil, nil, err
			}
			return &drainReader{drain: drain, r: r}, closer, nil
		}}
	}
	return out
}

// drainReader fails reads with faults.ErrDrained once the channel closes.
type drainReader struct {
	drain <-chan struct{}
	r     bp.Reader
}

func (d *drainReader) check() error {
	select {
	case <-d.drain:
		return fmt.Errorf("interrupted: %w", faults.ErrDrained)
	default:
		return nil
	}
}

func (d *drainReader) Read() (bp.Event, error) {
	if err := d.check(); err != nil {
		return bp.Event{}, err
	}
	return d.r.Read()
}

func (d *drainReader) ReadBatch(dst []bp.Event) (int, error) {
	if err := d.check(); err != nil {
		return 0, err
	}
	return bp.ReadBatch(d.r, dst)
}

// SetSummary aggregates a RunSet outcome the way championship scoreboards
// do: totals plus the arithmetic mean MPKI over traces.
type SetSummary struct {
	Traces                 int     `json:"traces"`
	TotalInstructions      uint64  `json:"total_instructions"`
	TotalConditional       uint64  `json:"total_conditional_branches"`
	TotalMispredictions    uint64  `json:"total_mispredictions"`
	MeanMPKI               float64 `json:"mean_mpki"`
	WorstMPKI              float64 `json:"worst_mpki"`
	WorstTrace             string  `json:"worst_trace"`
	AggregateMPKI          float64 `json:"aggregate_mpki"` // over summed counts
	AggregateAccuracy      float64 `json:"aggregate_accuracy"`
	TotalSimulationSeconds float64 `json:"total_simulation_seconds"`
}

// Summarize aggregates a RunSet result list. Nil entries (traces a
// SkipFailed policy could not score) are excluded from every statistic,
// including the trace count and the mean.
func Summarize(results []*Result) SetSummary {
	var s SetSummary
	var mpkiSum float64
	for _, r := range results {
		if r == nil {
			continue
		}
		s.Traces++
		s.TotalInstructions += r.Metadata.SimulationInstr
		s.TotalConditional += r.Metadata.NumConditionalBranches
		s.TotalMispredictions += r.Metrics.Mispredictions
		s.TotalSimulationSeconds += r.Metrics.SimulationTime
		mpkiSum += r.Metrics.MPKI
		if r.Metrics.MPKI > s.WorstMPKI {
			s.WorstMPKI = r.Metrics.MPKI
			s.WorstTrace = r.Metadata.Trace
		}
	}
	if s.Traces > 0 {
		s.MeanMPKI = mpkiSum / float64(s.Traces)
	}
	if s.TotalInstructions > 0 {
		s.AggregateMPKI = float64(s.TotalMispredictions) / (float64(s.TotalInstructions) / 1000)
	}
	if s.TotalConditional > 0 {
		s.AggregateAccuracy = 1 - float64(s.TotalMispredictions)/float64(s.TotalConditional)
	}
	return s
}
