package sim

import (
	"fmt"
	"io"
	"sync"

	"mbplib/internal/bp"
)

// TraceSource lazily opens one trace of a set. Open is called from a worker
// goroutine; the returned Closer (which may be nil) is closed when the
// simulation of that trace finishes.
type TraceSource struct {
	Name string
	Open func() (bp.Reader, io.Closer, error)
}

// RunSet simulates a fresh predictor instance over every trace of a set,
// running up to workers traces concurrently — the evaluation workflow of
// the championships, where a design is scored over hundreds of traces
// (§II). Because MBPlib is a library, the fan-out is plain user-side code:
// each worker owns its predictor and its reader, so no locking touches the
// hot loop. Results are returned in source order. The first error aborts
// the set.
func RunSet(sources []TraceSource, newPredictor func() bp.Predictor, cfg Config, workers int) ([]*Result, error) {
	if newPredictor == nil {
		return nil, ErrNilPredictor
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	results := make([]*Result, len(sources))
	errs := make([]error, len(sources))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = runOne(sources[i], newPredictor, cfg)
			}
		}()
	}
	for i := range sources {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: trace %q: %w", sources[i].Name, err)
		}
	}
	return results, nil
}

func runOne(src TraceSource, newPredictor func() bp.Predictor, cfg Config) (*Result, error) {
	r, closer, err := src.Open()
	if err != nil {
		return nil, err
	}
	if closer != nil {
		defer closer.Close() //mbpvet:ignore droppederr -- read side: a close failure cannot corrupt the already-consumed trace
	}
	cfg.TraceName = src.Name
	return Run(r, newPredictor(), cfg)
}

// SetSummary aggregates a RunSet outcome the way championship scoreboards
// do: totals plus the arithmetic mean MPKI over traces.
type SetSummary struct {
	Traces                 int     `json:"traces"`
	TotalInstructions      uint64  `json:"total_instructions"`
	TotalConditional       uint64  `json:"total_conditional_branches"`
	TotalMispredictions    uint64  `json:"total_mispredictions"`
	MeanMPKI               float64 `json:"mean_mpki"`
	WorstMPKI              float64 `json:"worst_mpki"`
	WorstTrace             string  `json:"worst_trace"`
	AggregateMPKI          float64 `json:"aggregate_mpki"` // over summed counts
	AggregateAccuracy      float64 `json:"aggregate_accuracy"`
	TotalSimulationSeconds float64 `json:"total_simulation_seconds"`
}

// Summarize aggregates a RunSet result list.
func Summarize(results []*Result) SetSummary {
	s := SetSummary{Traces: len(results)}
	var mpkiSum float64
	for _, r := range results {
		if r == nil {
			continue
		}
		s.TotalInstructions += r.Metadata.SimulationInstr
		s.TotalConditional += r.Metadata.NumConditionalBranches
		s.TotalMispredictions += r.Metrics.Mispredictions
		s.TotalSimulationSeconds += r.Metrics.SimulationTime
		mpkiSum += r.Metrics.MPKI
		if r.Metrics.MPKI > s.WorstMPKI {
			s.WorstMPKI = r.Metrics.MPKI
			s.WorstTrace = r.Metadata.Trace
		}
	}
	if len(results) > 0 {
		s.MeanMPKI = mpkiSum / float64(len(results))
	}
	if s.TotalInstructions > 0 {
		s.AggregateMPKI = float64(s.TotalMispredictions) / (float64(s.TotalInstructions) / 1000)
	}
	if s.TotalConditional > 0 {
		s.AggregateAccuracy = 1 - float64(s.TotalMispredictions)/float64(s.TotalConditional)
	}
	return s
}
