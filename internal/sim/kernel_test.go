package sim_test

// Tests for the batch-kernel dispatch path: sim.Run hands full post-warm-up
// batches to predictors implementing bp.BatchPredictor, and nothing about
// that may be visible in the results — against the scalar reference loop
// (RunScalar), against the batched pipeline with the kernel stripped
// (bp.ScalarOnly), under warm-up and limit edge batches, and under parallel
// sweeps at any worker count.

import (
	"bytes"
	"io"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/obs"
	"mbplib/internal/predictors/bimodal"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/predictors/perceptron"
	"mbplib/internal/predictors/tage"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

var kernelPredictors = []struct {
	name string
	mk   func() bp.Predictor
}{
	{"bimodal", func() bp.Predictor { return bimodal.New() }},
	{"gshare", func() bp.Predictor { return gshare.New() }},
	{"perceptron", func() bp.Predictor { return perceptron.New() }},
	{"tage", func() bp.Predictor { return tage.New() }},
}

// TestKernelRunMatchesScalar: for every kernel predictor and a grid of
// warm-up/limit configurations (which force careful edge batches around the
// kernel fast path), the three pipelines — scalar reference, batched with
// the native kernel, batched with the kernel stripped — produce
// byte-identical result JSON.
func TestKernelRunMatchesScalar(t *testing.T) {
	spec := equivSpec(15000)
	configs := map[string]sim.Config{
		"plain":  {TraceName: "kernel-equiv"},
		"warmup": {TraceName: "kernel-equiv", WarmupInstructions: 9000},
		"limit":  {TraceName: "kernel-equiv", SimInstructions: 15000},
		"both":   {TraceName: "kernel-equiv", WarmupInstructions: 4000, SimInstructions: 11000},
	}
	newGen := func() *tracegen.Generator {
		g, err := tracegen.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	for _, kp := range kernelPredictors {
		kp := kp
		t.Run(kp.name, func(t *testing.T) {
			t.Parallel()
			if _, ok := kp.mk().(bp.BatchPredictor); !ok {
				t.Fatalf("%s does not implement bp.BatchPredictor", kp.name)
			}
			for cname, cfg := range configs {
				scalar, err := sim.RunScalar(newGen(), kp.mk(), cfg)
				if err != nil {
					t.Fatalf("%s: RunScalar: %v", cname, err)
				}
				kernel, err := sim.Run(newGen(), kp.mk(), cfg)
				if err != nil {
					t.Fatalf("%s: Run (kernel): %v", cname, err)
				}
				stripped, err := sim.Run(newGen(), bp.ScalarOnly(kp.mk()), cfg)
				if err != nil {
					t.Fatalf("%s: Run (stripped): %v", cname, err)
				}
				want := resultJSON(t, scalar)
				if got := resultJSON(t, kernel); !bytes.Equal(got, want) {
					t.Errorf("%s: kernel result differs from scalar reference\nscalar: %s\nkernel: %s", cname, want, got)
				}
				if got := resultJSON(t, stripped); !bytes.Equal(got, want) {
					t.Errorf("%s: stripped result differs from scalar reference\nscalar:   %s\nstripped: %s", cname, want, got)
				}
			}
		})
	}
}

// TestKernelDispatchCounters: a batched run over a kernel predictor reports
// kernel dispatches and batch-size observations through the obs collector,
// and a stripped predictor reports only scalar dispatches. Results must be
// identical either way — collectors only observe.
func TestKernelDispatchCounters(t *testing.T) {
	spec := equivSpec(15000)
	newGen := func() *tracegen.Generator {
		g, err := tracegen.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	colK := obs.New()
	if _, err := sim.Run(newGen(), gshare.New(), sim.Config{Metrics: colK}); err != nil {
		t.Fatal(err)
	}
	kSnap := colK.Snapshot()
	if kSnap.Counters[obs.CtrDispatchKernel.String()] == 0 {
		t.Errorf("kernel predictor run recorded no %s dispatches", obs.CtrDispatchKernel)
	}
	if kSnap.Histograms[obs.HistBatchEvents.String()].Count == 0 {
		t.Errorf("run recorded no %s observations", obs.HistBatchEvents)
	}

	colS := obs.New()
	if _, err := sim.Run(newGen(), bp.ScalarOnly(gshare.New()), sim.Config{Metrics: colS}); err != nil {
		t.Fatal(err)
	}
	sSnap := colS.Snapshot()
	if n := sSnap.Counters[obs.CtrDispatchKernel.String()]; n != 0 {
		t.Errorf("stripped predictor run recorded %d kernel dispatches, want 0", n)
	}
	if sSnap.Counters[obs.CtrDispatchScalar.String()] == 0 {
		t.Errorf("stripped predictor run recorded no %s dispatches", obs.CtrDispatchScalar)
	}
}

// TestKernelWarmupEdgeUsesScalarPath: with a warm-up boundary inside the
// trace, at least one batch must take the careful scalar path even for a
// kernel predictor — the edge-batch rule — while later full batches take
// the kernel. The dispatch counters make the split observable.
func TestKernelWarmupEdgeUsesScalarPath(t *testing.T) {
	spec := equivSpec(30000)
	g, err := tracegen.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.New()
	if _, err := sim.Run(g, gshare.New(), sim.Config{WarmupInstructions: 20000, Metrics: col}); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if n := snap.Counters[obs.CtrDispatchScalar.String()]; n == 0 {
		t.Errorf("warm-up boundary produced no scalar-path batches")
	}
	if n := snap.Counters[obs.CtrDispatchKernel.String()]; n == 0 {
		t.Errorf("post-warm-up stream produced no kernel-path batches")
	}
}

// TestSweepParallelKernelScalarEquivalence: a parallel sweep over kernel
// predictors is byte-identical to the same sweep with every kernel stripped,
// at every worker count, and a journalled kernel sweep replays verbatim.
func TestSweepParallelKernelScalarEquivalence(t *testing.T) {
	specA, specB := equivSpec(12000), equivSpec(8000)
	specB.Name, specB.Seed = "kernel-equiv-b", 31
	srcs := []sim.TraceSource{
		{Name: "a", Open: func() (bp.Reader, io.Closer, error) {
			g, err := tracegen.New(specA)
			return g, nil, err
		}},
		{Name: "b", Open: func() (bp.Reader, io.Closer, error) {
			g, err := tracegen.New(specB)
			return g, nil, err
		}},
	}
	native := []sim.PredictorSpec{
		{Name: "bimodal", New: func() bp.Predictor { return bimodal.New() }},
		{Name: "gshare", New: func() bp.Predictor { return gshare.New() }},
	}
	stripped := []sim.PredictorSpec{
		{Name: "bimodal", New: func() bp.Predictor { return bp.ScalarOnly(bimodal.New()) }},
		{Name: "gshare", New: func() bp.Predictor { return bp.ScalarOnly(gshare.New()) }},
	}
	cfg := sim.Config{WarmupInstructions: 3000}
	for _, workers := range []int{1, 2, 4} {
		ref, err := sim.SweepParallel(srcs, stripped, cfg, sim.ParallelOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: stripped sweep: %v", workers, err)
		}
		got, err := sim.SweepParallel(srcs, native, cfg, sim.ParallelOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: kernel sweep: %v", workers, err)
		}
		diffSweeps(t, ref, got, native)
	}

	// Journalled kernel sweep: first run simulates through the kernels and
	// journals every cell; the rerun replays from the journal without
	// simulating. Both must match the stripped reference byte for byte.
	ref, err := sim.SweepParallel(srcs, stripped, cfg, sim.ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatalf("journal reference sweep: %v", err)
	}
	dir := t.TempDir()
	for pass := 0; pass < 2; pass++ {
		jnl := openJournal(t, dir)
		got, err := sim.SweepParallel(srcs, native, cfg, sim.ParallelOptions{
			Workers: 2, Journal: jnl, CheckpointEvery: 4096,
		})
		if err != nil {
			t.Fatalf("journalled kernel sweep, pass %d: %v", pass, err)
		}
		diffSweeps(t, ref, got, native)
		if err := jnl.Close(); err != nil {
			t.Fatalf("journal close, pass %d: %v", pass, err)
		}
	}
}
