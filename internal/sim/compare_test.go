package sim

import (
	"encoding/json"
	"testing"

	"mbplib/internal/bp"
)

func TestCompareBasics(t *testing.T) {
	var evs []bp.Event
	// Branch 0xA always taken, branch 0xB never taken.
	for i := 0; i < 100; i++ {
		evs = append(evs, condEvent(0xA, true, 4))
		evs = append(evs, condEvent(0xB, false, 4))
	}
	pTaken := &staticPredictor{taken: true}
	pNot := &staticPredictor{taken: false}
	res, err := Compare(&sliceReader{evs: evs}, pTaken, pNot, Config{TraceName: "cmp"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics0.Mispredictions != 100 || res.Metrics1.Mispredictions != 100 {
		t.Errorf("misses = %d/%d, want 100/100", res.Metrics0.Mispredictions, res.Metrics1.Mispredictions)
	}
	if res.Metrics0.Accuracy != 0.5 || res.Metrics1.Accuracy != 0.5 {
		t.Errorf("accuracy = %v/%v", res.Metrics0.Accuracy, res.Metrics1.Accuracy)
	}
	if res.Metadata.NumConditionalBranches != 200 {
		t.Errorf("conditional branches = %d", res.Metadata.NumConditionalBranches)
	}
	// Both predictors see every branch: train 200, track 200 each.
	if len(pTaken.trains) != 200 || len(pNot.trains) != 200 {
		t.Errorf("train counts %d/%d", len(pTaken.trains), len(pNot.trains))
	}
	// most_failed: 0xA is better under p0 (diff +100 for p1), 0xB better
	// under p1 (diff -100). Both listed.
	if len(res.MostFailed) != 2 {
		t.Fatalf("most_failed has %d entries, want 2", len(res.MostFailed))
	}
	for _, mf := range res.MostFailed {
		switch mf.IP {
		case 0xA:
			if mf.MPKIDiff <= 0 {
				t.Errorf("branch 0xA diff = %v, want positive (worse under predictor 1)", mf.MPKIDiff)
			}
		case 0xB:
			if mf.MPKIDiff >= 0 {
				t.Errorf("branch 0xB diff = %v, want negative", mf.MPKIDiff)
			}
		default:
			t.Errorf("unexpected branch %#x in most_failed", mf.IP)
		}
	}
}

func TestCompareEqualPredictorsNoDiffs(t *testing.T) {
	var evs []bp.Event
	for i := 0; i < 50; i++ {
		evs = append(evs, condEvent(0xA, i%2 == 0, 1))
	}
	res, err := Compare(&sliceReader{evs: evs}, &staticPredictor{taken: true}, &staticPredictor{taken: true}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics0.Mispredictions != res.Metrics1.Mispredictions {
		t.Errorf("identical predictors diverged")
	}
	if len(res.MostFailed) != 0 {
		t.Errorf("identical predictors produced diffs: %+v", res.MostFailed)
	}
}

func TestCompareNilPredictor(t *testing.T) {
	if _, err := Compare(&sliceReader{}, nil, &staticPredictor{}, Config{}); err != ErrNilPredictor {
		t.Errorf("err = %v, want ErrNilPredictor", err)
	}
}

func TestCompareLimitAndWarmup(t *testing.T) {
	var evs []bp.Event
	for i := 0; i < 100; i++ {
		evs = append(evs, condEvent(uint64(i%10+1), false, 9))
	}
	res, err := Compare(&sliceReader{evs: evs}, &staticPredictor{taken: true}, &staticPredictor{taken: false},
		Config{WarmupInstructions: 100, SimInstructions: 400, MostFailedLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metadata.SimulationInstr != 400 {
		t.Errorf("simulation instructions = %d, want 400", res.Metadata.SimulationInstr)
	}
	if res.Metadata.ExhaustedTrace {
		t.Errorf("exhausted_trace = true for limited run")
	}
	if res.Metrics0.Mispredictions != 40 || res.Metrics1.Mispredictions != 0 {
		t.Errorf("misses = %d/%d, want 40/0", res.Metrics0.Mispredictions, res.Metrics1.Mispredictions)
	}
	if len(res.MostFailed) > 2 {
		t.Errorf("most_failed has %d entries, limit 2", len(res.MostFailed))
	}
}

func TestCompareJSON(t *testing.T) {
	evs := []bp.Event{condEvent(1, true, 0)}
	res, err := Compare(&sliceReader{evs: evs},
		&describedPredictor{staticPredictor{taken: true}},
		&describedPredictor{staticPredictor{taken: false}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	meta := generic["metadata"].(map[string]any)
	if meta["predictor_0"] == nil || meta["predictor_1"] == nil {
		t.Errorf("component descriptions missing from metadata")
	}
}
