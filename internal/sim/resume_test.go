package sim_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/sim"
	"mbplib/internal/sim/journal"
)

func openJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	j, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("journal.Open(%s): %v", dir, err)
	}
	return j
}

// ckptSpy wraps gshare with a prediction counter and an optional trigger
// that fires once after a given number of predictions — the deterministic
// way to close a drain channel mid-cell. Checkpoint, Restore and Metadata
// promote from the embedded predictor, so the spy is a bp.Checkpointer and
// its results are indistinguishable from plain gshare. The embedding would
// also promote gshare's PredictBatch/TrainBatch kernel, whose dispatch
// bypasses the overridden Predict and starves the counter — exactly the
// wrapper hazard bp.ScalarOnly strips, so spySpec wraps with it.
type ckptSpy struct {
	*gshare.Predictor
	n       *atomic.Uint64
	after   uint64
	trigger func()
}

func (s *ckptSpy) Predict(ip uint64) bool {
	if n := s.n.Add(1); s.trigger != nil && n == s.after {
		s.trigger()
	}
	return s.Predictor.Predict(ip)
}

func spySpec(n *atomic.Uint64, after uint64, trigger func()) sim.PredictorSpec {
	return sim.PredictorSpec{Name: "gshare-spy", New: func() bp.Predictor {
		return bp.ScalarOnly(&ckptSpy{Predictor: gshare.New(), n: n, after: after, trigger: trigger})
	}}
}

// TestSweepParallelJournalReplay: a journalled sweep re-run against the same
// journal replays every cell — no predictor is ever constructed — and the
// replayed sets marshal byte-identically to the live ones, wall-clock times
// included.
func TestSweepParallelJournalReplay(t *testing.T) {
	srcs := genSources(t, 4000)
	cfg := sim.Config{WarmupInstructions: 10_000}
	dir := t.TempDir()

	jnl := openJournal(t, dir)
	first, err := sim.SweepParallel(srcs, equivPredictors, cfg, sim.ParallelOptions{Workers: 4, Journal: jnl})
	if err != nil {
		t.Fatalf("journalled sweep: %v", err)
	}
	if got, want := jnl.CellCount(), len(srcs)*len(equivPredictors); got != want {
		t.Fatalf("journal holds %d cells, want %d", got, want)
	}
	if err := jnl.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	var constructed atomic.Uint64
	counting := make([]sim.PredictorSpec, len(equivPredictors))
	for i, ps := range equivPredictors {
		inner := ps.New
		counting[i] = sim.PredictorSpec{Name: ps.Name, New: func() bp.Predictor {
			constructed.Add(1)
			return inner()
		}}
	}
	jnl2 := openJournal(t, dir)
	defer jnl2.Close()
	second, err := sim.SweepParallel(srcs, counting, cfg, sim.ParallelOptions{Workers: 4, Journal: jnl2})
	if err != nil {
		t.Fatalf("replay sweep: %v", err)
	}
	if n := constructed.Load(); n != 0 {
		t.Errorf("replay constructed %d predictors, want 0 (every cell on record)", n)
	}
	fj, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fj, sj) {
		t.Errorf("replayed sweep is not byte-identical to the live one\nlive:   %s\nreplay: %s", fj, sj)
	}
}

// TestSweepParallelCheckpointDrainResume is the end-to-end resumable-cell
// law: drain a sweep mid-cell, verify the in-flight cell checkpointed and
// everything unfinished surfaced as resumable drained failures, then resume
// against the same journal and require (a) results identical to an
// uninterrupted baseline and (b) strictly fewer predictions than a from-zero
// run — proof the checkpointed prefix was skipped, not re-simulated.
func TestSweepParallelCheckpointDrainResume(t *testing.T) {
	specs := suiteSpecs(t, 30_000)[:2]
	srcs := []sim.TraceSource{genSource(specs[0]), genSource(specs[1])}
	evs := generate(t, specs[0])
	cond := 0
	for _, ev := range evs {
		if ev.Branch.IsConditional() {
			cond++
		}
	}
	// The drain trigger must fire beyond the first checkpoint interval and
	// well before the trace ends, with room for multiple batches.
	if len(evs) <= 3*4096 || cond <= 6000 {
		t.Fatalf("trace %s too small to drain mid-flight: %d events, %d conditional", specs[0].Name, len(evs), cond)
	}
	cfg := sim.Config{WarmupInstructions: 5000}

	var baseN atomic.Uint64
	base := []sim.PredictorSpec{spySpec(&baseN, 0, nil)}
	baseline, err := sim.SweepParallel(srcs, base, cfg, sim.ParallelOptions{Workers: 1})
	if err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}

	dir := t.TempDir()
	jnl := openJournal(t, dir)
	drain := make(chan struct{})
	var once sync.Once
	var cutN atomic.Uint64
	cut := []sim.PredictorSpec{spySpec(&cutN, 6000, func() { once.Do(func() { close(drain) }) })}
	cutSets, err := sim.SweepParallel(srcs, cut, cfg, sim.ParallelOptions{
		Workers: 1, Journal: jnl, CheckpointEvery: 4096, Drain: drain,
	})
	if err != nil {
		t.Fatalf("drained sweep: %v (drained failures must not error the sweep)", err)
	}
	fails := cutSets[0].Failures
	if len(fails) != len(srcs) {
		t.Fatalf("drained sweep: %d failures, want %d (every unfinished cell): %+v", len(fails), len(srcs), fails)
	}
	for _, f := range fails {
		if f.Class != "drained" || !f.Resumable || !errors.Is(f.Err, faults.ErrDrained) {
			t.Errorf("drained cell %s: class=%q resumable=%v err=%v, want a resumable drained failure", f.Trace, f.Class, f.Resumable, f.Err)
		}
	}
	if n := jnl.CellCount(); n != 0 {
		t.Errorf("journal holds %d final cells after a full drain, want 0 (drained cells must re-run)", n)
	}
	key := sim.CellKey(srcs[0], "gshare-spy", cfg)
	ck, ok := jnl.Checkpoint(key)
	if !ok || ck.Events < 4096 {
		t.Fatalf("no usable checkpoint for the in-flight cell: ok=%v events=%d", ok, ck.Events)
	}
	if err := jnl.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	jnl2 := openJournal(t, dir)
	var resumeN atomic.Uint64
	resume := []sim.PredictorSpec{spySpec(&resumeN, 0, nil)}
	resumed, err := sim.SweepParallel(srcs, resume, cfg, sim.ParallelOptions{
		Workers: 1, Journal: jnl2, CheckpointEvery: 4096,
	})
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	// Marshal before diffSweeps: resultJSON zeroes wall-clock times in
	// place, and the replay comparison below wants the live values.
	rj, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	diffSweeps(t, baseline, resumed, base)
	if len(resumed[0].Failures) != 0 {
		t.Errorf("resumed sweep still has failures: %+v", resumed[0].Failures)
	}
	if resumeN.Load() == 0 || resumeN.Load() >= baseN.Load() {
		t.Errorf("resume made %d predictions vs %d uninterrupted — the checkpointed prefix was not skipped", resumeN.Load(), baseN.Load())
	}
	if got, want := jnl2.CellCount(), len(srcs); got != want {
		t.Errorf("journal holds %d final cells after resume, want %d", got, want)
	}
	if err := jnl2.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	// Third run: everything is on record, so nothing simulates and the
	// replay marshals byte-identically to the resumed run.
	jnl3 := openJournal(t, dir)
	defer jnl3.Close()
	var replayN atomic.Uint64
	replaySpecs := []sim.PredictorSpec{spySpec(&replayN, 0, nil)}
	replayed, err := sim.SweepParallel(srcs, replaySpecs, cfg, sim.ParallelOptions{Workers: 1, Journal: jnl3})
	if err != nil {
		t.Fatalf("replay sweep: %v", err)
	}
	if n := replayN.Load(); n != 0 {
		t.Errorf("replay made %d predictions, want 0", n)
	}
	pj, err := json.Marshal(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rj, pj) {
		t.Errorf("replay is not byte-identical to the resumed run\nresumed: %s\nreplay:  %s", rj, pj)
	}
}

// TestSweepParallelCellTimeout: an expired per-cell deadline classifies as a
// permanent deadline fault, is journalled as final, and replays as the same
// verdict without re-running the cell.
func TestSweepParallelCellTimeout(t *testing.T) {
	srcs := genSources(t, 30_000)[:1]
	dir := t.TempDir()
	jnl := openJournal(t, dir)
	preds := []sim.PredictorSpec{{Name: "taken", New: func() bp.Predictor { return takenPredictor{} }}}
	sets, err := sim.SweepParallel(srcs, preds, sim.Config{}, sim.ParallelOptions{
		Workers: 1, Policy: sim.Policy{Mode: sim.SkipFailed}, Journal: jnl, CellTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(sets[0].Failures) != 1 {
		t.Fatalf("failures: %+v, want exactly one", sets[0].Failures)
	}
	f := sets[0].Failures[0]
	if f.Class != "deadline" || f.Resumable || !errors.Is(f.Err, faults.ErrDeadline) {
		t.Fatalf("cell timeout: class=%q resumable=%v err=%v, want a final deadline failure", f.Class, f.Resumable, f.Err)
	}
	if n := jnl.CellCount(); n != 1 {
		t.Fatalf("journal holds %d cells, want 1 (deadline verdicts are final)", n)
	}
	if err := jnl.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	// Resume without a timeout: the journalled verdict replays; the cell
	// must not run again just because the budget was lifted.
	jnl2 := openJournal(t, dir)
	defer jnl2.Close()
	var constructed atomic.Uint64
	counting := []sim.PredictorSpec{{Name: "taken", New: func() bp.Predictor {
		constructed.Add(1)
		return takenPredictor{}
	}}}
	sets2, err := sim.SweepParallel(srcs, counting, sim.Config{}, sim.ParallelOptions{
		Workers: 1, Policy: sim.Policy{Mode: sim.SkipFailed}, Journal: jnl2,
	})
	if err != nil {
		t.Fatalf("replay sweep: %v", err)
	}
	if n := constructed.Load(); n != 0 {
		t.Errorf("replay constructed %d predictors, want 0", n)
	}
	f2 := sets2[0].Failures[0]
	if f2.Class != "deadline" || !errors.Is(f2.Err, faults.ErrDeadline) {
		t.Errorf("replayed failure: class=%q err=%v, want the deadline verdict back", f2.Class, f2.Err)
	}
}

// TestDrainSources covers the sequential (-j 1) drain path: a closed drain
// fails every source as a resumable drained fault without opening it, and an
// open drain is a no-op wrapper.
func TestDrainSources(t *testing.T) {
	srcs := genSources(t, 2000)
	newP := func() bp.Predictor { return takenPredictor{} }
	cfg := sim.Config{}
	plain, err := sim.RunSetPolicy(srcs, newP, cfg, 1, sim.Policy{Mode: sim.SkipFailed})
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}

	closed := make(chan struct{})
	close(closed)
	set, err := sim.RunSetPolicy(sim.DrainSources(srcs, closed), newP, cfg, 1, sim.Policy{Mode: sim.SkipFailed})
	if err != nil {
		t.Fatalf("drained run: %v", err)
	}
	if len(set.Failures) != len(srcs) {
		t.Fatalf("drained run: %d failures, want %d", len(set.Failures), len(srcs))
	}
	for _, f := range set.Failures {
		if f.Class != "drained" || !f.Resumable || f.Attempts != 1 {
			t.Errorf("drained source %s: class=%q resumable=%v attempts=%d, want one permanent drained attempt", f.Trace, f.Class, f.Resumable, f.Attempts)
		}
	}
	for i, r := range set.Results {
		if r != nil {
			t.Errorf("drained run simulated %s", srcs[i].Name)
		}
	}

	open := make(chan struct{})
	same, err := sim.RunSetPolicy(sim.DrainSources(srcs, open), newP, cfg, 1, sim.Policy{Mode: sim.SkipFailed})
	if err != nil {
		t.Fatalf("open-drain run: %v", err)
	}
	if !bytes.Equal(setJSON(t, plain), setJSON(t, same)) {
		t.Error("an open drain changed the results")
	}
	if got := sim.DrainSources(srcs, nil); len(got) != len(srcs) {
		t.Errorf("nil drain: %d sources, want %d unchanged", len(got), len(srcs))
	}
}

// TestCellKey pins the journal identity: digest preferred over name, and
// every window parameter participates.
func TestCellKey(t *testing.T) {
	src := sim.TraceSource{Name: "t0"}
	cfg := sim.Config{WarmupInstructions: 5, SimInstructions: 9}
	if got, want := sim.CellKey(src, "gshare:h=12", cfg), "t0|gshare:h=12|w=5|s=9"; got != want {
		t.Errorf("CellKey = %q, want %q", got, want)
	}
	src.Digest = "abc123"
	if got, want := sim.CellKey(src, "gshare:h=12", cfg), "abc123|gshare:h=12|w=5|s=9"; got != want {
		t.Errorf("CellKey with digest = %q, want %q", got, want)
	}
	other := sim.CellKey(src, "gshare:h=12", sim.Config{WarmupInstructions: 5})
	if other == sim.CellKey(src, "gshare:h=12", cfg) {
		t.Error("CellKey ignores the simulation window")
	}
}
