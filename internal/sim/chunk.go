package sim

import (
	"context"
	"fmt"
	"io"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/sim/tracecache"
)

// ChunkedTrace is a trace that supports chunk-granular random access —
// independent segments that decode in any order (see internal/chunked for
// the MLZS-backed implementation). The scheduler uses it to cache and evict
// one chunk at a time under the shared byte budget, so a single huge trace
// no longer competes for the budget whole.
type ChunkedTrace interface {
	// NumChunks returns the number of chunks.
	NumChunks() int
	// TotalBranches returns the branch count the trace header declares.
	TotalBranches() uint64
	// DecodeChunk decodes chunk i, returning its events in trace order.
	// On a decode failure the events preceding the fault are still
	// returned. Must be safe for concurrent calls with distinct i.
	DecodeChunk(i int) ([]bp.Event, error)
	// Close releases the trace. In-flight DecodeChunk calls must have
	// completed.
	Close() error
}

// chunkStream adapts a ChunkedTrace to the batchStream contract, pulling
// chunks through the shared cache one at a time: each chunk is pinned while
// its batches are consumed and released before the next chunk loads, so a
// cell's cache footprint is one chunk, not one trace. Chunk-level decode
// errors surface after the chunk's preceding events, and end-of-trace
// follows the exact semantics of the streaming SBBT reader: a branch count
// short of the header's promise is a truncation fault, surplus packets are
// delivered.
type chunkStream struct {
	ctx   context.Context
	cache *tracecache.Cache
	ct    ChunkedTrace
	name  string

	chunk int               // next chunk to load
	read  uint64            // events delivered so far
	entry *tracecache.Entry // pinned entry of the current chunk (nil between chunks)
	bi    int               // next batch of the current chunk
	cur   [][]bp.Event      // batches of the current chunk
	end   error             // the current chunk's terminal error (io.EOF when clean)
}

func (s *chunkStream) next() ([]bp.Event, error) {
	for {
		for s.bi < len(s.cur) {
			b := s.cur[s.bi]
			s.bi++
			if len(b) > 0 {
				s.read += uint64(len(b))
				return b, nil
			}
		}
		if s.end != nil {
			if s.end != io.EOF {
				err := s.end
				s.release()
				return nil, err
			}
			s.release() // clean chunk: unpin before loading the next
		}
		if s.chunk >= s.ct.NumChunks() {
			if s.read < s.ct.TotalBranches() {
				return nil, fmt.Errorf("sbbt: trace ends after %d of %d branches: %w", s.read, s.ct.TotalBranches(), bp.ErrTruncated)
			}
			return nil, io.EOF
		}
		chunk := s.chunk
		s.chunk++
		entry, err := s.cache.AcquireChunk(s.ctx, s.name, chunk, func() ([]bp.Event, error) {
			return s.ct.DecodeChunk(chunk)
		})
		if err != nil {
			return nil, err // ctx cancelled while waiting on another loader
		}
		if entry.TooBig() {
			// The chunk cannot be pinned (budget contention): decode it
			// directly, uncached, with the same error-after-events contract.
			s.cache.Release(entry)
			evs, derr := s.ct.DecodeChunk(chunk)
			s.cur, s.bi = splitBatches(evs), 0
			s.end = derr
			if s.end == nil {
				s.end = io.EOF
			}
			continue
		}
		s.entry = entry
		s.cur, s.bi = entry.Batches(), 0
		s.end = entry.Err()
	}
}

// release unpins the in-flight chunk entry; runPair defers it so a cell
// that stops early (instruction limit, drain, deadline) cannot leak a pin.
func (s *chunkStream) release() {
	if s.entry != nil {
		s.cache.Release(s.entry)
		s.entry = nil
	}
	s.cur, s.bi, s.end = nil, 0, nil
}

// splitBatches cuts a chunk's events to the simulator's batch granularity,
// the shape cache entries and the streaming prefetcher both use.
func splitBatches(evs []bp.Event) [][]bp.Event {
	if len(evs) == 0 {
		return nil
	}
	out := make([][]bp.Event, 0, (len(evs)+chunkBatchEvents-1)/chunkBatchEvents)
	for off := 0; off < len(evs); off += chunkBatchEvents {
		end := off + chunkBatchEvents
		if end > len(evs) {
			end = len(evs)
		}
		out = append(out, evs[off:end])
	}
	return out
}

// chunkBatchEvents matches tracecache's batch granularity.
const chunkBatchEvents = 4096

// runChunked simulates one (trace, predictor) pair through the
// chunk-granular cache path. ok is false when the trace is not eligible for
// chunked access (not an indexed MLZS container, wrong alignment, damaged
// trailer) — the caller falls back to the ordinary streaming path, which
// handles and reports all of those.
func runChunked(ctx context.Context, cache *tracecache.Cache, src TraceSource, pred PredictorSpec, cfg Config, opts ParallelOptions, jc *cellJournal, start time.Time) (*Result, *TraceFailure, bool) {
	ct, err := src.OpenChunked()
	if err != nil {
		return nil, nil, false
	}
	defer ct.Close() //mbpvet:ignore droppederr -- read side: a close failure cannot corrupt the already-consumed trace
	cfg.TraceName = src.Name
	cs := &chunkStream{ctx: ctx, cache: cache, ct: ct, name: src.Name}
	defer cs.release()
	res, rerr := runCell(ctx, opts.Drain, cs, pred.New, cfg, jc)
	if rerr != nil {
		return nil, newFailure(src.Name, mapDeadline(rerr), 1, start), true
	}
	return res, nil, true
}
