package sim

import (
	"runtime/debug"
	"sync"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
	"mbplib/internal/obs"
)

// batchEvents is the number of events per prefetched batch. At 32 bytes per
// event a batch is 128 KiB — large enough to amortise the channel handoff
// and the batch-boundary checks over thousands of events, small enough to
// stay cache-resident and to keep at most a few hundred KiB in flight.
const batchEvents = 4096

// batchSizeFor picks the prefetch batch size for a reader: traces known
// (via bp.Sizer) to be smaller than one standard batch get right-sized
// buffers instead of two mostly-unused 128 KiB slices.
func batchSizeFor(r bp.Reader) int {
	if s, ok := r.(bp.Sizer); ok {
		if n := s.TotalBranches(); n > 0 && n < batchEvents {
			return int(n)
		}
	}
	return batchEvents
}

// batch is one unit of prefetched work: the decoded events plus the error,
// if any, that ended the batch ("error after n" — events is valid even when
// err is non-nil, including io.EOF).
type batch struct {
	events []bp.Event
	err    error
}

// prefetcher decodes ahead of the simulation loop: a single producer
// goroutine owns the reader and double-buffers batches — including any
// decompression the reader performs underneath — while the consumer
// simulates the previous batch.
//
// Lifecycle rules (see DESIGN.md):
//
//   - The producer goroutine is the only one touching the reader after
//     startPrefetch returns.
//   - shutdown blocks until the producer has stopped touching the reader,
//     so the caller may close the underlying file as soon as Run returns.
//   - The producer stops at the first error (errors are sticky per the
//     bp.BatchReader contract) or when shutdown is requested.
//   - A panic inside the reader is recovered in the producer and surfaced
//     as a *faults.PanicError batch error, keeping the process alive and
//     the fault classifiable (faults.Class reports "panic"), exactly as a
//     predictor panic would be under RunSetPolicy.
type prefetcher struct {
	filled  chan batch      // producer -> consumer, decoded batches
	free    chan []bp.Event // consumer -> producer, recycled buffers
	done    chan struct{}   // closed to request producer shutdown
	stopped chan struct{}   // closed by the producer on exit
	once    sync.Once       // guards close(done)
	col     *obs.Collector  // nil when metrics are disabled
}

// startPrefetch launches the producer goroutine reading from r in batches
// of size events each. Ownership of r passes to the prefetcher until
// shutdown returns. col may be nil (metrics disabled).
func startPrefetch(r bp.Reader, size int, col *obs.Collector) *prefetcher {
	pf := &prefetcher{
		filled:  make(chan batch, 1),
		free:    make(chan []bp.Event, 2),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
		col:     col,
	}
	// Two buffers: one being consumed, one being filled. With filled
	// buffered to depth 1, the producer can stay one full batch ahead.
	pf.free <- make([]bp.Event, size)
	pf.free <- make([]bp.Event, size)
	go pf.produce(r)
	return pf
}

func (pf *prefetcher) produce(r bp.Reader) {
	defer close(pf.stopped)
	col := pf.col
	for {
		var buf []bp.Event
		tStall := col.Now()
		select {
		case <-pf.done:
			return
		case buf = <-pf.free:
		}
		tRead := col.Now()
		col.Stage(obs.StageProduceStall).Add(tRead.Sub(tStall))
		n, err := readBatchSafe(r, buf[:cap(buf)])
		readDur := col.Now().Sub(tRead)
		col.Stage(obs.StageRead).Add(readDur)
		col.Hist(obs.HistBatchReadNs).ObserveDuration(readDur)
		col.Ctr(obs.CtrBatches).Add(1)
		select {
		case <-pf.done:
			return
		case pf.filled <- batch{events: buf[:n], err: err}:
		}
		if err != nil {
			// Errors are sticky; further reads would return (0, err)
			// forever. Close filled so the consumer sees end-of-stream
			// after draining this batch.
			close(pf.filled)
			return
		}
	}
}

// readBatchSafe reads one batch, converting a reader panic into a typed
// error so that a corrupt-input crash in a decoder takes down only this
// simulation, not the process — the same containment RunSetPolicy applies
// to predictor panics.
func readBatchSafe(r bp.Reader, dst []bp.Event) (n int, err error) {
	defer func() {
		if v := recover(); v != nil {
			n = 0
			err = faults.NewPanicError(v, debug.Stack())
		}
	}()
	return bp.ReadBatch(r, dst)
}

// next returns the next prefetched batch. ok is false once the producer has
// stopped and every pending batch has been consumed.
func (pf *prefetcher) next() (batch, bool) {
	b, ok := <-pf.filled
	return b, ok
}

// recycle hands a consumed batch buffer back to the producer. Callers must
// not touch the slice afterwards.
func (pf *prefetcher) recycle(buf []bp.Event) {
	select {
	case pf.free <- buf[:cap(buf)]:
	default:
		// Producer already stopped and both buffers are back: drop it.
	}
}

// shutdown stops the producer and blocks until it no longer touches the
// reader. Safe to call multiple times; Run defers it so that early returns
// (decode error, instruction limit) cannot leak the goroutine or race the
// caller's file close.
func (pf *prefetcher) shutdown() {
	pf.once.Do(func() { close(pf.done) })
	// Drain filled so a producer blocked on delivery can proceed, until the
	// producer signals it has exited (and thus no longer touches the
	// reader). Discarded batches need no recycling — the producer is gone.
	for {
		select {
		case <-pf.filled:
		case <-pf.stopped:
			return
		}
	}
}
