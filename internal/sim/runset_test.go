package sim

import (
	"errors"
	"io"
	"sync/atomic"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/tracegen"
)

func specSource(spec tracegen.Spec) TraceSource {
	return TraceSource{Name: spec.Name, Open: func() (bp.Reader, io.Closer, error) {
		g, err := tracegen.New(spec)
		return g, nil, err
	}}
}

func suiteSources(t *testing.T, n uint64) []TraceSource {
	t.Helper()
	specs, err := tracegen.Suite("cbp5-train", n)
	if err != nil {
		t.Fatal(err)
	}
	var srcs []TraceSource
	for _, s := range specs {
		srcs = append(srcs, specSource(s))
	}
	return srcs
}

func TestRunSetMatchesSequentialRuns(t *testing.T) {
	srcs := suiteSources(t, 3000)
	newPred := func() bp.Predictor { return &staticPredictor{taken: true} }
	parallel, err := RunSet(srcs, newPred, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(srcs) {
		t.Fatalf("got %d results", len(parallel))
	}
	for i, src := range srcs {
		r, closer, err := src.Open()
		if err != nil {
			t.Fatal(err)
		}
		if closer != nil {
			closer.Close()
		}
		seq, err := Run(r, newPred(), Config{TraceName: src.Name})
		if err != nil {
			t.Fatal(err)
		}
		if parallel[i].Metrics.Mispredictions != seq.Metrics.Mispredictions {
			t.Errorf("trace %s: parallel %d vs sequential %d mispredictions",
				src.Name, parallel[i].Metrics.Mispredictions, seq.Metrics.Mispredictions)
		}
		if parallel[i].Metadata.Trace != src.Name {
			t.Errorf("result %d labeled %q", i, parallel[i].Metadata.Trace)
		}
	}
}

func TestRunSetPropagatesError(t *testing.T) {
	srcs := suiteSources(t, 2000)
	srcs[3] = TraceSource{Name: "broken", Open: func() (bp.Reader, io.Closer, error) {
		return nil, nil, errors.New("boom")
	}}
	if _, err := RunSet(srcs, func() bp.Predictor { return &staticPredictor{} }, Config{}, 3); err == nil {
		t.Errorf("error not propagated")
	}
}

func TestRunSetClosesSources(t *testing.T) {
	var closed atomic.Int32
	srcs := suiteSources(t, 1000)
	for i := range srcs {
		open := srcs[i].Open
		srcs[i].Open = func() (bp.Reader, io.Closer, error) {
			r, _, err := open()
			return r, closerFunc(func() error { closed.Add(1); return nil }), err
		}
	}
	if _, err := RunSet(srcs, func() bp.Predictor { return &staticPredictor{} }, Config{}, 2); err != nil {
		t.Fatal(err)
	}
	if int(closed.Load()) != len(srcs) {
		t.Errorf("closed %d of %d sources", closed.Load(), len(srcs))
	}
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

func TestRunSetNilPredictorFactory(t *testing.T) {
	if _, err := RunSet(nil, nil, Config{}, 1); err != ErrNilPredictor {
		t.Errorf("err = %v", err)
	}
}

func TestSummarize(t *testing.T) {
	srcs := suiteSources(t, 3000)
	results, err := RunSet(srcs, func() bp.Predictor { return &staticPredictor{taken: true} }, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(results)
	if s.Traces != len(srcs) {
		t.Errorf("traces = %d", s.Traces)
	}
	var wantInstr, wantMiss uint64
	for _, r := range results {
		wantInstr += r.Metadata.SimulationInstr
		wantMiss += r.Metrics.Mispredictions
	}
	if s.TotalInstructions != wantInstr || s.TotalMispredictions != wantMiss {
		t.Errorf("totals %d/%d, want %d/%d", s.TotalInstructions, s.TotalMispredictions, wantInstr, wantMiss)
	}
	if s.AggregateMPKI <= 0 || s.MeanMPKI <= 0 {
		t.Errorf("MPKIs not computed: %+v", s)
	}
	if s.WorstTrace == "" || s.WorstMPKI <= 0 {
		t.Errorf("worst trace not identified: %+v", s)
	}
	if s.AggregateAccuracy <= 0 || s.AggregateAccuracy >= 1 {
		t.Errorf("aggregate accuracy = %v", s.AggregateAccuracy)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Traces != 0 || s.MeanMPKI != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}
