// Batched-versus-scalar equivalence: for every reader implementation and a
// grid of warm-up and limit configurations, the batched pipeline (Run) must
// produce byte-identical result JSON to the scalar reference loop
// (RunScalar) — and must surface the same typed error class when the trace
// is corrupt, truncated or panics mid-decode. External test package: the
// cbp5 reader is part of the matrix, and cbp5's own tests import sim.
package sim_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/bt9"
	"mbplib/internal/cbp5"
	"mbplib/internal/faults"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

func equivSpec(branches uint64) tracegen.Spec {
	return tracegen.Spec{
		Name: "equiv", Seed: 99, Branches: branches,
		Kernels: []tracegen.KernelSpec{
			{Kind: tracegen.Biased}, {Kind: tracegen.Loop},
			{Kind: tracegen.Correlated}, {Kind: tracegen.CallRet},
			{Kind: tracegen.Indirect},
		},
	}
}

func generate(t *testing.T, spec tracegen.Spec) []bp.Event {
	t.Helper()
	g, err := tracegen.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	var evs []bp.Event
	for {
		ev, err := g.Read()
		if err == io.EOF {
			return evs
		}
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
}

func encodeSBBT(t *testing.T, evs []bp.Event, checksummed bool) []byte {
	t.Helper()
	var instrs uint64
	for _, ev := range evs {
		instrs += ev.InstrsSinceLastBranch + 1
	}
	var buf bytes.Buffer
	var w *sbbt.Writer
	var err error
	if checksummed {
		w, err = sbbt.NewChecksumWriter(&buf, instrs, uint64(len(evs)))
	} else {
		w, err = sbbt.NewWriter(&buf, instrs, uint64(len(evs)))
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeBT9(t *testing.T, evs []bp.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bt9.NewWriter(&buf)
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// scalarOnly hides a reader's ReadBatch so the run exercises the bp.ReadBatch
// adapter fallback.
type scalarOnly struct{ r bp.Reader }

func (s scalarOnly) Read() (bp.Event, error) { return s.r.Read() }

// equivReaders enumerates every reader implementation over the same event
// stream. Each factory returns a fresh reader positioned at the first event.
func equivReaders(t *testing.T, spec tracegen.Spec) map[string]func() bp.Reader {
	t.Helper()
	evs := generate(t, spec)
	sbbtData := encodeSBBT(t, evs, false)
	sbbtCRC := encodeSBBT(t, evs, true)
	bt9Data := encodeBT9(t, evs)
	newSBBT := func(data []byte) bp.Reader {
		r, err := sbbt.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	return map[string]func() bp.Reader{
		"sbbt":     func() bp.Reader { return newSBBT(sbbtData) },
		"sbbt-crc": func() bp.Reader { return newSBBT(sbbtCRC) },
		"bt9": func() bp.Reader {
			r, err := bt9.NewReader(bytes.NewReader(bt9Data))
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
		"cbp5": func() bp.Reader {
			r, err := cbp5.NewReader(bytes.NewReader(bt9Data))
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
		"tracegen": func() bp.Reader {
			g, err := tracegen.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"scalar-adapter": func() bp.Reader { return scalarOnly{newSBBT(sbbtData)} },
	}
}

// resultJSON marshals a result with the one nondeterministic field zeroed.
func resultJSON(t *testing.T, res *sim.Result) []byte {
	t.Helper()
	res.Metrics.SimulationTime = 0
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestBatchedRunMatchesScalar(t *testing.T) {
	spec := equivSpec(30000)
	readers := equivReaders(t, spec)

	// The spec generates ~6-7 instructions per branch, so warm-up and limit
	// values in the tens of thousands land mid-trace; the huge values probe
	// the all-warm-up and limit-beyond-EOF edges.
	configs := []sim.Config{
		{TraceName: "t"},
		{TraceName: "t", WarmupInstructions: 50_000},
		{TraceName: "t", SimInstructions: 80_000},
		{TraceName: "t", WarmupInstructions: 50_000, SimInstructions: 80_000},
		{TraceName: "t", WarmupInstructions: 1 << 40},
		{TraceName: "t", SimInstructions: 1 << 40},
		{TraceName: "t", WarmupInstructions: 30_000, SimInstructions: 1},
	}
	for name, newReader := range readers {
		for i, cfg := range configs {
			t.Run(fmt.Sprintf("%s/cfg%d", name, i), func(t *testing.T) {
				want, err := sim.RunScalar(newReader(), gshare.New(), cfg)
				if err != nil {
					t.Fatalf("RunScalar: %v", err)
				}
				got, err := sim.Run(newReader(), gshare.New(), cfg)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				wantJSON := resultJSON(t, want)
				gotJSON := resultJSON(t, got)
				if !bytes.Equal(wantJSON, gotJSON) {
					t.Errorf("batched result differs from scalar:\nscalar:  %s\nbatched: %s", wantJSON, gotJSON)
				}
			})
		}
	}
}

// TestBatchedRunTinyTraces covers traces much smaller than one batch,
// where the first batch is also the last (the empty trace is covered by
// TestRunEmptyTrace in the package's own tests).
func TestBatchedRunTinyTraces(t *testing.T) {
	for _, branches := range []uint64{1, 2, 100} {
		spec := equivSpec(branches)
		for name, newReader := range equivReaders(t, spec) {
			t.Run(fmt.Sprintf("%s/%d", name, branches), func(t *testing.T) {
				want, err := sim.RunScalar(newReader(), gshare.New(), sim.Config{TraceName: "t"})
				if err != nil {
					t.Fatalf("RunScalar: %v", err)
				}
				got, err := sim.Run(newReader(), gshare.New(), sim.Config{TraceName: "t"})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if !bytes.Equal(resultJSON(t, want), resultJSON(t, got)) {
					t.Errorf("batched result differs from scalar for %d-branch trace", branches)
				}
			})
		}
	}
}

// TestBatchedRunErrorEquivalence: decode failures mid-trace must surface
// through the prefetch pipeline with the same fault class as the scalar
// loop, and neither path may return a partial Result alongside the error.
func TestBatchedRunErrorEquivalence(t *testing.T) {
	evs := generate(t, equivSpec(20000))
	clean := encodeSBBT(t, evs, false)
	cleanCRC := encodeSBBT(t, evs, true)

	corruptions := map[string][]byte{
		// Mid-packet cut: typed truncation.
		"truncated": clean[:len(clean)*2/3+5],
		// Reserved-bit damage inside a packet: typed corruption. Packet
		// byte 7 holds reserved bits in the opcode word.
		"bitflip-crc": func() []byte {
			data := bytes.Clone(cleanCRC)
			data[len(data)/2] ^= 0x40
			return data
		}(),
	}
	for name, data := range corruptions {
		t.Run(name, func(t *testing.T) {
			newReader := func() bp.Reader {
				r, err := sbbt.NewReader(bytes.NewReader(data))
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			scalarRes, scalarErr := sim.RunScalar(newReader(), gshare.New(), sim.Config{})
			batchRes, batchErr := sim.Run(newReader(), gshare.New(), sim.Config{})
			if scalarErr == nil || batchErr == nil {
				t.Fatalf("errors = (%v, %v), want both non-nil", scalarErr, batchErr)
			}
			if scalarRes != nil || batchRes != nil {
				t.Errorf("partial result returned alongside error")
			}
			if faults.Class(scalarErr) != faults.Class(batchErr) {
				t.Errorf("fault class: scalar %q, batched %q (scalar err %v, batched err %v)",
					faults.Class(scalarErr), faults.Class(batchErr), scalarErr, batchErr)
			}
		})
	}
}

// TestBatchedRunInjectedFaults drives the prefetch pipeline through the
// fault-injection harness: the typed class must survive the goroutine hop.
func TestBatchedRunInjectedFaults(t *testing.T) {
	evs := generate(t, equivSpec(20000))
	data := encodeSBBT(t, evs, true)

	cases := map[string]struct {
		fault faults.Fault
		class string
	}{
		"truncate": {faults.Truncate(int64(len(data) * 1 / 3)), "truncated"},
		"bitflip":  {faults.BitFlip(int64(len(data)/2), 3), "corrupt"},
		"garbage":  {faults.Garbage(int64(len(data)/2), 64, 7), "corrupt"},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			r, err := sbbt.NewReader(faults.NewInjector(bytes.NewReader(data), c.fault))
			if err != nil {
				t.Fatalf("NewReader: %v", err)
			}
			res, err := sim.Run(r, gshare.New(), sim.Config{})
			if err == nil {
				t.Fatalf("injected fault not surfaced (result: %+v)", res.Metrics)
			}
			if got := faults.Class(err); got != c.class {
				t.Errorf("faults.Class = %q, want %q (err: %v)", got, c.class, err)
			}
		})
	}
}

// panicReader panics on the nth read, emulating a decoder bug.
type panicReader struct {
	evs  []bp.Event
	pos  int
	trip int
}

func (r *panicReader) Read() (bp.Event, error) {
	if r.pos >= r.trip {
		panic("decoder bug")
	}
	if r.pos >= len(r.evs) {
		return bp.Event{}, io.EOF
	}
	ev := r.evs[r.pos]
	r.pos++
	return ev, nil
}

func TestBatchedRunContainsReaderPanic(t *testing.T) {
	evs := generate(t, equivSpec(10000))
	res, err := sim.Run(&panicReader{evs: evs, trip: 5000}, gshare.New(), sim.Config{})
	if err == nil {
		t.Fatalf("reader panic not surfaced (result: %+v)", res.Metrics)
	}
	if got := faults.Class(err); got != "panic" {
		t.Errorf("faults.Class = %q, want %q", got, "panic")
	}
	var pe *faults.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *faults.PanicError: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Errorf("panic error carries no stack")
	}
}

// guardedReader flags any read arriving after the simulation returned,
// verifying Run's shutdown guarantee: callers close the underlying file
// right after Run, so the prefetch goroutine must be done with the reader
// by then.
type guardedReader struct {
	g      *tracegen.Generator
	closed atomic.Bool
	late   atomic.Bool
}

func (r *guardedReader) Read() (bp.Event, error) {
	if r.closed.Load() {
		r.late.Store(true)
		return bp.Event{}, errors.New("read after close")
	}
	return r.g.Read()
}

func TestBatchedRunStopsReaderBeforeReturn(t *testing.T) {
	for _, cfg := range []sim.Config{
		{SimInstructions: 10_000}, // early stop: producer likely mid-flight
		{},                        // full drain
	} {
		g, err := tracegen.New(equivSpec(200000))
		if err != nil {
			t.Fatal(err)
		}
		r := &guardedReader{g: g}
		if _, err := sim.Run(r, gshare.New(), cfg); err != nil {
			t.Fatalf("Run: %v", err)
		}
		r.closed.Store(true)
		if r.late.Load() {
			t.Fatalf("cfg %+v: reader used after Run returned", cfg)
		}
	}
}
