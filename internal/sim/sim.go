// Package sim is the simulation library of the suite (§IV of the MBPlib
// paper): it runs a user-provided branch predictor over a trace of branch
// events and reports microarchitecture-agnostic metrics — mispredictions,
// MPKI, accuracy, and the branches that fail the most.
//
// In keeping with the paper's central design decision, this is a library
// and not a framework: the caller owns main, constructs the trace reader
// and the predictor, and calls Run (or Compare, §VI-C). Results serialise
// to the JSON layout of Listing 1.
package sim

import (
	"errors"
	"io"
	"sort"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/obs"
)

// Name and Version identify the simulator in result metadata, as in
// Listing 1.
const (
	Name    = "MBPlib std simulator (Go)"
	Version = "v1.0.0"
)

// Config controls a simulation run.
type Config struct {
	// TraceName labels the run in the output metadata.
	TraceName string
	// WarmupInstructions is the number of leading instructions whose
	// branches update the predictor but whose mispredictions are not
	// counted (§IV-C).
	WarmupInstructions uint64
	// SimInstructions caps the number of instructions simulated after
	// warm-up. Zero means run until the trace is exhausted.
	SimInstructions uint64
	// MostFailedLimit caps the most_failed report length. Zero keeps every
	// branch needed to cover half of all mispredictions, as the paper's
	// num_most_failed_branches metric defines.
	MostFailedLimit int
	// Metrics receives pipeline observability data (stage timings, event
	// counts) when non-nil. A nil collector is the disabled state: the
	// instrumentation points are zero-allocation no-ops, and results are
	// byte-identical either way — collectors only observe (see internal/obs).
	Metrics *obs.Collector
}

// Metadata is the "metadata" section of a result (Listing 1). The paper's
// example output spells the key "num_conditonal_branches"; that is a typo
// in the paper, and this implementation uses the corrected spelling.
// NumBranchInstructions counts static branches (distinct branch addresses),
// which is the only reading consistent with the example's numbers.
type Metadata struct {
	Simulator              string         `json:"simulator"`
	Version                string         `json:"version"`
	Trace                  string         `json:"trace"`
	WarmupInstr            uint64         `json:"warmup_instr"`
	SimulationInstr        uint64         `json:"simulation_instr"`
	ExhaustedTrace         bool           `json:"exhausted_trace"`
	NumConditionalBranches uint64         `json:"num_conditional_branches"`
	NumBranchInstructions  uint64         `json:"num_branch_instructions"`
	Predictor              map[string]any `json:"predictor"`
}

// Metrics is the "metrics" section of a result (Listing 1).
type Metrics struct {
	MPKI                  float64 `json:"mpki"`
	Mispredictions        uint64  `json:"mispredictions"`
	Accuracy              float64 `json:"accuracy"`
	NumMostFailedBranches int     `json:"num_most_failed_branches"`
	SimulationTime        float64 `json:"simulation_time"`
}

// BranchReport is one entry of the "most_failed" section: a conditional
// branch, how often it executed, its contribution to the MPKI, and its
// individual accuracy.
type BranchReport struct {
	IP          uint64  `json:"ip"`
	Occurrences uint64  `json:"occurrences"`
	MPKI        float64 `json:"mpki"`
	Accuracy    float64 `json:"accuracy"`
}

// Result is the full simulation output, shaped like Listing 1.
type Result struct {
	Metadata            Metadata       `json:"metadata"`
	Metrics             Metrics        `json:"metrics"`
	PredictorStatistics map[string]any `json:"predictor_statistics"`
	MostFailed          []BranchReport `json:"most_failed"`
}

// ipIndex maps branch addresses to dense indices with an open-addressed,
// linear-probing hash table (power-of-two size). It is probed for every
// branch, so it must be several times cheaper than a Go map lookup — this
// is part of what keeps the simulator in the paper's "results within
// seconds" class.
type ipIndex struct {
	slots []int32 // hash slot -> dense index + 1; 0 = empty
	mask  uint64
	ips   []uint64
}

const ipIndexInitialSlots = 4096

func newIPIndex() *ipIndex {
	return &ipIndex{slots: make([]int32, ipIndexInitialSlots), mask: ipIndexInitialSlots - 1}
}

func ipHash(ip uint64) uint64 {
	ip ^= ip >> 33
	ip *= 0xff51afd7ed558ccd
	ip ^= ip >> 33
	return ip
}

// lookup returns the dense index of ip, inserting it if new.
func (x *ipIndex) lookup(ip uint64) int {
	slot := ipHash(ip) & x.mask
	for {
		idx := x.slots[slot]
		if idx == 0 {
			break
		}
		if x.ips[idx-1] == ip {
			return int(idx - 1)
		}
		slot = (slot + 1) & x.mask
	}
	x.ips = append(x.ips, ip)
	x.slots[slot] = int32(len(x.ips))
	if uint64(len(x.ips))*4 > uint64(len(x.slots))*3 {
		x.grow()
	}
	return len(x.ips) - 1
}

// grow doubles the slot table and rehashes; the dense key array is shared.
func (x *ipIndex) grow() {
	newSlots := make([]int32, len(x.slots)*2)
	newMask := uint64(len(newSlots) - 1)
	for i, ip := range x.ips {
		slot := ipHash(ip) & newMask
		for newSlots[slot] != 0 {
			slot = (slot + 1) & newMask
		}
		newSlots[slot] = int32(i + 1)
	}
	x.slots, x.mask = newSlots, newMask
}

// branchStats accumulates per-static-branch occurrence and misprediction
// counters over an ipIndex shared with the static-branch count, so the hot
// loop performs a single hash probe per branch.
type branchStats struct {
	index  *ipIndex
	occ    []uint64
	missed []uint64
}

func newBranchStats() *branchStats {
	return &branchStats{index: newIPIndex()}
}

func (s *branchStats) ips() []uint64 { return s.index.ips }

// recordAt updates the counters of the branch with dense index i (from the
// shared ipIndex), growing the arrays on first sight. Both slices grow to
// the needed length in one step with doubling capacity, instead of one
// element per loop iteration.
func (s *branchStats) recordAt(i int, mispredicted bool) {
	if i >= len(s.occ) {
		s.occ = growCounters(s.occ, i+1)
		s.missed = growCounters(s.missed, i+1)
	}
	s.occ[i]++
	if mispredicted {
		s.missed[i]++
	}
}

// growCounters extends a counter slice to length n, zeroing the exposed
// tail, with amortized-doubling reallocation.
func growCounters(s []uint64, n int) []uint64 {
	if cap(s) < n {
		c := 2 * cap(s)
		if c < n {
			c = n
		}
		if c < 64 {
			c = 64
		}
		grown := make([]uint64, n, c)
		copy(grown, s)
		return grown
	}
	old := len(s)
	s = s[:n]
	for j := old; j < n; j++ {
		s[j] = 0
	}
	return s
}

// runLoop holds the mutable state of one simulation: the per-branch
// counters and the aggregate counts that the batched and scalar loops both
// accumulate.
type runLoop struct {
	stats          *branchStats
	instr          uint64 // instructions retired so far
	condBranches   uint64 // conditional branches after warm-up
	mispredictions uint64
	warmup         uint64
	limit          uint64 // absolute instruction limit, 0 = none

	col *obs.Collector // dispatch counters and batch-size histogram; nil = off

	// Reusable kernel scratch: the branch view and prediction buffer handed
	// to BatchPredictor kernels. Sized to the first full batch and reused,
	// so the kernel path allocates nothing in steady state.
	branchBuf []bp.Branch
	predBuf   []bp.Prediction
}

func newRunLoop(cfg Config) *runLoop {
	l := &runLoop{stats: newBranchStats(), warmup: cfg.WarmupInstructions, col: cfg.Metrics}
	if cfg.SimInstructions > 0 {
		l.limit = cfg.WarmupInstructions + cfg.SimInstructions
	}
	return l
}

// process consumes one batch of events, returning true when the instruction
// limit was reached and the simulation must stop mid-trace.
//
// When the warm-up window is already behind and the limit cannot be reached
// even if every event carries the maximum instruction gap, the whole batch
// runs through a fast path with the warm-up and limit checks hoisted out of
// the per-event loop — and, for predictors with a native BatchPredictor
// kernel, through one TrainBatch call for the entire batch. Batches
// straddling a warm-up or limit boundary (the edge batches) fall back to
// the per-event checks of the scalar reference loop, so boundary semantics
// are decided by exactly one piece of code on either dispatch path.
func (l *runLoop) process(events []bp.Event, p bp.Predictor) bool {
	l.col.Hist(obs.HistBatchEvents).Observe(uint64(len(events)))
	if l.instr >= l.warmup && (l.limit == 0 || l.instr+uint64(len(events))*(bp.MaxInstrGap+1) < l.limit) {
		if kp, ok := p.(bp.BatchPredictor); ok {
			l.col.Ctr(obs.CtrDispatchKernel).Add(1)
			l.processKernel(events, kp)
			return false
		}
		l.col.Ctr(obs.CtrDispatchScalar).Add(1)
		for i := range events {
			ev := &events[i]
			l.instr += ev.InstrsSinceLastBranch + 1
			b := ev.Branch
			idx := l.stats.index.lookup(b.IP)
			if b.Opcode.IsConditional() {
				predicted := p.Predict(b.IP)
				l.condBranches++
				miss := predicted != b.Taken
				if miss {
					l.mispredictions++
				}
				l.stats.recordAt(idx, miss)
				p.Train(b)
			}
			p.Track(b)
		}
		return false
	}
	l.col.Ctr(obs.CtrDispatchScalar).Add(1)
	for i := range events {
		ev := &events[i]
		l.instr += ev.InstrsSinceLastBranch + 1
		b := ev.Branch
		idx := l.stats.index.lookup(b.IP)
		if b.Opcode.IsConditional() {
			predicted := p.Predict(b.IP)
			if l.instr > l.warmup {
				l.condBranches++
				miss := predicted != b.Taken
				if miss {
					l.mispredictions++
				}
				l.stats.recordAt(idx, miss)
			}
			p.Train(b)
		}
		p.Track(b)
		if l.limit > 0 && l.instr >= l.limit {
			return true
		}
	}
	return false
}

// processKernel runs one full post-warm-up batch through the predictor's
// native kernel: the events' branches are copied into a reusable
// contiguous view, TrainBatch simulates them in one virtual call, and a
// second pass folds the recorded predictions into the per-branch counters.
// Splitting simulation from accounting keeps the kernel free of ipIndex
// probes (so predictor tables stay hot in cache) while producing exactly
// the counters the scalar loop accumulates. Only called on batches where
// warm-up is behind and the limit is unreachable, so neither check appears
// here.
func (l *runLoop) processKernel(events []bp.Event, kp bp.BatchPredictor) {
	n := len(events)
	if cap(l.branchBuf) < n {
		l.branchBuf = make([]bp.Branch, n)
		l.predBuf = make([]bp.Prediction, n)
	}
	branches, preds := l.branchBuf[:n], l.predBuf[:n]
	instr := l.instr
	for i := range events {
		branches[i] = events[i].Branch
		instr += events[i].InstrsSinceLastBranch + 1
	}
	kp.TrainBatch(branches, preds)
	stats, cond, miss := l.stats, l.condBranches, l.mispredictions
	for i := range branches {
		b := &branches[i]
		idx := stats.index.lookup(b.IP)
		if b.Opcode.IsConditional() {
			cond++
			m := bool(preds[i]) != b.Taken
			if m {
				miss++
			}
			stats.recordAt(idx, m)
		}
	}
	l.instr, l.condBranches, l.mispredictions = instr, cond, miss
}

// result assembles the final Result from the loop state.
func (l *runLoop) result(p bp.Predictor, cfg Config, exhausted bool, start time.Time) *Result {
	simInstr := uint64(0)
	if l.instr > cfg.WarmupInstructions {
		simInstr = l.instr - cfg.WarmupInstructions
	}
	res := &Result{
		Metadata: Metadata{
			Simulator:              Name,
			Version:                Version,
			Trace:                  cfg.TraceName,
			WarmupInstr:            cfg.WarmupInstructions,
			SimulationInstr:        simInstr,
			ExhaustedTrace:         exhausted,
			NumConditionalBranches: l.condBranches,
			NumBranchInstructions:  uint64(len(l.stats.index.ips)),
			Predictor:              predictorMetadata(p),
		},
		PredictorStatistics: predictorStatistics(p),
	}
	res.Metrics = Metrics{
		Mispredictions: l.mispredictions,
		SimulationTime: time.Since(start).Seconds(),
	}
	if simInstr > 0 {
		res.Metrics.MPKI = float64(l.mispredictions) / (float64(simInstr) / 1000)
	}
	if l.condBranches > 0 {
		res.Metrics.Accuracy = 1 - float64(l.mispredictions)/float64(l.condBranches)
	}
	res.MostFailed, res.Metrics.NumMostFailedBranches = mostFailed(l.stats, l.mispredictions, simInstr, cfg.MostFailedLimit)
	return res
}

// Run simulates predictor p over the events of r under cfg.
//
// For every branch the simulator invokes Track; for conditional branches it
// first obtains a prediction and invokes Train (§IV-B). Mispredictions of
// branches whose instruction number falls within the warm-up window are not
// counted. The returned error is non-nil only for trace decoding failures;
// an empty or all-warm-up run yields zeroed metrics.
//
// Run consumes the trace in batches (bp.ReadBatch) and decodes ahead: a
// single prefetch goroutine double-buffers the next batch — including any
// decompression the reader performs — while this goroutine simulates the
// current one. Results are identical to the scalar reference loop
// (RunScalar); a panic inside the reader is converted to a
// faults.ErrPredictorPanic-classified error, preserving the fault-taxonomy
// semantics of RunSetPolicy.
func Run(r bp.Reader, p bp.Predictor, cfg Config) (*Result, error) {
	start := time.Now()
	col := cfg.Metrics
	loop := newRunLoop(cfg)
	pf := startPrefetch(r, batchSizeFor(r), col)
	defer pf.shutdown()

	exhausted := false
	for {
		tWait := col.Now()
		b, ok := pf.next()
		col.Stage(obs.StagePrefetchStall).Since(tWait)
		if !ok {
			break // producer stopped without a final batch; nothing more to consume
		}
		// Stage attribution is per batch: a batch starting inside the warm-up
		// window counts as warm-up even if it crosses the boundary.
		simStage := obs.StageSim
		if loop.instr < loop.warmup {
			simStage = obs.StageWarmup
		}
		tSim := col.Now()
		stop := loop.process(b.events, p)
		col.Stage(simStage).Since(tSim)
		col.Ctr(obs.CtrEvents).Add(uint64(len(b.events)))
		pf.recycle(b.events)
		if stop {
			break // instruction limit reached; pending events and errors are moot
		}
		if b.err != nil {
			if b.err == io.EOF {
				exhausted = true
				break
			}
			return nil, b.err
		}
	}
	return loop.result(p, cfg, exhausted, start), nil
}

// RunScalar is the scalar reference implementation of Run: one Read call,
// one event, per loop iteration, with the warm-up and limit checks in the
// per-event path. It exists as the semantic baseline the batched pipeline
// is tested against (and as the measured "before" of the batching
// optimisation); new callers should prefer Run.
func RunScalar(r bp.Reader, p bp.Predictor, cfg Config) (*Result, error) {
	start := time.Now()
	loop := newRunLoop(cfg)
	exhausted := false
	for {
		ev, err := r.Read()
		if err != nil {
			if err == io.EOF {
				exhausted = true
				break
			}
			return nil, err
		}
		if loop.process1(ev, p) {
			break
		}
	}
	return loop.result(p, cfg, exhausted, start), nil
}

// process1 is the per-event body of the scalar reference loop, identical to
// the careful path of process.
func (l *runLoop) process1(ev bp.Event, p bp.Predictor) bool {
	l.instr += ev.InstrsSinceLastBranch + 1
	b := ev.Branch
	idx := l.stats.index.lookup(b.IP)
	if b.Opcode.IsConditional() {
		predicted := p.Predict(b.IP)
		if l.instr > l.warmup {
			l.condBranches++
			miss := predicted != b.Taken
			if miss {
				l.mispredictions++
			}
			l.stats.recordAt(idx, miss)
		}
		p.Train(b)
	}
	p.Track(b)
	return l.limit > 0 && l.instr >= l.limit
}

// mostFailed returns the smallest set of branches that covers half of all
// mispredictions, sorted by descending misprediction count, and the size of
// that set (the num_most_failed_branches metric). limit > 0 truncates the
// report (but not the metric).
func mostFailed(stats *branchStats, totalMisses, simInstr uint64, limit int) ([]BranchReport, int) {
	if totalMisses == 0 {
		return nil, 0
	}
	// The shared index may contain branches never counted (non-conditional
	// or warm-up-only); the stats arrays cover only counted ones.
	ips := stats.ips()
	order := make([]int32, len(stats.occ))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if stats.missed[ia] != stats.missed[ib] {
			return stats.missed[ia] > stats.missed[ib]
		}
		return ips[ia] < ips[ib] // deterministic ties
	})
	var (
		reports []BranchReport
		cum     uint64
		n       int
	)
	kilo := float64(simInstr) / 1000
	for _, i := range order {
		if 2*cum >= totalMisses {
			break
		}
		cum += stats.missed[i]
		n++
		rep := BranchReport{
			IP:          ips[i],
			Occurrences: stats.occ[i],
			Accuracy:    1 - float64(stats.missed[i])/float64(stats.occ[i]),
		}
		if kilo > 0 {
			rep.MPKI = float64(stats.missed[i]) / kilo
		}
		reports = append(reports, rep)
	}
	if limit > 0 && len(reports) > limit {
		reports = reports[:limit]
	}
	return reports, n
}

// predictorMetadata extracts the predictor description for the metadata
// section, if the predictor provides one.
func predictorMetadata(p bp.Predictor) map[string]any {
	if mp, ok := p.(bp.MetadataProvider); ok {
		return mp.Metadata()
	}
	return map[string]any{}
}

// predictorStatistics extracts the predictor's execution statistics, if it
// records any.
func predictorStatistics(p bp.Predictor) map[string]any {
	if sp, ok := p.(bp.StatsProvider); ok {
		return sp.Statistics()
	}
	return map[string]any{}
}

// ErrNilPredictor is returned by Compare when a predictor is missing.
var ErrNilPredictor = errors.New("sim: nil predictor")
