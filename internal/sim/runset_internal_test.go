package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mbplib/internal/faults"
)

// TestBackoffFullJitter pins the retry schedule: delays are uniform in
// [0, ceiling), the ceiling doubles per attempt up to maxBackoff, and the
// sequence is a pure function of (seed, trace name).
func TestBackoffFullJitter(t *testing.T) {
	p := Policy{Backoff: 10 * time.Millisecond, Seed: 42}
	a, b := newBackoff(p, "trace-a"), newBackoff(p, "trace-a")
	ceil := p.Backoff
	for i := 0; i < 12; i++ {
		da, db := a.nextDelay(), b.nextDelay()
		if da != db {
			t.Fatalf("draw %d: same seed and trace diverged: %v vs %v", i, da, db)
		}
		if da < 0 || da >= ceil {
			t.Fatalf("draw %d: delay %v outside full-jitter range [0, %v)", i, da, ceil)
		}
		if ceil *= 2; ceil > maxBackoff {
			ceil = maxBackoff
		}
	}

	c, d := newBackoff(p, "trace-b"), newBackoff(p, "trace-a")
	same := true
	for i := 0; i < 12; i++ {
		if c.nextDelay() != d.nextDelay() {
			same = false
		}
	}
	if same {
		t.Error("different trace names drew identical jitter streams")
	}
}

func TestBackoffZeroCeiling(t *testing.T) {
	b := newBackoff(Policy{}, "x")
	for i := 0; i < 3; i++ {
		if d := b.nextDelay(); d != 0 {
			t.Fatalf("zero Backoff produced a %v delay", d)
		}
	}
}

// TestMapDeadline: only a context deadline expiry becomes the typed fault;
// cancellation passes through untouched so the scheduler's echo check
// (errors.Is(err, context.Canceled)) still fires on replayed wraps.
func TestMapDeadline(t *testing.T) {
	if err := mapDeadline(context.Canceled); !errors.Is(err, context.Canceled) || errors.Is(err, faults.ErrDeadline) {
		t.Errorf("mapDeadline(Canceled) = %v, want cancellation preserved", err)
	}
	err := mapDeadline(fmt.Errorf("opening: %w", context.DeadlineExceeded))
	if !errors.Is(err, faults.ErrDeadline) {
		t.Errorf("mapDeadline(DeadlineExceeded wrap) = %v, want faults.ErrDeadline", err)
	}
	if err := mapDeadline(nil); err != nil {
		t.Errorf("mapDeadline(nil) = %v", err)
	}
}

// TestClassErr: every named taxonomy class resurrects to a sentinel that
// classifies back to itself; "other" and unknown classes carry none.
func TestClassErr(t *testing.T) {
	for _, class := range []string{"corrupt", "truncated", "limit", "panic", "deadline", "drained"} {
		e := classErr(class)
		if e == nil || faults.Class(e) != class {
			t.Errorf("classErr(%q) = %v (class %q), want the matching sentinel", class, e, faults.Class(e))
		}
	}
	if e := classErr("other"); e != nil {
		t.Errorf("classErr(other) = %v, want nil", e)
	}
	if e := classErr("bogus"); e != nil {
		t.Errorf("classErr(bogus) = %v, want nil", e)
	}
}
