package bp

import (
	"errors"
	"io"
	"testing"
)

// scalarReader implements only Reader, forcing ReadBatch onto the adapter
// path.
type scalarReader struct {
	evs []Event
	pos int
	err error // returned after the events, io.EOF if nil
}

func (r *scalarReader) Read() (Event, error) {
	if r.pos >= len(r.evs) {
		if r.err != nil {
			return Event{}, r.err
		}
		return Event{}, io.EOF
	}
	ev := r.evs[r.pos]
	r.pos++
	return ev, nil
}

// batchOnlyReader implements BatchReader with a recognisable batch size, to
// verify the adapter delegates instead of falling back to Read.
type batchOnlyReader struct {
	scalarReader
	batchCalls int
}

func (r *batchOnlyReader) ReadBatch(dst []Event) (int, error) {
	r.batchCalls++
	n := 0
	for n < len(dst) {
		ev, err := r.Read()
		if err != nil {
			return n, err
		}
		dst[n] = ev
		n++
	}
	return n, nil
}

func testEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			Branch:                Branch{IP: uint64(0x1000 + 4*i), Target: uint64(0x2000 + 4*i), Opcode: OpCondJump, Taken: i%3 == 0},
			InstrsSinceLastBranch: uint64(i % 7),
		}
	}
	return evs
}

func TestReadBatchAdapterFallback(t *testing.T) {
	evs := testEvents(10)
	r := &scalarReader{evs: evs}
	dst := make([]Event, 4)

	n, err := ReadBatch(r, dst)
	if n != 4 || err != nil {
		t.Fatalf("ReadBatch = (%d, %v), want (4, nil)", n, err)
	}
	for i := 0; i < 4; i++ {
		if dst[i] != evs[i] {
			t.Errorf("dst[%d] = %+v, want %+v", i, dst[i], evs[i])
		}
	}

	// Partial final batch: error after n.
	big := make([]Event, 16)
	n, err = ReadBatch(r, big)
	if n != 6 || err != io.EOF {
		t.Fatalf("final ReadBatch = (%d, %v), want (6, io.EOF)", n, err)
	}
	for i := 0; i < 6; i++ {
		if big[i] != evs[4+i] {
			t.Errorf("big[%d] = %+v, want %+v", i, big[i], evs[4+i])
		}
	}
}

func TestReadBatchAdapterPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	r := &scalarReader{evs: testEvents(3), err: boom}
	dst := make([]Event, 8)
	n, err := ReadBatch(r, dst)
	if n != 3 || err != boom {
		t.Fatalf("ReadBatch = (%d, %v), want (3, boom)", n, err)
	}
}

func TestReadBatchAdapterDelegates(t *testing.T) {
	r := &batchOnlyReader{scalarReader: scalarReader{evs: testEvents(5)}}
	dst := make([]Event, 8)
	n, err := ReadBatch(r, dst)
	if n != 5 || err != io.EOF {
		t.Fatalf("ReadBatch = (%d, %v), want (5, io.EOF)", n, err)
	}
	if r.batchCalls != 1 {
		t.Errorf("native ReadBatch called %d times, want 1", r.batchCalls)
	}
}

func TestReadBatchEmptyDst(t *testing.T) {
	r := &scalarReader{evs: testEvents(2)}
	n, err := ReadBatch(r, nil)
	if n != 0 || err != nil {
		t.Fatalf("ReadBatch(nil) = (%d, %v), want (0, nil)", n, err)
	}
	if r.pos != 0 {
		t.Errorf("empty-dst ReadBatch consumed %d events", r.pos)
	}
}
