package bp

import "io"

// This file is the batched predictor contract, the predictor-side twin of
// BatchReader: an optional interface that lets a predictor consume a whole
// decoded event batch per virtual call instead of three calls per branch,
// plus the SimulateBatch adapter that gives every scalar predictor the same
// batch-wise calling convention. See DESIGN.md, "Batched predictor kernels".

// Prediction is one recorded predicted outcome of a batch call: true
// predicts taken. A named type rather than a bare bool so batch buffers are
// self-describing in signatures.
type Prediction bool

// BatchPredictor is optionally implemented by predictors with native batch
// kernels. The simulator's hot loop dispatches whole decoded batches to it
// (via SimulateBatch), eliminating the three interface calls per branch of
// the scalar contract and letting implementations hoist table bases, carry
// folded history in registers across the batch, and reuse per-predictor
// scratch buffers.
//
// The contract (see also DESIGN.md):
//
//   - PredictBatch is the batched form of Predict and inherits its purity
//     rule (§IV-A, machine-checked by mbpvet V1): it fills out[i] with the
//     prediction Predict(branches[i].IP) would return under the current
//     state, for every i, without mutating any predictor state. Entries do
//     not see each other: all predictions are as-of the state on entry.
//   - TrainBatch is the fused simulation kernel: for each branch in order
//     it must behave exactly like the simulator's scalar sequence — record
//     the pre-update prediction for branches[i].IP into out[i] and apply
//     the Train update if the branch is conditional, then apply the Track
//     update for every branch. out entries of non-conditional branches are
//     left untouched. After TrainBatch returns, the predictor state must be
//     indistinguishable — checkpoint-byte-identical for Checkpointers —
//     from the state the equivalent scalar Predict/Train/Track calls
//     produce, for any split of the stream into batches (including length
//     zero and one).
//   - Neither call may retain branches or out; the caller owns and reuses
//     both across calls. len(out) >= len(branches) is the caller's duty.
//
// The scalar methods remain the semantic reference; predtest's batch-kernel
// conformance law enforces the equivalence registry-wide.
type BatchPredictor interface {
	Predictor
	// PredictBatch fills out[i] with the prediction for branches[i].IP
	// under the current state, without mutating any state.
	PredictBatch(branches []Branch, out []Prediction)
	// TrainBatch replays the resolved branches in simulator order,
	// recording pre-update predictions of conditional branches into out.
	TrainBatch(branches []Branch, out []Prediction)
}

// SimulateBatch runs one resolved batch through p with the simulator's
// per-branch sequence (predict, train if conditional, track), recording the
// predictions of conditional branches into out. Predictors implementing
// BatchPredictor run their native TrainBatch kernel; everything else goes
// through the scalar reference loop below, so callers can consume any
// predictor batch-wise without caring which kind they were handed.
//
// out must have at least len(branches) entries; entries of non-conditional
// branches are left untouched.
func SimulateBatch(p Predictor, branches []Branch, out []Prediction) {
	if kp, ok := p.(BatchPredictor); ok {
		kp.TrainBatch(branches, out)
		return
	}
	for i := range branches {
		b := &branches[i]
		if b.Opcode.IsConditional() {
			out[i] = Prediction(p.Predict(b.IP))
			p.Train(*b)
		}
		p.Track(*b)
	}
}

// ScalarOnly wraps p so it no longer satisfies BatchPredictor, forcing
// every consumer down the scalar Predict/Train/Track path while forwarding
// the optional Metadata, Statistics and Checkpointer capabilities. It is
// the A/B instrument of the batch-kernel work: benchmarks measure the
// kernel win by running the same pipeline against p and ScalarOnly(p), and
// equivalence tests use it to pin byte-identical results between the two
// paths. If p has no kernel it is returned unchanged.
func ScalarOnly(p Predictor) Predictor {
	if _, ok := p.(BatchPredictor); !ok {
		return p
	}
	s := scalarOnly{p}
	if _, ok := p.(Checkpointer); ok {
		return &scalarOnlyCkpt{s}
	}
	return &s
}

type scalarOnly struct{ p Predictor }

func (s *scalarOnly) Predict(ip uint64) bool { return s.p.Predict(ip) }
func (s *scalarOnly) Train(b Branch)         { s.p.Train(b) }
func (s *scalarOnly) Track(b Branch)         { s.p.Track(b) }

// Metadata forwards the wrapped predictor's metadata; wrapping must not
// change simulation output, only the dispatch path.
func (s *scalarOnly) Metadata() map[string]any {
	if mp, ok := s.p.(MetadataProvider); ok {
		return mp.Metadata()
	}
	return map[string]any{}
}

// Statistics forwards the wrapped predictor's statistics.
func (s *scalarOnly) Statistics() map[string]any {
	if sp, ok := s.p.(StatsProvider); ok {
		return sp.Statistics()
	}
	return map[string]any{}
}

// scalarOnlyCkpt adds Checkpointer forwarding for wrapped predictors that
// have it, so resumable sweeps checkpoint through the wrapper exactly as
// they would through the native predictor.
type scalarOnlyCkpt struct{ scalarOnly }

func (s *scalarOnlyCkpt) Checkpoint(w io.Writer) error {
	return s.p.(Checkpointer).Checkpoint(w)
}

func (s *scalarOnlyCkpt) Restore(r io.Reader) error {
	return s.p.(Checkpointer).Restore(r)
}
