// Package bp defines the branch model shared by every component of the
// library: branch opcodes, the Branch record that trace readers produce and
// predictors consume, and the Predictor interface from §IV-A of the MBPlib
// paper (Predict / Train / Track).
//
// The package is a near-leaf: trace formats, the simulator, the utilities
// library and every predictor implementation depend on it, and it depends
// only on the shared fault taxonomy in internal/faults.
package bp

import (
	"fmt"

	"mbplib/internal/faults"
)

// BaseType is the 2-bit base type of a branch opcode. Branches that push or
// pop from the return-address stack are labeled Call or Ret respectively;
// every other branch is a Jump. The numeric values follow the SBBT format
// specification (§IV-C): JUMP (00), RET (01), CALL (10).
type BaseType uint8

// Base types of a branch.
const (
	Jump BaseType = 0b00
	Ret  BaseType = 0b01
	Call BaseType = 0b10
)

// String returns the conventional upper-case name of the base type.
func (t BaseType) String() string {
	switch t {
	case Jump:
		return "JUMP"
	case Ret:
		return "RET"
	case Call:
		return "CALL"
	}
	return fmt.Sprintf("BaseType(%d)", uint8(t))
}

// Opcode encodes the static behaviour of a branch instruction in 4 bits,
// closely following the opcode definition used by the BT9 traces (§IV-C):
// bit 0 marks the branch as conditional, bit 1 as indirect, and bits 2-3
// hold the BaseType.
type Opcode uint8

// Bit layout of an Opcode.
const (
	opcodeCondBit     Opcode = 1 << 0
	opcodeIndirectBit Opcode = 1 << 1
	opcodeBaseShift          = 2
	opcodeMask        Opcode = 0xf
)

// NewOpcode assembles an Opcode from its three fields.
func NewOpcode(base BaseType, conditional, indirect bool) Opcode {
	op := Opcode(base&0b11) << opcodeBaseShift
	if conditional {
		op |= opcodeCondBit
	}
	if indirect {
		op |= opcodeIndirectBit
	}
	return op
}

// Common opcodes.
var (
	OpJump     = NewOpcode(Jump, false, false) // unconditional direct jump
	OpCondJump = NewOpcode(Jump, true, false)  // conditional direct jump
	OpIndJump  = NewOpcode(Jump, false, true)  // indirect jump (e.g. jump table)
	OpCall     = NewOpcode(Call, false, false) // direct call
	OpIndCall  = NewOpcode(Call, false, true)  // indirect call
	OpRet      = NewOpcode(Ret, false, true)   // return (indirect by nature)
)

// IsConditional reports whether the branch outcome depends on a condition.
func (op Opcode) IsConditional() bool { return op&opcodeCondBit != 0 }

// IsIndirect reports whether the branch target is computed at run time.
func (op Opcode) IsIndirect() bool { return op&opcodeIndirectBit != 0 }

// Base returns the base type (Jump, Call or Ret) of the opcode.
func (op Opcode) Base() BaseType { return BaseType(op>>opcodeBaseShift) & 0b11 }

// Valid reports whether the opcode uses a defined base-type encoding.
func (op Opcode) Valid() bool { return op <= opcodeMask && op.Base() != 0b11 }

// String renders the opcode as, for example, "COND JUMP" or "IND CALL".
func (op Opcode) String() string {
	s := ""
	if op.IsConditional() {
		s += "COND "
	}
	if op.IsIndirect() {
		s += "IND "
	}
	return s + op.Base().String()
}

// Branch is a single dynamic branch record: the static description of the
// instruction plus its outcome in this execution. It corresponds to
// mbp::Branch in the paper.
type Branch struct {
	// IP is the virtual address of the branch instruction.
	IP uint64
	// Target is the virtual address the branch jumps to when taken. By the
	// SBBT validity rules it is zero for a not-taken conditional indirect
	// branch.
	Target uint64
	// Opcode describes the static behaviour of the branch.
	Opcode Opcode
	// Taken is the outcome. Non-conditional branches are always taken.
	Taken bool
}

// IsTaken reports the branch outcome. It mirrors mbp::Branch::isTaken().
func (b Branch) IsTaken() bool { return b.Taken }

// IsConditional reports whether the branch is conditional.
func (b Branch) IsConditional() bool { return b.Opcode.IsConditional() }

// Validate checks the two SBBT validity rules (§IV-C): a non-conditional
// branch must be taken, and a not-taken conditional indirect branch must
// have a null target.
func (b Branch) Validate() error {
	if !b.Opcode.Valid() {
		return fmt.Errorf("bp: invalid opcode %#x", uint8(b.Opcode))
	}
	if !b.Opcode.IsConditional() && !b.Taken {
		return fmt.Errorf("bp: non-conditional branch at %#x marked not taken", b.IP)
	}
	if b.Opcode.IsConditional() && b.Opcode.IsIndirect() && !b.Taken && b.Target != 0 {
		return fmt.Errorf("bp: not-taken conditional indirect branch at %#x has non-null target %#x", b.IP, b.Target)
	}
	return nil
}

// Event is one entry of a branch trace: a dynamic branch plus the number of
// non-branch instructions executed since the previous branch (counting
// neither branch). The instruction distance is what lets the simulator know
// the instruction number of each branch, enabling warm-up runs (§IV-C).
type Event struct {
	Branch Branch
	// InstrsSinceLastBranch is the number of instructions executed on the
	// path to this branch, excluding both the previous branch and this one.
	// SBBT stores it in 12 bits, so it is at most 4095.
	InstrsSinceLastBranch uint64
}

// MaxInstrGap is the largest inter-branch instruction distance representable
// by the SBBT packet format (12 bits).
const MaxInstrGap = 1<<12 - 1

// Predictor is the interface every branch predictor implements (§IV-A).
//
// Predict must not modify any state that would affect future predictions.
// Train updates the prediction data structures given the resolved branch.
// Track updates the "scenario" — the record of recent program behaviour,
// such as global history — given the resolved branch.
//
// When driven by the simulator, Track is invoked for every branch while
// Train is invoked (before Track) only for conditional branches. When a
// predictor is used as a subcomponent of a meta-predictor, the owner decides
// which of the two to call and with which Branch value (§IV-B, §VI-D).
type Predictor interface {
	// Predict returns the predicted outcome for the branch at ip.
	Predict(ip uint64) bool
	// Train updates the prediction structures with the resolved branch.
	Train(b Branch)
	// Track updates the scenario structures with the resolved branch.
	Track(b Branch)
}

// MetadataProvider is optionally implemented by predictors that want a
// description of themselves (name and parameters) embedded in the
// "predictor" section of the simulator output metadata (Listing 1).
type MetadataProvider interface {
	Metadata() map[string]any
}

// StatsProvider is optionally implemented by predictors that record
// execution statistics to be embedded in the "predictor_statistics" section
// of the simulator output (Listing 1).
type StatsProvider interface {
	Statistics() map[string]any
}

// Reader streams branch events from a trace. Implementations are provided
// by the sbbt and bt9 packages and by the synthetic trace generator.
type Reader interface {
	// Read returns the next event. It returns io.EOF after the last one.
	Read() (Event, error)
}

// BatchReader is implemented by trace readers that can decode many events
// per call, amortizing the per-event interface-call and bounds-check
// overhead of Reader.Read — the difference between "one virtual call per
// branch" and "one virtual call per few thousand branches" in the
// simulator's hot loop.
//
// The contract (see also DESIGN.md, "Batched reading"):
//
//   - ReadBatch fills dst from the front and returns the number n of events
//     decoded, 0 ≤ n ≤ len(dst). The caller owns dst and is expected to
//     reuse it across calls; implementations must not retain it.
//   - Errors follow the "error after n" rule: when err is non-nil the first
//     n events of dst are still valid and must be consumed before the error
//     is acted on. A clean end of trace is reported as io.EOF, possibly on
//     the same call that delivers the final events.
//   - Any non-nil error (including io.EOF) is terminal and sticky: every
//     subsequent call returns (0, err) with the same error.
//   - A call with len(dst) > 0 on a healthy stream makes progress: it
//     returns n > 0 or a non-nil error, never (0, nil).
//
// Scalar readers are adapted transparently by the package-level ReadBatch
// function; interleaving Read and ReadBatch calls on the same reader is
// allowed and observes a single consistent stream position.
type BatchReader interface {
	Reader
	// ReadBatch decodes up to len(dst) events into dst and returns how many
	// it decoded, with the error semantics documented on BatchReader.
	ReadBatch(dst []Event) (int, error)
}

// ReadBatch reads up to len(dst) events from r into dst, using the reader's
// native batch decoder when it implements BatchReader and falling back to a
// scalar Read loop otherwise. The returned values follow the BatchReader
// contract, so callers can consume any Reader batch-wise without caring
// which kind they were handed.
func ReadBatch(r Reader, dst []Event) (int, error) {
	if br, ok := r.(BatchReader); ok {
		return br.ReadBatch(dst)
	}
	n := 0
	for n < len(dst) {
		ev, err := r.Read()
		if err != nil {
			return n, err
		}
		dst[n] = ev
		n++
	}
	return n, nil
}

// Sizer is optionally implemented by trace readers that know the totals
// recorded in their header: the number of instructions executed during
// tracing and the number of branch events in the trace.
type Sizer interface {
	TotalInstructions() uint64
	TotalBranches() uint64
}

// Writer consumes branch events, typically encoding them to a trace file.
type Writer interface {
	// Write appends one event to the trace.
	Write(Event) error
}

// ErrTruncated is returned by trace readers when the input ends in the
// middle of a record. It is an alias of faults.ErrTruncated, so existing
// errors.Is(err, bp.ErrTruncated) checks and the faults taxonomy agree.
var ErrTruncated = faults.ErrTruncated
