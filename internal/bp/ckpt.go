package bp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mbplib/internal/faults"
)

// Checkpointer is the optional serialization capability of a predictor.
// A predictor that implements it can have its complete internal state
// written to a stream and later restored into a freshly-constructed
// instance of the same configuration, after which the two instances are
// indistinguishable: every subsequent Predict/Train/Track sequence yields
// identical predictions and statistics. The simulator uses this to
// checkpoint in-flight sweep cells so that a killed run resumes from the
// last checkpoint instead of event zero; the planned mbpd daemon will use
// it to suspend and migrate jobs.
//
// The encoding contract is versioned and self-describing: a checkpoint
// starts with a header naming the predictor and a format version, followed
// by the configuration parameters the state depends on. Restore must
// reject a header for a different predictor, an unknown version, or a
// configuration that does not match the receiver — never reinterpret
// bytes. CkptWriter/CkptReader implement the framing; restore failures
// classify under the faults taxonomy (truncated/corrupt), so sweep policy
// handling applies unchanged.
type Checkpointer interface {
	// Checkpoint writes the predictor's complete state to w.
	Checkpoint(w io.Writer) error
	// Restore replaces the predictor's state with one previously written
	// by Checkpoint on an instance with identical configuration. If it
	// returns an error the receiver's state is unspecified: construct a
	// fresh instance before retrying.
	Restore(r io.Reader) error
}

// ckptMagic opens every predictor checkpoint stream.
const ckptMagic = "MBPC"

// maxCkptField bounds a single length-prefixed field of a checkpoint.
// Checkpoints come from local journal files, but a torn or hostile file
// must not be able to request an arbitrary allocation.
const maxCkptField = 1 << 28

// CkptWriter encodes checkpoint fields with a sticky error, so predictor
// Checkpoint implementations read as straight-line field lists with a
// single error check at the end. Integers use uvarint (signed values
// zigzag), byte fields are length-prefixed.
type CkptWriter struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

// NewCkptWriter returns a writer encoding to w.
func NewCkptWriter(w io.Writer) *CkptWriter { return &CkptWriter{w: w} }

// Header opens the stream: magic, predictor name, format version.
func (cw *CkptWriter) Header(name string, version uint64) {
	cw.raw([]byte(ckptMagic))
	cw.String(name)
	cw.U64(version)
}

func (cw *CkptWriter) raw(b []byte) {
	if cw.err != nil {
		return
	}
	_, cw.err = cw.w.Write(b)
}

// U64 writes an unsigned integer as a uvarint.
func (cw *CkptWriter) U64(v uint64) {
	n := binary.PutUvarint(cw.buf[:], v)
	cw.raw(cw.buf[:n])
}

// I64 writes a signed integer zigzag-encoded as a uvarint.
func (cw *CkptWriter) I64(v int64) {
	cw.U64(uint64(v<<1) ^ uint64(v>>63))
}

// Int writes an int via I64.
func (cw *CkptWriter) Int(v int) { cw.I64(int64(v)) }

// Bool writes a boolean as a single 0/1 uvarint.
func (cw *CkptWriter) Bool(b bool) {
	if b {
		cw.U64(1)
	} else {
		cw.U64(0)
	}
}

// Bytes writes a length-prefixed byte field.
func (cw *CkptWriter) Bytes(b []byte) {
	cw.U64(uint64(len(b)))
	cw.raw(b)
}

// String writes a length-prefixed string field.
func (cw *CkptWriter) String(s string) { cw.Bytes([]byte(s)) }

// U64s writes a length-prefixed slice of uvarints.
func (cw *CkptWriter) U64s(vs []uint64) {
	cw.U64(uint64(len(vs)))
	for _, v := range vs {
		cw.U64(v)
	}
}

// Err returns the first write error, if any.
func (cw *CkptWriter) Err() error { return cw.err }

// CkptReader decodes streams written by CkptWriter, with the same sticky
// error discipline. Decode failures carry the faults taxonomy: streams that
// end early classify as truncated, everything else malformed as corrupt.
type CkptReader struct {
	r   io.ByteReader
	rr  io.Reader
	err error
}

// NewCkptReader returns a reader decoding from r.
func NewCkptReader(r io.Reader) *CkptReader {
	type byteReader interface {
		io.Reader
		io.ByteReader
	}
	if br, ok := r.(byteReader); ok {
		return &CkptReader{r: br, rr: br}
	}
	br := &oneByteReader{r: r}
	return &CkptReader{r: br, rr: br}
}

// oneByteReader adapts a plain io.Reader without buffering ahead, so a
// CkptReader leaves the underlying stream positioned exactly after the
// checkpoint — required when a checkpoint is embedded in a larger record.
type oneByteReader struct {
	r   io.Reader
	buf [1]byte
}

func (o *oneByteReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func (o *oneByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(o.r, o.buf[:]); err != nil {
		return 0, err
	}
	return o.buf[0], nil
}

func (cr *CkptReader) fail(err error) {
	if cr.err != nil {
		return
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		cr.err = fmt.Errorf("checkpoint ends early: %w", faults.ErrTruncated)
		return
	}
	cr.err = err
}

// Corrupt records a corrupt-checkpoint error with a formatted detail
// message; subsequent reads return zero values.
func (cr *CkptReader) Corrupt(format string, args ...any) {
	if cr.err != nil {
		return
	}
	cr.err = fmt.Errorf("checkpoint: "+format+": %w", append(args, faults.ErrCorrupt)...)
}

// Header consumes and validates the stream header. It returns the encoded
// format version; the caller rejects versions it does not know. A header
// naming a different predictor fails as corrupt.
func (cr *CkptReader) Header(name string) uint64 {
	magic := make([]byte, len(ckptMagic))
	if cr.err == nil {
		if _, err := io.ReadFull(cr.rr, magic); err != nil {
			cr.fail(err)
		}
	}
	if cr.err == nil && string(magic) != ckptMagic {
		cr.Corrupt("bad magic %q", magic)
	}
	got := cr.String()
	if cr.err == nil && got != name {
		cr.Corrupt("checkpoint is for predictor %q, not %q", got, name)
	}
	return cr.U64()
}

// U64 reads a uvarint.
func (cr *CkptReader) U64() uint64 {
	if cr.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(cr.r)
	if err != nil {
		cr.fail(err)
		return 0
	}
	return v
}

// I64 reads a zigzag-encoded signed integer.
func (cr *CkptReader) I64() int64 {
	u := cr.U64()
	return int64(u>>1) ^ -int64(u&1)
}

// Int reads an int via I64.
func (cr *CkptReader) Int() int { return int(cr.I64()) }

// Bool reads a boolean; any value other than 0 or 1 is corrupt.
func (cr *CkptReader) Bool() bool {
	v := cr.U64()
	if v > 1 {
		cr.Corrupt("boolean field holds %d", v)
	}
	return v == 1
}

// Bytes reads a length-prefixed byte field, refusing implausible lengths.
func (cr *CkptReader) Bytes() []byte {
	n := cr.U64()
	if cr.err != nil {
		return nil
	}
	if n > maxCkptField {
		cr.Corrupt("field of %d bytes exceeds limit", n)
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(cr.rr, b); err != nil {
		cr.fail(err)
		return nil
	}
	return b
}

// String reads a length-prefixed string field.
func (cr *CkptReader) String() string { return string(cr.Bytes()) }

// U64s reads a length-prefixed slice of uvarints.
func (cr *CkptReader) U64s() []uint64 {
	n := cr.U64()
	if cr.err != nil {
		return nil
	}
	if n > maxCkptField {
		cr.Corrupt("slice of %d entries exceeds limit", n)
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = cr.U64()
		if cr.err != nil {
			return nil
		}
	}
	return vs
}

// ExpectInt validates a configuration parameter embedded in the stream
// against the restoring instance's own value; a mismatch is corrupt.
func (cr *CkptReader) ExpectInt(field string, want int) {
	got := cr.Int()
	if cr.err == nil && got != want {
		cr.Corrupt("%s is %d, restoring instance has %d", field, got, want)
	}
}

// Err returns the first decode error, if any.
func (cr *CkptReader) Err() error { return cr.err }
