package bp

import (
	"testing"
	"testing/quick"
)

func TestNewOpcodeFields(t *testing.T) {
	cases := []struct {
		base        BaseType
		cond, indir bool
	}{
		{Jump, false, false},
		{Jump, true, false},
		{Jump, false, true},
		{Jump, true, true},
		{Call, false, false},
		{Call, false, true},
		{Ret, false, true},
		{Ret, false, false},
	}
	for _, c := range cases {
		op := NewOpcode(c.base, c.cond, c.indir)
		if op.Base() != c.base {
			t.Errorf("NewOpcode(%v,%v,%v).Base() = %v", c.base, c.cond, c.indir, op.Base())
		}
		if op.IsConditional() != c.cond {
			t.Errorf("NewOpcode(%v,%v,%v).IsConditional() = %v", c.base, c.cond, c.indir, op.IsConditional())
		}
		if op.IsIndirect() != c.indir {
			t.Errorf("NewOpcode(%v,%v,%v).IsIndirect() = %v", c.base, c.cond, c.indir, op.IsIndirect())
		}
		if !op.Valid() {
			t.Errorf("NewOpcode(%v,%v,%v) not valid", c.base, c.cond, c.indir)
		}
	}
}

func TestOpcodeFieldsRoundTrip(t *testing.T) {
	f := func(base uint8, cond, indir bool) bool {
		bt := BaseType(base % 3) // Jump, Ret, Call
		op := NewOpcode(bt, cond, indir)
		return op.Base() == bt && op.IsConditional() == cond && op.IsIndirect() == indir
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpcodeValid(t *testing.T) {
	invalid := Opcode(0b11 << opcodeBaseShift) // base type 11 is undefined
	if invalid.Valid() {
		t.Errorf("opcode with base 0b11 reported valid")
	}
	if Opcode(0x1f).Valid() {
		t.Errorf("opcode with out-of-range bits reported valid")
	}
}

func TestOpcodeString(t *testing.T) {
	cases := map[Opcode]string{
		OpJump:     "JUMP",
		OpCondJump: "COND JUMP",
		OpIndJump:  "IND JUMP",
		OpCall:     "CALL",
		OpIndCall:  "IND CALL",
		OpRet:      "IND RET",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%#x.String() = %q, want %q", uint8(op), got, want)
		}
	}
}

func TestBranchValidate(t *testing.T) {
	valid := []Branch{
		{IP: 0x1000, Target: 0x2000, Opcode: OpCondJump, Taken: true},
		{IP: 0x1000, Target: 0x2000, Opcode: OpCondJump, Taken: false},
		{IP: 0x1000, Target: 0x2000, Opcode: OpJump, Taken: true},
		{IP: 0x1000, Target: 0, Opcode: NewOpcode(Jump, true, true), Taken: false},
		{IP: 0x1000, Target: 0x2000, Opcode: NewOpcode(Jump, true, true), Taken: true},
		{IP: 0x1000, Target: 0x2000, Opcode: OpRet, Taken: true},
	}
	for _, b := range valid {
		if err := b.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", b, err)
		}
	}
	invalid := []Branch{
		{IP: 0x1000, Target: 0x2000, Opcode: OpJump, Taken: false},
		{IP: 0x1000, Target: 0x2000, Opcode: NewOpcode(Jump, true, true), Taken: false},
		{IP: 0x1000, Target: 0x2000, Opcode: Opcode(0b1100), Taken: true},
	}
	for _, b := range invalid {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", b)
		}
	}
}

func TestBranchAccessors(t *testing.T) {
	b := Branch{IP: 1, Target: 2, Opcode: OpCondJump, Taken: true}
	if !b.IsTaken() || !b.IsConditional() {
		t.Errorf("accessors disagree with fields: %+v", b)
	}
}
