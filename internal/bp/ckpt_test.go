package bp

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"mbplib/internal/faults"
)

func TestCkptRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCkptWriter(&buf)
	cw.Header("demo", 3)
	cw.U64(0)
	cw.U64(1<<64 - 1)
	cw.I64(-5)
	cw.I64(1 << 62)
	cw.Int(-1)
	cw.Bool(true)
	cw.Bool(false)
	cw.Bytes([]byte{0xde, 0xad})
	cw.String("gshare:t=18")
	cw.U64s([]uint64{7, 0, 9})
	cw.U64s(nil)
	if err := cw.Err(); err != nil {
		t.Fatalf("write: %v", err)
	}

	cr := NewCkptReader(bytes.NewReader(buf.Bytes()))
	if v := cr.Header("demo"); v != 3 {
		t.Errorf("version = %d, want 3", v)
	}
	if got := cr.U64(); got != 0 {
		t.Errorf("U64 = %d", got)
	}
	if got := cr.U64(); got != 1<<64-1 {
		t.Errorf("U64 max = %d", got)
	}
	if got := cr.I64(); got != -5 {
		t.Errorf("I64 = %d", got)
	}
	if got := cr.I64(); got != 1<<62 {
		t.Errorf("I64 big = %d", got)
	}
	if got := cr.Int(); got != -1 {
		t.Errorf("Int = %d", got)
	}
	if !cr.Bool() || cr.Bool() {
		t.Errorf("Bool round-trip failed")
	}
	if got := cr.Bytes(); !bytes.Equal(got, []byte{0xde, 0xad}) {
		t.Errorf("Bytes = %x", got)
	}
	if got := cr.String(); got != "gshare:t=18" {
		t.Errorf("String = %q", got)
	}
	if got := cr.U64s(); len(got) != 3 || got[0] != 7 || got[1] != 0 || got[2] != 9 {
		t.Errorf("U64s = %v", got)
	}
	if got := cr.U64s(); len(got) != 0 {
		t.Errorf("empty U64s = %v", got)
	}
	if err := cr.Err(); err != nil {
		t.Fatalf("read: %v", err)
	}
	// The stream must be fully consumed: embedded checkpoints depend on the
	// reader stopping exactly at the end of what the writer produced.
	if _, err := cr.rr.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("trailing bytes after decode (err=%v)", err)
	}
}

// A CkptReader over a plain (non-byte) reader must not buffer past the
// checkpoint's own bytes.
func TestCkptReaderLeavesTrailingBytes(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCkptWriter(&buf)
	cw.U64(300)
	cw.Bytes([]byte("abc"))
	buf.WriteString("TRAILER")

	plain := struct{ io.Reader }{bytes.NewReader(buf.Bytes())}
	cr := NewCkptReader(plain)
	if got := cr.U64(); got != 300 {
		t.Fatalf("U64 = %d", got)
	}
	if got := cr.Bytes(); string(got) != "abc" {
		t.Fatalf("Bytes = %q", got)
	}
	rest, err := io.ReadAll(plain)
	if err != nil || string(rest) != "TRAILER" {
		t.Errorf("trailing read = %q, %v; want TRAILER", rest, err)
	}
}

func TestCkptHeaderRejectsMismatch(t *testing.T) {
	encode := func(name string, version uint64) []byte {
		var buf bytes.Buffer
		cw := NewCkptWriter(&buf)
		cw.Header(name, version)
		return buf.Bytes()
	}

	cr := NewCkptReader(bytes.NewReader(encode("tage", 1)))
	cr.Header("gshare")
	if err := cr.Err(); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("wrong-name header: err = %v, want ErrCorrupt", err)
	}

	bad := encode("gshare", 1)
	copy(bad, "XXXX")
	cr = NewCkptReader(bytes.NewReader(bad))
	cr.Header("gshare")
	if err := cr.Err(); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}

	// Version flows back to the caller; the helper does not judge it.
	cr = NewCkptReader(bytes.NewReader(encode("gshare", 9)))
	if v := cr.Header("gshare"); v != 9 || cr.Err() != nil {
		t.Errorf("Header = %d, %v", v, cr.Err())
	}
}

func TestCkptReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCkptWriter(&buf)
	cw.Header("demo", 1)
	cw.U64s([]uint64{1, 2, 3, 4})
	full := buf.Bytes()

	// Every proper prefix must fail as truncated, never panic or succeed.
	for n := 0; n < len(full); n++ {
		cr := NewCkptReader(bytes.NewReader(full[:n]))
		cr.Header("demo")
		cr.U64s()
		if err := cr.Err(); !errors.Is(err, faults.ErrTruncated) {
			t.Fatalf("prefix %d/%d: err = %v, want ErrTruncated", n, len(full), err)
		}
	}
}

func TestCkptReaderLimitsAllocations(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCkptWriter(&buf)
	cw.U64(1 << 40) // implausible length prefix
	cr := NewCkptReader(bytes.NewReader(buf.Bytes()))
	if got := cr.Bytes(); got != nil {
		t.Errorf("Bytes on hostile length returned %d bytes", len(got))
	}
	if err := cr.Err(); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("hostile length: err = %v, want ErrCorrupt", err)
	}

	cr = NewCkptReader(bytes.NewReader(buf.Bytes()))
	if got := cr.U64s(); got != nil {
		t.Errorf("U64s on hostile length returned %d entries", len(got))
	}
	if err := cr.Err(); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("hostile slice length: err = %v, want ErrCorrupt", err)
	}
}

func TestCkptReaderBadBool(t *testing.T) {
	var buf bytes.Buffer
	cw := NewCkptWriter(&buf)
	cw.U64(2)
	cr := NewCkptReader(bytes.NewReader(buf.Bytes()))
	cr.Bool()
	if err := cr.Err(); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("Bool(2): err = %v, want ErrCorrupt", err)
	}
}

func TestCkptReaderStickyError(t *testing.T) {
	cr := NewCkptReader(strings.NewReader(""))
	cr.U64()
	first := cr.Err()
	if first == nil {
		t.Fatal("expected error on empty stream")
	}
	cr.Corrupt("later corruption")
	cr.I64()
	if cr.Err() != first {
		t.Errorf("error not sticky: %v then %v", first, cr.Err())
	}
}

func TestCkptWriterStickyError(t *testing.T) {
	cw := NewCkptWriter(failWriter{})
	cw.Header("demo", 1)
	cw.U64(7)
	if cw.Err() == nil {
		t.Fatal("expected write error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }
