// Package prof wires runtime/pprof into the CLIs: one call at startup, one
// deferred call at exit, driven by the conventional -cpuprofile and
// -memprofile flags. Profiles are written in the format `go tool pprof`
// expects.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges for a heap profile
// to be written to memPath; either path may be empty to disable that
// profile. It returns a stop function that must run before the process
// exits (deferred in the CLI run functions, which return an exit code
// instead of calling os.Exit directly for exactly this reason): stop
// finishes the CPU profile and captures the heap profile after a final GC,
// so the numbers reflect live memory, not garbage awaiting collection.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("mem profile: %w", err)
				}
				return firstErr
			}
			runtime.GC() // flush garbage so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("mem profile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("mem profile: %w", err)
			}
		}
		return firstErr
	}, nil
}
