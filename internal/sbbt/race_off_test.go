//go:build !race

package sbbt

// raceEnabled mirrors the build's -race flag so allocation-count tests can
// skip themselves: race instrumentation adds its own allocations.
const raceEnabled = false
