package sbbt

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"

	"mbplib/internal/bp"
)

// TestHeaderLayout pins the exact byte layout of Fig. 1: "SBBT\n", three
// version bytes, then two little-endian 64-bit totals.
func TestHeaderLayout(t *testing.T) {
	h := NewHeader(0x0102030405060708, 0x1112131415161718)
	buf := h.AppendTo(nil)
	if len(buf) != HeaderSize {
		t.Fatalf("header size = %d, want %d", len(buf), HeaderSize)
	}
	want := []byte{
		'S', 'B', 'B', 'T', '\n',
		1, 0, 0,
		0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // LE instructions
		0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11, // LE branches
	}
	if !bytes.Equal(buf, want) {
		t.Errorf("header bytes\n got %x\nwant %x", buf, want)
	}
	back, err := ParseHeader(buf)
	if err != nil {
		t.Fatalf("ParseHeader: %v", err)
	}
	if back != h {
		t.Errorf("header round trip: got %+v, want %+v", back, h)
	}
	if h.Version() != "1.0.0" {
		t.Errorf("Version() = %q", h.Version())
	}
}

func TestParseHeaderErrors(t *testing.T) {
	good := NewHeader(10, 2).AppendTo(nil)

	if _, err := ParseHeader(good[:10]); err == nil {
		t.Errorf("short header accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := ParseHeader(bad); err == nil {
		t.Errorf("bad signature accepted")
	}
	bad = append([]byte(nil), good...)
	bad[5] = 2 // unsupported major version
	if _, err := ParseHeader(bad); err == nil {
		t.Errorf("future major version accepted")
	}
}

// TestPacketLayout pins the exact bit layout of Fig. 2.
func TestPacketLayout(t *testing.T) {
	ev := bp.Event{
		Branch: bp.Branch{
			IP:     0x0000_7fff_1234_5678,
			Target: 0x0000_7eee_9abc_def0,
			Opcode: bp.OpCondJump,
			Taken:  true,
		},
		InstrsSinceLastBranch: 0xabc,
	}
	buf, err := EncodePacket(nil, ev)
	if err != nil {
		t.Fatalf("EncodePacket: %v", err)
	}
	if len(buf) != PacketSize {
		t.Fatalf("packet size = %d, want %d", len(buf), PacketSize)
	}
	block1 := binary.LittleEndian.Uint64(buf[0:8])
	block2 := binary.LittleEndian.Uint64(buf[8:16])
	if got := block1 >> 12; got != ev.Branch.IP {
		t.Errorf("block1 address bits = %#x, want %#x", got, ev.Branch.IP)
	}
	if got := bp.Opcode(block1 & 0xf); got != bp.OpCondJump {
		t.Errorf("opcode bits = %#x", uint8(got))
	}
	if block1>>4&0x7f != 0 {
		t.Errorf("reserved bits set: %#x", block1)
	}
	if block1>>11&1 != 1 {
		t.Errorf("outcome bit not set")
	}
	if got := block2 >> 12; got != ev.Branch.Target {
		t.Errorf("block2 address bits = %#x, want %#x", got, ev.Branch.Target)
	}
	if got := block2 & 0xfff; got != 0xabc {
		t.Errorf("instruction gap bits = %#x, want 0xabc", got)
	}
	back, err := DecodePacket(buf)
	if err != nil {
		t.Fatalf("DecodePacket: %v", err)
	}
	if back != ev {
		t.Errorf("packet round trip: got %+v, want %+v", back, ev)
	}
}

func TestHighAddressSignExtension(t *testing.T) {
	// A kernel-space style address whose bit 51 is set must survive the
	// arithmetic-shift decoding with its 64-bit sign extension.
	ev := bp.Event{Branch: bp.Branch{
		IP: 0xffff_ffff_ff60_0000, Target: 0xffff_ffff_ff60_1000,
		Opcode: bp.OpCondJump, Taken: true,
	}}
	buf, err := EncodePacket(nil, ev)
	if err != nil {
		t.Fatalf("EncodePacket: %v", err)
	}
	back, err := DecodePacket(buf)
	if err != nil {
		t.Fatalf("DecodePacket: %v", err)
	}
	if back.Branch.IP != ev.Branch.IP || back.Branch.Target != ev.Branch.Target {
		t.Errorf("high address round trip: got %#x/%#x", back.Branch.IP, back.Branch.Target)
	}
}

func TestCanonicalAddress(t *testing.T) {
	good := []uint64{0, 1, 0x7fff_ffff_ffff, 0xffff_f800_0000_0000, ^uint64(0)}
	bad := []uint64{1 << 52, 0x0010_0000_0000_0000, 0x8000_0000_0000_0000}
	for _, a := range good {
		if !CanonicalAddress(a) {
			t.Errorf("CanonicalAddress(%#x) = false", a)
		}
	}
	for _, a := range bad {
		if CanonicalAddress(a) {
			t.Errorf("CanonicalAddress(%#x) = true", a)
		}
	}
}

func TestEncodePacketRejectsInvalid(t *testing.T) {
	cases := []bp.Event{
		// Non-conditional not taken.
		{Branch: bp.Branch{IP: 4, Target: 8, Opcode: bp.OpJump, Taken: false}},
		// Not-taken conditional indirect with non-null target.
		{Branch: bp.Branch{IP: 4, Target: 8, Opcode: bp.NewOpcode(bp.Jump, true, true), Taken: false}},
		// Non-canonical IP.
		{Branch: bp.Branch{IP: 1 << 53, Target: 8, Opcode: bp.OpCondJump, Taken: true}},
		// Non-canonical target.
		{Branch: bp.Branch{IP: 4, Target: 1 << 53, Opcode: bp.OpCondJump, Taken: true}},
		// Gap above 4095.
		{Branch: bp.Branch{IP: 4, Target: 8, Opcode: bp.OpCondJump, Taken: true}, InstrsSinceLastBranch: 4096},
	}
	for i, ev := range cases {
		if _, err := EncodePacket(nil, ev); err == nil {
			t.Errorf("case %d: invalid event encoded", i)
		}
	}
}

func TestDecodePacketRejectsReservedBits(t *testing.T) {
	ev := bp.Event{Branch: bp.Branch{IP: 4, Target: 8, Opcode: bp.OpCondJump, Taken: true}}
	buf, _ := EncodePacket(nil, ev)
	buf[0] |= 1 << 5 // a reserved bit
	if _, err := DecodePacket(buf); err == nil {
		t.Errorf("packet with reserved bits accepted")
	}
}

func TestDecodePacketShort(t *testing.T) {
	if _, err := DecodePacket(make([]byte, 8)); err == nil {
		t.Errorf("short packet accepted")
	}
}

// Property: every valid event round-trips exactly through the packet codec.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(ipSeed, targetSeed uint64, opSeed uint8, taken bool, gap uint16) bool {
		op := bp.NewOpcode(bp.BaseType(opSeed%3), opSeed&4 != 0, opSeed&8 != 0)
		ev := bp.Event{
			Branch: bp.Branch{
				IP:     ipSeed & (1<<51 - 1), // keep canonical
				Target: targetSeed & (1<<51 - 1),
				Opcode: op,
				Taken:  taken,
			},
			InstrsSinceLastBranch: uint64(gap) & bp.MaxInstrGap,
		}
		// Repair outcome/target to satisfy the validity rules.
		if !op.IsConditional() {
			ev.Branch.Taken = true
		}
		if op.IsConditional() && op.IsIndirect() && !ev.Branch.Taken {
			ev.Branch.Target = 0
		}
		buf, err := EncodePacket(nil, ev)
		if err != nil {
			return false
		}
		back, err := DecodePacket(buf)
		return err == nil && back == ev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func sampleEvents(n int) []bp.Event {
	evs := make([]bp.Event, n)
	for i := range evs {
		op := bp.OpCondJump
		taken := i%3 != 0
		switch i % 5 {
		case 3:
			op, taken = bp.OpCall, true
		case 4:
			op, taken = bp.OpRet, true
		}
		evs[i] = bp.Event{
			Branch: bp.Branch{
				IP:     0x400000 + uint64(i%97)*4,
				Target: 0x500000 + uint64(i%31)*16,
				Opcode: op,
				Taken:  taken,
			},
			InstrsSinceLastBranch: uint64(i % 9),
		}
	}
	return evs
}

func writeTrace(t *testing.T, evs []bp.Event) []byte {
	t.Helper()
	var instrs uint64
	for _, ev := range evs {
		instrs += ev.InstrsSinceLastBranch + 1
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, instrs, uint64(len(evs)))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestReaderWriterRoundTrip(t *testing.T) {
	evs := sampleEvents(10000) // spans multiple reader buffer fills
	data := writeTrace(t, evs)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.TotalBranches() != uint64(len(evs)) {
		t.Errorf("TotalBranches = %d, want %d", r.TotalBranches(), len(evs))
	}
	for i, want := range evs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("after last event, Read err = %v, want io.EOF", err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("repeated Read err = %v, want io.EOF", err)
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	data := writeTrace(t, sampleEvents(100))
	// Cut in the middle of a packet.
	r, err := NewReader(bytes.NewReader(data[:HeaderSize+PacketSize*10+5]))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var lastErr error
	for i := 0; i < 200; i++ {
		if _, lastErr = r.Read(); lastErr != nil {
			break
		}
	}
	if lastErr == nil || !bytes.Contains([]byte(lastErr.Error()), []byte("mid-packet")) {
		t.Errorf("mid-packet truncation error = %v", lastErr)
	}
	// Cut at a packet boundary before the promised count.
	r, err = NewReader(bytes.NewReader(data[:HeaderSize+PacketSize*10]))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	for i := 0; i < 200; i++ {
		if _, lastErr = r.Read(); lastErr != nil {
			break
		}
	}
	if lastErr == nil || lastErr == io.EOF {
		t.Errorf("boundary truncation error = %v, want branch-count mismatch", lastErr)
	}
}

func TestNewReaderErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("SB"))); err == nil {
		t.Errorf("truncated header accepted")
	}
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Errorf("zeroed header accepted")
	}
}

func TestWriterEnforcesTotals(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 100, 2)
	ev := bp.Event{Branch: bp.Branch{IP: 4, Target: 8, Opcode: bp.OpCondJump, Taken: true}}
	if err := w.Write(ev); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Errorf("Close with missing branches succeeded")
	}

	buf.Reset()
	w, _ = NewWriter(&buf, 100, 1)
	_ = w.Write(ev)
	if err := w.Write(ev); err == nil {
		t.Errorf("Write beyond promised count succeeded")
	}

	buf.Reset()
	w, _ = NewWriter(&buf, 0, 1) // header promises 0 instructions
	_ = w.Write(ev)
	if err := w.Close(); err == nil {
		t.Errorf("Close with instruction undercount succeeded")
	}
}

func TestWriterRejectsInvalidEventButContinues(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 10, 1)
	bad := bp.Event{Branch: bp.Branch{IP: 4, Target: 8, Opcode: bp.OpJump, Taken: false}}
	if err := w.Write(bad); err == nil {
		t.Fatalf("invalid event accepted")
	}
	good := bp.Event{Branch: bp.Branch{IP: 4, Target: 8, Opcode: bp.OpCondJump, Taken: true}}
	if err := w.Write(good); err != nil {
		t.Fatalf("writer unusable after rejected event: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestTraceSizeIsHeaderPlusPackets(t *testing.T) {
	evs := sampleEvents(123)
	data := writeTrace(t, evs)
	if want := HeaderSize + len(evs)*PacketSize; len(data) != want {
		t.Errorf("trace size = %d, want %d", len(data), want)
	}
}
