package sbbt

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"mbplib/internal/bp"
)

// packRaw assembles a one-packet trace by hand, bypassing EncodePacket so
// the test can express bit patterns the encoder refuses to produce.
func packRaw(block1, block2 uint64) []byte {
	buf := NewHeader(8, 1).AppendTo(nil)
	buf = binary.LittleEndian.AppendUint64(buf, block1)
	return binary.LittleEndian.AppendUint64(buf, block2)
}

// block1 packs the first packet word from its fields without any validity
// filtering: ip in the top 52 bits, the outcome at bit 11, the opcode nibble
// at the bottom.
func block1(ip uint64, op uint8, taken bool) uint64 {
	b := ip<<12 | uint64(op&0xf)
	if taken {
		b |= 1 << 11
	}
	return b
}

// TestReaderRejectsInvalidBranches drives the §IV-C validity rules through
// the SBBT reader with hand-packed packets: each case encodes a branch the
// format declares impossible, and the reader must refuse it rather than
// hand it to the simulator.
func TestReaderRejectsInvalidBranches(t *testing.T) {
	const (
		opUncondJump = 0b0000 // UNCD DIR JMP
		opCondInd    = 0b0011 // COND IND JMP
		opBadBase    = 0b1100 // base type 0b11 is undefined
	)
	cases := []struct {
		name    string
		trace   []byte
		wantErr string
	}{
		{
			name:    "invalid opcode base bits",
			trace:   packRaw(block1(0x4000, opBadBase, true), 0x4040<<12|3),
			wantErr: "invalid opcode",
		},
		{
			name:    "not-taken unconditional",
			trace:   packRaw(block1(0x4000, opUncondJump, false), 0x4040<<12|3),
			wantErr: "marked not taken",
		},
		{
			name:    "not-taken conditional indirect with non-null target",
			trace:   packRaw(block1(0x4000, opCondInd, false), 0x4040<<12|3),
			wantErr: "non-null target",
		},
		{
			name:    "reserved bits set",
			trace:   packRaw(block1(0x4000, opUncondJump, true)|1<<4, 0x4040<<12|3),
			wantErr: "reserved bits",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewReader(bytes.NewReader(tc.trace))
			if err != nil {
				t.Fatalf("header rejected: %v", err)
			}
			_, err = r.Read()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Read() error = %v, want one containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestReaderAcceptsValidEdgeCases is the conforming counterpart: the same
// shapes with their validity conditions satisfied must read back intact,
// including the boundary case of a not-taken conditional indirect branch
// with a null target.
func TestReaderAcceptsValidEdgeCases(t *testing.T) {
	events := []bp.Event{
		{Branch: bp.Branch{IP: 0x4000, Target: 0x4040, Opcode: bp.OpJump, Taken: true}, InstrsSinceLastBranch: 3},
		{Branch: bp.Branch{IP: 0x4008, Target: 0, Opcode: bp.NewOpcode(bp.Jump, true, true), Taken: false}, InstrsSinceLastBranch: 1},
		{Branch: bp.Branch{IP: 0x4010, Target: 0x5000, Opcode: bp.OpCondJump, Taken: false}, InstrsSinceLastBranch: 0},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 16, uint64(len(events)))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := w.Write(ev); err != nil {
			t.Fatalf("Write(%+v): %v", ev, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range events {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("Read() event %d: %v", i, err)
		}
		if got != want {
			t.Errorf("event %d = %+v, want %+v", i, got, want)
		}
	}
}
