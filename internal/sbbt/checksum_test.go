package sbbt

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
)

func writeChecksummedTrace(t *testing.T, evs []bp.Event) []byte {
	t.Helper()
	var instrs uint64
	for _, ev := range evs {
		instrs += ev.InstrsSinceLastBranch + 1
	}
	var buf bytes.Buffer
	w, err := NewChecksumWriter(&buf, instrs, uint64(len(evs)))
	if err != nil {
		t.Fatalf("NewChecksumWriter: %v", err)
	}
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// TestChecksumRoundTrip spans several checksum chunks (including a final
// partial one) and verifies the event stream is unchanged by the extension.
func TestChecksumRoundTrip(t *testing.T) {
	evs := sampleEvents(2*ChecksumChunkPackets + 123)
	data := writeChecksummedTrace(t, evs)

	chunks := (len(evs) + ChecksumChunkPackets - 1) / ChecksumChunkPackets
	want := HeaderSize + ChecksumSize + len(evs)*PacketSize + chunks*ChecksumSize
	if len(data) != want {
		t.Errorf("checksummed trace size = %d, want %d", len(data), want)
	}

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if !r.Header().Checksummed {
		t.Errorf("Header().Checksummed = false")
	}
	if r.TotalBranches() != uint64(len(evs)) {
		t.Errorf("TotalBranches = %d, want %d", r.TotalBranches(), len(evs))
	}
	for i, want := range evs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("after last event, Read err = %v, want io.EOF", err)
	}
}

func TestChecksumEmptyTrace(t *testing.T) {
	data := writeChecksummedTrace(t, nil)
	if want := HeaderSize + ChecksumSize; len(data) != want {
		t.Errorf("empty checksummed trace size = %d, want %d", len(data), want)
	}
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("Read on empty trace err = %v, want io.EOF", err)
	}
}

// TestChecksumDetectsBitFlips flips one bit in every region of a
// checksummed trace — header, header checksum, packets, chunk trailers —
// and requires NewReader or Read to fail with a typed faults error.
func TestChecksumDetectsBitFlips(t *testing.T) {
	evs := sampleEvents(ChecksumChunkPackets + 7) // two chunks
	data := writeChecksummedTrace(t, evs)
	for off := 0; off < len(data); off++ {
		corrupted := append([]byte(nil), data...)
		corrupted[off] ^= 1 << uint(off%8)
		err := readAll(corrupted)
		if err == nil {
			t.Fatalf("offset %d: bit flip not detected", off)
		}
		if faults.Class(err) == "other" {
			t.Fatalf("offset %d: untyped error %v", off, err)
		}
	}
}

func readAll(data []byte) error {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		if _, err := r.Read(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// TestChecksumFreeTracesStillRead pins backward compatibility: a plain
// trace has no checksum flag and reads exactly as before.
func TestChecksumFreeTracesStillRead(t *testing.T) {
	evs := sampleEvents(50)
	data := writeTrace(t, evs)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.Header().Checksummed {
		t.Errorf("plain trace parsed as checksummed")
	}
	for i := range evs {
		if _, err := r.Read(); err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("Read err = %v, want io.EOF", err)
	}
}

func TestNewReaderRejectsHostileHeaders(t *testing.T) {
	// Branch count above the format limit: ErrLimit, before any allocation.
	h := NewHeader(1<<60, 1<<50)
	if _, err := NewReader(bytes.NewReader(h.AppendTo(nil))); !errors.Is(err, faults.ErrLimit) {
		t.Errorf("oversized branch count: err = %v, want ErrLimit", err)
	}
	// More branches than instructions: internally inconsistent.
	h = NewHeader(10, 20)
	if _, err := NewReader(bytes.NewReader(h.AppendTo(nil))); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("branches > instructions: err = %v, want ErrCorrupt", err)
	}
}

func TestNewChecksumWriterRejectsOversizedCount(t *testing.T) {
	if _, err := NewWriter(io.Discard, 1<<60, MaxTraceBranches+1); !errors.Is(err, faults.ErrLimit) {
		t.Errorf("NewWriter over limit: err = %v, want ErrLimit", err)
	}
}

// TestChecksumReaderUnderShortReads verifies the chunk-verification state
// machine is insensitive to read fragmentation.
func TestChecksumReaderUnderShortReads(t *testing.T) {
	evs := sampleEvents(ChecksumChunkPackets + 50)
	data := writeChecksummedTrace(t, evs)
	r, err := NewReader(faults.ShortReads(bytes.NewReader(data), 7))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	for i, want := range evs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d mismatch", i)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("Read err = %v, want io.EOF", err)
	}
}
