package sbbt

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mbplib/internal/bp"
)

// drainBatches reads the whole trace through ReadBatch with the given dst
// size, reusing dst across calls, and returns every event plus the final
// error.
func drainBatches(t *testing.T, r *Reader, dstLen int) ([]bp.Event, error) {
	t.Helper()
	dst := make([]bp.Event, dstLen)
	var all []bp.Event
	for {
		n, err := r.ReadBatch(dst)
		all = append(all, dst[:n]...)
		if err != nil {
			return all, err
		}
		if n == 0 {
			t.Fatal("ReadBatch returned (0, nil): progress guarantee violated")
		}
	}
}

func TestReadBatchMatchesRead(t *testing.T) {
	evs := sampleEvents(10000) // spans multiple reader buffer fills
	data := writeTrace(t, evs)

	// Batch sizes around the internal buffer size and awkward odd sizes.
	for _, dstLen := range []int{1, 7, 100, 4096, 5000, 20000} {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		got, err := drainBatches(t, r, dstLen)
		if err != io.EOF {
			t.Fatalf("dstLen %d: final error = %v, want io.EOF", dstLen, err)
		}
		if len(got) != len(evs) {
			t.Fatalf("dstLen %d: read %d events, want %d", dstLen, len(got), len(evs))
		}
		for i := range evs {
			if got[i] != evs[i] {
				t.Fatalf("dstLen %d: event %d = %+v, want %+v", dstLen, i, got[i], evs[i])
			}
		}
		// Sticky after EOF.
		if n, err := r.ReadBatch(make([]bp.Event, 4)); n != 0 || err != io.EOF {
			t.Errorf("dstLen %d: post-EOF ReadBatch = (%d, %v)", dstLen, n, err)
		}
	}
}

func TestReadBatchMixedWithRead(t *testing.T) {
	evs := sampleEvents(1000)
	data := writeTrace(t, evs)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var got []bp.Event
	dst := make([]bp.Event, 64)
	for turn := 0; ; turn++ {
		if turn%2 == 0 {
			ev, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			got = append(got, ev)
			continue
		}
		n, err := r.ReadBatch(dst)
		got = append(got, dst[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
	}
	if len(got) != len(evs) {
		t.Fatalf("read %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], evs[i])
		}
	}
}

func TestReadBatchTruncatedMidBatch(t *testing.T) {
	evs := sampleEvents(100)
	data := writeTrace(t, evs)
	// Cut inside packet 51: 50 whole packets remain.
	cut := data[:HeaderSize+50*PacketSize+3]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got, err := drainBatches(t, r, 64)
	if !errors.Is(err, bp.ErrTruncated) {
		t.Fatalf("final error = %v, want ErrTruncated", err)
	}
	if len(got) != 50 {
		t.Fatalf("decoded %d events before truncation, want 50", len(got))
	}
	for i := range got {
		if got[i] != evs[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], evs[i])
		}
	}
	// The error must be sticky.
	if n, err := r.ReadBatch(make([]bp.Event, 4)); n != 0 || !errors.Is(err, bp.ErrTruncated) {
		t.Errorf("post-error ReadBatch = (%d, %v)", n, err)
	}
}

func TestReadBatchChecksummedTrace(t *testing.T) {
	evs := sampleEvents(5000)
	var instrs uint64
	for _, ev := range evs {
		instrs += ev.InstrsSinceLastBranch + 1
	}
	var buf bytes.Buffer
	w, err := NewChecksumWriter(&buf, instrs, uint64(len(evs)))
	if err != nil {
		t.Fatalf("NewChecksumWriter: %v", err)
	}
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got, err := drainBatches(t, r, 512)
	if err != io.EOF {
		t.Fatalf("final error = %v, want io.EOF", err)
	}
	if len(got) != len(evs) {
		t.Fatalf("read %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}

func TestReadBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	evs := sampleEvents(50000)
	data := writeTrace(t, evs)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	dst := make([]bp.Event, 4096)
	if _, err := r.ReadBatch(dst); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := r.ReadBatch(dst); err != nil && err != io.EOF {
			t.Fatalf("ReadBatch: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("ReadBatch allocates %.1f times per batch, want 0", allocs)
	}
}
