package sbbt

import (
	"bytes"
	"io"
	"testing"

	"mbplib/internal/bp"
)

// FuzzSBBTRoundTrip exercises the bit-packing invariants that mbpvet's
// bitwidth rule protects statically (52-bit addresses, 12-bit gap, 4-bit
// opcode): any byte string either fails to decode with an error, or
// decodes into events that re-encode to the identical bytes. It drives
// both the packet codec and the full Reader/Writer stack.
func FuzzSBBTRoundTrip(f *testing.F) {
	// Seed corpus: a valid one-packet trace, a truncated one, and noise.
	var valid []byte
	valid = NewHeader(10, 1).AppendTo(valid)
	valid, err := EncodePacket(valid, bp.Event{
		Branch:                bp.Branch{IP: 0x400_0000, Target: 0x400_0040, Opcode: bp.OpCondJump, Taken: true},
		InstrsSinceLastBranch: 7,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("SBBT\n\x01\x00\x00garbage"))
	f.Add(bytes.Repeat([]byte{0xff}, HeaderSize+2*PacketSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Packet-level: decode arbitrary 16 bytes; a successful decode must
		// re-encode to the same bits (the format has no redundant states).
		if len(data) >= PacketSize {
			if ev, err := DecodePacket(data[:PacketSize]); err == nil {
				re, err := EncodePacket(nil, ev)
				if err != nil {
					t.Fatalf("decoded event %+v rejected by encoder: %v", ev, err)
				}
				if !bytes.Equal(re, data[:PacketSize]) {
					t.Fatalf("packet round-trip mismatch:\n in  %x\n out %x", data[:PacketSize], re)
				}
			}
		}

		// Stream-level: read everything; if the whole trace is valid,
		// rewrite it and require identical bytes.
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var events []bp.Event
		var instrs uint64
		for {
			ev, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // invalid mid-stream: rejection is the correct outcome
			}
			events = append(events, ev)
			instrs += ev.InstrsSinceLastBranch + 1
		}
		// The reader tolerates surplus packets, understated instruction
		// totals and newer minor versions; the writer normalizes all three.
		// Only traces a current writer could have produced are expected to
		// survive a byte-identical re-encode.
		hdr := r.Header()
		if hdr != NewHeader(hdr.TotalInstructions, hdr.TotalBranches) ||
			uint64(len(events)) != hdr.TotalBranches || instrs > hdr.TotalInstructions {
			return
		}
		var out bytes.Buffer
		w, err := NewWriter(&out, hdr.TotalInstructions, hdr.TotalBranches)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			if err := w.Write(ev); err != nil {
				t.Fatalf("valid event %+v rejected on re-encode: %v", ev, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("re-encode close: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("trace round-trip mismatch: %d in, %d out", len(data), out.Len())
		}
	})
}
