// Package sbbt implements the Simple Binary Branch Trace format, version
// 1.0.0, as specified in §IV-C of the MBPlib paper (Figs. 1 and 2).
//
// An SBBT trace is a 192-bit header followed by a concatenation of 128-bit
// packets, one per dynamic branch. In contrast to the BT9 text format it
// replaces, SBBT has no branch-graph section: each packet carries the full
// description of its branch, so the reader is a straight-line stream decoder
// with no hashed metadata lookups — the property the paper credits for most
// of the simulation speedup (§VII-D).
//
// Header (24 bytes):
//
//	bytes 0-4   signature "SBBT\n"
//	bytes 5-7   version: major, minor, patch as unsigned 8-bit numbers
//	bytes 8-15  number of instructions executed while tracing (uint64 LE)
//	bytes 16-23 number of branches in the trace (uint64 LE)
//
// Packet (16 bytes, two little-endian 64-bit blocks):
//
//	block 1: bits 12-63 branch instruction address (52 bits)
//	         bits 0-3   opcode (see bp.Opcode)
//	         bits 4-10  reserved, must be zero
//	         bit  11    outcome (1 = taken)
//	block 2: bits 12-63 branch target address (52 bits)
//	         bits 0-11  instructions executed since the previous branch,
//	                    counting neither branch (≤ 4095)
//
// Addresses store the low 52 bits of the virtual address in the top 52 bits
// of the block; decoding performs an arithmetic right shift by 12, which
// sign-extends bit 51 so that both the 48-bit x86-64 and the 52-bit ARMv8-A
// (LVA) canonical address spaces round-trip exactly.
//
// # Integrity checksums
//
// As an extension to the paper's format, a trace may carry CRC-32C
// checksums. The extension is flagged in bit 63 of the branch-count header
// word, which is far beyond any plausible branch count (readers cap counts
// at MaxTraceBranches) and is zero in every pre-existing trace, so
// checksum-free traces keep reading unchanged. When the flag is set, the
// 24-byte header is followed by a 4-byte little-endian CRC-32C of those 24
// bytes, and the packet stream is divided into chunks of
// ChecksumChunkPackets packets, each followed by a 4-byte little-endian
// CRC-32C of the chunk's packet bytes; the final, possibly partial, chunk is
// checksummed too. See DESIGN.md for the rationale and compatibility rules.
//
// All decoding errors are classified with the internal/faults taxonomy:
// malformed bytes wrap faults.ErrCorrupt, premature end of input wraps
// faults.ErrTruncated (aliased as bp.ErrTruncated), and implausible
// header-declared sizes wrap faults.ErrLimit.
package sbbt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
)

// Signature is the 5-byte magic that opens every SBBT trace.
var Signature = [5]byte{'S', 'B', 'B', 'T', '\n'}

// Format version implemented by this package.
const (
	VersionMajor = 1
	VersionMinor = 0
	VersionPatch = 0
)

// HeaderSize and PacketSize are the encoded sizes in bytes.
const (
	HeaderSize = 24
	PacketSize = 16
)

// Checksum-extension constants.
const (
	// ChecksumChunkPackets is the number of packets covered by each CRC-32C
	// chunk trailer in a checksummed trace (64 KiB of packet data).
	ChecksumChunkPackets = 4096
	// ChecksumSize is the encoded size of each CRC-32C value.
	ChecksumSize = 4
	// checksumFlagBit is the bit of the branch-count header word that marks
	// a checksummed trace. Branch counts occupy bits 0-62.
	checksumFlagBit = 63
)

// MaxTraceBranches is the largest branch count a reader accepts from a
// header. 2^48 branches is three orders of magnitude beyond the largest
// published CBP-5 traces; a count above it marks the trace hostile or
// corrupt and is rejected with faults.ErrLimit before any allocation.
const MaxTraceBranches = 1 << 48

// castagnoli is the CRC-32C table shared by writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the decoded SBBT trace header.
type Header struct {
	Major, Minor, Patch uint8
	// TotalInstructions is the number of instructions (branch and
	// non-branch) executed by the processor during tracing.
	TotalInstructions uint64
	// TotalBranches is the number of branch packets in the trace.
	TotalBranches uint64
	// Checksummed marks a trace that carries the CRC-32C extension: a
	// header checksum plus per-chunk packet checksums (see the package
	// documentation). It is encoded as bit 63 of the branch-count word.
	Checksummed bool
}

// NewHeader returns a current-version header with the given totals.
func NewHeader(totalInstructions, totalBranches uint64) Header {
	return Header{
		Major: VersionMajor, Minor: VersionMinor, Patch: VersionPatch,
		TotalInstructions: totalInstructions,
		TotalBranches:     totalBranches,
	}
}

// Version renders the header version as "major.minor.patch".
func (h Header) Version() string {
	return fmt.Sprintf("%d.%d.%d", h.Major, h.Minor, h.Patch)
}

// AppendTo encodes the header into buf, which must have room for HeaderSize
// bytes, and returns the extended slice.
func (h Header) AppendTo(buf []byte) []byte {
	buf = append(buf, Signature[:]...)
	buf = append(buf, h.Major, h.Minor, h.Patch)
	buf = binary.LittleEndian.AppendUint64(buf, h.TotalInstructions)
	branchWord := h.TotalBranches
	if h.Checksummed {
		branchWord |= 1 << checksumFlagBit
	}
	buf = binary.LittleEndian.AppendUint64(buf, branchWord)
	return buf
}

// ParseHeader decodes a header from the first HeaderSize bytes of buf. It
// validates only the fixed layout (signature, major version); plausibility
// of the declared totals is enforced by NewReader, which is where the totals
// drive allocation.
func ParseHeader(buf []byte) (Header, error) {
	if len(buf) < HeaderSize {
		return Header{}, fmt.Errorf("sbbt: header needs %d bytes, have %d: %w", HeaderSize, len(buf), bp.ErrTruncated)
	}
	if [5]byte(buf[:5]) != Signature {
		return Header{}, fmt.Errorf("sbbt: bad signature: %w", faults.ErrCorrupt)
	}
	branchWord := binary.LittleEndian.Uint64(buf[16:24])
	h := Header{
		Major: buf[5], Minor: buf[6], Patch: buf[7],
		TotalInstructions: binary.LittleEndian.Uint64(buf[8:16]),
		TotalBranches:     branchWord &^ (1 << checksumFlagBit),
		Checksummed:       branchWord>>checksumFlagBit&1 == 1,
	}
	if h.Major != VersionMajor {
		return Header{}, fmt.Errorf("sbbt: unsupported major version %d (want %d): %w", h.Major, VersionMajor, faults.ErrCorrupt)
	}
	return h, nil
}

// Address-encoding limits: a virtual address round-trips iff it is canonical
// for a 52-bit address space, i.e. bits 52-63 are a sign extension of bit 51.
const (
	addrShift = 12
	lowMask   = uint64(1)<<addrShift - 1 // low 12 bits of a block
)

// CanonicalAddress reports whether addr is representable in an SBBT block.
func CanonicalAddress(addr uint64) bool {
	top := int64(addr) >> 51
	return top == 0 || top == -1
}

// Packet field offsets within block 1.
const (
	opcodeMask  = uint64(0xf)
	reservedBit = 4
	outcomeBit  = 11
)

// EncodePacket encodes one branch event into buf, which must have room for
// PacketSize bytes, returning the extended slice. It returns an error if the
// event violates the format rules (invalid opcode or outcome combination,
// non-canonical address, or an instruction gap above 4095).
func EncodePacket(buf []byte, ev bp.Event) ([]byte, error) {
	b := ev.Branch
	if err := b.Validate(); err != nil {
		return buf, err
	}
	if !CanonicalAddress(b.IP) {
		return buf, fmt.Errorf("sbbt: branch address %#x not canonical for 52-bit encoding", b.IP)
	}
	if !CanonicalAddress(b.Target) {
		return buf, fmt.Errorf("sbbt: target address %#x not canonical for 52-bit encoding", b.Target)
	}
	if ev.InstrsSinceLastBranch > bp.MaxInstrGap {
		return buf, fmt.Errorf("sbbt: %d instructions between branches exceeds the 12-bit limit %d", ev.InstrsSinceLastBranch, bp.MaxInstrGap)
	}
	block1 := b.IP<<addrShift | uint64(b.Opcode)&opcodeMask
	if b.Taken {
		block1 |= 1 << outcomeBit
	}
	block2 := b.Target<<addrShift | ev.InstrsSinceLastBranch
	buf = binary.LittleEndian.AppendUint64(buf, block1)
	buf = binary.LittleEndian.AppendUint64(buf, block2)
	return buf, nil
}

// DecodePacket decodes one packet from the first PacketSize bytes of buf.
// It enforces the format validity rules of §IV-C.
func DecodePacket(buf []byte) (bp.Event, error) {
	if len(buf) < PacketSize {
		return bp.Event{}, fmt.Errorf("sbbt: packet needs %d bytes, have %d: %w", PacketSize, len(buf), bp.ErrTruncated)
	}
	block1 := binary.LittleEndian.Uint64(buf[0:8])
	block2 := binary.LittleEndian.Uint64(buf[8:16])
	if block1>>reservedBit&0x7f != 0 {
		return bp.Event{}, fmt.Errorf("sbbt: reserved bits set in packet %#x: %w", block1, faults.ErrCorrupt)
	}
	ev := bp.Event{
		Branch: bp.Branch{
			IP:     uint64(int64(block1) >> addrShift),
			Target: uint64(int64(block2) >> addrShift),
			Opcode: bp.Opcode(block1 & opcodeMask),
			Taken:  block1>>outcomeBit&1 == 1,
		},
		InstrsSinceLastBranch: block2 & lowMask,
	}
	if err := ev.Branch.Validate(); err != nil {
		return bp.Event{}, fmt.Errorf("%w: %w", err, faults.ErrCorrupt)
	}
	return ev, nil
}

// Reader streams branch events from an SBBT trace. It implements bp.Reader
// and bp.Sizer. Create one with NewReader.
type Reader struct {
	r      io.Reader
	header Header
	buf    []byte // read-ahead buffer
	pos    int    // consume position in buf
	end    int    // valid bytes in buf
	read   uint64 // packets decoded so far
	err    error
}

// readerBufPackets is the number of packets fetched per underlying read.
const readerBufPackets = 4096

// NewReader consumes and validates the header of an SBBT trace and returns
// a Reader positioned at the first packet. The input must already be
// decompressed (see package compress for auto-detection).
//
// Beyond the layout checks of ParseHeader, NewReader rejects headers whose
// declared sizes are implausible — a branch count above MaxTraceBranches
// (faults.ErrLimit) or more branches than instructions (faults.ErrCorrupt) —
// so a hostile header cannot drive large allocations. For checksummed
// traces it verifies the header CRC-32C here and then verifies each chunk
// trailer as the packet stream is consumed.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("sbbt: reading header: %w", bp.ErrTruncated)
		}
		return nil, fmt.Errorf("sbbt: reading header: %w", err)
	}
	h, err := ParseHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if h.TotalBranches > MaxTraceBranches {
		return nil, fmt.Errorf("sbbt: header declares %d branches, limit %d: %w", h.TotalBranches, uint64(MaxTraceBranches), faults.ErrLimit)
	}
	if h.TotalBranches > h.TotalInstructions {
		return nil, fmt.Errorf("sbbt: header declares %d branches but only %d instructions: %w", h.TotalBranches, h.TotalInstructions, faults.ErrCorrupt)
	}
	if h.Checksummed {
		var trailer [ChecksumSize]byte
		if _, err := io.ReadFull(r, trailer[:]); err != nil {
			return nil, fmt.Errorf("sbbt: reading header checksum: %w", bp.ErrTruncated)
		}
		want := binary.LittleEndian.Uint32(trailer[:])
		if got := crc32.Checksum(hdr[:], castagnoli); got != want {
			return nil, fmt.Errorf("sbbt: header checksum mismatch (got %#08x, want %#08x): %w", got, want, faults.ErrCorrupt)
		}
		r = &crcChunkReader{r: r, packetsLeft: h.TotalBranches}
	}
	// Size the read-ahead buffer from the (now vetted) branch count so tiny
	// traces do not pay for a 64 KiB buffer.
	bufPackets := uint64(readerBufPackets)
	if h.TotalBranches < bufPackets {
		bufPackets = max(h.TotalBranches, 1)
	}
	return &Reader{r: r, header: h, buf: make([]byte, bufPackets*PacketSize)}, nil
}

// crcChunkReader sits between the raw byte stream and the packet decoder of
// a checksummed trace. It serves only packet bytes, transparently consuming
// and verifying the 4-byte CRC-32C trailer that follows each chunk of up to
// ChecksumChunkPackets packets. After the last chunk's trailer it reports
// io.EOF, so packets beyond the declared branch count are never decoded.
type crcChunkReader struct {
	r           io.Reader
	packetsLeft uint64 // packets not yet assigned to a chunk
	chunkLeft   uint64 // unread packet bytes in the current chunk
	inChunk     bool   // a chunk is open; its trailer is still unread
	crc         uint32
	err         error
}

func (c *crcChunkReader) Read(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	for c.chunkLeft == 0 {
		if c.inChunk {
			// The current chunk's packets are fully consumed: its trailer
			// comes next in the stream.
			var trailer [ChecksumSize]byte
			if _, err := io.ReadFull(c.r, trailer[:]); err != nil {
				c.err = fmt.Errorf("sbbt: reading chunk checksum: %w", bp.ErrTruncated)
				return 0, c.err
			}
			if want := binary.LittleEndian.Uint32(trailer[:]); c.crc != want {
				c.err = fmt.Errorf("sbbt: chunk checksum mismatch (got %#08x, want %#08x): %w", c.crc, want, faults.ErrCorrupt)
				return 0, c.err
			}
			c.inChunk = false
		}
		if c.packetsLeft == 0 {
			c.err = io.EOF
			return 0, c.err
		}
		n := c.packetsLeft
		if n > ChecksumChunkPackets {
			n = ChecksumChunkPackets
		}
		c.packetsLeft -= n
		c.chunkLeft = n * PacketSize
		c.crc = 0
		c.inChunk = true
	}
	if uint64(len(p)) > c.chunkLeft {
		p = p[:c.chunkLeft]
	}
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	c.chunkLeft -= uint64(n)
	if err == io.EOF && c.chunkLeft == 0 {
		// The stream may end exactly with the last packet byte of a chunk
		// while the trailer is still pending; surface the data now and let
		// the next call discover the missing trailer.
		err = nil
	}
	return n, err
}

// Header returns the decoded trace header.
func (r *Reader) Header() Header { return r.header }

// TotalInstructions implements bp.Sizer.
func (r *Reader) TotalInstructions() uint64 { return r.header.TotalInstructions }

// TotalBranches implements bp.Sizer.
func (r *Reader) TotalBranches() uint64 { return r.header.TotalBranches }

// Read returns the next branch event. It returns io.EOF after the last
// packet, and bp.ErrTruncated if the stream ends before the branch count
// promised by the header.
func (r *Reader) Read() (bp.Event, error) {
	if r.err != nil {
		return bp.Event{}, r.err
	}
	if r.end-r.pos < PacketSize {
		if err := r.fill(); err != nil {
			r.err = err
			return bp.Event{}, err
		}
	}
	ev, err := DecodePacket(r.buf[r.pos : r.pos+PacketSize])
	if err != nil {
		r.err = err
		return bp.Event{}, err
	}
	r.pos += PacketSize
	r.read++
	return ev, nil
}

// Packet validity classes, precomputed over the low 12 bits of block 1
// (opcode, reserved bits, outcome) so the batch decoder replaces the
// generic per-packet validation with one table load. See packetClassTable.
const (
	packetBad        = 0 // reserved bits set, bad opcode, or bad outcome
	packetOK         = 1 // valid regardless of the other fields
	packetNeedNullTg = 2 // valid only with a null target (not-taken cond. ind.)
)

// packetClassTable classifies every possible low-12-bit pattern of block 1.
// Valid packets touch at most 32 entries (reserved bits clear), so the
// table stays cache-hot.
var packetClassTable = func() [1 << 12]uint8 {
	var t [1 << 12]uint8
	for bits := range t {
		if uint64(bits)>>reservedBit&0x7f != 0 {
			continue // reserved bits set: packetBad
		}
		op := bp.Opcode(uint64(bits) & opcodeMask)
		taken := uint64(bits)>>outcomeBit&1 == 1
		if (bp.Branch{Opcode: op, Taken: taken}).Validate() != nil {
			// Invalid regardless of target — unless this is the one rule
			// that depends on the target: a not-taken conditional indirect
			// branch is valid exactly when its target is null.
			if op.Valid() && op.IsConditional() && op.IsIndirect() && !taken {
				t[bits] = packetNeedNullTg
			}
			continue
		}
		if op.IsConditional() && op.IsIndirect() && !taken {
			t[bits] = packetNeedNullTg
			continue
		}
		t[bits] = packetOK
	}
	return t
}()

// ReadBatch implements bp.BatchReader: it decodes up to len(dst) packets
// into dst and returns how many it decoded. Whole buffered chunks are
// decoded per fill through a specialised loop — two 8-byte loads, a
// table-driven validity check and a direct store into the caller's slice;
// no per-packet function call, allocation or read syscall. Packets that
// fail the fast check are re-decoded through DecodePacket so the error
// text and fault class are identical to the scalar path's. Errors follow
// the "error after n" contract: dst[:n] is valid even when err is non-nil,
// and the error is sticky thereafter.
func (r *Reader) ReadBatch(dst []bp.Event) (int, error) {
	n := 0
	for n < len(dst) {
		if r.err != nil {
			return n, r.err
		}
		if r.end-r.pos < PacketSize {
			if err := r.fill(); err != nil {
				r.err = err
				return n, err
			}
		}
		// Decode every whole packet the buffer holds, bounded by dst.
		avail := (r.end - r.pos) / PacketSize
		if rem := len(dst) - n; avail > rem {
			avail = rem
		}
		buf := r.buf[r.pos : r.pos+avail*PacketSize]
		for i := 0; i+PacketSize <= len(buf); i += PacketSize {
			block1 := binary.LittleEndian.Uint64(buf[i : i+8])
			block2 := binary.LittleEndian.Uint64(buf[i+8 : i+16])
			target := uint64(int64(block2) >> addrShift)
			switch packetClassTable[block1&(1<<12-1)] {
			case packetOK:
			case packetNeedNullTg:
				if target != 0 {
					return n, r.failPacket()
				}
			default:
				return n, r.failPacket()
			}
			dst[n] = bp.Event{
				Branch: bp.Branch{
					IP:     uint64(int64(block1) >> addrShift),
					Target: target,
					Opcode: bp.Opcode(block1 & opcodeMask),
					Taken:  block1>>outcomeBit&1 == 1,
				},
				InstrsSinceLastBranch: block2 & lowMask,
			}
			r.pos += PacketSize
			r.read++
			n++
		}
	}
	return n, nil
}

// failPacket re-decodes the packet at the current consume position (the
// one the fast check just rejected; r.pos only advances past packets that
// decoded cleanly) through the generic path, producing exactly the
// diagnostic the scalar Read would, and latches it as the sticky error.
func (r *Reader) failPacket() error {
	_, err := DecodePacket(r.buf[r.pos : r.pos+PacketSize])
	if err == nil {
		// Unreachable unless the class table and DecodePacket disagree;
		// fail closed as corruption rather than silently diverging.
		err = fmt.Errorf("sbbt: packet rejected by batch decoder: %w", faults.ErrCorrupt)
	}
	r.err = err
	return err
}

// fill slides leftover bytes to the front of the buffer and reads more.
func (r *Reader) fill() error {
	leftover := copy(r.buf, r.buf[r.pos:r.end])
	r.pos, r.end = 0, leftover
	for r.end < PacketSize {
		n, err := r.r.Read(r.buf[r.end:])
		r.end += n
		if err != nil {
			if err == io.EOF {
				// Readers may return data together with io.EOF; whole
				// buffered packets are still consumable, and the next fill
				// observes the bare EOF.
				if r.end >= PacketSize {
					return nil
				}
				if r.end == 0 {
					if r.read < r.header.TotalBranches {
						return fmt.Errorf("sbbt: trace ends after %d of %d branches: %w", r.read, r.header.TotalBranches, bp.ErrTruncated)
					}
					return io.EOF
				}
				return fmt.Errorf("sbbt: trace ends mid-packet: %w", bp.ErrTruncated)
			}
			return err
		}
	}
	return nil
}

// Writer encodes branch events into an SBBT trace. It implements bp.Writer.
// The totals must be known up front because the header precedes the packets
// and traces are typically written through a non-seekable compression layer.
// Close verifies that exactly the promised number of events were written.
type Writer struct {
	w       io.Writer
	header  Header
	buf     []byte
	written uint64
	instrs  uint64
	err     error
	// Checksum-extension state (used only when header.Checksummed).
	chunkCRC     uint32
	chunkPackets uint64
}

// NewWriter writes the trace header and returns a Writer ready for packets.
func NewWriter(w io.Writer, totalInstructions, totalBranches uint64) (*Writer, error) {
	return newWriter(w, totalInstructions, totalBranches, false)
}

// NewChecksumWriter is NewWriter with the CRC-32C integrity extension
// enabled: the emitted trace carries a header checksum and per-chunk packet
// checksums, and readers verify both (see the package documentation).
func NewChecksumWriter(w io.Writer, totalInstructions, totalBranches uint64) (*Writer, error) {
	return newWriter(w, totalInstructions, totalBranches, true)
}

func newWriter(w io.Writer, totalInstructions, totalBranches uint64, checksummed bool) (*Writer, error) {
	if totalBranches > MaxTraceBranches {
		return nil, fmt.Errorf("sbbt: %d branches exceeds the format limit %d: %w", totalBranches, uint64(MaxTraceBranches), faults.ErrLimit)
	}
	h := NewHeader(totalInstructions, totalBranches)
	h.Checksummed = checksummed
	buf := h.AppendTo(make([]byte, 0, readerBufPackets*PacketSize))
	if checksummed {
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[:HeaderSize], castagnoli))
	}
	return &Writer{w: w, header: h, buf: buf}, nil
}

// Header returns the header this writer emitted.
func (w *Writer) Header() Header { return w.header }

// Write appends one event to the trace.
func (w *Writer) Write(ev bp.Event) error {
	if w.err != nil {
		return w.err
	}
	if w.written == w.header.TotalBranches {
		w.err = fmt.Errorf("sbbt: more than the %d branches promised by the header", w.header.TotalBranches)
		return w.err
	}
	buf, err := EncodePacket(w.buf, ev)
	if err != nil {
		return err // event rejected; writer still usable
	}
	if w.header.Checksummed {
		w.chunkCRC = crc32.Update(w.chunkCRC, castagnoli, buf[len(buf)-PacketSize:])
		w.chunkPackets++
		if w.chunkPackets == ChecksumChunkPackets {
			buf = binary.LittleEndian.AppendUint32(buf, w.chunkCRC)
			w.chunkCRC, w.chunkPackets = 0, 0
		}
	}
	w.buf = buf
	w.written++
	w.instrs += ev.InstrsSinceLastBranch + 1
	if len(w.buf) >= readerBufPackets*PacketSize {
		w.err = w.flush()
	}
	return w.err
}

func (w *Writer) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.w.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// Close flushes buffered packets and validates the totals against the
// header: the branch count must match exactly and the instruction count
// implied by the packets must not exceed the header's total. It does not
// close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.header.Checksummed && w.chunkPackets > 0 {
		// Trailer of the final, partial chunk.
		w.buf = binary.LittleEndian.AppendUint32(w.buf, w.chunkCRC)
		w.chunkCRC, w.chunkPackets = 0, 0
	}
	if err := w.flush(); err != nil {
		w.err = err
		return err
	}
	w.err = errors.New("sbbt: writer closed")
	if w.written != w.header.TotalBranches {
		return fmt.Errorf("sbbt: wrote %d branches, header promised %d", w.written, w.header.TotalBranches)
	}
	if w.instrs > w.header.TotalInstructions {
		return fmt.Errorf("sbbt: packets imply at least %d instructions, header promised %d", w.instrs, w.header.TotalInstructions)
	}
	return nil
}
