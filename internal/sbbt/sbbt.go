// Package sbbt implements the Simple Binary Branch Trace format, version
// 1.0.0, as specified in §IV-C of the MBPlib paper (Figs. 1 and 2).
//
// An SBBT trace is a 192-bit header followed by a concatenation of 128-bit
// packets, one per dynamic branch. In contrast to the BT9 text format it
// replaces, SBBT has no branch-graph section: each packet carries the full
// description of its branch, so the reader is a straight-line stream decoder
// with no hashed metadata lookups — the property the paper credits for most
// of the simulation speedup (§VII-D).
//
// Header (24 bytes):
//
//	bytes 0-4   signature "SBBT\n"
//	bytes 5-7   version: major, minor, patch as unsigned 8-bit numbers
//	bytes 8-15  number of instructions executed while tracing (uint64 LE)
//	bytes 16-23 number of branches in the trace (uint64 LE)
//
// Packet (16 bytes, two little-endian 64-bit blocks):
//
//	block 1: bits 12-63 branch instruction address (52 bits)
//	         bits 0-3   opcode (see bp.Opcode)
//	         bits 4-10  reserved, must be zero
//	         bit  11    outcome (1 = taken)
//	block 2: bits 12-63 branch target address (52 bits)
//	         bits 0-11  instructions executed since the previous branch,
//	                    counting neither branch (≤ 4095)
//
// Addresses store the low 52 bits of the virtual address in the top 52 bits
// of the block; decoding performs an arithmetic right shift by 12, which
// sign-extends bit 51 so that both the 48-bit x86-64 and the 52-bit ARMv8-A
// (LVA) canonical address spaces round-trip exactly.
package sbbt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mbplib/internal/bp"
)

// Signature is the 5-byte magic that opens every SBBT trace.
var Signature = [5]byte{'S', 'B', 'B', 'T', '\n'}

// Format version implemented by this package.
const (
	VersionMajor = 1
	VersionMinor = 0
	VersionPatch = 0
)

// HeaderSize and PacketSize are the encoded sizes in bytes.
const (
	HeaderSize = 24
	PacketSize = 16
)

// Header is the decoded SBBT trace header.
type Header struct {
	Major, Minor, Patch uint8
	// TotalInstructions is the number of instructions (branch and
	// non-branch) executed by the processor during tracing.
	TotalInstructions uint64
	// TotalBranches is the number of branch packets in the trace.
	TotalBranches uint64
}

// NewHeader returns a current-version header with the given totals.
func NewHeader(totalInstructions, totalBranches uint64) Header {
	return Header{
		Major: VersionMajor, Minor: VersionMinor, Patch: VersionPatch,
		TotalInstructions: totalInstructions,
		TotalBranches:     totalBranches,
	}
}

// Version renders the header version as "major.minor.patch".
func (h Header) Version() string {
	return fmt.Sprintf("%d.%d.%d", h.Major, h.Minor, h.Patch)
}

// AppendTo encodes the header into buf, which must have room for HeaderSize
// bytes, and returns the extended slice.
func (h Header) AppendTo(buf []byte) []byte {
	buf = append(buf, Signature[:]...)
	buf = append(buf, h.Major, h.Minor, h.Patch)
	buf = binary.LittleEndian.AppendUint64(buf, h.TotalInstructions)
	buf = binary.LittleEndian.AppendUint64(buf, h.TotalBranches)
	return buf
}

// ParseHeader decodes a header from the first HeaderSize bytes of buf.
func ParseHeader(buf []byte) (Header, error) {
	if len(buf) < HeaderSize {
		return Header{}, fmt.Errorf("sbbt: header needs %d bytes, have %d: %w", HeaderSize, len(buf), bp.ErrTruncated)
	}
	if [5]byte(buf[:5]) != Signature {
		return Header{}, errors.New("sbbt: bad signature")
	}
	h := Header{
		Major: buf[5], Minor: buf[6], Patch: buf[7],
		TotalInstructions: binary.LittleEndian.Uint64(buf[8:16]),
		TotalBranches:     binary.LittleEndian.Uint64(buf[16:24]),
	}
	if h.Major != VersionMajor {
		return Header{}, fmt.Errorf("sbbt: unsupported major version %d (want %d)", h.Major, VersionMajor)
	}
	return h, nil
}

// Address-encoding limits: a virtual address round-trips iff it is canonical
// for a 52-bit address space, i.e. bits 52-63 are a sign extension of bit 51.
const (
	addrShift = 12
	lowMask   = uint64(1)<<addrShift - 1 // low 12 bits of a block
)

// CanonicalAddress reports whether addr is representable in an SBBT block.
func CanonicalAddress(addr uint64) bool {
	top := int64(addr) >> 51
	return top == 0 || top == -1
}

// Packet field offsets within block 1.
const (
	opcodeMask  = uint64(0xf)
	reservedBit = 4
	outcomeBit  = 11
)

// EncodePacket encodes one branch event into buf, which must have room for
// PacketSize bytes, returning the extended slice. It returns an error if the
// event violates the format rules (invalid opcode or outcome combination,
// non-canonical address, or an instruction gap above 4095).
func EncodePacket(buf []byte, ev bp.Event) ([]byte, error) {
	b := ev.Branch
	if err := b.Validate(); err != nil {
		return buf, err
	}
	if !CanonicalAddress(b.IP) {
		return buf, fmt.Errorf("sbbt: branch address %#x not canonical for 52-bit encoding", b.IP)
	}
	if !CanonicalAddress(b.Target) {
		return buf, fmt.Errorf("sbbt: target address %#x not canonical for 52-bit encoding", b.Target)
	}
	if ev.InstrsSinceLastBranch > bp.MaxInstrGap {
		return buf, fmt.Errorf("sbbt: %d instructions between branches exceeds the 12-bit limit %d", ev.InstrsSinceLastBranch, bp.MaxInstrGap)
	}
	block1 := b.IP<<addrShift | uint64(b.Opcode)&opcodeMask
	if b.Taken {
		block1 |= 1 << outcomeBit
	}
	block2 := b.Target<<addrShift | ev.InstrsSinceLastBranch
	buf = binary.LittleEndian.AppendUint64(buf, block1)
	buf = binary.LittleEndian.AppendUint64(buf, block2)
	return buf, nil
}

// DecodePacket decodes one packet from the first PacketSize bytes of buf.
// It enforces the format validity rules of §IV-C.
func DecodePacket(buf []byte) (bp.Event, error) {
	if len(buf) < PacketSize {
		return bp.Event{}, fmt.Errorf("sbbt: packet needs %d bytes, have %d: %w", PacketSize, len(buf), bp.ErrTruncated)
	}
	block1 := binary.LittleEndian.Uint64(buf[0:8])
	block2 := binary.LittleEndian.Uint64(buf[8:16])
	if block1>>reservedBit&0x7f != 0 {
		return bp.Event{}, fmt.Errorf("sbbt: reserved bits set in packet %#x", block1)
	}
	ev := bp.Event{
		Branch: bp.Branch{
			IP:     uint64(int64(block1) >> addrShift),
			Target: uint64(int64(block2) >> addrShift),
			Opcode: bp.Opcode(block1 & opcodeMask),
			Taken:  block1>>outcomeBit&1 == 1,
		},
		InstrsSinceLastBranch: block2 & lowMask,
	}
	if err := ev.Branch.Validate(); err != nil {
		return bp.Event{}, err
	}
	return ev, nil
}

// Reader streams branch events from an SBBT trace. It implements bp.Reader
// and bp.Sizer. Create one with NewReader.
type Reader struct {
	r      io.Reader
	header Header
	buf    []byte // read-ahead buffer
	pos    int    // consume position in buf
	end    int    // valid bytes in buf
	read   uint64 // packets decoded so far
	err    error
}

// readerBufPackets is the number of packets fetched per underlying read.
const readerBufPackets = 4096

// NewReader consumes and validates the header of an SBBT trace and returns
// a Reader positioned at the first packet. The input must already be
// decompressed (see package compress for auto-detection).
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("sbbt: reading header: %w", bp.ErrTruncated)
		}
		return nil, fmt.Errorf("sbbt: reading header: %w", err)
	}
	h, err := ParseHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	return &Reader{r: r, header: h, buf: make([]byte, readerBufPackets*PacketSize)}, nil
}

// Header returns the decoded trace header.
func (r *Reader) Header() Header { return r.header }

// TotalInstructions implements bp.Sizer.
func (r *Reader) TotalInstructions() uint64 { return r.header.TotalInstructions }

// TotalBranches implements bp.Sizer.
func (r *Reader) TotalBranches() uint64 { return r.header.TotalBranches }

// Read returns the next branch event. It returns io.EOF after the last
// packet, and bp.ErrTruncated if the stream ends before the branch count
// promised by the header.
func (r *Reader) Read() (bp.Event, error) {
	if r.err != nil {
		return bp.Event{}, r.err
	}
	if r.end-r.pos < PacketSize {
		if err := r.fill(); err != nil {
			r.err = err
			return bp.Event{}, err
		}
	}
	ev, err := DecodePacket(r.buf[r.pos : r.pos+PacketSize])
	if err != nil {
		r.err = err
		return bp.Event{}, err
	}
	r.pos += PacketSize
	r.read++
	return ev, nil
}

// fill slides leftover bytes to the front of the buffer and reads more.
func (r *Reader) fill() error {
	leftover := copy(r.buf, r.buf[r.pos:r.end])
	r.pos, r.end = 0, leftover
	for r.end < PacketSize {
		n, err := r.r.Read(r.buf[r.end:])
		r.end += n
		if err != nil {
			if err == io.EOF {
				// Readers may return data together with io.EOF; whole
				// buffered packets are still consumable, and the next fill
				// observes the bare EOF.
				if r.end >= PacketSize {
					return nil
				}
				if r.end == 0 {
					if r.read < r.header.TotalBranches {
						return fmt.Errorf("sbbt: trace ends after %d of %d branches: %w", r.read, r.header.TotalBranches, bp.ErrTruncated)
					}
					return io.EOF
				}
				return fmt.Errorf("sbbt: trace ends mid-packet: %w", bp.ErrTruncated)
			}
			return err
		}
	}
	return nil
}

// Writer encodes branch events into an SBBT trace. It implements bp.Writer.
// The totals must be known up front because the header precedes the packets
// and traces are typically written through a non-seekable compression layer.
// Close verifies that exactly the promised number of events were written.
type Writer struct {
	w       io.Writer
	header  Header
	buf     []byte
	written uint64
	instrs  uint64
	err     error
}

// NewWriter writes the trace header and returns a Writer ready for packets.
func NewWriter(w io.Writer, totalInstructions, totalBranches uint64) (*Writer, error) {
	h := NewHeader(totalInstructions, totalBranches)
	buf := h.AppendTo(make([]byte, 0, readerBufPackets*PacketSize))
	return &Writer{w: w, header: h, buf: buf}, nil
}

// Header returns the header this writer emitted.
func (w *Writer) Header() Header { return w.header }

// Write appends one event to the trace.
func (w *Writer) Write(ev bp.Event) error {
	if w.err != nil {
		return w.err
	}
	if w.written == w.header.TotalBranches {
		w.err = fmt.Errorf("sbbt: more than the %d branches promised by the header", w.header.TotalBranches)
		return w.err
	}
	buf, err := EncodePacket(w.buf, ev)
	if err != nil {
		return err // event rejected; writer still usable
	}
	w.buf = buf
	w.written++
	w.instrs += ev.InstrsSinceLastBranch + 1
	if len(w.buf) >= readerBufPackets*PacketSize {
		w.err = w.flush()
	}
	return w.err
}

func (w *Writer) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.w.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// Close flushes buffered packets and validates the totals against the
// header: the branch count must match exactly and the instruction count
// implied by the packets must not exceed the header's total. It does not
// close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.flush(); err != nil {
		w.err = err
		return err
	}
	w.err = errors.New("sbbt: writer closed")
	if w.written != w.header.TotalBranches {
		return fmt.Errorf("sbbt: wrote %d branches, header promised %d", w.written, w.header.TotalBranches)
	}
	if w.instrs > w.header.TotalInstructions {
		return fmt.Errorf("sbbt: packets imply at least %d instructions, header promised %d", w.instrs, w.header.TotalInstructions)
	}
	return nil
}
