package tracegen

import (
	"io"

	"mbplib/internal/bp"
	"mbplib/internal/cst"
	"mbplib/internal/utils"
)

// InstrGenerator expands the branch-event stream of a Spec into a full
// per-instruction stream in ChampSim style, for the cycle-level model and
// the CST trace writer. It plays the role of the PIN instrumentation module
// the paper links for tracing real executables (§IV-D).
//
// Each static branch gets a basic block: a code address and a fixed body
// length (the inter-branch gap seen on first encounter — later occurrences
// are quantised to it so branch IPs stay stable, as they are in real code).
// Body instructions are a mix of ALU operations, strided loads and stores
// with synthetic register dependencies. The record stream is IP-coherent
// for taken branches: the record after a taken branch starts the target
// block, which is how ChampSim-format consumers recover branch targets.
type InstrGenerator struct {
	g        *Generator
	rng      *utils.Rand
	blocks   map[uint64]block
	nextCode uint64
	pending  []cst.Instruction
	pos      int
	arrays   [3]arrayWalk
	lastDst  uint8
	emitted  uint64

	// Call/return layout correspondence: calls push the layout address
	// just after the call record; the records following a return start at
	// that address, so a return-address stack sees consistent targets, as
	// it would in a trace of a real execution.
	callStack  []uint64
	pendingRet bool
	retAddr    uint64
}

type block struct {
	addr    uint64
	bodyLen int
}

type arrayWalk struct {
	base   uint64
	offset uint64
	stride uint64
	limit  uint64
}

// NewInstrGenerator returns an instruction-stream generator for spec.
func NewInstrGenerator(spec Spec) (*InstrGenerator, error) {
	g, err := New(spec)
	if err != nil {
		return nil, err
	}
	ig := &InstrGenerator{
		g:        g,
		rng:      utils.NewRand(spec.Seed ^ 0x1257_CAFE),
		blocks:   make(map[uint64]block),
		nextCode: 0x40_0000,
	}
	for i := range ig.arrays {
		ig.arrays[i] = arrayWalk{
			base:   0x7f00_0000_0000 + uint64(i)<<32,
			stride: uint64(8 << i),
			limit:  1 << 16, // 64 KiB: mostly L1/L2-resident, as hot data is
		}
	}
	// One array with a large footprint provides the occasional long-latency
	// miss real workloads see.
	ig.arrays[len(ig.arrays)-1].limit = 1 << 22
	return ig, nil
}

// Read fills in with the next instruction record. It returns io.EOF after
// the stream ends (at the branch record of the spec's last branch event).
func (ig *InstrGenerator) Read(in *cst.Instruction) error {
	if ig.pos >= len(ig.pending) {
		if err := ig.refill(); err != nil {
			return err
		}
	}
	*in = ig.pending[ig.pos]
	ig.pos++
	ig.emitted++
	return nil
}

// Emitted returns the number of records produced so far.
func (ig *InstrGenerator) Emitted() uint64 { return ig.emitted }

// refill expands the next branch event into its basic block.
func (ig *InstrGenerator) refill() error {
	ev, err := ig.g.Read()
	if err != nil {
		return err // io.EOF included
	}
	blk, ok := ig.blocks[ev.Branch.IP]
	if !ok {
		blk = block{addr: ig.nextCode, bodyLen: int(ev.InstrsSinceLastBranch)}
		ig.blocks[ev.Branch.IP] = blk
		ig.nextCode += uint64(blk.bodyLen+1)*4 + 16 // block plus padding
	}
	ig.pending = ig.pending[:0]
	ig.pos = 0
	// After a return, execution resumes at the caller's continuation: emit
	// a short stub there so the return record's successor IP (the target a
	// ChampSim-style consumer recovers) matches what the call pushed.
	if ig.pendingRet {
		ig.pending = append(ig.pending, ig.bodyInstr(ig.retAddr), ig.bodyInstr(ig.retAddr+4))
		ig.pendingRet = false
	}
	for i := 0; i < blk.bodyLen; i++ {
		ig.pending = append(ig.pending, ig.bodyInstr(blk.addr+uint64(i)*4))
	}
	var br cst.Instruction
	br.IP = blk.addr + uint64(blk.bodyLen)*4
	br.SetBranch(ev.Branch.Opcode, ev.Branch.Taken)
	ig.pending = append(ig.pending, br)
	switch ev.Branch.Opcode.Base() {
	case bp.Call:
		ig.callStack = append(ig.callStack, br.IP+4)
	case bp.Ret:
		if n := len(ig.callStack); n > 0 {
			ig.retAddr = ig.callStack[n-1]
			ig.callStack = ig.callStack[:n-1]
			ig.pendingRet = true
		}
	}
	return nil
}

// bodyInstr synthesises one non-branch instruction: roughly 20% loads, 10%
// stores, the rest register ALU operations. Dependency chains are short —
// about a quarter of instructions read the previous result — so the stream
// exposes the instruction-level parallelism an out-of-order core expects;
// a fully serial stream would hide branch effects behind the data chain.
func (ig *InstrGenerator) bodyInstr(ip uint64) cst.Instruction {
	in := cst.Instruction{IP: ip}
	dst := uint8(cst.RegGeneralFirst + ig.rng.Intn(cst.NumRegs-cst.RegGeneralFirst))
	in.DestRegs[0] = dst
	if ig.lastDst != 0 && ig.rng.Intn(4) == 0 {
		in.SrcRegs[0] = ig.lastDst
	} else {
		in.SrcRegs[0] = uint8(cst.RegGeneralFirst + ig.rng.Intn(64))
	}
	roll := ig.rng.Intn(10)
	switch {
	case roll < 2: // load
		in.SrcMem[0] = ig.dataAddr()
	case roll < 3: // store
		in.DestMem[0] = ig.dataAddr()
		in.SrcRegs[1] = uint8(cst.RegGeneralFirst + ig.rng.Intn(64))
	default: // ALU
		in.SrcRegs[1] = uint8(cst.RegGeneralFirst + ig.rng.Intn(64))
	}
	ig.lastDst = dst
	return in
}

// dataAddr walks one of the synthetic arrays, with an occasional random
// jump to model pointer chasing. The small arrays dominate (hot data), the
// large one supplies cold misses.
func (ig *InstrGenerator) dataAddr() uint64 {
	i := 0
	if r := ig.rng.Intn(16); r >= 14 {
		i = len(ig.arrays) - 1 // the cold array, 1 access in 8
	} else {
		i = r % (len(ig.arrays) - 1)
	}
	a := &ig.arrays[i]
	if ig.rng.Intn(64) == 0 {
		a.offset = ig.rng.Uint64() % a.limit &^ 7
	} else {
		a.offset = (a.offset + a.stride) % a.limit
	}
	return a.base + a.offset
}

// InstrTotals dry-runs the instruction synthesis for spec and returns the
// record count, needed up front by the CST trace header.
func InstrTotals(spec Spec) (uint64, error) {
	ig, err := NewInstrGenerator(spec)
	if err != nil {
		return 0, err
	}
	var in cst.Instruction
	for {
		if err := ig.Read(&in); err != nil {
			if err == io.EOF {
				return ig.Emitted(), nil
			}
			return 0, err
		}
	}
}

// WriteSBBT streams the spec's branch events into w as SBBT packets via the
// given writer constructor. It is a convenience for tools; the heavy
// lifting lives in the sbbt package.
func WriteSBBT(spec Spec, write func(bp.Event) error) error {
	g, err := New(spec)
	if err != nil {
		return err
	}
	for {
		ev, err := g.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := write(ev); err != nil {
			return err
		}
	}
}
