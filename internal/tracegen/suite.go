package tracegen

import (
	"fmt"
	"sort"
)

// Suite builds the named trace suite. The suites stand in for the trace
// sets of Table I: "cbp5-train" and "cbp5-eval" for the 5th Championship
// Branch Prediction sets, "dpc3" for the SPEC17-derived set of the 3rd Data
// Prefetching Championship. scale is the number of dynamic branches in a
// "short" trace; long traces are 8× that (the real sets mix hundred-million
// and multi-billion instruction traces, scaled down here so experiments run
// on one machine). Generation is deterministic per (suite, scale).
func Suite(name string, scale uint64) ([]Spec, error) {
	if scale == 0 {
		scale = 200_000
	}
	switch name {
	case "cbp5-train":
		return cbp5Suite(0x0CB5_0001, scale, 1), nil
	case "cbp5-eval":
		return cbp5Suite(0x0CB5_EA17, scale, 2), nil
	case "dpc3":
		return dpc3Suite(0x0D9C_0003, scale), nil
	default:
		return nil, fmt.Errorf("tracegen: unknown suite %q (have %v)", name, SuiteNames())
	}
}

// SuiteNames lists the suites Suite accepts, sorted.
func SuiteNames() []string {
	names := []string{"cbp5-train", "cbp5-eval", "dpc3"}
	sort.Strings(names)
	return names
}

// cbp5Suite mirrors the CBP5 category structure: SHORT/LONG traces from
// MOBILE and SERVER applications plus SPEC-style compute kernels.
func cbp5Suite(seed, scale uint64, variant uint64) []Spec {
	var specs []Spec
	add := func(name string, branches uint64, kernels []KernelSpec) {
		specs = append(specs, Spec{
			Name:     name,
			Seed:     seed + uint64(len(specs))*0x9177 + variant*0xabcdef,
			Branches: branches,
			Kernels:  kernels,
		})
	}
	for i := 1; i <= 3; i++ {
		add(fmt.Sprintf("SHORT_MOBILE-%d", i), scale, mobileMix(i))
	}
	for i := 1; i <= 2; i++ {
		add(fmt.Sprintf("LONG_MOBILE-%d", i), 8*scale, mobileMix(i+3))
	}
	for i := 1; i <= 3; i++ {
		add(fmt.Sprintf("SHORT_SERVER-%d", i), scale, serverMix(i))
	}
	for i := 1; i <= 2; i++ {
		add(fmt.Sprintf("LONG_SERVER-%d", i), 8*scale, serverMix(i+3))
	}
	for i := 1; i <= 2; i++ {
		add(fmt.Sprintf("SPEC-%d", i), 2*scale, specMix(i))
	}
	return specs
}

// dpc3Suite mirrors the DPC3 set: SPEC CPU2017 benchmarks. These specs are
// used both for SBBT traces and for the full-instruction CST traces
// consumed by the cycle-level model.
func dpc3Suite(seed, scale uint64) []Spec {
	benchmarks := []struct {
		name string
		mix  []KernelSpec
	}{
		{"600.perlbench_s", serverMix(1)},
		{"602.gcc_s", serverMix(2)},
		{"605.mcf_s", specMix(1)},
		{"620.omnetpp_s", mobileMix(2)},
		{"623.xalancbmk_s", serverMix(3)},
		{"625.x264_s", specMix(2)},
		{"631.deepsjeng_s", mobileMix(1)},
		{"641.leela_s", specMix(3)},
	}
	var specs []Spec
	for i, b := range benchmarks {
		specs = append(specs, Spec{
			Name:     "DPC3-" + b.name,
			Seed:     seed + uint64(i)*0x51ec,
			Branches: 2 * scale,
			Kernels:  b.mix,
		})
	}
	return specs
}

// mobileMix models interactive/mobile code: sizable working sets, frequent
// calls, some hard data-dependent branches. Working-set sizes follow real
// traces, which touch hundreds to thousands of static branches (the paper's
// Listing 1 trace has 16056).
func mobileMix(v int) []KernelSpec {
	return []KernelSpec{
		{Kind: Biased, Weight: 4, Branches: 150 + 60*v, Bias: 0.75, GapMean: 4},
		{Kind: CallRet, Weight: 3, Branches: 48, CallDepth: 6 + v, Bias: 0.8, GapMean: 5},
		{Kind: Pattern, Weight: 1, PatternBits: patternFor(v), GapMean: 3},
		{Kind: Correlated, Weight: 2, Feeders: 3 + v%3, GapMean: 4},
	}
}

// serverMix models server code: large branch working sets that alias in
// small tables, indirect dispatch, deep call stacks.
func serverMix(v int) []KernelSpec {
	return []KernelSpec{
		{Kind: Biased, Weight: 5, Branches: 500 + 250*v, Bias: 0.65, GapMean: 5},
		{Kind: Indirect, Weight: 2, Targets: 8 + 4*v, GapMean: 6},
		{Kind: CallRet, Weight: 2, Branches: 120, CallDepth: 12, Bias: 0.7, GapMean: 5},
		{Kind: Correlated, Weight: 1, Feeders: 5, GapMean: 4},
	}
}

// specMix models compute kernels: loop nests and long-history patterns over
// a moderate working set of data-dependent branches.
func specMix(v int) []KernelSpec {
	return []KernelSpec{
		{Kind: Loop, Weight: 4, Trips: []int{3 + v, 8 + 2*v}, GapMean: 6},
		{Kind: Loop, Weight: 2, Trips: []int{50 + 10*v}, GapMean: 8},
		{Kind: Pattern, Weight: 1, PatternBits: patternFor(v + 2), GapMean: 4},
		{Kind: Biased, Weight: 4, Branches: 180 + 40*v, Bias: 0.85, GapMean: 5},
		{Kind: CallRet, Weight: 1, Branches: 40, CallDepth: 8, Bias: 0.8, GapMean: 5},
		{Kind: Correlated, Weight: 1, Feeders: 6, GapMean: 5},
	}
}

func patternFor(v int) string {
	patterns := []string{"TTNT", "TTTNN", "TNTNNT", "TTTTNTN", "TTNNTTN"}
	return patterns[v%len(patterns)]
}
