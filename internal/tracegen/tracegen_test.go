package tracegen

import (
	"io"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/cst"
)

func collect(t *testing.T, spec Spec) []bp.Event {
	t.Helper()
	g, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var evs []bp.Event
	for {
		ev, err := g.Read()
		if err == io.EOF {
			return evs
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		evs = append(evs, ev)
	}
}

func basicSpec(kind Kind, n uint64) Spec {
	return Spec{Name: "test", Seed: 42, Branches: n, Kernels: []KernelSpec{{Kind: kind}}}
}

func TestGeneratorDeterminism(t *testing.T) {
	spec := Spec{Name: "d", Seed: 7, Branches: 5000, Kernels: []KernelSpec{
		{Kind: Biased}, {Kind: Loop}, {Kind: Correlated}, {Kind: CallRet}, {Kind: Indirect}, {Kind: Pattern},
	}}
	a := collect(t, spec)
	b := collect(t, spec)
	if len(a) != len(b) || len(a) != 5000 {
		t.Fatalf("lengths %d, %d, want 5000", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs between identical specs", i)
		}
	}
	spec.Seed = 8
	c := collect(t, spec)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Errorf("different seeds produced identical streams")
	}
}

func TestAllEventsValid(t *testing.T) {
	for kind := Biased; kind <= Indirect; kind++ {
		evs := collect(t, basicSpec(kind, 3000))
		for i, ev := range evs {
			if err := ev.Branch.Validate(); err != nil {
				t.Fatalf("kernel %v event %d invalid: %v", kind, i, err)
			}
			if ev.InstrsSinceLastBranch > bp.MaxInstrGap {
				t.Fatalf("kernel %v event %d gap %d too large", kind, i, ev.InstrsSinceLastBranch)
			}
		}
	}
}

func TestBiasedKernelBias(t *testing.T) {
	evs := collect(t, basicSpec(Biased, 20000))
	perIP := map[uint64][2]int{} // taken, total
	for _, ev := range evs {
		c := perIP[ev.Branch.IP]
		if ev.Branch.Taken {
			c[0]++
		}
		c[1]++
		perIP[ev.Branch.IP] = c
	}
	if len(perIP) != 16 {
		t.Errorf("biased kernel used %d static branches, want 16", len(perIP))
	}
	// Each branch must be consistently biased: the majority outcome should
	// be clearly above 50%.
	biasedCount := 0
	for _, c := range perIP {
		frac := float64(c[0]) / float64(c[1])
		if frac < 0.4 || frac > 0.6 {
			biasedCount++
		}
	}
	if biasedCount < 10 {
		t.Errorf("only %d of %d branches look biased", biasedCount, len(perIP))
	}
}

func TestLoopKernelStructure(t *testing.T) {
	spec := basicSpec(Loop, 1000)
	spec.Kernels[0].Trips = []int{3, 4}
	evs := collect(t, spec)
	// The inner loop branch (appearing most often) must show a strict
	// TTTN periodic pattern (taken 3 of every 4).
	counts := map[uint64]int{}
	for _, ev := range evs {
		counts[ev.Branch.IP]++
	}
	var innerIP uint64
	max := 0
	for ip, n := range counts {
		if n > max {
			innerIP, max = ip, n
		}
	}
	var outcomes []bool
	for _, ev := range evs {
		if ev.Branch.IP == innerIP {
			outcomes = append(outcomes, ev.Branch.Taken)
		}
	}
	for i := 0; i+4 <= len(outcomes); i += 4 {
		if !outcomes[i] || !outcomes[i+1] || !outcomes[i+2] || outcomes[i+3] {
			t.Fatalf("inner loop outcomes not TTTN at group %d: %v", i/4, outcomes[i:i+4])
		}
	}
}

func TestLoopKernelRejectsTinyTrips(t *testing.T) {
	spec := basicSpec(Loop, 100)
	spec.Kernels[0].Trips = []int{1}
	if _, err := New(spec); err == nil {
		t.Errorf("trip count 1 accepted")
	}
}

func TestCorrelatedKernelParity(t *testing.T) {
	spec := basicSpec(Correlated, 5000)
	spec.Kernels[0].Feeders = 3
	evs := collect(t, spec)
	// Every 4th event is the dependent branch; its outcome must equal the
	// XOR of the previous 3 feeder outcomes.
	for i := 3; i < len(evs); i += 4 {
		want := evs[i-3].Branch.Taken != evs[i-2].Branch.Taken
		want = want != evs[i-1].Branch.Taken
		if evs[i].Branch.Taken != want {
			t.Fatalf("dependent branch %d outcome %v, want %v", i, evs[i].Branch.Taken, want)
		}
	}
}

func TestPatternKernelRepeats(t *testing.T) {
	spec := basicSpec(Pattern, 600)
	spec.Kernels[0].PatternBits = "TTN"
	evs := collect(t, spec)
	for i, ev := range evs {
		want := i%3 != 2
		if ev.Branch.Taken != want {
			t.Fatalf("pattern event %d = %v, want %v", i, ev.Branch.Taken, want)
		}
	}
}

func TestPatternKernelRejectsBadChars(t *testing.T) {
	spec := basicSpec(Pattern, 10)
	spec.Kernels[0].PatternBits = "TXN"
	if _, err := New(spec); err == nil {
		t.Errorf("bad pattern accepted")
	}
}

func TestCallRetKernelBalanced(t *testing.T) {
	evs := collect(t, basicSpec(CallRet, 20000))
	depth := 0
	maxDepth := 0
	calls, rets := 0, 0
	for _, ev := range evs {
		switch ev.Branch.Opcode.Base() {
		case bp.Call:
			calls++
			depth++
		case bp.Ret:
			rets++
			depth--
		}
		if depth < 0 {
			t.Fatalf("return without matching call")
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	if calls == 0 || rets == 0 {
		t.Fatalf("no call/ret activity: calls=%d rets=%d", calls, rets)
	}
	if maxDepth > 8 {
		t.Errorf("max depth %d exceeds configured 8", maxDepth)
	}
	// Returns must match the call sites' pushed addresses: verify via stack
	// simulation that every RET target equals the last unmatched CALL IP+4.
	var stack []uint64
	for i, ev := range evs {
		switch ev.Branch.Opcode.Base() {
		case bp.Call:
			stack = append(stack, ev.Branch.IP+4)
		case bp.Ret:
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if ev.Branch.Target != want {
				t.Fatalf("event %d: RET to %#x, want %#x", i, ev.Branch.Target, want)
			}
		}
	}
}

func TestIndirectKernelTargets(t *testing.T) {
	spec := basicSpec(Indirect, 10000)
	spec.Kernels[0].Targets = 4
	evs := collect(t, spec)
	targets := map[uint64]int{}
	for _, ev := range evs {
		if !ev.Branch.Taken || ev.Branch.Opcode != bp.OpIndJump {
			t.Fatalf("indirect kernel emitted %v taken=%v", ev.Branch.Opcode, ev.Branch.Taken)
		}
		targets[ev.Branch.Target]++
	}
	if len(targets) != 4 {
		t.Errorf("indirect kernel used %d targets, want 4", len(targets))
	}
	// Self-transition locality: consecutive repeats should be common.
	repeats := 0
	for i := 1; i < len(evs); i++ {
		if evs[i].Branch.Target == evs[i-1].Branch.Target {
			repeats++
		}
	}
	if frac := float64(repeats) / float64(len(evs)); frac < 0.5 {
		t.Errorf("target repeat fraction %.2f, want >= 0.5", frac)
	}
}

func TestTotalsMatchStream(t *testing.T) {
	spec := Spec{Name: "t", Seed: 3, Branches: 4000, Kernels: []KernelSpec{{Kind: Biased}, {Kind: Loop}}}
	instr, branches, err := Totals(spec)
	if err != nil {
		t.Fatal(err)
	}
	if branches != 4000 {
		t.Errorf("branches = %d", branches)
	}
	var sum uint64
	for _, ev := range collect(t, spec) {
		sum += ev.InstrsSinceLastBranch + 1
	}
	if instr != sum {
		t.Errorf("Totals instructions = %d, stream says %d", instr, sum)
	}
}

func TestNewRejectsBadSpecs(t *testing.T) {
	if _, err := New(Spec{Name: "x", Branches: 0, Kernels: []KernelSpec{{Kind: Biased}}}); err == nil {
		t.Errorf("zero branches accepted")
	}
	if _, err := New(Spec{Name: "x", Branches: 10}); err == nil {
		t.Errorf("no kernels accepted")
	}
	if _, err := New(Spec{Name: "x", Branches: 10, Kernels: []KernelSpec{{Kind: Kind(99)}}}); err == nil {
		t.Errorf("unknown kind accepted")
	}
}

func TestSuites(t *testing.T) {
	for _, name := range SuiteNames() {
		specs, err := Suite(name, 1000)
		if err != nil {
			t.Fatalf("Suite(%q): %v", name, err)
		}
		if len(specs) < 5 {
			t.Errorf("suite %q has only %d specs", name, len(specs))
		}
		seen := map[string]bool{}
		for _, s := range specs {
			if seen[s.Name] {
				t.Errorf("suite %q: duplicate trace name %q", name, s.Name)
			}
			seen[s.Name] = true
			if _, err := New(s); err != nil {
				t.Errorf("suite %q trace %q invalid: %v", name, s.Name, err)
			}
		}
	}
	if _, err := Suite("nope", 0); err == nil {
		t.Errorf("unknown suite accepted")
	}
}

func TestSuitesDiffer(t *testing.T) {
	train, _ := Suite("cbp5-train", 1000)
	eval, _ := Suite("cbp5-eval", 1000)
	a := collect(t, train[0])
	b := collect(t, eval[0])
	same := true
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("train and eval suites generate identical streams")
	}
}

func TestInstrGeneratorCoherence(t *testing.T) {
	spec := Spec{Name: "i", Seed: 9, Branches: 2000, Kernels: []KernelSpec{
		{Kind: Loop}, {Kind: Biased}, {Kind: CallRet}, {Kind: Indirect},
	}}
	ig, err := NewInstrGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	var prev cst.Instruction
	havePrev := false
	branchIPs := map[uint64]bool{}
	nonBranchIPs := map[uint64]bool{}
	n := 0
	branches := 0
	var in cst.Instruction
	for {
		err := ig.Read(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		n++
		if in.IsBranch {
			branches++
			branchIPs[in.IP] = true
			if _, ok := in.Classify(); !ok {
				t.Fatalf("branch record at %#x does not classify", in.IP)
			}
		} else {
			nonBranchIPs[in.IP] = true
			if havePrev && prev.IsBranch && !prev.BranchTaken {
				// Not-taken: execution continues in program order.
				_ = prev
			}
		}
		havePrev, prev = true, in
	}
	if branches != 2000 {
		t.Errorf("instruction stream has %d branch records, want 2000", branches)
	}
	if n <= branches {
		t.Errorf("no body instructions generated")
	}
	// A branch IP must never double as a body-instruction IP: stable blocks.
	for ip := range branchIPs {
		if nonBranchIPs[ip] {
			t.Errorf("IP %#x is both branch and non-branch", ip)
		}
	}
}

func TestInstrGeneratorDeterminismAndTotals(t *testing.T) {
	spec := Spec{Name: "i2", Seed: 11, Branches: 1000, Kernels: []KernelSpec{{Kind: Biased}}}
	total, err := InstrTotals(spec)
	if err != nil {
		t.Fatal(err)
	}
	ig, _ := NewInstrGenerator(spec)
	var in cst.Instruction
	var n uint64
	for ig.Read(&in) == nil {
		n++
	}
	if n != total {
		t.Errorf("InstrTotals = %d, stream yields %d", total, n)
	}
}

func TestWriteSBBTCallback(t *testing.T) {
	spec := basicSpec(Biased, 500)
	var n int
	err := WriteSBBT(spec, func(ev bp.Event) error { n++; return nil })
	if err != nil || n != 500 {
		t.Errorf("WriteSBBT wrote %d events, err %v", n, err)
	}
}

func TestKindString(t *testing.T) {
	if Biased.String() != "biased" || Indirect.String() != "indirect" {
		t.Errorf("Kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Errorf("unknown kind has empty name")
	}
}
