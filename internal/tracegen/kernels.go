package tracegen

import (
	"fmt"

	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// newKernel builds the kernel for ks, placing its static branches in the
// address region starting at base.
func newKernel(ks KernelSpec, base uint64, rng *utils.Rand) (kernel, error) {
	switch ks.Kind {
	case Biased:
		return newBiasedKernel(ks, base, rng), nil
	case Loop:
		return newLoopKernel(ks, base, rng)
	case Correlated:
		return newCorrelatedKernel(ks, base, rng), nil
	case Pattern:
		return newPatternKernel(ks, base, rng)
	case CallRet:
		return newCallRetKernel(ks, base, rng), nil
	case Indirect:
		return newIndirectKernel(ks, base, rng), nil
	default:
		return nil, fmt.Errorf("unknown kernel kind %v", ks.Kind)
	}
}

// biasedKernel: static branches with fixed per-branch biases, visited in
// program order (code executes in sequence; it is the outcomes that are
// data-dependent). The outcome stream is the floor of predictability for
// any predictor with per-branch state, while the branch sequence itself
// retains the long-range regularity real traces have.
type biasedKernel struct {
	rng     *utils.Rand
	ips     []uint64
	targets []uint64
	biases  []float64
	last    []bool
	pos     int
	gapMean int
}

func newBiasedKernel(ks KernelSpec, base uint64, rng *utils.Rand) *biasedKernel {
	k := &biasedKernel{rng: rng, gapMean: ks.GapMean}
	for i := 0; i < ks.Branches; i++ {
		k.ips = append(k.ips, base+uint64(i)*0x40)
		k.targets = append(k.targets, base+0x8000+uint64(i)*0x40)
		// Spread biases around the mean, mirrored around 0.5 so some
		// branches are mostly not-taken.
		b := ks.Bias + (rng.Float64()-0.5)*0.4
		if b < 0.02 {
			b = 0.02
		}
		if b > 0.98 {
			b = 0.98
		}
		if i%3 == 0 {
			b = 1 - b
		}
		k.biases = append(k.biases, b)
		k.last = append(k.last, b >= 0.5)
	}
	return k
}

func (k *biasedKernel) next(ev *bp.Event) {
	i := k.pos
	k.pos++
	if k.pos == len(k.ips) {
		k.pos = 0
	}
	// Outcomes are autocorrelated: with probability 3/4 a branch repeats
	// its previous outcome, otherwise it redraws from its bias. Real
	// branches behave in runs — the property two-bit counters exploit —
	// and the run structure is also what makes real traces compressible.
	taken := k.last[i]
	if k.rng.Intn(4) == 0 {
		taken = k.rng.Float64() < k.biases[i]
	}
	k.last[i] = taken
	ev.Branch = bp.Branch{
		IP:     k.ips[i],
		Target: k.targets[i],
		Opcode: bp.OpCondJump,
		Taken:  taken,
	}
	ev.InstrsSinceLastBranch = pathGap(ev.Branch.IP, ev.Branch.Taken, k.gapMean)
}

// loopKernel: a nest of counted loops. Each level has a backward branch
// taken trip-1 times and then not taken. The odometer walks the nest the
// way the loop would execute.
type loopKernel struct {
	rng     *utils.Rand
	trips   []int
	counts  []int
	ips     []uint64
	bodies  []uint64
	level   int // level whose branch executes next (innermost = last)
	gapMean int
}

func newLoopKernel(ks KernelSpec, base uint64, rng *utils.Rand) (*loopKernel, error) {
	for _, t := range ks.Trips {
		if t < 2 {
			return nil, fmt.Errorf("loop trip count %d must be at least 2", t)
		}
	}
	k := &loopKernel{rng: rng, trips: ks.Trips, counts: make([]int, len(ks.Trips)), gapMean: ks.GapMean}
	for i := range ks.Trips {
		k.ips = append(k.ips, base+uint64(i)*0x100+0x80)
		k.bodies = append(k.bodies, base+uint64(i)*0x100)
	}
	k.level = len(ks.Trips) - 1
	return k, nil
}

func (k *loopKernel) next(ev *bp.Event) {
	lvl := k.level
	taken := k.counts[lvl] < k.trips[lvl]-1
	if taken {
		k.counts[lvl]++
		k.level = len(k.trips) - 1 // re-enter the innermost body
	} else {
		k.counts[lvl] = 0
		if lvl == 0 {
			k.level = len(k.trips) - 1 // nest restarts
		} else {
			k.level = lvl - 1 // the enclosing loop's branch runs next
		}
	}
	ev.Branch = bp.Branch{
		IP:     k.ips[lvl],
		Target: k.bodies[lvl],
		Opcode: bp.OpCondJump,
		Taken:  taken,
	}
	ev.InstrsSinceLastBranch = pathGap(ev.Branch.IP, taken, k.gapMean)
}

// correlatedKernel: feeder branches with random outcomes, then a branch
// whose outcome is the XOR of the feeders. Zero information without
// history; fully predictable with history length >= feeders.
type correlatedKernel struct {
	rng     *utils.Rand
	feeders []uint64
	depIP   uint64
	depTgt  uint64
	state   int // which feeder fires next; len(feeders) means the dependent
	parity  bool
	gapMean int
}

func newCorrelatedKernel(ks KernelSpec, base uint64, rng *utils.Rand) *correlatedKernel {
	k := &correlatedKernel{rng: rng, depIP: base + 0x1000, depTgt: base + 0x2000, gapMean: ks.GapMean}
	for i := 0; i < ks.Feeders; i++ {
		k.feeders = append(k.feeders, base+uint64(i)*0x40)
	}
	return k
}

func (k *correlatedKernel) next(ev *bp.Event) {
	if k.state < len(k.feeders) {
		taken := k.rng.Bool(1, 2)
		if taken {
			k.parity = !k.parity
		}
		ev.Branch = bp.Branch{
			IP:     k.feeders[k.state],
			Target: k.feeders[k.state] + 0x20,
			Opcode: bp.OpCondJump,
			Taken:  taken,
		}
		k.state++
	} else {
		ev.Branch = bp.Branch{
			IP:     k.depIP,
			Target: k.depTgt,
			Opcode: bp.OpCondJump,
			Taken:  k.parity,
		}
		k.state = 0
		k.parity = false
	}
	ev.InstrsSinceLastBranch = pathGap(ev.Branch.IP, ev.Branch.Taken, k.gapMean)
}

// patternKernel: one branch repeating a fixed outcome pattern. Defeats
// bimodal when the pattern is balanced; two-level predictors lock onto it.
type patternKernel struct {
	rng     *utils.Rand
	ip, tgt uint64
	pattern []bool
	pos     int
	gapMean int
}

func newPatternKernel(ks KernelSpec, base uint64, rng *utils.Rand) (*patternKernel, error) {
	k := &patternKernel{rng: rng, ip: base, tgt: base + 0x100, gapMean: ks.GapMean}
	for _, c := range ks.PatternBits {
		switch c {
		case 'T', 't', '1':
			k.pattern = append(k.pattern, true)
		case 'N', 'n', '0':
			k.pattern = append(k.pattern, false)
		default:
			return nil, fmt.Errorf("pattern %q: bad outcome char %q", ks.PatternBits, c)
		}
	}
	return k, nil
}

func (k *patternKernel) next(ev *bp.Event) {
	ev.Branch = bp.Branch{IP: k.ip, Target: k.tgt, Opcode: bp.OpCondJump, Taken: k.pattern[k.pos]}
	k.pos = (k.pos + 1) % len(k.pattern)
	ev.InstrsSinceLastBranch = pathGap(ev.Branch.IP, ev.Branch.Taken, k.gapMean)
}

// callRetKernel: a random walk over a call stack mixed with biased
// conditionals. Calls and returns are non-conditional: the simulator tracks
// them but does not train on them (§IV-B).
type callRetKernel struct {
	rng      *utils.Rand
	base     uint64
	maxDepth int
	stack    []uint64
	condIPs  []uint64
	condPos  int
	bias     float64
	gapMean  int
}

func newCallRetKernel(ks KernelSpec, base uint64, rng *utils.Rand) *callRetKernel {
	k := &callRetKernel{rng: rng, base: base, maxDepth: ks.CallDepth, bias: ks.Bias, gapMean: ks.GapMean}
	for i := 0; i < ks.Branches; i++ {
		k.condIPs = append(k.condIPs, base+0x4000+uint64(i)*0x40)
	}
	return k
}

func (k *callRetKernel) next(ev *bp.Event) {
	roll := k.rng.Intn(10)
	switch {
	case roll < 2 && len(k.stack) < k.maxDepth: // call
		site := k.base + uint64(len(k.stack))*0x200
		callee := k.base + 0x10000 + uint64(k.rng.Intn(8))*0x400
		k.stack = append(k.stack, site+4)
		ev.Branch = bp.Branch{IP: site, Target: callee, Opcode: bp.OpCall, Taken: true}
	case roll < 4 && len(k.stack) > 0: // return
		retAddr := k.stack[len(k.stack)-1]
		k.stack = k.stack[:len(k.stack)-1]
		ev.Branch = bp.Branch{IP: k.base + 0x20000 + uint64(len(k.stack))*0x40, Target: retAddr, Opcode: bp.OpRet, Taken: true}
	default: // biased conditional, visited in program order
		i := k.condPos
		k.condPos++
		if k.condPos == len(k.condIPs) {
			k.condPos = 0
		}
		ev.Branch = bp.Branch{
			IP:     k.condIPs[i],
			Target: k.condIPs[i] + 0x20,
			Opcode: bp.OpCondJump,
			Taken:  k.rng.Float64() < k.bias,
		}
	}
	ev.InstrsSinceLastBranch = pathGap(ev.Branch.IP, ev.Branch.Taken, k.gapMean)
}

// indirectKernel: one indirect jump whose target follows a first-order
// Markov chain over Targets states, with heavy self-transition so the
// target stream has locality.
type indirectKernel struct {
	rng     *utils.Rand
	ip      uint64
	targets []uint64
	state   int
	gapMean int
}

func newIndirectKernel(ks KernelSpec, base uint64, rng *utils.Rand) *indirectKernel {
	k := &indirectKernel{rng: rng, ip: base, gapMean: ks.GapMean}
	for i := 0; i < ks.Targets; i++ {
		k.targets = append(k.targets, base+0x1000+uint64(i)*0x100)
	}
	return k
}

func (k *indirectKernel) next(ev *bp.Event) {
	// 70% stay, otherwise jump to a random state.
	if k.rng.Intn(10) >= 7 {
		k.state = k.rng.Intn(len(k.targets))
	}
	ev.Branch = bp.Branch{IP: k.ip, Target: k.targets[k.state], Opcode: bp.OpIndJump, Taken: true}
	ev.InstrsSinceLastBranch = pathGap(ev.Branch.Target, true, k.gapMean)
}
