// Package tracegen synthesises branch traces with the behaviours that drive
// branch-predictor evaluation. It stands in for the CBP5 and DPC3 trace
// sets used in the paper, which are proprietary and, as the paper's
// acknowledgements note, no longer available online.
//
// A Spec composes weighted kernels — biased data-dependent branches, loop
// nests, history-correlated branches, periodic patterns, call/return
// activity, and indirect jumps — into a deterministic stream of branch
// events. Generators implement bp.Reader, so they plug directly into the
// simulator, the trace writers and the instruction-level synthesiser used
// for ChampSim-style traces.
package tracegen

import (
	"fmt"
	"io"

	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// Kind selects a kernel behaviour.
type Kind int

// Kernel kinds.
const (
	// Biased emits a working set of static branches, each with a fixed
	// random bias toward taken. Bimodal-predictable.
	Biased Kind = iota
	// Loop emits a nest of counted loops. Predictable from history or by a
	// loop predictor; the last iteration defeats short counters.
	Loop
	// Correlated emits k feeder branches with random outcomes followed by a
	// branch computing the XOR of the feeders. Only history-based
	// predictors learn it.
	Correlated
	// Pattern emits one branch repeating a fixed outcome pattern.
	Pattern
	// CallRet emits call/return pairs mixed with biased conditionals,
	// exercising non-conditional opcodes and the track-only path.
	CallRet
	// Indirect emits indirect jumps whose target follows a Markov chain
	// over a set of targets, exercising indirect opcodes (and the BTB and
	// indirect predictor of the cycle-level model).
	Indirect
)

// String returns the lower-case kernel name.
func (k Kind) String() string {
	switch k {
	case Biased:
		return "biased"
	case Loop:
		return "loop"
	case Correlated:
		return "correlated"
	case Pattern:
		return "pattern"
	case CallRet:
		return "callret"
	case Indirect:
		return "indirect"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KernelSpec parameterises one kernel of a workload.
type KernelSpec struct {
	Kind   Kind
	Weight int // scheduling weight; defaults to 1

	// Branches is the number of static branches in the kernel working set
	// (Biased, CallRet). Defaults to 16.
	Branches int
	// Bias is the mean probability of taken for Biased/CallRet branches.
	// Defaults to 0.7. Individual branches get biases spread around it.
	Bias float64
	// Trips are the loop trip counts per nesting level, innermost last
	// (Loop). Defaults to [4, 10].
	Trips []int
	// Feeders is the number of feeder branches (Correlated). Defaults to 4.
	Feeders int
	// PatternBits is the repeating outcome pattern, e.g. "TTTN" (Pattern).
	// Defaults to "TTNTNN".
	PatternBits string
	// Targets is the number of switch targets (Indirect). Defaults to 8.
	Targets int
	// CallDepth is the maximum call-stack depth (CallRet). Defaults to 8.
	CallDepth int
	// GapMean is the mean number of non-branch instructions before each
	// branch. Defaults to 5. Actual gaps vary in [GapMean/2, 3*GapMean/2].
	GapMean int
}

func (ks KernelSpec) withDefaults() KernelSpec {
	if ks.Weight <= 0 {
		ks.Weight = 1
	}
	if ks.Branches <= 0 {
		ks.Branches = 16
	}
	if ks.Bias <= 0 || ks.Bias >= 1 {
		ks.Bias = 0.7
	}
	if len(ks.Trips) == 0 {
		ks.Trips = []int{4, 10}
	}
	if ks.Feeders <= 0 {
		ks.Feeders = 4
	}
	if ks.PatternBits == "" {
		ks.PatternBits = "TTNTNN"
	}
	if ks.Targets <= 1 {
		ks.Targets = 8
	}
	if ks.CallDepth <= 0 {
		ks.CallDepth = 8
	}
	if ks.GapMean <= 0 {
		ks.GapMean = 5
	}
	return ks
}

// Spec describes one synthetic trace.
type Spec struct {
	// Name identifies the trace, e.g. "SHORT_SERVER-1".
	Name string
	// Seed drives all randomness; equal specs generate identical traces.
	Seed uint64
	// Branches is the number of dynamic branch events to generate.
	Branches uint64
	// Kernels are the behaviours mixed into the trace.
	Kernels []KernelSpec
	// ChunkLen is the number of consecutive events drawn from one kernel
	// before rescheduling, emulating program regions. Defaults to 64.
	ChunkLen int
}

// kernel is the behaviour interface: fill the next branch event.
type kernel interface {
	next(ev *bp.Event)
}

// Generator produces the branch-event stream of a Spec. It implements
// bp.Reader. The zero value is not usable; call New.
type Generator struct {
	spec    Spec
	kernels []kernel
	weights []int
	wsum    int
	sched   *utils.Rand
	chunk   int
	current int
	emitted uint64
}

// New validates spec and returns a generator positioned at the first event.
func New(spec Spec) (*Generator, error) {
	if spec.Branches == 0 {
		return nil, fmt.Errorf("tracegen: spec %q has zero branches", spec.Name)
	}
	if len(spec.Kernels) == 0 {
		return nil, fmt.Errorf("tracegen: spec %q has no kernels", spec.Name)
	}
	if spec.ChunkLen <= 0 {
		spec.ChunkLen = 64
	}
	g := &Generator{spec: spec, sched: utils.NewRand(spec.Seed ^ 0x5eed5eed)}
	for i, ks := range spec.Kernels {
		ks = ks.withDefaults()
		// Each kernel owns an address region and a private PRNG so that its
		// behaviour does not depend on scheduling interleave.
		base := uint64(0x10_0000) * uint64(i+1)
		rng := utils.NewRand(spec.Seed + uint64(i)*0x9e3779b97f4a7c15 + 1)
		k, err := newKernel(ks, base, rng)
		if err != nil {
			return nil, fmt.Errorf("tracegen: spec %q kernel %d: %w", spec.Name, i, err)
		}
		g.kernels = append(g.kernels, k)
		g.weights = append(g.weights, ks.Weight)
		g.wsum += ks.Weight
	}
	return g, nil
}

// Spec returns the generator's specification.
func (g *Generator) Spec() Spec { return g.spec }

// TotalBranches implements half of bp.Sizer; the instruction total requires
// a dry run (see Totals).
func (g *Generator) TotalBranches() uint64 { return g.spec.Branches }

// Read implements bp.Reader: it returns the next synthetic branch event and
// io.EOF once the spec's branch budget is exhausted.
func (g *Generator) Read() (bp.Event, error) {
	if g.emitted >= g.spec.Branches {
		return bp.Event{}, io.EOF
	}
	if g.chunk == 0 {
		g.chunk = g.spec.ChunkLen
		pick := g.sched.Intn(g.wsum)
		for i, w := range g.weights {
			if pick < w {
				g.current = i
				break
			}
			pick -= w
		}
	}
	g.chunk--
	g.emitted++
	var ev bp.Event
	g.kernels[g.current].next(&ev)
	return ev, nil
}

// ReadBatch implements bp.BatchReader: it synthesises up to len(dst) events
// directly into the caller's slice, skipping the per-event interface call
// and event copy of Read. When the branch budget runs out mid-batch it
// returns the events generated so far together with io.EOF ("error after
// n"); thereafter every call returns (0, io.EOF).
func (g *Generator) ReadBatch(dst []bp.Event) (int, error) {
	n := 0
	for n < len(dst) {
		if g.emitted >= g.spec.Branches {
			return n, io.EOF
		}
		if g.chunk == 0 {
			g.chunk = g.spec.ChunkLen
			pick := g.sched.Intn(g.wsum)
			for i, w := range g.weights {
				if pick < w {
					g.current = i
					break
				}
				pick -= w
			}
		}
		g.chunk--
		g.emitted++
		dst[n] = bp.Event{}
		g.kernels[g.current].next(&dst[n])
		n++
	}
	return n, nil
}

// Totals generates the spec once, discarding events, and returns the total
// instruction and branch counts — what the SBBT header needs up front.
// Generation is deterministic, so a fresh generator reproduces exactly the
// same stream.
func Totals(spec Spec) (instructions, branches uint64, err error) {
	g, err := New(spec)
	if err != nil {
		return 0, 0, err
	}
	for {
		ev, err := g.Read()
		if err == io.EOF {
			return instructions, branches, nil
		}
		if err != nil {
			return 0, 0, err
		}
		instructions += ev.InstrsSinceLastBranch + 1
		branches++
	}
}

// pathGap computes the inter-branch instruction count for the path leading
// to a branch outcome. It is a deterministic function of the branch address
// and the previous direction taken, in [mean/2, 3*mean/2]: in a real
// program the code between two branches is fixed, so the instruction count
// is a property of the control-flow edge, not a random draw — which is
// also what lets both trace formats exploit the redundancy (§IV).
func pathGap(ip uint64, taken bool, mean int) uint64 {
	seed := ip
	if taken {
		seed ^= 0x9e3779b97f4a7c15
	}
	lo := mean / 2
	g := lo + int(utils.Mix(seed)%uint64(mean+1))
	if g > bp.MaxInstrGap {
		g = bp.MaxInstrGap
	}
	return uint64(g)
}
