package bench

import (
	"bytes"
	"io"
	"runtime"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

// benchSpec is the workload of the batching benchmarks: the kernel mix of
// the cbp5-train suite's first trace, sized so a run takes milliseconds.
func benchSpec(branches uint64) tracegen.Spec {
	return tracegen.Spec{
		Name: "bench", Seed: 7, Branches: branches,
		Kernels: []tracegen.KernelSpec{
			{Kind: tracegen.Biased}, {Kind: tracegen.Loop},
			{Kind: tracegen.Correlated}, {Kind: tracegen.CallRet},
		},
	}
}

// benchSBBT renders the benchmark workload as an in-memory SBBT trace, so
// reader benchmarks measure decoding, not disk.
func benchSBBT(b *testing.B, branches uint64) []byte {
	b.Helper()
	spec := benchSpec(branches)
	instr, total, err := tracegen.Totals(spec)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := sbbt.NewWriter(&buf, instr, total)
	if err != nil {
		b.Fatal(err)
	}
	if err := tracegen.WriteSBBT(spec, w.Write); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

const benchBranches = 200_000

// BenchmarkSBBTReadScalar decodes an SBBT stream one Read call per event:
// the pre-batching baseline.
func BenchmarkSBBTReadScalar(b *testing.B) {
	data := benchSBBT(b, benchBranches)
	b.SetBytes(benchBranches * sbbt.PacketSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sbbt.NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := r.Read(); err != nil {
				if err == io.EOF {
					break
				}
				b.Fatal(err)
			}
			n++
		}
		if n != benchBranches {
			b.Fatalf("decoded %d events, want %d", n, benchBranches)
		}
	}
	b.ReportMetric(float64(benchBranches)*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
}

// BenchmarkSBBTReadBatch decodes the same stream through ReadBatch into a
// reused 4096-event buffer.
func BenchmarkSBBTReadBatch(b *testing.B) {
	data := benchSBBT(b, benchBranches)
	dst := make([]bp.Event, 4096)
	b.SetBytes(benchBranches * sbbt.PacketSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sbbt.NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for {
			n, err := r.ReadBatch(dst)
			total += n
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if total != benchBranches {
			b.Fatalf("decoded %d events, want %d", total, benchBranches)
		}
	}
	b.ReportMetric(float64(benchBranches)*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
}

func benchmarkRun(b *testing.B, batched bool) {
	data := benchSBBT(b, benchBranches)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sbbt.NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		p, err := registry.New("gshare")
		if err != nil {
			b.Fatal(err)
		}
		var res *sim.Result
		if batched {
			res, err = sim.Run(r, p, sim.Config{})
		} else {
			res, err = sim.RunScalar(r, p, sim.Config{})
		}
		if err != nil {
			b.Fatal(err)
		}
		if !res.Metadata.ExhaustedTrace {
			b.Fatal("trace not exhausted")
		}
	}
	b.ReportMetric(float64(benchBranches)*float64(b.N)/b.Elapsed().Seconds(), "branches/s")
}

// BenchmarkRunScalar simulates gshare over the workload with the scalar
// reference loop: the pre-batching baseline.
func BenchmarkRunScalar(b *testing.B) { benchmarkRun(b, false) }

// BenchmarkRunBatched simulates the same workload through the batched
// decode-ahead pipeline.
func BenchmarkRunBatched(b *testing.B) { benchmarkRun(b, true) }

// TestRunBatchedAllocsBounded pins the zero-per-event-allocation property:
// the batched pipeline's heap allocation count must not scale with the
// event count. Both runs pay the same fixed setup (reader buffer, prefetch
// buffers, stats, result); a per-event allocation anywhere in the hot path
// would add ~180k mallocs to the large run and trip the bound at once.
func TestRunBatchedAllocsBounded(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	mallocsFor := func(branches uint64) uint64 {
		spec := benchSpec(branches)
		g, err := tracegen.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		p, err := registry.New("gshare")
		if err != nil {
			t.Fatal(err)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := sim.Run(g, p, sim.Config{}); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	small := mallocsFor(20_000)
	large := mallocsFor(200_000)
	// 10× the events must not cost measurably more allocations; allow slack
	// for goroutine scheduling noise and the stats arrays' growth.
	if large > small+2000 {
		t.Errorf("mallocs grew with event count: %d for 20k events, %d for 200k", small, large)
	}
}

// TestKernelRunAllocsBounded is the batch-kernel sibling of
// TestRunBatchedAllocsBounded, pinned on TAGE — the kernel with the most
// internal scratch (per-table index/tag buffers, folded histories). A
// batched TAGE run dispatches whole batches through TrainBatch, and its
// steady-state heap allocation count must not scale with the event count.
func TestKernelRunAllocsBounded(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	mallocsFor := func(branches uint64) uint64 {
		spec := benchSpec(branches)
		g, err := tracegen.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		p, err := registry.New("tage")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := p.(bp.BatchPredictor); !ok {
			t.Fatal("tage no longer implements bp.BatchPredictor; the test would measure the scalar path")
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := sim.Run(g, p, sim.Config{}); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	small := mallocsFor(20_000)
	large := mallocsFor(200_000)
	if large > small+2000 {
		t.Errorf("mallocs grew with event count under the TAGE kernel: %d for 20k events, %d for 200k", small, large)
	}
}
