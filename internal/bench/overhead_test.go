package bench

import (
	"os"
	"testing"
	"time"

	"mbplib/internal/cliflags"
	"mbplib/internal/obs"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

// TestMetricsOverheadSmoke asserts the observability contract's performance
// half on the bench-smoke workload: a fully instrumented sim.Run must stay
// within 10% of a metrics-disabled run. Timing assertions are inherently
// machine-sensitive, so the test only runs when MBP_METRICS_OVERHEAD is set
// (CI runs it in the continue-on-error bench job, not the tier-1 test job).
func TestMetricsOverheadSmoke(t *testing.T) {
	if os.Getenv("MBP_METRICS_OVERHEAD") == "" {
		t.Skip("set MBP_METRICS_OVERHEAD=1 to run the metrics overhead smoke")
	}
	specs, err := tracegen.Suite("cbp5-train", 200_000)
	if err != nil {
		t.Fatal(err)
	}
	spec := specs[0]

	run := func(col *obs.Collector) time.Duration {
		g, err := tracegen.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		p, err := registry.New("gshare")
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := sim.Run(g, p, sim.Config{TraceName: spec.Name, Metrics: col}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	// Best-of-rounds on both sides damps scheduler noise; one warmup run
	// pays the lazy-initialisation costs outside the measurement.
	const rounds = 5
	run(nil)
	best := func(col *obs.Collector) time.Duration {
		bestD := time.Duration(0)
		for i := 0; i < rounds; i++ {
			if d := run(col); bestD == 0 || d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	off := best(nil)
	on := best(obs.New())
	if limit := off + off/10; on > limit {
		t.Errorf("metrics overhead too high: %v with metrics vs %v without (limit %v)", on, off, limit)
	}
	t.Logf("metrics overhead: %v on vs %v off (%.1f%%)", on, off, 100*(float64(on)/float64(off)-1))
}

// TestJournalOverheadSmoke asserts the resumable-sweep durability contract's
// performance half: journalling every cell result (fsync per record) at the
// default checkpoint interval must cost under 3% of cell time. The fsync
// cost is per cell, so the bound only holds for cells of realistic size —
// hence an 8M-event trace and the full-run predictor set including TAGE,
// matching the snapshot's journal stage — and the same env gate as the
// metrics smoke (CI runs it in the continue-on-error bench job).
func TestJournalOverheadSmoke(t *testing.T) {
	if os.Getenv("MBP_JOURNAL_OVERHEAD") == "" {
		t.Skip("set MBP_JOURNAL_OVERHEAD=1 to run the journal overhead smoke")
	}
	dir := t.TempDir()
	paths, err := PrepareSweepTraces(dir, 1, 8_000_000)
	if err != nil {
		t.Fatal(err)
	}
	st, err := MeasureJournal(paths, []string{"bimodal", "gshare", "tage"}, cliflags.DefaultCheckpointEvery, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.OverheadFraction > 0.03 {
		t.Errorf("journal overhead too high: %.2f%% (%.4fs journalling in a %.3fs sweep, limit 3%%)",
			100*st.OverheadFraction, st.JournalSeconds, st.Journalled.Seconds)
	}
	t.Logf("journal overhead: %.2f%% over %d cells (%.4fs journalling; plain %.3fs, journalled %.3fs)",
		100*st.OverheadFraction, st.Cells, st.JournalSeconds, st.Plain.Seconds, st.Journalled.Seconds)
}
