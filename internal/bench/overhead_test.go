package bench

import (
	"os"
	"testing"
	"time"

	"mbplib/internal/obs"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

// TestMetricsOverheadSmoke asserts the observability contract's performance
// half on the bench-smoke workload: a fully instrumented sim.Run must stay
// within 10% of a metrics-disabled run. Timing assertions are inherently
// machine-sensitive, so the test only runs when MBP_METRICS_OVERHEAD is set
// (CI runs it in the continue-on-error bench job, not the tier-1 test job).
func TestMetricsOverheadSmoke(t *testing.T) {
	if os.Getenv("MBP_METRICS_OVERHEAD") == "" {
		t.Skip("set MBP_METRICS_OVERHEAD=1 to run the metrics overhead smoke")
	}
	specs, err := tracegen.Suite("cbp5-train", 200_000)
	if err != nil {
		t.Fatal(err)
	}
	spec := specs[0]

	run := func(col *obs.Collector) time.Duration {
		g, err := tracegen.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		p, err := registry.New("gshare")
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := sim.Run(g, p, sim.Config{TraceName: spec.Name, Metrics: col}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	// Best-of-rounds on both sides damps scheduler noise; one warmup run
	// pays the lazy-initialisation costs outside the measurement.
	const rounds = 5
	run(nil)
	best := func(col *obs.Collector) time.Duration {
		bestD := time.Duration(0)
		for i := 0; i < rounds; i++ {
			if d := run(col); bestD == 0 || d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	off := best(nil)
	on := best(obs.New())
	if limit := off + off/10; on > limit {
		t.Errorf("metrics overhead too high: %v with metrics vs %v without (limit %v)", on, off, limit)
	}
	t.Logf("metrics overhead: %v on vs %v off (%.1f%%)", on, off, 100*(float64(on)/float64(off)-1))
}
