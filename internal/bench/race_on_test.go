//go:build race

package bench

// raceDetectorEnabled mirrors the build's -race flag so timing-shape tests
// can skip themselves: race instrumentation slows memory-heavy code by a
// predictor-dependent factor, which invalidates wall-clock ratio assertions.
const raceDetectorEnabled = true
