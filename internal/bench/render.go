package bench

import (
	"fmt"
	"strings"
	"time"
)

// HumanBytes renders a byte count with a binary-ish unit, as the paper's
// tables do (MB/GB).
func HumanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f kB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// HumanDuration renders a duration the way the paper's Table III does
// (h / min / s / ms).
func HumanDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.2f h", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.2f min", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2f s", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2f ms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%d µs", d.Microseconds())
	}
}

// RenderTableI renders Table I rows as a Markdown table.
func RenderTableI(rows []SizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| Trace Set | Num. of Traces | Original Size | Translated Size | Size Ratio |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %s | %s | %.1f× |\n",
			r.Set, r.NumTraces, HumanBytes(r.OriginalBytes), HumanBytes(r.TranslatedBytes), r.Ratio)
	}
	return b.String()
}

// RenderTimingRows renders Table III/IV rows as a Markdown table with the
// paper's slowest/average/fastest sub-rows. The column labels name the two
// simulators compared.
func RenderTimingRows(rows []TimingRow, baseline, ours string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| Predictor | Traces | %s | %s | Speedup |\n", baseline, ours)
	fmt.Fprintf(&b, "|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | Slowest | %s | %s | %.2f× |\n",
			r.Predictor, HumanDuration(r.Baseline.Slowest), HumanDuration(r.MBPlib.Slowest), r.SpeedupSlowest)
		fmt.Fprintf(&b, "| | Average | %s | %s | %.2f× |\n",
			HumanDuration(r.Baseline.Average), HumanDuration(r.MBPlib.Average), r.SpeedupAverage)
		fmt.Fprintf(&b, "| | Fastest | %s | %s | %.2f× |\n",
			HumanDuration(r.Baseline.Fastest), HumanDuration(r.MBPlib.Fastest), r.SpeedupFastest)
	}
	return b.String()
}

// RenderTableIV renders Table IV rows (averages only, as in the paper).
func RenderTableIV(rows []TimingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| (Averages) | CBP5 Gzip | CBP5 MLZ | Speedup |\n")
	fmt.Fprintf(&b, "|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %s | %s | %.2f× |\n",
			r.Predictor, HumanDuration(r.Baseline.Average), HumanDuration(r.MBPlib.Average), r.SpeedupAverage)
	}
	return b.String()
}
