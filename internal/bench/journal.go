package bench

import (
	"fmt"
	"os"
	"time"

	"mbplib/internal/sim"
	"mbplib/internal/sim/journal"
)

// JournalMeasurement is one variant of the journal-overhead stage: the same
// single-worker sweep matrix with or without a crash-safety journal.
type JournalMeasurement struct {
	Seconds           float64 `json:"seconds"`
	AggBranchesPerSec float64 `json:"agg_branches_per_sec"`
}

// JournalStage records the write overhead of the resumable-sweep journal:
// the same matrix run without a journal and run appending every cell result
// (fsync per record) at the default checkpoint interval. The contract is
// that durability costs a few percent of cell time — but the fsync cost is
// per cell, so the fraction is only meaningful over cells of realistic size;
// callers should hand this stage their largest traces, not a smoke matrix.
//
// OverheadFraction is the committed evidence, and it is measured directly:
// the scheduler accrues its journal encode+write+fsync time on the obs
// "journal" stage clock, so the fraction is journal seconds over the
// journalled run's wall time — not the difference of two wall-clock
// measurements, which at percent level is dominated by scheduler noise.
// The wall times of both variants are still recorded for context.
type JournalStage struct {
	Cells           int                `json:"cells"`
	CheckpointEvery uint64             `json:"checkpoint_every"`
	Plain           JournalMeasurement `json:"plain"`
	Journalled      JournalMeasurement `json:"journalled"`
	// JournalSeconds is time inside journal appends (obs stage clock) during
	// the best journalled round.
	JournalSeconds float64 `json:"journal_seconds"`
	// OverheadFraction is JournalSeconds over the best journalled round's
	// wall time: 0.01 means 1% of cell time went to durability.
	OverheadFraction float64 `json:"overhead_fraction"`
}

// MeasureJournal benchmarks the journal's write overhead over the given SBBT
// trace files and predictor specs, taking the best of rounds runs per
// variant. Every journalled round writes into a fresh directory so no round
// replays a predecessor's cells; opening and closing the journal happens
// once per sweep, not per cell, so it sits outside the timed region.
func MeasureJournal(paths, predictorSpecs []string, checkpointEvery uint64, rounds int) (*JournalStage, error) {
	if rounds < 1 {
		rounds = 1
	}
	sources := traceSources(paths)
	preds, err := sweepPredictors(predictorSpecs)
	if err != nil {
		return nil, err
	}
	total, err := matrixBranches(paths, len(preds))
	if err != nil {
		return nil, err
	}
	st := &JournalStage{Cells: len(sources) * len(preds), CheckpointEvery: checkpointEvery}

	run := func(jnl *journal.Journal) (wall, journalSec float64, err error) {
		col := runCollector()
		before := col.Snapshot()
		start := time.Now()
		_, err = sim.SweepParallel(sources, preds, sim.Config{}, sim.ParallelOptions{
			Workers: 1, Metrics: col,
			Journal: jnl, CheckpointEvery: checkpointEvery,
		})
		wall = time.Since(start).Seconds()
		journalSec = diffStageSeconds(before, col.Snapshot())["journal"]
		return wall, journalSec, err
	}

	var plainSec, jnlSec, journalSec float64
	for i := 0; i < rounds; i++ {
		sec, _, err := run(nil)
		if err != nil {
			return nil, fmt.Errorf("bench: plain sweep: %w", err)
		}
		if plainSec == 0 || sec < plainSec {
			plainSec = sec
		}
		dir, err := os.MkdirTemp("", "mbpbench-journal")
		if err != nil {
			return nil, err
		}
		jnl, err := journal.Open(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		sec, jsec, err := run(jnl)
		if cerr := jnl.Close(); err == nil {
			err = cerr
		}
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("bench: journalled sweep: %w", err)
		}
		if jnlSec == 0 || sec < jnlSec {
			jnlSec, journalSec = sec, jsec
		}
	}
	st.Plain = JournalMeasurement{Seconds: plainSec}
	st.Journalled = JournalMeasurement{Seconds: jnlSec}
	st.JournalSeconds = journalSec

	if plainSec > 0 {
		st.Plain.AggBranchesPerSec = float64(total) / plainSec
	}
	if jnlSec > 0 {
		st.Journalled.AggBranchesPerSec = float64(total) / jnlSec
		st.OverheadFraction = journalSec / jnlSec
	}
	return st, nil
}
