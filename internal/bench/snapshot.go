package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/compress"
	"mbplib/internal/obs"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
)

// SimMeasurement is one measured configuration of the batching snapshot:
// wall time, throughput and allocation behaviour over a full trace-file
// pass (decompression and decode included, as in the paper's methodology).
type SimMeasurement struct {
	Seconds         float64 `json:"seconds"`
	BranchesPerSec  float64 `json:"branches_per_sec"`
	MallocsPerEvent float64 `json:"mallocs_per_event"`
	// StageSeconds breaks the batched pipeline's time down by obs stage
	// (read, warmup, sim, prefetch_stall, produce_stall) — recorded through
	// an obs.Collector, so it is absent on scalar variants and on snapshots
	// written before the observability layer existed.
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
}

// Stage pairs the scalar baseline with the batched pipeline for one
// pipeline stage (trace decode alone, or a full simulation).
type Stage struct {
	Scalar  SimMeasurement `json:"scalar"`
	Batched SimMeasurement `json:"batched"`
	Speedup float64        `json:"speedup"`
}

// SimEntry is one full-simulation comparison: the scalar reference loop
// against the batched decode-ahead pipeline under a given predictor.
type SimEntry struct {
	Predictor string `json:"predictor"`
	Stage
	// Kernel records the dispatch-level batch-kernel comparison for
	// predictors implementing bp.BatchPredictor: bp.SimulateBatch over the
	// decoded in-memory trace with the native kernel (Batched) against the
	// same predictor with the kernel stripped via bp.ScalarOnly (Scalar).
	// Trace decode and simulator accounting are excluded on both sides, so
	// the ratio isolates what the fused TrainBatch kernel buys. Absent for
	// predictors without a kernel and for snapshots written before batch
	// kernels existed.
	Kernel *Stage `json:"kernel,omitempty"`
}

// SimSnapshot is the committed record of the batching optimisation
// (BENCH_sim.json). Read isolates the trace-decode stage (drain the file,
// no predictor); Sim is the end-to-end run, whose speedup shrinks as the
// predictor's own cost grows.
type SimSnapshot struct {
	Trace      string     `json:"trace"`
	Branches   uint64     `json:"branches"`
	GoVersion  string     `json:"go_version"`
	GOARCH     string     `json:"goarch"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Read       Stage      `json:"read"`
	Sim        []SimEntry `json:"sim"`
	// Sweep records the parallel sweep scheduler's scaling curve against
	// the legacy sequential path (absent in snapshots written before the
	// scheduler existed).
	Sweep *SweepStage `json:"sweep,omitempty"`
	// Journal records the crash-safety journal's write overhead over the
	// sweep matrix (absent in snapshots written before resumable sweeps
	// existed).
	Journal *JournalStage `json:"journal,omitempty"`
	// ChunkDecode records the seekable (MLZS) container's parallel
	// chunk-decode scaling curve (absent in snapshots written before the
	// chunked container existed).
	ChunkDecode *ChunkDecodeStage `json:"chunk_decode,omitempty"`
}

// collector is the optional command-installed obs collector: when mbpbench
// runs with -metrics, every measured simulation accrues into it so the final
// snapshot covers the whole bench session. Measurements that need a per-run
// stage breakdown diff its snapshots around the run instead of assuming it
// starts empty.
var collector *obs.Collector

// SetCollector installs the session-wide obs collector (nil disables, the
// default). Call before any Measure function; not safe to change while a
// measurement is running.
func SetCollector(col *obs.Collector) { collector = col }

// runCollector returns the collector to instrument one measured run: the
// session-wide one when installed, else a fresh local one so the stage
// breakdown is still recorded.
func runCollector() *obs.Collector {
	if collector != nil {
		return collector
	}
	return obs.New()
}

// diffStageSeconds returns the per-stage seconds accrued between two
// snapshots of the same collector, skipping stages that did not advance.
func diffStageSeconds(before, after obs.Snapshot) map[string]float64 {
	var out map[string]float64
	for name, st := range after.Stages {
		delta := st.Seconds - before.Stages[name].Seconds
		if delta <= 0 {
			continue
		}
		if out == nil {
			out = make(map[string]float64, len(after.Stages))
		}
		out[name] = delta
	}
	return out
}

// openTrace opens the (possibly compressed) SBBT trace file.
func openTrace(path string) (io.ReadCloser, *sbbt.Reader, error) {
	f, err := compress.OpenFile(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := sbbt.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return f, r, nil
}

// drainVariant decodes every event of the trace file without simulating,
// via the scalar Read loop or ReadBatch, isolating the decode stage.
func drainVariant(path string, batched bool) (m SimMeasurement, events uint64, err error) {
	f, r, err := openTrace(path)
	if err != nil {
		return SimMeasurement{}, 0, err
	}
	defer f.Close()
	dst := make([]bp.Event, 4096)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for {
		if batched {
			_, err = r.ReadBatch(dst)
		} else {
			_, err = r.Read()
		}
		if err != nil {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != io.EOF {
		return SimMeasurement{}, 0, err
	}
	events = r.TotalBranches()
	m = SimMeasurement{Seconds: elapsed.Seconds()}
	if events > 0 && m.Seconds > 0 {
		m.BranchesPerSec = float64(events) / m.Seconds
		m.MallocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
	}
	return m, events, nil
}

// runVariant simulates the trace file once with either the scalar
// reference loop or the batched pipeline, returning the measurement and
// the trace's total dynamic branch count (the throughput denominator:
// every event flows through Track, not just the conditional ones).
func runVariant(path, predictorSpec string, batched bool) (m SimMeasurement, events uint64, err error) {
	p, err := registry.New(predictorSpec)
	if err != nil {
		return SimMeasurement{}, 0, err
	}
	f, r, err := openTrace(path)
	if err != nil {
		return SimMeasurement{}, 0, err
	}
	defer f.Close()
	var res *sim.Result
	var col *obs.Collector
	var stagesBefore obs.Snapshot
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if batched {
		col = runCollector()
		stagesBefore = col.Snapshot()
		res, err = sim.Run(r, p, sim.Config{TraceName: path, Metrics: col})
	} else {
		res, err = sim.RunScalar(r, p, sim.Config{TraceName: path})
	}
	runtime.ReadMemStats(&after)
	if err != nil {
		return SimMeasurement{}, 0, err
	}
	events = r.TotalBranches()
	m = SimMeasurement{Seconds: res.Metrics.SimulationTime}
	if events > 0 && m.Seconds > 0 {
		m.BranchesPerSec = float64(events) / m.Seconds
		m.MallocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
	}
	if col != nil {
		m.StageSeconds = diffStageSeconds(stagesBefore, col.Snapshot())
	}
	return m, events, nil
}

// loadBranches decodes the trace file's full branch stream into memory, so
// kernel measurements time predictor arithmetic rather than decoding.
func loadBranches(path string) ([]bp.Branch, error) {
	f, r, err := openTrace(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var branches []bp.Branch
	dst := make([]bp.Event, 4096)
	for {
		n, err := r.ReadBatch(dst)
		for i := 0; i < n; i++ {
			branches = append(branches, dst[i].Branch)
		}
		if err == io.EOF {
			return branches, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// kernelBatch is the dispatch batch size of the kernel measurement,
// matching the simulator's decode-ahead batch capacity.
const kernelBatch = 4096

// measureKernel times the dispatch-level kernel comparison for one
// predictor: bp.SimulateBatch over the pre-decoded trace, once with the
// native bp.BatchPredictor kernel and once with the kernel stripped
// (bp.ScalarOnly), best of rounds. Returns nil for predictors without a
// kernel.
func measureKernel(branches []bp.Branch, spec string, rounds int) (*Stage, error) {
	if p, err := registry.New(spec); err != nil {
		return nil, err
	} else if _, ok := p.(bp.BatchPredictor); !ok {
		return nil, nil
	}
	out := make([]bp.Prediction, kernelBatch)
	variant := func(kernel bool) (SimMeasurement, uint64, error) {
		p, err := registry.New(spec)
		if err != nil {
			return SimMeasurement{}, 0, err
		}
		if !kernel {
			p = bp.ScalarOnly(p)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for off := 0; off < len(branches); off += kernelBatch {
			end := off + kernelBatch
			if end > len(branches) {
				end = len(branches)
			}
			bp.SimulateBatch(p, branches[off:end], out[:end-off])
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		events := uint64(len(branches))
		m := SimMeasurement{Seconds: elapsed.Seconds()}
		if events > 0 && m.Seconds > 0 {
			m.BranchesPerSec = float64(events) / m.Seconds
			m.MallocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		}
		return m, events, nil
	}
	st, _, err := measureStage(rounds, func(batched bool) (SimMeasurement, uint64, error) {
		return variant(batched)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// measureStage takes the best of rounds runs per variant and derives the
// scalar-over-batched speedup.
func measureStage(rounds int, variant func(batched bool) (SimMeasurement, uint64, error)) (Stage, uint64, error) {
	var st Stage
	var branches uint64
	measure := func(batched bool) (SimMeasurement, error) {
		best := SimMeasurement{}
		for i := 0; i < rounds; i++ {
			m, events, err := variant(batched)
			if err != nil {
				return SimMeasurement{}, err
			}
			branches = events
			if best.Seconds == 0 || m.Seconds < best.Seconds {
				best = m
			}
		}
		return best, nil
	}
	var err error
	if st.Scalar, err = measure(false); err != nil {
		return Stage{}, 0, err
	}
	if st.Batched, err = measure(true); err != nil {
		return Stage{}, 0, err
	}
	if st.Batched.Seconds > 0 {
		st.Speedup = st.Scalar.Seconds / st.Batched.Seconds
	}
	return st, branches, nil
}

// MeasureSim benchmarks the scalar paths against the batched pipeline over
// one SBBT trace file: the decode stage in isolation, then a full
// simulation per predictor, taking the best of rounds runs per variant.
func MeasureSim(path string, predictors []string, rounds int) (*SimSnapshot, error) {
	if rounds < 1 {
		rounds = 1
	}
	snap := &SimSnapshot{
		Trace:      path,
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var err error
	if snap.Read, snap.Branches, err = measureStage(rounds, func(batched bool) (SimMeasurement, uint64, error) {
		return drainVariant(path, batched)
	}); err != nil {
		return nil, err
	}
	var kernelBranches []bp.Branch
	for _, spec := range predictors {
		st, _, err := measureStage(rounds, func(batched bool) (SimMeasurement, uint64, error) {
			return runVariant(path, spec, batched)
		})
		if err != nil {
			return nil, err
		}
		entry := SimEntry{Predictor: spec, Stage: st}
		if p, err := registry.New(spec); err == nil {
			if _, ok := p.(bp.BatchPredictor); ok {
				// The branch stream is decoded once, lazily, and shared by
				// every kernel-capable predictor's dispatch measurement.
				if kernelBranches == nil {
					if kernelBranches, err = loadBranches(path); err != nil {
						return nil, err
					}
				}
				if entry.Kernel, err = measureKernel(kernelBranches, spec, rounds); err != nil {
					return nil, err
				}
			}
		}
		snap.Sim = append(snap.Sim, entry)
	}
	return snap, nil
}

// WriteSimSnapshot writes the snapshot as indented JSON to path.
func WriteSimSnapshot(path string, snap *SimSnapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing snapshot: %w", err)
	}
	return nil
}
