package bench

import (
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/compress"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

// SweepMeasurement is one worker count of the parallel-sweep scaling curve.
type SweepMeasurement struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// AggBranchesPerSec is the whole matrix's branch count (every trace
	// simulated once per predictor) over the wall time.
	AggBranchesPerSec float64 `json:"agg_branches_per_sec"`
	// Speedup is sequential seconds over this configuration's seconds.
	Speedup float64 `json:"speedup"`
}

// SweepStage records the parallel sweep scheduler against the legacy
// sequential path on a traces × predictors matrix: the sequential baseline
// runs one single-worker RunSetPolicy per predictor (re-decoding every trace
// per predictor), the parallel rows run SweepParallel with its shared
// decoded-trace cache at increasing worker counts.
type SweepStage struct {
	Traces        []string           `json:"traces"`
	Predictors    []string           `json:"predictors"`
	TotalBranches uint64             `json:"total_branches"` // across the whole matrix
	Sequential    SweepMeasurement   `json:"sequential"`
	Parallel      []SweepMeasurement `json:"parallel"`
}

// SweepSpecs returns n high-entropy synthetic trace specs for the sweep
// stage: near-unbiased outcomes over large working sets compress poorly, so
// the per-pair gzip decode the cache eliminates is a realistic share of the
// pair cost (real CBP5 traces are likewise far less regular than the table
// suites' loop kernels).
func SweepSpecs(n int, scale uint64) []tracegen.Spec {
	specs := make([]tracegen.Spec, n)
	for i := range specs {
		specs[i] = tracegen.Spec{
			Name:     fmt.Sprintf("SWEEP-%d", i+1),
			Seed:     0x53E9_0001 + uint64(i)*0x9177,
			Branches: scale,
			Kernels: []tracegen.KernelSpec{
				{Kind: tracegen.Biased, Branches: 16384, Bias: 0.5, Weight: 3, GapMean: 9},
				{Kind: tracegen.Indirect, Targets: 256, GapMean: 7},
				{Kind: tracegen.CallRet, Branches: 2048, Bias: 0.5, GapMean: 11},
			},
			ChunkLen: 16,
		}
	}
	return specs
}

// PrepareSweepTraces materialises the sweep-stage traces as gzip-compressed
// SBBT files under dir, returning their paths.
func PrepareSweepTraces(dir string, n int, scale uint64) ([]string, error) {
	paths := make([]string, n)
	for i, spec := range SweepSpecs(n, scale) {
		path := filepath.Join(dir, spec.Name+".sbbt.gz")
		if err := writeSBBTFile(path, spec); err != nil {
			return nil, err
		}
		paths[i] = path
	}
	return paths, nil
}

// traceSources builds lazy trace sources over SBBT files of any supported
// compression.
func traceSources(paths []string) []sim.TraceSource {
	sources := make([]sim.TraceSource, len(paths))
	for i, path := range paths {
		sources[i] = sim.TraceSource{Name: path, Open: func() (bp.Reader, io.Closer, error) {
			f, err := compress.OpenFile(path)
			if err != nil {
				return nil, nil, err
			}
			r, err := sbbt.NewReader(f)
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			return r, f, nil
		}}
	}
	return sources
}

// sweepPredictors resolves registry specs into sweep predictor specs,
// validating each once.
func sweepPredictors(specs []string) ([]sim.PredictorSpec, error) {
	preds := make([]sim.PredictorSpec, len(specs))
	for i, spec := range specs {
		if _, err := registry.New(spec); err != nil {
			return nil, err
		}
		preds[i] = sim.PredictorSpec{Name: spec, New: func() bp.Predictor {
			p, err := registry.New(spec)
			if err != nil {
				panic(err) // validated above; specs are immutable strings
			}
			return p
		}}
	}
	return preds, nil
}

// matrixBranches sums the header branch counts of the trace files and scales
// by the predictor count: every trace flows through every predictor once.
func matrixBranches(paths []string, nPredictors int) (uint64, error) {
	var perPass uint64
	for _, path := range paths {
		f, err := compress.OpenFile(path)
		if err != nil {
			return 0, err
		}
		r, err := sbbt.NewReader(f)
		if err != nil {
			f.Close()
			return 0, err
		}
		perPass += r.TotalBranches()
		if err := f.Close(); err != nil {
			return 0, err
		}
	}
	return perPass * uint64(nPredictors), nil
}

// MeasureSweep benchmarks the parallel sweep scheduler over the given SBBT
// trace files and predictor specs, taking the best of rounds runs per
// configuration. workersList is the scaling curve (e.g. 1, 2, 4, NumCPU).
func MeasureSweep(paths, predictorSpecs []string, workersList []int, rounds int) (*SweepStage, error) {
	if rounds < 1 {
		rounds = 1
	}
	sources := traceSources(paths)
	preds, err := sweepPredictors(predictorSpecs)
	if err != nil {
		return nil, err
	}
	total, err := matrixBranches(paths, len(preds))
	if err != nil {
		return nil, err
	}
	st := &SweepStage{Traces: paths, Predictors: predictorSpecs, TotalBranches: total}

	best := func(run func() error) (float64, error) {
		var bestSec float64
		for i := 0; i < rounds; i++ {
			start := time.Now()
			if err := run(); err != nil {
				return 0, err
			}
			if sec := time.Since(start).Seconds(); bestSec == 0 || sec < bestSec {
				bestSec = sec
			}
		}
		return bestSec, nil
	}

	seqSec, err := best(func() error {
		for _, ps := range preds {
			cfg := sim.Config{Metrics: collector}
			if _, err := sim.RunSetPolicy(sources, ps.New, cfg, 1, sim.Policy{}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("bench: sequential sweep: %w", err)
	}
	st.Sequential = SweepMeasurement{Workers: 1, Seconds: seqSec, Speedup: 1}
	if seqSec > 0 {
		st.Sequential.AggBranchesPerSec = float64(total) / seqSec
	}

	for _, w := range workersList {
		parSec, err := best(func() error {
			_, err := sim.SweepParallel(sources, preds, sim.Config{}, sim.ParallelOptions{
				Workers: w, Metrics: collector,
			})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: parallel sweep (%d workers): %w", w, err)
		}
		m := SweepMeasurement{Workers: w, Seconds: parSec}
		if parSec > 0 {
			m.AggBranchesPerSec = float64(total) / parSec
			m.Speedup = seqSec / parSec
		}
		st.Parallel = append(st.Parallel, m)
	}
	return st, nil
}

// DefaultSweepWorkers is the scaling curve the snapshot records: 1, 2, 4 and
// NumCPU workers, deduplicated and sorted.
func DefaultSweepWorkers() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	var out []int
	for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
		if set[w] {
			out = append(out, w)
			set[w] = false
		}
	}
	return out
}
