package bench

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"mbplib/internal/bp"
	"mbplib/internal/compress"
	"mbplib/internal/sbbt"
)

// ChunkDecodeMeasurement is one decode width of the seekable-container
// scaling curve.
type ChunkDecodeMeasurement struct {
	Workers        int     `json:"workers"`
	Seconds        float64 `json:"seconds"`
	BranchesPerSec float64 `json:"branches_per_sec"`
	// Speedup is sequential seconds over this width's seconds.
	Speedup float64 `json:"speedup"`
}

// ChunkDecodeStage records the parallel chunk-decode scaling of the seekable
// (MLZS) container: a full decode drain of one high-entropy trace through
// compress.OpenFileParallel at increasing -decode-j widths against the
// single-worker baseline. The drain includes SBBT event decoding, so the
// curve flattens once decompression stops being the bottleneck — the same
// ceiling mbprun -decode-j sees.
type ChunkDecodeStage struct {
	Trace           string                   `json:"trace"`
	Branches        uint64                   `json:"branches"`
	Chunks          int                      `json:"chunks"`
	RawBytes        int64                    `json:"raw_bytes"`
	CompressedBytes int64                    `json:"compressed_bytes"`
	Sequential      ChunkDecodeMeasurement   `json:"sequential"`
	Parallel        []ChunkDecodeMeasurement `json:"parallel"`
}

// PrepareChunkTrace materialises one high-entropy sweep-spec trace as a
// packet-aligned seekable .sbbt.mlzs container under dir, returning its path.
// High entropy matters twice here: the chunks compress poorly, so per-chunk
// decompression is a realistic share of the drain.
func PrepareChunkTrace(dir string, scale uint64) (string, error) {
	spec := SweepSpecs(1, scale)[0]
	path := filepath.Join(dir, spec.Name+".sbbt.mlzs")
	if err := writeSBBTMLZSFile(path, spec, 4); err != nil {
		return "", err
	}
	return path, nil
}

// drainChunkDecode decodes every event of the seekable container at the
// given decode width, no predictor — the container analogue of drainVariant.
func drainChunkDecode(path string, workers int) (sec float64, branches uint64, err error) {
	f, err := compress.OpenFileParallel(path, workers)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r, err := sbbt.NewReader(f)
	if err != nil {
		return 0, 0, err
	}
	dst := make([]bp.Event, 4096)
	start := time.Now()
	for {
		if _, err = r.ReadBatch(dst); err != nil {
			break
		}
	}
	elapsed := time.Since(start)
	if err != io.EOF {
		return 0, 0, err
	}
	return elapsed.Seconds(), r.TotalBranches(), nil
}

// MeasureChunkDecode benchmarks the parallel chunk decoder over one seekable
// container at each width in workersList, taking the best of rounds runs per
// width. Width 1 is always measured as the sequential baseline; workersList
// entries <= 1 are skipped.
func MeasureChunkDecode(path string, workersList []int, rounds int) (*ChunkDecodeStage, error) {
	if rounds < 1 {
		rounds = 1
	}
	stat, err := compress.StatMLZSFile(path)
	if err != nil {
		return nil, err
	}
	st := &ChunkDecodeStage{
		Trace:           path,
		Chunks:          stat.Chunks,
		RawBytes:        stat.RawSize,
		CompressedBytes: stat.CompressedSize,
	}

	best := func(workers int) (ChunkDecodeMeasurement, error) {
		m := ChunkDecodeMeasurement{Workers: workers}
		for i := 0; i < rounds; i++ {
			sec, branches, err := drainChunkDecode(path, workers)
			if err != nil {
				return ChunkDecodeMeasurement{}, fmt.Errorf("bench: chunk decode (%d workers): %w", workers, err)
			}
			st.Branches = branches
			if m.Seconds == 0 || sec < m.Seconds {
				m.Seconds = sec
			}
		}
		if m.Seconds > 0 {
			m.BranchesPerSec = float64(st.Branches) / m.Seconds
		}
		return m, nil
	}

	if st.Sequential, err = best(1); err != nil {
		return nil, err
	}
	st.Sequential.Speedup = 1
	for _, w := range workersList {
		if w <= 1 {
			continue
		}
		m, err := best(w)
		if err != nil {
			return nil, err
		}
		if m.Seconds > 0 {
			m.Speedup = st.Sequential.Seconds / m.Seconds
		}
		st.Parallel = append(st.Parallel, m)
	}
	return st, nil
}
