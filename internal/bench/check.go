package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// ReadSimSnapshot loads a committed BENCH_sim.json.
func ReadSimSnapshot(path string) (*SimSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading snapshot: %w", err)
	}
	var snap SimSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("bench: parsing snapshot %s: %w", path, err)
	}
	return &snap, nil
}

// CompareSnapshots checks a freshly measured snapshot against a committed
// one and returns one line per stage whose throughput regressed by more than
// factor (e.g. 2 = half the committed branches/sec). The committed absolute
// numbers come from a different machine and trace scale, so only a gross
// regression is meaningful; shared CI runners need the slack.
func CompareSnapshots(committed, fresh *SimSnapshot, factor float64) []string {
	var bad []string
	check := func(stage string, committedBPS, freshBPS float64) {
		if committedBPS <= 0 || freshBPS <= 0 {
			return
		}
		if freshBPS*factor < committedBPS {
			bad = append(bad, fmt.Sprintf("%s: %.3g branches/sec, committed %.3g (>%.1fx regression)",
				stage, freshBPS, committedBPS, factor))
		}
	}
	check("read/batched", committed.Read.Batched.BranchesPerSec, fresh.Read.Batched.BranchesPerSec)
	freshSim := map[string]SimEntry{}
	for _, e := range fresh.Sim {
		freshSim[e.Predictor] = e
	}
	for _, e := range committed.Sim {
		f, ok := freshSim[e.Predictor]
		if !ok {
			continue // predictor set changed; not a regression
		}
		check("sim/"+e.Predictor+"/batched", e.Batched.BranchesPerSec, f.Batched.BranchesPerSec)
		// Kernel stages compare only when both snapshots carry one: the
		// committed side may predate batch kernels, and the fresh side may
		// measure a predictor whose kernel was (deliberately) removed —
		// that change shows up in review, not as a throughput regression.
		if e.Kernel != nil && f.Kernel != nil {
			check("sim/"+e.Predictor+"/kernel", e.Kernel.Batched.BranchesPerSec, f.Kernel.Batched.BranchesPerSec)
		}
	}
	if committed.Journal != nil && fresh.Journal != nil {
		check("journal/journalled", committed.Journal.Journalled.AggBranchesPerSec,
			fresh.Journal.Journalled.AggBranchesPerSec)
	}
	if committed.ChunkDecode != nil && fresh.ChunkDecode != nil {
		freshPar := map[int]ChunkDecodeMeasurement{}
		for _, m := range fresh.ChunkDecode.Parallel {
			freshPar[m.Workers] = m
		}
		for _, m := range committed.ChunkDecode.Parallel {
			f, ok := freshPar[m.Workers]
			if !ok {
				continue
			}
			check(fmt.Sprintf("chunk_decode/%d-workers", m.Workers), m.BranchesPerSec, f.BranchesPerSec)
		}
	}
	if committed.Sweep != nil && fresh.Sweep != nil {
		freshPar := map[int]SweepMeasurement{}
		for _, m := range fresh.Sweep.Parallel {
			freshPar[m.Workers] = m
		}
		for _, m := range committed.Sweep.Parallel {
			f, ok := freshPar[m.Workers]
			if !ok {
				continue
			}
			check(fmt.Sprintf("sweep/%d-workers", m.Workers), m.AggBranchesPerSec, f.AggBranchesPerSec)
		}
	}
	return bad
}

// CheckError renders CompareSnapshots violations as one error, or nil.
func CheckError(violations []string) error {
	if len(violations) == 0 {
		return nil
	}
	return fmt.Errorf("bench: throughput regressions:\n  %s", strings.Join(violations, "\n  "))
}
