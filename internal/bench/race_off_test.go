//go:build !race

package bench

// raceDetectorEnabled mirrors the build's -race flag; see race_on_test.go.
const raceDetectorEnabled = false
