package bench

import (
	"strings"
	"testing"
	"time"

	"mbplib/internal/predictors/registry"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

// smallScale keeps the harness tests fast; the experiment shapes hold at
// any scale.
const smallScale = 4000

func TestPrepareSuiteFormats(t *testing.T) {
	dir := t.TempDir()
	ts, err := PrepareSuite(dir, "dpc3", smallScale, Formats{SBBT: true, BT9Gz: true, BT9MLZ: true, CSTGz: true})
	if err != nil {
		t.Fatal(err)
	}
	n := len(ts.Specs)
	if n == 0 || len(ts.SBBT) != n || len(ts.BT9Gz) != n || len(ts.BT9MLZ) != n || len(ts.CSTGz) != n {
		t.Fatalf("path counts: specs=%d sbbt=%d bt9gz=%d bt9mlz=%d cstgz=%d",
			n, len(ts.SBBT), len(ts.BT9Gz), len(ts.BT9MLZ), len(ts.CSTGz))
	}
}

func TestRunSBBTAndCBP5Agree(t *testing.T) {
	dir := t.TempDir()
	ts, err := PrepareSuite(dir, "cbp5-train", smallScale, Formats{SBBT: true, BT9Gz: true})
	if err != nil {
		t.Fatal(err)
	}
	// §VII-C on files: both simulators over the same trace give identical
	// misprediction counts.
	libRes, err := RunSBBT(ts.SBBT[0], "gshare", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cbpRes, err := RunCBP5(ts.BT9Gz[0], "gshare")
	if err != nil {
		t.Fatal(err)
	}
	if libRes.Metrics.Mispredictions != cbpRes.Mispredictions {
		t.Errorf("mispredictions differ: lib %d, framework %d", libRes.Metrics.Mispredictions, cbpRes.Mispredictions)
	}
	if !libRes.Metadata.ExhaustedTrace {
		t.Errorf("trace not exhausted")
	}
}

func TestTableISizesAndShape(t *testing.T) {
	rows, err := TableI(t.TempDir(), smallScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Shape notes (EXPERIMENTS.md): with both sides compressed by equally
	// modern compressors, BT9 and SBBT come out about even — matching the
	// paper's own BT9+zstd (504 MB) vs SBBT+zstd (769 MB) datapoint; the
	// 7.3× headline is against the much weaker 2016 gzip distribution.
	// What must hold here: CBP5 ratios in a sane band, and the DPC3 set —
	// whose original carries every instruction, not just branches —
	// shrinking by an order of magnitude or more.
	var train, dpc3 float64
	for _, r := range rows {
		switch r.Set {
		case "cbp5-train":
			train = r.Ratio
		case "dpc3":
			dpc3 = r.Ratio
		}
	}
	if train < 0.5 || train > 4 {
		t.Errorf("CBP5 ratio %.2f outside the plausible band", train)
	}
	if dpc3 < 10 {
		t.Errorf("DPC3 ratio %.1f, want >= 10 (paper: 42)", dpc3)
	}
	if dpc3 <= 4*train {
		t.Errorf("DPC3 ratio %.1f not far above CBP5 ratio %.1f", dpc3, train)
	}
	text := RenderTableI(rows)
	if !strings.Contains(text, "cbp5-train") || !strings.Contains(text, "×") {
		t.Errorf("rendering missing content:\n%s", text)
	}
}

func TestTableIIITopShape(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("timing-shape assertion: race instrumentation skews the speedup ratios")
	}
	dir := t.TempDir()
	ts, err := PrepareSuite(dir, "cbp5-train", smallScale, Formats{SBBT: true, BT9Gz: true})
	if err != nil {
		t.Fatal(err)
	}
	// Use a subset of traces to keep the test quick.
	ts.Specs = ts.Specs[:3]
	ts.SBBT = ts.SBBT[:3]
	ts.BT9Gz = ts.BT9Gz[:3]
	rows, err := TableIIITop(ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(TableIIIPredictors) {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]TimingRow{}
	for _, r := range rows {
		byName[r.Predictor] = r
		if r.MBPlib.Average <= 0 || r.Baseline.Average <= 0 {
			t.Errorf("%s: zero timing", r.Predictor)
		}
	}
	// The paper's shape: the library beats the framework clearly for the
	// simple predictors, and the gap narrows for the complex ones.
	if byName["Bimodal"].SpeedupAverage <= 1 {
		t.Errorf("bimodal speedup %.2f, want > 1", byName["Bimodal"].SpeedupAverage)
	}
	if byName["BATAGE"].SpeedupAverage >= byName["Bimodal"].SpeedupAverage {
		t.Errorf("BATAGE speedup %.2f not below bimodal %.2f",
			byName["BATAGE"].SpeedupAverage, byName["Bimodal"].SpeedupAverage)
	}
	text := RenderTimingRows(rows, "CBP5", "MBPlib")
	if !strings.Contains(text, "Bimodal") || !strings.Contains(text, "Slowest") {
		t.Errorf("rendering missing content:\n%s", text)
	}
}

func TestTableIIIBottomShape(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("timing-shape assertion: race instrumentation skews the speedup ratios")
	}
	dir := t.TempDir()
	ts, err := PrepareSuite(dir, "dpc3", smallScale, Formats{SBBT: true, CSTGz: true})
	if err != nil {
		t.Fatal(err)
	}
	ts.Specs = ts.Specs[:2]
	ts.SBBT = ts.SBBT[:2]
	ts.CSTGz = ts.CSTGz[:2]
	rows, err := TableIIIBottom(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SpeedupAverage <= 1 {
			t.Errorf("%s: cycle-level model not slower than the library (speedup %.2f)", r.Predictor, r.SpeedupAverage)
		}
	}
	// ChampSim-style times are nearly predictor-independent: the two
	// baseline averages are within a small factor of each other.
	ratio := float64(rows[1].Baseline.Average) / float64(rows[0].Baseline.Average)
	if ratio < 0.5 || ratio > 3 {
		t.Errorf("cycle-level model time varies %.2f× between predictors", ratio)
	}
}

func TestTableIVShape(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("timing-shape assertion: race instrumentation skews the speedup ratios")
	}
	dir := t.TempDir()
	// Larger traces than the other harness tests: the assertion is a
	// timing ratio, and ~1 ms runs are too noisy when test packages run in
	// parallel.
	ts, err := PrepareSuite(dir, "cbp5-train", 5*smallScale, Formats{BT9Gz: true, BT9MLZ: true})
	if err != nil {
		t.Fatal(err)
	}
	ts.Specs = ts.Specs[:2]
	ts.BT9Gz = ts.BT9Gz[:2]
	ts.BT9MLZ = ts.BT9MLZ[:2]
	rows, err := TableIV(ts)
	if err != nil {
		t.Fatal(err)
	}
	// The compression method alone contributes only a small factor
	// (1.02×–1.12× in the paper); the essential claim is the upper bound —
	// nowhere near the library's own speedup.
	for _, r := range rows {
		if r.SpeedupAverage < 0.3 || r.SpeedupAverage > 2 {
			t.Errorf("%s: compression-only speedup %.2f out of plausible band", r.Predictor, r.SpeedupAverage)
		}
	}
	text := RenderTableIV(rows)
	if !strings.Contains(text, "Gzip") {
		t.Errorf("rendering missing content:\n%s", text)
	}
}

func TestSummarize(t *testing.T) {
	times := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	tm := summarize(times)
	if tm.Slowest != 3*time.Second || tm.Fastest != time.Second || tm.Average != 2*time.Second {
		t.Errorf("summarize = %+v", tm)
	}
	if z := summarize(nil); z.Average != 0 {
		t.Errorf("empty summarize = %+v", z)
	}
}

func TestHumanUnits(t *testing.T) {
	if HumanBytes(5<<30) != "5.0 GB" || HumanBytes(512) != "512 B" {
		t.Errorf("HumanBytes wrong: %s %s", HumanBytes(5<<30), HumanBytes(512))
	}
	if HumanDuration(90*time.Second) != "1.50 min" {
		t.Errorf("HumanDuration wrong: %s", HumanDuration(90*time.Second))
	}
	if HumanDuration(2*time.Hour) != "2.00 h" {
		t.Errorf("HumanDuration wrong: %s", HumanDuration(2*time.Hour))
	}
}

// TestFileRoundTripFidelity checks that simulating from an SBBT file (with
// compression and decoding in the path) produces exactly the result of
// simulating the generator directly: the trace pipeline is lossless.
func TestFileRoundTripFidelity(t *testing.T) {
	dir := t.TempDir()
	ts, err := PrepareSuite(dir, "cbp5-train", smallScale, Formats{SBBT: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range ts.Specs[:4] {
		fromFile, err := RunSBBT(ts.SBBT[i], "tage", sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		g, err := tracegen.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		p, err := registry.New("tage")
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sim.Run(g, p, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if fromFile.Metrics.Mispredictions != direct.Metrics.Mispredictions ||
			fromFile.Metadata.NumConditionalBranches != direct.Metadata.NumConditionalBranches ||
			fromFile.Metadata.SimulationInstr != direct.Metadata.SimulationInstr {
			t.Errorf("%s: file path and direct path disagree: %+v vs %+v",
				spec.Name, fromFile.Metrics, direct.Metrics)
		}
	}
}
