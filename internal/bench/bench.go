// Package bench regenerates the tables of the MBPlib paper's evaluation
// (§VII): trace-set size reduction (Table I), simulation time of the
// library against the CBP5 framework and the ChampSim-style cycle-level
// model (Table III), and the effect of the compression method alone on the
// framework (Table IV). It is shared by the mbpbench command and the
// repository's testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"mbplib/internal/bt9"
	"mbplib/internal/cbp5"
	"mbplib/internal/compress"
	"mbplib/internal/cst"
	"mbplib/internal/predictors/registry"
	"mbplib/internal/sbbt"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
	"mbplib/internal/uarch"
)

// TableIIIPredictors lists the predictors of Table III, in the paper's
// order, as registry specs.
var TableIIIPredictors = []struct {
	Label string
	Spec  string
}{
	{"Bimodal", "bimodal"},
	{"Two-Level", "twolevel:variant=GAs"},
	{"GShare", "gshare"},
	{"Tournament", "tournament"},
	{"2bc-gskew", "gskew"},
	{"Hashed Perc.", "perceptron"},
	{"TAGE", "tage"},
	{"BATAGE", "batage"},
}

// TraceSet is a suite of synthetic traces materialised on disk in the
// formats the experiments need.
type TraceSet struct {
	Suite string
	Specs []tracegen.Spec
	// Per-spec file paths (empty when the format was not requested).
	SBBT     []string // .sbbt.mlz — the MBPlib distribution format
	SBBTMLZS []string // .sbbt.mlzs — seekable chunked container (parallel decode)
	SBBTGz   []string // .sbbt.gz — gzip SBBT, where decompression dominates
	BT9Gz    []string // .bt9.gz — the original CBP5 distribution format
	BT9MLZ   []string // .bt9.mlz — the recompressed traces of Table IV
	CSTGz    []string // .cst.gz — ChampSim-style full-instruction traces
}

// Formats selects which trace files PrepareSuite materialises.
type Formats struct {
	SBBT, SBBTMLZS, SBBTGz, BT9Gz, BT9MLZ, CSTGz bool
	// MLZSWorkers is the parallel-compression width for the SBBTMLZS format
	// (<= 1 compresses inline). Output bytes are identical at any width.
	MLZSWorkers int
}

// PrepareSuite generates the named suite at the given scale and writes the
// requested formats under dir. Generation is deterministic, so repeated
// calls produce identical files.
func PrepareSuite(dir, suite string, scale uint64, formats Formats) (*TraceSet, error) {
	specs, err := tracegen.Suite(suite, scale)
	if err != nil {
		return nil, err
	}
	ts := &TraceSet{Suite: suite, Specs: specs}
	for _, spec := range specs {
		if formats.SBBT {
			path := filepath.Join(dir, spec.Name+".sbbt.mlz")
			if err := writeSBBTFile(path, spec); err != nil {
				return nil, err
			}
			ts.SBBT = append(ts.SBBT, path)
		}
		if formats.SBBTMLZS {
			path := filepath.Join(dir, spec.Name+".sbbt.mlzs")
			if err := writeSBBTMLZSFile(path, spec, formats.MLZSWorkers); err != nil {
				return nil, err
			}
			ts.SBBTMLZS = append(ts.SBBTMLZS, path)
		}
		if formats.SBBTGz {
			path := filepath.Join(dir, spec.Name+".sbbt.gz")
			if err := writeSBBTFile(path, spec); err != nil {
				return nil, err
			}
			ts.SBBTGz = append(ts.SBBTGz, path)
		}
		if formats.BT9Gz {
			path := filepath.Join(dir, spec.Name+".bt9.gz")
			if err := writeBT9File(path, spec); err != nil {
				return nil, err
			}
			ts.BT9Gz = append(ts.BT9Gz, path)
		}
		if formats.BT9MLZ {
			path := filepath.Join(dir, spec.Name+".bt9.mlz")
			if err := writeBT9File(path, spec); err != nil {
				return nil, err
			}
			ts.BT9MLZ = append(ts.BT9MLZ, path)
		}
		if formats.CSTGz {
			path := filepath.Join(dir, spec.Name+".cst.gz")
			if err := WriteCSTFile(path, spec); err != nil {
				return nil, err
			}
			ts.CSTGz = append(ts.CSTGz, path)
		}
	}
	return ts, nil
}

// writeSBBTFile renders spec as a compressed SBBT trace at path.
func writeSBBTFile(path string, spec tracegen.Spec) error {
	instr, branches, err := tracegen.Totals(spec)
	if err != nil {
		return err
	}
	f, err := compress.CreateFile(path, compress.LevelBest)
	if err != nil {
		return err
	}
	w, err := sbbt.NewWriter(f, instr, branches)
	if err != nil {
		f.Close()
		return err
	}
	if err := tracegen.WriteSBBT(spec, w.Write); err != nil {
		f.Close()
		return err
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSBBTMLZSFile renders spec as a seekable chunked (MLZS) SBBT trace at
// path. Chunk boundaries are packet-aligned past the SBBT header, so the
// container qualifies for chunk-granular scheduling and parallel decode.
func writeSBBTMLZSFile(path string, spec tracegen.Spec, workers int) error {
	instr, branches, err := tracegen.Totals(spec)
	if err != nil {
		return err
	}
	f, err := compress.CreateMLZSFile(path, compress.MLZSOptions{
		Level:       compress.LevelBest,
		Workers:     workers,
		Align:       sbbt.PacketSize,
		AlignOffset: sbbt.HeaderSize,
	})
	if err != nil {
		return err
	}
	w, err := sbbt.NewWriter(f, instr, branches)
	if err != nil {
		f.Close()
		return err
	}
	if err := tracegen.WriteSBBT(spec, w.Write); err != nil {
		f.Close()
		return err
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeBT9File renders spec as a compressed BT9 text trace at path.
func writeBT9File(path string, spec tracegen.Spec) error {
	f, err := compress.CreateFile(path, compress.LevelBest)
	if err != nil {
		return err
	}
	w := bt9.NewWriter(f)
	if err := tracegen.WriteSBBT(spec, w.Write); err != nil {
		f.Close()
		return err
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteCSTFile renders spec as a compressed ChampSim-style trace at path.
func WriteCSTFile(path string, spec tracegen.Spec) error {
	total, err := tracegen.InstrTotals(spec)
	if err != nil {
		return err
	}
	f, err := compress.CreateFile(path, compress.LevelBest)
	if err != nil {
		return err
	}
	w, err := cst.NewWriter(f, total)
	if err != nil {
		f.Close()
		return err
	}
	ig, err := tracegen.NewInstrGenerator(spec)
	if err != nil {
		f.Close()
		return err
	}
	var in cst.Instruction
	for {
		err := ig.Read(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return err
		}
		if err := w.Write(&in); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RunSBBT opens an SBBT trace file and simulates predictor spec over it,
// returning the result. It is the MBPlib side of every timing comparison:
// the measured time includes decompression and trace decoding, as in the
// paper's methodology.
func RunSBBT(path, predictorSpec string, cfg sim.Config) (*sim.Result, error) {
	p, err := registry.New(predictorSpec)
	if err != nil {
		return nil, err
	}
	f, err := compress.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := sbbt.NewReader(f)
	if err != nil {
		return nil, err
	}
	if cfg.TraceName == "" {
		cfg.TraceName = path
	}
	return sim.Run(r, p, cfg)
}

// RunCBP5 runs the framework baseline over a BT9 trace file.
func RunCBP5(path, predictorSpec string) (*cbp5.Results, error) {
	p, err := registry.New(predictorSpec)
	if err != nil {
		return nil, err
	}
	return cbp5.RunTrace(path, cbp5.Adapter{P: p})
}

// RunChampSim runs the cycle-level model over a CST trace file with the
// default (Ice Lake-like) configuration.
func RunChampSim(path, predictorSpec string, maxInstr uint64) (*uarch.Stats, error) {
	return RunChampSimCfg(path, predictorSpec, uarch.DefaultConfig(), maxInstr)
}

// RunChampSimCfg is RunChampSim with an explicit core configuration.
func RunChampSimCfg(path, predictorSpec string, cfg uarch.Config, maxInstr uint64) (*uarch.Stats, error) {
	p, err := registry.New(predictorSpec)
	if err != nil {
		return nil, err
	}
	f, err := compress.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := cst.NewReader(f)
	if err != nil {
		return nil, err
	}
	return uarch.Run(r, p, cfg, maxInstr)
}

// dirSize sums the on-disk sizes of the given files.
func dirSize(paths []string) (int64, error) {
	var total int64
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}

// SizeRow is one row of Table I.
type SizeRow struct {
	Set             string
	NumTraces       int
	OriginalBytes   int64 // the set in its original distribution format
	TranslatedBytes int64 // the same traces translated to SBBT
	Ratio           float64
}

// TableI regenerates Table I: the size of each trace set in its original
// distribution format (BT9+gzip for the CBP5 sets, ChampSim-style
// full-instruction records+gzip for DPC3) against the SBBT translation
// compressed with the suite's modern compressor.
func TableI(dir string, scale uint64) ([]SizeRow, error) {
	var rows []SizeRow
	for _, suite := range []struct {
		name string
		cst  bool
	}{
		{"cbp5-train", false},
		{"cbp5-eval", false},
		{"dpc3", true},
	} {
		formats := Formats{SBBT: true, BT9Gz: !suite.cst, CSTGz: suite.cst}
		ts, err := PrepareSuite(dir, suite.name, scale, formats)
		if err != nil {
			return nil, err
		}
		orig := ts.BT9Gz
		if suite.cst {
			orig = ts.CSTGz
		}
		origSize, err := dirSize(orig)
		if err != nil {
			return nil, err
		}
		newSize, err := dirSize(ts.SBBT)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SizeRow{
			Set:             suite.name,
			NumTraces:       len(ts.Specs),
			OriginalBytes:   origSize,
			TranslatedBytes: newSize,
			Ratio:           float64(origSize) / float64(newSize),
		})
	}
	return rows, nil
}

// Timing summarises per-trace wall times the way Table III reports them.
type Timing struct {
	Slowest, Average, Fastest time.Duration
}

func summarize(times []time.Duration) Timing {
	if len(times) == 0 {
		return Timing{}
	}
	t := Timing{Slowest: times[0], Fastest: times[0]}
	var sum time.Duration
	for _, d := range times {
		if d > t.Slowest {
			t.Slowest = d
		}
		if d < t.Fastest {
			t.Fastest = d
		}
		sum += d
	}
	t.Average = sum / time.Duration(len(times))
	return t
}

// TimingRow is one predictor row of Table III (top) or Table IV.
type TimingRow struct {
	Predictor string
	Baseline  Timing // CBP5 framework (or CBP5+gzip in Table IV)
	MBPlib    Timing // this library (or CBP5+MLZ in Table IV)
	// Speedups per statistic: Baseline/MBPlib.
	SpeedupSlowest, SpeedupAverage, SpeedupFastest float64
}

func speedups(r *TimingRow) {
	div := func(a, b time.Duration) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	r.SpeedupSlowest = div(r.Baseline.Slowest, r.MBPlib.Slowest)
	r.SpeedupAverage = div(r.Baseline.Average, r.MBPlib.Average)
	r.SpeedupFastest = div(r.Baseline.Fastest, r.MBPlib.Fastest)
}

// TableIIITop regenerates the upper half of Table III: per predictor, the
// per-trace wall time of the CBP5 framework over the BT9 traces against
// this library over the SBBT traces, with the same predictor code on both
// sides (via the cbp5.Adapter).
func TableIIITop(ts *TraceSet) ([]TimingRow, error) {
	if len(ts.BT9Gz) == 0 || len(ts.SBBT) == 0 {
		return nil, fmt.Errorf("bench: trace set lacks BT9Gz or SBBT files")
	}
	var rows []TimingRow
	for _, pred := range TableIIIPredictors {
		row := TimingRow{Predictor: pred.Label}
		var base, lib []time.Duration
		for i := range ts.Specs {
			start := time.Now()
			if _, err := RunCBP5(ts.BT9Gz[i], pred.Spec); err != nil {
				return nil, fmt.Errorf("bench: cbp5 %s on %s: %w", pred.Label, ts.Specs[i].Name, err)
			}
			base = append(base, time.Since(start))

			start = time.Now()
			if _, err := RunSBBT(ts.SBBT[i], pred.Spec, sim.Config{}); err != nil {
				return nil, fmt.Errorf("bench: sim %s on %s: %w", pred.Label, ts.Specs[i].Name, err)
			}
			lib = append(lib, time.Since(start))
		}
		row.Baseline = summarize(base)
		row.MBPlib = summarize(lib)
		speedups(&row)
		rows = append(rows, row)
	}
	return rows, nil
}

// TableIIIBottom regenerates the lower half of Table III: the cycle-level
// ChampSim-style model against this library, for GShare and BATAGE, over
// the first maxInstr instructions of each trace (the paper uses 100M; scale
// accordingly).
func TableIIIBottom(ts *TraceSet, maxInstr uint64) ([]TimingRow, error) {
	if len(ts.CSTGz) == 0 || len(ts.SBBT) == 0 {
		return nil, fmt.Errorf("bench: trace set lacks CSTGz or SBBT files")
	}
	var rows []TimingRow
	// Per the paper's methodology (§VII-A), GShare runs with the 8K BTB +
	// 4K GShare-like indirect predictor and BATAGE with the 64 kB ITTAGE.
	for _, pred := range []struct{ Label, Spec, Indirect string }{
		{"GShare", "gshare", "gshare"},
		{"BATAGE", "batage", "ittage"},
	} {
		cfg := uarch.DefaultConfig()
		cfg.IndirectKind = pred.Indirect
		row := TimingRow{Predictor: pred.Label}
		var base, lib []time.Duration
		for i := range ts.Specs {
			start := time.Now()
			if _, err := RunChampSimCfg(ts.CSTGz[i], pred.Spec, cfg, maxInstr); err != nil {
				return nil, fmt.Errorf("bench: champsim %s on %s: %w", pred.Label, ts.Specs[i].Name, err)
			}
			base = append(base, time.Since(start))

			start = time.Now()
			if _, err := RunSBBT(ts.SBBT[i], pred.Spec, sim.Config{SimInstructions: maxInstr}); err != nil {
				return nil, fmt.Errorf("bench: sim %s on %s: %w", pred.Label, ts.Specs[i].Name, err)
			}
			lib = append(lib, time.Since(start))
		}
		row.Baseline = summarize(base)
		row.MBPlib = summarize(lib)
		speedups(&row)
		rows = append(rows, row)
	}
	return rows, nil
}

// TableIV regenerates Table IV: the CBP5 framework reading gzip-compressed
// traces against the same framework reading traces recompressed with the
// modern compressor, isolating how much of MBPlib's speedup comes from the
// compression method alone.
func TableIV(ts *TraceSet) ([]TimingRow, error) {
	if len(ts.BT9Gz) == 0 || len(ts.BT9MLZ) == 0 {
		return nil, fmt.Errorf("bench: trace set lacks BT9Gz or BT9MLZ files")
	}
	var rows []TimingRow
	for _, pred := range TableIIIPredictors {
		row := TimingRow{Predictor: pred.Label}
		var gz, mlz []time.Duration
		for i := range ts.Specs {
			start := time.Now()
			if _, err := RunCBP5(ts.BT9Gz[i], pred.Spec); err != nil {
				return nil, err
			}
			gz = append(gz, time.Since(start))

			start = time.Now()
			if _, err := RunCBP5(ts.BT9MLZ[i], pred.Spec); err != nil {
				return nil, err
			}
			mlz = append(mlz, time.Since(start))
		}
		row.Baseline = summarize(gz)
		row.MBPlib = summarize(mlz)
		speedups(&row)
		rows = append(rows, row)
	}
	return rows, nil
}
