package bench

import (
	"runtime"
	"testing"
)

var sweepSmokePredictors = []string{"always-taken", "bimodal", "gshare", "bimodal:t=12"}

func prepareSweep(tb testing.TB, scale uint64) []string {
	tb.Helper()
	paths, err := PrepareSweepTraces(tb.TempDir(), 4, scale)
	if err != nil {
		tb.Fatal(err)
	}
	return paths
}

// TestMeasureSweepSmoke: the sweep stage measures a small matrix end to end
// and produces internally consistent numbers.
func TestMeasureSweepSmoke(t *testing.T) {
	paths := prepareSweep(t, 3000)
	st, err := MeasureSweep(paths, sweepSmokePredictors, []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalBranches == 0 {
		t.Error("TotalBranches = 0")
	}
	if st.Sequential.Seconds <= 0 || st.Sequential.AggBranchesPerSec <= 0 {
		t.Errorf("sequential measurement = %+v", st.Sequential)
	}
	if len(st.Parallel) != 2 {
		t.Fatalf("parallel rows = %d, want 2", len(st.Parallel))
	}
	for _, m := range st.Parallel {
		if m.Seconds <= 0 || m.Speedup <= 0 {
			t.Errorf("workers %d: measurement = %+v", m.Workers, m)
		}
	}
}

func TestCompareSnapshots(t *testing.T) {
	committed := &SimSnapshot{
		Read: Stage{Batched: SimMeasurement{BranchesPerSec: 100}},
		Sim: []SimEntry{
			{Predictor: "gshare", Stage: Stage{Batched: SimMeasurement{BranchesPerSec: 50}}},
			{Predictor: "gone", Stage: Stage{Batched: SimMeasurement{BranchesPerSec: 50}}},
		},
		Sweep: &SweepStage{Parallel: []SweepMeasurement{{Workers: 4, AggBranchesPerSec: 80}}},
	}
	fresh := &SimSnapshot{
		Read: Stage{Batched: SimMeasurement{BranchesPerSec: 60}}, // within 2x
		Sim: []SimEntry{
			{Predictor: "gshare", Stage: Stage{Batched: SimMeasurement{BranchesPerSec: 20}}}, // >2x worse
		},
		Sweep: &SweepStage{Parallel: []SweepMeasurement{{Workers: 4, AggBranchesPerSec: 10}}}, // >2x worse
	}
	violations := CompareSnapshots(committed, fresh, 2)
	if len(violations) != 2 {
		t.Fatalf("violations = %v, want 2 (sim/gshare and sweep/4-workers)", violations)
	}
	if err := CheckError(violations); err == nil {
		t.Error("CheckError(violations) = nil")
	}
	if err := CheckError(nil); err != nil {
		t.Errorf("CheckError(nil) = %v", err)
	}
	if v := CompareSnapshots(committed, committed, 2); len(v) != 0 {
		t.Errorf("self-comparison found violations: %v", v)
	}
}

// BenchmarkSweepParallel drives the 4-trace × 4-predictor matrix through the
// parallel scheduler at NumCPU workers — the configuration the committed
// snapshot's scaling curve is built from.
func BenchmarkSweepParallel(b *testing.B) {
	paths := prepareSweep(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := MeasureSweep(paths, sweepSmokePredictors, []int{runtime.NumCPU()}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.Parallel[0].AggBranchesPerSec, "branches/s")
		b.ReportMetric(st.Parallel[0].Speedup, "speedup")
	}
}
