// Package cbp5 reproduces the evaluation framework of the 5th Championship
// Branch Prediction, the baseline MBPlib is measured against in §VII of the
// paper. It is deliberately everything the paper argues against:
//
//   - It is a framework, not a library: RunTrace owns the main loop and
//     calls the user's predictor, not the other way around.
//   - It has a single update entry point (UpdatePredictor) combining what
//     MBPlib splits into Train and Track, which §VI-D shows prevents
//     writing some meta-predictors without reimplementing the bases.
//   - It reads the plain-text BT9-style trace format, paying text parsing
//     and branch-graph lookups on every event — the costs that the SBBT
//     stream format removes (§VII-D).
//
// The package exists so the Table III and Table IV comparisons run against
// a faithful stand-in for the real framework, including its performance
// characteristics.
package cbp5

import (
	"fmt"
	"io"

	"mbplib/internal/bp"
	"mbplib/internal/compress"
)

// CondPredictor is the CBP5 conditional-branch predictor interface:
// GetPrediction must not have side effects; UpdatePredictor both trains the
// tables and updates the history (there is no separate Track).
type CondPredictor interface {
	// GetPrediction returns the predicted outcome for the branch at pc.
	GetPrediction(pc uint64) bool
	// UpdatePredictor is called for every conditional branch with the
	// resolved outcome and the predicted direction.
	UpdatePredictor(pc uint64, resolveDir, predDir bool, branchTarget uint64)
	// TrackOtherInst is called for non-conditional branches so the
	// predictor can keep its history consistent.
	TrackOtherInst(pc uint64, opType OpType, branchTarget uint64)
}

// OpType mirrors the CBP5 opcode classification for TrackOtherInst.
type OpType int

// CBP5 operation types (subset relevant to branch history).
const (
	OpTypeJmpDirect OpType = iota
	OpTypeJmpIndirect
	OpTypeCallDirect
	OpTypeCallIndirect
	OpTypeRet
)

func opTypeOf(op bp.Opcode) OpType {
	switch op.Base() {
	case bp.Call:
		if op.IsIndirect() {
			return OpTypeCallIndirect
		}
		return OpTypeCallDirect
	case bp.Ret:
		return OpTypeRet
	default:
		if op.IsIndirect() {
			return OpTypeJmpIndirect
		}
		return OpTypeJmpDirect
	}
}

// Results mirrors the counters the CBP5 framework prints at the end of a
// run.
type Results struct {
	TotalInstructions   uint64
	TotalBranches       uint64
	CondBranches        uint64
	Mispredictions      uint64
	MispredPerKiloInstr float64
}

// RunTrace is the framework entry point: it opens the (possibly
// compressed) BT9 trace at path, drives the predictor over it and returns
// the aggregate counters. The user code has no control over the loop.
func RunTrace(path string, predictor CondPredictor) (*Results, error) {
	f, err := compress.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("cbp5: opening trace: %w", err)
	}
	defer f.Close()
	return RunReader(f, predictor)
}

// RunReader is RunTrace over an already-open BT9 text stream.
func RunReader(r io.Reader, predictor CondPredictor) (*Results, error) {
	tr, err := newFrameworkReader(r)
	if err != nil {
		return nil, err
	}
	res := &Results{}
	for {
		ev, err := tr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		res.TotalInstructions += ev.InstrsSinceLastBranch + 1
		res.TotalBranches++
		b := ev.Branch
		if b.Opcode.IsConditional() {
			res.CondBranches++
			pred := predictor.GetPrediction(b.IP)
			if pred != b.Taken {
				res.Mispredictions++
			}
			predictor.UpdatePredictor(b.IP, b.Taken, pred, b.Target)
		} else {
			predictor.TrackOtherInst(b.IP, opTypeOf(b.Opcode), b.Target)
		}
	}
	if res.TotalInstructions > 0 {
		res.MispredPerKiloInstr = float64(res.Mispredictions) / (float64(res.TotalInstructions) / 1000)
	}
	return res, nil
}

// Adapter wraps an MBPlib predictor for use inside the CBP5 framework,
// merging Train and Track into the single update call — the direction of
// reuse that works. (The reverse, using a CBP5 predictor as an MBPlib
// subcomponent with partial updates, is what §VI-D shows to be impossible
// without a Train/Track split.)
type Adapter struct {
	P bp.Predictor
}

// GetPrediction implements CondPredictor.
func (a Adapter) GetPrediction(pc uint64) bool { return a.P.Predict(pc) }

// UpdatePredictor implements CondPredictor: train then track, as the
// standard simulator would.
func (a Adapter) UpdatePredictor(pc uint64, resolveDir, predDir bool, branchTarget uint64) {
	b := bp.Branch{IP: pc, Target: branchTarget, Opcode: bp.OpCondJump, Taken: resolveDir}
	a.P.Train(b)
	a.P.Track(b)
}

// TrackOtherInst implements CondPredictor.
func (a Adapter) TrackOtherInst(pc uint64, opType OpType, branchTarget uint64) {
	var op bp.Opcode
	switch opType {
	case OpTypeCallDirect:
		op = bp.OpCall
	case OpTypeCallIndirect:
		op = bp.OpIndCall
	case OpTypeRet:
		op = bp.OpRet
	case OpTypeJmpIndirect:
		op = bp.OpIndJump
	default:
		op = bp.OpJump
	}
	a.P.Track(bp.Branch{IP: pc, Target: branchTarget, Opcode: op, Taken: true})
}
