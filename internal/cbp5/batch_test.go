package cbp5

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
)

func TestReaderMatchesFrameworkNext(t *testing.T) {
	data := writeBT9(t, testSpec())

	fr, err := newFrameworkReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("newFrameworkReader: %v", err)
	}
	var want []bp.Event
	for {
		rec, err := fr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		want = append(want, *rec)
	}

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.TotalBranches() != uint64(len(want)) {
		t.Errorf("TotalBranches = %d, want %d", r.TotalBranches(), len(want))
	}
	dst := make([]bp.Event, 1000)
	var got []bp.Event
	for {
		n, err := r.ReadBatch(dst)
		got = append(got, dst[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
		if n == 0 {
			t.Fatal("ReadBatch returned (0, nil): progress guarantee violated")
		}
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Sticky after EOF, on both paths.
	if n, err := r.ReadBatch(dst[:1]); n != 0 || err != io.EOF {
		t.Errorf("post-EOF ReadBatch = (%d, %v)", n, err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("post-EOF Read = %v", err)
	}
}

func TestReaderTruncatedSequence(t *testing.T) {
	data := writeBT9(t, testSpec())
	// Cut the trailing 20% of the sequence section: decode stops with a
	// typed truncation error after the events before the cut.
	cut := data[:len(data)*8/10]
	// Ensure the cut lands inside the sequence, not the preamble.
	if !bytes.Contains(cut, []byte("BT9_EDGE_SEQUENCE")) {
		t.Fatal("cut removed the whole sequence section; enlarge the spec")
	}
	// Trim to the last whole line so the failure is the short sequence, not
	// a half-written entry.
	if i := bytes.LastIndexByte(cut, '\n'); i >= 0 {
		cut = cut[:i+1]
	}
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	dst := make([]bp.Event, 4096)
	var final error
	for {
		_, err := r.ReadBatch(dst)
		if err != nil {
			final = err
			break
		}
	}
	if !errors.Is(final, faults.ErrTruncated) {
		t.Fatalf("final error = %v, want ErrTruncated", final)
	}
}

func TestParseSeqID(t *testing.T) {
	cases := []struct {
		in string
		id int
		ok bool
	}{
		{"0", 0, true},
		{"42", 42, true},
		{"1073741824", 1073741824, true},
		{"", 0, false},
		{"-1", 0, false},
		{"+3", 0, false},
		{"12a", 0, false},
		{"999999999999999999999", 0, false},
	}
	for _, c := range cases {
		id, ok := parseSeqID([]byte(c.in))
		if ok != c.ok || (ok && id != c.id) {
			t.Errorf("parseSeqID(%q) = (%d, %v), want (%d, %v)", c.in, id, ok, c.id, c.ok)
		}
	}
}
