package cbp5

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mbplib/internal/bp"
)

// frameworkReader parses BT9 traces the way the original CBP5 framework's
// bt9 reader does, and deliberately so: a string split per line, the branch
// graph held in maps keyed by identifier, and a record object materialised
// per dynamic branch. The companion package bt9 has an optimised reader for
// tooling; this one reproduces the baseline whose cost Table III measures —
// rewriting it efficiently would be benchmarking a different framework.
type frameworkReader struct {
	sc    *bufio.Scanner
	nodes map[int]frameworkNode
	edges map[int]frameworkEdge

	totalInstructions uint64
	totalBranches     uint64
	read              uint64
	err               error
}

type frameworkNode struct {
	ip     uint64
	opcode bp.Opcode
}

type frameworkEdge struct {
	nodeID     int
	taken      bool
	target     uint64
	instrCount uint64
}

func newFrameworkReader(r io.Reader) (*frameworkReader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	fr := &frameworkReader{
		sc:    sc,
		nodes: make(map[int]frameworkNode),
		edges: make(map[int]frameworkEdge),
	}
	if err := fr.parsePreamble(); err != nil {
		return nil, err
	}
	return fr, nil
}

func (r *frameworkReader) parsePreamble() error {
	if !r.sc.Scan() || r.sc.Text() != "BT9_SPA_TRACE_FORMAT" {
		return errors.New("cbp5: not a BT9 trace")
	}
	section := ""
	for r.sc.Scan() {
		line := r.sc.Text()
		if line == "" {
			continue
		}
		switch line {
		case "BT9_NODES", "BT9_EDGES":
			section = line
			continue
		case "BT9_EDGE_SEQUENCE":
			return nil
		}
		fields := strings.Fields(line)
		switch section {
		case "":
			if len(fields) == 2 {
				n, err := strconv.ParseUint(fields[1], 10, 64)
				if err != nil {
					return fmt.Errorf("cbp5: header line %q: %w", line, err)
				}
				switch fields[0] {
				case "total_instruction_count:":
					r.totalInstructions = n
				case "branch_instruction_count:":
					r.totalBranches = n
				}
			}
		case "BT9_NODES":
			if err := r.parseNode(fields, line); err != nil {
				return err
			}
		case "BT9_EDGES":
			if err := r.parseEdge(fields, line); err != nil {
				return err
			}
		}
	}
	return errors.New("cbp5: missing BT9_EDGE_SEQUENCE section")
}

func (r *frameworkReader) parseNode(fields []string, line string) error {
	if len(fields) != 6 || fields[0] != "NODE" {
		return fmt.Errorf("cbp5: malformed node line %q", line)
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return fmt.Errorf("cbp5: node line %q: %w", line, err)
	}
	ip, err := strconv.ParseUint(fields[2], 16, 64)
	if err != nil {
		return fmt.Errorf("cbp5: node line %q: %w", line, err)
	}
	var base bp.BaseType
	switch fields[5] {
	case "JMP":
		base = bp.Jump
	case "CAL":
		base = bp.Call
	case "RET":
		base = bp.Ret
	default:
		return fmt.Errorf("cbp5: node line %q: bad type", line)
	}
	op := bp.NewOpcode(base, fields[3] == "COND", fields[4] == "IND")
	r.nodes[id] = frameworkNode{ip: ip, opcode: op}
	return nil
}

func (r *frameworkReader) parseEdge(fields []string, line string) error {
	if len(fields) != 6 || fields[0] != "EDGE" {
		return fmt.Errorf("cbp5: malformed edge line %q", line)
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return fmt.Errorf("cbp5: edge line %q: %w", line, err)
	}
	nodeID, err := strconv.Atoi(fields[2])
	if err != nil {
		return fmt.Errorf("cbp5: edge line %q: %w", line, err)
	}
	if _, ok := r.nodes[nodeID]; !ok {
		return fmt.Errorf("cbp5: edge line %q: unknown node %d", line, nodeID)
	}
	target, err := strconv.ParseUint(fields[4], 16, 64)
	if err != nil {
		return fmt.Errorf("cbp5: edge line %q: %w", line, err)
	}
	count, err := strconv.ParseUint(fields[5], 10, 64)
	if err != nil {
		return fmt.Errorf("cbp5: edge line %q: %w", line, err)
	}
	r.edges[id] = frameworkEdge{nodeID: nodeID, taken: fields[3] == "T", target: target, instrCount: count}
	return nil
}

// next materialises the next dynamic branch record, as the original
// framework's iterator does: parse the id, look the edge up, look its node
// up, build the record.
func (r *frameworkReader) next() (*bp.Event, error) {
	if r.err != nil {
		return nil, r.err
	}
	for r.sc.Scan() {
		line := strings.TrimSpace(r.sc.Text())
		if line == "" {
			continue
		}
		id, err := strconv.Atoi(line)
		if err != nil {
			r.err = fmt.Errorf("cbp5: bad sequence entry %q", line)
			return nil, r.err
		}
		edge, ok := r.edges[id]
		if !ok {
			r.err = fmt.Errorf("cbp5: unknown edge %d", id)
			return nil, r.err
		}
		node := r.nodes[edge.nodeID]
		r.read++
		return &bp.Event{
			Branch: bp.Branch{
				IP:     node.ip,
				Target: edge.target,
				Opcode: node.opcode,
				Taken:  edge.taken,
			},
			InstrsSinceLastBranch: edge.instrCount,
		}, nil
	}
	if err := r.sc.Err(); err != nil {
		r.err = err
		return nil, err
	}
	if r.read < r.totalBranches {
		r.err = fmt.Errorf("cbp5: sequence ends after %d of %d branches: %w", r.read, r.totalBranches, bp.ErrTruncated)
		return nil, r.err
	}
	r.err = io.EOF
	return nil, io.EOF
}

// nextInto decodes the next sequence entry into ev without materialising a
// per-branch record object: the batch path of the exported Reader. The
// framework baseline loop (RunReader) keeps using next, so the measured
// Table III/IV cost is unchanged. The caller must have checked r.err.
func (r *frameworkReader) nextInto(ev *bp.Event) error {
	for r.sc.Scan() {
		line := bytes.TrimSpace(r.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		id, ok := parseSeqID(line)
		if !ok {
			r.err = fmt.Errorf("cbp5: bad sequence entry %q", string(line))
			return r.err
		}
		edge, ok := r.edges[id]
		if !ok {
			r.err = fmt.Errorf("cbp5: unknown edge %d", id)
			return r.err
		}
		node := r.nodes[edge.nodeID]
		r.read++
		*ev = bp.Event{
			Branch: bp.Branch{
				IP:     node.ip,
				Target: edge.target,
				Opcode: node.opcode,
				Taken:  edge.taken,
			},
			InstrsSinceLastBranch: edge.instrCount,
		}
		return nil
	}
	if err := r.sc.Err(); err != nil {
		r.err = err
		return err
	}
	if r.read < r.totalBranches {
		r.err = fmt.Errorf("cbp5: sequence ends after %d of %d branches: %w", r.read, r.totalBranches, bp.ErrTruncated)
		return r.err
	}
	r.err = io.EOF
	return r.err
}

// parseSeqID parses a non-negative decimal edge identifier without
// allocating; ok is false for anything else.
func parseSeqID(line []byte) (id int, ok bool) {
	if len(line) == 0 {
		return 0, false
	}
	for _, c := range line {
		if c < '0' || c > '9' || id > 1<<30 {
			return 0, false
		}
		id = id*10 + int(c-'0')
	}
	return id, true
}

// Reader exposes the framework's BT9 decoder through the library's reading
// interfaces: bp.Reader, bp.BatchReader and bp.Sizer. The preamble parse
// and the per-event map lookups are the framework's own — that cost is the
// point of the baseline — but the batch path skips the per-branch record
// allocation so the format can be driven through the same batched
// simulation pipeline as SBBT.
type Reader struct{ fr *frameworkReader }

// NewReader parses the preamble of a BT9 text stream with the framework's
// parser and returns a Reader positioned at the first sequence entry.
func NewReader(r io.Reader) (*Reader, error) {
	fr, err := newFrameworkReader(r)
	if err != nil {
		return nil, err
	}
	return &Reader{fr: fr}, nil
}

// Read implements bp.Reader.
func (r *Reader) Read() (bp.Event, error) {
	if r.fr.err != nil {
		return bp.Event{}, r.fr.err
	}
	var ev bp.Event
	if err := r.fr.nextInto(&ev); err != nil {
		return bp.Event{}, err
	}
	return ev, nil
}

// ReadBatch implements bp.BatchReader with the "error after n" contract:
// dst[:n] is valid even when err is non-nil, and the error is sticky.
func (r *Reader) ReadBatch(dst []bp.Event) (int, error) {
	n := 0
	for n < len(dst) {
		if r.fr.err != nil {
			return n, r.fr.err
		}
		if err := r.fr.nextInto(&dst[n]); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// TotalInstructions implements bp.Sizer.
func (r *Reader) TotalInstructions() uint64 { return r.fr.totalInstructions }

// TotalBranches implements bp.Sizer.
func (r *Reader) TotalBranches() uint64 { return r.fr.totalBranches }
