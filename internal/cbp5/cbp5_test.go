package cbp5

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/bt9"
	"mbplib/internal/compress"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

// writeBT9 renders a spec as an in-memory BT9 trace.
func writeBT9(t *testing.T, spec tracegen.Spec) []byte {
	t.Helper()
	g, err := tracegen.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := bt9.NewWriter(&buf)
	for {
		ev, err := g.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testSpec() tracegen.Spec {
	return tracegen.Spec{
		Name: "cbp5test", Seed: 21, Branches: 30000,
		Kernels: []tracegen.KernelSpec{
			{Kind: tracegen.Biased}, {Kind: tracegen.Loop},
			{Kind: tracegen.CallRet}, {Kind: tracegen.Correlated},
		},
	}
}

func TestRunReaderCounts(t *testing.T) {
	data := writeBT9(t, testSpec())
	res, err := RunReader(bytes.NewReader(data), Adapter{P: gshare.New()})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBranches != 30000 {
		t.Errorf("TotalBranches = %d", res.TotalBranches)
	}
	if res.CondBranches == 0 || res.CondBranches >= res.TotalBranches {
		t.Errorf("CondBranches = %d of %d", res.CondBranches, res.TotalBranches)
	}
	if res.Mispredictions == 0 {
		t.Errorf("no mispredictions on a noisy workload")
	}
	if res.MispredPerKiloInstr <= 0 {
		t.Errorf("MPKI = %v", res.MispredPerKiloInstr)
	}
}

// TestSimulatorsAgree is the §VII-C check: MBPlib's simulator and the CBP5
// framework produce identical misprediction counts for the same predictor
// and trace.
func TestSimulatorsAgree(t *testing.T) {
	spec := testSpec()
	data := writeBT9(t, spec)

	frameworkRes, err := RunReader(bytes.NewReader(data), Adapter{P: gshare.New()})
	if err != nil {
		t.Fatal(err)
	}
	g, err := tracegen.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	libRes, err := sim.Run(g, gshare.New(), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if frameworkRes.Mispredictions != libRes.Metrics.Mispredictions {
		t.Errorf("mispredictions differ: framework %d, library %d",
			frameworkRes.Mispredictions, libRes.Metrics.Mispredictions)
	}
	if frameworkRes.CondBranches != libRes.Metadata.NumConditionalBranches {
		t.Errorf("conditional counts differ: framework %d, library %d",
			frameworkRes.CondBranches, libRes.Metadata.NumConditionalBranches)
	}
	if frameworkRes.TotalInstructions != libRes.Metadata.SimulationInstr {
		t.Errorf("instruction counts differ: framework %d, library %d",
			frameworkRes.TotalInstructions, libRes.Metadata.SimulationInstr)
	}
	if frameworkRes.MispredPerKiloInstr != libRes.Metrics.MPKI {
		t.Errorf("MPKI differs: framework %v, library %v",
			frameworkRes.MispredPerKiloInstr, libRes.Metrics.MPKI)
	}
}

func TestRunTraceCompressedFile(t *testing.T) {
	data := writeBT9(t, testSpec())
	dir := t.TempDir()
	for _, name := range []string{"t.bt9", "t.bt9.gz", "t.bt9.mlz"} {
		path := filepath.Join(dir, name)
		f, err := compress.CreateFile(path, compress.LevelBest)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		res, err := RunTrace(path, Adapter{P: gshare.New()})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.TotalBranches != 30000 {
			t.Errorf("%s: TotalBranches = %d", name, res.TotalBranches)
		}
	}
}

func TestRunTraceMissingFile(t *testing.T) {
	if _, err := RunTrace(filepath.Join(t.TempDir(), "nope.bt9"), Adapter{P: gshare.New()}); err == nil {
		t.Errorf("missing trace accepted")
	}
}

// spyPredictor records the framework's calls.
type spyPredictor struct {
	predictions int
	updates     int
	others      []OpType
}

func (s *spyPredictor) GetPrediction(uint64) bool { s.predictions++; return true }
func (s *spyPredictor) UpdatePredictor(pc uint64, resolveDir, predDir bool, target uint64) {
	s.updates++
}
func (s *spyPredictor) TrackOtherInst(pc uint64, op OpType, target uint64) {
	s.others = append(s.others, op)
}

func TestFrameworkCallPattern(t *testing.T) {
	var buf bytes.Buffer
	w := bt9.NewWriter(&buf)
	evs := []bp.Event{
		{Branch: bp.Branch{IP: 0x10, Target: 0x20, Opcode: bp.OpCondJump, Taken: true}},
		{Branch: bp.Branch{IP: 0x30, Target: 0x40, Opcode: bp.OpCall, Taken: true}},
		{Branch: bp.Branch{IP: 0x50, Target: 0x24, Opcode: bp.OpRet, Taken: true}},
		{Branch: bp.Branch{IP: 0x10, Target: 0x20, Opcode: bp.OpCondJump, Taken: false}},
	}
	for _, ev := range evs {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	_ = w.Close()
	spy := &spyPredictor{}
	res, err := RunReader(&buf, spy)
	if err != nil {
		t.Fatal(err)
	}
	if spy.predictions != 2 || spy.updates != 2 {
		t.Errorf("conditional path called %d/%d times, want 2/2", spy.predictions, spy.updates)
	}
	if len(spy.others) != 2 || spy.others[0] != OpTypeCallDirect || spy.others[1] != OpTypeRet {
		t.Errorf("TrackOtherInst calls = %v", spy.others)
	}
	if res.Mispredictions != 1 {
		t.Errorf("mispredictions = %d, want 1 (always-taken spy)", res.Mispredictions)
	}
}

func TestOpTypeOf(t *testing.T) {
	cases := map[bp.Opcode]OpType{
		bp.OpJump:    OpTypeJmpDirect,
		bp.OpIndJump: OpTypeJmpIndirect,
		bp.OpCall:    OpTypeCallDirect,
		bp.OpIndCall: OpTypeCallIndirect,
		bp.OpRet:     OpTypeRet,
	}
	for op, want := range cases {
		if got := opTypeOf(op); got != want {
			t.Errorf("opTypeOf(%v) = %v, want %v", op, got, want)
		}
	}
}
