// Package chunked opens SBBT traces stored in seekable MLZS containers for
// chunk-granular random access: each container chunk decodes to a whole
// number of trace packets independently of its neighbours, so chunks can be
// decoded in any order, in parallel, and cached or evicted one at a time.
//
// Eligibility is strict and checked once at Open: the container must carry
// the packet-alignment contract (chunk boundaries at raw offsets ≡
// sbbt.HeaderSize mod sbbt.PacketSize, established by `mbptrace recompress`
// and `mbpgen -formats mlzs`), an intact index trailer, and a plain
// (non-checksummed) SBBT header that passes the same plausibility rules the
// streaming reader enforces. Anything else — legacy stream-MLZ, a damaged
// trailer, a checksummed inner trace — returns an error, and callers fall
// back to the ordinary sequential streaming path, which handles all of
// those. Open never reads beyond chunk 0, so the fallback decision is cheap
// even on huge traces.
//
// Decoding reuses the sbbt packet decoder byte-for-byte, so a damaged
// packet fails with exactly the error text and fault class the streaming
// reader would produce at the same offset, and damage confined to one chunk
// (a flipped payload byte, a bad per-chunk CRC) fails only that chunk's
// decode — the property the trace cache uses to poison single chunks
// instead of whole traces.
package chunked

import (
	"fmt"
	"os"

	"mbplib/internal/bp"
	"mbplib/internal/compress"
	"mbplib/internal/faults"
	"mbplib/internal/sbbt"
)

// Trace is an SBBT trace inside an eligible MLZS container. DecodeChunk may
// be called from multiple goroutines concurrently; Close invalidates the
// trace.
type Trace struct {
	f   *os.File
	ix  *compress.MLZSIndex
	hdr sbbt.Header
}

// Open validates that path is an MLZS container eligible for chunk-granular
// SBBT decoding and returns the trace. The error distinguishes nothing for
// callers: any failure simply means "use the streaming path instead".
func Open(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	t, err := open(f)
	if err != nil {
		f.Close() //mbpvet:ignore droppederr -- error path: the eligibility failure is the one to report
		return nil, err
	}
	return t, nil
}

func open(f *os.File) (*Trace, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	ix, err := compress.ReadMLZSIndex(f, fi.Size())
	if err != nil {
		return nil, err
	}
	if !ix.Aligned(sbbt.PacketSize, sbbt.HeaderSize) {
		return nil, fmt.Errorf("chunked: container is not packet-aligned (align %d offset %d)", ix.Align, ix.AlignOffset)
	}
	if ix.NumChunks() == 0 {
		return nil, fmt.Errorf("chunked: container has no chunks")
	}
	if ix.Chunks[0].RawLen < sbbt.HeaderSize {
		return nil, fmt.Errorf("chunked: chunk 0 holds %d bytes, smaller than the %d-byte header", ix.Chunks[0].RawLen, sbbt.HeaderSize)
	}
	// The header lives at the start of chunk 0; decode just that chunk and
	// apply the same plausibility rules the streaming reader enforces, so
	// a hostile header is rejected here exactly as it would be there.
	dec := compress.NewMLZSChunkDecoder(f, ix)
	raw, err := dec.Decode(0)
	if err != nil {
		return nil, err
	}
	hdr, err := sbbt.ParseHeader(raw[:sbbt.HeaderSize])
	if err != nil {
		return nil, err
	}
	if hdr.Checksummed {
		// Checksummed streams interleave CRC trailers with the packets, so
		// chunk boundaries are not packet boundaries; the streaming reader
		// handles them.
		return nil, fmt.Errorf("chunked: checksummed SBBT traces stream only")
	}
	if hdr.TotalBranches > sbbt.MaxTraceBranches {
		return nil, fmt.Errorf("sbbt: header declares %d branches, limit %d: %w", hdr.TotalBranches, uint64(sbbt.MaxTraceBranches), faults.ErrLimit)
	}
	if hdr.TotalBranches > hdr.TotalInstructions {
		return nil, fmt.Errorf("sbbt: header declares %d branches but only %d instructions: %w", hdr.TotalBranches, hdr.TotalInstructions, faults.ErrCorrupt)
	}
	return &Trace{f: f, ix: ix, hdr: hdr}, nil
}

// Header returns the decoded SBBT header.
func (t *Trace) Header() sbbt.Header { return t.hdr }

// TotalBranches returns the branch count the header declares.
func (t *Trace) TotalBranches() uint64 { return t.hdr.TotalBranches }

// TotalInstructions returns the instruction count the header declares.
func (t *Trace) TotalInstructions() uint64 { return t.hdr.TotalInstructions }

// NumChunks returns the number of container chunks.
func (t *Trace) NumChunks() int { return t.ix.NumChunks() }

// DecodeChunk decompresses container chunk i and decodes its packets,
// returning the events it held. On a decode error the events preceding the
// failure are still returned — the same "error after n" contract the
// streaming batch reader follows — and the error carries the identical text
// and fault class the streaming path would report at that offset. Safe for
// concurrent use: each call owns its decompression state, and os.File
// ReadAt carries no shared cursor.
func (t *Trace) DecodeChunk(i int) ([]bp.Event, error) {
	raw, err := compress.NewMLZSChunkDecoder(t.f, t.ix).Decode(i)
	if err != nil {
		return nil, err
	}
	if i == 0 {
		raw = raw[sbbt.HeaderSize:]
	}
	evs := make([]bp.Event, 0, len(raw)/sbbt.PacketSize)
	for off := 0; off < len(raw); off += sbbt.PacketSize {
		if len(raw)-off < sbbt.PacketSize {
			// Only the final chunk can hold a partial packet; report it the
			// way the streaming reader does.
			return evs, fmt.Errorf("sbbt: trace ends mid-packet: %w", bp.ErrTruncated)
		}
		ev, err := sbbt.DecodePacket(raw[off : off+sbbt.PacketSize])
		if err != nil {
			return evs, err
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// Close releases the underlying file. In-flight DecodeChunk calls must have
// completed.
func (t *Trace) Close() error { return t.f.Close() }
