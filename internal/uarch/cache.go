package uarch

import (
	"fmt"

	"mbplib/internal/utils"
)

// Cache is a set-associative cache with LRU replacement and a fixed hit
// latency, chained to a next level (nil means the next access goes to
// memory at the configured latency). It models latency only — bandwidth
// and MSHR effects are out of scope, as the model needs to be cycle-level,
// not cycle-perfect (§VII uses ChampSim only as the "orders of magnitude
// slower, insensitive to predictor choice" baseline).
type Cache struct {
	name     string
	sets     int
	ways     int
	lineBits int
	hitLat   uint64
	next     *Cache
	memLat   uint64
	tags     []uint64 // sets*ways tag array; 0 means invalid
	lru      []uint32 // per-line last-use stamp
	stamp    uint32
	Hits     uint64
	Misses   uint64
	// Prefetch traffic is accounted separately from demand accesses.
	PrefHits   uint64
	Prefetches uint64
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string
	Sets     int
	Ways     int
	LineBits int    // log2 line size; 6 = 64-byte lines
	HitLat   uint64 // cycles on hit
}

// NewCache builds a cache level. next is the backing level; memLat is the
// latency charged when the last level misses.
func NewCache(cfg CacheConfig, next *Cache, memLat uint64) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("uarch: invalid cache geometry %+v (sets must be a power of two)", cfg))
	}
	if cfg.LineBits == 0 {
		cfg.LineBits = 6
	}
	return &Cache{
		name:     cfg.Name,
		sets:     cfg.Sets,
		ways:     cfg.Ways,
		lineBits: cfg.LineBits,
		hitLat:   cfg.HitLat,
		next:     next,
		memLat:   memLat,
		tags:     make([]uint64, cfg.Sets*cfg.Ways),
		lru:      make([]uint32, cfg.Sets*cfg.Ways),
	}
}

// Access looks addr up, filling on miss, and returns the total latency in
// cycles including lower levels.
func (c *Cache) Access(addr uint64) uint64 {
	line := addr >> c.lineBits
	set := int(utils.Mix(line)) & (c.sets - 1)
	base := set * c.ways
	c.stamp++
	tag := line | 1<<63 // bit 63 marks validity so tag 0 is never valid
	victim := base
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.Hits++
			c.lru[i] = c.stamp
			return c.hitLat
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.Misses++
	var lower uint64
	if c.next != nil {
		lower = c.next.Access(addr)
	} else {
		lower = c.memLat
	}
	c.tags[victim] = tag
	c.lru[victim] = c.stamp
	return c.hitLat + lower
}

// Name returns the level's configured name.
func (c *Cache) Name() string { return c.name }

// Prefetch fills addr's line without charging latency to the requester and
// without touching the demand hit/miss counters. Fills propagate down the
// hierarchy as prefetches too.
func (c *Cache) Prefetch(addr uint64) {
	line := addr >> c.lineBits
	set := int(utils.Mix(line)) & (c.sets - 1)
	base := set * c.ways
	c.stamp++
	tag := line | 1<<63
	victim := base
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.PrefHits++
			c.lru[i] = c.stamp
			return
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.Prefetches++
	if c.next != nil {
		c.next.Prefetch(addr)
	}
	c.tags[victim] = tag
	c.lru[victim] = c.stamp
}

// StridePrefetcher is an IP-indexed stride prefetcher in the style of the
// next-line/stride prefetchers ChampSim attaches to its data caches: it
// learns the access stride of each load instruction and, once confident,
// prefetches ahead of it.
type StridePrefetcher struct {
	entries []strideEntry
	mask    uint64
	degree  uint64
	Issued  uint64
}

type strideEntry struct {
	tag      uint64
	lastAddr uint64
	stride   int64
	conf     uint8
}

// NewStridePrefetcher builds a prefetcher with 2^logSize entries issuing
// `degree` prefetches ahead once a stride is confirmed.
func NewStridePrefetcher(logSize int, degree int) *StridePrefetcher {
	if logSize < 1 || logSize > 16 || degree < 1 {
		panic(fmt.Sprintf("uarch: invalid stride prefetcher logSize=%d degree=%d", logSize, degree))
	}
	return &StridePrefetcher{
		entries: make([]strideEntry, 1<<logSize),
		mask:    1<<logSize - 1,
		degree:  uint64(degree),
	}
}

// Observe records a load by the instruction at ip touching addr and issues
// prefetches into cache once the stride is confident.
func (s *StridePrefetcher) Observe(ip, addr uint64, cache *Cache) {
	e := &s.entries[utils.Mix(ip)&s.mask]
	if e.tag != ip {
		*e = strideEntry{tag: ip, lastAddr: addr}
		return
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
	}
	e.lastAddr = addr
	if e.conf >= 2 {
		for d := uint64(1); d <= s.degree; d++ {
			cache.Prefetch(uint64(int64(addr) + int64(d)*e.stride))
			s.Issued++
		}
	}
}

// BTB is a set-associative branch target buffer.
type BTB struct {
	sets    int
	ways    int
	tags    []uint64
	targets []uint64
	lru     []uint32
	stamp   uint32
	Hits    uint64
	Misses  uint64
}

// NewBTB builds a BTB with the given geometry (sets must be a power of
// two).
func NewBTB(sets, ways int) *BTB {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("uarch: invalid BTB geometry sets=%d ways=%d", sets, ways))
	}
	return &BTB{
		sets:    sets,
		ways:    ways,
		tags:    make([]uint64, sets*ways),
		targets: make([]uint64, sets*ways),
		lru:     make([]uint32, sets*ways),
	}
}

// Lookup returns the predicted target for the branch at ip, if present.
func (b *BTB) Lookup(ip uint64) (uint64, bool) {
	set := int(utils.Mix(ip>>2)) & (b.sets - 1)
	base := set * b.ways
	tag := ip | 1<<63
	for i := base; i < base+b.ways; i++ {
		if b.tags[i] == tag {
			b.Hits++
			b.stamp++
			b.lru[i] = b.stamp
			return b.targets[i], true
		}
	}
	b.Misses++
	return 0, false
}

// Update records the observed target for the branch at ip.
func (b *BTB) Update(ip, target uint64) {
	set := int(utils.Mix(ip>>2)) & (b.sets - 1)
	base := set * b.ways
	tag := ip | 1<<63
	b.stamp++
	victim := base
	for i := base; i < base+b.ways; i++ {
		if b.tags[i] == tag {
			b.targets[i] = target
			b.lru[i] = b.stamp
			return
		}
		if b.lru[i] < b.lru[victim] {
			victim = i
		}
	}
	b.tags[victim] = tag
	b.targets[victim] = target
	b.lru[victim] = b.stamp
}

// RAS is a return address stack with wrap-around overflow, as in hardware.
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS builds a return address stack of the given capacity.
func NewRAS(size int) *RAS {
	if size <= 0 {
		panic("uarch: invalid RAS size")
	}
	return &RAS{stack: make([]uint64, size)}
}

// Push records a return address (on a call).
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return. It returns false when empty.
func (r *RAS) Pop() (uint64, bool) {
	if r.depth == 0 {
		return 0, false
	}
	addr := r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return addr, true
}

// TargetPredictor predicts the target of indirect branches. Two
// implementations exist, matching the paper's methodology (§VII-A): the
// GShare-like IndirectPredictor and ITTAGE.
type TargetPredictor interface {
	Lookup(ip uint64) uint64
	Update(ip, target uint64)
}

// IndirectPredictor is a GShare-like indirect target predictor ([36] in the
// paper): a table of targets indexed by the branch address hashed with a
// target-path history.
type IndirectPredictor struct {
	logSize int
	targets []uint64
	hist    uint64
}

// NewIndirectPredictor builds an indirect predictor with 2^logSize entries.
func NewIndirectPredictor(logSize int) *IndirectPredictor {
	if logSize < 1 || logSize > 24 {
		panic(fmt.Sprintf("uarch: invalid indirect predictor size %d", logSize))
	}
	return &IndirectPredictor{logSize: logSize, targets: make([]uint64, 1<<logSize)}
}

func (p *IndirectPredictor) index(ip uint64) uint64 {
	return utils.XorFold(ip^p.hist, p.logSize)
}

// Lookup returns the predicted target for the indirect branch at ip (zero
// if never seen).
func (p *IndirectPredictor) Lookup(ip uint64) uint64 {
	return p.targets[p.index(ip)]
}

// Update records the observed target and folds it into the path history.
func (p *IndirectPredictor) Update(ip, target uint64) {
	p.targets[p.index(ip)] = target
	p.hist = p.hist<<4 ^ target>>2
}
