package uarch

import (
	"bytes"
	"io"
	"testing"

	"mbplib/internal/cst"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/predictors/statics"
	"mbplib/internal/tracegen"
)

// buildTrace renders a spec as an in-memory CST trace and opens a reader.
func buildTrace(t *testing.T, spec tracegen.Spec) *cst.Reader {
	t.Helper()
	total, err := tracegen.InstrTotals(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := cst.NewWriter(&buf, total)
	if err != nil {
		t.Fatal(err)
	}
	ig, err := tracegen.NewInstrGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	var in cst.Instruction
	for {
		err := ig.Read(&in)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(&in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := cst.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func testSpec(branches uint64) tracegen.Spec {
	return tracegen.Spec{
		Name: "uarch", Seed: 99, Branches: branches,
		Kernels: []tracegen.KernelSpec{
			{Kind: tracegen.Biased}, {Kind: tracegen.Loop},
			{Kind: tracegen.CallRet}, {Kind: tracegen.Indirect},
		},
	}
}

func TestRunBasics(t *testing.T) {
	tr := buildTrace(t, testSpec(20000))
	stats, err := Run(tr, gshare.New(), DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instructions == 0 || stats.Cycles == 0 {
		t.Fatalf("empty run: %+v", stats)
	}
	if stats.IPC <= 0 || stats.IPC > float64(DefaultConfig().FetchWidth) {
		t.Errorf("IPC = %v outside (0, %d]", stats.IPC, DefaultConfig().FetchWidth)
	}
	if stats.Branches != 20000 {
		t.Errorf("branches = %d, want 20000", stats.Branches)
	}
	if stats.CondBranches == 0 || stats.CondBranches >= stats.Branches {
		t.Errorf("conditional branches = %d of %d", stats.CondBranches, stats.Branches)
	}
	if stats.MPKI <= 0 {
		t.Errorf("MPKI = %v", stats.MPKI)
	}
	if stats.L1DHits+stats.L1DMisses == 0 {
		t.Errorf("no data-cache activity")
	}
	if stats.L1IHits+stats.L1IMisses == 0 {
		t.Errorf("no instruction-cache activity")
	}
}

func TestBetterPredictorHigherIPC(t *testing.T) {
	spec := testSpec(30000)
	good, err := Run(buildTrace(t, spec), gshare.New(), DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Run(buildTrace(t, spec), statics.NewNotTaken(), DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if good.DirMispredictions >= bad.DirMispredictions {
		t.Errorf("gshare mispredicts (%d) >= always-not-taken (%d)", good.DirMispredictions, bad.DirMispredictions)
	}
	if good.IPC <= bad.IPC {
		t.Errorf("better predictor gave IPC %v <= %v", good.IPC, bad.IPC)
	}
}

func TestDeterminism(t *testing.T) {
	spec := testSpec(10000)
	a, err := Run(buildTrace(t, spec), gshare.New(), DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(buildTrace(t, spec), gshare.New(), DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("identical runs differ:\n%+v\n%+v", a, b)
	}
}

func TestMaxInstrLimit(t *testing.T) {
	spec := testSpec(50000)
	stats, err := Run(buildTrace(t, spec), gshare.New(), DefaultConfig(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instructions < 5000 || stats.Instructions > 5100 {
		t.Errorf("instructions = %d, want about 5000", stats.Instructions)
	}
}

func TestBTBLearnsStableTargets(t *testing.T) {
	// A loop-only workload has few static branches with stable targets:
	// after warm-up the BTB should hit nearly always.
	spec := tracegen.Spec{
		Name: "loops", Seed: 1, Branches: 20000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Loop, Trips: []int{5, 7}}},
	}
	stats, err := Run(buildTrace(t, spec), gshare.New(), DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BTBHits == 0 {
		t.Fatalf("no BTB hits: %+v", stats)
	}
	frac := float64(stats.TargetMispredicts) / float64(stats.Branches)
	if frac > 0.05 {
		t.Errorf("target misprediction fraction %v on stable-target workload", frac)
	}
}

func TestRASPredictsReturns(t *testing.T) {
	spec := tracegen.Spec{
		Name: "calls", Seed: 2, Branches: 20000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.CallRet}},
	}
	stats, err := Run(buildTrace(t, spec), gshare.New(), DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RASMispredictions > stats.Branches/50 {
		t.Errorf("RAS mispredictions = %d of %d branches", stats.RASMispredictions, stats.Branches)
	}
}

func TestIndirectPredictorLearns(t *testing.T) {
	// A single-target "switch" is perfectly predictable.
	spec := tracegen.Spec{
		Name: "ind", Seed: 3, Branches: 20000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Indirect, Targets: 2}},
	}
	stats, err := Run(buildTrace(t, spec), gshare.New(), DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(stats.IndirectMispredicts) / float64(stats.Branches)
	if frac > 0.5 {
		t.Errorf("indirect misprediction fraction %v with 2 targets", frac)
	}
}

func TestInvalidConfig(t *testing.T) {
	tr := buildTrace(t, testSpec(100))
	if _, err := Run(tr, gshare.New(), Config{}, 0); err == nil {
		t.Errorf("zero config accepted")
	}
}

func TestCacheUnit(t *testing.T) {
	l2 := NewCache(CacheConfig{Name: "L2", Sets: 16, Ways: 2, HitLat: 10}, nil, 100)
	l1 := NewCache(CacheConfig{Name: "L1", Sets: 4, Ways: 2, HitLat: 1}, l2, 0)
	// First access misses everywhere: 1 + 10 + 100.
	if lat := l1.Access(0x1000); lat != 111 {
		t.Errorf("cold access latency = %d, want 111", lat)
	}
	// Second access to the same line hits L1.
	if lat := l1.Access(0x1008); lat != 1 {
		t.Errorf("hot access latency = %d, want 1", lat)
	}
	if l1.Hits != 1 || l1.Misses != 1 || l2.Misses != 1 {
		t.Errorf("counters: l1 %d/%d l2 %d/%d", l1.Hits, l1.Misses, l2.Hits, l2.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(CacheConfig{Name: "c", Sets: 1, Ways: 2, HitLat: 1}, nil, 10)
	a, b, d := uint64(0x0), uint64(0x40), uint64(0x80)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	c.Access(d) // evicts b
	if lat := c.Access(a); lat != 1 {
		t.Errorf("a evicted despite being MRU")
	}
	if lat := c.Access(b); lat == 1 {
		t.Errorf("b survived despite being LRU")
	}
}

func TestBTBUnit(t *testing.T) {
	b := NewBTB(4, 2)
	if _, ok := b.Lookup(0x100); ok {
		t.Errorf("empty BTB hit")
	}
	b.Update(0x100, 0x500)
	if tgt, ok := b.Lookup(0x100); !ok || tgt != 0x500 {
		t.Errorf("BTB lookup = %#x, %v", tgt, ok)
	}
	b.Update(0x100, 0x600) // target change
	if tgt, _ := b.Lookup(0x100); tgt != 0x600 {
		t.Errorf("BTB did not update target: %#x", tgt)
	}
}

func TestRASUnit(t *testing.T) {
	r := NewRAS(2)
	if _, ok := r.Pop(); ok {
		t.Errorf("empty RAS popped")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3) // overflows, overwriting the oldest entry (1)
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("pop = %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Errorf("overwritten entry reappeared")
	}
}

func TestIndirectPredictorUnit(t *testing.T) {
	p := NewIndirectPredictor(8)
	if p.Lookup(0x40) != 0 {
		t.Errorf("cold lookup non-zero")
	}
	p.Update(0x40, 0x1000)
	// Same ip, same history state at lookup time differs after Update
	// (history advanced); but a repeating pattern converges. Just check
	// the table retained something.
	found := false
	for i := 0; i < 4; i++ {
		if p.Lookup(0x40) == 0x1000 {
			found = true
		}
		p.Update(0x40, 0x1000)
	}
	if !found {
		t.Errorf("indirect predictor never returned the trained target")
	}
}

func TestTLBsAreExercised(t *testing.T) {
	stats, err := Run(buildTrace(t, testSpec(20000)), gshare.New(), DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DTLBMisses == 0 {
		t.Errorf("no DTLB misses on a multi-megabyte data working set")
	}
	if stats.ITLBMisses == 0 {
		t.Errorf("no ITLB misses")
	}
}

func TestStridePrefetcherHelps(t *testing.T) {
	// The synthetic workload walks strided arrays, so the stride
	// prefetcher must issue prefetches, hit, and improve (or at least not
	// hurt) IPC versus the ablated configuration.
	spec := testSpec(30000)
	on, err := Run(buildTrace(t, spec), gshare.New(), DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DisablePrefetchers = true
	off, err := Run(buildTrace(t, spec), gshare.New(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if on.PrefetchesIssued == 0 {
		t.Fatalf("no prefetches issued: %+v", on)
	}
	if on.L1DPrefetchHits == 0 && on.L1DMisses >= off.L1DMisses {
		t.Errorf("prefetcher neither hit nor reduced demand misses (on: %d misses, off: %d)", on.L1DMisses, off.L1DMisses)
	}
	if on.IPC < off.IPC*0.98 {
		t.Errorf("prefetching hurt IPC: %.4f vs %.4f", on.IPC, off.IPC)
	}
	if off.PrefetchesIssued != 0 {
		t.Errorf("ablated run issued prefetches")
	}
}

func TestStridePrefetcherUnit(t *testing.T) {
	l1 := NewCache(CacheConfig{Name: "L1", Sets: 16, Ways: 4, HitLat: 1}, nil, 100)
	sp := NewStridePrefetcher(4, 1)
	// Train a constant stride of one line.
	addr := uint64(0x10000)
	for i := 0; i < 4; i++ {
		l1.Access(addr)
		sp.Observe(0x400, addr, l1)
		addr += 64
	}
	if sp.Issued == 0 {
		t.Fatalf("no prefetches after a confident stride")
	}
	// The next access should hit thanks to the prefetch.
	if lat := l1.Access(addr); lat != 1 {
		t.Errorf("prefetched line missed (latency %d)", lat)
	}
}

func TestCachePrefetchCounters(t *testing.T) {
	c := NewCache(CacheConfig{Name: "c", Sets: 4, Ways: 2, HitLat: 1}, nil, 10)
	c.Prefetch(0x1000)
	if c.Prefetches != 1 || c.Misses != 0 {
		t.Errorf("prefetch fill counted as demand: pref=%d miss=%d", c.Prefetches, c.Misses)
	}
	c.Prefetch(0x1000)
	if c.PrefHits != 1 {
		t.Errorf("prefetch hit not counted")
	}
	if lat := c.Access(0x1000); lat != 1 {
		t.Errorf("demand access after prefetch missed (latency %d)", lat)
	}
}

func TestITTAGEUnit(t *testing.T) {
	it := NewITTAGE(ITTAGEConfig{})
	// A switch whose target depends on the previous target (a Markov
	// chain): after training, prediction accuracy must be high.
	targets := []uint64{0x1000, 0x2000, 0x3000}
	seq := []int{0, 1, 2, 0, 1, 2} // deterministic rotation
	correct, total := 0, 0
	pos := 0
	for i := 0; i < 3000; i++ {
		tgt := targets[seq[pos]]
		pos = (pos + 1) % len(seq)
		if i > 500 {
			total++
			if it.Lookup(0x400) == tgt {
				correct++
			}
		}
		it.Update(0x400, tgt)
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("ITTAGE accuracy on a rotating switch = %v, want >= 0.9", acc)
	}
}

func TestITTAGEBeatsGShareLikeOnPatternedSwitch(t *testing.T) {
	// Both predictors see the same rotating-target stream; the history-
	// tagged ITTAGE should at least match the hashed-table predictor.
	run := func(p TargetPredictor) float64 {
		targets := []uint64{0x1000, 0x2000, 0x3000, 0x4000}
		pos := 0
		correct, total := 0, 0
		for i := 0; i < 4000; i++ {
			tgt := targets[pos]
			pos = (pos + 1) % len(targets)
			if i > 1000 {
				total++
				if p.Lookup(0x400) == tgt {
					correct++
				}
			}
			p.Update(0x400, tgt)
		}
		return float64(correct) / float64(total)
	}
	itAcc := run(NewITTAGE(ITTAGEConfig{}))
	gsAcc := run(NewIndirectPredictor(12))
	if itAcc < gsAcc-0.02 {
		t.Errorf("ITTAGE (%v) clearly below the GShare-like predictor (%v)", itAcc, gsAcc)
	}
	if itAcc < 0.9 {
		t.Errorf("ITTAGE accuracy %v on a period-4 switch", itAcc)
	}
}

func TestIndirectKindConfig(t *testing.T) {
	spec := tracegen.Spec{
		Name: "ind", Seed: 3, Branches: 15000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Indirect, Targets: 6}, {Kind: tracegen.Biased}},
	}
	cfg := DefaultConfig()
	cfg.IndirectKind = "ittage"
	stats, err := Run(buildTrace(t, spec), gshare.New(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instructions == 0 {
		t.Fatalf("empty run")
	}
	cfg.IndirectKind = "nonsense"
	if _, err := Run(buildTrace(t, spec), gshare.New(), cfg, 0); err == nil {
		t.Errorf("unknown indirect kind accepted")
	}
}
