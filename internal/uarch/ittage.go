package uarch

import (
	"fmt"

	"mbplib/internal/utils"
)

// ITTAGE is an indirect target predictor in the style of Seznec's 64-Kbyte
// ITTAGE ([37] in the paper): a tagless base table backed by partially
// tagged tables indexed with geometrically growing slices of a target-path
// history. The longest matching table provides the target; confidence
// counters arbitrate replacement and usefulness bits throttle allocation,
// exactly as in TAGE. The paper's methodology (§VII-A) pairs it with the
// high-end BATAGE direction predictor: "if we are going to simulate for
// performance, it makes sense to have a high-end target predictor
// accompanying a high-end branch predictor".
type ITTAGE struct {
	base    []uint64 // tagless ip-indexed targets
	logBase int

	tables   []ittageTable
	hist     uint64 // target-path history, 2 bits per taken indirect branch
	rng      *utils.Rand
	ticks    uint32
	resetLog int

	Hits       uint64
	Mispredict uint64
}

type ittageTable struct {
	histLen int
	logSize int
	tagBits int
	entries []ittageEntry
}

type ittageEntry struct {
	tag    uint16 // 0 = invalid (tags always have their top validity bit set)
	conf   uint8  // 0..3
	u      uint8  // 0..3
	target uint64
}

// ITTAGEConfig parameterises NewITTAGE.
type ITTAGEConfig struct {
	LogBase  int   // log2 base-table entries; default 11
	LogSize  int   // log2 entries per tagged table; default 9
	TagBits  int   // partial tag width; default 9
	HistLens []int // per-table history lengths; default {4, 8, 16, 32}
	ResetLog int   // usefulness aging period, 2^n updates; default 16
	Seed     uint64
}

// NewITTAGE builds an ITTAGE indirect target predictor. The defaults give
// roughly the 64 kB budget of the paper's configuration (2K base targets
// plus 4 × 512 tagged entries of ~11 bytes).
func NewITTAGE(cfg ITTAGEConfig) *ITTAGE {
	if cfg.LogBase == 0 {
		cfg.LogBase = 11
	}
	if cfg.LogSize == 0 {
		cfg.LogSize = 9
	}
	if cfg.TagBits == 0 {
		cfg.TagBits = 9
	}
	if len(cfg.HistLens) == 0 {
		cfg.HistLens = []int{4, 8, 16, 32}
	}
	if cfg.ResetLog == 0 {
		cfg.ResetLog = 16
	}
	if cfg.LogBase < 1 || cfg.LogBase > 24 || cfg.LogSize < 1 || cfg.LogSize > 24 || cfg.TagBits < 1 || cfg.TagBits > 15 {
		panic(fmt.Sprintf("uarch: invalid ITTAGE geometry %+v", cfg))
	}
	it := &ITTAGE{
		base:     make([]uint64, 1<<cfg.LogBase),
		logBase:  cfg.LogBase,
		rng:      utils.NewRand(cfg.Seed + 1),
		resetLog: cfg.ResetLog,
	}
	prev := 0
	for _, l := range cfg.HistLens {
		if l <= prev || l > 63 {
			panic(fmt.Sprintf("uarch: ITTAGE history lengths must be ascending and < 64: %v", cfg.HistLens))
		}
		prev = l
		it.tables = append(it.tables, ittageTable{
			histLen: l,
			logSize: cfg.LogSize,
			tagBits: cfg.TagBits,
			entries: make([]ittageEntry, 1<<cfg.LogSize),
		})
	}
	return it
}

func (it *ITTAGE) baseIndex(ip uint64) uint64 {
	return utils.XorFold(ip>>2, it.logBase)
}

func (t *ittageTable) index(ip, hist uint64) uint64 {
	h := hist & (1<<t.histLen - 1)
	return utils.XorFold((ip^h)*0x9e3779b97f4a7c15, t.logSize)
}

func (t *ittageTable) tag(ip, hist uint64) uint16 {
	h := hist & (1<<t.histLen - 1)
	return uint16(utils.XorFold(utils.Mix(ip^h<<7), t.tagBits)) | 1<<t.tagBits
}

// Lookup returns the predicted target for the indirect branch at ip (zero
// if nothing is known yet).
func (it *ITTAGE) Lookup(ip uint64) uint64 {
	for i := len(it.tables) - 1; i >= 0; i-- {
		t := &it.tables[i]
		e := &t.entries[t.index(ip, it.hist)]
		if e.tag == t.tag(ip, it.hist) {
			return e.target
		}
	}
	return it.base[it.baseIndex(ip)]
}

// Update records the observed target, trains the providing entry, allocates
// into a longer table on a misprediction, and advances the path history.
func (it *ITTAGE) Update(ip, target uint64) {
	predicted := it.Lookup(ip)
	if predicted == target {
		it.Hits++
	} else {
		it.Mispredict++
	}

	// Find the provider again (cheap: few small tables).
	provider := -1
	for i := len(it.tables) - 1; i >= 0; i-- {
		t := &it.tables[i]
		if t.entries[t.index(ip, it.hist)].tag == t.tag(ip, it.hist) {
			provider = i
			break
		}
	}
	if provider >= 0 {
		t := &it.tables[provider]
		e := &t.entries[t.index(ip, it.hist)]
		if e.target == target {
			if e.conf < 3 {
				e.conf++
			}
			if e.u < 3 {
				e.u++
			}
		} else if e.conf > 0 {
			e.conf--
		} else {
			e.target = target
			e.conf = 1
		}
	} else {
		it.base[it.baseIndex(ip)] = target
	}

	// Allocate on a misprediction, TAGE-style: the first replaceable entry
	// in a longer table, with usefulness decay when none is free.
	if predicted != target && provider < len(it.tables)-1 {
		start := provider + 1
		allocated := false
		for i := start; i < len(it.tables); i++ {
			t := &it.tables[i]
			e := &t.entries[t.index(ip, it.hist)]
			if e.u == 0 {
				*e = ittageEntry{tag: t.tag(ip, it.hist), target: target, conf: 1}
				allocated = true
				break
			}
		}
		if !allocated {
			i := start + it.rng.Intn(len(it.tables)-start)
			t := &it.tables[i]
			e := &t.entries[t.index(ip, it.hist)]
			if e.u > 0 {
				e.u--
			}
		}
	}

	// Periodic usefulness aging.
	it.ticks++
	if it.ticks >= 1<<it.resetLog {
		it.ticks = 0
		for ti := range it.tables {
			for ei := range it.tables[ti].entries {
				if it.tables[ti].entries[ei].u > 0 {
					it.tables[ti].entries[ei].u--
				}
			}
		}
	}

	it.hist = it.hist<<2 ^ utils.Mix(target)&3
}
