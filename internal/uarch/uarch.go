// Package uarch is a cycle-level out-of-order core model in the ChampSim
// mould: it consumes full per-instruction traces (package cst) and, like
// ChampSim, advances the machine one cycle at a time — each cycle the
// retire, execute/issue and fetch stages operate over the reorder buffer.
// It models register dependencies, execution ports, a cache hierarchy, a
// branch target buffer, a return address stack and an indirect target
// predictor, and reports IPC alongside MPKI.
//
// It stands in for ChampSim in the paper's evaluation (§VII): a simulator
// that models the whole processor, is orders of magnitude slower than a
// microarchitecture-agnostic simulator precisely because of the per-cycle
// walk over its structures, and whose running time is almost independent of
// the branch predictor plugged into it (Table III, bottom). The default
// configuration approximates the paper's setup: an Ice Lake-like wide core
// with an 8K-entry BTB and a 4K-entry GShare-like indirect target
// predictor.
//
// Like ChampSim, the model recovers the target of a taken branch from the
// IP of the next trace record, classifies branches from their register sets
// (see cst.Instruction.Classify), and — being trace-driven — stalls the
// front end on a misprediction until the branch resolves rather than
// simulating the wrong path.
package uarch

import (
	"fmt"
	"io"

	"mbplib/internal/bp"
	"mbplib/internal/cst"
)

// Config parameterises the core model. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	FetchWidth    int    // instructions fetched per cycle
	DecodeLatency uint64 // cycles from fetch to earliest issue
	ExecPorts     int    // instructions issued per cycle
	RetireWidth   int    // instructions retired per cycle
	ROBSize       int    // in-flight instruction window
	RedirectLat   uint64 // extra cycles to refill the front end after a misprediction

	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig
	LLC CacheConfig
	// MemLatency is charged on an LLC miss.
	MemLatency uint64

	BTBSets, BTBWays int
	RASSize          int
	IndirectLog      int // log2 entries of the GShare-like indirect predictor
	// IndirectKind selects the indirect target predictor: "gshare" (the
	// 4K-entry GShare-like predictor paired with GShare in §VII-A) or
	// "ittage" (the 64 kB ITTAGE paired with BATAGE).
	IndirectKind string

	// ITLB/DTLB/STLB model address translation at page granularity
	// (LineBits 12); a last-level TLB miss costs PageWalkLat.
	ITLB, DTLB, STLB CacheConfig
	PageWalkLat      uint64

	// DisablePrefetchers turns off the next-line I-prefetcher and the
	// stride D-prefetcher (for ablation).
	DisablePrefetchers bool
	StridePrefLog      int // log2 stride-prefetcher entries
	StridePrefDegree   int // prefetches issued per confident stride
}

// DefaultConfig returns the Ice Lake-like configuration used in the
// evaluation: 6-wide fetch, 512-entry ROB, three cache levels, an
// 8K-entry BTB and a 4K-entry indirect target predictor.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    6,
		DecodeLatency: 5,
		ExecPorts:     6,
		RetireWidth:   6,
		ROBSize:       512,
		RedirectLat:   12,
		L1I:           CacheConfig{Name: "L1I", Sets: 64, Ways: 8, HitLat: 1},
		L1D:           CacheConfig{Name: "L1D", Sets: 64, Ways: 12, HitLat: 5},
		L2:            CacheConfig{Name: "L2", Sets: 1024, Ways: 8, HitLat: 10},
		LLC:           CacheConfig{Name: "LLC", Sets: 2048, Ways: 16, HitLat: 20},
		MemLatency:    200,
		BTBSets:       1024, BTBWays: 8, // 8K entries
		RASSize:          64,
		IndirectLog:      12, // 4K entries
		ITLB:             CacheConfig{Name: "ITLB", Sets: 16, Ways: 4, LineBits: 12, HitLat: 0},
		DTLB:             CacheConfig{Name: "DTLB", Sets: 16, Ways: 4, LineBits: 12, HitLat: 0},
		STLB:             CacheConfig{Name: "STLB", Sets: 128, Ways: 12, LineBits: 12, HitLat: 8},
		PageWalkLat:      50,
		StridePrefLog:    8,
		StridePrefDegree: 2,
	}
}

// Stats is the output of a core-model run.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64

	Branches            uint64
	CondBranches        uint64
	DirMispredictions   uint64 // conditional direction mispredictions
	TargetMispredicts   uint64 // taken branches whose predicted target was wrong
	MPKI                float64
	L1IHits, L1IMisses  uint64
	L1DHits, L1DMisses  uint64
	L2Hits, L2Misses    uint64
	LLCHits, LLCMisses  uint64
	ITLBMisses          uint64
	DTLBMisses          uint64
	STLBMisses          uint64
	PrefetchesIssued    uint64
	L1DPrefetchHits     uint64
	BTBHits, BTBMisses  uint64
	RASMispredictions   uint64
	IndirectMispredicts uint64
}

// Entry states in the reorder buffer.
const (
	stateWaiting = iota // fetched, waiting for operands or a port
	stateIssued         // executing; completes at doneCycle
	stateDone           // executed; eligible to retire in order
)

// robEntry is one in-flight instruction.
type robEntry struct {
	state      uint8
	isLoad     bool
	isStore    bool
	mispredict bool // resolved direction or target misprediction
	ip         uint64
	memAddr    uint64
	readyAt    uint64 // earliest issue cycle (decode done)
	doneCycle  uint64
	seq        uint64    // allocation sequence number, 1-based
	deps       [4]uint64 // sequence numbers of the producing instructions
}

// core holds the run-time state of the model.
type core struct {
	cfg   Config
	pred  bp.Predictor
	l1i   *Cache
	l1d   *Cache
	itlb  *Cache
	dtlb  *Cache
	btb   *BTB
	ras   *RAS
	itp   TargetPredictor
	spref *StridePrefetcher

	cycle uint64

	rob        []robEntry
	head, tail int // ring cursors; count tracks occupancy
	count      int

	// Rename state: producer[r] is the sequence number of the newest
	// in-flight instruction writing register r (0 = value in the register
	// file). seq counts allocations, retiredSeq retirements; the entry for
	// an in-flight sequence s lives at rob[(s-1) % ROBSize].
	producer   [cst.NumRegs]uint64
	seq        uint64
	retiredSeq uint64

	fetchStallUntil uint64
	redirectPending bool // a mispredicted branch is in flight; fetch waits
	lastFetchLine   uint64
	lineReadyAt     uint64

	// Trace lookahead: cur is the next instruction to fetch; next supplies
	// taken-branch targets (ChampSim recovers them from the next IP).
	tr        *cst.Reader
	cur, next cst.Instruction
	haveCur   bool
	haveNext  bool

	stats Stats
}

// Run drives the predictor and core model over the instruction trace,
// simulating at most maxInstr instructions (0 = all). The direction
// predictor is exercised exactly as in the standard simulator: Predict and
// Train for conditional branches, Track for every branch (at fetch, where a
// real front end consults it).
func Run(tr *cst.Reader, p bp.Predictor, cfg Config, maxInstr uint64) (*Stats, error) {
	if cfg.FetchWidth <= 0 || cfg.ExecPorts <= 0 || cfg.RetireWidth <= 0 || cfg.ROBSize <= 0 {
		return nil, fmt.Errorf("uarch: invalid config %+v", cfg)
	}
	llc := NewCache(cfg.LLC, nil, cfg.MemLatency)
	l2 := NewCache(cfg.L2, llc, 0)
	var itp TargetPredictor
	switch cfg.IndirectKind {
	case "", "gshare":
		itp = NewIndirectPredictor(cfg.IndirectLog)
	case "ittage":
		itp = NewITTAGE(ITTAGEConfig{})
	default:
		return nil, fmt.Errorf("uarch: unknown indirect predictor kind %q", cfg.IndirectKind)
	}
	c := &core{
		cfg:   cfg,
		pred:  p,
		l1i:   NewCache(cfg.L1I, l2, 0),
		l1d:   NewCache(cfg.L1D, l2, 0),
		btb:   NewBTB(cfg.BTBSets, cfg.BTBWays),
		ras:   NewRAS(cfg.RASSize),
		itp:   itp,
		rob:   make([]robEntry, cfg.ROBSize),
		tr:    tr,
		cycle: 1,
	}
	if cfg.STLB.Sets > 0 {
		stlb := NewCache(cfg.STLB, nil, cfg.PageWalkLat)
		if cfg.ITLB.Sets > 0 {
			c.itlb = NewCache(cfg.ITLB, stlb, 0)
		}
		if cfg.DTLB.Sets > 0 {
			c.dtlb = NewCache(cfg.DTLB, stlb, 0)
		}
	}
	if !cfg.DisablePrefetchers && cfg.StridePrefLog > 0 {
		c.spref = NewStridePrefetcher(cfg.StridePrefLog, max(cfg.StridePrefDegree, 1))
	}
	if err := c.prime(); err != nil {
		return nil, err
	}

	for {
		c.retireStage()
		c.executeStage()
		if maxInstr == 0 || c.stats.Instructions < maxInstr {
			if _, err := c.fetchStage(); err != nil {
				return nil, err
			}
		}
		c.cycle++
		fetchDone := !c.haveCur || (maxInstr > 0 && c.stats.Instructions >= maxInstr)
		if c.count == 0 && fetchDone {
			break
		}
	}

	s := &c.stats
	s.Cycles = c.cycle
	if s.Cycles > 0 {
		s.IPC = float64(s.Instructions) / float64(s.Cycles)
	}
	if s.Instructions > 0 {
		s.MPKI = float64(s.DirMispredictions) / (float64(s.Instructions) / 1000)
	}
	s.L1IHits, s.L1IMisses = c.l1i.Hits, c.l1i.Misses
	s.L1DHits, s.L1DMisses = c.l1d.Hits, c.l1d.Misses
	s.L2Hits, s.L2Misses = l2.Hits, l2.Misses
	s.LLCHits, s.LLCMisses = llc.Hits, llc.Misses
	s.BTBHits, s.BTBMisses = c.btb.Hits, c.btb.Misses
	if c.itlb != nil {
		s.ITLBMisses = c.itlb.Misses
		s.STLBMisses += c.itlb.next.Misses
	}
	if c.dtlb != nil {
		s.DTLBMisses = c.dtlb.Misses
	}
	if c.spref != nil {
		s.PrefetchesIssued = c.spref.Issued
		s.L1DPrefetchHits = c.l1d.PrefHits
	}
	return s, nil
}

// prime fills the two-instruction trace lookahead.
func (c *core) prime() error {
	if err := c.readInto(&c.cur, &c.haveCur); err != nil {
		return err
	}
	return c.readInto(&c.next, &c.haveNext)
}

func (c *core) readInto(dst *cst.Instruction, have *bool) error {
	err := c.tr.Read(dst)
	if err == io.EOF {
		*have = false
		return nil
	}
	if err != nil {
		return err
	}
	*have = true
	return nil
}

// retireStage retires completed instructions in order.
func (c *core) retireStage() {
	for n := 0; n < c.cfg.RetireWidth && c.count > 0; n++ {
		e := &c.rob[c.head]
		if e.state != stateDone || e.doneCycle > c.cycle {
			return
		}
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		c.retiredSeq++
	}
}

// executeStage walks the whole reorder buffer — the per-cycle cost that
// defines simulators of this class — issuing ready instructions to free
// ports and completing issued ones.
func (c *core) executeStage() {
	ports := c.cfg.ExecPorts
	idx := c.head
	for n := 0; n < c.count; n++ {
		e := &c.rob[idx]
		switch e.state {
		case stateIssued:
			if e.doneCycle <= c.cycle {
				e.state = stateDone
			}
		case stateWaiting:
			if ports == 0 || e.readyAt > c.cycle {
				break
			}
			ready := true
			for _, d := range e.deps {
				if d == 0 || d <= c.retiredSeq {
					continue // value already in the register file
				}
				p := &c.rob[(d-1)%uint64(len(c.rob))]
				if p.state == stateWaiting || p.doneCycle > c.cycle {
					ready = false
					break
				}
			}
			if !ready {
				break
			}
			ports--
			var lat uint64 = 1
			if e.isLoad {
				if c.dtlb != nil {
					lat += c.dtlb.Access(e.memAddr)
				}
				lat += c.l1d.Access(e.memAddr)
				if c.spref != nil {
					c.spref.Observe(e.ip, e.memAddr, c.l1d)
				}
			}
			if e.isStore {
				if c.dtlb != nil {
					lat += c.dtlb.Access(e.memAddr)
				}
				c.l1d.Access(e.memAddr) // write allocate; the store buffer hides the latency
			}
			e.state = stateIssued
			e.doneCycle = c.cycle + lat
			// A mispredicted branch redirects the front end when it
			// resolves: fetch (paused since the branch was fetched) resumes
			// after the refill latency.
			if e.mispredict {
				resume := e.doneCycle + c.cfg.RedirectLat
				if resume > c.fetchStallUntil {
					c.fetchStallUntil = resume
				}
				c.redirectPending = false
			}
		}
		idx++
		if idx == len(c.rob) {
			idx = 0
		}
	}
}

// fetchStage brings up to FetchWidth instructions into the reorder buffer,
// honouring I-cache latency, ROB occupancy and misprediction stalls. It
// returns the number fetched.
func (c *core) fetchStage() (uint64, error) {
	if c.redirectPending || c.cycle < c.fetchStallUntil || c.cycle < c.lineReadyAt {
		return 0, nil
	}
	var fetched uint64
	for int(fetched) < c.cfg.FetchWidth && c.haveCur && c.count < len(c.rob) {
		in := c.cur
		line := in.IP >> 6
		if line != c.lastFetchLine {
			lat := c.l1i.Access(in.IP)
			if c.itlb != nil {
				lat += c.itlb.Access(in.IP)
			}
			if c.spref != nil {
				// Next-line instruction prefetch.
				c.l1i.Prefetch((line + 1) << 6)
			}
			c.lastFetchLine = line
			if lat > 1 {
				c.lineReadyAt = c.cycle + lat
				break // the rest of the group waits for the line
			}
		}
		nextIP := uint64(0)
		if c.haveNext {
			nextIP = c.next.IP
		}
		c.enqueue(&in, nextIP)
		fetched++
		// Advance the lookahead.
		c.cur = c.next
		c.haveCur = c.haveNext
		if err := c.readInto(&c.next, &c.haveNext); err != nil {
			return fetched, err
		}
		// A mispredicted branch stalls fetch until it resolves (the
		// trace-driven stand-in for squashing the wrong path); taken
		// branches merely end the fetch group.
		if c.redirectPending {
			break
		}
		if in.IsBranch && in.BranchTaken {
			break
		}
	}
	return fetched, nil
}

// enqueue allocates the ROB entry for in and, for branches, consults and
// trains the predictors.
func (c *core) enqueue(in *cst.Instruction, nextIP uint64) {
	c.stats.Instructions++
	c.seq++
	e := &c.rob[c.tail]
	c.tail = (c.tail + 1) % len(c.rob)
	c.count++
	*e = robEntry{
		state:   stateWaiting,
		isLoad:  in.IsLoad(),
		isStore: in.IsStore(),
		ip:      in.IP,
		readyAt: c.cycle + c.cfg.DecodeLatency,
		seq:     c.seq,
	}
	if e.isLoad {
		e.memAddr = in.SrcMem[0]
	} else if e.isStore {
		e.memAddr = in.DestMem[0]
	}
	// Rename: capture the producing instructions of the sources, then
	// claim the destinations.
	for i, r := range in.SrcRegs {
		if r != 0 {
			e.deps[i] = c.producer[r]
		}
	}
	for _, r := range in.DestRegs {
		if r != 0 {
			c.producer[r] = c.seq
		}
	}
	if op, ok := in.Classify(); ok {
		e.mispredict = c.branch(in, op, nextIP)
		if e.mispredict {
			c.redirectPending = true
		}
	}
}

// branch resolves prediction and training for a branch being fetched; it
// reports whether the front end will have followed the wrong path.
func (c *core) branch(in *cst.Instruction, op bp.Opcode, nextIP uint64) bool {
	c.stats.Branches++
	taken := in.BranchTaken
	target := uint64(0)
	if taken {
		target = nextIP
	}

	mispredicted := false

	// Direction.
	if op.IsConditional() {
		c.stats.CondBranches++
		predTaken := c.pred.Predict(in.IP)
		if predTaken != taken {
			c.stats.DirMispredictions++
			mispredicted = true
		}
		c.pred.Train(bp.Branch{IP: in.IP, Target: target, Opcode: op, Taken: taken})
	}

	// Target, for taken branches: RAS for returns, the indirect predictor
	// for indirect branches, the BTB otherwise.
	if taken && target != 0 {
		var predTarget uint64
		switch {
		case op.Base() == bp.Ret:
			if t, ok := c.ras.Pop(); ok {
				predTarget = t
			}
			if predTarget != target {
				c.stats.RASMispredictions++
			}
		case op.IsIndirect():
			predTarget = c.itp.Lookup(in.IP)
			if predTarget != target {
				c.stats.IndirectMispredicts++
			}
			c.itp.Update(in.IP, target)
		default:
			predTarget, _ = c.btb.Lookup(in.IP)
			c.btb.Update(in.IP, target)
		}
		if predTarget != target {
			c.stats.TargetMispredicts++
			mispredicted = true
		}
	}
	if op.Base() == bp.Call {
		c.ras.Push(in.IP + 4)
	}

	c.pred.Track(bp.Branch{IP: in.IP, Target: target, Opcode: op, Taken: taken})
	return mispredicted
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
