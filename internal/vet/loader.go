// Package vet implements mbpvet, the repository's own static analyzer. It
// loads MBPlib's source with the standard library's go/parser and go/types
// (no third-party dependencies) and enforces the contracts that the MBPlib
// paper states only in prose: Predict purity (§IV-A), registry completeness,
// error propagation in the trace codecs, and the bit-width invariants of the
// SBBT/BT9 formats (§IV-C). See the "Static analysis" section of README.md
// for the rule catalogue.
package vet

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the analyzed module.
type Package struct {
	// Path is the import path, e.g. "mbplib/internal/sbbt".
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checking results for Files.
	Info *types.Info
}

// Program is a loaded module: every package reachable from the requested
// directories plus the shared FileSet needed to render positions.
type Program struct {
	Fset   *token.FileSet
	Module string
	// Packages is keyed by import path and includes only module-local
	// packages (stdlib dependencies are type-checked but not analyzed).
	Packages map[string]*Package
}

// Sorted returns the module packages in deterministic import-path order.
func (p *Program) Sorted() []*Package {
	paths := make([]string, 0, len(p.Packages))
	for path := range p.Packages {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, path := range paths {
		out[i] = p.Packages[path]
	}
	return out
}

// loader resolves module-local import paths by parsing and type-checking
// the corresponding directory on demand; everything else is delegated to
// the standard library's source importer.
type loader struct {
	fset     *token.FileSet
	root     string // directory containing the module, e.g. the repo root
	module   string // module path from go.mod, e.g. "mbplib"
	std      types.Importer
	pkgs     map[string]*Package
	loading  map[string]bool // import cycle detection
	errs     []error
	typeErrs []error
}

// Load parses and type-checks the module rooted at root (the directory
// holding go.mod, with module path module). Every directory under root that
// contains non-test .go files becomes a package; testdata and hidden
// directories are skipped. Type errors are fatal: the analyzer only runs on
// code that compiles.
func Load(root, module string) (*Program, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		root:    abs,
		module:  module,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		if _, err := l.load(l.importPath(dir)); err != nil {
			return nil, err
		}
	}
	if len(l.typeErrs) > 0 {
		return nil, fmt.Errorf("vet: %d type errors, first: %v", len(l.typeErrs), l.typeErrs[0])
	}
	return &Program{Fset: l.fset, Module: module, Packages: l.pkgs}, nil
}

// ModulePath reads the module path from the go.mod at root.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("vet: no module line in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest directory with a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("vet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// buildConstraintsMatch evaluates a parsed file's //go:build lines against
// the host configuration, so a pair of tag-gated files (the repo's
// `race`/`!race` constant pairs) type-checks as one coherent package
// instead of a redeclaration. The tag universe mirrors a default `go
// build`: GOOS, GOARCH, the gc toolchain, `unix` for unix-like GOOS, and
// every `go1.N` release tag; custom tags like `race` read as unset, which
// matches mbpvet's own uninstrumented build.
func buildConstraintsMatch(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: let the build complain, not vet
			}
			if !expr.Eval(hostBuildTag) {
				return false
			}
		}
	}
	return true
}

// hostBuildTag reports whether one build tag is satisfied on the host.
func hostBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly", "solaris", "illumos", "aix":
			return true
		}
	}
	return strings.HasPrefix(tag, "go1.")
}

// packageDirs walks the module tree collecting directories that hold
// non-test Go files.
func (l *loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// importPath maps a directory under the module root to its import path.
func (l *loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.module
	}
	return l.module + "/" + filepath.ToSlash(rel)
}

// dirFor maps a module-local import path back to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	rel := strings.TrimPrefix(path, l.module+"/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// Import implements types.Importer, routing module-local paths to the
// on-demand loader and everything else to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module-local package, memoized.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("vet: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("vet: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("vet: parsing %s: %w", name, err)
		}
		if !buildConstraintsMatch(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("vet: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := types.Config{
		Importer: l,
		Error:    func(err error) { l.typeErrs = append(l.typeErrs, err) },
	}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("vet: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
