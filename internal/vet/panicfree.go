package vet

import (
	"go/ast"
	"go/types"
)

// Rule V5 — panicfree: the trace codec packages decode untrusted bytes, so
// a reachable panic is a denial-of-service primitive — one malformed trace
// in a 200-trace sweep kills the whole process. Inside the configured
// packages every call to the panic builtin is reported; hostile input must
// surface as an error classified by the faults taxonomy instead. A panic a
// codec keeps on purpose (an internal invariant no input can reach, e.g. a
// constant-width mask helper) is declared with
//
//	//mbpvet:panicfree-exempt <justification>
//
// on the call's line or the line above. The check resolves the identifier
// through go/types, so a shadowing local function or variable named "panic"
// is not reported.
func checkPanicFree(prog *Program, cfg Config) []Finding {
	var findings []Finding
	for _, pkg := range prog.Sorted() {
		if !hasPathPrefix(pkg.Path, cfg.PanicFreePackages) {
			continue
		}
		findings = append(findings, renderFindings(prog.Fset, panicFreeFindings(pkg.Files, pkg.Info))...)
	}
	return findings
}

// panicFreeFindings is the per-package body shared by the legacy driver and
// the panicfree analyzer.
func panicFreeFindings(files []*ast.File, info *types.Info) []rawFinding {
	var findings []rawFinding
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
				return true
			}
			findings = append(findings, rawFinding{
				pos:  call.Pos(),
				rule: RulePanicFree,
				msg: "panic in a decode package — untrusted input must fail with a typed error; " +
					"annotate with mbpvet:panicfree-exempt <why> if no input can reach it",
			})
			return true
		})
	}
	return findings
}
