package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mbplib/internal/vet/driver"
)

// This file re-expresses the mbpvet rules as driver.Analyzer values and
// provides RunAnalyzers, the analyzer-based replacement of the legacy Run.
// The per-package rule bodies live next to each legacy checker and are
// shared verbatim, so both drivers produce byte-identical findings over the
// V1-V5 corpus (an equivalence test enforces this). The whole-program rules
// flow their cross-package state through driver facts instead of module
// maps: purity exports a methodFact per method, registry consumes the
// predictorExportFact package facts of the predexport helper analyzer.

// methodFact is the purity summary exported for every function declaration
// of an analyzed package. Dependent packages resolve callees through it, and
// the purity analyzer of an embedding package reads the Predict summary of
// the defining package from it.
type methodFact struct {
	Writes         bool
	ReturnsRecvRef bool
	WriteNote      string
	DeclPos        token.Pos
	// ImpureOK records a justified //mbpvet:impure annotation on the decl,
	// so a cross-package reader does not need the defining file's comments.
	ImpureOK bool
}

func (*methodFact) AFact() {}

// predictorExportFact marks a package that exports a Predictor
// implementation; Name is the exported type's name.
type predictorExportFact struct{ Name string }

func (*predictorExportFact) AFact() {}

// analyzerSet is the full rule catalogue keyed by rule name, plus the
// helper analyzers that only exist to feed facts to the rules.
type analyzerSet struct {
	rules map[string]*driver.Analyzer
}

// buildAnalyzers constructs the nine rule analyzers for one run. The set is
// rebuilt per run because the analyzers close over the configuration, the
// collected directives and small amounts of cross-pass state (the purity
// rule's reported set); the driver is single-threaded, so closures are safe.
func buildAnalyzers(cfg Config, dirs *directives) *analyzerSet {
	s := &analyzerSet{rules: make(map[string]*driver.Analyzer)}

	// V1 purity: per-package fixpoint over the local methods; callees in
	// other packages resolve through methodFacts, which the driver's
	// import-topological package order guarantees are already exported.
	// reported mirrors the legacy driver's global seen set: a Predict shared
	// through cross-package embedding is judged once, by the defining pass.
	reported := make(map[token.Pos]bool)
	purity := &driver.Analyzer{
		Name:      RulePurity,
		Doc:       "Predict must not mutate predictor state (§IV-A)",
		FactTypes: []driver.Fact{new(methodFact)},
		Run: func(pass *driver.Pass) (any, error) {
			runPurityPass(pass, dirs, reported)
			return nil, nil
		},
	}
	s.rules[RulePurity] = purity

	// predexport is a helper, not a rule: it tags every predictor package
	// with a predictorExportFact so the registry rule can enumerate them
	// without importing them.
	predexport := &driver.Analyzer{
		Name:      "predexport",
		Doc:       "export a fact for every package exporting a Predictor implementation",
		FactTypes: []driver.Fact{new(predictorExportFact)},
		Run: func(pass *driver.Pass) (any, error) {
			path := pass.Pkg.Path()
			if cfg.RegistryPath == "" || path == cfg.RegistryPath ||
				!strings.HasPrefix(path, cfg.PredictorRoot+"/") {
				return nil, nil
			}
			if name := exportedPredictorName(pass.Pkg); name != "" {
				pass.ExportPackageFact(&predictorExportFact{Name: name})
			}
			return nil, nil
		},
	}

	// V2 registry: runs only on the registry package, diffing the predictor
	// facts of the whole module against the registry's imports. This is the
	// rule the driver's module-wide fact completeness exists for.
	s.rules[RuleRegistry] = &driver.Analyzer{
		Name:     RuleRegistry,
		Doc:      "every predictor package is constructible through the registry",
		Requires: []*driver.Analyzer{predexport},
		Run: func(pass *driver.Pass) (any, error) {
			if cfg.RegistryPath == "" || pass.Pkg.Path() != cfg.RegistryPath {
				return nil, nil
			}
			imported := make(map[string]bool)
			for _, imp := range pass.Pkg.Imports() {
				imported[imp.Path()] = true
			}
			for _, pf := range pass.AllPackageFacts() {
				ef, ok := pf.Fact.(*predictorExportFact)
				if !ok || imported[pf.Package.Path()] {
					continue
				}
				pass.Reportf(pass.Files[0].Name.Pos(),
					"predictor package %s exports %s but is not constructible through the registry (add a builder and import)",
					pf.Package.Path(), ef.Name)
			}
			return nil, nil
		},
	}

	// V3-V5 are per-package scans sharing their bodies with the legacy
	// checkers; only the package selection lives here.
	s.rules[RuleDroppedErr] = &driver.Analyzer{
		Name: RuleDroppedErr,
		Doc:  "no discarded error results in the codec and simulator packages",
		Run: func(pass *driver.Pass) (any, error) {
			if hasPathPrefix(pass.Pkg.Path(), cfg.ErrorPackages) {
				reportRaw(pass, droppedErrorFindings(pass.Files, pass.TypesInfo))
			}
			return nil, nil
		},
	}
	s.rules[RuleBitWidth] = &driver.Analyzer{
		Name: RuleBitWidth,
		Doc:  "no silent truncation in codec paths; mask-indexed tables are power-of-two sized",
		Run: func(pass *driver.Pass) (any, error) {
			codec := hasPathPrefix(pass.Pkg.Path(), cfg.WidthPackages)
			reportRaw(pass, bitWidthFindings(pass.Files, pass.TypesInfo, codec, cfg.GuardFuncs))
			return nil, nil
		},
	}
	s.rules[RulePanicFree] = &driver.Analyzer{
		Name: RulePanicFree,
		Doc:  "no panic on untrusted input in the decode packages",
		Run: func(pass *driver.Pass) (any, error) {
			if hasPathPrefix(pass.Pkg.Path(), cfg.PanicFreePackages) {
				reportRaw(pass, panicFreeFindings(pass.Files, pass.TypesInfo))
			}
			return nil, nil
		},
	}

	// V6-V9, the concurrency family.
	s.rules[RuleGoroutine] = &driver.Analyzer{
		Name: RuleGoroutine,
		Doc:  "every go statement has a provable join or cancel path",
		Run: func(pass *driver.Pass) (any, error) {
			if hasPathPrefix(pass.Pkg.Path(), cfg.ConcurrencyPackages) {
				reportRaw(pass, goroutineFindings(pass.Files, pass.TypesInfo))
			}
			return nil, nil
		},
	}
	s.rules[RuleGuardedBy] = &driver.Analyzer{
		Name: RuleGuardedBy,
		Doc:  "mutex-guarded fields are never accessed without the lock",
		Run: func(pass *driver.Pass) (any, error) {
			if hasPathPrefix(pass.Pkg.Path(), cfg.ConcurrencyPackages) {
				reportRaw(pass, guardedByFindings(pass.Files, pass.TypesInfo))
			}
			return nil, nil
		},
	}
	s.rules[RuleAtomic] = &driver.Analyzer{
		Name: RuleAtomic,
		Doc:  "atomically-accessed fields are never accessed plainly and 64-bit atomics are aligned",
		Run: func(pass *driver.Pass) (any, error) {
			if hasPathPrefix(pass.Pkg.Path(), cfg.ConcurrencyPackages) {
				for _, d := range atomicFindings(pass.Files, pass.TypesInfo) {
					pass.Report(d)
				}
			}
			return nil, nil
		},
	}
	s.rules[RuleCtxProp] = &driver.Analyzer{
		Name: RuleCtxProp,
		Doc:  "a received context.Context is propagated, not dropped",
		Run: func(pass *driver.Pass) (any, error) {
			if hasPathPrefix(pass.Pkg.Path(), cfg.ContextPackages) {
				for _, d := range ctxPropFindings(pass.Files, pass.TypesInfo) {
					pass.Report(d)
				}
			}
			return nil, nil
		},
	}
	return s
}

// reportRaw reports shared-rule raw findings as driver diagnostics.
func reportRaw(pass *driver.Pass, raws []rawFinding) {
	for _, r := range raws {
		pass.Report(driver.Diagnostic{Pos: r.pos, Category: r.rule, Message: r.msg})
	}
}

// localMethod is the purity analyzer's per-package view of one function
// declaration, mirroring the legacy methodInfo without the package pointer.
type localMethod struct {
	decl           *ast.FuncDecl
	recv           *types.Var
	writes         bool
	writeNote      string
	returnsRecvRef bool
}

// runPurityPass runs the purity fixpoint over one package, exports a
// methodFact per declaration, and reports impure Predict methods of the
// package's predictor types.
func runPurityPass(pass *driver.Pass, dirs *directives, reported map[token.Pos]bool) {
	local := make(map[*types.Func]*localMethod)
	forEachFuncDecl(pass.Files, pass.TypesInfo, func(obj *types.Func, decl *ast.FuncDecl, recv *types.Var) {
		local[obj] = &localMethod{decl: decl, recv: recv}
	})
	resolve := func(callee *types.Func) (methodSummary, bool) {
		if m := local[callee]; m != nil {
			return methodSummary{writes: m.writes, returnsRecvRef: m.returnsRecvRef}, true
		}
		var f methodFact
		if pass.ImportObjectFact(callee, &f) {
			return methodSummary{writes: f.Writes, returnsRecvRef: f.ReturnsRecvRef}, true
		}
		return methodSummary{}, false
	}
	// Per-package fixpoint: identical dynamics to the legacy module-wide
	// solve, except imported callees are already final (packages run
	// dependencies-first), which can only converge faster.
	for changed := true; changed; {
		changed = false
		for _, m := range local {
			if m.recv == nil || m.writes && m.returnsRecvRef {
				continue
			}
			s := newMethodScan(pass.Fset, pass.TypesInfo, pass.Pkg.Scope(), m.decl, m.recv, resolve)
			s.run()
			if (s.writes && !m.writes) || (s.returnsRef && !m.returnsRecvRef) {
				m.writes = m.writes || s.writes
				if m.writeNote == "" {
					m.writeNote = s.writeNote
				}
				m.returnsRecvRef = m.returnsRecvRef || s.returnsRef
				changed = true
			}
		}
	}
	for obj, m := range local {
		pass.ExportObjectFact(obj, &methodFact{
			Writes:         m.writes,
			ReturnsRecvRef: m.returnsRecvRef,
			WriteNote:      m.writeNote,
			DeclPos:        m.decl.Pos(),
			ImpureOK:       m.recv != nil && dirs.isImpureAnnotated(pass.Fset, m.decl),
		})
	}

	for _, named := range predictorTypes(pass.Pkg) {
		judge := func(fn *types.Func, format string) {
			if fn == nil {
				return
			}
			var sum methodFact
			if m := local[fn]; m != nil {
				sum = methodFact{
					Writes:    m.writes,
					WriteNote: m.writeNote,
					DeclPos:   m.decl.Pos(),
					ImpureOK:  dirs.isImpureAnnotated(pass.Fset, m.decl),
				}
			} else if !pass.ImportObjectFact(fn, &sum) {
				return // body-less or generated method: nothing to judge
			}
			if reported[sum.DeclPos] {
				return // embedded method already judged by another pass
			}
			reported[sum.DeclPos] = true
			if !sum.Writes || sum.ImpureOK {
				return
			}
			pass.Reportf(sum.DeclPos, format, named.Obj().Name(), sum.WriteNote)
		}
		judge(lookupMethod(named, "Predict"), msgPredictImpure)
		judge(lookupBatchPredict(named), msgPredictBatchImpure)
	}
}

// driverPackages adapts the loader's packages to the driver's view.
func driverPackages(prog *Program) []*driver.Package {
	pkgs := make([]*driver.Package, 0, len(prog.Packages))
	for _, p := range prog.Sorted() {
		pkgs = append(pkgs, &driver.Package{Path: p.Path, Files: p.Files, Types: p.Types, Info: p.Info})
	}
	return pkgs
}

// selectRules resolves a -rules style selection (rule names or vN aliases)
// to canonical rule names in V-number order; nil selects everything. An
// unknown name is an error, surfaced to the CLI as exit code 2.
func selectRules(rules []string) ([]string, error) {
	if len(rules) == 0 {
		return AllRules(), nil
	}
	aliases := RuleAliases()
	want := make(map[string]bool)
	for _, r := range rules {
		name := strings.TrimSpace(r)
		if canon, ok := aliases[strings.ToLower(name)]; ok {
			name = canon
		}
		found := false
		for _, known := range AllRules() {
			if name == known {
				found = true
				break
			}
		}
		if !found {
			return nil, &UnknownRuleError{Name: r}
		}
		want[name] = true
	}
	var out []string
	for _, r := range AllRules() {
		if want[r] {
			out = append(out, r)
		}
	}
	return out, nil
}

// UnknownRuleError reports a -rules name that matches no rule or alias.
type UnknownRuleError struct{ Name string }

func (e *UnknownRuleError) Error() string {
	return "unknown rule " + e.Name + " (known: " + strings.Join(AllRules(), ", ") + " or v1..v9)"
}

// RunAnalyzers executes the selected rules (nil = all nine) over prog
// through the analyzer driver and returns the surviving findings, sorted
// and suppressed exactly like the legacy Run. Malformed //mbpvet:
// directives are always reported, regardless of the rule selection: a
// suppression that does not parse must never silently vanish.
func RunAnalyzers(prog *Program, cfg Config, rules []string) ([]Finding, error) {
	selected, err := selectRules(rules)
	if err != nil {
		return nil, err
	}
	dirs := collectDirectives(prog)
	set := buildAnalyzers(cfg, dirs)
	analyzers := make([]*driver.Analyzer, 0, len(selected))
	for _, r := range selected {
		analyzers = append(analyzers, set.rules[r])
	}
	results, err := driver.Run(prog.Fset, driverPackages(prog), analyzers)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, res := range results {
		for _, d := range res.Diagnostics {
			f := Finding{Pos: prog.Fset.Position(d.Pos), Rule: d.Category, Msg: d.Message}
			if len(d.SuggestedFixes) > 0 {
				fix := d.SuggestedFixes[0]
				f.Fix = &fix
			}
			findings = append(findings, f)
		}
	}
	findings = append(findings, dirs.malformed...)

	kept := findings[:0]
	seen := make(map[string]bool, len(findings))
	for _, f := range findings {
		if dirs.suppressed(f) {
			continue
		}
		// Column-inclusive dedupe: distinct nodes always differ in column,
		// so this only drops true duplicates (e.g. a Predict reached through
		// two embedding paths reported by defensive double-walks).
		key := f.String() + "\x00" + f.Pos.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		kept = append(kept, f)
	}
	sortFindings(kept)
	return kept, nil
}
