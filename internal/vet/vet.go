package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"mbplib/internal/vet/driver"
)

// Rule names. The README documents each one; the V1-V9 numbering follows
// the order they were specified in.
const (
	RulePurity     = "purity"     // V1: Predict must not mutate predictor state
	RuleRegistry   = "registry"   // V2: every predictor package is registered
	RuleDroppedErr = "droppederr" // V3: no discarded error results in codecs
	RuleBitWidth   = "bitwidth"   // V4: no silent truncation in codec paths
	RulePanicFree  = "panicfree"  // V5: no panic on untrusted input in codecs
	RuleGoroutine  = "goroutine"  // V6: every go statement has a join/cancel path
	RuleGuardedBy  = "guardedby"  // V7: mutex-guarded fields never accessed bare
	RuleAtomic     = "atomic"     // V8: atomic fields never accessed plainly, 64-bit aligned
	RuleCtxProp    = "ctxprop"    // V9: a received context is propagated, not dropped
)

// AllRules lists every rule in V-number order; -rules validation, the
// README table and the fixture meta-test iterate it.
func AllRules() []string {
	return []string{
		RulePurity, RuleRegistry, RuleDroppedErr, RuleBitWidth, RulePanicFree,
		RuleGoroutine, RuleGuardedBy, RuleAtomic, RuleCtxProp,
	}
}

// RuleAliases maps the short vN spellings accepted by -rules to rule names.
func RuleAliases() map[string]string {
	m := make(map[string]string)
	for i, r := range AllRules() {
		m[fmt.Sprintf("v%d", i+1)] = r
	}
	return m
}

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
	// Fix is an optional machine-applicable resolution carried over from the
	// analyzer driver (the legacy driver never sets it). mbpvet -fix applies
	// it; the JSON and SARIF renderers describe it.
	Fix *driver.SuggestedFix
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// rawFinding is a finding whose position is still a token.Pos. The shared
// per-package rule bodies return these; the legacy driver renders them to
// Findings eagerly, while the analyzers report them as driver diagnostics.
type rawFinding struct {
	pos  token.Pos
	rule string
	msg  string
}

// renderFindings resolves raw findings against fset.
func renderFindings(fset *token.FileSet, raws []rawFinding) []Finding {
	out := make([]Finding, 0, len(raws))
	for _, r := range raws {
		out = append(out, Finding{Pos: fset.Position(r.pos), Rule: r.rule, Msg: r.msg})
	}
	return out
}

// Config selects which packages each rule applies to. Paths are import
// paths; prefix lists match the package itself or any package below it.
type Config struct {
	// RegistryPath is the import path of the predictor registry package.
	// Empty disables the registry rule.
	RegistryPath string
	// PredictorRoot is the import-path prefix under which every package
	// exporting a Predictor implementation must be registered.
	PredictorRoot string
	// ErrorPackages are the import-path prefixes checked for dropped errors.
	ErrorPackages []string
	// WidthPackages are the import-path prefixes checked for truncating
	// conversions and shifts (the trace codec packages).
	WidthPackages []string
	// GuardFuncs are names of predicate functions that establish that a
	// value fits the format's bit width (e.g. sbbt.CanonicalAddress). A
	// shift whose operand was passed to a guard in the same function is
	// not reported.
	GuardFuncs []string
	// PanicFreePackages are the import-path prefixes that decode untrusted
	// bytes and therefore must never call panic: hostile input has to
	// surface as a typed error, not a crash.
	PanicFreePackages []string
	// ConcurrencyPackages are the import-path prefixes audited by the
	// concurrency rules (V6 goroutine lifecycle, V7 guarded fields, V8
	// atomic discipline): the scheduler, cache, observability and command
	// packages that spawn goroutines and share state.
	ConcurrencyPackages []string
	// ContextPackages are the import-path prefixes where a received
	// context.Context must be propagated (V9), not dropped or shadowed by
	// context.Background/TODO.
	ContextPackages []string
}

// DefaultConfig returns the rule configuration for this repository, with
// module as the module path ("mbplib").
func DefaultConfig(module string) Config {
	return Config{
		RegistryPath:  module + "/internal/predictors/registry",
		PredictorRoot: module + "/internal/predictors",
		ErrorPackages: []string{
			module + "/internal/sbbt",
			module + "/internal/bt9",
			module + "/internal/compress",
			module + "/internal/sim",
		},
		WidthPackages: []string{
			module + "/internal/sbbt",
			module + "/internal/bt9",
		},
		GuardFuncs: []string{"CanonicalAddress"},
		PanicFreePackages: []string{
			module + "/internal/sbbt",
			module + "/internal/bt9",
			module + "/internal/compress",
		},
		ConcurrencyPackages: []string{
			module + "/internal/sim",
			module + "/internal/obs",
			module + "/internal/daemon",
			module + "/cmd",
		},
		ContextPackages: []string{
			module + "/internal/sim",
		},
	}
}

func hasPathPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Run is the legacy whole-program driver for the original V1-V5 rules: it
// executes each check over the loaded program and returns the surviving
// findings sorted by position. Findings suppressed by a justified
// //mbpvet: directive are dropped; a directive without a justification is
// itself reported, so suppressions stay documented.
//
// Run is kept as the reference implementation the analyzer-based driver
// (RunAnalyzers) is verified against: both must produce byte-identical
// findings over the V1-V5 fixture corpus. New callers — including
// cmd/mbpvet — use RunAnalyzers, which also runs the V6-V9 concurrency
// rules and carries suggested fixes.
func Run(prog *Program, cfg Config) []Finding {
	dirs := collectDirectives(prog)
	var findings []Finding
	findings = append(findings, checkPurity(prog, dirs)...)
	findings = append(findings, checkRegistry(prog, cfg)...)
	findings = append(findings, checkDroppedErrors(prog, cfg)...)
	findings = append(findings, checkBitWidths(prog, cfg)...)
	findings = append(findings, checkPanicFree(prog, cfg)...)
	findings = append(findings, dirs.malformed...)

	kept := findings[:0]
	for _, f := range findings {
		if !dirs.suppressed(f) {
			kept = append(kept, f)
		}
	}
	sortFindings(kept)
	return kept
}

// sortFindings orders findings by file, line, rule and finally message, so
// every driver renders the same corpus in the same byte order.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// directives indexes //mbpvet: comments. Four forms are recognized:
//
//	//mbpvet:impure <justification>
//	//mbpvet:ignore <rule> -- <justification>
//	//mbpvet:panicfree-exempt <justification>
//	//mbpvet:goroutine-exempt <justification>
//
// "impure" is the §IV-A escape hatch: placed in the doc comment of a
// Predict method (or a helper it calls) it suppresses the purity rule for
// that method. "ignore" suppresses the named rule for findings on the same
// line or the line directly below the comment. The "-exempt" directives are
// the dedicated escape hatches of the panicfree and goroutine rules — for
// panics a codec keeps on purpose, and for goroutines whose lifetime is
// deliberately process-long; each covers the same line and the line below.
// All forms demand a non-empty justification; a bare directive is reported
// instead of honored. (The //mbpvet:guardedby annotation is not a
// suppression — it declares a lock-protection contract and is parsed by the
// guardedby rule itself.)
type directives struct {
	// ignore maps file -> line -> set of rule names suppressed there.
	ignore map[string]map[int]map[string]bool
	// impure maps file -> line of the func keyword of an annotated decl.
	impure map[string]map[int]bool
	// exempt maps rule -> file -> lines covered by that rule's dedicated
	// -exempt directive.
	exempt    map[string]map[string]map[int]bool
	malformed []Finding
}

const (
	directiveImpure = "//mbpvet:impure"
	directiveIgnore = "//mbpvet:ignore"
)

// exemptDirectives maps each dedicated escape-hatch directive to the rule
// it suppresses.
var exemptDirectives = map[string]string{
	"//mbpvet:panicfree-exempt": RulePanicFree,
	"//mbpvet:goroutine-exempt": RuleGoroutine,
}

func collectDirectives(prog *Program) *directives {
	d := &directives{
		ignore: make(map[string]map[int]map[string]bool),
		impure: make(map[string]map[int]bool),
		exempt: make(map[string]map[string]map[int]bool),
	}
	for _, pkg := range prog.Sorted() {
		for _, file := range pkg.Files {
			// Impure annotations live in doc comments of function decls.
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if ok && fn.Doc != nil && d.scanImpure(prog, fn) {
					pos := prog.Fset.Position(fn.Pos())
					addLine(d.impure, pos.Filename, pos.Line)
				}
			}
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					d.scanExempt(prog, c)
					d.scanIgnore(prog, c)
				}
			}
		}
	}
	return d
}

func addLine(m map[string]map[int]bool, file string, line int) {
	if m[file] == nil {
		m[file] = make(map[int]bool)
	}
	m[file][line] = true
}

// scanImpure reports whether fn's doc comment carries a justified impure
// directive, recording a finding for an unjustified one.
func (d *directives) scanImpure(prog *Program, fn *ast.FuncDecl) bool {
	for _, c := range fn.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, directiveImpure)
		if !ok {
			continue
		}
		if strings.TrimSpace(rest) == "" {
			d.malformed = append(d.malformed, Finding{
				Pos:  prog.Fset.Position(c.Pos()),
				Rule: RulePurity,
				Msg:  "mbpvet:impure directive needs a justification (\"//mbpvet:impure <why>\")",
			})
			continue
		}
		return true
	}
	return false
}

// scanExempt records the dedicated -exempt directives (panicfree-exempt,
// goroutine-exempt) for their own line and the line below, reporting an
// unjustified one instead of honoring it.
func (d *directives) scanExempt(prog *Program, c *ast.Comment) {
	for directive, rule := range exemptDirectives {
		rest, ok := strings.CutPrefix(c.Text, directive)
		if !ok {
			continue
		}
		pos := prog.Fset.Position(c.Pos())
		if strings.TrimSpace(rest) == "" {
			name := strings.TrimPrefix(directive, "//")
			d.malformed = append(d.malformed, Finding{
				Pos:  pos,
				Rule: rule,
				Msg:  fmt.Sprintf("%s directive needs a justification (\"%s <why>\")", name, directive),
			})
			return
		}
		if d.exempt[rule] == nil {
			d.exempt[rule] = make(map[string]map[int]bool)
		}
		addLine(d.exempt[rule], pos.Filename, pos.Line)
		addLine(d.exempt[rule], pos.Filename, pos.Line+1)
		return
	}
}

func (d *directives) scanIgnore(prog *Program, c *ast.Comment) {
	rest, ok := strings.CutPrefix(c.Text, directiveIgnore)
	if !ok {
		return
	}
	rule, why, _ := strings.Cut(strings.TrimSpace(rest), "--")
	rule = strings.TrimSpace(rule)
	pos := prog.Fset.Position(c.Pos())
	if rule == "" || strings.TrimSpace(why) == "" {
		d.malformed = append(d.malformed, Finding{
			Pos:  pos,
			Rule: rule,
			Msg:  "mbpvet:ignore directive needs a rule and justification (\"//mbpvet:ignore <rule> -- <why>\")",
		})
		return
	}
	if d.ignore[pos.Filename] == nil {
		d.ignore[pos.Filename] = make(map[int]map[string]bool)
	}
	for _, line := range []int{pos.Line, pos.Line + 1} {
		if d.ignore[pos.Filename][line] == nil {
			d.ignore[pos.Filename][line] = make(map[string]bool)
		}
		d.ignore[pos.Filename][line][rule] = true
	}
}

// suppressed reports whether an ignore or rule-dedicated -exempt directive
// covers the finding. (Impure annotations are consulted by the purity rule
// itself, since they attach to methods rather than lines.)
func (d *directives) suppressed(f Finding) bool {
	if d.ignore[f.Pos.Filename][f.Pos.Line][f.Rule] {
		return true
	}
	return d.exempt[f.Rule][f.Pos.Filename][f.Pos.Line]
}

// isImpureAnnotated reports whether the function starting at pos carries a
// justified //mbpvet:impure doc directive.
func (d *directives) isImpureAnnotated(fset *token.FileSet, fn *ast.FuncDecl) bool {
	pos := fset.Position(fn.Pos())
	return d.impure[pos.Filename][pos.Line]
}
