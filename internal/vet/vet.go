package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Rule names. The README documents each one; the V1-V5 numbering follows
// the order they were specified in.
const (
	RulePurity     = "purity"     // V1: Predict must not mutate predictor state
	RuleRegistry   = "registry"   // V2: every predictor package is registered
	RuleDroppedErr = "droppederr" // V3: no discarded error results in codecs
	RuleBitWidth   = "bitwidth"   // V4: no silent truncation in codec paths
	RulePanicFree  = "panicfree"  // V5: no panic on untrusted input in codecs
)

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Config selects which packages each rule applies to. Paths are import
// paths; prefix lists match the package itself or any package below it.
type Config struct {
	// RegistryPath is the import path of the predictor registry package.
	// Empty disables the registry rule.
	RegistryPath string
	// PredictorRoot is the import-path prefix under which every package
	// exporting a Predictor implementation must be registered.
	PredictorRoot string
	// ErrorPackages are the import-path prefixes checked for dropped errors.
	ErrorPackages []string
	// WidthPackages are the import-path prefixes checked for truncating
	// conversions and shifts (the trace codec packages).
	WidthPackages []string
	// GuardFuncs are names of predicate functions that establish that a
	// value fits the format's bit width (e.g. sbbt.CanonicalAddress). A
	// shift whose operand was passed to a guard in the same function is
	// not reported.
	GuardFuncs []string
	// PanicFreePackages are the import-path prefixes that decode untrusted
	// bytes and therefore must never call panic: hostile input has to
	// surface as a typed error, not a crash.
	PanicFreePackages []string
}

// DefaultConfig returns the rule configuration for this repository, with
// module as the module path ("mbplib").
func DefaultConfig(module string) Config {
	return Config{
		RegistryPath:  module + "/internal/predictors/registry",
		PredictorRoot: module + "/internal/predictors",
		ErrorPackages: []string{
			module + "/internal/sbbt",
			module + "/internal/bt9",
			module + "/internal/compress",
			module + "/internal/sim",
		},
		WidthPackages: []string{
			module + "/internal/sbbt",
			module + "/internal/bt9",
		},
		GuardFuncs: []string{"CanonicalAddress"},
		PanicFreePackages: []string{
			module + "/internal/sbbt",
			module + "/internal/bt9",
			module + "/internal/compress",
		},
	}
}

func hasPathPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Run executes every rule over the program and returns the surviving
// findings sorted by position. Findings suppressed by a justified
// //mbpvet: directive are dropped; a directive without a justification is
// itself reported, so suppressions stay documented.
func Run(prog *Program, cfg Config) []Finding {
	dirs := collectDirectives(prog)
	var findings []Finding
	findings = append(findings, checkPurity(prog, dirs)...)
	findings = append(findings, checkRegistry(prog, cfg)...)
	findings = append(findings, checkDroppedErrors(prog, cfg)...)
	findings = append(findings, checkBitWidths(prog, cfg)...)
	findings = append(findings, checkPanicFree(prog, cfg)...)
	findings = append(findings, dirs.malformed...)

	kept := findings[:0]
	for _, f := range findings {
		if !dirs.suppressed(f) {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return kept
}

// directives indexes //mbpvet: comments. Three forms are recognized:
//
//	//mbpvet:impure <justification>
//	//mbpvet:ignore <rule> -- <justification>
//	//mbpvet:panicfree-exempt <justification>
//
// "impure" is the §IV-A escape hatch: placed in the doc comment of a
// Predict method (or a helper it calls) it suppresses the purity rule for
// that method. "ignore" suppresses the named rule for findings on the same
// line or the line directly below the comment. "panicfree-exempt" is the
// dedicated escape hatch of the panicfree rule, for panics a codec keeps on
// purpose (internal invariants no input can reach); it covers the same line
// and the line below. All three demand a non-empty justification; a bare
// directive is reported instead of honored.
type directives struct {
	// ignore maps file -> line -> set of rule names suppressed there.
	ignore map[string]map[int]map[string]bool
	// impure maps file -> line of the func keyword of an annotated decl.
	impure map[string]map[int]bool
	// exempt maps file -> line of a panicfree exemption.
	exempt    map[string]map[int]bool
	malformed []Finding
}

const (
	directiveImpure = "//mbpvet:impure"
	directiveIgnore = "//mbpvet:ignore"
	directiveExempt = "//mbpvet:panicfree-exempt"
)

func collectDirectives(prog *Program) *directives {
	d := &directives{
		ignore: make(map[string]map[int]map[string]bool),
		impure: make(map[string]map[int]bool),
		exempt: make(map[string]map[int]bool),
	}
	for _, pkg := range prog.Sorted() {
		for _, file := range pkg.Files {
			// Impure annotations live in doc comments of function decls.
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if ok && fn.Doc != nil && d.scanImpure(prog, fn) {
					pos := prog.Fset.Position(fn.Pos())
					addLine(d.impure, pos.Filename, pos.Line)
				}
			}
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					d.scanExempt(prog, c)
					d.scanIgnore(prog, c)
				}
			}
		}
	}
	return d
}

func addLine(m map[string]map[int]bool, file string, line int) {
	if m[file] == nil {
		m[file] = make(map[int]bool)
	}
	m[file][line] = true
}

// scanImpure reports whether fn's doc comment carries a justified impure
// directive, recording a finding for an unjustified one.
func (d *directives) scanImpure(prog *Program, fn *ast.FuncDecl) bool {
	for _, c := range fn.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, directiveImpure)
		if !ok {
			continue
		}
		if strings.TrimSpace(rest) == "" {
			d.malformed = append(d.malformed, Finding{
				Pos:  prog.Fset.Position(c.Pos()),
				Rule: RulePurity,
				Msg:  "mbpvet:impure directive needs a justification (\"//mbpvet:impure <why>\")",
			})
			continue
		}
		return true
	}
	return false
}

// scanExempt records a //mbpvet:panicfree-exempt directive for its own line
// and the line below, reporting an unjustified one instead of honoring it.
func (d *directives) scanExempt(prog *Program, c *ast.Comment) {
	rest, ok := strings.CutPrefix(c.Text, directiveExempt)
	if !ok {
		return
	}
	pos := prog.Fset.Position(c.Pos())
	if strings.TrimSpace(rest) == "" {
		d.malformed = append(d.malformed, Finding{
			Pos:  pos,
			Rule: RulePanicFree,
			Msg:  "mbpvet:panicfree-exempt directive needs a justification (\"//mbpvet:panicfree-exempt <why>\")",
		})
		return
	}
	addLine(d.exempt, pos.Filename, pos.Line)
	addLine(d.exempt, pos.Filename, pos.Line+1)
}

func (d *directives) scanIgnore(prog *Program, c *ast.Comment) {
	rest, ok := strings.CutPrefix(c.Text, directiveIgnore)
	if !ok {
		return
	}
	rule, why, _ := strings.Cut(strings.TrimSpace(rest), "--")
	rule = strings.TrimSpace(rule)
	pos := prog.Fset.Position(c.Pos())
	if rule == "" || strings.TrimSpace(why) == "" {
		d.malformed = append(d.malformed, Finding{
			Pos:  pos,
			Rule: rule,
			Msg:  "mbpvet:ignore directive needs a rule and justification (\"//mbpvet:ignore <rule> -- <why>\")",
		})
		return
	}
	if d.ignore[pos.Filename] == nil {
		d.ignore[pos.Filename] = make(map[int]map[string]bool)
	}
	for _, line := range []int{pos.Line, pos.Line + 1} {
		if d.ignore[pos.Filename][line] == nil {
			d.ignore[pos.Filename][line] = make(map[string]bool)
		}
		d.ignore[pos.Filename][line][rule] = true
	}
}

// suppressed reports whether an ignore or panicfree-exempt directive covers
// the finding. (Impure annotations are consulted by the purity rule itself,
// since they attach to methods rather than lines.)
func (d *directives) suppressed(f Finding) bool {
	if d.ignore[f.Pos.Filename][f.Pos.Line][f.Rule] {
		return true
	}
	return f.Rule == RulePanicFree && d.exempt[f.Pos.Filename][f.Pos.Line]
}

// isImpureAnnotated reports whether the function starting at pos carries a
// justified //mbpvet:impure doc directive.
func (d *directives) isImpureAnnotated(prog *Program, fn *ast.FuncDecl) bool {
	pos := prog.Fset.Position(fn.Pos())
	return d.impure[pos.Filename][pos.Line]
}
