package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Rule V6 — goroutine lifecycle: every `go` statement in the concurrency
// packages must have a provable join or cancel path, so no PR can introduce
// a goroutine that outlives its owner unnoticed. The prefetcher's "Run
// blocks until producer exit" contract is the archetype: the producer
// signals completion by closing a channel, and Run waits for it.
//
// Evidence accepted inside the launched function (or a same-package function
// it calls, transitively):
//
//   - sync.WaitGroup.Done — the owner joins with Wait
//   - close(ch) — the owner joins by receiving until close
//   - a channel send — the owner receives the completion value
//   - a channel receive or range-over-channel — the goroutine itself blocks
//     on a channel the owner controls (including <-ctx.Done())
//
// A goroutine running a function the analyzer cannot see into (another
// package, a stored function value) is reported conservatively. Goroutines
// that are deliberately process-long are declared with
//
//	//mbpvet:goroutine-exempt <justification>
//
// on the go statement's line or the line above.
func goroutineFindings(files []*ast.File, info *types.Info) []rawFinding {
	decls := make(map[*types.Func]*ast.FuncDecl)
	forEachFuncDecl(files, info, func(obj *types.Func, decl *ast.FuncDecl, recv *types.Var) {
		decls[obj] = decl
	})
	var out []rawFinding
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineHasLifecycle(info, decls, g.Call) {
				out = append(out, rawFinding{
					pos:  g.Pos(),
					rule: RuleGoroutine,
					msg: "go statement has no provable join or cancel path (no WaitGroup.Done, channel close/send/receive, " +
						"or context wait reachable in the goroutine); join it or annotate with //mbpvet:goroutine-exempt <why>",
				})
			}
			return true
		})
	}
	return out
}

// goroutineHasLifecycle resolves the launched function and looks for
// lifecycle evidence in its body.
func goroutineHasLifecycle(info *types.Info, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) bool {
	visited := make(map[*types.Func]bool)
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return lifecycleEvidence(info, decls, fun.Body, visited)
	default:
		if callee := calleeFunc(info, call); callee != nil {
			if decl, ok := decls[callee]; ok {
				visited[callee] = true
				return lifecycleEvidence(info, decls, decl.Body, visited)
			}
		}
	}
	return false
}

// calleeFunc resolves a call to its static *types.Func, or nil for function
// values and other dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// lifecycleEvidence walks one function body (and same-package callees,
// transitively) for any of the accepted join/cancel signals.
func lifecycleEvidence(info *types.Info, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, visited map[*types.Func]bool) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true // channel receive, including <-ctx.Done()
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
					return false
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if tv, ok := info.Types[sel.X]; ok && interfaceNamed(tv.Type, "sync", "WaitGroup") {
					found = true
					return false
				}
			}
			// Recurse into same-package callees: the evidence may live in a
			// helper the goroutine body delegates to (pf.produce's close).
			if callee := calleeFunc(info, n); callee != nil && !visited[callee] {
				if decl, ok := decls[callee]; ok {
					visited[callee] = true
					if lifecycleEvidence(info, decls, decl.Body, visited) {
						found = true
						return false
					}
				}
			}
		}
		return !found
	})
	return found
}
