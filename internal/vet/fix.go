package vet

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// ApplyFixes applies the suggested fix of every finding that carries one,
// rewriting the affected files in place. Within a file, edits apply
// back-to-front so earlier offsets stay valid; overlapping edits are an
// error (the caller should re-run the analysis after every apply cycle
// rather than force conflicting rewrites). Returns the paths of the files
// it modified, sorted.
func ApplyFixes(fset *token.FileSet, findings []Finding) ([]string, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := make(map[string][]edit)
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		for _, te := range f.Fix.TextEdits {
			start := fset.Position(te.Pos)
			end := fset.Position(te.End)
			if start.Filename == "" || start.Filename != end.Filename {
				return nil, fmt.Errorf("vet: fix for %s spans files", f.Rule)
			}
			perFile[start.Filename] = append(perFile[start.Filename], edit{
				start: start.Offset, end: end.Offset, text: te.NewText,
			})
		}
	}
	var changed []string
	for path, edits := range perFile {
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for i := 1; i < len(edits); i++ {
			// Descending by start: edits[i] precedes edits[i-1] in the file.
			if edits[i].end > edits[i-1].start {
				return nil, fmt.Errorf("vet: overlapping fixes in %s (offsets %d-%d and %d-%d); apply and re-run",
					path, edits[i].start, edits[i].end, edits[i-1].start, edits[i-1].end)
			}
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for _, e := range edits {
			if e.start < 0 || e.end > len(src) || e.start > e.end {
				return nil, fmt.Errorf("vet: fix offsets out of range in %s", path)
			}
			src = append(src[:e.start], append(append([]byte(nil), e.text...), src[e.end:]...)...)
		}
		if err := os.WriteFile(path, src, 0o644); err != nil {
			return nil, err
		}
		changed = append(changed, path)
	}
	sort.Strings(changed)
	return changed, nil
}
