package vet

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math/bits"
	"strings"
)

// Rule V4 — bit-width hygiene. The SBBT packet format packs 52-bit
// addresses, a 12-bit instruction gap and a 4-bit opcode into two 64-bit
// blocks (§IV-C); BT9 carries the same fields in text. A shift or integer
// conversion on those paths that silently drops high bits corrupts traces
// without any error, so in the codec packages the rule reports:
//
//   - integer conversions to a narrower type whose operand is not masked,
//     shifted, or bounds-checked down to the target width, and
//   - left shifts of non-constant operands that discard high bits, unless
//     the operand was masked or vetted by a configured width-guard
//     predicate (e.g. sbbt.CanonicalAddress) in the same function.
//
// Across the whole module it additionally reports table allocations whose
// size is not a power of two while the same function derives an index mask
// from that size: `make([]T, n)` together with `n-1` indexing is only
// correct when n is a power of two.
func checkBitWidths(prog *Program, cfg Config) []Finding {
	var findings []Finding
	for _, pkg := range prog.Sorted() {
		codec := hasPathPrefix(pkg.Path, cfg.WidthPackages)
		findings = append(findings, renderFindings(prog.Fset, bitWidthFindings(pkg.Files, pkg.Info, codec, cfg.GuardFuncs))...)
	}
	return findings
}

// bitWidthFindings is the per-package body shared by the legacy driver and
// the bitwidth analyzer. codec selects the conversion/shift checks, which
// apply only to the configured codec packages; the table-mask check runs
// everywhere.
func bitWidthFindings(files []*ast.File, info *types.Info, codec bool, guards []string) []rawFinding {
	var findings []rawFinding
	for _, file := range files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &widthScan{info: info, fn: fn, guards: guards}
			if codec {
				findings = append(findings, w.checkConversions()...)
				findings = append(findings, w.checkShifts()...)
			}
			findings = append(findings, w.checkTableMasks()...)
		}
	}
	return findings
}

type widthScan struct {
	info   *types.Info
	fn     *ast.FuncDecl
	guards []string
}

// intWidth returns the bit width of an integer type, or 0 when t is not an
// integer. int, uint and uintptr count as 64-bit: the analyzer targets the
// 64-bit platforms the simulator runs on, and assuming the wide side only
// produces extra reports, never missed ones.
func intWidth(t types.Type) int {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	case types.Int64, types.Uint64, types.Int, types.Uint, types.Uintptr:
		return 64
	}
	return 0
}

func (w *widthScan) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (w *widthScan) constVal(e ast.Expr) constant.Value {
	if tv, ok := w.info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

// checkConversions flags T(x) where T is narrower than x and nothing in
// the function establishes that x fits.
func (w *widthScan) checkConversions() []rawFinding {
	var findings []rawFinding
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := w.info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		dst := intWidth(tv.Type)
		operand := call.Args[0]
		src := intWidth(w.typeOf(operand))
		if dst == 0 || src == 0 || dst >= src {
			return true
		}
		if w.constVal(operand) != nil {
			return true // constant conversions are checked by the compiler
		}
		if w.boundedTo(operand, dst) || w.comparisonGuarded(operand) {
			return true
		}
		findings = append(findings, rawFinding{
			pos:  call.Pos(),
			rule: RuleBitWidth,
			msg: fmt.Sprintf("conversion of %d-bit value %s to %d bits may truncate; mask, bounds-check, or annotate with //mbpvet:ignore %s",
				src, types.ExprString(operand), dst, RuleBitWidth),
		})
		return true
	})
	return findings
}

// checkShifts flags x << k that can drop high bits of a non-constant x.
func (w *widthScan) checkShifts() []rawFinding {
	var findings []rawFinding
	consider := func(n ast.Node, x ast.Expr, k ast.Expr) {
		kv := w.constVal(k)
		if kv == nil {
			return // dynamic shift distances are the masking idiom itself
		}
		shift, ok := constant.Int64Val(constant.ToInt(kv))
		if !ok || shift <= 0 {
			return
		}
		if w.constVal(x) != nil {
			return
		}
		width := intWidth(w.typeOf(x))
		if width == 0 {
			return
		}
		if w.boundedTo(x, width-int(shift)) || w.guarded(x) || w.comparisonGuarded(x) {
			return
		}
		findings = append(findings, rawFinding{
			pos:  n.Pos(),
			rule: RuleBitWidth,
			msg: fmt.Sprintf("%s << %d silently drops the top %d bits; mask the operand, guard it (%v), or annotate with //mbpvet:ignore %s",
				types.ExprString(x), shift, shift, w.guards, RuleBitWidth),
		})
	}
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.SHL {
				consider(n, n.X, n.Y)
			}
		case *ast.AssignStmt:
			if n.Tok == token.SHL_ASSIGN && len(n.Lhs) == 1 {
				consider(n, n.Lhs[0], n.Rhs[0])
			}
		}
		return true
	})
	return findings
}

// boundedTo reports whether expr is syntactically guaranteed to fit in
// `width` bits: a mask by a small-enough constant, a right shift that
// leaves at most `width` bits, or a modulo by a small-enough constant.
func (w *widthScan) boundedTo(e ast.Expr, width int) bool {
	if width >= 64 {
		return true
	}
	if width < 0 {
		return false
	}
	e = ast.Unparen(e)
	bin, ok := e.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	constOperand := func() (uint64, bool) {
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			if v := w.constVal(side); v != nil {
				if u, exact := constant.Uint64Val(constant.ToInt(v)); exact {
					return u, true
				}
			}
		}
		return 0, false
	}
	switch bin.Op {
	case token.AND:
		if mask, ok := constOperand(); ok {
			return bits.Len64(mask) <= width
		}
	case token.SHR:
		if k := w.constVal(bin.Y); k != nil {
			if shift, exact := constant.Int64Val(constant.ToInt(k)); exact {
				return intWidth(w.typeOf(bin.X))-int(shift) <= width
			}
		}
	case token.REM:
		if v := w.constVal(bin.Y); v != nil {
			if m, exact := constant.Uint64Val(constant.ToInt(v)); exact && m > 0 {
				return bits.Len64(m-1) <= width
			}
		}
	}
	return false
}

// guarded reports whether the enclosing function calls one of the
// configured width-guard predicates on this exact expression.
func (w *widthScan) guarded(e ast.Expr) bool {
	want := types.ExprString(e)
	found := false
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		for _, g := range w.guards {
			if name == g {
				for _, arg := range call.Args {
					if types.ExprString(arg) == want {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// comparisonGuarded reports whether the function compares this exact
// expression against anything — the bounds-check idiom. The check is
// deliberately syntactic: proving the comparison dominates the use would
// need full flow analysis, and a wrong bound is still caught by the
// round-trip fuzzers.
func (w *widthScan) comparisonGuarded(e ast.Expr) bool {
	want := types.ExprString(e)
	found := false
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch bin.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			if types.ExprString(bin.X) == want || types.ExprString(bin.Y) == want {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkTableMasks flags make([]T, n) where n is not shaped like a power of
// two while the function also computes n-1 (an index mask): predictor
// tables must be power-of-two sized for mask indexing to be correct.
func (w *widthScan) checkTableMasks() []rawFinding {
	var findings []rawFinding
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if _, isBuiltin := w.info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		t := w.typeOf(call)
		if t == nil {
			return true
		}
		if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
			return true
		}
		size := ast.Unparen(call.Args[1])
		if w.powerOfTwoShaped(size) {
			return true
		}
		if !w.derivesMask(size) {
			return true
		}
		findings = append(findings, rawFinding{
			pos:  call.Pos(),
			rule: RuleBitWidth,
			msg: fmt.Sprintf("table of size %s is indexed through a mask derived from its size, but the size is not provably a power of two (use 1<<logSize)",
				types.ExprString(size)),
		})
		return true
	})
	return findings
}

// powerOfTwoShaped accepts `1 << k`, power-of-two constants, and products
// of power-of-two-shaped factors.
func (w *widthScan) powerOfTwoShaped(e ast.Expr) bool {
	e = ast.Unparen(e)
	if v := w.constVal(e); v != nil {
		u, exact := constant.Uint64Val(constant.ToInt(v))
		return exact && u != 0 && u&(u-1) == 0
	}
	if bin, ok := e.(*ast.BinaryExpr); ok {
		switch bin.Op {
		case token.SHL:
			if v := w.constVal(bin.X); v != nil {
				u, exact := constant.Uint64Val(constant.ToInt(v))
				return exact && u != 0 && u&(u-1) == 0
			}
		case token.MUL:
			return w.powerOfTwoShaped(bin.X) && w.powerOfTwoShaped(bin.Y)
		}
	}
	return false
}

// derivesMask reports whether the function uses `size - 1` as an index
// mask: as an operand of &, or assigned to a variable whose name says it
// is a mask. A bare `size - 1` (a divisor, a last-index bound) is not
// evidence of mask indexing.
func (w *widthScan) derivesMask(size ast.Expr) bool {
	want := types.ExprString(size)
	isSizeMinusOne := func(e ast.Expr) bool {
		bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok || bin.Op != token.SUB || types.ExprString(bin.X) != want {
			return false
		}
		v := w.constVal(bin.Y)
		if v == nil {
			return false
		}
		one, exact := constant.Int64Val(constant.ToInt(v))
		return exact && one == 1
	}
	// `x & conv(size-1)` also counts: unwrap one conversion layer.
	unwrap := func(e ast.Expr) ast.Expr {
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && len(call.Args) == 1 {
			if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
				return call.Args[0]
			}
		}
		return e
	}
	found := false
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.AND && (isSizeMinusOne(unwrap(n.X)) || isSizeMinusOne(unwrap(n.Y))) {
				found = true
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if strings.Contains(strings.ToLower(id.Name), "mask") && isSizeMinusOne(unwrap(n.Rhs[i])) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
