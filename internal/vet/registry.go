package vet

import (
	"fmt"
	"go/types"
	"strings"
)

// Rule V2 — registry completeness: every package under the predictors tree
// that exports a Predictor implementation must be reachable from the
// predictor registry, so `mbpsim -bp <name>` and the sweep harnesses can
// construct it. A predictor package that the registry does not import is a
// package nobody can select, which in practice means a contributed
// predictor that silently fell out of the catalogue.
func checkRegistry(prog *Program, cfg Config) []Finding {
	if cfg.RegistryPath == "" {
		return nil
	}
	reg, ok := prog.Packages[cfg.RegistryPath]
	if !ok {
		return nil // nothing under analysis imports the registry tree
	}
	imported := make(map[string]bool)
	for _, imp := range reg.Types.Imports() {
		imported[imp.Path()] = true
	}

	var findings []Finding
	for _, pkg := range prog.Sorted() {
		if pkg.Path == cfg.RegistryPath ||
			!strings.HasPrefix(pkg.Path, cfg.PredictorRoot+"/") {
			continue
		}
		name := exportedPredictorName(pkg.Types)
		if name == "" || imported[pkg.Path] {
			continue
		}
		findings = append(findings, Finding{
			Pos:  prog.Fset.Position(reg.Files[0].Name.Pos()),
			Rule: RuleRegistry,
			Msg: fmt.Sprintf("predictor package %s exports %s but is not constructible through the registry (add a builder and import)",
				pkg.Path, name),
		})
	}
	return findings
}

// exportedPredictorName returns the name of an exported type of pkg whose
// pointer method set has the Predictor shape, or "".
func exportedPredictorName(pkg *types.Package) string {
	for _, named := range predictorTypes(pkg) {
		if obj := named.Obj(); obj.Exported() {
			return obj.Name()
		}
	}
	return ""
}

// interfaceNamed is a tiny helper kept close to the rule that needs it:
// it reports whether t is (a pointer to) the named type path.name.
func interfaceNamed(t types.Type, path, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}
