package vet

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Output rendering for cmd/mbpvet. Both formats print module-relative,
// forward-slash paths so output is byte-stable across checkouts and
// platforms — the golden tests depend on it, and SARIF consumers resolve
// the URIs against the repository root (%SRCROOT%).

// ruleDocs is the one-line description of each rule, used as SARIF rule
// metadata and by the -rules listing.
var ruleDocs = map[string]string{
	RulePurity:     "Predict must not mutate predictor state (§IV-A)",
	RuleRegistry:   "every predictor package is constructible through the registry",
	RuleDroppedErr: "no discarded error results in the codec and simulator packages",
	RuleBitWidth:   "no silent truncation in codec paths; mask-indexed tables are power-of-two sized",
	RulePanicFree:  "no panic on untrusted input in the decode packages",
	RuleGoroutine:  "every go statement has a provable join or cancel path",
	RuleGuardedBy:  "mutex-guarded fields are never accessed without the lock",
	RuleAtomic:     "atomically-accessed fields are never accessed plainly and 64-bit atomics are aligned",
	RuleCtxProp:    "a received context.Context is propagated, not dropped",
}

// RuleDoc returns the one-line description of a rule.
func RuleDoc(rule string) string { return ruleDocs[rule] }

// relPath renders filename relative to root with forward slashes, falling
// back to the absolute path when filename is outside root.
func relPath(root, filename string) string {
	if root == "" {
		return filepath.ToSlash(filename)
	}
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// jsonFinding is one finding in -json output.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	// Fix is the one-line description of the suggested fix, if any.
	Fix string `json:"fix,omitempty"`
}

// WriteJSON renders findings as a stable JSON document. root anchors the
// relative paths (pass the module root).
func WriteJSON(w io.Writer, findings []Finding, root string) error {
	doc := struct {
		Version  int           `json:"version"`
		Count    int           `json:"count"`
		Findings []jsonFinding `json:"findings"`
	}{Version: 1, Count: len(findings), Findings: []jsonFinding{}}
	for _, f := range findings {
		jf := jsonFinding{
			File:    relPath(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Rule:    f.Rule,
			Message: f.Msg,
		}
		if f.Fix != nil {
			jf.Fix = f.Fix.Message
		}
		doc.Findings = append(doc.Findings, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(doc)
}

// sarifSchema is the canonical SARIF 2.1.0 schema URI.
const sarifSchema = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/cos02/schemas/sarif-schema-2.1.0.json"

// WriteSARIF renders findings as a SARIF 2.1.0 log with one run. Rule
// metadata covers the full catalogue (not just the rules that fired) so
// code-scanning UIs can show the rule help for a clean run too.
func WriteSARIF(w io.Writer, findings []Finding, root string) error {
	type text struct {
		Text string `json:"text"`
	}
	type rule struct {
		ID               string `json:"id"`
		ShortDescription text   `json:"shortDescription"`
	}
	type artifactLocation struct {
		URI       string `json:"uri"`
		URIBaseID string `json:"uriBaseId"`
	}
	type region struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type physicalLocation struct {
		ArtifactLocation artifactLocation `json:"artifactLocation"`
		Region           region           `json:"region"`
	}
	type location struct {
		PhysicalLocation physicalLocation `json:"physicalLocation"`
	}
	type result struct {
		RuleID    string     `json:"ruleId"`
		RuleIndex int        `json:"ruleIndex"`
		Level     string     `json:"level"`
		Message   text       `json:"message"`
		Locations []location `json:"locations"`
	}

	rules := make([]rule, 0, len(AllRules()))
	index := make(map[string]int)
	for i, r := range AllRules() {
		rules = append(rules, rule{ID: r, ShortDescription: text{Text: ruleDocs[r]}})
		index[r] = i
	}
	results := make([]result, 0, len(findings))
	for _, f := range findings {
		idx, ok := index[f.Rule]
		if !ok {
			// Malformed-directive findings can carry an unknown rule field
			// (the bad directive's own text); map them to index -1 per SARIF
			// ("no metadata available").
			idx = -1
		}
		results = append(results, result{
			RuleID:    f.Rule,
			RuleIndex: idx,
			Level:     "error",
			Message:   text{Text: f.Msg},
			Locations: []location{{PhysicalLocation: physicalLocation{
				ArtifactLocation: artifactLocation{URI: relPath(root, f.Pos.Filename), URIBaseID: "%SRCROOT%"},
				Region:           region{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}

	doc := map[string]any{
		"$schema": sarifSchema,
		"version": "2.1.0",
		"runs": []any{map[string]any{
			"tool": map[string]any{"driver": map[string]any{
				"name":           "mbpvet",
				"informationUri": "https://github.com/mbplib/mbplib",
				"rules":          rules,
			}},
			"results":    results,
			"columnKind": "utf16CodeUnits",
			"originalUriBaseIds": map[string]any{
				"%SRCROOT%": map[string]any{"uri": "file:///"},
			},
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(doc)
}

// WriteText renders findings in the classic file:line: rule: message form.
func WriteText(w io.Writer, findings []Finding, root string) error {
	for _, f := range findings {
		g := f
		g.Pos.Filename = relPath(root, f.Pos.Filename)
		if _, err := fmt.Fprintln(w, g); err != nil {
			return err
		}
	}
	return nil
}
