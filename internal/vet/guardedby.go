package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Rule V7 — locked-field consistency, in the spirit of gVisor's checklocks:
// a struct field that one method mutates while holding a mutex must never be
// accessed in another method of the same struct without that mutex. The rule
// infers the guarded set per struct and checks it at method granularity:
//
//   - A field is inferred-guarded by mutex path P when a method of the
//     struct both locks P (recv.P.Lock or recv.P.RLock anywhere in its
//     body) and writes the field through the receiver.
//   - A field is declared-guarded with //mbpvet:guardedby <path> on its
//     declaration, where <path> walks fields from the receiver to a
//     sync.Mutex or sync.RWMutex (e.g. "mu", or "c.mu" for a back-pointer
//     to the owning structure). An annotation that resolves to no mutex is
//     itself reported.
//   - A method whose name ends in "Locked", or whose doc comment carries
//     //mbpvet:guardedby <path>, asserts that its caller holds the lock:
//     its accesses are not reported (and, being unproven, do not infer).
//
// The check is receiver-scoped and flow-insensitive on purpose: whether a
// *particular* access happens under the lock would need a happens-before
// analysis, while "this method takes the lock somewhere" is cheap, stable
// under refactoring, and already catches the dangerous pattern — a method
// written without any locking touching state every other writer protects.
// DESIGN.md discusses why the inference is per-struct rather than
// whole-program.

// guardInfo records how a field came to be guarded, for the report text.
type guardInfo struct {
	path   string // mutex path relative to the receiver, e.g. "mu" or "c.mu"
	source string // "//mbpvet:guardedby annotation" or "inferred from <method>"
}

// guardedStruct is the per-struct analysis state.
type guardedStruct struct {
	name   string
	named  *types.Named
	guards map[*types.Var]guardInfo
}

func guardedByFindings(files []*ast.File, info *types.Info) []rawFinding {
	var out []rawFinding
	structs := make(map[*types.Named]*guardedStruct)
	var order []*guardedStruct

	// Pass 1: structs, their mutex fields, and explicit annotations.
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				return true
			}
			gs := &guardedStruct{name: ts.Name.Name, named: named, guards: make(map[*types.Var]guardInfo)}
			structs[named] = gs
			order = append(order, gs)
			for _, field := range st.Fields.List {
				path, pos, ok := guardedByAnnotation(field)
				if !ok {
					continue
				}
				if !resolvesToMutex(named, path) {
					out = append(out, rawFinding{
						pos:  pos,
						rule: RuleGuardedBy,
						msg: fmt.Sprintf("//mbpvet:guardedby %s on %s names no sync.Mutex or sync.RWMutex reachable from the struct",
							path, gs.name),
					})
					continue
				}
				for _, name := range field.Names {
					if fv, ok := info.Defs[name].(*types.Var); ok {
						gs.guards[fv] = guardInfo{path: path, source: "//mbpvet:guardedby annotation"}
					}
				}
			}
			return true
		})
	}
	if len(structs) == 0 {
		return out
	}

	// Pass 2: method contexts — which guard paths each method locks, and
	// whether it asserts caller-held locking. Then infer guarded fields from
	// locked writes, in declaration order so reports are deterministic.
	type methodCtx struct {
		gs          *guardedStruct
		decl        *ast.FuncDecl
		recv        *types.Var
		locks       map[string]bool
		firstLock   string
		callerHolds bool
	}
	var methods []*methodCtx
	forEachFuncDecl(files, info, func(obj *types.Func, decl *ast.FuncDecl, recv *types.Var) {
		if recv == nil {
			return
		}
		named := receiverNamed(recv.Type())
		gs := structs[named]
		if gs == nil {
			return
		}
		m := &methodCtx{gs: gs, decl: decl, recv: recv, locks: make(map[string]bool)}
		if strings.HasSuffix(decl.Name.Name, "Locked") {
			m.callerHolds = true
		}
		if decl.Doc != nil {
			for _, c := range decl.Doc.List {
				if rest, ok := strings.CutPrefix(c.Text, "//mbpvet:guardedby"); ok && strings.TrimSpace(rest) != "" {
					m.callerHolds = true
				}
			}
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
				return true
			}
			if path, ok := receiverPath(info, m.recv, sel.X); ok {
				if !m.locks[path] && m.firstLock == "" {
					m.firstLock = path
				}
				m.locks[path] = true
			}
			return true
		})
		methods = append(methods, m)
	})
	for _, m := range methods {
		if m.callerHolds || len(m.locks) == 0 {
			continue
		}
		ast.Inspect(m.decl.Body, func(n ast.Node) bool {
			var target ast.Expr
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if fv, ok := receiverField(info, m.recv, lhs); ok {
						if _, known := m.gs.guards[fv]; !known {
							m.gs.guards[fv] = guardInfo{path: m.firstLock, source: "inferred from " + m.decl.Name.Name}
						}
					}
				}
				return true
			case *ast.IncDecStmt:
				target = n.X
			}
			if target != nil {
				if fv, ok := receiverField(info, m.recv, target); ok {
					if _, known := m.gs.guards[fv]; !known {
						m.gs.guards[fv] = guardInfo{path: m.firstLock, source: "inferred from " + m.decl.Name.Name}
					}
				}
			}
			return true
		})
	}

	// Pass 3: report bare accesses to guarded fields.
	for _, m := range methods {
		if m.callerHolds || len(m.gs.guards) == 0 {
			continue
		}
		ast.Inspect(m.decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv, ok := receiverField(info, m.recv, sel)
			if !ok {
				return true
			}
			g, guarded := m.gs.guards[fv]
			if !guarded || m.locks[g.path] {
				return true
			}
			out = append(out, rawFinding{
				pos:  sel.Pos(),
				rule: RuleGuardedBy,
				msg: fmt.Sprintf("%s.%s is guarded by %s (%s) but %s accesses it without the lock; lock %s first, give the method a Locked suffix, or declare //mbpvet:guardedby in its doc",
					m.gs.name, fv.Name(), g.path, g.source, m.decl.Name.Name, g.path),
			})
			return true
		})
	}
	return out
}

// guardedByAnnotation extracts a //mbpvet:guardedby path from a field's doc
// or line comment.
func guardedByAnnotation(field *ast.Field) (path string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, found := strings.CutPrefix(c.Text, "//mbpvet:guardedby"); found {
				p := strings.TrimSpace(rest)
				if p != "" {
					return strings.Fields(p)[0], c.Pos(), true
				}
			}
		}
	}
	return "", 0, false
}

// receiverNamed unwraps a receiver type to its named struct type.
func receiverNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// receiverPath renders e as a dot path rooted at the receiver variable
// ("c.mu" for e=c.mu with receiver c gives "mu"; e=e.c.mu gives "c.mu").
func receiverPath(info *types.Info, recv *types.Var, e ast.Expr) (string, bool) {
	var segs []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			segs = append([]string{x.Sel.Name}, segs...)
			e = x.X
		case *ast.Ident:
			if obj := info.Uses[x]; obj == recv {
				if len(segs) == 0 {
					return "", false
				}
				return strings.Join(segs, "."), true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// receiverField resolves e to a directly-declared field of the receiver's
// struct when e is recv.<field>.
func receiverField(info *types.Info, recv *types.Var, e ast.Expr) (*types.Var, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || info.Uses[id] != recv {
		return nil, false
	}
	fv, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !fv.IsField() {
		return nil, false
	}
	return fv, true
}

// resolvesToMutex walks path ("mu", "c.mu", ...) from the struct through
// field types, dereferencing pointers, and reports whether it ends at a
// sync.Mutex or sync.RWMutex.
func resolvesToMutex(named *types.Named, path string) bool {
	t := types.Type(named)
	for _, seg := range strings.Split(path, ".") {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return false
		}
		var next types.Type
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == seg {
				next = st.Field(i).Type()
				break
			}
		}
		if next == nil {
			return false
		}
		t = next
	}
	return isMutexType(t)
}

func isMutexType(t types.Type) bool {
	return interfaceNamed(t, "sync", "Mutex") || interfaceNamed(t, "sync", "RWMutex")
}
