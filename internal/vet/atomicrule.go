package vet

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"mbplib/internal/vet/driver"
)

// Rule V8 — atomic discipline: a field that is ever accessed through
// sync/atomic (passed as &x.f to atomic.AddUint64, LoadInt64, ...) must be
// accessed that way everywhere — one plain read racing one atomic write is
// still a data race, and it hides from casual review precisely because "the
// field is atomic". The rule also checks the classic 32-bit trap: a 64-bit
// atomically-accessed field must sit at an 8-byte-aligned offset, which is
// verified under 386 struct layout (the sync/atomic panic that only fires
// on 32-bit ARM/x86). Fields of the method-style types (atomic.Int64 and
// friends) are aligned and encapsulated by construction, so they are out of
// scope by design.
//
// Plain reads and simple plain writes carry a suggested fix (atomic.LoadXxx
// / atomic.StoreXxx) when the file already imports sync/atomic.

// atomicUse records how one field is accessed atomically: the width-typed
// function suffix (for fix naming) and the &x.f selector nodes that belong
// to atomic calls (so they are not reported as plain accesses).
type atomicUse struct {
	suffix string
	sels   map[*ast.SelectorExpr]bool
}

func atomicFindings(files []*ast.File, info *types.Info) []driver.Diagnostic {
	uses := collectAtomicUses(files, info)
	if len(uses) == 0 {
		return nil
	}
	var out []driver.Diagnostic
	for _, file := range files {
		hasAtomicImport := importsPath(file, "sync/atomic")
		ast.Inspect(file, func(n ast.Node) bool {
			// A simple plain write `x.f = v` gets a Store fix spanning the
			// whole statement; report it here and skip re-reporting its LHS
			// as a plain access.
			if assign, ok := n.(*ast.AssignStmt); ok && len(assign.Lhs) == 1 && len(assign.Rhs) == 1 && assign.Tok.String() == "=" {
				if sel, ok := ast.Unparen(assign.Lhs[0]).(*ast.SelectorExpr); ok {
					if fv, u := atomicField(info, uses, sel); u != nil {
						d := driver.Diagnostic{
							Pos:      sel.Pos(),
							Category: RuleAtomic,
							Message: fmt.Sprintf("%s is accessed atomically elsewhere but assigned plainly here — a plain write races every atomic access; use atomic.Store%s or annotate with //mbpvet:ignore %s",
								fv.Name(), u.suffix, RuleAtomic),
						}
						if hasAtomicImport && u.suffix != "" {
							d.SuggestedFixes = []driver.SuggestedFix{{
								Message: fmt.Sprintf("replace the plain write with atomic.Store%s", u.suffix),
								TextEdits: []driver.TextEdit{
									{Pos: assign.Pos(), End: assign.Lhs[0].End(), NewText: []byte(fmt.Sprintf("atomic.Store%s(&%s", u.suffix, types.ExprString(assign.Lhs[0])))},
									{Pos: assign.Lhs[0].End(), End: assign.Rhs[0].Pos(), NewText: []byte(", ")},
									{Pos: assign.Rhs[0].End(), End: assign.Rhs[0].End(), NewText: []byte(")")},
								},
							}}
						}
						out = append(out, d)
						// The RHS may still contain plain reads.
						ast.Inspect(assign.Rhs[0], func(m ast.Node) bool {
							if sel, ok := m.(*ast.SelectorExpr); ok {
								out = append(out, plainReadDiag(info, uses, hasAtomicImport, sel)...)
							}
							return true
						})
						return false
					}
				}
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				out = append(out, plainReadDiag(info, uses, hasAtomicImport, sel)...)
			}
			return true
		})
	}
	out = append(out, atomicAlignmentDiags(files, info, uses)...)
	return out
}

// collectAtomicUses indexes every field passed as &x.f to a sync/atomic
// function.
func collectAtomicUses(files []*ast.File, info *types.Info) map[*types.Var]*atomicUse {
	uses := make(map[*types.Var]*atomicUse)
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			name, ok := atomicCallName(info, call)
			if !ok {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op.String() != "&" {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok || !fv.IsField() {
				return true
			}
			u := uses[fv]
			if u == nil {
				u = &atomicUse{sels: make(map[*ast.SelectorExpr]bool)}
				uses[fv] = u
			}
			u.sels[sel] = true
			if u.suffix == "" {
				u.suffix = atomicSuffix(name)
			}
			return true
		})
	}
	return uses
}

// atomicField resolves sel to an atomically-used field, excluding the
// selector nodes that are themselves part of atomic calls.
func atomicField(info *types.Info, uses map[*types.Var]*atomicUse, sel *ast.SelectorExpr) (*types.Var, *atomicUse) {
	fv, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !fv.IsField() {
		return nil, nil
	}
	u := uses[fv]
	if u == nil || u.sels[sel] {
		return nil, nil
	}
	return fv, u
}

// plainReadDiag reports sel when it is a plain access to an atomic field,
// with a Load fix for the common read shape.
func plainReadDiag(info *types.Info, uses map[*types.Var]*atomicUse, hasAtomicImport bool, sel *ast.SelectorExpr) []driver.Diagnostic {
	fv, u := atomicField(info, uses, sel)
	if u == nil {
		return nil
	}
	d := driver.Diagnostic{
		Pos:      sel.Pos(),
		Category: RuleAtomic,
		Message: fmt.Sprintf("%s is accessed atomically elsewhere but read plainly here — pair every atomic write with atomic loads; use atomic.Load%s or annotate with //mbpvet:ignore %s",
			fv.Name(), u.suffix, RuleAtomic),
	}
	if hasAtomicImport && u.suffix != "" {
		d.SuggestedFixes = []driver.SuggestedFix{{
			Message: fmt.Sprintf("replace the plain read with atomic.Load%s", u.suffix),
			TextEdits: []driver.TextEdit{
				{Pos: sel.Pos(), End: sel.End(), NewText: []byte(fmt.Sprintf("atomic.Load%s(&%s)", u.suffix, types.ExprString(sel)))},
			},
		}}
	}
	return []driver.Diagnostic{d}
}

// atomicAlignmentDiags checks 64-bit atomic fields against 386 struct
// layout, reporting misaligned ones at their declaration.
func atomicAlignmentDiags(files []*ast.File, info *types.Info, uses map[*types.Var]*atomicUse) []driver.Diagnostic {
	sizes := types.SizesFor("gc", "386")
	var out []driver.Diagnostic
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			if _, ok := ts.Type.(*ast.StructType); !ok {
				return true
			}
			tn, ok := info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			strct, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			fields := make([]*types.Var, strct.NumFields())
			for i := range fields {
				fields[i] = strct.Field(i)
			}
			offsets := sizes.Offsetsof(fields)
			for i, fv := range fields {
				u := uses[fv]
				if u == nil || !is64BitSuffix(u.suffix) || offsets[i]%8 == 0 {
					continue
				}
				out = append(out, driver.Diagnostic{
					Pos:      fv.Pos(),
					Category: RuleAtomic,
					Message: fmt.Sprintf("64-bit atomic field %s sits at offset %d under 32-bit struct layout; sync/atomic requires 8-byte alignment — move it to the front of %s or pad the fields before it",
						fv.Name(), offsets[i], ts.Name.Name),
				})
			}
			return true
		})
	}
	return out
}

// atomicCallName matches atomic.<Name>(...) against the sync/atomic package
// and returns the function name.
func atomicCallName(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", false
	}
	return sel.Sel.Name, true
}

// atomicSuffix extracts the width-typed suffix of an atomic function name
// (AddUint64 -> Uint64, CompareAndSwapInt32 -> Int32).
func atomicSuffix(name string) string {
	for _, s := range []string{"Int64", "Uint64", "Int32", "Uint32", "Uintptr", "Pointer"} {
		if strings.HasSuffix(name, s) {
			return s
		}
	}
	return ""
}

func is64BitSuffix(s string) bool { return s == "Int64" || s == "Uint64" }

// importsPath reports whether file imports the given path.
func importsPath(file *ast.File, path string) bool {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}
