package vet

import (
	"fmt"
	"go/ast"
	"go/types"

	"mbplib/internal/vet/driver"
)

// Rule V9 — context propagation: a function in the simulator packages that
// receives a context.Context must actually thread it through. Two shapes
// are reported:
//
//   - a named, non-blank context parameter the body never uses: the caller
//     believes cancellation works, but the function cannot be interrupted;
//   - a call to context.Background() or context.TODO() inside a function
//     that already has a context parameter: the fresh root context detaches
//     everything below it from the caller's cancellation, which is exactly
//     the sweep-scheduler bug class the ROADMAP's mbpd daemon must not
//     inherit. This shape carries a suggested fix substituting the
//     parameter.
//
// Functions without a context parameter may call context.Background freely
// (something has to create the root), and a parameter named _ is an
// explicit statement that the function is not cancellable.
func ctxPropFindings(files []*ast.File, info *types.Info) []driver.Diagnostic {
	var out []driver.Diagnostic
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			ctxName, ctxObj := contextParam(info, fn.Type.Params)
			if ctxObj == nil {
				return true
			}
			used := false
			ast.Inspect(fn.Body, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.Ident:
					if info.Uses[m] == ctxObj {
						used = true
					}
				case *ast.CallExpr:
					if name, ok := contextRootCall(info, m); ok {
						out = append(out, driver.Diagnostic{
							Pos:      m.Pos(),
							Category: RuleCtxProp,
							Message: fmt.Sprintf("context.%s() inside %s discards the caller's context — everything below it becomes uncancellable; pass %s down instead",
								name, fn.Name.Name, ctxName),
							SuggestedFixes: []driver.SuggestedFix{{
								Message: fmt.Sprintf("replace context.%s() with %s", name, ctxName),
								TextEdits: []driver.TextEdit{
									{Pos: m.Pos(), End: m.End(), NewText: []byte(ctxName)},
								},
							}},
						})
					}
				}
				return true
			})
			if !used {
				out = append(out, driver.Diagnostic{
					Pos:      ctxObj.Pos(),
					Category: RuleCtxProp,
					Message: fmt.Sprintf("%s receives context %s but never uses it — thread it through the blocking calls or rename the parameter to _ to declare the function uncancellable",
						fn.Name.Name, ctxName),
				})
			}
			return true
		})
	}
	return out
}

// contextParam returns the first named, non-blank context.Context parameter.
func contextParam(info *types.Info, params *ast.FieldList) (string, types.Object) {
	if params == nil {
		return "", nil
	}
	for _, field := range params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.Defs[name]
			if obj != nil && interfaceNamed(obj.Type(), "context", "Context") {
				return name.Name, obj
			}
		}
	}
	return "", nil
}

// contextRootCall matches context.Background() / context.TODO().
func contextRootCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}
