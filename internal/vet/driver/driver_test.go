package driver

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildPackages type-checks a chain of tiny packages (later ones importing
// earlier ones) and returns them in import-topological order.
func buildPackages(t *testing.T, sources map[string]string, order []string) (*token.FileSet, []*Package) {
	t.Helper()
	fset := token.NewFileSet()
	byPath := make(map[string]*types.Package)
	var pkgs []*Package
	for _, path := range order {
		file, err := parser.ParseFile(fset, path+".go", sources[path], parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		info := &types.Info{
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: chainImporter{byPath: byPath, std: importer.Default()}}
		tpkg, err := conf.Check(path, fset, []*ast.File{file}, info)
		if err != nil {
			t.Fatalf("type-checking %s: %v", path, err)
		}
		byPath[path] = tpkg
		pkgs = append(pkgs, &Package{Path: path, Files: []*ast.File{file}, Types: tpkg, Info: info})
	}
	return fset, pkgs
}

type chainImporter struct {
	byPath map[string]*types.Package
	std    types.Importer
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.byPath[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

type markFact struct{ Tag string }

func (*markFact) AFact() {}

type pkgMarkFact struct{ N int }

func (*pkgMarkFact) AFact() {}

const srcLeaf = `package leaf

func Exported() int { return 1 }
`

const srcRoot = `package root

import "leaf"

func Use() int { return leaf.Exported() }
`

// TestAnalyzerMajorOrder pins the driver's two ordering contracts: packages
// run dependencies-first, and a required analyzer completes over every
// package before its dependent starts anywhere (analyzer-major execution).
func TestAnalyzerMajorOrder(t *testing.T) {
	fset, pkgs := buildPackages(t, map[string]string{"leaf": srcLeaf, "root": srcRoot}, []string{"leaf", "root"})
	var trace []string
	base := &Analyzer{
		Name: "base",
		Run: func(p *Pass) (any, error) {
			trace = append(trace, "base:"+p.Pkg.Path())
			return "result-" + p.Pkg.Path(), nil
		},
	}
	dep := &Analyzer{
		Name: "dep",
		Run: func(p *Pass) (any, error) {
			trace = append(trace, "dep:"+p.Pkg.Path())
			return nil, nil
		},
	}
	dep.Requires = []*Analyzer{base}
	if _, err := Run(fset, pkgs, []*Analyzer{dep}); err != nil {
		t.Fatal(err)
	}
	want := []string{"base:leaf", "base:root", "dep:leaf", "dep:root"}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Errorf("execution order = %v, want %v", trace, want)
	}
}

// TestResultOf checks that a dependent pass sees its requirement's result
// for the same package.
func TestResultOf(t *testing.T) {
	fset, pkgs := buildPackages(t, map[string]string{"leaf": srcLeaf}, []string{"leaf"})
	base := &Analyzer{
		Name: "base",
		Run:  func(p *Pass) (any, error) { return 42, nil },
	}
	checked := false
	dep := &Analyzer{
		Name:     "dep",
		Requires: []*Analyzer{base},
		Run: func(p *Pass) (any, error) {
			if got := p.ResultOf[base]; got != 42 {
				t.Errorf("ResultOf[base] = %v, want 42", got)
			}
			checked = true
			return nil, nil
		},
	}
	if _, err := Run(fset, pkgs, []*Analyzer{dep}); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("dependent analyzer never ran")
	}
}

// TestObjectFactsCrossPackage exports a fact on leaf.Exported and imports
// it while analyzing root, the flow the purity analyzer relies on.
func TestObjectFactsCrossPackage(t *testing.T) {
	fset, pkgs := buildPackages(t, map[string]string{"leaf": srcLeaf, "root": srcRoot}, []string{"leaf", "root"})
	exporter := &Analyzer{
		Name:      "exporter",
		FactTypes: []Fact{(*markFact)(nil)},
		Run: func(p *Pass) (any, error) {
			if obj := p.Pkg.Scope().Lookup("Exported"); obj != nil {
				p.ExportObjectFact(obj, &markFact{Tag: "seen-" + p.Pkg.Path()})
			}
			return nil, nil
		},
	}
	var imported string
	reader := &Analyzer{
		Name:     "reader",
		Requires: []*Analyzer{exporter},
		Run: func(p *Pass) (any, error) {
			if p.Pkg.Path() != "root" {
				return nil, nil
			}
			leaf := p.Pkg.Imports()[0]
			obj := leaf.Scope().Lookup("Exported")
			var f markFact
			if p.ImportObjectFact(obj, &f) {
				imported = f.Tag
			}
			return nil, nil
		},
	}
	if _, err := Run(fset, pkgs, []*Analyzer{reader}); err != nil {
		t.Fatal(err)
	}
	if imported != "seen-leaf" {
		t.Errorf("imported fact = %q, want seen-leaf", imported)
	}
}

// TestPackageFactsVisibleToDependents exercises ExportPackageFact plus
// AllPackageFacts through the Requires closure — the registry rule's flow,
// where the registry package reads facts about packages it does not import.
func TestPackageFactsVisibleToDependents(t *testing.T) {
	fset, pkgs := buildPackages(t, map[string]string{"leaf": srcLeaf, "root": srcRoot}, []string{"leaf", "root"})
	exporter := &Analyzer{
		Name:      "pkgexporter",
		FactTypes: []Fact{(*pkgMarkFact)(nil)},
		Run: func(p *Pass) (any, error) {
			p.ExportPackageFact(&pkgMarkFact{N: len(p.Pkg.Path())})
			return nil, nil
		},
	}
	seen := make(map[string]int)
	reader := &Analyzer{
		Name:     "pkgreader",
		Requires: []*Analyzer{exporter},
		Run: func(p *Pass) (any, error) {
			if p.Pkg.Path() != "root" {
				return nil, nil
			}
			for _, pf := range p.AllPackageFacts() {
				if m, ok := pf.Fact.(*pkgMarkFact); ok {
					seen[pf.Package.Path()] = m.N
				}
			}
			return nil, nil
		},
	}
	if _, err := Run(fset, pkgs, []*Analyzer{reader}); err != nil {
		t.Fatal(err)
	}
	// Facts for BOTH packages must be visible, including leaf's, even
	// though the reader pass runs on root.
	if seen["leaf"] != 4 || seen["root"] != 4 {
		t.Errorf("package facts seen = %v, want leaf:4 root:4", seen)
	}
}

// TestUndeclaredFactPanics pins the x/tools-compatible misuse check.
func TestUndeclaredFactPanics(t *testing.T) {
	fset, pkgs := buildPackages(t, map[string]string{"leaf": srcLeaf}, []string{"leaf"})
	bad := &Analyzer{
		Name: "bad",
		Run: func(p *Pass) (any, error) {
			defer func() {
				if recover() == nil {
					t.Error("exporting an undeclared fact type did not panic")
				}
			}()
			p.ExportPackageFact(&pkgMarkFact{N: 1})
			return nil, nil
		},
	}
	if _, err := Run(fset, pkgs, []*Analyzer{bad}); err != nil {
		t.Fatal(err)
	}
}

// TestRequiresCycleIsAnError checks the driver rejects cyclic Requires
// instead of hanging or stack-overflowing.
func TestRequiresCycleIsAnError(t *testing.T) {
	fset, pkgs := buildPackages(t, map[string]string{"leaf": srcLeaf}, []string{"leaf"})
	a := &Analyzer{Name: "a", Run: func(*Pass) (any, error) { return nil, nil }}
	b := &Analyzer{Name: "b", Run: func(*Pass) (any, error) { return nil, nil }}
	a.Requires = []*Analyzer{b}
	b.Requires = []*Analyzer{a}
	if _, err := Run(fset, pkgs, []*Analyzer{a}); err == nil {
		t.Fatal("cyclic Requires did not error")
	}
}

// TestDiagnosticsRouted checks Report/Reportf land in the pass's Result.
func TestDiagnosticsRouted(t *testing.T) {
	fset, pkgs := buildPackages(t, map[string]string{"leaf": srcLeaf}, []string{"leaf"})
	an := &Analyzer{
		Name: "diag",
		Run: func(p *Pass) (any, error) {
			p.Reportf(p.Files[0].Name.Pos(), "hello %s", p.Pkg.Path())
			return nil, nil
		},
	}
	results, err := Run(fset, pkgs, []*Analyzer{an})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, r := range results {
		for _, d := range r.Diagnostics {
			msgs = append(msgs, d.Message)
			if d.Category != "diag" {
				t.Errorf("category = %q, want the analyzer name", d.Category)
			}
		}
	}
	if len(msgs) != 1 || msgs[0] != "hello leaf" {
		t.Errorf("diagnostics = %v, want [hello leaf]", msgs)
	}
}
