// Package driver is mbpvet's analyzer framework: a dependency-free
// re-implementation of the golang.org/x/tools/go/analysis architecture.
// Each rule is an *Analyzer value — a named unit of analysis with a Run
// function, declared dependencies (Requires) and declared fact types — and
// the driver schedules them over the packages of a module, threading
// results and facts between passes and collecting diagnostics with
// optional suggested fixes.
//
// Two deliberate deviations from x/tools (documented in DESIGN.md) make
// the module-scoped rules of mbpvet expressible:
//
//   - Execution is analyzer-major: an analyzer runs over every package of
//     the module (in import-topological order) before any analyzer that
//     Requires it runs at all. Facts are therefore complete across the
//     whole module, not just the import cone, by the time a dependent
//     analyzer reads them.
//   - Facts of required analyzers are readable: AllPackageFacts and
//     ImportObjectFact resolve facts exported by the pass's own analyzer
//     and by anything in its Requires closure. (x/tools restricts facts to
//     the exporting analyzer; mbpvet's registry rule needs to see export
//     facts from packages the registry does not import, which x/tools
//     cannot express at all.)
//
// Facts are shared in memory rather than serialized; the driver runs over
// one process-lifetime load of the module, so no gob round-trip is needed.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// An Analyzer is one unit of analysis: a named rule (or helper) with its
// entry point and declared dependencies.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and rule selection.
	Name string
	// Doc is the one-line description shown by rule listings.
	Doc string
	// Requires lists analyzers whose results (ResultOf) and facts this
	// analyzer reads. Required analyzers run to completion over the whole
	// module first.
	Requires []*Analyzer
	// FactTypes declares the fact types the analyzer exports. Exporting an
	// undeclared fact type is a driver error, as in x/tools.
	FactTypes []Fact
	// Run executes the analyzer on one package. The returned value is made
	// available to dependent analyzers through Pass.ResultOf.
	Run func(*Pass) (any, error)
}

// A Fact is a typed datum attached to a package or object, flowing from
// defining packages to dependent passes. Implementations must be pointers.
type Fact interface{ AFact() }

// A TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// A SuggestedFix is one machine-applicable resolution of a diagnostic: a
// message plus the text edits that implement it. Edits of one fix must not
// overlap.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	Pos token.Pos
	// End is the optional end of the flagged range (NoPos if unknown).
	End token.Pos
	// Category is the rule name; the vet layer maps it to a Finding rule.
	Category string
	Message  string
	// SuggestedFixes are optional machine-applicable resolutions.
	SuggestedFixes []SuggestedFix
}

// Package is one loaded, type-checked package presented to the driver.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Pass provides one analyzer's view of one package plus the reporting
// and fact APIs, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ResultOf maps each analyzer in Requires to its Run result for this
	// same package.
	ResultOf map[*Analyzer]any

	diags *[]Diagnostic
	store *factStore
	// readable is the Requires closure (plus the analyzer itself): the
	// namespaces whose facts this pass may read.
	readable map[*Analyzer]bool
}

// Report records a diagnostic against the pass's package.
func (p *Pass) Report(d Diagnostic) {
	if d.Category == "" {
		d.Category = p.Analyzer.Name
	}
	*p.diags = append(*p.diags, d)
}

// Reportf is Report with a formatted message and no fix.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches fact to obj in this analyzer's namespace. The
// fact type must be declared in FactTypes and obj must be non-nil.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		panic("driver: ExportObjectFact on nil object")
	}
	p.checkDeclared(fact)
	p.store.setObject(p.Analyzer, obj, fact)
}

// ImportObjectFact copies into fact the fact of fact's type attached to
// obj by this analyzer or anything in its Requires closure, reporting
// whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.store.getObject(p.readable, obj, fact)
}

// ExportPackageFact attaches fact to the pass's package.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.checkDeclared(fact)
	p.store.setPackage(p.Analyzer, p.Pkg, fact)
}

// ImportPackageFact copies into fact the fact of fact's type attached to
// pkg, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	return p.store.getPackage(p.readable, pkg, fact)
}

// PackageFact pairs a package with one fact attached to it.
type PackageFact struct {
	Package *types.Package
	Fact    Fact
}

// AllPackageFacts returns every package fact readable by this pass, across
// the whole module, in deterministic package-path order. Because execution
// is analyzer-major, facts of required analyzers are complete over all
// packages — including packages this one does not import.
func (p *Pass) AllPackageFacts() []PackageFact {
	return p.store.allPackage(p.readable)
}

// checkDeclared panics unless fact's type is declared in the analyzer's
// FactTypes, keeping fact usage honest the way x/tools does.
func (p *Pass) checkDeclared(fact Fact) {
	t := reflect.TypeOf(fact)
	for _, d := range p.Analyzer.FactTypes {
		if reflect.TypeOf(d) == t {
			return
		}
	}
	panic(fmt.Sprintf("driver: analyzer %q exports undeclared fact type %T", p.Analyzer.Name, fact))
}

// factStore holds all facts of one driver run, namespaced by analyzer.
type factStore struct {
	obj map[objKey]Fact
	pkg map[pkgKey]Fact
	// pkgOrder remembers insertion order of package facts for
	// deterministic AllPackageFacts output.
	pkgOrder []pkgKey
}

type objKey struct {
	a   *Analyzer
	obj types.Object
	t   reflect.Type
}

type pkgKey struct {
	a   *Analyzer
	pkg *types.Package
	t   reflect.Type
}

func newFactStore() *factStore {
	return &factStore{obj: make(map[objKey]Fact), pkg: make(map[pkgKey]Fact)}
}

func (s *factStore) setObject(a *Analyzer, obj types.Object, fact Fact) {
	s.obj[objKey{a, obj, reflect.TypeOf(fact)}] = fact
}

func (s *factStore) getObject(readable map[*Analyzer]bool, obj types.Object, fact Fact) bool {
	t := reflect.TypeOf(fact)
	for a := range readable {
		if got, ok := s.obj[objKey{a, obj, t}]; ok {
			copyFact(fact, got)
			return true
		}
	}
	return false
}

func (s *factStore) setPackage(a *Analyzer, pkg *types.Package, fact Fact) {
	k := pkgKey{a, pkg, reflect.TypeOf(fact)}
	if _, ok := s.pkg[k]; !ok {
		s.pkgOrder = append(s.pkgOrder, k)
	}
	s.pkg[k] = fact
}

func (s *factStore) getPackage(readable map[*Analyzer]bool, pkg *types.Package, fact Fact) bool {
	t := reflect.TypeOf(fact)
	for a := range readable {
		if got, ok := s.pkg[pkgKey{a, pkg, t}]; ok {
			copyFact(fact, got)
			return true
		}
	}
	return false
}

func (s *factStore) allPackage(readable map[*Analyzer]bool) []PackageFact {
	var out []PackageFact
	for _, k := range s.pkgOrder {
		if readable[k.a] {
			out = append(out, PackageFact{Package: k.pkg, Fact: s.pkg[k]})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Package.Path() < out[j].Package.Path()
	})
	return out
}

// copyFact copies the stored fact value into the caller's pointer, so the
// caller owns an independent view (mirroring the gob round-trip of
// x/tools without the serialization).
func copyFact(dst, src Fact) {
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer {
		panic("driver: facts must be pointers")
	}
	dv.Elem().Set(sv.Elem())
}

// Result is the outcome of one (package, analyzer) pass.
type Result struct {
	Package     *Package
	Analyzer    *Analyzer
	Diagnostics []Diagnostic
}

// Run executes analyzers (and their Requires closure) over pkgs and
// returns every pass's diagnostics. Packages run in import-topological
// order (dependencies first) so object facts resolve; analyzers run in
// Requires-topological order, each completing over the whole module before
// its dependents start (the fact-completeness guarantee the module-scoped
// rules rely on). An error from any Run aborts the whole driver run.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Result, error) {
	order, err := analyzerOrder(analyzers)
	if err != nil {
		return nil, err
	}
	pkgOrder := packageOrder(pkgs)
	store := newFactStore()

	// results[pkg][analyzer] = Run result, for ResultOf plumbing.
	results := make(map[*Package]map[*Analyzer]any, len(pkgs))
	for _, pkg := range pkgs {
		results[pkg] = make(map[*Analyzer]any)
	}

	var out []Result
	for _, a := range order {
		readable := requiresClosure(a)
		for _, pkg := range pkgOrder {
			resultOf := make(map[*Analyzer]any, len(a.Requires))
			for _, req := range a.Requires {
				resultOf[req] = results[pkg][req]
			}
			var diags []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				ResultOf:  resultOf,
				diags:     &diags,
				store:     store,
				readable:  readable,
			}
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("driver: %s on %s: %w", a.Name, pkg.Path, err)
			}
			results[pkg][a] = res
			if len(diags) > 0 {
				out = append(out, Result{Package: pkg, Analyzer: a, Diagnostics: diags})
			}
		}
	}
	return out, nil
}

// requiresClosure returns a plus everything reachable through Requires.
func requiresClosure(a *Analyzer) map[*Analyzer]bool {
	seen := make(map[*Analyzer]bool)
	var visit func(*Analyzer)
	visit = func(x *Analyzer) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, r := range x.Requires {
			visit(r)
		}
	}
	visit(a)
	return seen
}

// analyzerOrder topologically sorts the analyzers (dependencies first),
// expanding the Requires closure and rejecting cycles.
func analyzerOrder(analyzers []*Analyzer) ([]*Analyzer, error) {
	var order []*Analyzer
	state := make(map[*Analyzer]int) // 0 unseen, 1 visiting, 2 done
	var visit func(*Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("driver: Requires cycle through analyzer %q", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, r := range a.Requires {
			if err := visit(r); err != nil {
				return err
			}
		}
		state[a] = 2
		order = append(order, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// packageOrder sorts packages dependencies-first along their import edges
// (restricted to the given set), with ties broken by import path so runs
// are deterministic.
func packageOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
		paths = append(paths, p.Path)
	}
	sort.Strings(paths)

	var order []*Package
	state := make(map[string]int)
	var visit func(string)
	visit = func(path string) {
		if state[path] != 0 {
			return // visiting (import cycle: loader rejects) or done
		}
		state[path] = 1
		pkg := byPath[path]
		if pkg.Types != nil {
			imps := make([]string, 0, len(pkg.Types.Imports()))
			for _, imp := range pkg.Types.Imports() {
				if _, ok := byPath[imp.Path()]; ok {
					imps = append(imps, imp.Path())
				}
			}
			sort.Strings(imps)
			for _, imp := range imps {
				visit(imp)
			}
		}
		state[path] = 2
		order = append(order, pkg)
	}
	for _, path := range paths {
		visit(path)
	}
	return order
}
