package vet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fixtureConfig mirrors DefaultConfig for the testdata module.
func fixtureConfig() Config {
	return Config{
		RegistryPath:        "fix/predictors/registry",
		PredictorRoot:       "fix/predictors",
		ErrorPackages:       []string{"fix/codec", "fix/journal"},
		WidthPackages:       []string{"fix/codec"},
		GuardFuncs:          []string{"CanonicalAddress"},
		PanicFreePackages:   []string{"fix/codec"},
		ConcurrencyPackages: []string{"fix/conc"},
		ContextPackages:     []string{"fix/conc"},
	}
}

// fixtureMarkers scans the fixture sources for `// want <rule>` markers
// (keep is nil for all rules) and returns file:line -> expected rules plus
// the set of rules that have at least one marker.
func fixtureMarkers(prog *Program, keep map[string]bool) (want map[string][]string, rulesSeen map[string]bool) {
	want = make(map[string][]string)
	rulesSeen = make(map[string]bool)
	for _, pkg := range prog.Sorted() {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
					for _, rule := range strings.Fields(rest) {
						if keep != nil && !keep[rule] {
							continue
						}
						want[key] = append(want[key], rule)
						rulesSeen[rule] = true
					}
				}
			}
		}
	}
	return want, rulesSeen
}

// checkAgainstMarkers demands an exact match between findings and markers:
// every marker line produces exactly its rules, and no finding is unwanted.
func checkAgainstMarkers(t *testing.T, want map[string][]string, findings []Finding) {
	t.Helper()
	got := make(map[string][]string)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		got[key] = append(got[key], f.Rule)
	}
	for key, rules := range want {
		sort.Strings(rules)
		gotRules := append([]string(nil), got[key]...)
		sort.Strings(gotRules)
		if strings.Join(rules, ",") != strings.Join(gotRules, ",") {
			t.Errorf("%s: want findings %v, got %v", key, rules, gotRules)
		}
	}
	for key, rules := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unwanted findings %v", key, rules)
		}
	}
}

// TestFixtureRules loads the fixture module and checks the findings against
// the `// want <rule>` markers embedded in the sources: every marker must
// produce a finding on its line, and every finding must be wanted. The
// fixture contains a violating and a conforming case for each of V1-V5.
func TestFixtureRules(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "fix"), "fix")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	legacy := map[string]bool{
		RulePurity: true, RuleRegistry: true, RuleDroppedErr: true,
		RuleBitWidth: true, RulePanicFree: true,
	}
	want, rulesSeen := fixtureMarkers(prog, legacy)
	for rule := range legacy {
		if !rulesSeen[rule] {
			t.Errorf("fixture has no want marker for rule %s", rule)
		}
	}
	checkAgainstMarkers(t, want, Run(prog, fixtureConfig()))
}

// TestFixtureRulesAnalyzers runs all nine rules through the analyzer driver
// over the same fixture module and checks every marker, including the
// V6-V9 concurrency fixtures the legacy driver does not implement.
func TestFixtureRulesAnalyzers(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "fix"), "fix")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := RunAnalyzers(prog, fixtureConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, rulesSeen := fixtureMarkers(prog, nil)
	for _, rule := range AllRules() {
		if !rulesSeen[rule] {
			t.Errorf("fixture has no want marker for rule %s", rule)
		}
	}
	checkAgainstMarkers(t, want, findings)
}

// TestAnalyzersMatchLegacyDriver is the byte-equivalence gate for the port:
// over the fixture corpus, the analyzer driver restricted to V1-V5 must
// render exactly the findings the legacy whole-program driver renders —
// same files, lines, columns, rules, and message bytes, in the same order.
func TestAnalyzersMatchLegacyDriver(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "fix"), "fix")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	cfg := fixtureConfig()
	legacy := Run(prog, cfg)
	ported, err := RunAnalyzers(prog, cfg, []string{RulePurity, RuleRegistry, RuleDroppedErr, RuleBitWidth, RulePanicFree})
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) == 0 {
		t.Fatal("fixture corpus produced no legacy findings; equivalence test is vacuous")
	}
	render := func(fs []Finding) []string {
		out := make([]string, len(fs))
		for i, f := range fs {
			out[i] = f.String()
		}
		return out
	}
	l, p := render(legacy), render(ported)
	if len(l) != len(p) {
		t.Fatalf("legacy driver: %d findings, analyzer driver: %d\nlegacy: %v\nanalyzers: %v", len(l), len(p), l, p)
	}
	for i := range l {
		if l[i] != p[i] {
			t.Errorf("finding %d differs:\nlegacy:    %s\nanalyzers: %s", i, l[i], p[i])
		}
	}
}

// TestEveryRuleHasFixtures is the corpus meta-test: each of the nine rules
// must keep at least one violating fixture line (`// want <rule>`) and one
// conforming counterpart (a `// negative <rule>` comment), so a regressed
// rule cannot pass by matching nothing.
func TestEveryRuleHasFixtures(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "fix"), "fix")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	_, positives := fixtureMarkers(prog, nil)
	negatives := make(map[string]bool)
	for _, pkg := range prog.Sorted() {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if rest, ok := strings.CutPrefix(c.Text, "// negative "); ok {
						for _, rule := range strings.Fields(rest) {
							negatives[rule] = true
						}
					}
				}
			}
		}
	}
	for _, rule := range AllRules() {
		if !positives[rule] {
			t.Errorf("rule %s has no positive fixture (`// want %s` marker)", rule, rule)
		}
		if !negatives[rule] {
			t.Errorf("rule %s has no negative fixture (`// negative %s` comment)", rule, rule)
		}
	}
}

// TestRepositoryIsClean runs the analyzer over this repository with the
// production configuration — the same invocation CI uses — and demands
// zero findings. Any genuine violation added to the tree fails this test
// before it fails CI.
func TestRepositoryIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	module, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root, module)
	if err != nil {
		t.Fatalf("loading %s: %v", root, err)
	}
	for _, f := range Run(prog, DefaultConfig(module)) {
		t.Errorf("unexpected finding: %s", f)
	}
	findings, err := RunAnalyzers(prog, DefaultConfig(module), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected analyzer finding: %s", f)
	}
}

// TestDirectivesRequireJustification checks that a bare suppression is not
// honored: the original finding survives and the malformed directive is
// itself reported.
func TestDirectivesRequireJustification(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "codec/codec.go", `
// Package codec is a directive-test fixture.
package codec

import "io"

// Drop discards an error under an unjustified suppression.
func Drop(w io.Writer) {
	//mbpvet:ignore droppederr
	w.Write(nil)
}
`)
	prog, err := Load(dir, "tmpfix")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{ErrorPackages: []string{"tmpfix/codec"}}
	findings := Run(prog, cfg)
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (malformed directive + surviving droppederr), got %v", findings)
	}
	var haveMalformed, haveDropped bool
	for _, f := range findings {
		if strings.Contains(f.Msg, "needs a rule and justification") {
			haveMalformed = true
		}
		if f.Rule == RuleDroppedErr && strings.Contains(f.Msg, "discarded") {
			haveDropped = true
		}
	}
	if !haveMalformed || !haveDropped {
		t.Errorf("findings missing expected pair: %v", findings)
	}
}

// TestPanicFreeExemptRequiresJustification checks the panicfree escape
// hatch: a bare //mbpvet:panicfree-exempt is reported as malformed and the
// panic finding it tried to cover survives.
func TestPanicFreeExemptRequiresJustification(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "codec/codec.go", `
// Package codec is a directive-test fixture.
package codec

// Decode panics under an unjustified exemption.
func Decode(b []byte) byte {
	if len(b) == 0 {
		//mbpvet:panicfree-exempt
		panic("empty")
	}
	return b[0]
}
`)
	prog, err := Load(dir, "tmpfix")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{PanicFreePackages: []string{"tmpfix/codec"}}
	findings := Run(prog, cfg)
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (malformed directive + surviving panicfree), got %v", findings)
	}
	var haveMalformed, havePanic bool
	for _, f := range findings {
		if strings.Contains(f.Msg, "needs a justification") {
			haveMalformed = true
		}
		if f.Rule == RulePanicFree && strings.Contains(f.Msg, "untrusted input") {
			havePanic = true
		}
	}
	if !haveMalformed || !havePanic {
		t.Errorf("findings missing expected pair: %v", findings)
	}
}

// TestImpureDirectiveRequiresJustification mirrors the check for the
// purity escape hatch.
func TestImpureDirectiveRequiresJustification(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "pred/pred.go", `
// Package pred is a directive-test fixture.
package pred

// B is the branch stub.
type B struct{ Taken bool }

// P caches in Predict without justifying it.
type P struct{ last uint64 }

// Predict is annotated but the annotation carries no reason.
//
//mbpvet:impure
func (p *P) Predict(ip uint64) bool { p.last = ip; return true }

// Train implements the contract.
func (p *P) Train(b B) {}

// Track implements the contract.
func (p *P) Track(b B) {}
`)
	prog, err := Load(dir, "tmpfix")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(prog, Config{})
	var haveMalformed, havePurity bool
	for _, f := range findings {
		if strings.Contains(f.Msg, "needs a justification") {
			haveMalformed = true
		}
		if f.Rule == RulePurity && strings.Contains(f.Msg, "mutates predictor state") {
			havePurity = true
		}
	}
	if !haveMalformed || !havePurity {
		t.Errorf("want malformed-directive and purity findings, got %v", findings)
	}
}

func writeFixture(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.TrimPrefix(content, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
}
