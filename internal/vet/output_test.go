package vet

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden output files")

// fixtureFindings loads the fixture corpus through the analyzer driver and
// returns the findings plus the absolute root the output paths are
// relative to.
func fixtureFindings(t *testing.T) ([]Finding, string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "fix"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root, "fix")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := RunAnalyzers(prog, fixtureConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return findings, root
}

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (regenerate with -update):\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestGoldenJSON locks the -json rendering of the full fixture corpus.
func TestGoldenJSON(t *testing.T) {
	findings, root := fixtureFindings(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, findings, root); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findings.json", buf.Bytes())
}

// TestGoldenSARIF locks the -sarif rendering of the full fixture corpus.
func TestGoldenSARIF(t *testing.T) {
	findings, root := fixtureFindings(t)
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings, root); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findings.sarif", buf.Bytes())
}

// TestSARIFStructure validates the SARIF document against the structural
// requirements of the 2.1.0 spec that code-scanning consumers rely on:
// schema URI and version, tool metadata with the full rule catalogue, and
// per-result ruleIndex/location invariants. (An offline container cannot
// run the official JSON-schema validator; these are the load-bearing
// constraints it would check.)
func TestSARIFStructure(t *testing.T) {
	findings, root := fixtureFindings(t)
	if len(findings) == 0 {
		t.Fatal("fixture corpus produced no findings; SARIF structure test is vacuous")
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings, root); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
			ColumnKind string `json:"columnKind"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if doc.Schema != sarifSchema {
		t.Errorf("$schema = %q, want %q", doc.Schema, sarifSchema)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "mbpvet" {
		t.Errorf("tool name = %q, want mbpvet", run.Tool.Driver.Name)
	}
	if run.ColumnKind != "utf16CodeUnits" {
		t.Errorf("columnKind = %q, want utf16CodeUnits", run.ColumnKind)
	}
	if len(run.Tool.Driver.Rules) != len(AllRules()) {
		t.Errorf("rule catalogue has %d entries, want %d", len(run.Tool.Driver.Rules), len(AllRules()))
	}
	for i, r := range run.Tool.Driver.Rules {
		if r.ID != AllRules()[i] {
			t.Errorf("rule %d id = %q, want %q", i, r.ID, AllRules()[i])
		}
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
	}
	if len(run.Results) != len(findings) {
		t.Errorf("results = %d, want %d", len(run.Results), len(findings))
	}
	for i, res := range run.Results {
		if res.Level != "error" {
			t.Errorf("result %d level = %q, want error", i, res.Level)
		}
		if res.Message.Text == "" {
			t.Errorf("result %d has an empty message", i)
		}
		if res.RuleIndex >= 0 {
			if res.RuleIndex >= len(AllRules()) || AllRules()[res.RuleIndex] != res.RuleID {
				t.Errorf("result %d ruleIndex %d does not match ruleId %q", i, res.RuleIndex, res.RuleID)
			}
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("result %d uriBaseId = %q, want %%SRCROOT%%", i, loc.ArtifactLocation.URIBaseID)
		}
		if strings.Contains(loc.ArtifactLocation.URI, "\\") || filepath.IsAbs(loc.ArtifactLocation.URI) {
			t.Errorf("result %d uri %q is not a relative forward-slash path", i, loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine < 1 {
			t.Errorf("result %d startLine = %d, want >= 1", i, loc.Region.StartLine)
		}
	}
}

// TestApplyFixes exercises the -fix pipeline on a throwaway module: the
// atomic and ctxprop suggested fixes must rewrite the sources so that a
// re-run reports nothing.
func TestApplyFixes(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "sim/sim.go", `
// Package sim is the autofix fixture.
package sim

import (
	"context"
	"sync/atomic"
)

// Counter mixes atomic and plain access.
type Counter struct {
	n uint64
}

// Add is atomic.
func (c *Counter) Add() { atomic.AddUint64(&c.n, 1) }

// Get reads plainly; the fix rewrites it to atomic.LoadUint64.
func (c *Counter) Get() uint64 { return c.n }

// Reset writes plainly; the fix rewrites it to atomic.StoreUint64.
func (c *Counter) Reset() { c.n = 0 }

// Wait detaches its context; the fix substitutes the parameter.
func Wait(ctx context.Context) error {
	return block(context.Background())
}

func block(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
`)
	cfg := Config{
		ConcurrencyPackages: []string{"tmpfix/sim"},
		ContextPackages:     []string{"tmpfix/sim"},
	}
	prog, err := Load(dir, "tmpfix")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(prog, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	fixable := 0
	for _, f := range findings {
		if f.Fix != nil {
			fixable++
		}
	}
	if fixable != 3 {
		t.Fatalf("want 3 fixable findings (load, store, context), got %d of %d: %v", fixable, len(findings), findings)
	}
	changed, err := ApplyFixes(prog.Fset, findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || filepath.Base(changed[0]) != "sim.go" {
		t.Fatalf("changed files = %v, want exactly sim.go", changed)
	}
	src, err := os.ReadFile(filepath.Join(dir, "sim", "sim.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"atomic.LoadUint64(&c.n)", "atomic.StoreUint64(&c.n, 0)", "block(ctx)"} {
		if !strings.Contains(string(src), want) {
			t.Errorf("fixed source missing %q:\n%s", want, src)
		}
	}
	reprog, err := Load(dir, "tmpfix")
	if err != nil {
		t.Fatalf("fixed module no longer loads: %v", err)
	}
	refindings, err := RunAnalyzers(reprog, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(refindings) != 0 {
		t.Errorf("findings survive the fixes: %v", refindings)
	}
}

// TestRunAnalyzersUnknownRule pins the rule-selection error contract the
// CLI exit code depends on.
func TestRunAnalyzersUnknownRule(t *testing.T) {
	root, err0 := filepath.Abs(filepath.Join("testdata", "fix"))
	if err0 != nil {
		t.Fatal(err0)
	}
	prog, err := Load(root, "fix")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunAnalyzers(prog, fixtureConfig(), []string{"nosuchrule"})
	var unknown *UnknownRuleError
	if !errors.As(err, &unknown) {
		t.Fatalf("RunAnalyzers(unknown rule) error = %v, want *UnknownRuleError", err)
	}
	if !strings.Contains(err.Error(), "nosuchrule") {
		t.Errorf("error %q does not name the bad rule", err)
	}
	if got, err := RunAnalyzers(prog, fixtureConfig(), []string{"v7"}); err != nil {
		t.Fatal(err)
	} else {
		for _, f := range got {
			if f.Rule != RuleGuardedBy {
				t.Errorf("rules [v7] produced a %s finding: %s", f.Rule, f)
			}
		}
	}
}
