package vet

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Rule V3 — dropped errors: in the trace codec and simulator packages, an
// error result must never be silently discarded. The SBBT and BT9 readers
// signal mid-record EOF through bp.ErrTruncated; a discarded error on that
// path turns a corrupt trace into a silently shortened simulation, which is
// the worst possible failure mode for an experiment.
//
// Two patterns are exempt on principle: fmt.Fprint/Fprintf/Fprintln into a
// *bufio.Writer, bytes.Buffer or strings.Builder — their write errors are
// sticky (bufio) or impossible (in-memory buffers), and the codecs check
// the buffered writer's Flush, where a sticky error surfaces — and direct
// Write* method calls on a bytes.Buffer or strings.Builder receiver, whose
// error results are documented to always be nil.
func checkDroppedErrors(prog *Program, cfg Config) []Finding {
	var findings []Finding
	for _, pkg := range prog.Sorted() {
		if !hasPathPrefix(pkg.Path, cfg.ErrorPackages) {
			continue
		}
		findings = append(findings, renderFindings(prog.Fset, droppedErrorFindings(pkg.Files, pkg.Info))...)
	}
	return findings
}

// droppedErrorFindings is the per-package body shared by the legacy driver
// and the droppederr analyzer.
func droppedErrorFindings(files []*ast.File, info *types.Info) []rawFinding {
	var findings []rawFinding
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					findings = append(findings, discardedCall(info, call, "result of %s discarded")...)
				}
			case *ast.DeferStmt:
				findings = append(findings, discardedCall(info, n.Call, "deferred %s discards its error")...)
			case *ast.GoStmt:
				findings = append(findings, discardedCall(info, n.Call, "go %s discards its error")...)
			case *ast.AssignStmt:
				findings = append(findings, blankError(info, n)...)
			}
			return true
		})
	}
	return findings
}

// discardedCall flags a call statement whose last result is an error.
func discardedCall(info *types.Info, call *ast.CallExpr, format string) []rawFinding {
	tv, ok := info.Types[call]
	if !ok || !lastResultIsError(tv.Type) {
		return nil
	}
	if isExemptPrinter(info, call) || isInMemoryWrite(info, call) {
		return nil
	}
	return []rawFinding{{
		pos:  call.Pos(),
		rule: RuleDroppedErr,
		msg:  fmt.Sprintf(format+" — handle it or annotate with //mbpvet:ignore %s", callName(call), RuleDroppedErr),
	}}
}

// blankError flags `_` in the position of an error result, including the
// explicit `_ = f()` discard.
func blankError(info *types.Info, n *ast.AssignStmt) []rawFinding {
	var findings []rawFinding
	flag := func(pos ast.Node, what string) {
		findings = append(findings, rawFinding{
			pos:  pos.Pos(),
			rule: RuleDroppedErr,
			msg:  fmt.Sprintf("error result of %s assigned to _ — handle it or annotate with //mbpvet:ignore %s", what, RuleDroppedErr),
		})
	}
	// Multi-value form: x, _ := f().
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		call, ok := n.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil
		}
		tuple, ok := info.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(n.Lhs) {
			return nil
		}
		for i, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && isErrorType(tuple.At(i).Type()) {
				if !isExemptPrinter(info, call) && !isInMemoryWrite(info, call) {
					flag(n, callName(call))
				}
			}
		}
		return findings
	}
	// Parallel form: _ = f(), possibly mixed into a multi-assign.
	for i, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || i >= len(n.Rhs) {
			continue
		}
		if tv, ok := info.Types[n.Rhs[i]]; ok && isErrorType(tv.Type) {
			flag(n, "expression")
		}
	}
	return findings
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error" && types.IsInterface(t)
}

func lastResultIsError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		return tuple.Len() > 0 && isErrorType(tuple.At(tuple.Len()-1).Type())
	}
	return isErrorType(t)
}

// isExemptPrinter reports whether call is fmt.Fprint{,f,ln} writing into a
// sticky-error or in-memory writer.
func isExemptPrinter(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, ok := info.Uses[id].(*types.PkgName); !ok || obj.Imported().Path() != "fmt" {
		return false
	}
	if !strings.HasPrefix(sel.Sel.Name, "Fprint") {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok {
		return false
	}
	return interfaceNamed(tv.Type, "bufio", "Writer") ||
		interfaceNamed(tv.Type, "bytes", "Buffer") ||
		interfaceNamed(tv.Type, "strings", "Builder")
}

// isInMemoryWrite reports whether call is one of the self-contained write
// methods on a bytes.Buffer or strings.Builder receiver. Their error results
// are documented to always be nil (growing the buffer panics on overflow
// instead), so a discarded error there carries no information. WriteTo is
// deliberately not in the set: it writes to an external io.Writer and its
// error is real.
func isInMemoryWrite(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	return interfaceNamed(tv.Type, "bytes", "Buffer") ||
		interfaceNamed(tv.Type, "strings", "Builder")
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
