// Package journal is the mbpvet fixture for the dropped-error rule over
// durability code: the crash-safety journal's contract is only as strong as
// its fsync and close paths, so a discarded error there silently converts
// "committed" into "maybe committed". Every marked line is a violation,
// every unmarked one a conforming counterpart the rule must stay silent on.
package journal

import (
	"bytes"
	"io"
	"os"
)

// AppendSloppy models the broken append path: the data write is checked but
// both durability points — the fsync and the rotation close — discard their
// errors, so a full disk or dying device looks like a successful commit.
func AppendSloppy(f *os.File, frame []byte) error {
	if _, err := f.Write(frame); err != nil {
		return err
	}
	f.Sync()             // want droppederr
	defer f.Close()      // want droppederr
	_ = f.Sync()         // want droppederr
	n, _ := f.Seek(0, 2) // want droppederr
	_ = n
	return nil
}

// negative droppederr
// AppendDurable is the conforming counterpart: the fsync error is returned,
// and the deferred close reports through the named result without masking an
// earlier failure — the idiom the real journal uses on segment rotation.
func AppendDurable(f *os.File, frame []byte) (err error) {
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if _, err := f.Write(frame); err != nil {
		return err
	}
	return f.Sync()
}

// EncodeFrame exercises the in-memory write exemption: bytes.Buffer and
// strings.Builder Write* methods always return a nil error, so discarding it
// is silent — but WriteTo drains into an external writer and stays flagged.
func EncodeFrame(w io.Writer, key, payload []byte) {
	var buf bytes.Buffer
	buf.WriteString(`{"key":`) // exempt: in-memory write cannot fail
	buf.Write(key)             // exempt: in-memory write cannot fail
	buf.WriteByte(',')         // exempt: in-memory write cannot fail
	n, _ := buf.Write(payload) // exempt: in-memory write cannot fail
	_ = n
	buf.WriteTo(w) // want droppederr
}
