// Package impure documents a deliberate Predict-side cache with the
// //mbpvet:impure escape hatch, proving the directive silences the purity
// rule when it carries a justification.
package impure

import "fix/bp"

// Predictor memoizes its last prediction.
type Predictor struct {
	lastIP   uint64
	lastPred bool
}

// New returns the annotated predictor.
func New() *Predictor { return &Predictor{} }

// Predict implements the contract with a documented memoization cache.
//
//mbpvet:impure fixture: memoization cache is invalidated by Track and never changes an observable prediction
func (p *Predictor) Predict(ip uint64) bool {
	p.lastIP = ip
	p.lastPred = ip&1 == 0
	return p.lastPred
}

func (p *Predictor) Train(b bp.Branch) {}
func (p *Predictor) Track(b bp.Branch) { p.lastIP = 0 }
