// Package missing is a perfectly conforming predictor that the registry
// forgot to import — the situation the registry rule exists to catch.
package missing

import "fix/bp"

// Predictor predicts taken for even addresses.
type Predictor struct{}

// New returns the unregistered predictor.
func New() *Predictor { return &Predictor{} }

func (p *Predictor) Predict(ip uint64) bool { return ip&1 == 0 }
func (p *Predictor) Train(b bp.Branch)      {}
func (p *Predictor) Track(b bp.Branch)      {}
