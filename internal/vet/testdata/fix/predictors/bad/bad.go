// Package bad holds purity-rule violations: each type implements the
// Predictor shape and mutates receiver state on a different path that the
// analysis must see through.
package bad

import "fix/bp"

// Predictor writes a receiver field directly inside Predict.
type Predictor struct {
	table []int8
	ghist uint64
}

// New returns the direct-write violator.
func New() *Predictor { return &Predictor{table: make([]int8, 1024)} }

func (p *Predictor) Predict(ip uint64) bool { // want purity
	p.ghist <<= 1
	return p.table[ip&1023] >= 0
}

func (p *Predictor) Train(b bp.Branch) {
	if b.Taken {
		p.table[b.IP&1023]++
	}
}

func (p *Predictor) Track(b bp.Branch) {}

// Scanner mutates through a helper method, so the violation is only
// visible through the call-graph summaries.
type Scanner struct {
	hits  uint64
	table []int8
}

// NewScanner returns the transitive violator.
func NewScanner() *Scanner { return &Scanner{table: make([]int8, 64)} }

func (s *Scanner) Predict(ip uint64) bool { // want purity
	return s.scan(ip)
}

func (s *Scanner) scan(ip uint64) bool {
	s.hits++
	return s.table[ip&63] >= 0
}

func (s *Scanner) Train(b bp.Branch) {}
func (s *Scanner) Track(b bp.Branch) {}

// Aliaser writes through a pointer that a helper derived from the
// receiver, so the violation is only visible through taint tracking.
type Aliaser struct {
	cache lookup
}

type lookup struct {
	idx  uint64
	pred bool
}

// NewAliaser returns the aliased-write violator.
func NewAliaser() *Aliaser { return &Aliaser{} }

func (a *Aliaser) cached() *lookup { return &a.cache }

func (a *Aliaser) Predict(ip uint64) bool { // want purity
	l := a.cached()
	l.idx = ip
	return l.pred
}

func (a *Aliaser) Train(b bp.Branch) {}
func (a *Aliaser) Track(b bp.Branch) {}

// Grower appends into a receiver-owned slice, which can write into its
// backing array.
type Grower struct {
	hist []bool
}

// NewGrower returns the append violator.
func NewGrower() *Grower { return &Grower{} }

func (g *Grower) Predict(ip uint64) bool { // want purity
	g.hist = append(g.hist, ip&1 == 0)
	return len(g.hist)%2 == 0
}

func (g *Grower) Train(b bp.Branch) {}
func (g *Grower) Track(b bp.Branch) {}

// Batcher ships the optional batched read path but shifts its history
// register inside PredictBatch, which V1 must flag exactly like a mutating
// Predict — the batched read is Predict-many-times in one call.
type Batcher struct {
	table []int8
	ghist uint64
}

// NewBatcher returns the batched-read violator.
func NewBatcher() *Batcher { return &Batcher{table: make([]int8, 1024)} }

func (p *Batcher) Predict(ip uint64) bool {
	return p.table[(ip^p.ghist)&1023] >= 0
}

func (p *Batcher) PredictBatch(branches []bp.Branch, out []bool) { // want purity
	for i := range branches {
		out[i] = p.Predict(branches[i].IP)
		p.ghist <<= 1
	}
}

func (p *Batcher) TrainBatch(branches []bp.Branch, out []bool) {}

func (p *Batcher) Train(b bp.Branch) {}
func (p *Batcher) Track(b bp.Branch) {}
