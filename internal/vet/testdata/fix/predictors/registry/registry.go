// Package registry constructs fixture predictors by name. It imports
// good, bad and impure but not missing, so the registry-completeness rule
// must report exactly one finding here.
package registry // want registry

import (
	"fix/bp"
	"fix/predictors/bad"
	"fix/predictors/good"
	"fix/predictors/impure"
)

// New builds the named fixture predictor, or nil.
func New(name string) bp.Predictor {
	switch name {
	case "good":
		return good.New(nil)
	case "bad":
		return bad.New()
	case "impure":
		return impure.New()
	}
	return nil
}
