// Package good is a conforming predictor: its Predict only reads receiver
// state, calls pure helpers (including a pointer-receiver getter, which the
// method summaries must prove harmless), and consults a sub-predictor
// through the interface Predict call that the contract guarantees is pure.
package good

import "fix/bp"

type counter struct {
	v int8
}

// get has a pointer receiver but never writes; the summary analysis must
// not confuse receiver kind with mutation.
func (c *counter) get() int8 { return c.v }

// negative purity
// negative registry
// Predictor is pure and registered.
type Predictor struct {
	table []counter
	inner bp.Predictor
}

// New returns a conforming predictor.
func New(inner bp.Predictor) *Predictor {
	return &Predictor{table: make([]counter, 1<<6), inner: inner}
}

func (p *Predictor) hash(ip uint64) uint64 {
	return (ip * 0x9e3779b97f4a7c15) & uint64(len(p.table)-1)
}

func (p *Predictor) Predict(ip uint64) bool {
	if p.inner != nil && p.inner.Predict(ip) {
		return p.table[p.hash(ip)].get() >= 0
	}
	return p.hash(ip)&1 == 0
}

func (p *Predictor) Train(b bp.Branch) {
	e := &p.table[p.hash(b.IP)]
	if b.Taken {
		e.v++
	} else {
		e.v--
	}
}

func (p *Predictor) Track(b bp.Branch) {}

// negative purity
// Kernel ships the optional batched read and update paths: PredictBatch
// only reads receiver state, while TrainBatch mutates it — which is the
// fused kernel's contract, not a V1 violation.
type Kernel struct {
	table []counter
}

// NewKernel returns a conforming batch-kernel predictor.
func NewKernel() *Kernel { return &Kernel{table: make([]counter, 1<<6)} }

func (k *Kernel) Predict(ip uint64) bool {
	return k.table[ip&63].get() >= 0
}

func (k *Kernel) PredictBatch(branches []bp.Branch, out []bool) {
	for i := range branches {
		out[i] = k.Predict(branches[i].IP)
	}
}

func (k *Kernel) TrainBatch(branches []bp.Branch, out []bool) {
	for i := range branches {
		out[i] = k.Predict(branches[i].IP)
		k.Train(branches[i])
	}
}

func (k *Kernel) Train(b bp.Branch) {
	e := &k.table[b.IP&63]
	if b.Taken {
		e.v++
	} else {
		e.v--
	}
}

func (k *Kernel) Track(b bp.Branch) {}
