// Package codec is the mbpvet fixture for the dropped-error and bit-width
// rules: every marked line is a violation, every unmarked one a conforming
// counterpart the rules must stay silent on.
package codec

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

func sink(w io.Writer) error {
	_, err := w.Write([]byte("x"))
	return err
}

// DropAll exercises every discarded-error form the rule recognizes.
func DropAll(w io.Writer, f interface{ Close() error }) {
	w.Write([]byte("x"))           // want droppederr
	fmt.Fprintf(w, "plain writer") // want droppederr
	defer f.Close()                // want droppederr
	go sink(w)                     // want droppederr
	n, _ := w.Write([]byte("y"))   // want droppederr
	_ = n
	_ = sink(w) // want droppederr
}

// negative droppederr
// HandleAll is the conforming counterpart: checked errors, the exempt
// Fprint-to-buffered-writer idiom, and a justified suppression.
func HandleAll(w io.Writer, bw *bufio.Writer) error {
	fmt.Fprintln(bw, "header") // exempt: bufio errors are sticky, surfaced by Flush
	var sb strings.Builder
	fmt.Fprintf(&sb, "meta") // exempt: in-memory writer cannot fail
	if _, err := w.Write([]byte(sb.String())); err != nil {
		return err
	}
	sink(w) //mbpvet:ignore droppederr -- fixture: justified suppressions are honored
	return bw.Flush()
}

const addrShift = 12

// CanonicalAddress mirrors the sbbt guard predicate.
func CanonicalAddress(a uint64) bool {
	top := int64(a) >> 51
	return top == 0 || top == -1
}

// EncodeLossy packs fields without any width protection.
func EncodeLossy(ip uint64, op uint16) uint64 {
	b := ip << addrShift   // want bitwidth
	b |= uint64(uint8(op)) // want bitwidth
	return b
}

// negative bitwidth
// EncodeSafe is the conforming counterpart: masked, shifted, guarded or
// bounds-checked operands.
func EncodeSafe(ip uint64, op uint16, gap uint64) uint64 {
	if !CanonicalAddress(ip) {
		return 0
	}
	if op > 0xff {
		return 0
	}
	b := ip << addrShift         // guarded by CanonicalAddress above
	b |= (gap & 0xfff) << 52     // masked to 12 bits before the shift
	b |= uint64(uint8(op & 0xf)) // masked to the opcode width
	b |= uint64(uint8(op >> 8))  // shift leaves 8 bits
	return b | uint64(uint8(op)) // bounds-checked above
}

// NewTable allocates a mask-indexed table from an arbitrary size — the
// power-of-two rule must object.
func NewTable(n int) []int8 {
	t := make([]int8, n) // want bitwidth
	mask := n - 1
	_ = mask
	return t
}

// NewTablePow2 is the conforming counterpart.
func NewTablePow2(logSize int) []int8 {
	t := make([]int8, 1<<logSize)
	mask := 1<<logSize - 1
	_ = mask
	return t
}

// DecodePanicky rejects bad input by crashing — the panicfree rule must
// object: a codec fed untrusted bytes may only return errors.
func DecodePanicky(b []byte) byte {
	if len(b) == 0 {
		panic("codec: empty input") // want panicfree
	}
	return b[0]
}

// negative panicfree
// maskFor keeps an internal-invariant panic under a justified exemption:
// every call site passes a compile-time constant, no input reaches it.
func maskFor(width int) uint64 {
	if width <= 0 || width > 63 {
		//mbpvet:panicfree-exempt width is a call-site constant, never input data
		panic("codec: invalid mask width")
	}
	return 1<<width - 1
}

// DecodeShadowed calls a local closure that shadows the builtin; the rule
// resolves identifiers through go/types and must stay silent here.
func DecodeShadowed(b []byte) uint64 {
	panic := func(string) {} // shadows the builtin in this scope
	if len(b) == 0 {
		panic("not the builtin")
		return 0
	}
	return uint64(b[0]) & maskFor(8)
}
