// Package bp is the branch-model stub for the mbpvet fixtures: just enough
// shape for the analyzer's structural Predictor detection.
package bp

// Branch is the resolved-branch record.
type Branch struct {
	IP     uint64
	Target uint64
	Taken  bool
}

// Predictor is the contract the purity rule enforces.
type Predictor interface {
	Predict(ip uint64) bool
	Train(b Branch)
	Track(b Branch)
}
