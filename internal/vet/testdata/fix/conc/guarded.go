package conc

import "sync"

// Hits is the locked-field fixture: n's guard is inferred from Add's locked
// write, label's guard is declared by annotation.
type Hits struct {
	mu sync.Mutex
	n  int

	// label is set by an external configurator before readers start, but
	// the declared guard still binds every method access.
	//
	//mbpvet:guardedby mu
	label string
}

// Add locks mu and writes n, so n is inferred to be guarded by mu.
func (h *Hits) Add() {
	h.mu.Lock()
	h.n++
	h.mu.Unlock()
}

// Peek reads the inferred-guarded counter without the lock.
func (h *Hits) Peek() int {
	return h.n // want guardedby
}

// Label reads the declared-guarded field without the lock.
func (h *Hits) Label() string {
	return h.label // want guardedby
}

// negative guardedby
// Snapshot locks before touching guarded state.
func (h *Hits) Snapshot() (int, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n, h.label
}

// negative guardedby
// bumpLocked asserts caller-held locking through its name suffix.
func (h *Hits) bumpLocked() { h.n++ }

// reset asserts caller-held locking through its doc directive.
// negative guardedby
//
//mbpvet:guardedby mu
func (h *Hits) reset() {
	h.n = 0
	h.label = ""
}

// Node exercises the back-pointer guard shape (tracecache.Entry's): its
// field is guarded by the owning struct's mutex, reached through a pointer.
type Node struct {
	owner *Hits

	//mbpvet:guardedby owner.mu
	score int
}

// negative guardedby
// Bump locks through the back-pointer before writing.
func (n *Node) Bump() {
	n.owner.mu.Lock()
	n.score++
	n.owner.mu.Unlock()
}

// Score reads the back-pointer-guarded field without any lock.
func (n *Node) Score() int {
	return n.score // want guardedby
}

// keep the caller-holds helpers alive for the type checker.
var _ = (*Hits).bumpLocked
var _ = (*Hits).reset
