package conc

import (
	"context"
	"time"
)

// Detach consults its context but detaches everything below it with a
// fresh root.
func Detach(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return wait(context.Background()) // want ctxprop
}

// Fresh severs cancellation with a TODO root despite holding a context.
func Fresh(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return wait(context.TODO()) // want ctxprop
}

// Drop receives a context and never threads it anywhere.
func Drop(ctx context.Context, d time.Duration) { // want ctxprop
	time.Sleep(d)
}

// negative ctxprop
// wait threads its context into the blocking select.
func wait(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// negative ctxprop
// Uncancellable declares itself so with a blank parameter.
func Uncancellable(_ context.Context, d time.Duration) {
	time.Sleep(d)
}

// negative ctxprop
// Root has no context parameter, so creating the root is its job.
func Root() context.Context {
	return context.Background()
}
