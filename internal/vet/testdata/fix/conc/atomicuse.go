package conc

import "sync/atomic"

// Ticker mixes atomic and plain access to its counter, and places the
// 64-bit field after a 32-bit one so 386 layout misaligns it.
type Ticker struct {
	gate  uint32
	ticks uint64 // want atomic
}

// negative atomic
// Tick advances the counter atomically.
func (t *Ticker) Tick() { atomic.AddUint64(&t.ticks, 1) }

// negative atomic
// Arm opens the gate atomically.
func (t *Ticker) Arm() { atomic.StoreUint32(&t.gate, 1) }

// negative atomic
// Armed loads the gate atomically.
func (t *Ticker) Armed() bool { return atomic.LoadUint32(&t.gate) == 1 }

// Racy reads the atomically-written counter plainly.
func (t *Ticker) Racy() uint64 {
	return t.ticks // want atomic
}

// Reset writes the atomically-read counter plainly.
func (t *Ticker) Reset() {
	t.ticks = 0 // want atomic
}

// Meter is the conforming counterpart: the 64-bit field leads the struct,
// aligned under every layout, and every access goes through sync/atomic.
type Meter struct {
	total uint64 // negative atomic
	open  uint32
}

// negative atomic
// Observe adds atomically.
func (m *Meter) Observe(n uint64) { atomic.AddUint64(&m.total, n) }

// negative atomic
// Total loads atomically.
func (m *Meter) Total() uint64 { return atomic.LoadUint64(&m.total) }

// negative atomic
// Open touches a field that is never accessed atomically: plain access to
// plain fields is out of scope.
func (m *Meter) Open() uint32 {
	m.open++
	return m.open
}
