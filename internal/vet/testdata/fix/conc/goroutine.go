// Package conc is the mbpvet fixture for the concurrency rules (V6-V9):
// every `// want <rule>` line is a violation, every `// negative <rule>`
// comment marks a conforming counterpart the rules must stay silent on.
package conc

import "sync"

// LeakPlain launches a named function with no join or cancel path.
func LeakPlain() {
	go spin() // want goroutine
}

// spin holds no lifecycle evidence of any kind.
func spin() {
	for i := 0; i < 1000; i++ {
		_ = i
	}
}

// LeakLit launches a function literal with no join or cancel path.
func LeakLit(n *int) {
	go func() { // want goroutine
		*n++
	}()
}

// LeakDynamic launches a stored function value; the analyzer cannot see
// into it and reports conservatively.
func LeakDynamic(fn func()) {
	go fn() // want goroutine
}

// negative goroutine
// JoinWaitGroup joins through a WaitGroup: Done in the goroutine, Wait in
// the owner.
func JoinWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		spin()
	}()
	wg.Wait()
}

// negative goroutine
// JoinClose signals completion by closing the channel the owner drains.
func JoinClose() <-chan int {
	ch := make(chan int, 1)
	go func() {
		defer close(ch)
		ch <- 1
	}()
	return ch
}

// negative goroutine
// JoinHelper delegates to a same-package helper that carries the evidence.
func JoinHelper(ch chan int) {
	go produce(ch)
}

// produce closes its channel when done: the owner joins by draining it.
func produce(ch chan int) {
	defer close(ch)
	ch <- 42
}

// negative goroutine
// Exempted is a deliberately process-long goroutine, declared as such.
func Exempted() {
	//mbpvet:goroutine-exempt process-long flusher by design, exits with the process
	go spin()
}
