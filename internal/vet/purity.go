package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Rule V1 — Predict purity (§IV-A): a Predict method of any type that
// implements the Predictor shape (Predict(uint64) bool / Train(B) /
// Track(B)) must not modify state reachable from its receiver, because the
// simulator and every meta-predictor are entitled to call Predict any
// number of times without perturbing future predictions.
//
// The analysis is a whole-program fixpoint over per-method summaries:
// for every method of every module package it computes whether the method
// writes through its receiver (directly, through a receiver-derived local,
// or by calling another method that does). Interface method calls cannot be
// resolved statically; a call to an interface method named Predict is
// trusted (the contract is enforced on every implementation), anything else
// reachable from the receiver is treated conservatively as a write.
//
// Documented exceptions — prediction memoization caches are the classic
// case — are declared with a justified //mbpvet:impure doc-comment
// directive on the Predict method.

// The rule also covers the optional batched read path: a PredictBatch
// method matching the bp.BatchPredictor shape is Predict-many-times in one
// call and inherits the exact same obligation. TrainBatch is the fused
// update kernel and is expected to mutate, so it stays out of scope.

// Shared V1 message templates. The legacy whole-program driver and the
// analyzer port must render byte-identical findings (an equivalence test
// compares their output verbatim), so both format through these constants.
const (
	msgPredictImpure      = "Predict of %s mutates predictor state (%s); §IV-A requires Predict to be repeatable — fix it or document with //mbpvet:impure"
	msgPredictBatchImpure = "PredictBatch of %s mutates predictor state (%s); the batched read path must be as repeatable as Predict (§IV-A) — fix it or document with //mbpvet:impure"
)

// methodInfo is the analysis state of one function or method declaration.
type methodInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
	recv *types.Var // receiver object, nil for plain functions
	// writes is true once the method is known to mutate receiver state.
	writes bool
	// writeNote describes the first discovered mutation, for reporting.
	writeNote string
	// returnsRecvRef is true if the method may return a pointer, slice or
	// map that aliases receiver state (e.g. a lookup-cache accessor).
	returnsRecvRef bool
}

// methodSummary is the callee-facing view of a method: everything a caller's
// scan needs to judge its own purity. The legacy whole-program driver
// resolves summaries from its module-wide map; the analyzer port resolves
// local methods directly and imported ones through driver object facts.
type methodSummary struct {
	writes         bool
	returnsRecvRef bool
}

// summaryResolver resolves a callee to its summary; the boolean reports
// whether the callee is a known module method at all (an unresolvable callee
// is treated conservatively by the scan).
type summaryResolver func(*types.Func) (methodSummary, bool)

type purityAnalysis struct {
	prog    *Program
	methods map[*types.Func]*methodInfo
}

// resolve is the legacy driver's summaryResolver: straight map lookup.
func (a *purityAnalysis) resolve(callee *types.Func) (methodSummary, bool) {
	mi := a.methods[callee]
	if mi == nil {
		return methodSummary{}, false
	}
	return methodSummary{writes: mi.writes, returnsRecvRef: mi.returnsRecvRef}, true
}

func checkPurity(prog *Program, dirs *directives) []Finding {
	a := &purityAnalysis{prog: prog, methods: make(map[*types.Func]*methodInfo)}
	a.index()
	a.solve()

	var findings []Finding
	seen := make(map[*types.Func]bool)
	for _, pkg := range prog.Sorted() {
		for _, named := range predictorTypes(pkg.Types) {
			judge := func(fn *types.Func, format string) {
				if fn == nil || seen[fn] {
					return
				}
				seen[fn] = true
				info := a.methods[fn]
				if info == nil || !info.writes {
					return
				}
				if dirs.isImpureAnnotated(prog.Fset, info.decl) {
					return
				}
				findings = append(findings, Finding{
					Pos:  prog.Fset.Position(info.decl.Pos()),
					Rule: RulePurity,
					Msg:  fmt.Sprintf(format, named.Obj().Name(), info.writeNote),
				})
			}
			judge(lookupMethod(named, "Predict"), msgPredictImpure)
			judge(lookupBatchPredict(named), msgPredictBatchImpure)
		}
	}
	return findings
}

// predictorTypes returns the named types of pkg whose pointer method set
// has the Predictor shape.
func predictorTypes(pkg *types.Package) []*types.Named {
	var out []*types.Named
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if isPredictorShape(named) {
			out = append(out, named)
		}
	}
	return out
}

// isPredictorShape reports whether *T satisfies the structural contract:
// Predict(uint64) bool, Train(B) and Track(B) for one branch type B.
func isPredictorShape(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	find := func(name string) *types.Signature {
		for i := 0; i < ms.Len(); i++ {
			if m := ms.At(i); m.Obj().Name() == name {
				if sig, ok := m.Obj().Type().(*types.Signature); ok {
					return sig
				}
			}
		}
		return nil
	}
	predict := find("Predict")
	if predict == nil || predict.Params().Len() != 1 || predict.Results().Len() != 1 {
		return false
	}
	if b, ok := predict.Params().At(0).Type().(*types.Basic); !ok || b.Kind() != types.Uint64 {
		return false
	}
	if b, ok := predict.Results().At(0).Type().(*types.Basic); !ok || b.Kind() != types.Bool {
		return false
	}
	train, track := find("Train"), find("Track")
	if train == nil || track == nil {
		return false
	}
	if train.Params().Len() != 1 || train.Results().Len() != 0 ||
		track.Params().Len() != 1 || track.Results().Len() != 0 {
		return false
	}
	return types.Identical(train.Params().At(0).Type(), track.Params().At(0).Type())
}

// lookupMethod resolves the named method in *T's method set (following
// embedded fields) to its function object.
func lookupMethod(named *types.Named, name string) *types.Func {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if m := ms.At(i); m.Obj().Name() == name {
			if fn, ok := m.Obj().(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

// lookupBatchPredict resolves the optional batched read path of a predictor
// type: a PredictBatch method taking exactly two slice parameters — the
// first over the type's Train/Track branch type — and returning nothing,
// the bp.BatchPredictor shape. Anything else named PredictBatch is an
// unrelated method and stays out of V1's scope.
func lookupBatchPredict(named *types.Named) *types.Func {
	fn := lookupMethod(named, "PredictBatch")
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return nil
	}
	branches, ok := sig.Params().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	if _, ok := sig.Params().At(1).Type().Underlying().(*types.Slice); !ok {
		return nil
	}
	train := lookupMethod(named, "Train")
	if train == nil {
		return nil
	}
	tsig, ok := train.Type().(*types.Signature)
	if !ok || tsig.Params().Len() != 1 ||
		!types.Identical(branches.Elem(), tsig.Params().At(0).Type()) {
		return nil
	}
	return fn
}

// index records every function declaration of the module.
func (a *purityAnalysis) index() {
	for _, pkg := range a.prog.Sorted() {
		p := pkg
		forEachFuncDecl(pkg.Files, pkg.Info, func(obj *types.Func, decl *ast.FuncDecl, recv *types.Var) {
			a.methods[obj] = &methodInfo{pkg: p, decl: decl, recv: recv}
		})
	}
}

// forEachFuncDecl visits every function declaration with a body in files,
// resolving its object and (when the receiver is a single named variable)
// its receiver object. Shared by the legacy index and the purity analyzer.
func forEachFuncDecl(files []*ast.File, info *types.Info, visit func(obj *types.Func, decl *ast.FuncDecl, recv *types.Var)) {
	for _, file := range files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			var recv *types.Var
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
					if rv, ok := info.Defs[fn.Recv.List[0].Names[0]].(*types.Var); ok {
						recv = rv
					}
				}
			}
			visit(obj, fn, recv)
		}
	}
}

// solve iterates the per-method scan until the summaries stop changing.
// Both summary bits only ever flip from false to true, so this terminates.
func (a *purityAnalysis) solve() {
	for changed := true; changed; {
		changed = false
		for _, mi := range a.methods {
			if mi.recv == nil || mi.writes && mi.returnsRecvRef {
				continue
			}
			s := newMethodScan(a.prog.Fset, mi.pkg.Info, mi.pkg.Types.Scope(), mi.decl, mi.recv, a.resolve)
			s.run()
			if (s.writes && !mi.writes) || (s.returnsRef && !mi.returnsRecvRef) {
				mi.writes = mi.writes || s.writes
				if mi.writeNote == "" {
					mi.writeNote = s.writeNote
				}
				mi.returnsRecvRef = mi.returnsRecvRef || s.returnsRef
				changed = true
			}
		}
	}
}

// methodScan walks one method body, tracking which locals alias receiver
// state and whether any statement writes through the receiver. It is shared
// by the legacy driver and the purity analyzer; callee summaries come
// through the resolver, so the scan itself is per-package.
type methodScan struct {
	fset       *token.FileSet
	info       *types.Info
	scope      *types.Scope // package scope, to exclude package-level vars
	decl       *ast.FuncDecl
	recv       *types.Var
	resolve    summaryResolver
	tainted    map[types.Object]bool
	writes     bool
	writeNote  string
	returnsRef bool
}

func newMethodScan(fset *token.FileSet, info *types.Info, scope *types.Scope, decl *ast.FuncDecl, recv *types.Var, resolve summaryResolver) *methodScan {
	return &methodScan{
		fset: fset, info: info, scope: scope, decl: decl, recv: recv,
		resolve: resolve, tainted: make(map[types.Object]bool),
	}
}

func (s *methodScan) run() {
	// Taint is flow-insensitive: repeat until the tainted set is stable so
	// `l := p.cached(ip); e := l.entry` chains resolve in any order.
	for {
		before := len(s.tainted)
		ast.Inspect(s.decl.Body, s.visit)
		if len(s.tainted) == before {
			break
		}
	}
	// A tainted named result escapes through a bare return.
	if res := s.decl.Type.Results; res != nil {
		for _, field := range res.List {
			for _, name := range field.Names {
				if obj := s.info.Defs[name]; obj != nil && s.tainted[obj] {
					s.returnsRef = true
				}
			}
		}
	}
}

func (s *methodScan) note(n ast.Node, format string, args ...any) {
	if s.writes {
		return
	}
	s.writes = true
	pos := s.fset.Position(n.Pos())
	s.writeNote = fmt.Sprintf(format, args...) + fmt.Sprintf(" at %s:%d", pos.Filename, pos.Line)
}

func (s *methodScan) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		anyRooted := false
		for _, rhs := range n.Rhs {
			if s.rooted(rhs) {
				anyRooted = true
			}
		}
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if id.Name == "_" {
					continue
				}
				// Writing a plain local: taint it if the value aliases
				// receiver state and the local's type can carry a reference.
				if obj := s.localObj(id); obj != nil {
					if anyRooted && refLike(obj.Type()) {
						s.tainted[obj] = true
					}
					continue
				}
			}
			if s.rooted(lhs) {
				s.note(n, "assignment to receiver state")
			}
		}
	case *ast.IncDecStmt:
		if s.rooted(n.X) {
			s.note(n, "increment/decrement of receiver state")
		}
	case *ast.SendStmt:
		if s.rooted(n.Chan) {
			s.note(n, "send on receiver-owned channel")
		}
	case *ast.RangeStmt:
		if s.rooted(n.X) {
			for _, v := range []ast.Expr{n.Key, n.Value} {
				if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
					if obj := s.localObj(id); obj != nil && refLike(obj.Type()) {
						s.tainted[obj] = true
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if s.rooted(res) && refLike(s.typeOf(res)) {
				s.returnsRef = true
			}
		}
	case *ast.CallExpr:
		s.visitCall(n)
	}
	return true
}

func (s *methodScan) visitCall(call *ast.CallExpr) {
	info := s.info
	// Builtins that mutate their argument.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "copy", "delete", "clear":
				if len(call.Args) > 0 && s.rooted(call.Args[0]) {
					s.note(call, "builtin %s mutates receiver state", id.Name)
				}
			case "append":
				// append may write into the backing array of the receiver's
				// slice when capacity allows.
				if len(call.Args) > 0 && s.rooted(call.Args[0]) {
					s.note(call, "append to receiver-owned slice")
				}
			}
			return
		}
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if selection := info.Selections[sel]; selection != nil && selection.Kind() == types.MethodVal {
			if !s.rooted(sel.X) {
				return // method call on non-receiver state: out of scope
			}
			callee, _ := selection.Obj().(*types.Func)
			if callee == nil {
				return
			}
			sig := callee.Type().(*types.Signature)
			if sum, known := s.resolve(callee); known {
				// Module-local method with a summary. A mutating method only
				// affects the caller's state through a pointer receiver.
				if sum.writes && isPointerRecv(sig) {
					s.note(call, "call to %s, which mutates receiver state", callee.Name())
				}
				return
			}
			// Unresolvable callee: interface dispatch or non-module package.
			if types.IsInterface(sig.Recv().Type()) {
				// The Predict/PredictBatch contracts are enforced on every
				// implementation, so trusting sub-predictor read calls is
				// sound.
				if callee.Name() == "Predict" || callee.Name() == "PredictBatch" {
					return
				}
				s.note(call, "call to interface method %s on receiver state", callee.Name())
				return
			}
			if isPointerRecv(sig) {
				s.note(call, "call to external method %s with pointer receiver on receiver state", callee.Name())
			}
			return
		}
	}

	// Plain function call (module-local, stdlib, or a func value): passing
	// receiver-aliasing references lets the callee mutate them.
	for _, arg := range call.Args {
		if s.rooted(arg) && refLike(s.typeOf(arg)) {
			s.note(call, "receiver state passed by reference to a function call")
		}
	}
}

// localObj returns the object of id when it names a local variable
// (including the receiver's siblings: params and results), or nil.
func (s *methodScan) localObj(id *ast.Ident) *types.Var {
	obj := s.info.Defs[id]
	if obj == nil {
		obj = s.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v == s.recv {
		return nil
	}
	// Package-level variables are shared state, not locals.
	if v.Parent() == s.scope {
		return nil
	}
	return v
}

// rooted reports whether e may alias state reachable from the receiver.
func (s *methodScan) rooted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := s.info.Uses[e]
		if obj == nil {
			obj = s.info.Defs[e]
		}
		return obj != nil && (obj == s.recv || s.tainted[obj])
	case *ast.SelectorExpr:
		if s.info.Selections[e] == nil {
			return false // qualified identifier (pkg.Name)
		}
		return s.rooted(e.X)
	case *ast.IndexExpr:
		return s.rooted(e.X)
	case *ast.StarExpr:
		return s.rooted(e.X)
	case *ast.ParenExpr:
		return s.rooted(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() == "&" && s.rooted(e.X)
	case *ast.TypeAssertExpr:
		return s.rooted(e.X)
	case *ast.SliceExpr:
		return s.rooted(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if s.rooted(elt) && refLike(s.typeOf(elt)) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// A method that returns a receiver-derived reference propagates
		// rootedness to its result (lookup-cache accessors).
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if selection := s.info.Selections[sel]; selection != nil && selection.Kind() == types.MethodVal {
				if callee, _ := selection.Obj().(*types.Func); callee != nil {
					if sum, known := s.resolve(callee); known && sum.returnsRecvRef && s.rooted(sel.X) {
						return true
					}
				}
			}
		}
		return false
	}
	return false
}

func (s *methodScan) typeOf(e ast.Expr) types.Type {
	if tv, ok := s.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isPointerRecv(sig *types.Signature) bool {
	if sig.Recv() == nil {
		return false
	}
	_, ok := sig.Recv().Type().Underlying().(*types.Pointer)
	return ok
}

// refLike reports whether values of type t can carry a reference through
// which shared state is mutated (pointers, slices, maps, channels,
// functions, interfaces, or composites containing one).
func refLike(t types.Type) bool {
	return refLikeDepth(t, 0)
}

func refLikeDepth(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return true // unknown: be conservative
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return refLikeDepth(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLikeDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if refLikeDepth(u.At(i).Type(), depth+1) {
				return true
			}
		}
		return false
	}
	return true
}
