// Package yags implements YAGS — Yet Another Global Scheme (Eden and Mudge,
// MICRO 1998). A bimodal choice table captures each branch's bias; two
// small tagged "exception caches" — a taken cache and a not-taken cache —
// store only the history contexts in which a branch deviates from that
// bias. The division of labour keeps the direction caches tiny: they never
// waste entries on the easy, bias-following cases.
package yags

import (
	"fmt"

	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// cacheEntry is one exception-cache entry: a partial tag plus a two-bit
// counter.
type cacheEntry struct {
	tag uint16
	ctr utils.SignedCounter
}

// Predictor is a YAGS branch predictor.
type Predictor struct {
	choice  []utils.SignedCounter
	tCache  []cacheEntry // consulted when the choice says "not taken"
	ntCache []cacheEntry // consulted when the choice says "taken"

	logChoice int
	logCache  int
	tagBits   int
	histLen   int
	ghist     uint64

	exceptionHits uint64
}

// Option configures the predictor.
type Option func(*config)

type config struct {
	logChoice int
	logCache  int
	tagBits   int
	histLen   int
}

// WithLogChoice sets the log2 size of the choice table. Default 14.
func WithLogChoice(n int) Option { return func(c *config) { c.logChoice = n } }

// WithLogCache sets the log2 size of each exception cache. Default 12.
func WithLogCache(n int) Option { return func(c *config) { c.logCache = n } }

// WithTagBits sets the exception-cache tag width. Default 8, as in the
// paper's 6-to-8-bit evaluation.
func WithTagBits(n int) Option { return func(c *config) { c.tagBits = n } }

// WithHistoryLength sets the global history length. Default 12.
func WithHistoryLength(n int) Option { return func(c *config) { c.histLen = n } }

// New returns a YAGS predictor.
func New(opts ...Option) *Predictor {
	cfg := config{logChoice: 14, logCache: 12, tagBits: 8, histLen: 12}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.logChoice < 1 || cfg.logChoice > 26 || cfg.logCache < 1 || cfg.logCache > 26 {
		panic(fmt.Sprintf("yags: invalid table sizes %d/%d", cfg.logChoice, cfg.logCache))
	}
	if cfg.tagBits < 1 || cfg.tagBits > 15 || cfg.histLen < 1 || cfg.histLen > 63 {
		panic(fmt.Sprintf("yags: invalid tagBits=%d histLen=%d", cfg.tagBits, cfg.histLen))
	}
	p := &Predictor{
		choice:    make([]utils.SignedCounter, 1<<cfg.logChoice),
		tCache:    make([]cacheEntry, 1<<cfg.logCache),
		ntCache:   make([]cacheEntry, 1<<cfg.logCache),
		logChoice: cfg.logChoice,
		logCache:  cfg.logCache,
		tagBits:   cfg.tagBits,
		histLen:   cfg.histLen,
	}
	return p
}

func (p *Predictor) choiceIndex(ip uint64) uint64 {
	return utils.XorFold(ip>>2, p.logChoice)
}

func (p *Predictor) cacheIndex(ip uint64) uint64 {
	h := p.ghist & (1<<p.histLen - 1)
	return utils.XorFold(ip^h, p.logCache)
}

func (p *Predictor) tag(ip uint64) uint16 {
	return uint16(utils.XorFold(utils.Mix(ip), p.tagBits)) | 1<<p.tagBits // validity bit
}

// lookup resolves the prediction: the exception cache opposite to the bias
// overrides the choice table on a tag hit.
func (p *Predictor) lookup(ip uint64) (pred, biasTaken, hit bool) {
	biasTaken = p.choice[p.choiceIndex(ip)].Predict()
	cache := p.ntCache
	if !biasTaken {
		cache = p.tCache
	}
	e := &cache[p.cacheIndex(ip)]
	if e.tag == p.tag(ip) {
		return e.ctr.Predict(), biasTaken, true
	}
	return biasTaken, biasTaken, false
}

// Predict implements bp.Predictor.
func (p *Predictor) Predict(ip uint64) bool {
	pred, _, _ := p.lookup(ip)
	return pred
}

// Train implements bp.Predictor, following the paper's update policy: the
// exception cache trains on a hit (and counts as the provider); a miss that
// the bias got wrong allocates an exception entry; the choice table trains
// unless it was overridden by a correct exception.
func (p *Predictor) Train(b bp.Branch) {
	ip, taken := b.IP, b.Taken
	_, biasTaken, hit := p.lookup(ip)
	cache := p.ntCache
	if !biasTaken {
		cache = p.tCache
	}
	e := &cache[p.cacheIndex(ip)]
	if hit {
		p.exceptionHits++
		e.ctr.SumOrSub(taken)
	} else if taken != biasTaken {
		// The bias failed and no exception covered it: allocate.
		e.tag = p.tag(ip)
		e.ctr = utils.NewSignedCounter(2, 0)
		e.ctr.SumOrSub(taken)
	}
	// The choice table keeps learning the bias except when an exception
	// entry just correctly contradicted it (so rare deviations do not
	// erode a strong bias).
	if !(hit && e.ctr.Predict() == taken && taken != biasTaken) {
		p.choice[p.choiceIndex(ip)].SumOrSub(taken)
	}
}

// Track implements bp.Predictor.
func (p *Predictor) Track(b bp.Branch) {
	p.ghist <<= 1
	if b.Taken {
		p.ghist |= 1
	}
}

// Metadata implements bp.MetadataProvider.
func (p *Predictor) Metadata() map[string]any {
	return map[string]any{
		"name":           "MBPlib YAGS",
		"log_choice":     p.logChoice,
		"log_cache":      p.logCache,
		"tag_bits":       p.tagBits,
		"history_length": p.histLen,
	}
}

// Statistics implements bp.StatsProvider.
func (p *Predictor) Statistics() map[string]any {
	return map[string]any{"exception_hits": p.exceptionHits}
}
