package yags

import (
	"testing"

	"mbplib/internal/predictors/bimodal"
	"mbplib/internal/predictors/predtest"
	"mbplib/internal/tracegen"
)

func TestLearnsConstant(t *testing.T) {
	if acc := predtest.Drive(New(), 0x40, predtest.Constant(true, 400)); acc != 1 {
		t.Errorf("YAGS on constant stream: accuracy %v", acc)
	}
}

func TestLearnsPatternViaExceptions(t *testing.T) {
	// A 3/4-taken pattern: the bias handles the taken outcomes and the
	// not-taken cache must learn the exception contexts.
	if acc := predtest.Drive(New(), 0x40, predtest.Pattern("TTTN", 4000)); acc < 0.97 {
		t.Errorf("YAGS on TTTN pattern: accuracy %v", acc)
	}
}

func TestExceptionCacheIsUsed(t *testing.T) {
	p := New()
	_ = predtest.Drive(p, 0x40, predtest.Pattern("TTTN", 4000))
	if p.Statistics()["exception_hits"].(uint64) == 0 {
		t.Errorf("exception caches never hit on a patterned branch")
	}
}

func TestBeatsBimodalOnCorrelated(t *testing.T) {
	spec := tracegen.Spec{
		Name: "corr", Seed: 5, Branches: 60000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Correlated, Feeders: 4}},
	}
	yAcc := predtest.AccuracyOnSpec(t, New(WithHistoryLength(8)), spec)
	bAcc := predtest.AccuracyOnSpec(t, bimodal.New(), spec)
	if yAcc <= bAcc+0.03 {
		t.Errorf("YAGS accuracy %v not clearly above bimodal %v", yAcc, bAcc)
	}
}

func TestContract(t *testing.T) {
	p := New()
	predtest.CheckPredictIsPure(t, p, []uint64{0x40, 0x80})
	predtest.CheckMetadata(t, p)
}

func TestMixedWorkload(t *testing.T) {
	if acc := predtest.AccuracyOnSpec(t, New(), predtest.MixedSpec(50000)); acc < 0.65 {
		t.Errorf("YAGS accuracy on mixed workload = %v", acc)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(WithLogChoice(0)) },
		func() { New(WithTagBits(16)) },
		func() { New(WithHistoryLength(0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid config accepted")
				}
			}()
			f()
		}()
	}
}
