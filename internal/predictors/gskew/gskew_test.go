package gskew

import (
	"testing"

	"mbplib/internal/predictors/bimodal"
	"mbplib/internal/predictors/predtest"
	"mbplib/internal/tracegen"
)

func TestLearnsConstant(t *testing.T) {
	if acc := predtest.Drive(New(), 0x40, predtest.Constant(true, 400)); acc != 1 {
		t.Errorf("gskew on constant stream: accuracy %v", acc)
	}
}

func TestLearnsPattern(t *testing.T) {
	if acc := predtest.Drive(New(), 0x40, predtest.Pattern("TTNTN", 4000)); acc < 0.97 {
		t.Errorf("gskew on period-5 pattern: accuracy %v", acc)
	}
}

func TestBeatsBimodalOnCorrelated(t *testing.T) {
	spec := tracegen.Spec{
		Name: "corr", Seed: 5, Branches: 60000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Correlated, Feeders: 4}},
	}
	gAcc := predtest.AccuracyOnSpec(t, New(), spec)
	bAcc := predtest.AccuracyOnSpec(t, bimodal.New(), spec)
	if gAcc <= bAcc+0.05 {
		t.Errorf("gskew accuracy %v not clearly above bimodal %v", gAcc, bAcc)
	}
}

func TestAliasingResilience(t *testing.T) {
	// Hundreds of strongly biased branches in small banks: the skewed
	// majority vote must stay accurate despite aliasing.
	spec := tracegen.Spec{
		Name: "alias", Seed: 9, Branches: 80000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Biased, Branches: 800, Bias: 0.95}},
	}
	small := New(WithLogSize(10))
	if acc := predtest.AccuracyOnSpec(t, small, spec); acc < 0.8 {
		t.Errorf("gskew accuracy with heavy aliasing = %v, want >= 0.8", acc)
	}
}

func TestContract(t *testing.T) {
	p := New()
	predtest.CheckPredictIsPure(t, p, []uint64{0x40, 0x80})
	predtest.CheckMetadata(t, p)
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(WithLogSize(0)) },
		func() { New(WithHistoryLengths(0, 5)) },
		func() { New(WithHistoryLengths(10, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid config accepted")
				}
			}()
			f()
		}()
	}
}

func TestMixedWorkload(t *testing.T) {
	if acc := predtest.AccuracyOnSpec(t, New(), predtest.MixedSpec(50000)); acc < 0.65 {
		t.Errorf("gskew accuracy on mixed workload = %v", acc)
	}
}
