// Package gskew implements the 2bc-gskew predictor of Seznec and Michaud
// ("De-aliased hybrid branch predictors"). Three banks of two-bit counters
// — a bimodal bank and two history-indexed banks with skewed hash functions
// — vote by majority (the e-gskew predictor), and a meta bank arbitrates
// between the bimodal bank and the majority. The partial update policy
// only strengthens the banks that contributed a correct prediction, which
// is what de-aliases the skewed banks.
package gskew

import (
	"fmt"

	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// Predictor is a 2bc-gskew branch predictor.
type Predictor struct {
	bim, g0, g1, meta []utils.SignedCounter
	logSize           int
	hist0, hist1      int // history lengths of the two skewed banks
	ghist             uint64
}

// Option configures the predictor.
type Option func(*config)

type config struct {
	logSize      int
	hist0, hist1 int
}

// WithLogSize sets the log2 size of each of the four banks. Default 15
// (4 × 32 Ki 2-bit counters = 32 KiB).
func WithLogSize(n int) Option { return func(c *config) { c.logSize = n } }

// WithHistoryLengths sets the history lengths of the two skewed banks.
// Defaults 9 and 18.
func WithHistoryLengths(h0, h1 int) Option {
	return func(c *config) { c.hist0, c.hist1 = h0, h1 }
}

// New returns a 2bc-gskew predictor.
func New(opts ...Option) *Predictor {
	cfg := config{logSize: 15, hist0: 9, hist1: 18}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.logSize < 1 || cfg.logSize > 28 {
		panic(fmt.Sprintf("gskew: invalid log bank size %d", cfg.logSize))
	}
	if cfg.hist0 < 1 || cfg.hist1 < cfg.hist0 || cfg.hist1 > 63 {
		panic(fmt.Sprintf("gskew: invalid history lengths %d, %d", cfg.hist0, cfg.hist1))
	}
	n := 1 << cfg.logSize
	return &Predictor{
		bim: make([]utils.SignedCounter, n), g0: make([]utils.SignedCounter, n),
		g1: make([]utils.SignedCounter, n), meta: make([]utils.SignedCounter, n),
		logSize: cfg.logSize, hist0: cfg.hist0, hist1: cfg.hist1,
	}
}

// Skewing functions: each bank mixes address and history with a different
// odd multiplier before folding, in the spirit of the paper's inter-bank
// dispersion functions.
const (
	skew0 = 0x9e3779b97f4a7c15
	skew1 = 0xc2b2ae3d27d4eb4f
	skew2 = 0x165667b19e3779f9
)

func (p *Predictor) idxBim(ip uint64) uint64 {
	return utils.XorFold(ip>>2, p.logSize)
}

func (p *Predictor) idxG0(ip uint64) uint64 {
	h := p.ghist & (1<<p.hist0 - 1)
	return utils.XorFold((ip^h)*skew0, p.logSize)
}

func (p *Predictor) idxG1(ip uint64) uint64 {
	h := p.ghist & (1<<p.hist1 - 1)
	return utils.XorFold((ip^h)*skew1, p.logSize)
}

func (p *Predictor) idxMeta(ip uint64) uint64 {
	return utils.XorFold(ip*skew2, p.logSize)
}

// votes returns the three bank predictions and the meta choice.
func (p *Predictor) votes(ip uint64) (bimP, g0P, g1P, useGskew bool) {
	bimP = p.bim[p.idxBim(ip)].Predict()
	g0P = p.g0[p.idxG0(ip)].Predict()
	g1P = p.g1[p.idxG1(ip)].Predict()
	useGskew = p.meta[p.idxMeta(ip)].Predict()
	return
}

func majority(a, b, c bool) bool {
	return (a && b) || (a && c) || (b && c)
}

// Predict implements bp.Predictor.
func (p *Predictor) Predict(ip uint64) bool {
	bimP, g0P, g1P, useGskew := p.votes(ip)
	if useGskew {
		return majority(bimP, g0P, g1P)
	}
	return bimP
}

// Train implements bp.Predictor, applying the 2bc-gskew partial update
// policy: the meta bank learns which side was right whenever bimodal and
// majority disagree; on a correct prediction only the agreeing banks of the
// providing side are strengthened; on a misprediction all banks retrain.
func (p *Predictor) Train(b bp.Branch) {
	ip, taken := b.IP, b.Taken
	bimP, g0P, g1P, useGskew := p.votes(ip)
	maj := majority(bimP, g0P, g1P)
	if bimP != maj {
		// Meta outcome bit means "the majority is the right provider".
		p.meta[p.idxMeta(ip)].SumOrSub(maj == taken)
	}
	overall := bimP
	if useGskew {
		overall = maj
	}
	if overall == taken {
		if useGskew {
			if bimP == taken {
				p.bim[p.idxBim(ip)].SumOrSub(taken)
			}
			if g0P == taken {
				p.g0[p.idxG0(ip)].SumOrSub(taken)
			}
			if g1P == taken {
				p.g1[p.idxG1(ip)].SumOrSub(taken)
			}
		} else {
			p.bim[p.idxBim(ip)].SumOrSub(taken)
		}
	} else {
		p.bim[p.idxBim(ip)].SumOrSub(taken)
		p.g0[p.idxG0(ip)].SumOrSub(taken)
		p.g1[p.idxG1(ip)].SumOrSub(taken)
	}
}

// Track implements bp.Predictor: shift the outcome into the global history.
func (p *Predictor) Track(b bp.Branch) {
	p.ghist <<= 1
	if b.Taken {
		p.ghist |= 1
	}
}

// Metadata implements bp.MetadataProvider.
func (p *Predictor) Metadata() map[string]any {
	return map[string]any{
		"name":            "MBPlib 2bc-gskew",
		"log_bank_size":   p.logSize,
		"history_lengths": []int{p.hist0, p.hist1},
	}
}
