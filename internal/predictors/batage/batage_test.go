package batage

import (
	"testing"

	"mbplib/internal/predictors/bimodal"
	"mbplib/internal/predictors/predtest"
	"mbplib/internal/predictors/tage"
	"mbplib/internal/tracegen"
)

func TestLearnsConstantAndPattern(t *testing.T) {
	if acc := predtest.Drive(New(), 0x40, predtest.Constant(true, 500)); acc < 0.99 {
		t.Errorf("BATAGE on constant stream: accuracy %v", acc)
	}
	if acc := predtest.Drive(New(), 0x40, predtest.Pattern("TTNTNNT", 6000)); acc < 0.95 {
		t.Errorf("BATAGE on period-7 pattern: accuracy %v", acc)
	}
}

func TestLearnsLongLoops(t *testing.T) {
	spec := tracegen.Spec{
		Name: "longloop", Seed: 3, Branches: 60000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Loop, Trips: []int{70}}},
	}
	if acc := predtest.AccuracyOnSpec(t, New(), spec); acc < 0.9 {
		t.Errorf("BATAGE on trip-70 loops: accuracy %v", acc)
	}
}

func TestBeatsBimodalOnMixedWorkload(t *testing.T) {
	spec := predtest.MixedSpec(80000)
	baAcc := predtest.AccuracyOnSpec(t, New(), spec)
	biAcc := predtest.AccuracyOnSpec(t, bimodal.New(), spec)
	if baAcc <= biAcc {
		t.Errorf("BATAGE (%v) not above bimodal (%v)", baAcc, biAcc)
	}
	if baAcc < 0.70 {
		t.Errorf("BATAGE accuracy on mixed workload = %v", baAcc)
	}
}

func TestThrottlingActivates(t *testing.T) {
	// Predictable kernels build confident entries; a heavy random-branch
	// kernel then storms allocations at them. CAT must respond by decaying
	// confident victims and throttling attempts.
	spec := tracegen.Spec{
		Name: "noise", Seed: 13, Branches: 200000,
		Kernels: []tracegen.KernelSpec{
			{Kind: tracegen.Biased, Branches: 2000, Bias: 0.55, Weight: 4},
			{Kind: tracegen.Loop, Trips: []int{4, 9}},
			{Kind: tracegen.Pattern, PatternBits: "TTNTN"},
		},
	}
	p := New()
	_ = predtest.AccuracyOnSpec(t, p, spec)
	stats := p.Statistics()
	if stats["allocations"].(uint64) == 0 {
		t.Fatalf("no allocations recorded")
	}
	if stats["throttled_allocations"].(uint64) == 0 {
		t.Errorf("CAT never throttled on a noisy workload: %v", stats)
	}
	if stats["decays"].(uint64) == 0 {
		t.Errorf("no decays recorded: %v", stats)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	spec := predtest.MixedSpec(20000)
	a := predtest.AccuracyOnSpec(t, New(WithSeed(5)), spec)
	b := predtest.AccuracyOnSpec(t, New(WithSeed(5)), spec)
	if a != b {
		t.Errorf("same-seed BATAGE runs differ: %v vs %v", a, b)
	}
}

func TestContract(t *testing.T) {
	p := New()
	predtest.CheckPredictIsPure(t, p, []uint64{0x40, 0x80})
	predtest.CheckMetadata(t, p)
}

func TestComparableToTAGE(t *testing.T) {
	// Same storage geometry: BATAGE should be in the same accuracy class
	// as TAGE on a mixed workload (the BATAGE paper reports slight wins).
	spec := predtest.MixedSpec(80000)
	baAcc := predtest.AccuracyOnSpec(t, New(), spec)
	tgAcc := predtest.AccuracyOnSpec(t, tage.New(), spec)
	if baAcc < tgAcc-0.05 {
		t.Errorf("BATAGE (%v) far below TAGE (%v) at equal geometry", baAcc, tgAcc)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() {
			New(WithTables([]tage.TableSpec{{HistLen: 5, LogSize: 8, TagBits: 8}, {HistLen: 5, LogSize: 8, TagBits: 8}}))
		},
		func() { New(WithTables([]tage.TableSpec{{HistLen: 0, LogSize: 8, TagBits: 8}})) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid config accepted")
				}
			}()
			f()
		}()
	}
}
