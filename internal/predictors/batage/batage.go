// Package batage implements BATAGE, Michaud's Bayesian alternative to TAGE
// ("An alternative TAGE-like conditional branch predictor"). The tagged
// geometric-history tables of TAGE remain, but each entry holds a dual
// counter — separate taken / not-taken counts — whose ratio gives a direct
// confidence estimate. Prediction selects the highest-confidence matching
// entry (ties to the longest history), replacing TAGE's usefulness bits;
// allocation is rate-limited by controlled allocation throttling (CAT) and
// entries decay probabilistically, which requires a pseudo-random number
// generator — the reason the paper calls BATAGE computationally complex
// even among state-of-the-art predictors (§VII-A).
package batage

import (
	"fmt"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/tage"
	"mbplib/internal/utils"
)

// entry is one tagged BATAGE entry: a partial tag and a dual counter.
type entry struct {
	tag  uint16
	dual utils.DualCounter
}

type table struct {
	spec    tage.TableSpec
	entries []entry
	idxFold *utils.FoldedHistory
	tagFold [2]*utils.FoldedHistory
}

// Predictor is a BATAGE branch predictor.
type Predictor struct {
	base    []utils.DualCounter
	logBase int
	tables  []table
	ghist   *utils.GlobalHistory
	rng     *utils.Rand

	// cat is the controlled-allocation-throttling counter: it grows when
	// allocations evict still-confident entries (a sign of over-allocation)
	// and shrinks otherwise; the allocation probability falls as it grows.
	cat    int
	catMax int

	// Prediction cache, valid for lastIP until the next Track.
	lastIP    uint64
	haveCache bool
	cache     lookup
	idxBuf    []uint64
	tagBuf    []uint16
	hitBuf    []int

	allocations uint64
	throttled   uint64
	decays      uint64
}

type lookup struct {
	idx      []uint64
	tag      []uint16
	hits     []int // matching tables, longest first
	baseIdx  uint64
	provider int // index into tables, or -1 for the base
	pred     bool
	conf     int
}

// Option configures the predictor.
type Option func(*config)

type config struct {
	tables  []tage.TableSpec
	logBase int
	catMax  int
	seed    uint64
}

// WithTables sets the tagged-table geometry (ascending history lengths).
func WithTables(specs []tage.TableSpec) Option { return func(c *config) { c.tables = specs } }

// WithGeometric builds n tables with geometric history lengths, reusing the
// TAGE series helper.
func WithGeometric(n, minHist, maxHist, logSize, tagBits int) Option {
	return func(c *config) {
		c.tables = tage.GeometricTables(n, minHist, maxHist, logSize, tagBits)
	}
}

// WithLogBase sets the base table's log size. Default 13.
func WithLogBase(n int) Option { return func(c *config) { c.logBase = n } }

// WithCATMax sets the throttling ceiling. Default 16.
func WithCATMax(n int) Option { return func(c *config) { c.catMax = n } }

// WithSeed seeds the allocation randomiser. Default 1.
func WithSeed(s uint64) Option { return func(c *config) { c.seed = s } }

// New returns a BATAGE predictor. The default geometry matches the default
// TAGE: 8 tables, histories 4..320, 2^10 entries, 11-bit tags.
func New(opts ...Option) *Predictor {
	cfg := config{logBase: 13, catMax: 16, seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.tables == nil {
		cfg.tables = tage.GeometricTables(8, 4, 320, 10, 11)
	}
	maxHist := 0
	for i, ts := range cfg.tables {
		if ts.HistLen < 1 || ts.LogSize < 1 || ts.LogSize > 24 || ts.TagBits < 1 || ts.TagBits > 16 {
			panic(fmt.Sprintf("batage: invalid table spec %+v", ts))
		}
		if i > 0 && ts.HistLen <= cfg.tables[i-1].HistLen {
			panic("batage: history lengths must be strictly ascending")
		}
		if ts.HistLen > maxHist {
			maxHist = ts.HistLen
		}
	}
	p := &Predictor{
		base:    make([]utils.DualCounter, 1<<cfg.logBase),
		logBase: cfg.logBase,
		ghist:   utils.NewGlobalHistory(maxHist + 1),
		rng:     utils.NewRand(cfg.seed),
		catMax:  cfg.catMax,
	}
	for _, ts := range cfg.tables {
		t := table{
			spec:    ts,
			entries: make([]entry, 1<<ts.LogSize),
			idxFold: utils.NewFoldedHistory(ts.HistLen, ts.LogSize),
		}
		t.tagFold[0] = utils.NewFoldedHistory(ts.HistLen, ts.TagBits)
		t.tagFold[1] = utils.NewFoldedHistory(ts.HistLen, maxInt(ts.TagBits-1, 1))
		p.tables = append(p.tables, t)
	}
	p.idxBuf = make([]uint64, len(p.tables))
	p.tagBuf = make([]uint16, len(p.tables))
	p.hitBuf = make([]int, 0, len(p.tables))
	return p
}

func (t *table) index(ip uint64) uint64 {
	// Two fold widths keep the index aperiodic on periodic histories; see
	// the equivalent hash in the tage package.
	h := t.idxFold.Value() ^ t.tagFold[0].Value()<<1
	return utils.XorFold(ip^(ip>>uint(t.spec.LogSize))^h, t.spec.LogSize)
}

func (t *table) tag(ip uint64) uint16 {
	v := ip ^ t.tagFold[0].Value() ^ (t.tagFold[1].Value() << 1)
	return uint16(utils.XorFold(v, t.spec.TagBits))
}

func (p *Predictor) baseIndex(ip uint64) uint64 {
	return utils.XorFold(ip>>2, p.logBase)
}

// scan computes the Bayesian selection: among all matching entries and the
// base, pick the one with the best (lowest) dual-counter confidence class,
// ties going to the longest history.
func (p *Predictor) scan(ip uint64) lookup {
	l := lookup{idx: p.idxBuf, tag: p.tagBuf, hits: p.hitBuf[:0], baseIdx: p.baseIndex(ip), provider: -1}
	for i := range p.tables {
		l.idx[i] = p.tables[i].index(ip)
		l.tag[i] = p.tables[i].tag(ip)
	}
	for i := len(p.tables) - 1; i >= 0; i-- {
		if p.tables[i].entries[l.idx[i]].tag == l.tag[i] {
			l.hits = append(l.hits, i)
		}
	}
	// Hits are visited longest-history-first and must beat the incumbent
	// strictly, so ties resolve toward the longer history; the base is
	// consulted last and wins only with strictly better confidence —
	// otherwise a majority-trained, saturated base would override tagged
	// entries that learned the per-context outcome.
	var best *utils.DualCounter
	l.conf = 3 // worse than any real confidence class
	for _, i := range l.hits {
		d := &p.tables[i].entries[l.idx[i]].dual
		if c := d.Confidence(); c < l.conf {
			best, l.conf, l.provider = d, c, i
		}
	}
	baseDual := &p.base[l.baseIdx]
	if c := baseDual.Confidence(); best == nil || c < l.conf {
		best, l.conf, l.provider = baseDual, c, -1
	}
	l.pred = best.Predict()
	return l
}

func (p *Predictor) cached(ip uint64) *lookup {
	if !p.haveCache || p.lastIP != ip {
		p.cache = p.scan(ip)
		p.lastIP = ip
		p.haveCache = true
	}
	return &p.cache
}

// Predict implements bp.Predictor.
//
//mbpvet:impure lookup memoization only: repeated Predicts for the same ip return the cached scan, and Track invalidates it, so observable predictions never change
func (p *Predictor) Predict(ip uint64) bool {
	return p.cached(ip).pred
}

// Train implements bp.Predictor. The longest matching entry always trains
// (it must be able to build confidence and take over the prediction); when
// it is not yet highly confident, the next-longest hit — or ultimately the
// base — trains too, so the fallback chain stays warm. A provider that is
// neither (a shorter hit chosen purely on confidence) also trains.
func (p *Predictor) Train(b bp.Branch) {
	l := p.cached(b.IP)
	taken := b.Taken

	if len(l.hits) == 0 {
		p.base[l.baseIdx].Update(taken)
	} else {
		longest := l.hits[0]
		e := &p.tables[longest].entries[l.idx[longest]]
		e.dual.Update(taken)
		if !e.dual.IsHighConfidence() {
			if len(l.hits) > 1 {
				next := l.hits[1]
				p.tables[next].entries[l.idx[next]].dual.Update(taken)
			} else {
				p.base[l.baseIdx].Update(taken)
			}
		}
		if l.provider >= 0 && l.provider != longest && (len(l.hits) < 2 || l.provider != l.hits[1]) {
			p.tables[l.provider].entries[l.idx[l.provider]].dual.Update(taken)
		}
	}

	if l.pred != taken {
		p.allocate(l, taken)
	}
}

// allocate claims an entry in a longer-history table, throttled by CAT: the
// more often allocations evict confident (presumably useful) entries, the
// lower the allocation probability, protecting the tables from churn on
// hard-to-predict branches. Skipped allocations decay a random candidate
// instead, opening space for the future.
func (p *Predictor) allocate(l *lookup, taken bool) {
	// Allocation goes above the longest hit (as in TAGE), not above the
	// confidence-chosen provider: clobbering a longer hit that is still
	// building confidence would reset it forever.
	start := 0
	if len(l.hits) > 0 {
		start = l.hits[0] + 1
	}
	if start >= len(p.tables) {
		return
	}
	// Throttle: skip the attempt entirely with probability cat/(catMax+1).
	if p.rng.Intn(p.catMax+1) < p.cat {
		p.throttled++
		return
	}
	// Walk the candidate tables shortest-first. A still-confident victim is
	// presumed useful: it is decayed rather than evicted, and the CAT
	// counter grows, lowering future allocation pressure. The first
	// non-confident victim is replaced and CAT relaxes.
	for i := start; i < len(p.tables); i++ {
		e := &p.tables[i].entries[l.idx[i]]
		if e.tag != l.tag[i] && e.dual.IsHighConfidence() {
			e.dual.Decay()
			p.decays++
			p.cat = minInt(p.cat+1, p.catMax)
			continue
		}
		e.tag = l.tag[i]
		e.dual = utils.DualCounter{}
		e.dual.Update(taken)
		p.allocations++
		if p.cat > 0 {
			p.cat--
		}
		return
	}
}

// Track implements bp.Predictor.
func (p *Predictor) Track(b bp.Branch) {
	p.ghist.Push(b.Taken)
	for i := range p.tables {
		t := &p.tables[i]
		oldest := p.ghist.Bit(t.spec.HistLen)
		t.idxFold.Update(b.Taken, oldest)
		t.tagFold[0].Update(b.Taken, oldest)
		t.tagFold[1].Update(b.Taken, oldest)
	}
	p.haveCache = false
}

// Metadata implements bp.MetadataProvider.
func (p *Predictor) Metadata() map[string]any {
	specs := make([]map[string]any, len(p.tables))
	for i, t := range p.tables {
		specs[i] = map[string]any{
			"history_length": t.spec.HistLen,
			"log_size":       t.spec.LogSize,
			"tag_bits":       t.spec.TagBits,
		}
	}
	return map[string]any{
		"name":     "MBPlib BATAGE",
		"log_base": p.logBase,
		"cat_max":  p.catMax,
		"tables":   specs,
	}
}

// Statistics implements bp.StatsProvider.
func (p *Predictor) Statistics() map[string]any {
	return map[string]any{
		"allocations":           p.allocations,
		"throttled_allocations": p.throttled,
		"decays":                p.decays,
		"cat":                   p.cat,
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
