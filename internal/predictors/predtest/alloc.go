package predtest

import (
	"testing"

	"mbplib/internal/bp"
)

// CheckKernelZeroAlloc is the batch-kernel allocation law: once warm, both
// halves of bp.BatchPredictor must run without heap allocation. The batched
// speedup rests on the kernels staying arithmetic-only — a regression that
// allocates per batch (a scratch slice grown per call, a boxed value
// escaping into an interface) survives every behavioural law while quietly
// eating the win, so the property is pinned directly.
//
// Predictors without a kernel skip; the law is about kernels, not about
// requiring one.
func CheckKernelZeroAlloc(t *testing.T, newP func() bp.Predictor, branches uint64) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	p := newP()
	kp, ok := p.(bp.BatchPredictor)
	if !ok {
		t.Skipf("%T does not implement bp.BatchPredictor", p)
	}
	var batch []bp.Branch
	conformanceEvents(t, branches, func(ev bp.Event) {
		batch = append(batch, ev.Branch)
	})
	out := make([]bp.Prediction, len(batch))
	// One warm pass sizes any lazily-grown scratch and faults in the tables;
	// everything after it is steady state.
	kp.TrainBatch(batch, out)
	if n := testing.AllocsPerRun(5, func() { kp.PredictBatch(batch, out) }); n != 0 {
		t.Errorf("PredictBatch allocates %.0f times per call in steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(5, func() { kp.TrainBatch(batch, out) }); n != 0 {
		t.Errorf("TrainBatch allocates %.0f times per call in steady state, want 0", n)
	}
}
