// Package predtest provides shared helpers for testing branch predictors:
// canned outcome sequences, accuracy measurement, and interface-contract
// checks used by every predictor package's tests.
package predtest

import (
	"io"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

// Drive feeds the outcome sequence of a single conditional branch at ip to
// the predictor and returns the fraction of correct predictions over the
// last half of the sequence (so initial training does not dominate).
func Drive(p bp.Predictor, ip uint64, outcomes []bool) float64 {
	correct, counted := 0, 0
	for i, taken := range outcomes {
		pred := p.Predict(ip)
		if i >= len(outcomes)/2 {
			counted++
			if pred == taken {
				correct++
			}
		}
		b := bp.Branch{IP: ip, Target: ip + 64, Opcode: bp.OpCondJump, Taken: taken}
		p.Train(b)
		p.Track(b)
	}
	if counted == 0 {
		return 0
	}
	return float64(correct) / float64(counted)
}

// DriveBranches interleaves outcome sequences of several branches (one
// outcome each per round) and returns the overall second-half accuracy.
func DriveBranches(p bp.Predictor, ips []uint64, outcomes [][]bool) float64 {
	correct, counted := 0, 0
	rounds := len(outcomes[0])
	for r := 0; r < rounds; r++ {
		for j, ip := range ips {
			taken := outcomes[j][r]
			pred := p.Predict(ip)
			if r >= rounds/2 {
				counted++
				if pred == taken {
					correct++
				}
			}
			b := bp.Branch{IP: ip, Target: ip + 64, Opcode: bp.OpCondJump, Taken: taken}
			p.Train(b)
			p.Track(b)
		}
	}
	return float64(correct) / float64(counted)
}

// Pattern repeats the "T"/"N" pattern until n outcomes are produced.
func Pattern(pattern string, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = pattern[i%len(pattern)] == 'T'
	}
	return out
}

// Alternating returns n alternating outcomes starting with taken.
func Alternating(n int) []bool { return Pattern("TN", n) }

// Constant returns n copies of the outcome.
func Constant(taken bool, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = taken
	}
	return out
}

// MPKIOnSpec simulates the predictor on a synthetic workload and returns
// the resulting MPKI.
func MPKIOnSpec(t *testing.T, p bp.Predictor, spec tracegen.Spec) float64 {
	t.Helper()
	g, err := tracegen.New(spec)
	if err != nil {
		t.Fatalf("tracegen.New: %v", err)
	}
	res, err := sim.Run(g, p, sim.Config{TraceName: spec.Name})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res.Metrics.MPKI
}

// AccuracyOnSpec simulates the predictor on a synthetic workload and
// returns the conditional-branch accuracy.
func AccuracyOnSpec(t *testing.T, p bp.Predictor, spec tracegen.Spec) float64 {
	t.Helper()
	g, err := tracegen.New(spec)
	if err != nil {
		t.Fatalf("tracegen.New: %v", err)
	}
	res, err := sim.Run(g, p, sim.Config{TraceName: spec.Name})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res.Metrics.Accuracy
}

// MixedSpec is a standard workload mixing every kernel kind, for smoke
// tests that a predictor survives arbitrary input.
func MixedSpec(branches uint64) tracegen.Spec {
	return tracegen.Spec{
		Name: "predtest-mixed", Seed: 0xbeef, Branches: branches,
		Kernels: []tracegen.KernelSpec{
			{Kind: tracegen.Biased}, {Kind: tracegen.Loop}, {Kind: tracegen.Correlated},
			{Kind: tracegen.Pattern}, {Kind: tracegen.CallRet}, {Kind: tracegen.Indirect},
		},
	}
}

// CheckPredictIsPure verifies the §IV-A contract that Predict does not
// change future predictions: repeated calls without Train/Track must agree.
func CheckPredictIsPure(t *testing.T, p bp.Predictor, ips []uint64) {
	t.Helper()
	// Train a little first so internal state is non-trivial.
	g, err := tracegen.New(MixedSpec(2000))
	if err != nil {
		t.Fatal(err)
	}
	for {
		ev, err := g.Read()
		if err == io.EOF {
			break
		}
		if ev.Branch.IsConditional() {
			p.Predict(ev.Branch.IP)
			p.Train(ev.Branch)
		}
		p.Track(ev.Branch)
	}
	for _, ip := range ips {
		first := p.Predict(ip)
		for i := 0; i < 5; i++ {
			if p.Predict(ip) != first {
				t.Errorf("Predict(%#x) changed its answer on repeated calls", ip)
				return
			}
		}
	}
}

// CheckMetadata verifies the predictor describes itself with at least a
// name, so simulator output identifies it (Listing 1).
func CheckMetadata(t *testing.T, p bp.Predictor) {
	t.Helper()
	mp, ok := p.(bp.MetadataProvider)
	if !ok {
		t.Fatalf("predictor %T does not provide metadata", p)
	}
	md := mp.Metadata()
	name, ok := md["name"].(string)
	if !ok || name == "" {
		t.Errorf("predictor %T metadata has no name: %v", p, md)
	}
}
