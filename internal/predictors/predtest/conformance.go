package predtest

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

// This file is the predictor conformance suite: behavioural contracts every
// registry predictor must satisfy, checked dynamically against the same
// mixed workload. Each check constructs fresh instances through newP —
// predictors are stateful, and several contracts are statements about two
// instances fed the same stream.

// conformanceEvents replays the mixed workload to f, stopping at io.EOF.
func conformanceEvents(t *testing.T, branches uint64, f func(bp.Event)) {
	t.Helper()
	g, err := tracegen.New(MixedSpec(branches))
	if err != nil {
		t.Fatal(err)
	}
	for {
		ev, err := g.Read()
		if err == io.EOF {
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		f(ev)
	}
}

// predictionStream drives one fresh predictor over the mixed workload and
// packs every conditional prediction into a bitstream. extraPredicts adds
// that many redundant Predict calls before the recorded one, to observe
// whether Predict mutates state.
func predictionStream(t *testing.T, newP func() bp.Predictor, branches uint64, extraPredicts int) []byte {
	t.Helper()
	p := newP()
	var bits []byte
	n := 0
	conformanceEvents(t, branches, func(ev bp.Event) {
		b := ev.Branch
		if b.IsConditional() {
			for i := 0; i < extraPredicts; i++ {
				p.Predict(b.IP)
			}
			if n%8 == 0 {
				bits = append(bits, 0)
			}
			if p.Predict(b.IP) {
				bits[n/8] |= 1 << (n % 8)
			}
			n++
			p.Train(b)
		}
		p.Track(b)
	})
	return bits
}

// CheckReplayDeterminism verifies that two fresh instances driven by the
// same event stream make identical predictions — a predictor must not
// depend on anything but its inputs (no clocks, no map iteration order, no
// global RNG), or sweep results would not be reproducible.
func CheckReplayDeterminism(t *testing.T, newP func() bp.Predictor, branches uint64) {
	t.Helper()
	a := predictionStream(t, newP, branches, 0)
	b := predictionStream(t, newP, branches, 0)
	if !bytes.Equal(a, b) {
		t.Errorf("two replays of the same stream predicted differently")
	}
}

// CheckPredictSideEffectFree is the dynamic form of mbpvet's V1 rule: extra
// Predict calls between training events must not change any subsequent
// prediction. A predictor updating state in Predict (speculative history,
// allocation on lookup) diverges here.
func CheckPredictSideEffectFree(t *testing.T, newP func() bp.Predictor, branches uint64) {
	t.Helper()
	clean := predictionStream(t, newP, branches, 0)
	noisy := predictionStream(t, newP, branches, 3)
	if !bytes.Equal(clean, noisy) {
		t.Errorf("redundant Predict calls changed later predictions (Predict mutates state)")
	}
}

// CheckCallOrderTolerance verifies a predictor survives call patterns other
// than the canonical Predict/Train/Track cycle: Train without a preceding
// Predict (the simulator's warm-up fast path), and Track-only streams
// (unconditional branches). The predictor must not panic and must still
// answer afterwards — and training without predicts must leave it in the
// same state as training with them (Predict is read-only, so the two
// schedules are indistinguishable).
func CheckCallOrderTolerance(t *testing.T, newP func() bp.Predictor, branches uint64) {
	t.Helper()
	defer func() {
		if v := recover(); v != nil {
			t.Errorf("predictor panicked under non-canonical call order: %v", v)
		}
	}()
	// Train/Track with no Predict at all.
	blind := newP()
	conformanceEvents(t, branches, func(ev bp.Event) {
		if ev.Branch.IsConditional() {
			blind.Train(ev.Branch)
		}
		blind.Track(ev.Branch)
	})
	// Predict/Train/Track, same stream.
	sighted := newP()
	conformanceEvents(t, branches, func(ev bp.Event) {
		if ev.Branch.IsConditional() {
			sighted.Predict(ev.Branch.IP)
			sighted.Train(ev.Branch)
		}
		sighted.Track(ev.Branch)
	})
	// Both must agree afterwards: predicting is observation, not training.
	diverged := false
	conformanceEvents(t, branches/4, func(ev bp.Event) {
		b := ev.Branch
		if b.IsConditional() && !diverged {
			if blind.Predict(b.IP) != sighted.Predict(b.IP) {
				diverged = true
			}
			blind.Train(b)
			sighted.Train(b)
		}
		blind.Track(b)
		sighted.Track(b)
	})
	if diverged {
		t.Errorf("training without Predict calls produced a different state than training with them")
	}
	// Track-only stream (all-unconditional trace) on a fresh instance.
	trackOnly := newP()
	conformanceEvents(t, branches/4, func(ev bp.Event) {
		trackOnly.Track(ev.Branch)
	})
	trackOnly.Predict(0x40_0000)
}

// CheckCheckpointRoundTrip is the conformance law for bp.Checkpointer: a
// checkpoint taken mid-stream and restored into a fresh instance of the
// same configuration must be indistinguishable from the original from then
// on — identical predictions over the rest of the stream, identical
// statistics, and an identical second checkpoint. Predictors that do not
// implement Checkpointer skip.
func CheckCheckpointRoundTrip(t *testing.T, newP func() bp.Predictor, branches uint64) {
	t.Helper()
	probe, ok := newP().(bp.Checkpointer)
	if !ok {
		t.Skip("predictor does not implement bp.Checkpointer")
	}
	_ = probe

	var events []bp.Event
	conformanceEvents(t, branches, func(ev bp.Event) { events = append(events, ev) })
	drive := func(p bp.Predictor, evs []bp.Event, other bp.Predictor) {
		for i, ev := range evs {
			b := ev.Branch
			if b.IsConditional() {
				got := p.Predict(b.IP)
				if other != nil {
					if want := other.Predict(b.IP); got != want {
						t.Fatalf("event %d after restore: prediction %v, original predicts %v", i, got, want)
					}
				}
				p.Train(b)
				if other != nil {
					other.Train(b)
				}
			}
			p.Track(b)
			if other != nil {
				other.Track(b)
			}
		}
	}

	original := newP()
	drive(original, events[:len(events)/2], nil)

	var ckpt bytes.Buffer
	if err := original.(bp.Checkpointer).Checkpoint(&ckpt); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	restored := newP()
	if err := restored.(bp.Checkpointer).Restore(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	// Same predictions for the rest of the stream.
	drive(restored, events[len(events)/2:], original)

	// Same statistics, when the predictor reports any.
	if so, ok := original.(bp.StatsProvider); ok {
		ss := restored.(bp.StatsProvider).Statistics()
		for k, want := range so.Statistics() {
			if got := ss[k]; got != want {
				t.Errorf("statistic %q = %v after restore, original has %v", k, got, want)
			}
		}
	}

	// A second checkpoint of both instances must be byte-identical: the
	// serialized states, not just the visible behaviour, have converged.
	var a, b bytes.Buffer
	if err := original.(bp.Checkpointer).Checkpoint(&a); err != nil {
		t.Fatalf("second Checkpoint (original): %v", err)
	}
	if err := restored.(bp.Checkpointer).Checkpoint(&b); err != nil {
		t.Fatalf("second Checkpoint (restored): %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("checkpoints diverge after restore: %d vs %d bytes", a.Len(), b.Len())
	}

	// Every truncation of a checkpoint must be rejected with an error, and
	// never panic. (The truncated restore may leave its instance in an
	// unspecified state; a fresh one is used each time.)
	full := ckpt.Bytes()
	for _, n := range []int{0, 1, len(full) / 2, len(full) - 1} {
		if n >= len(full) {
			continue
		}
		if err := newP().(bp.Checkpointer).Restore(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("Restore of %d/%d-byte prefix succeeded", n, len(full))
		}
	}
}

// CheckBatchScalarEquivalence verifies the predictor behaves identically
// under the batched pipeline and the scalar reference loop: byte-identical
// result JSON across warm-up and limit configurations. A predictor cannot
// tell the difference between the two loops unless it is sensitive to
// something outside the bp.Predictor contract.
func CheckBatchScalarEquivalence(t *testing.T, newP func() bp.Predictor, branches uint64) {
	t.Helper()
	spec := MixedSpec(branches)
	configs := []sim.Config{
		{TraceName: "conformance"},
		{TraceName: "conformance", WarmupInstructions: 3 * branches}, // lands mid-trace
		{TraceName: "conformance", SimInstructions: 4 * branches},
	}
	for i, cfg := range configs {
		newGen := func() *tracegen.Generator {
			g, err := tracegen.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}
		scalar, err := sim.RunScalar(newGen(), newP(), cfg)
		if err != nil {
			t.Fatalf("cfg %d: RunScalar: %v", i, err)
		}
		batched, err := sim.Run(newGen(), newP(), cfg)
		if err != nil {
			t.Fatalf("cfg %d: Run: %v", i, err)
		}
		scalar.Metrics.SimulationTime = 0
		batched.Metrics.SimulationTime = 0
		sj, err := json.Marshal(scalar)
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(batched)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, bj) {
			t.Errorf("cfg %d: batched result differs from scalar:\nscalar:  %s\nbatched: %s", i, sj, bj)
		}
	}
}

// chunkSizes is the batch-split pattern the batch-kernel laws drive
// predictors with: a mix of degenerate (0, 1) and bulky splits, so a kernel
// that carries state across a batch boundary incorrectly, or mishandles an
// empty or single-branch batch, cannot pass by accident.
var chunkSizes = []int{1, 0, 3, 64, 1, 1021, 7}

// driveChunks feeds branches to p through bp.SimulateBatch in the cycling
// chunkSizes pattern, recording conditional predictions into out (which
// must have len(branches) entries).
func driveChunks(p bp.Predictor, branches []bp.Branch, out []bp.Prediction) {
	base, ci := 0, 0
	for base < len(branches) {
		n := chunkSizes[ci%len(chunkSizes)]
		ci++
		if n > len(branches)-base {
			n = len(branches) - base
		}
		bp.SimulateBatch(p, branches[base:base+n], out[base:base+n])
		base += n
	}
}

// faultAfterReader yields the given events and then a non-EOF error, so the
// failure lands mid-stream — and, for the batched pipeline, mid-batch.
type faultAfterReader struct {
	events []bp.Event
	pos    int
	err    error
}

func (r *faultAfterReader) Read() (bp.Event, error) {
	if r.pos >= len(r.events) {
		return bp.Event{}, r.err
	}
	ev := r.events[r.pos]
	r.pos++
	return ev, nil
}

// CheckBatchKernelConformance is the conformance law for bp.BatchPredictor:
// the native kernel must be indistinguishable from the scalar reference
// path. It verifies, over the mixed workload,
//
//   - per-branch prediction equality between the kernel (driven through
//     bp.SimulateBatch under adversarial batch splits) and the scalar
//     reference loop,
//   - final checkpoint byte-equality between the two paths,
//   - PredictBatch purity (checkpoint bytes unchanged) and agreement with
//     Predict,
//   - and sim-level equivalence when the trace faults mid-batch: Run and
//     RunScalar must surface the identical reader error.
//
// Predictors without a native kernel skip: their SimulateBatch path is the
// scalar loop by construction.
func CheckBatchKernelConformance(t *testing.T, newP func() bp.Predictor, branches uint64) {
	t.Helper()
	if _, ok := newP().(bp.BatchPredictor); !ok {
		t.Skip("predictor does not implement bp.BatchPredictor")
	}

	var events []bp.Event
	conformanceEvents(t, branches, func(ev bp.Event) { events = append(events, ev) })
	stream := make([]bp.Branch, len(events))
	for i := range events {
		stream[i] = events[i].Branch
	}

	kernel := newP()
	kernelOut := make([]bp.Prediction, len(stream))
	driveChunks(kernel, stream, kernelOut)

	scalar := bp.ScalarOnly(newP())
	scalarOut := make([]bp.Prediction, len(stream))
	driveChunks(scalar, stream, scalarOut)

	for i := range stream {
		if stream[i].Opcode.IsConditional() && kernelOut[i] != scalarOut[i] {
			t.Fatalf("branch %d (ip %#x): kernel predicted %v, scalar path %v", i, stream[i].IP, kernelOut[i], scalarOut[i])
		}
	}

	if kc, ok := kernel.(bp.Checkpointer); ok {
		var kb, sb bytes.Buffer
		if err := kc.Checkpoint(&kb); err != nil {
			t.Fatalf("kernel Checkpoint: %v", err)
		}
		if err := scalar.(bp.Checkpointer).Checkpoint(&sb); err != nil {
			t.Fatalf("scalar Checkpoint: %v", err)
		}
		if !bytes.Equal(kb.Bytes(), sb.Bytes()) {
			t.Errorf("final state diverges between kernel and scalar paths: checkpoints of %d vs %d bytes differ", kb.Len(), sb.Len())
		}

		// PredictBatch purity: serialized state identical before and after,
		// and every prediction agrees with Predict under the same state.
		want := make([]bool, len(stream))
		for i := range stream {
			want[i] = kernel.Predict(stream[i].IP)
		}
		var before bytes.Buffer
		if err := kc.Checkpoint(&before); err != nil {
			t.Fatalf("Checkpoint before PredictBatch: %v", err)
		}
		got := make([]bp.Prediction, len(stream))
		kernel.(bp.BatchPredictor).PredictBatch(stream, got)
		var after bytes.Buffer
		if err := kc.Checkpoint(&after); err != nil {
			t.Fatalf("Checkpoint after PredictBatch: %v", err)
		}
		if !bytes.Equal(before.Bytes(), after.Bytes()) {
			t.Errorf("PredictBatch changed serialized state (%d vs %d bytes)", before.Len(), after.Len())
		}
		for i := range stream {
			if bool(got[i]) != want[i] {
				t.Fatalf("branch %d (ip %#x): PredictBatch predicted %v, Predict returns %v", i, stream[i].IP, got[i], want[i])
			}
		}
	}

	// Mid-batch fault: both pipelines must surface the identical error.
	faultErr := errors.New("conformance: injected trace fault")
	cut := len(events)/2 + 1
	_, kerr := sim.Run(&faultAfterReader{events: events[:cut], err: faultErr}, newP(), sim.Config{})
	_, serr := sim.RunScalar(&faultAfterReader{events: events[:cut], err: faultErr}, newP(), sim.Config{})
	if kerr == nil || serr == nil {
		t.Fatalf("mid-batch fault not surfaced: Run err %v, RunScalar err %v", kerr, serr)
	}
	if kerr.Error() != serr.Error() {
		t.Errorf("mid-batch fault differs between pipelines:\nRun:       %v\nRunScalar: %v", kerr, serr)
	}
}

// CheckCheckpointBatchResume is the crash-resume law for batch kernels: a
// checkpoint cut at a point that is NOT a batch boundary of the original
// run must restore and resume byte-identically on both the scalar and the
// kernel path — in every combination of which path produced the checkpoint
// and which path resumes from it. This is exactly the situation -resume
// creates when a sweep is interrupted mid-trace. Skips unless the predictor
// has both a native kernel and a checkpoint format.
func CheckCheckpointBatchResume(t *testing.T, newP func() bp.Predictor, branches uint64) {
	t.Helper()
	probe := newP()
	if _, ok := probe.(bp.BatchPredictor); !ok {
		t.Skip("predictor does not implement bp.BatchPredictor")
	}
	if _, ok := probe.(bp.Checkpointer); !ok {
		t.Skip("predictor does not implement bp.Checkpointer")
	}

	var events []bp.Event
	conformanceEvents(t, branches, func(ev bp.Event) { events = append(events, ev) })
	stream := make([]bp.Branch, len(events))
	for i := range events {
		stream[i] = events[i].Branch
	}
	// A cut that no chunk of driveChunks ends on, so the resumed first batch
	// is a partial one.
	cut := len(stream)/2 + 1

	ckptAt := func(drive func(p bp.Predictor, s []bp.Branch, out []bp.Prediction), p bp.Predictor, s []bp.Branch) []byte {
		out := make([]bp.Prediction, len(s))
		drive(p, s, out)
		var b bytes.Buffer
		if err := p.(bp.Checkpointer).Checkpoint(&b); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		return b.Bytes()
	}
	scalarDrive := func(p bp.Predictor, s []bp.Branch, out []bp.Prediction) {
		driveChunks(bp.ScalarOnly(p), s, out)
	}
	kernelDrive := func(p bp.Predictor, s []bp.Branch, out []bp.Prediction) {
		driveChunks(p, s, out)
	}

	// Reference: scalar end-to-end.
	ref := ckptAt(scalarDrive, newP(), stream)

	halfScalar := ckptAt(scalarDrive, newP(), stream[:cut])
	halfKernel := ckptAt(kernelDrive, newP(), stream[:cut])
	if !bytes.Equal(halfScalar, halfKernel) {
		t.Fatalf("mid-stream checkpoints differ between scalar and kernel paths (%d vs %d bytes)", len(halfScalar), len(halfKernel))
	}

	for _, tc := range []struct {
		name  string
		from  []byte
		drive func(p bp.Predictor, s []bp.Branch, out []bp.Prediction)
	}{
		{"scalar-ckpt/kernel-resume", halfScalar, kernelDrive},
		{"kernel-ckpt/scalar-resume", halfKernel, scalarDrive},
		{"kernel-ckpt/kernel-resume", halfKernel, kernelDrive},
	} {
		p := newP()
		if err := p.(bp.Checkpointer).Restore(bytes.NewReader(tc.from)); err != nil {
			t.Fatalf("%s: Restore: %v", tc.name, err)
		}
		if got := ckptAt(tc.drive, p, stream[cut:]); !bytes.Equal(got, ref) {
			t.Errorf("%s: resumed final checkpoint differs from the uninterrupted scalar run (%d vs %d bytes)", tc.name, len(got), len(ref))
		}
	}
}
