package predtest

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/sim"
	"mbplib/internal/tracegen"
)

// This file is the predictor conformance suite: behavioural contracts every
// registry predictor must satisfy, checked dynamically against the same
// mixed workload. Each check constructs fresh instances through newP —
// predictors are stateful, and several contracts are statements about two
// instances fed the same stream.

// conformanceEvents replays the mixed workload to f, stopping at io.EOF.
func conformanceEvents(t *testing.T, branches uint64, f func(bp.Event)) {
	t.Helper()
	g, err := tracegen.New(MixedSpec(branches))
	if err != nil {
		t.Fatal(err)
	}
	for {
		ev, err := g.Read()
		if err == io.EOF {
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		f(ev)
	}
}

// predictionStream drives one fresh predictor over the mixed workload and
// packs every conditional prediction into a bitstream. extraPredicts adds
// that many redundant Predict calls before the recorded one, to observe
// whether Predict mutates state.
func predictionStream(t *testing.T, newP func() bp.Predictor, branches uint64, extraPredicts int) []byte {
	t.Helper()
	p := newP()
	var bits []byte
	n := 0
	conformanceEvents(t, branches, func(ev bp.Event) {
		b := ev.Branch
		if b.IsConditional() {
			for i := 0; i < extraPredicts; i++ {
				p.Predict(b.IP)
			}
			if n%8 == 0 {
				bits = append(bits, 0)
			}
			if p.Predict(b.IP) {
				bits[n/8] |= 1 << (n % 8)
			}
			n++
			p.Train(b)
		}
		p.Track(b)
	})
	return bits
}

// CheckReplayDeterminism verifies that two fresh instances driven by the
// same event stream make identical predictions — a predictor must not
// depend on anything but its inputs (no clocks, no map iteration order, no
// global RNG), or sweep results would not be reproducible.
func CheckReplayDeterminism(t *testing.T, newP func() bp.Predictor, branches uint64) {
	t.Helper()
	a := predictionStream(t, newP, branches, 0)
	b := predictionStream(t, newP, branches, 0)
	if !bytes.Equal(a, b) {
		t.Errorf("two replays of the same stream predicted differently")
	}
}

// CheckPredictSideEffectFree is the dynamic form of mbpvet's V1 rule: extra
// Predict calls between training events must not change any subsequent
// prediction. A predictor updating state in Predict (speculative history,
// allocation on lookup) diverges here.
func CheckPredictSideEffectFree(t *testing.T, newP func() bp.Predictor, branches uint64) {
	t.Helper()
	clean := predictionStream(t, newP, branches, 0)
	noisy := predictionStream(t, newP, branches, 3)
	if !bytes.Equal(clean, noisy) {
		t.Errorf("redundant Predict calls changed later predictions (Predict mutates state)")
	}
}

// CheckCallOrderTolerance verifies a predictor survives call patterns other
// than the canonical Predict/Train/Track cycle: Train without a preceding
// Predict (the simulator's warm-up fast path), and Track-only streams
// (unconditional branches). The predictor must not panic and must still
// answer afterwards — and training without predicts must leave it in the
// same state as training with them (Predict is read-only, so the two
// schedules are indistinguishable).
func CheckCallOrderTolerance(t *testing.T, newP func() bp.Predictor, branches uint64) {
	t.Helper()
	defer func() {
		if v := recover(); v != nil {
			t.Errorf("predictor panicked under non-canonical call order: %v", v)
		}
	}()
	// Train/Track with no Predict at all.
	blind := newP()
	conformanceEvents(t, branches, func(ev bp.Event) {
		if ev.Branch.IsConditional() {
			blind.Train(ev.Branch)
		}
		blind.Track(ev.Branch)
	})
	// Predict/Train/Track, same stream.
	sighted := newP()
	conformanceEvents(t, branches, func(ev bp.Event) {
		if ev.Branch.IsConditional() {
			sighted.Predict(ev.Branch.IP)
			sighted.Train(ev.Branch)
		}
		sighted.Track(ev.Branch)
	})
	// Both must agree afterwards: predicting is observation, not training.
	diverged := false
	conformanceEvents(t, branches/4, func(ev bp.Event) {
		b := ev.Branch
		if b.IsConditional() && !diverged {
			if blind.Predict(b.IP) != sighted.Predict(b.IP) {
				diverged = true
			}
			blind.Train(b)
			sighted.Train(b)
		}
		blind.Track(b)
		sighted.Track(b)
	})
	if diverged {
		t.Errorf("training without Predict calls produced a different state than training with them")
	}
	// Track-only stream (all-unconditional trace) on a fresh instance.
	trackOnly := newP()
	conformanceEvents(t, branches/4, func(ev bp.Event) {
		trackOnly.Track(ev.Branch)
	})
	trackOnly.Predict(0x40_0000)
}

// CheckCheckpointRoundTrip is the conformance law for bp.Checkpointer: a
// checkpoint taken mid-stream and restored into a fresh instance of the
// same configuration must be indistinguishable from the original from then
// on — identical predictions over the rest of the stream, identical
// statistics, and an identical second checkpoint. Predictors that do not
// implement Checkpointer skip.
func CheckCheckpointRoundTrip(t *testing.T, newP func() bp.Predictor, branches uint64) {
	t.Helper()
	probe, ok := newP().(bp.Checkpointer)
	if !ok {
		t.Skip("predictor does not implement bp.Checkpointer")
	}
	_ = probe

	var events []bp.Event
	conformanceEvents(t, branches, func(ev bp.Event) { events = append(events, ev) })
	drive := func(p bp.Predictor, evs []bp.Event, other bp.Predictor) {
		for i, ev := range evs {
			b := ev.Branch
			if b.IsConditional() {
				got := p.Predict(b.IP)
				if other != nil {
					if want := other.Predict(b.IP); got != want {
						t.Fatalf("event %d after restore: prediction %v, original predicts %v", i, got, want)
					}
				}
				p.Train(b)
				if other != nil {
					other.Train(b)
				}
			}
			p.Track(b)
			if other != nil {
				other.Track(b)
			}
		}
	}

	original := newP()
	drive(original, events[:len(events)/2], nil)

	var ckpt bytes.Buffer
	if err := original.(bp.Checkpointer).Checkpoint(&ckpt); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	restored := newP()
	if err := restored.(bp.Checkpointer).Restore(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	// Same predictions for the rest of the stream.
	drive(restored, events[len(events)/2:], original)

	// Same statistics, when the predictor reports any.
	if so, ok := original.(bp.StatsProvider); ok {
		ss := restored.(bp.StatsProvider).Statistics()
		for k, want := range so.Statistics() {
			if got := ss[k]; got != want {
				t.Errorf("statistic %q = %v after restore, original has %v", k, got, want)
			}
		}
	}

	// A second checkpoint of both instances must be byte-identical: the
	// serialized states, not just the visible behaviour, have converged.
	var a, b bytes.Buffer
	if err := original.(bp.Checkpointer).Checkpoint(&a); err != nil {
		t.Fatalf("second Checkpoint (original): %v", err)
	}
	if err := restored.(bp.Checkpointer).Checkpoint(&b); err != nil {
		t.Fatalf("second Checkpoint (restored): %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("checkpoints diverge after restore: %d vs %d bytes", a.Len(), b.Len())
	}

	// Every truncation of a checkpoint must be rejected with an error, and
	// never panic. (The truncated restore may leave its instance in an
	// unspecified state; a fresh one is used each time.)
	full := ckpt.Bytes()
	for _, n := range []int{0, 1, len(full) / 2, len(full) - 1} {
		if n >= len(full) {
			continue
		}
		if err := newP().(bp.Checkpointer).Restore(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("Restore of %d/%d-byte prefix succeeded", n, len(full))
		}
	}
}

// CheckBatchScalarEquivalence verifies the predictor behaves identically
// under the batched pipeline and the scalar reference loop: byte-identical
// result JSON across warm-up and limit configurations. A predictor cannot
// tell the difference between the two loops unless it is sensitive to
// something outside the bp.Predictor contract.
func CheckBatchScalarEquivalence(t *testing.T, newP func() bp.Predictor, branches uint64) {
	t.Helper()
	spec := MixedSpec(branches)
	configs := []sim.Config{
		{TraceName: "conformance"},
		{TraceName: "conformance", WarmupInstructions: 3 * branches}, // lands mid-trace
		{TraceName: "conformance", SimInstructions: 4 * branches},
	}
	for i, cfg := range configs {
		newGen := func() *tracegen.Generator {
			g, err := tracegen.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}
		scalar, err := sim.RunScalar(newGen(), newP(), cfg)
		if err != nil {
			t.Fatalf("cfg %d: RunScalar: %v", i, err)
		}
		batched, err := sim.Run(newGen(), newP(), cfg)
		if err != nil {
			t.Fatalf("cfg %d: Run: %v", i, err)
		}
		scalar.Metrics.SimulationTime = 0
		batched.Metrics.SimulationTime = 0
		sj, err := json.Marshal(scalar)
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(batched)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sj, bj) {
			t.Errorf("cfg %d: batched result differs from scalar:\nscalar:  %s\nbatched: %s", i, sj, bj)
		}
	}
}
