package predtest_test

import (
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/predtest"
	"mbplib/internal/predictors/registry"
)

// TestRegistryConformance runs the full conformance suite against every
// predictor the registry can construct, at its default configuration. A new
// predictor added to the registry is covered automatically — and must pass
// before it can ship.
func TestRegistryConformance(t *testing.T) {
	names := registry.Names()
	if len(names) < 16 {
		t.Fatalf("registry lists only %d predictors, expected at least 16", len(names))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			newP := func() bp.Predictor {
				p, err := registry.New(name)
				if err != nil {
					t.Fatalf("registry.New(%q): %v", name, err)
				}
				return p
			}
			t.Run("metadata", func(t *testing.T) {
				predtest.CheckMetadata(t, newP())
			})
			t.Run("replay-determinism", func(t *testing.T) {
				predtest.CheckReplayDeterminism(t, newP, 4000)
			})
			t.Run("predict-is-pure", func(t *testing.T) {
				predtest.CheckPredictIsPure(t, newP(), []uint64{0x40_0000, 0x40_0040, 0x41_0000})
			})
			t.Run("predict-side-effect-free", func(t *testing.T) {
				predtest.CheckPredictSideEffectFree(t, newP, 4000)
			})
			t.Run("call-order-tolerance", func(t *testing.T) {
				predtest.CheckCallOrderTolerance(t, newP, 4000)
			})
			t.Run("batch-vs-scalar", func(t *testing.T) {
				predtest.CheckBatchScalarEquivalence(t, newP, 3000)
			})
			t.Run("checkpoint-round-trip", func(t *testing.T) {
				predtest.CheckCheckpointRoundTrip(t, newP, 4000)
			})
			t.Run("batch-kernel", func(t *testing.T) {
				predtest.CheckBatchKernelConformance(t, newP, 4000)
			})
			t.Run("checkpoint-batch-resume", func(t *testing.T) {
				predtest.CheckCheckpointBatchResume(t, newP, 4000)
			})
		})
	}
}

// TestBatchKernelPredictors pins the set of registry predictors that ship a
// native bp.BatchPredictor kernel: the simulator silently falls back to the
// scalar loop when the interface is lost, so a refactor that drops
// PredictBatch/TrainBatch would cost the batched speedup without failing
// any behavioural test.
func TestBatchKernelPredictors(t *testing.T) {
	for _, name := range []string{"bimodal", "gshare", "perceptron", "tage"} {
		p, err := registry.New(name)
		if err != nil {
			t.Fatalf("registry.New(%q): %v", name, err)
		}
		if _, ok := p.(bp.BatchPredictor); !ok {
			t.Errorf("%s no longer implements bp.BatchPredictor", name)
		}
	}
}

// TestCheckpointablePredictors pins the set of registry predictors that
// promise bp.Checkpointer: the resumable-sweep machinery checkpoints
// in-flight cells only for these, and silently losing the capability (a
// refactor that drops a method) would degrade resume to event zero.
func TestCheckpointablePredictors(t *testing.T) {
	for _, name := range []string{"bimodal", "gshare", "perceptron", "tage"} {
		p, err := registry.New(name)
		if err != nil {
			t.Fatalf("registry.New(%q): %v", name, err)
		}
		if _, ok := p.(bp.Checkpointer); !ok {
			t.Errorf("%s no longer implements bp.Checkpointer", name)
		}
	}
}
