//go:build !race

package predtest

// raceEnabled mirrors the build's -race flag; allocation-count laws are
// skipped under the race detector, whose instrumentation allocates. See
// race_on.go for the enabled half.
const raceEnabled = false
