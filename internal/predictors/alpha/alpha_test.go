package alpha

import (
	"testing"

	"mbplib/internal/predictors/bimodal"
	"mbplib/internal/predictors/predtest"
	"mbplib/internal/tracegen"
)

func TestLearnsConstantAndPattern(t *testing.T) {
	if acc := predtest.Drive(New(), 0x40, predtest.Constant(true, 400)); acc < 0.99 {
		t.Errorf("alpha on constant stream: accuracy %v", acc)
	}
	if acc := predtest.Drive(New(), 0x40, predtest.Pattern("TTNTN", 4000)); acc < 0.97 {
		t.Errorf("alpha on period-5 pattern: accuracy %v", acc)
	}
}

func TestLocalComponentSeparatesAntiPhaseBranches(t *testing.T) {
	// Two branches alternating in anti-phase: the local predictor nails
	// both from their private histories.
	acc := predtest.DriveBranches(New(),
		[]uint64{0x100, 0x200},
		[][]bool{predtest.Alternating(3000), predtest.Pattern("NT", 3000)})
	if acc < 0.97 {
		t.Errorf("alpha on anti-phase branches: accuracy %v", acc)
	}
}

func TestGlobalComponentLearnsCorrelation(t *testing.T) {
	spec := tracegen.Spec{
		Name: "corr", Seed: 5, Branches: 120000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Correlated, Feeders: 4}},
	}
	aAcc := predtest.AccuracyOnSpec(t, New(), spec)
	bAcc := predtest.AccuracyOnSpec(t, bimodal.New(), spec)
	if aAcc <= bAcc+0.03 {
		t.Errorf("alpha accuracy %v not clearly above bimodal %v on correlated workload", aAcc, bAcc)
	}
}

func TestContract(t *testing.T) {
	p := New()
	predtest.CheckPredictIsPure(t, p, []uint64{0x40, 0x80})
	predtest.CheckMetadata(t, p)
}

func TestMixedWorkload(t *testing.T) {
	if acc := predtest.AccuracyOnSpec(t, New(), predtest.MixedSpec(50000)); acc < 0.7 {
		t.Errorf("alpha accuracy on mixed workload = %v", acc)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(WithLogLocal(0)) },
		func() { New(WithLocalHistoryLength(20)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid config accepted")
				}
			}()
			f()
		}()
	}
}
