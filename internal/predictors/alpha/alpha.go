// Package alpha implements the Alpha 21264 tournament predictor (Kessler,
// IEEE Micro 1999), the most famous shipped hybrid: a two-level local
// predictor (per-branch history into 3-bit counters), a global predictor
// (2-bit counters indexed by the global history), and a choice predictor
// (2-bit counters, also global-history-indexed) that picks the winner. The
// hardware's geometry — 1K×10-bit local histories, 1K×3-bit local counters,
// 4K×2-bit global and choice tables with 12 bits of path history — is the
// default configuration.
package alpha

import (
	"fmt"

	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// Predictor is an Alpha-21264-style tournament predictor.
type Predictor struct {
	localHist []uint16
	localPred []utils.SignedCounter
	globalT   []utils.SignedCounter
	choice    []utils.SignedCounter

	logLocal     int // log2 local history/counter table sizes
	localHistLen int
	logGlobal    int // log2 global/choice table sizes (= history length)
	ghist        uint64
}

// Option configures the predictor.
type Option func(*config)

type config struct {
	logLocal     int
	localHistLen int
	logGlobal    int
}

// WithLogLocal sets the log2 number of local histories. Default 10 (1K).
func WithLogLocal(n int) Option { return func(c *config) { c.logLocal = n } }

// WithLocalHistoryLength sets the per-branch history length. Default 10.
func WithLocalHistoryLength(n int) Option { return func(c *config) { c.localHistLen = n } }

// WithLogGlobal sets the log2 size of the global and choice tables, which
// is also the global history length. Default 12 (4K).
func WithLogGlobal(n int) Option { return func(c *config) { c.logGlobal = n } }

// New returns an Alpha 21264 tournament predictor.
func New(opts ...Option) *Predictor {
	cfg := config{logLocal: 10, localHistLen: 10, logGlobal: 12}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.logLocal < 1 || cfg.logLocal > 20 || cfg.logGlobal < 1 || cfg.logGlobal > 26 {
		panic(fmt.Sprintf("alpha: invalid table sizes local=%d global=%d", cfg.logLocal, cfg.logGlobal))
	}
	if cfg.localHistLen < 1 || cfg.localHistLen > 16 {
		panic(fmt.Sprintf("alpha: invalid local history length %d", cfg.localHistLen))
	}
	p := &Predictor{
		localHist:    make([]uint16, 1<<cfg.logLocal),
		localPred:    make([]utils.SignedCounter, 1<<(min(cfg.localHistLen, 16))),
		globalT:      make([]utils.SignedCounter, 1<<cfg.logGlobal),
		choice:       make([]utils.SignedCounter, 1<<cfg.logGlobal),
		logLocal:     cfg.logLocal,
		localHistLen: cfg.localHistLen,
		logGlobal:    cfg.logGlobal,
	}
	for i := range p.localPred {
		p.localPred[i] = utils.NewSignedCounter(3, 0) // 3-bit, as in hardware
	}
	return p
}

func (p *Predictor) localIndex(ip uint64) uint64 {
	return utils.XorFold(ip>>2, p.logLocal)
}

func (p *Predictor) localCounter(ip uint64) *utils.SignedCounter {
	h := uint64(p.localHist[p.localIndex(ip)]) & (1<<p.localHistLen - 1)
	return &p.localPred[h]
}

func (p *Predictor) globalIndex() uint64 {
	return p.ghist & (1<<p.logGlobal - 1)
}

// components returns the two component predictions and the chooser's pick.
func (p *Predictor) components(ip uint64) (localPred, globalPred, useGlobal bool) {
	localPred = p.localCounter(ip).Predict()
	gi := p.globalIndex()
	globalPred = p.globalT[gi].Predict()
	useGlobal = p.choice[gi].Predict()
	return
}

// Predict implements bp.Predictor.
func (p *Predictor) Predict(ip uint64) bool {
	localPred, globalPred, useGlobal := p.components(ip)
	if useGlobal {
		return globalPred
	}
	return localPred
}

// Train implements bp.Predictor. Both components always train; the chooser
// trains only when they disagree, toward whichever was right — the
// hardware's update rule.
func (p *Predictor) Train(b bp.Branch) {
	localPred, globalPred, _ := p.components(b.IP)
	gi := p.globalIndex()
	if localPred != globalPred {
		p.choice[gi].SumOrSub(globalPred == b.Taken)
	}
	p.localCounter(b.IP).SumOrSub(b.Taken)
	p.globalT[gi].SumOrSub(b.Taken)
	// The per-branch local history is part of the prediction structures in
	// the 21264 (updated at retirement); it advances here rather than in
	// Track so a meta-predictor reusing this component trains it
	// consistently.
	li := p.localIndex(b.IP)
	p.localHist[li] = p.localHist[li]<<1 | b2u16(b.Taken)
}

// Track implements bp.Predictor: the global history advances for every
// branch.
func (p *Predictor) Track(b bp.Branch) {
	p.ghist <<= 1
	if b.Taken {
		p.ghist |= 1
	}
}

// Metadata implements bp.MetadataProvider.
func (p *Predictor) Metadata() map[string]any {
	return map[string]any{
		"name":              "MBPlib Alpha 21264",
		"log_local":         p.logLocal,
		"local_history_len": p.localHistLen,
		"log_global":        p.logGlobal,
	}
}

func b2u16(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
