// Package agree implements the agree predictor (Sprangle, Chappell, Alsup
// and Patt, ISCA 1997). Each branch gets a bias bit recording its usual
// direction; the global-history-indexed table then predicts whether the
// branch will *agree* with its bias rather than whether it is taken.
// Re-encoding the prediction this way turns destructive aliasing into
// (mostly) constructive aliasing: two unrelated branches that share a
// history-table entry usually both agree with their own biases, so the
// shared counter trains in one direction instead of fighting itself.
package agree

import (
	"fmt"

	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// Predictor is an agree branch predictor.
type Predictor struct {
	agreeTable []utils.SignedCounter
	bias       []uint8 // 0 = unset, 1 = not taken, 2 = taken
	logAgree   int
	logBias    int
	histLen    int
	ghist      uint64
}

// Option configures the predictor.
type Option func(*config)

type config struct {
	logAgree int
	logBias  int
	histLen  int
}

// WithLogAgree sets the log2 size of the agree table. Default 15.
func WithLogAgree(n int) Option { return func(c *config) { c.logAgree = n } }

// WithLogBias sets the log2 size of the bias-bit table. Default 14.
func WithLogBias(n int) Option { return func(c *config) { c.logBias = n } }

// WithHistoryLength sets the global history length. Default 14.
func WithHistoryLength(n int) Option { return func(c *config) { c.histLen = n } }

// New returns an agree predictor.
func New(opts ...Option) *Predictor {
	cfg := config{logAgree: 15, logBias: 14, histLen: 14}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.logAgree < 1 || cfg.logAgree > 26 || cfg.logBias < 1 || cfg.logBias > 26 {
		panic(fmt.Sprintf("agree: invalid table sizes %d/%d", cfg.logAgree, cfg.logBias))
	}
	if cfg.histLen < 1 || cfg.histLen > 63 {
		panic(fmt.Sprintf("agree: invalid history length %d", cfg.histLen))
	}
	return &Predictor{
		agreeTable: make([]utils.SignedCounter, 1<<cfg.logAgree),
		bias:       make([]uint8, 1<<cfg.logBias),
		logAgree:   cfg.logAgree,
		logBias:    cfg.logBias,
		histLen:    cfg.histLen,
	}
}

func (p *Predictor) agreeIndex(ip uint64) uint64 {
	h := p.ghist & (1<<p.histLen - 1)
	return utils.XorFold(ip^h, p.logAgree)
}

func (p *Predictor) biasIndex(ip uint64) uint64 {
	return utils.XorFold(ip>>2, p.logBias)
}

// biasTaken returns the branch's recorded bias; unset biases default to
// taken (the common case for backward branches, and what the hardware's
// first-execution heuristic would set).
func (p *Predictor) biasTaken(ip uint64) bool {
	return p.bias[p.biasIndex(ip)] != 1
}

// Predict implements bp.Predictor: bias XNOR agree.
func (p *Predictor) Predict(ip uint64) bool {
	agrees := p.agreeTable[p.agreeIndex(ip)].Predict()
	return agrees == p.biasTaken(ip)
}

// Train implements bp.Predictor. The bias bit is set once, on the branch's
// first execution (as the original sets it on allocation into the BTB);
// the agree counter then trains toward "did the outcome match the bias".
func (p *Predictor) Train(b bp.Branch) {
	bi := p.biasIndex(b.IP)
	if p.bias[bi] == 0 {
		if b.Taken {
			p.bias[bi] = 2
		} else {
			p.bias[bi] = 1
		}
	}
	agreed := b.Taken == p.biasTaken(b.IP)
	p.agreeTable[p.agreeIndex(b.IP)].SumOrSub(agreed)
}

// Track implements bp.Predictor.
func (p *Predictor) Track(b bp.Branch) {
	p.ghist <<= 1
	if b.Taken {
		p.ghist |= 1
	}
}

// Metadata implements bp.MetadataProvider.
func (p *Predictor) Metadata() map[string]any {
	return map[string]any{
		"name":           "MBPlib Agree",
		"log_agree":      p.logAgree,
		"log_bias":       p.logBias,
		"history_length": p.histLen,
	}
}
