package agree

import (
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/predictors/predtest"
	"mbplib/internal/tracegen"
)

func TestLearnsConstantBothDirections(t *testing.T) {
	if acc := predtest.Drive(New(), 0x40, predtest.Constant(true, 400)); acc != 1 {
		t.Errorf("agree on all-taken stream: accuracy %v", acc)
	}
	if acc := predtest.Drive(New(), 0x80, predtest.Constant(false, 400)); acc != 1 {
		t.Errorf("agree on all-not-taken stream: accuracy %v", acc)
	}
}

func TestLearnsPattern(t *testing.T) {
	if acc := predtest.Drive(New(), 0x40, predtest.Pattern("TTNTN", 4000)); acc < 0.97 {
		t.Errorf("agree on period-5 pattern: accuracy %v", acc)
	}
}

func TestBiasSetOnce(t *testing.T) {
	p := New()
	// First outcome not taken: bias records it...
	b := bp.Branch{IP: 0x40, Target: 0x80, Opcode: bp.OpCondJump, Taken: false}
	p.Train(b)
	p.Track(b)
	if p.biasTaken(0x40) {
		t.Fatalf("bias not set from first outcome")
	}
	// ...and later taken outcomes do not flip it.
	b.Taken = true
	for i := 0; i < 50; i++ {
		p.Train(b)
		p.Track(b)
	}
	if p.biasTaken(0x40) {
		t.Errorf("bias flipped by later outcomes")
	}
	// The predictor still predicts taken by learning to disagree.
	if !p.Predict(0x40) {
		t.Errorf("agree table did not learn to contradict a wrong bias")
	}
}

func TestAliasingResilienceVsGShare(t *testing.T) {
	// Many strongly biased branches in small tables: agree's re-encoding
	// should hold up at least as well as plain gshare at equal budget.
	spec := tracegen.Spec{
		Name: "alias", Seed: 9, Branches: 80000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Biased, Branches: 1500, Bias: 0.95}},
	}
	aAcc := predtest.AccuracyOnSpec(t, New(WithLogAgree(10), WithHistoryLength(10)), spec)
	gAcc := predtest.AccuracyOnSpec(t, gshare.New(gshare.WithLogSize(10), gshare.WithHistoryLength(10)), spec)
	if aAcc < gAcc-0.02 {
		t.Errorf("agree (%v) clearly below gshare (%v) under aliasing", aAcc, gAcc)
	}
}

func TestContract(t *testing.T) {
	p := New()
	predtest.CheckPredictIsPure(t, p, []uint64{0x40, 0x80})
	predtest.CheckMetadata(t, p)
}

func TestMixedWorkload(t *testing.T) {
	if acc := predtest.AccuracyOnSpec(t, New(), predtest.MixedSpec(50000)); acc < 0.65 {
		t.Errorf("agree accuracy on mixed workload = %v", acc)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("invalid config accepted")
		}
	}()
	New(WithHistoryLength(0))
}
