package filter

import (
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/predictors/predtest"
	"mbplib/internal/tracegen"
)

// recorder counts the calls reaching the inner predictor.
type recorder struct {
	inner  bp.Predictor
	trains int
	tracks int
}

func (r *recorder) Predict(ip uint64) bool { return r.inner.Predict(ip) }
func (r *recorder) Train(b bp.Branch)      { r.trains++; r.inner.Train(b) }
func (r *recorder) Track(b bp.Branch)      { r.tracks++; r.inner.Track(b) }

func condBranch(ip uint64, taken bool) bp.Branch {
	return bp.Branch{IP: ip, Target: ip + 64, Opcode: bp.OpCondJump, Taken: taken}
}

func TestMonotoneBranchIsFiltered(t *testing.T) {
	rec := &recorder{inner: gshare.New()}
	p := New(rec, WithThreshold(8))
	for i := 0; i < 100; i++ {
		p.Predict(0x40)
		b := condBranch(0x40, true)
		p.Train(b)
		p.Track(b)
	}
	// The inner predictor sees the branch only until the threshold.
	if rec.trains > 8 {
		t.Errorf("inner trained %d times, want <= 8", rec.trains)
	}
	if rec.tracks > 8 {
		t.Errorf("inner tracked %d times, want <= 8 (filter's §IV-B prerogative)", rec.tracks)
	}
	if !p.Predict(0x40) {
		t.Errorf("filtered monotone branch mispredicted")
	}
	stats := p.Statistics()
	if stats["monotone_branches"].(int) != 1 {
		t.Errorf("statistics: %v", stats)
	}
}

func TestDeviationDemotesToHard(t *testing.T) {
	rec := &recorder{inner: gshare.New()}
	p := New(rec, WithThreshold(4))
	for i := 0; i < 20; i++ {
		b := condBranch(0x40, true)
		p.Predict(b.IP)
		p.Train(b)
		p.Track(b)
	}
	// The branch deviates (the first iteration still matches the monotone
	// direction and stays filtered; the second is the deviation): it must
	// become hard and reach the inner predictor from then on.
	before := rec.trains
	for i := 0; i < 10; i++ {
		b := condBranch(0x40, i%2 == 0)
		p.Predict(b.IP)
		p.Train(b)
		p.Track(b)
	}
	if rec.trains != before+9 {
		t.Errorf("hard branch reached inner %d times, want 9", rec.trains-before)
	}
	if p.Statistics()["hard_branches"].(int) != 1 {
		t.Errorf("statistics: %v", p.Statistics())
	}
}

func TestTrackAllOption(t *testing.T) {
	rec := &recorder{inner: gshare.New()}
	p := New(rec, WithThreshold(4), WithTrackAll(true))
	for i := 0; i < 50; i++ {
		b := condBranch(0x40, true)
		p.Predict(b.IP)
		p.Train(b)
		p.Track(b)
	}
	if rec.tracks != 50 {
		t.Errorf("WithTrackAll: inner tracked %d of 50", rec.tracks)
	}
}

func TestAccuracyNotWorseThanInner(t *testing.T) {
	spec := predtest.MixedSpec(60000)
	fAcc := predtest.AccuracyOnSpec(t, New(gshare.New()), spec)
	gAcc := predtest.AccuracyOnSpec(t, gshare.New(), spec)
	if fAcc < gAcc-0.02 {
		t.Errorf("filtered gshare (%v) clearly below plain gshare (%v)", fAcc, gAcc)
	}
}

func TestHelpsSmallPredictorUnderAliasing(t *testing.T) {
	// Many monotone branches plus a few patterned ones: filtering the
	// monotone ones out of a tiny gshare frees its table for the rest.
	spec := tracegen.Spec{
		Name: "monotone-heavy", Seed: 17, Branches: 80000,
		Kernels: []tracegen.KernelSpec{
			{Kind: tracegen.Biased, Branches: 2000, Bias: 0.999, Weight: 4},
			{Kind: tracegen.Pattern, PatternBits: "TTNTNN"},
			{Kind: tracegen.Correlated, Feeders: 4},
		},
	}
	tiny := func() bp.Predictor { return gshare.New(gshare.WithLogSize(8), gshare.WithHistoryLength(8)) }
	fAcc := predtest.AccuracyOnSpec(t, New(tiny()), spec)
	gAcc := predtest.AccuracyOnSpec(t, tiny(), spec)
	if fAcc <= gAcc {
		t.Errorf("filtered tiny gshare (%v) not above plain (%v)", fAcc, gAcc)
	}
}

func TestMetadataNestsInner(t *testing.T) {
	p := New(gshare.New())
	md := p.Metadata()
	inner, ok := md["inner"].(map[string]any)
	if !ok || inner["name"] != "MBPlib GShare" {
		t.Errorf("inner metadata missing: %v", md)
	}
	predtest.CheckMetadata(t, p)
}

func TestPredictIsPure(t *testing.T) {
	predtest.CheckPredictIsPure(t, New(gshare.New()), []uint64{0x40, 0x80})
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(nil) },
		func() { New(gshare.New(), WithLogSize(0)) },
		func() { New(gshare.New(), WithThreshold(0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid config accepted")
				}
			}()
			f()
		}()
	}
}
