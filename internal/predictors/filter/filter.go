// Package filter implements a branch filter, the second composition device
// §IV-B of the MBPlib paper names alongside meta-predictors: a component
// placed in front of another predictor that handles trivially predictable
// branches itself and "may decide that it is not necessary to track some
// branches". Branches that have only ever gone one way are predicted by a
// per-branch monotone table and never reach the inner predictor, keeping
// its tables and history register free for the hard branches — the same
// idea as Chang, Evers and Patt's branch filtering.
//
// The filter is itself a bp.Predictor, so it composes: a filtered TAGE, a
// filtered component inside a tournament, and so on.
package filter

import (
	"fmt"

	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// Per-branch filter states.
const (
	stateUnseen   = 0
	stateAllTaken = 1
	stateAllNot   = 2
	stateHard     = 3
)

// entry is one filter-table entry: the monotone state and how many times it
// has been confirmed.
type entry struct {
	state uint8
	count uint8
}

// Predictor wraps an inner predictor behind a monotone-branch filter.
type Predictor struct {
	inner bp.Predictor
	table []entry

	logSize   int
	threshold uint8
	trackAll  bool

	filteredPredictions uint64
	innerPredictions    uint64
}

// Option configures the filter.
type Option func(*config)

type config struct {
	logSize   int
	threshold int
	trackAll  bool
}

// WithLogSize sets the log2 size of the filter table. Default 14.
func WithLogSize(n int) Option { return func(c *config) { c.logSize = n } }

// WithThreshold sets how many consistent outcomes a branch needs before the
// filter takes it over. Default 16.
func WithThreshold(n int) Option { return func(c *config) { c.threshold = n } }

// WithTrackAll makes the inner predictor track filtered branches too
// (default false: the filter exercises its §IV-B right not to track them,
// keeping the inner history register free of trivially biased outcomes).
func WithTrackAll(track bool) Option { return func(c *config) { c.trackAll = track } }

// New wraps inner behind a filter.
func New(inner bp.Predictor, opts ...Option) *Predictor {
	if inner == nil {
		panic("filter: nil inner predictor")
	}
	cfg := config{logSize: 14, threshold: 16}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.logSize < 1 || cfg.logSize > 26 {
		panic(fmt.Sprintf("filter: invalid log table size %d", cfg.logSize))
	}
	if cfg.threshold < 1 || cfg.threshold > 255 {
		panic(fmt.Sprintf("filter: invalid threshold %d", cfg.threshold))
	}
	return &Predictor{
		inner:     inner,
		table:     make([]entry, 1<<cfg.logSize),
		logSize:   cfg.logSize,
		threshold: uint8(cfg.threshold),
		trackAll:  cfg.trackAll,
	}
}

func (p *Predictor) slot(ip uint64) *entry {
	return &p.table[utils.XorFold(ip>>2, p.logSize)]
}

// filtered reports whether the entry currently intercepts its branch, and
// with which prediction.
func (e *entry) filtered(threshold uint8) (taken, active bool) {
	if e.count < threshold {
		return false, false
	}
	switch e.state {
	case stateAllTaken:
		return true, true
	case stateAllNot:
		return false, true
	}
	return false, false
}

// Predict implements bp.Predictor.
//
//mbpvet:impure statistics counters only (filtered vs inner provider attribution); they feed Statistics() and never influence a prediction
func (p *Predictor) Predict(ip uint64) bool {
	if taken, active := p.slot(ip).filtered(p.threshold); active {
		p.filteredPredictions++
		return taken
	}
	p.innerPredictions++
	return p.inner.Predict(ip)
}

// Train implements bp.Predictor. Filtered branches train only the filter;
// the first deviation demotes the branch to "hard" permanently and hands it
// to the inner predictor from then on.
func (p *Predictor) Train(b bp.Branch) {
	e := p.slot(b.IP)
	switch e.state {
	case stateUnseen:
		if b.Taken {
			e.state = stateAllTaken
		} else {
			e.state = stateAllNot
		}
		e.count = 1
	case stateAllTaken, stateAllNot:
		if b.Taken == (e.state == stateAllTaken) {
			if e.count < 255 {
				e.count++
			}
		} else {
			e.state = stateHard
		}
	}
	// Below the threshold the branch is still provisional: the inner
	// predictor trains too, so no warm-up is lost if it turns out hard.
	if _, active := e.filtered(p.threshold); !active || e.state == stateHard {
		p.inner.Train(b)
	}
}

// Track implements bp.Predictor: filtered branches are not tracked unless
// WithTrackAll was set — the filter's §IV-B prerogative.
func (p *Predictor) Track(b bp.Branch) {
	if !p.trackAll {
		if _, active := p.slot(b.IP).filtered(p.threshold); active {
			return
		}
	}
	p.inner.Track(b)
}

// Metadata implements bp.MetadataProvider.
func (p *Predictor) Metadata() map[string]any {
	md := map[string]any{
		"name":      "MBPlib Filter",
		"log_size":  p.logSize,
		"threshold": int(p.threshold),
		"track_all": p.trackAll,
	}
	if mp, ok := p.inner.(bp.MetadataProvider); ok {
		md["inner"] = mp.Metadata()
	}
	return md
}

// Statistics implements bp.StatsProvider.
func (p *Predictor) Statistics() map[string]any {
	hard, monotone := 0, 0
	for i := range p.table {
		switch p.table[i].state {
		case stateHard:
			hard++
		case stateAllTaken, stateAllNot:
			monotone++
		}
	}
	return map[string]any{
		"filtered_predictions": p.filteredPredictions,
		"inner_predictions":    p.innerPredictions,
		"monotone_branches":    monotone,
		"hard_branches":        hard,
	}
}
