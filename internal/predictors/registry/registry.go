// Package registry constructs predictors from textual descriptions such as
// "gshare:h=25,t=18" or "tournament:bp0=bimodal,bp1=gshare", so command-line
// tools and sweep harnesses can select any predictor of the examples
// library (Table II) by name.
package registry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/agree"
	"mbplib/internal/predictors/alpha"
	"mbplib/internal/predictors/batage"
	"mbplib/internal/predictors/bimodal"
	"mbplib/internal/predictors/filter"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/predictors/gskew"
	"mbplib/internal/predictors/loop"
	"mbplib/internal/predictors/ogehl"
	"mbplib/internal/predictors/perceptron"
	"mbplib/internal/predictors/statics"
	"mbplib/internal/predictors/tage"
	"mbplib/internal/predictors/tournament"
	"mbplib/internal/predictors/twolevel"
	"mbplib/internal/predictors/yags"
)

// params is a parsed key=value option set that records which keys were read,
// so unknown options are reported instead of silently ignored.
type params struct {
	vals map[string]string
	used map[string]bool
}

func parseParams(s string) (*params, error) {
	p := &params{vals: map[string]string{}, used: map[string]bool{}}
	if s == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("malformed option %q (want key=value)", kv)
		}
		p.vals[k] = v
	}
	return p, nil
}

func (p *params) str(key, def string) string {
	if v, ok := p.vals[key]; ok {
		p.used[key] = true
		return v
	}
	return def
}

func (p *params) intVal(key string, def int) (int, error) {
	v, ok := p.vals[key]
	if !ok {
		return def, nil
	}
	p.used[key] = true
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("option %s: %v", key, err)
	}
	return n, nil
}

func (p *params) unknown() []string {
	var extra []string
	for k := range p.vals {
		if !p.used[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	return extra
}

// Names lists the available predictor names, sorted.
func Names() []string {
	names := make([]string, 0, len(builders))
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

type builder func(*params) (bp.Predictor, error)

// builders is populated in init: buildTournament constructs its components
// through New, so a composite literal would form an initialization cycle.
var builders map[string]builder

func init() {
	builders = map[string]builder{
		"always-taken":     func(*params) (bp.Predictor, error) { return statics.NewTaken(), nil },
		"always-not-taken": func(*params) (bp.Predictor, error) { return statics.NewNotTaken(), nil },
		"bimodal":          buildBimodal,
		"gshare":           buildGShare,
		"twolevel":         buildTwoLevel,
		"tournament":       buildTournament,
		"gskew":            buildGskew,
		"perceptron":       buildPerceptron,
		"loop":             buildLoop,
		"tage":             buildTAGE,
		"batage":           buildBATAGE,
		"ogehl":            buildOGEHL,
		"yags":             buildYAGS,
		"agree":            buildAgree,
		"alpha":            buildAlpha,
		"filter":           buildFilter,
	}
}

// New builds the predictor described by spec, which is a name optionally
// followed by ":" and comma-separated key=value options. Run `mbpsim -list`
// for the catalogue.
func New(spec string) (bp.Predictor, error) {
	name, opts, _ := strings.Cut(spec, ":")
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown predictor %q (have %s)", name, strings.Join(Names(), ", "))
	}
	p, err := parseParams(opts)
	if err != nil {
		return nil, fmt.Errorf("registry: %s: %v", name, err)
	}
	pred, err := b(p)
	if err != nil {
		return nil, fmt.Errorf("registry: %s: %v", name, err)
	}
	if extra := p.unknown(); len(extra) > 0 {
		return nil, fmt.Errorf("registry: %s: unknown options %v", name, extra)
	}
	return pred, nil
}

func buildBimodal(p *params) (bp.Predictor, error) {
	logSize, err := p.intVal("t", 14)
	if err != nil {
		return nil, err
	}
	bits, err := p.intVal("bits", 2)
	if err != nil {
		return nil, err
	}
	return bimodal.New(bimodal.WithLogSize(logSize), bimodal.WithCounterBits(bits)), nil
}

func buildGShare(p *params) (bp.Predictor, error) {
	h, err := p.intVal("h", 15)
	if err != nil {
		return nil, err
	}
	t, err := p.intVal("t", 17)
	if err != nil {
		return nil, err
	}
	return gshare.New(gshare.WithHistoryLength(h), gshare.WithLogSize(t)), nil
}

func buildTwoLevel(p *params) (bp.Predictor, error) {
	variant := p.str("variant", "GAs")
	if len(variant) != 3 || variant[1] != 'A' {
		return nil, fmt.Errorf("bad two-level variant %q (want e.g. GAg, PAs)", variant)
	}
	level := func(c byte) (twolevel.Level, error) {
		switch c {
		case 'G', 'g':
			return twolevel.Global, nil
		case 'S', 's':
			return twolevel.PerSet, nil
		case 'P', 'p':
			return twolevel.PerAddress, nil
		}
		return 0, fmt.Errorf("bad two-level level %q", string(c))
	}
	first, err := level(variant[0])
	if err != nil {
		return nil, err
	}
	second, err := level(variant[2])
	if err != nil {
		return nil, err
	}
	h, err := p.intVal("h", 12)
	if err != nil {
		return nil, err
	}
	logBHRs, err := p.intVal("bhrs", 0)
	if err != nil {
		return nil, err
	}
	logPHTs, err := p.intVal("phts", 0)
	if err != nil {
		return nil, err
	}
	return twolevel.New(twolevel.Config{
		First: first, Second: second, HistLen: h, LogBHRs: logBHRs, LogPHTs: logPHTs,
	}), nil
}

func buildTournament(p *params) (bp.Predictor, error) {
	meta, err := New(p.str("meta", "bimodal:t=13"))
	if err != nil {
		return nil, fmt.Errorf("meta: %v", err)
	}
	bp0, err := New(p.str("bp0", "bimodal"))
	if err != nil {
		return nil, fmt.Errorf("bp0: %v", err)
	}
	bp1, err := New(p.str("bp1", "gshare"))
	if err != nil {
		return nil, fmt.Errorf("bp1: %v", err)
	}
	return tournament.New(meta, bp0, bp1), nil
}

func buildGskew(p *params) (bp.Predictor, error) {
	t, err := p.intVal("t", 15)
	if err != nil {
		return nil, err
	}
	h0, err := p.intVal("h0", 9)
	if err != nil {
		return nil, err
	}
	h1, err := p.intVal("h1", 18)
	if err != nil {
		return nil, err
	}
	return gskew.New(gskew.WithLogSize(t), gskew.WithHistoryLengths(h0, h1)), nil
}

func buildPerceptron(p *params) (bp.Predictor, error) {
	t, err := p.intVal("t", 13)
	if err != nil {
		return nil, err
	}
	return perceptron.New(perceptron.WithLogSize(t)), nil
}

func buildLoop(p *params) (bp.Predictor, error) {
	t, err := p.intVal("t", 6)
	if err != nil {
		return nil, err
	}
	return loop.New(loop.WithLogSize(t)), nil
}

func tageGeometry(p *params) (n, minH, maxH, logSize, tagBits int, err error) {
	if n, err = p.intVal("tables", 8); err != nil {
		return
	}
	if minH, err = p.intVal("minhist", 4); err != nil {
		return
	}
	if maxH, err = p.intVal("maxhist", 320); err != nil {
		return
	}
	if logSize, err = p.intVal("t", 10); err != nil {
		return
	}
	tagBits, err = p.intVal("tag", 11)
	return
}

func buildTAGE(p *params) (bp.Predictor, error) {
	n, minH, maxH, logSize, tagBits, err := tageGeometry(p)
	if err != nil {
		return nil, err
	}
	return tage.New(tage.WithGeometric(n, minH, maxH, logSize, tagBits)), nil
}

func buildBATAGE(p *params) (bp.Predictor, error) {
	n, minH, maxH, logSize, tagBits, err := tageGeometry(p)
	if err != nil {
		return nil, err
	}
	return batage.New(batage.WithGeometric(n, minH, maxH, logSize, tagBits)), nil
}

func buildOGEHL(p *params) (bp.Predictor, error) {
	t, err := p.intVal("t", 11)
	if err != nil {
		return nil, err
	}
	bits, err := p.intVal("bits", 5)
	if err != nil {
		return nil, err
	}
	return ogehl.New(ogehl.WithLogSize(t), ogehl.WithCounterBits(bits)), nil
}

func buildYAGS(p *params) (bp.Predictor, error) {
	choice, err := p.intVal("choice", 14)
	if err != nil {
		return nil, err
	}
	cache, err := p.intVal("cache", 12)
	if err != nil {
		return nil, err
	}
	h, err := p.intVal("h", 12)
	if err != nil {
		return nil, err
	}
	return yags.New(yags.WithLogChoice(choice), yags.WithLogCache(cache), yags.WithHistoryLength(h)), nil
}

func buildAgree(p *params) (bp.Predictor, error) {
	t, err := p.intVal("t", 15)
	if err != nil {
		return nil, err
	}
	h, err := p.intVal("h", 14)
	if err != nil {
		return nil, err
	}
	return agree.New(agree.WithLogAgree(t), agree.WithHistoryLength(h)), nil
}

func buildAlpha(p *params) (bp.Predictor, error) {
	local, err := p.intVal("local", 10)
	if err != nil {
		return nil, err
	}
	global, err := p.intVal("global", 12)
	if err != nil {
		return nil, err
	}
	return alpha.New(alpha.WithLogLocal(local), alpha.WithLogGlobal(global)), nil
}

func buildFilter(p *params) (bp.Predictor, error) {
	inner, err := New(p.str("inner", "gshare"))
	if err != nil {
		return nil, fmt.Errorf("inner: %v", err)
	}
	threshold, err := p.intVal("threshold", 16)
	if err != nil {
		return nil, err
	}
	return filter.New(inner, filter.WithThreshold(threshold)), nil
}
