package registry

import (
	"strings"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/predtest"
)

func TestAllNamesBuildWithDefaults(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if p == nil {
			t.Errorf("New(%q) returned nil", name)
		}
	}
}

func TestBuiltPredictorsWork(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		// A couple of events must not panic and Predict must be callable.
		b := bp.Branch{IP: 0x400040, Target: 0x400080, Opcode: bp.OpCondJump, Taken: true}
		_ = p.Predict(b.IP)
		p.Train(b)
		p.Track(b)
		_ = p.Predict(b.IP)
	}
}

func TestGShareOptions(t *testing.T) {
	p, err := New("gshare:h=25,t=18")
	if err != nil {
		t.Fatal(err)
	}
	md := p.(bp.MetadataProvider).Metadata()
	if md["history_length"] != 25 || md["log_table_size"] != 18 {
		t.Errorf("options not applied: %v", md)
	}
}

func TestTwoLevelVariants(t *testing.T) {
	for _, v := range []string{"GAg", "GAs", "GAp", "SAg", "SAs", "SAp", "PAg", "PAs", "PAp"} {
		p, err := New("twolevel:variant=" + v)
		if err != nil {
			t.Errorf("variant %s: %v", v, err)
			continue
		}
		md := p.(bp.MetadataProvider).Metadata()
		if !strings.HasSuffix(md["name"].(string), v) {
			t.Errorf("variant %s built as %v", v, md["name"])
		}
	}
	if _, err := New("twolevel:variant=XAy"); err == nil {
		t.Errorf("bad variant accepted")
	}
}

func TestTournamentComposition(t *testing.T) {
	p, err := New("tournament:meta=bimodal:t=10,bp0=always-taken,bp1=gshare:h=10")
	// Note: nested colons inside component specs are supported because only
	// the first colon splits name from options... this spec is ambiguous,
	// so expect an error OR a valid tournament; the simple form must work:
	_ = p
	_ = err
	q, err := New("tournament")
	if err != nil {
		t.Fatalf("default tournament: %v", err)
	}
	md := q.(bp.MetadataProvider).Metadata()
	if md["name"] != "MBPlib Tournament" {
		t.Errorf("tournament metadata: %v", md)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"nope",
		"gshare:h",
		"gshare:h=abc",
		"gshare:zzz=1",
		"bimodal:t=x",
	}
	for _, spec := range cases {
		if _, err := New(spec); err == nil {
			t.Errorf("New(%q) succeeded", spec)
		}
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
	// Every predictor of Table II is present.
	want := []string{"bimodal", "twolevel", "gshare", "tournament", "gskew", "perceptron", "tage", "batage"}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("Table II predictor %q missing from registry", w)
		}
	}
}

func TestRegistryPredictorsOnWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	spec := predtest.MixedSpec(20000)
	for _, name := range []string{"bimodal", "gshare", "tage", "batage", "gskew", "perceptron", "tournament", "loop"} {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		acc := predtest.AccuracyOnSpec(t, p, spec)
		if acc < 0.55 {
			t.Errorf("%s accuracy %v on mixed workload", name, acc)
		}
	}
}
