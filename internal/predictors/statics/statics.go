// Package statics provides the trivial static predictors — always taken and
// always not taken. They are the measuring sticks of the examples library:
// any dynamic predictor must beat them, and they are handy as the cheapest
// possible subcomponents in compositions.
package statics

import "mbplib/internal/bp"

// Taken always predicts taken.
type Taken struct{}

// NewTaken returns an always-taken predictor.
func NewTaken() *Taken { return &Taken{} }

// Predict implements bp.Predictor.
func (*Taken) Predict(uint64) bool { return true }

// Train implements bp.Predictor. Static predictors have no state.
func (*Taken) Train(bp.Branch) {}

// Track implements bp.Predictor.
func (*Taken) Track(bp.Branch) {}

// Metadata implements bp.MetadataProvider.
func (*Taken) Metadata() map[string]any {
	return map[string]any{"name": "MBPlib Always Taken"}
}

// NotTaken always predicts not taken.
type NotTaken struct{}

// NewNotTaken returns an always-not-taken predictor.
func NewNotTaken() *NotTaken { return &NotTaken{} }

// Predict implements bp.Predictor.
func (*NotTaken) Predict(uint64) bool { return false }

// Train implements bp.Predictor.
func (*NotTaken) Train(bp.Branch) {}

// Track implements bp.Predictor.
func (*NotTaken) Track(bp.Branch) {}

// Metadata implements bp.MetadataProvider.
func (*NotTaken) Metadata() map[string]any {
	return map[string]any{"name": "MBPlib Always Not Taken"}
}
