package statics

import (
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/predtest"
)

func TestTaken(t *testing.T) {
	p := NewTaken()
	if !p.Predict(0x1234) {
		t.Errorf("always-taken predicted not taken")
	}
	b := bp.Branch{IP: 4, Target: 8, Opcode: bp.OpCondJump, Taken: false}
	p.Train(b)
	p.Track(b)
	if !p.Predict(4) {
		t.Errorf("training changed a static predictor")
	}
	predtest.CheckMetadata(t, p)
}

func TestNotTaken(t *testing.T) {
	p := NewNotTaken()
	if p.Predict(0x1234) {
		t.Errorf("always-not-taken predicted taken")
	}
	predtest.CheckMetadata(t, p)
}

func TestAccuracyOnConstantStreams(t *testing.T) {
	if acc := predtest.Drive(NewTaken(), 0x40, predtest.Constant(true, 100)); acc != 1 {
		t.Errorf("always-taken on all-taken stream: accuracy %v", acc)
	}
	if acc := predtest.Drive(NewNotTaken(), 0x40, predtest.Constant(true, 100)); acc != 0 {
		t.Errorf("always-not-taken on all-taken stream: accuracy %v", acc)
	}
}
