// Package bimodal implements the bimodal predictor of Lee and Smith: a
// single table of saturating counters indexed by the branch address. It is
// the simplest dynamic predictor in the examples library and, as in the
// paper's evaluation (§VII-A), the one whose simulation time is dominated
// by the simulator rather than the predictor — which makes it the probe for
// raw simulator speed in Table III.
package bimodal

import (
	"fmt"
	"io"

	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// Predictor is a bimodal branch predictor.
type Predictor struct {
	table       []utils.SignedCounter
	logSize     int
	counterBits int
	mask        uint64
}

// Option configures the predictor.
type Option func(*config)

type config struct {
	logSize     int
	counterBits int
}

// WithLogSize sets the log2 of the table size. Default 14 (16 Ki entries;
// with 2-bit counters, a 4 KiB budget).
func WithLogSize(n int) Option { return func(c *config) { c.logSize = n } }

// WithCounterBits sets the counter width. Default 2.
func WithCounterBits(n int) Option { return func(c *config) { c.counterBits = n } }

// New returns a bimodal predictor.
func New(opts ...Option) *Predictor {
	cfg := config{logSize: 14, counterBits: 2}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.logSize < 1 || cfg.logSize > 30 {
		panic(fmt.Sprintf("bimodal: invalid log table size %d", cfg.logSize))
	}
	p := &Predictor{
		table:       make([]utils.SignedCounter, 1<<cfg.logSize),
		logSize:     cfg.logSize,
		counterBits: cfg.counterBits,
		mask:        1<<cfg.logSize - 1,
	}
	for i := range p.table {
		p.table[i] = utils.NewSignedCounter(cfg.counterBits, 0)
	}
	return p
}

func (p *Predictor) index(ip uint64) uint64 {
	return utils.XorFold(ip>>2, p.logSize)
}

// Predict implements bp.Predictor.
func (p *Predictor) Predict(ip uint64) bool {
	return p.table[p.index(ip)].Predict()
}

// Train implements bp.Predictor.
func (p *Predictor) Train(b bp.Branch) {
	p.table[p.index(b.IP)].SumOrSub(b.Taken)
}

// Track implements bp.Predictor. Bimodal keeps no scenario state.
func (p *Predictor) Track(bp.Branch) {}

// Metadata implements bp.MetadataProvider.
func (p *Predictor) Metadata() map[string]any {
	return map[string]any{
		"name":           "MBPlib Bimodal",
		"log_table_size": p.logSize,
		"counter_bits":   p.counterBits,
	}
}

// ckptVersion is the checkpoint format version of this predictor.
const ckptVersion = 1

// Checkpoint implements bp.Checkpointer.
func (p *Predictor) Checkpoint(w io.Writer) error {
	cw := bp.NewCkptWriter(w)
	cw.Header("bimodal", ckptVersion)
	cw.Int(p.logSize)
	cw.Int(p.counterBits)
	for i := range p.table {
		cw.I64(int64(p.table[i].Get()))
	}
	return cw.Err()
}

// Restore implements bp.Checkpointer.
func (p *Predictor) Restore(r io.Reader) error {
	cr := bp.NewCkptReader(r)
	if v := cr.Header("bimodal"); cr.Err() == nil && v != ckptVersion {
		cr.Corrupt("unknown bimodal checkpoint version %d", v)
	}
	cr.ExpectInt("log_table_size", p.logSize)
	cr.ExpectInt("counter_bits", p.counterBits)
	for i := range p.table {
		p.table[i].Set(int(cr.I64()))
	}
	return cr.Err()
}
