package bimodal

import (
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/predtest"
)

func testBranch(ip uint64, taken bool) bp.Branch {
	return bp.Branch{IP: ip, Target: ip + 64, Opcode: bp.OpCondJump, Taken: taken}
}

func TestLearnsBiasedBranches(t *testing.T) {
	p := New()
	// Two branches with opposite constant behaviour.
	acc := predtest.DriveBranches(p,
		[]uint64{0x100, 0x200},
		[][]bool{predtest.Constant(true, 200), predtest.Constant(false, 200)})
	if acc != 1 {
		t.Errorf("accuracy on constant branches = %v, want 1", acc)
	}
}

func TestCannotLearnAlternating(t *testing.T) {
	p := New()
	acc := predtest.Drive(p, 0x100, predtest.Alternating(1000))
	// A 2-bit counter on TNTN... hovers around 50%.
	if acc > 0.7 {
		t.Errorf("bimodal on alternating stream: accuracy %v, expected near 0.5", acc)
	}
}

func TestHysteresis(t *testing.T) {
	p := New()
	outcomes := append(predtest.Constant(true, 10), false)
	outcomes = append(outcomes, true)
	// After 10 takens, one not-taken must not flip the prediction.
	var preds []bool
	for _, taken := range outcomes {
		preds = append(preds, p.Predict(0x40))
		b := testBranch(0x40, taken)
		p.Train(b)
		p.Track(b)
	}
	if !preds[len(preds)-1] {
		t.Errorf("single not-taken flipped a saturated 2-bit counter")
	}
}

func TestOneBitCounterFlipsImmediately(t *testing.T) {
	p := New(WithCounterBits(1))
	for i := 0; i < 10; i++ {
		b := testBranch(0x40, true)
		p.Train(b)
	}
	p.Train(testBranch(0x40, false))
	if p.Predict(0x40) {
		t.Errorf("1-bit counter did not flip after one not-taken")
	}
}

func TestContract(t *testing.T) {
	p := New()
	predtest.CheckPredictIsPure(t, p, []uint64{0x100, 0x999})
	predtest.CheckMetadata(t, p)
}

func TestMetadataParams(t *testing.T) {
	p := New(WithLogSize(10), WithCounterBits(3))
	md := p.Metadata()
	if md["log_table_size"] != 10 || md["counter_bits"] != 3 {
		t.Errorf("metadata = %v", md)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("invalid log size accepted")
		}
	}()
	New(WithLogSize(0))
}

func TestReasonableOnMixedWorkload(t *testing.T) {
	acc := predtest.AccuracyOnSpec(t, New(), predtest.MixedSpec(50000))
	if acc < 0.55 {
		t.Errorf("bimodal accuracy on mixed workload = %v, want >= 0.55", acc)
	}
}
