package bimodal

import (
	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// This file is the bimodal bp.BatchPredictor kernel. The scalar path hashes
// each conditional branch twice (once in Predict, once in Train) and pays
// three interface calls per event; the kernel hoists the table base and the
// counter saturation bounds out of the loop, folds the address with the
// unrolled branch-free XorFoldWide (valid for the usual table sizes; narrow
// tables keep the generic fold), computes the index once per conditional
// branch, and touches the counter through a single pointer for both the
// read and the update. Track is a no-op, so non-conditional events cost
// nothing.

// PredictBatch implements bp.BatchPredictor: the pure batched read path.
func (p *Predictor) PredictBatch(branches []bp.Branch, out []bp.Prediction) {
	table, logSize := p.table, p.logSize
	if logSize < 10 {
		for i := range branches {
			out[i] = bp.Prediction(table[utils.XorFold(branches[i].IP>>2, logSize)].Predict())
		}
		return
	}
	for i := range branches {
		out[i] = bp.Prediction(table[utils.XorFoldWide(branches[i].IP>>2, logSize)].Predict())
	}
}

// TrainBatch implements bp.BatchPredictor: the fused predict+train kernel,
// byte-identical in effect to the scalar Predict/Train/Track sequence.
func (p *Predictor) TrainBatch(branches []bp.Branch, out []bp.Prediction) {
	table, logSize := p.table, p.logSize
	if logSize < 10 {
		for i := range branches {
			b := &branches[i]
			if !b.Opcode.IsConditional() {
				continue
			}
			c := &table[utils.XorFold(b.IP>>2, logSize)]
			out[i] = bp.Prediction(c.Predict())
			c.SumOrSub(b.Taken)
		}
		return
	}
	min, max := table[0].Bounds()
	for i := range branches {
		b := &branches[i]
		if !b.Opcode.IsConditional() {
			continue
		}
		c := &table[utils.XorFoldWide(b.IP>>2, logSize)]
		out[i] = bp.Prediction(c.PredictSumOrSub(b.Taken, min, max))
	}
}
