package bimodal

import (
	"bytes"
	"errors"
	"testing"

	"mbplib/internal/faults"

	"mbplib/internal/predictors/gshare"
)

// A checkpoint names its predictor; restoring another predictor's bytes
// must fail as corrupt, never reinterpret them.
func TestRestoreRejectsForeignCheckpoint(t *testing.T) {
	var ckpt bytes.Buffer
	if err := gshare.New().Checkpoint(&ckpt); err != nil {
		t.Fatalf("gshare Checkpoint: %v", err)
	}
	if err := New().Restore(bytes.NewReader(ckpt.Bytes())); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("restoring a gshare checkpoint into bimodal: err = %v, want ErrCorrupt", err)
	}
}
