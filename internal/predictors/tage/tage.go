// Package tage implements the TAGE predictor of Seznec and Michaud ("A case
// for (partially) tagged geometric history length branch prediction"): a
// bimodal base predictor backed by a set of partially tagged tables indexed
// with geometrically growing global-history lengths. The longest-history
// matching table provides the prediction; allocation on mispredictions and
// usefulness counters manage the tables as a cache of history-dependent
// branch behaviours.
//
// As in the MBPlib examples library, every structural parameter — number of
// tables, per-table history length, tag width, counter width — is
// configurable, and the configuration is reported in the predictor's
// metadata (§V).
package tage

import (
	"fmt"
	"io"
	"math"

	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// TableSpec describes one tagged table.
type TableSpec struct {
	HistLen int // global-history bits folded into the index
	LogSize int // log2 entries
	TagBits int // partial tag width
	CtrBits int // prediction counter width
}

// entry is one tagged-table entry.
type entry struct {
	tag uint16
	ctr utils.SignedCounter
	u   utils.UnsignedCounter
}

type table struct {
	spec    TableSpec
	entries []entry
	idxFold *utils.FoldedHistory
	tagFold [2]*utils.FoldedHistory
}

// Predictor is a TAGE branch predictor.
type Predictor struct {
	base     []utils.SignedCounter
	logBase  int
	tables   []table
	ghist    *utils.GlobalHistory
	useAlt   utils.SignedCounter // use-alt-on-newly-allocated policy counter
	rng      *utils.Rand
	ticks    uint64
	resetLog int // u counters age out every 2^resetLog updates
	uPhase   bool

	// Prediction cache, valid for lastIP until the next Track.
	lastIP    uint64
	haveCache bool
	cache     lookup
	idxBuf    []uint64
	tagBuf    []uint16
	candBuf   []int

	allocations uint64 // statistic
	uResets     uint64 // statistic
}

// lookup is the result of scanning the tables for one address. The idx and
// tag slices alias buffers owned by the Predictor — only the cached lookup
// is ever live, so the hot path stays allocation-free.
type lookup struct {
	provider int // providing table, -1 for base
	alt      int // alternate table, -1 for base
	idx      []uint64
	tag      []uint16
	baseIdx  uint64
	pred     bool // final prediction
	provPred bool // provider component's prediction
	altPred  bool
}

// Option configures the predictor.
type Option func(*config)

type config struct {
	tables   []TableSpec
	logBase  int
	resetLog int
	seed     uint64
}

// WithTables sets the tagged-table geometry explicitly, one spec per table
// in ascending history order.
func WithTables(specs []TableSpec) Option { return func(c *config) { c.tables = specs } }

// WithGeometric builds n tables with history lengths growing geometrically
// from minHist to maxHist, all with the given logSize, tagBits and 3-bit
// counters.
func WithGeometric(n, minHist, maxHist, logSize, tagBits int) Option {
	return func(c *config) {
		c.tables = GeometricTables(n, minHist, maxHist, logSize, tagBits)
	}
}

// WithLogBase sets the base bimodal table's log size. Default 13.
func WithLogBase(n int) Option { return func(c *config) { c.logBase = n } }

// WithResetLog sets the usefulness aging period to 2^n updates. Default 18.
func WithResetLog(n int) Option { return func(c *config) { c.resetLog = n } }

// WithSeed seeds the allocation randomiser. Default 1.
func WithSeed(s uint64) Option { return func(c *config) { c.seed = s } }

// GeometricTables returns n TableSpecs whose history lengths grow
// geometrically from minHist to maxHist.
func GeometricTables(n, minHist, maxHist, logSize, tagBits int) []TableSpec {
	if n < 1 || minHist < 1 || maxHist < minHist {
		panic(fmt.Sprintf("tage: invalid geometric series n=%d min=%d max=%d", n, minHist, maxHist))
	}
	specs := make([]TableSpec, n)
	for i := range specs {
		l := minHist
		if n > 1 {
			ratio := math.Pow(float64(maxHist)/float64(minHist), float64(i)/float64(n-1))
			l = int(float64(minHist)*ratio + 0.5)
		}
		if i > 0 && l <= specs[i-1].HistLen {
			l = specs[i-1].HistLen + 1
		}
		specs[i] = TableSpec{HistLen: l, LogSize: logSize, TagBits: tagBits, CtrBits: 3}
	}
	return specs
}

// New returns a TAGE predictor. The default configuration is 8 tables with
// history lengths from 4 to 320, 2^10 entries and 11-bit tags each, over a
// 2^13-entry bimodal base.
func New(opts ...Option) *Predictor {
	cfg := config{logBase: 13, resetLog: 18, seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.tables == nil {
		cfg.tables = GeometricTables(8, 4, 320, 10, 11)
	}
	maxHist := 0
	for i, ts := range cfg.tables {
		if ts.HistLen < 1 || ts.LogSize < 1 || ts.LogSize > 24 || ts.TagBits < 1 || ts.TagBits > 16 {
			panic(fmt.Sprintf("tage: invalid table spec %+v", ts))
		}
		if i > 0 && ts.HistLen <= cfg.tables[i-1].HistLen {
			panic("tage: history lengths must be strictly ascending")
		}
		if ts.HistLen > maxHist {
			maxHist = ts.HistLen
		}
	}
	p := &Predictor{
		base:     make([]utils.SignedCounter, 1<<cfg.logBase),
		logBase:  cfg.logBase,
		ghist:    utils.NewGlobalHistory(maxHist + 1),
		useAlt:   utils.NewSignedCounter(4, 0),
		rng:      utils.NewRand(cfg.seed),
		resetLog: cfg.resetLog,
	}
	for _, ts := range cfg.tables {
		ctrBits := ts.CtrBits
		if ctrBits == 0 {
			ctrBits = 3
		}
		t := table{
			spec:    ts,
			entries: make([]entry, 1<<ts.LogSize),
			idxFold: utils.NewFoldedHistory(ts.HistLen, ts.LogSize),
		}
		t.tagFold[0] = utils.NewFoldedHistory(ts.HistLen, ts.TagBits)
		t.tagFold[1] = utils.NewFoldedHistory(ts.HistLen, max(ts.TagBits-1, 1))
		for i := range t.entries {
			t.entries[i].ctr = utils.NewSignedCounter(ctrBits, 0)
			t.entries[i].u = utils.NewUnsignedCounter(2, 0)
		}
		p.tables = append(p.tables, t)
	}
	p.idxBuf = make([]uint64, len(p.tables))
	p.tagBuf = make([]uint16, len(p.tables))
	p.candBuf = make([]int, 0, len(p.tables))
	return p
}

func (t *table) index(ip uint64) uint64 {
	// Mixing two folds of different widths keeps the index aperiodic even
	// when the history itself is periodic with a period divisible by one
	// fold width (e.g. a single loop branch), which would otherwise alias
	// every loop position onto one entry.
	h := t.idxFold.Value() ^ t.tagFold[0].Value()<<1
	return utils.XorFold(ip^(ip>>uint(t.spec.LogSize))^h, t.spec.LogSize)
}

func (t *table) tag(ip uint64) uint16 {
	v := ip ^ t.tagFold[0].Value() ^ (t.tagFold[1].Value() << 1)
	return uint16(utils.XorFold(v, t.spec.TagBits))
}

func (p *Predictor) baseIndex(ip uint64) uint64 {
	return utils.XorFold(ip>>2, p.logBase)
}

// scan resolves the provider/alternate components for ip.
func (p *Predictor) scan(ip uint64) lookup {
	l := lookup{
		provider: -1, alt: -1,
		idx:     p.idxBuf,
		tag:     p.tagBuf,
		baseIdx: p.baseIndex(ip),
	}
	for i := range p.tables {
		l.idx[i] = p.tables[i].index(ip)
		l.tag[i] = p.tables[i].tag(ip)
	}
	for i := len(p.tables) - 1; i >= 0; i-- {
		if p.tables[i].entries[l.idx[i]].tag == l.tag[i] {
			if l.provider == -1 {
				l.provider = i
			} else {
				l.alt = i
				break
			}
		}
	}
	basePred := p.base[l.baseIdx].Predict()
	l.altPred = basePred
	if l.alt >= 0 {
		l.altPred = p.tables[l.alt].entries[l.idx[l.alt]].ctr.Predict()
	}
	if l.provider >= 0 {
		e := &p.tables[l.provider].entries[l.idx[l.provider]]
		l.provPred = e.ctr.Predict()
		// A weak, never-useful entry is "newly allocated": optionally trust
		// the alternate prediction instead (the use-alt-on-NA policy).
		if e.ctr.IsWeak() && e.u.IsZero() && p.useAlt.Predict() {
			l.pred = l.altPred
		} else {
			l.pred = l.provPred
		}
	} else {
		l.provPred = basePred
		l.pred = basePred
	}
	return l
}

func (p *Predictor) cached(ip uint64) *lookup {
	if !p.haveCache || p.lastIP != ip {
		p.cache = p.scan(ip)
		p.lastIP = ip
		p.haveCache = true
	}
	return &p.cache
}

// Predict implements bp.Predictor.
//
//mbpvet:impure lookup memoization only: repeated Predicts for the same ip return the cached scan, and Track invalidates it, so observable predictions never change
func (p *Predictor) Predict(ip uint64) bool {
	return p.cached(ip).pred
}

// Train implements bp.Predictor.
func (p *Predictor) Train(b bp.Branch) {
	p.trainLookup(p.cached(b.IP), b.Taken)
}

// trainLookup applies the full TAGE update for one resolved branch whose
// components were scanned into l. Shared by Train (which goes through the
// lookup cache) and the batch kernel (which scans directly).
func (p *Predictor) trainLookup(l *lookup, taken bool) {
	if l.provider >= 0 {
		e := &p.tables[l.provider].entries[l.idx[l.provider]]
		// Track whether trusting the alternate on newly allocated entries
		// would have been the better policy.
		if e.ctr.IsWeak() && e.u.IsZero() && l.provPred != l.altPred {
			p.useAlt.SumOrSub(l.altPred == taken)
		}
		e.ctr.SumOrSub(taken)
		// Usefulness: the provider proved useful when it disagreed with the
		// alternate and was right.
		if l.provPred != l.altPred {
			if l.provPred == taken {
				e.u.Inc()
			} else {
				e.u.Dec()
			}
		}
		// The base keeps learning when it served as the alternate.
		if l.alt == -1 {
			p.base[l.baseIdx].SumOrSub(taken)
		}
	} else {
		p.base[l.baseIdx].SumOrSub(taken)
	}

	// Allocate a longer-history entry on a misprediction (§: TAGE learns new
	// history correlations by promotion into longer tables).
	if l.pred != taken && l.provider < len(p.tables)-1 {
		p.allocate(l, taken)
	}

	// Periodic aging of usefulness counters: alternately clear the high and
	// low bit so stale entries become replaceable.
	p.ticks++
	if p.ticks >= 1<<p.resetLog {
		p.ticks = 0
		p.uResets++
		for ti := range p.tables {
			for ei := range p.tables[ti].entries {
				u := &p.tables[ti].entries[ei].u
				v := u.Get()
				if p.uPhase {
					u.Set(v &^ 2)
				} else {
					u.Set(v &^ 1)
				}
			}
		}
		p.uPhase = !p.uPhase
	}
}

// allocate claims an entry in a table with longer history than the
// provider, preferring (with probability 2/3) the shortest candidate so
// histories grow only as needed.
func (p *Predictor) allocate(l *lookup, taken bool) {
	start := l.provider + 1
	candidates := p.candBuf[:0]
	for i := start; i < len(p.tables); i++ {
		if p.tables[i].entries[l.idx[i]].u.IsZero() {
			candidates = append(candidates, i)
		}
	}
	p.candBuf = candidates[:0]
	if len(candidates) == 0 {
		// Nothing replaceable: decay instead, so space appears eventually.
		for i := start; i < len(p.tables); i++ {
			p.tables[i].entries[l.idx[i]].u.Dec()
		}
		return
	}
	pick := candidates[0]
	if len(candidates) > 1 && p.rng.Intn(3) == 0 {
		pick = candidates[1+p.rng.Intn(len(candidates)-1)]
	}
	e := &p.tables[pick].entries[l.idx[pick]]
	e.tag = l.tag[pick]
	if taken {
		e.ctr.Set(0)
	} else {
		e.ctr.Set(-1)
	}
	e.u.Set(0)
	p.allocations++
}

// Track implements bp.Predictor: push the outcome through the global
// history and every folded history.
func (p *Predictor) Track(b bp.Branch) {
	p.trackOutcome(b.Taken)
	p.haveCache = false
}

// trackOutcome pushes one outcome through the global history and every
// folded history. Shared by Track and the batch kernel; the kernel defers
// the lookup-cache invalidation to the end of its batch (the cache is not
// consulted inside it), which is why the invalidation lives in Track.
func (p *Predictor) trackOutcome(taken bool) {
	p.ghist.Push(taken)
	for i := range p.tables {
		t := &p.tables[i]
		oldest := p.ghist.Bit(t.spec.HistLen)
		t.idxFold.Update(taken, oldest)
		t.tagFold[0].Update(taken, oldest)
		t.tagFold[1].Update(taken, oldest)
	}
}

// Metadata implements bp.MetadataProvider.
func (p *Predictor) Metadata() map[string]any {
	specs := make([]map[string]any, len(p.tables))
	for i, t := range p.tables {
		specs[i] = map[string]any{
			"history_length": t.spec.HistLen,
			"log_size":       t.spec.LogSize,
			"tag_bits":       t.spec.TagBits,
		}
	}
	return map[string]any{
		"name":     "MBPlib TAGE",
		"log_base": p.logBase,
		"tables":   specs,
	}
}

// Statistics implements bp.StatsProvider.
func (p *Predictor) Statistics() map[string]any {
	return map[string]any{
		"allocations": p.allocations,
		"u_resets":    p.uResets,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ckptVersion is the checkpoint format version of this predictor.
const ckptVersion = 1

// Checkpoint implements bp.Checkpointer. The PRNG state, tick counter and
// statistics are included so that a restored instance makes the same
// allocation decisions and reports the same Statistics() as the original.
// The prediction cache is derived state (recomputed by the next cached()
// call from unchanged tables) and is deliberately not serialized.
func (p *Predictor) Checkpoint(w io.Writer) error {
	cw := bp.NewCkptWriter(w)
	cw.Header("tage", ckptVersion)
	cw.Int(p.logBase)
	cw.Int(p.resetLog)
	cw.Int(len(p.tables))
	for i := range p.tables {
		ts := p.tables[i].spec
		cw.Int(ts.HistLen)
		cw.Int(ts.LogSize)
		cw.Int(ts.TagBits)
		cw.Int(ts.CtrBits)
	}
	for i := range p.base {
		cw.I64(int64(p.base[i].Get()))
	}
	for i := range p.tables {
		t := &p.tables[i]
		for ei := range t.entries {
			e := &t.entries[ei]
			cw.U64(uint64(e.tag))
			cw.I64(int64(e.ctr.Get()))
			cw.U64(uint64(e.u.Get()))
		}
		cw.U64(t.idxFold.Value())
		cw.U64(t.tagFold[0].Value())
		cw.U64(t.tagFold[1].Value())
	}
	cw.U64s(p.ghist.Words())
	cw.I64(int64(p.useAlt.Get()))
	cw.U64(p.rng.State())
	cw.U64(p.ticks)
	cw.Bool(p.uPhase)
	cw.U64(p.allocations)
	cw.U64(p.uResets)
	return cw.Err()
}

// Restore implements bp.Checkpointer.
func (p *Predictor) Restore(r io.Reader) error {
	cr := bp.NewCkptReader(r)
	if v := cr.Header("tage"); cr.Err() == nil && v != ckptVersion {
		cr.Corrupt("unknown tage checkpoint version %d", v)
	}
	cr.ExpectInt("log_base", p.logBase)
	cr.ExpectInt("reset_log", p.resetLog)
	cr.ExpectInt("table count", len(p.tables))
	for i := range p.tables {
		ts := p.tables[i].spec
		cr.ExpectInt(fmt.Sprintf("table %d history length", i), ts.HistLen)
		cr.ExpectInt(fmt.Sprintf("table %d log size", i), ts.LogSize)
		cr.ExpectInt(fmt.Sprintf("table %d tag bits", i), ts.TagBits)
		cr.ExpectInt(fmt.Sprintf("table %d counter bits", i), ts.CtrBits)
	}
	if err := cr.Err(); err != nil {
		return err
	}
	for i := range p.base {
		p.base[i].Set(int(cr.I64()))
	}
	for i := range p.tables {
		t := &p.tables[i]
		for ei := range t.entries {
			e := &t.entries[ei]
			e.tag = uint16(cr.U64())
			e.ctr.Set(int(cr.I64()))
			e.u.Set(uint(cr.U64()))
		}
		t.idxFold.SetValue(cr.U64())
		t.tagFold[0].SetValue(cr.U64())
		t.tagFold[1].SetValue(cr.U64())
	}
	words := cr.U64s()
	if wantWords := (p.ghist.Len() + 63) / 64; len(words) != wantWords && cr.Err() == nil {
		cr.Corrupt("global history of %d words, restoring instance has %d", len(words), wantWords)
	}
	useAlt := int(cr.I64())
	rngState := cr.U64()
	ticks := cr.U64()
	uPhase := cr.Bool()
	allocations := cr.U64()
	uResets := cr.U64()
	if err := cr.Err(); err != nil {
		return err
	}
	p.ghist.SetWords(words)
	p.useAlt.Set(useAlt)
	p.rng.SetState(rngState)
	p.ticks = ticks
	p.uPhase = uPhase
	p.allocations = allocations
	p.uResets = uResets
	p.haveCache = false
	return nil
}
