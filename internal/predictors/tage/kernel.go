package tage

import (
	"mbplib/internal/bp"
)

// This file is the TAGE bp.BatchPredictor kernel. TAGE already memoizes its
// table scan between Predict and Train, so the kernel's win is structural
// rather than arithmetic: one virtual call per batch instead of three per
// event, no per-event copy of the scan result into the lookup cache, and
// one cache invalidation per batch instead of one per event. The update and
// history logic is shared verbatim with the scalar path (trainLookup,
// trackOutcome), so the two paths cannot drift.

// PredictBatch implements bp.BatchPredictor: the batched read path. Every
// entry is resolved by a fresh table scan under the state as of entry,
// exactly what Predict would return.
//
//mbpvet:impure scan writes through the predictor-owned idxBuf/tagBuf scratch slices; the scratch is not serialized state and predictions are unaffected
func (p *Predictor) PredictBatch(branches []bp.Branch, out []bp.Prediction) {
	for i := range branches {
		l := p.scan(branches[i].IP)
		out[i] = bp.Prediction(l.pred)
	}
}

// TrainBatch implements bp.BatchPredictor: the fused predict+train kernel,
// byte-identical in effect to the scalar Predict/Train/Track sequence. The
// lookup cache (not serialized state) is invalidated once at the end so a
// later Predict cannot observe a stale pre-batch scan.
func (p *Predictor) TrainBatch(branches []bp.Branch, out []bp.Prediction) {
	if len(branches) == 0 {
		return
	}
	for i := range branches {
		b := &branches[i]
		if b.Opcode.IsConditional() {
			l := p.scan(b.IP)
			out[i] = bp.Prediction(l.pred)
			p.trainLookup(&l, b.Taken)
		}
		p.trackOutcome(b.Taken)
	}
	p.haveCache = false
}
