package tage

import (
	"testing"

	"mbplib/internal/predictors/bimodal"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/predictors/predtest"
	"mbplib/internal/tracegen"
)

func TestGeometricTables(t *testing.T) {
	specs := GeometricTables(8, 4, 320, 10, 11)
	if len(specs) != 8 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].HistLen != 4 || specs[7].HistLen != 320 {
		t.Errorf("series endpoints = %d..%d, want 4..320", specs[0].HistLen, specs[7].HistLen)
	}
	for i := 1; i < len(specs); i++ {
		if specs[i].HistLen <= specs[i-1].HistLen {
			t.Errorf("series not strictly ascending at %d: %v", i, specs)
		}
	}
}

func TestLearnsConstantAndPattern(t *testing.T) {
	if acc := predtest.Drive(New(), 0x40, predtest.Constant(true, 500)); acc < 0.99 {
		t.Errorf("TAGE on constant stream: accuracy %v", acc)
	}
	if acc := predtest.Drive(New(), 0x40, predtest.Pattern("TTNTNNT", 6000)); acc < 0.97 {
		t.Errorf("TAGE on period-7 pattern: accuracy %v", acc)
	}
}

func TestLearnsVeryLongPattern(t *testing.T) {
	// Period 120: beyond gshare-class histories, within TAGE's long tables.
	pattern := make([]byte, 120)
	for i := range pattern {
		if i < 60 {
			pattern[i] = 'T'
		} else {
			pattern[i] = 'N'
		}
	}
	acc := predtest.Drive(New(), 0x40, predtest.Pattern(string(pattern), 30000))
	if acc < 0.95 {
		t.Errorf("TAGE on period-120 pattern: accuracy %v", acc)
	}
}

func TestBeatsGShareOnLongLoops(t *testing.T) {
	// Trip count 71: long enough that a 16-bit-history gshare cannot see
	// the exit coming, and coprime to the fold widths — a single-branch
	// periodic history whose period divides the fold width degenerates the
	// folded index (for canonical TAGE as much as for this one).
	spec := tracegen.Spec{
		Name: "longloop", Seed: 3, Branches: 60000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Loop, Trips: []int{71}}},
	}
	tageAcc := predtest.AccuracyOnSpec(t, New(), spec)
	gsAcc := predtest.AccuracyOnSpec(t, gshare.New(gshare.WithHistoryLength(16)), spec)
	if tageAcc <= gsAcc {
		t.Errorf("TAGE (%v) not above gshare (%v) on trip-70 loops", tageAcc, gsAcc)
	}
}

func TestBeatsBimodalOnMixedWorkload(t *testing.T) {
	spec := predtest.MixedSpec(80000)
	tageAcc := predtest.AccuracyOnSpec(t, New(), spec)
	bimAcc := predtest.AccuracyOnSpec(t, bimodal.New(), spec)
	if tageAcc <= bimAcc {
		t.Errorf("TAGE (%v) not above bimodal (%v) on mixed workload", tageAcc, bimAcc)
	}
	if tageAcc < 0.75 {
		t.Errorf("TAGE accuracy on mixed workload = %v, want >= 0.75", tageAcc)
	}
}

func TestAllocationsHappen(t *testing.T) {
	p := New()
	_ = predtest.AccuracyOnSpec(t, p, predtest.MixedSpec(30000))
	stats := p.Statistics()
	if stats["allocations"].(uint64) == 0 {
		t.Errorf("no allocations on a noisy workload")
	}
}

func TestUsefulnessReset(t *testing.T) {
	p := New(WithResetLog(10)) // age every 1024 updates
	_ = predtest.AccuracyOnSpec(t, p, predtest.MixedSpec(30000))
	if p.Statistics()["u_resets"].(uint64) == 0 {
		t.Errorf("usefulness counters never aged")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	spec := predtest.MixedSpec(20000)
	a := predtest.AccuracyOnSpec(t, New(WithSeed(5)), spec)
	b := predtest.AccuracyOnSpec(t, New(WithSeed(5)), spec)
	if a != b {
		t.Errorf("same-seed TAGE runs differ: %v vs %v", a, b)
	}
}

func TestContract(t *testing.T) {
	p := New()
	predtest.CheckPredictIsPure(t, p, []uint64{0x40, 0x80})
	predtest.CheckMetadata(t, p)
}

func TestMetadataListsTables(t *testing.T) {
	p := New(WithGeometric(4, 8, 64, 9, 10))
	md := p.Metadata()
	tables, ok := md["tables"].([]map[string]any)
	if !ok || len(tables) != 4 {
		t.Fatalf("metadata tables = %v", md["tables"])
	}
	if tables[0]["history_length"] != 8 {
		t.Errorf("first table history = %v", tables[0])
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() {
			New(WithTables([]TableSpec{{HistLen: 5, LogSize: 8, TagBits: 8}, {HistLen: 5, LogSize: 8, TagBits: 8}}))
		},
		func() { New(WithTables([]TableSpec{{HistLen: 0, LogSize: 8, TagBits: 8}})) },
		func() { GeometricTables(0, 4, 64, 8, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid config accepted")
				}
			}()
			f()
		}()
	}
}
