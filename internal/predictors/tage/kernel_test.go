package tage

import (
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/predtest"
)

// TestKernelZeroAlloc pins the batch kernel's zero-allocation steady state;
// scan's idxBuf/tagBuf scratch is preallocated per predictor, and this
// guard keeps the batched path from regressing into per-call growth.
func TestKernelZeroAlloc(t *testing.T) {
	predtest.CheckKernelZeroAlloc(t, func() bp.Predictor { return New() }, 4096)
}
