package gshare

import (
	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// This file is the GShare bp.BatchPredictor kernel. The scalar path hashes
// each conditional branch twice (Predict and Train reload the history and
// re-fold) and shifts the global history through a field store per event;
// the kernel carries the history in a register across the whole batch,
// folds with the unrolled branch-free XorFoldWide (narrow tables keep the
// generic fold), and reads and updates each counter through one pointer
// with the branch-free PredictSumOrSub — branch outcomes are near-random,
// so keeping them out of control flow is the main win.

// PredictBatch implements bp.BatchPredictor: the pure batched read path.
// Every entry is predicted under the history as of entry, exactly what
// repeated Predict calls would return.
func (p *Predictor) PredictBatch(branches []bp.Branch, out []bp.Prediction) {
	table, logSize, g := p.table, p.logSize, p.ghist
	if logSize < 10 {
		for i := range branches {
			out[i] = bp.Prediction(table[utils.XorFold(branches[i].IP^g, logSize)].Predict())
		}
		return
	}
	for i := range branches {
		out[i] = bp.Prediction(table[utils.XorFoldWide(branches[i].IP^g, logSize)].Predict())
	}
}

// TrainBatch implements bp.BatchPredictor: the fused predict+train kernel,
// byte-identical in effect to the scalar Predict/Train/Track sequence.
func (p *Predictor) TrainBatch(branches []bp.Branch, out []bp.Prediction) {
	table, logSize, hmask := p.table, p.logSize, p.hmask
	g := p.ghist
	if logSize < 10 {
		for i := range branches {
			b := &branches[i]
			if b.Opcode.IsConditional() {
				c := &table[utils.XorFold(b.IP^g, logSize)]
				out[i] = bp.Prediction(c.Predict())
				c.SumOrSub(b.Taken)
			}
			t := uint64(0)
			if b.Taken {
				t = 1
			}
			g = (g<<1 | t) & hmask
		}
		p.ghist = g
		return
	}
	min, max := table[0].Bounds()
	for i := range branches {
		b := &branches[i]
		t := uint64(0)
		if b.Taken {
			t = 1
		}
		if b.Opcode.IsConditional() {
			c := &table[utils.XorFoldWide(b.IP^g, logSize)]
			out[i] = bp.Prediction(c.PredictSumOrSub(b.Taken, min, max))
		}
		g = (g<<1 | t) & hmask
	}
	p.ghist = g
}
