// Package gshare implements McFarling's GShare predictor: a table of
// saturating counters indexed by the XOR of the branch address with the
// global branch history. It is the direct Go port of Listing 2 in the
// MBPlib paper — the showcase of how small a predictor becomes when built
// from the utilities library.
package gshare

import (
	"fmt"
	"io"

	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// Predictor is a GShare branch predictor. The core of the implementation
// is, as in Listing 2, a hash, a counter table and a history register.
type Predictor struct {
	table   []utils.SignedCounter
	ghist   uint64
	hmask   uint64
	histLen int
	logSize int
}

// Option configures the predictor.
type Option func(*config)

type config struct {
	histLen int
	logSize int
}

// WithHistoryLength sets the global history length H. Default 15.
func WithHistoryLength(h int) Option { return func(c *config) { c.histLen = h } }

// WithLogSize sets the log2 of the counter-table size T. Default 17.
// The 64 KiB configuration of Listing 1 uses T = 18 (2^18 2-bit counters).
func WithLogSize(t int) Option { return func(c *config) { c.logSize = t } }

// New returns a GShare predictor.
func New(opts ...Option) *Predictor {
	cfg := config{histLen: 15, logSize: 17}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.histLen < 1 || cfg.histLen > 64 {
		panic(fmt.Sprintf("gshare: invalid history length %d", cfg.histLen))
	}
	if cfg.logSize < 1 || cfg.logSize > 30 {
		panic(fmt.Sprintf("gshare: invalid log table size %d", cfg.logSize))
	}
	p := &Predictor{
		table:   make([]utils.SignedCounter, 1<<cfg.logSize),
		histLen: cfg.histLen,
		logSize: cfg.logSize,
	}
	if cfg.histLen == 64 {
		p.hmask = ^uint64(0)
	} else {
		p.hmask = 1<<cfg.histLen - 1
	}
	return p
}

// hash mirrors Listing 2: XorFold(ip ^ ghist, T).
func (p *Predictor) hash(ip uint64) uint64 {
	return utils.XorFold(ip^p.ghist, p.logSize)
}

// Predict implements bp.Predictor.
func (p *Predictor) Predict(ip uint64) bool {
	return p.table[p.hash(ip)].Predict()
}

// Train implements bp.Predictor.
func (p *Predictor) Train(b bp.Branch) {
	p.table[p.hash(b.IP)].SumOrSub(b.Taken)
}

// Track implements bp.Predictor: shift the outcome into the global history.
func (p *Predictor) Track(b bp.Branch) {
	p.ghist <<= 1
	if b.Taken {
		p.ghist |= 1
	}
	p.ghist &= p.hmask
}

// Metadata implements bp.MetadataProvider, mirroring the predictor section
// of Listing 1.
func (p *Predictor) Metadata() map[string]any {
	return map[string]any{
		"name":           "MBPlib GShare",
		"history_length": p.histLen,
		"log_table_size": p.logSize,
	}
}

// ckptVersion is the checkpoint format version of this predictor.
const ckptVersion = 1

// Checkpoint implements bp.Checkpointer.
func (p *Predictor) Checkpoint(w io.Writer) error {
	cw := bp.NewCkptWriter(w)
	cw.Header("gshare", ckptVersion)
	cw.Int(p.histLen)
	cw.Int(p.logSize)
	cw.U64(p.ghist)
	for i := range p.table {
		cw.I64(int64(p.table[i].Get()))
	}
	return cw.Err()
}

// Restore implements bp.Checkpointer.
func (p *Predictor) Restore(r io.Reader) error {
	cr := bp.NewCkptReader(r)
	if v := cr.Header("gshare"); cr.Err() == nil && v != ckptVersion {
		cr.Corrupt("unknown gshare checkpoint version %d", v)
	}
	cr.ExpectInt("history_length", p.histLen)
	cr.ExpectInt("log_table_size", p.logSize)
	p.ghist = cr.U64() & p.hmask
	for i := range p.table {
		p.table[i].Set(int(cr.I64()))
	}
	return cr.Err()
}
