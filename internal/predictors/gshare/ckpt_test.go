package gshare

import (
	"bytes"
	"errors"
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/faults"
)

// The generic round-trip law lives in predtest; this covers the rejection
// half of the versioning contract: a checkpoint must only restore into an
// instance of the same predictor and configuration.
func TestRestoreRejectsMismatches(t *testing.T) {
	src := New(WithHistoryLength(12), WithLogSize(10))
	for i := 0; i < 500; i++ {
		b := bp.Branch{IP: uint64(0x4000 + 4*i), Opcode: bp.OpCondJump, Taken: i%3 == 0}
		src.Predict(b.IP)
		src.Train(b)
		src.Track(b)
	}
	var ckpt bytes.Buffer
	if err := src.Checkpoint(&ckpt); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	// Different history length.
	if err := New(WithHistoryLength(13), WithLogSize(10)).Restore(bytes.NewReader(ckpt.Bytes())); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("history-length mismatch: err = %v, want ErrCorrupt", err)
	}
	// Different table size.
	if err := New(WithHistoryLength(12), WithLogSize(11)).Restore(bytes.NewReader(ckpt.Bytes())); !errors.Is(err, faults.ErrCorrupt) {
		t.Errorf("table-size mismatch: err = %v, want ErrCorrupt", err)
	}
	// Matching configuration restores cleanly.
	if err := New(WithHistoryLength(12), WithLogSize(10)).Restore(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Errorf("matching restore: %v", err)
	}
}
