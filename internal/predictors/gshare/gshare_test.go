package gshare

import (
	"testing"

	"mbplib/internal/predictors/bimodal"
	"mbplib/internal/predictors/predtest"
	"mbplib/internal/tracegen"
)

func TestLearnsAlternatingPattern(t *testing.T) {
	p := New()
	acc := predtest.Drive(p, 0x100, predtest.Alternating(2000))
	if acc < 0.99 {
		t.Errorf("gshare on alternating stream: accuracy %v, want ~1", acc)
	}
}

func TestLearnsLongerPattern(t *testing.T) {
	p := New()
	acc := predtest.Drive(p, 0x100, predtest.Pattern("TTNTNNT", 4000))
	if acc < 0.98 {
		t.Errorf("gshare on periodic pattern: accuracy %v, want ~1", acc)
	}
}

func TestBeatsBimodalOnCorrelated(t *testing.T) {
	spec := tracegen.Spec{
		Name: "corr", Seed: 5, Branches: 60000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Correlated, Feeders: 4}},
	}
	// Short history: the outcome depends on only 4 history bits, and a
	// longer history would dilute each context below learnability.
	gsAcc := predtest.AccuracyOnSpec(t, New(WithHistoryLength(8)), spec)
	bimAcc := predtest.AccuracyOnSpec(t, bimodal.New(), spec)
	// The dependent branch (1 in 5) is XOR of 4 random feeders: bimodal is
	// blind to it, gshare learns it from the history.
	if gsAcc <= bimAcc+0.05 {
		t.Errorf("gshare accuracy %v not clearly above bimodal %v on correlated workload", gsAcc, bimAcc)
	}
}

func TestHistoryLengthMatters(t *testing.T) {
	// A pattern of period 20 needs history >= 20.
	long := predtest.Drive(New(WithHistoryLength(25)), 0x40, predtest.Pattern("TTTTTTTTTTNNNNNNNNNN", 8000))
	short := predtest.Drive(New(WithHistoryLength(4)), 0x40, predtest.Pattern("TTTTTTTTTTNNNNNNNNNN", 8000))
	if long < 0.95 {
		t.Errorf("long-history gshare accuracy %v on period-20 pattern", long)
	}
	if short >= long {
		t.Errorf("short history (%v) not worse than long history (%v)", short, long)
	}
}

func TestContract(t *testing.T) {
	p := New()
	predtest.CheckPredictIsPure(t, p, []uint64{0x100, 0x200})
	predtest.CheckMetadata(t, p)
}

func TestMetadataMatchesListing1(t *testing.T) {
	// The 64 kB configuration of Listing 1: H=25, T=18.
	p := New(WithHistoryLength(25), WithLogSize(18))
	md := p.Metadata()
	if md["history_length"] != 25 || md["log_table_size"] != 18 {
		t.Errorf("metadata = %v", md)
	}
	if md["name"] != "MBPlib GShare" {
		t.Errorf("name = %v", md["name"])
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(WithHistoryLength(0)) },
		func() { New(WithHistoryLength(65)) },
		func() { New(WithLogSize(31)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid config accepted")
				}
			}()
			f()
		}()
	}
}

func TestFullWidthHistory(t *testing.T) {
	p := New(WithHistoryLength(64))
	if acc := predtest.Drive(p, 0x40, predtest.Alternating(2000)); acc < 0.99 {
		t.Errorf("64-bit-history gshare accuracy %v", acc)
	}
}
