package gshare

import (
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/predtest"
)

// TestKernelZeroAlloc pins the batch kernel's zero-allocation steady state;
// an allocation creeping into PredictBatch/TrainBatch would silently cost
// the batched speedup without failing any behavioural law.
func TestKernelZeroAlloc(t *testing.T) {
	predtest.CheckKernelZeroAlloc(t, func() bp.Predictor { return New() }, 4096)
}
