// Package tournament implements the generalized tournament predictor of
// Listing 4 in the MBPlib paper: two arbitrary base predictors arbitrated
// by an arbitrary meta-predictor. It is the flagship demonstration of the
// Predict/Train/Track split (§IV-B, §VI-D): the meta-predictor is trained
// with a synthetic branch whose outcome names the correct base predictor,
// and only when the bases disagree (a partial update policy), while its
// scenario is always tracked with the program branch.
package tournament

import (
	"mbplib/internal/bp"
)

// Predictor combines two base predictors under a meta-predictor. The
// original tournament predictor of Evers, Yeh and Patt used a bimodal and a
// GShare base; any bp.Predictor works here.
type Predictor struct {
	meta, bp0, bp1 bp.Predictor

	// Cached data, as in Listing 4: predictions for the one IP predicted
	// since the last Track, so meta-training can reuse them.
	predictedIP uint64
	tracked     bool
	provider    bool
	prediction  [2]bool
}

// New returns a tournament over meta, bp0 and bp1. The meta-predictor's
// outcome bit selects the provider: not-taken picks bp0, taken picks bp1.
func New(meta, bp0, bp1 bp.Predictor) *Predictor {
	if meta == nil || bp0 == nil || bp1 == nil {
		panic("tournament: nil component")
	}
	return &Predictor{meta: meta, bp0: bp0, bp1: bp1, tracked: true}
}

// Predict implements bp.Predictor. Repeated calls for the same IP between
// Tracks reuse the cached component predictions, keeping Predict pure even
// though the components are consulted only once.
//
//mbpvet:impure component-prediction memoization: the cache is keyed by ip and invalidated by Track, so repeated Predicts are stable
func (p *Predictor) Predict(ip uint64) bool {
	if p.predictedIP == ip && !p.tracked {
		return p.prediction[b2i(p.provider)]
	}
	p.predictedIP = ip
	p.tracked = false
	p.provider = p.meta.Predict(ip)
	p.prediction[0] = p.bp0.Predict(ip)
	p.prediction[1] = p.bp1.Predict(ip)
	return p.prediction[b2i(p.provider)]
}

// Train implements bp.Predictor. Both bases always train; the meta-
// predictor trains only when the bases disagreed, on a synthetic branch
// whose outcome is "predictor 1 was right" (Listing 4, line 33).
func (p *Predictor) Train(b bp.Branch) {
	p.Predict(b.IP) // ensure the cache describes this branch
	p.bp0.Train(b)
	p.bp1.Train(b)
	if p.prediction[0] != p.prediction[1] {
		metaBranch := bp.Branch{
			IP:     b.IP,
			Target: b.Target,
			Opcode: b.Opcode,
			Taken:  p.prediction[1] == b.Taken,
		}
		p.meta.Train(metaBranch)
	}
}

// Track implements bp.Predictor: every component tracks the program branch.
func (p *Predictor) Track(b bp.Branch) {
	p.meta.Track(b)
	p.bp0.Track(b)
	p.bp1.Track(b)
	p.tracked = true
}

// Metadata implements bp.MetadataProvider, embedding the component
// descriptions as in Listing 4's metadata_stats.
func (p *Predictor) Metadata() map[string]any {
	return map[string]any{
		"name":          "MBPlib Tournament",
		"metapredictor": componentMetadata(p.meta),
		"predictor_0":   componentMetadata(p.bp0),
		"predictor_1":   componentMetadata(p.bp1),
	}
}

func componentMetadata(p bp.Predictor) map[string]any {
	if mp, ok := p.(bp.MetadataProvider); ok {
		return mp.Metadata()
	}
	return map[string]any{}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
