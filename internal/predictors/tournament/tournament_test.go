package tournament

import (
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/bimodal"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/predictors/predtest"
	"mbplib/internal/predictors/statics"
	"mbplib/internal/tracegen"
)

// recorder wraps a predictor and records Train/Track calls.
type recorder struct {
	inner  bp.Predictor
	trains []bp.Branch
	tracks []bp.Branch
}

func (r *recorder) Predict(ip uint64) bool { return r.inner.Predict(ip) }
func (r *recorder) Train(b bp.Branch)      { r.trains = append(r.trains, b); r.inner.Train(b) }
func (r *recorder) Track(b bp.Branch)      { r.tracks = append(r.tracks, b); r.inner.Track(b) }

func testBranch(ip uint64, taken bool) bp.Branch {
	return bp.Branch{IP: ip, Target: ip + 64, Opcode: bp.OpCondJump, Taken: taken}
}

func TestMetaPartialUpdate(t *testing.T) {
	// Base predictors that always disagree; meta trained every time with
	// the outcome naming the correct one (Listing 4 line 33).
	meta := &recorder{inner: bimodal.New(bimodal.WithLogSize(8))}
	p := New(meta, statics.NewTaken(), statics.NewNotTaken())
	// Outcome taken: predictor 0 (always-taken) is right, so the meta
	// branch outcome must be false ("prediction[1] == taken" is false).
	p.Predict(0x40)
	p.Train(testBranch(0x40, true))
	p.Track(testBranch(0x40, true))
	if len(meta.trains) != 1 {
		t.Fatalf("meta trained %d times, want 1", len(meta.trains))
	}
	if meta.trains[0].Taken {
		t.Errorf("meta branch outcome = taken, want not taken (predictor 0 was right)")
	}
	if len(meta.tracks) != 1 {
		t.Errorf("meta tracked %d times, want 1", len(meta.tracks))
	}
}

func TestMetaNotTrainedOnAgreement(t *testing.T) {
	meta := &recorder{inner: bimodal.New(bimodal.WithLogSize(8))}
	p := New(meta, statics.NewTaken(), statics.NewTaken())
	for i := 0; i < 10; i++ {
		b := testBranch(0x40, i%2 == 0)
		p.Predict(b.IP)
		p.Train(b)
		p.Track(b)
	}
	if len(meta.trains) != 0 {
		t.Errorf("meta trained %d times despite agreeing bases", len(meta.trains))
	}
	if len(meta.tracks) != 10 {
		t.Errorf("meta tracked %d times, want 10", len(meta.tracks))
	}
}

func TestSelectsBetterComponent(t *testing.T) {
	// On an all-taken branch the always-taken base is perfect; the meta
	// must converge to it.
	p := New(bimodal.New(bimodal.WithLogSize(8)), statics.NewNotTaken(), statics.NewTaken())
	acc := predtest.Drive(p, 0x40, predtest.Constant(true, 200))
	if acc != 1 {
		t.Errorf("tournament accuracy %v, want 1 (should pick always-taken)", acc)
	}
	// And the mirrored case.
	q := New(bimodal.New(bimodal.WithLogSize(8)), statics.NewTaken(), statics.NewNotTaken())
	acc = predtest.Drive(q, 0x40, predtest.Constant(false, 200))
	if acc != 1 {
		t.Errorf("mirrored tournament accuracy %v, want 1", acc)
	}
}

func TestBeatsBothComponentsOnMixedWorkload(t *testing.T) {
	spec := tracegen.Spec{
		Name: "mix", Seed: 77, Branches: 80000,
		Kernels: []tracegen.KernelSpec{
			{Kind: tracegen.Biased, Branches: 600, Bias: 0.9}, // favours bimodal (aliasing hurts gshare less than noise?)
			{Kind: tracegen.Correlated, Feeders: 5},           // favours gshare
		},
	}
	newTournament := func() bp.Predictor {
		return New(bimodal.New(bimodal.WithLogSize(12)),
			bimodal.New(bimodal.WithLogSize(12)),
			gshare.New(gshare.WithHistoryLength(12), gshare.WithLogSize(12)))
	}
	tAcc := predtest.AccuracyOnSpec(t, newTournament(), spec)
	bAcc := predtest.AccuracyOnSpec(t, bimodal.New(bimodal.WithLogSize(12)), spec)
	gAcc := predtest.AccuracyOnSpec(t, gshare.New(gshare.WithHistoryLength(12), gshare.WithLogSize(12)), spec)
	worst := bAcc
	if gAcc < worst {
		worst = gAcc
	}
	if tAcc < worst-0.01 {
		t.Errorf("tournament accuracy %v below both components (bimodal %v, gshare %v)", tAcc, bAcc, gAcc)
	}
}

func TestPredictCachePurity(t *testing.T) {
	p := New(bimodal.New(), bimodal.New(), gshare.New())
	predtest.CheckPredictIsPure(t, p, []uint64{0x40, 0x80})
}

func TestMetadataNesting(t *testing.T) {
	p := New(bimodal.New(), bimodal.New(), gshare.New())
	md := p.Metadata()
	if md["name"] != "MBPlib Tournament" {
		t.Errorf("name = %v", md["name"])
	}
	inner, ok := md["predictor_1"].(map[string]any)
	if !ok || inner["name"] != "MBPlib GShare" {
		t.Errorf("nested component description missing: %v", md)
	}
}

func TestNilComponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("nil component accepted")
		}
	}()
	New(nil, bimodal.New(), gshare.New())
}
