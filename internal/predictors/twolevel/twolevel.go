// Package twolevel implements the Yeh–Patt family of two-level adaptive
// predictors in its generalized form: a first level of branch history
// registers and a second level of pattern history tables, each of which can
// be global, per-set, or per-address. All nine classical variants — GAg,
// GAs, GAp, SAg, SAs, SAp, PAg, PAs, PAp — are instances of one structure,
// as in the MBPlib examples library (Table II).
package twolevel

import (
	"fmt"

	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// Level selects how a predictor level is shared among branches.
type Level int

// Sharing levels. In the classical naming, the first level letter is
// G/S/P and the second level letter is g/s/p.
const (
	Global Level = iota
	PerSet
	PerAddress
)

func (l Level) letter(upper bool) string {
	letters := [...]string{"g", "s", "p"}
	if upper {
		letters = [...]string{"G", "S", "P"}
	}
	if l < Global || l > PerAddress {
		return "?"
	}
	return letters[l]
}

// Predictor is a generalized two-level adaptive predictor.
type Predictor struct {
	first, second Level
	histLen       int
	logBHRs       int // log2 number of history registers (0 when Global)
	logPHTs       int // log2 number of pattern tables (0 when Global)
	counterBits   int
	hmask         uint64
	bhrs          []uint64
	phts          [][]utils.SignedCounter
}

// Config parameterises a two-level predictor.
type Config struct {
	// First selects the sharing of the history registers; Second the
	// sharing of the pattern history tables.
	First, Second Level
	// HistLen is the history length per register (1..24; the PHT has
	// 2^HistLen entries). Default 12.
	HistLen int
	// LogBHRs is the log2 number of history registers for PerSet/PerAddress
	// first levels (ignored for Global). Defaults: 4 for PerSet, 10 for
	// PerAddress.
	LogBHRs int
	// LogPHTs is the log2 number of pattern tables for PerSet/PerAddress
	// second levels (ignored for Global). Defaults: 4 for PerSet, 10 for
	// PerAddress.
	LogPHTs int
	// CounterBits is the PHT counter width. Default 2.
	CounterBits int
}

func (c Config) withDefaults() Config {
	if c.HistLen == 0 {
		c.HistLen = 12
	}
	if c.LogBHRs == 0 {
		switch c.First {
		case PerSet:
			c.LogBHRs = 4
		case PerAddress:
			c.LogBHRs = 10
		}
	}
	if c.First == Global {
		c.LogBHRs = 0
	}
	if c.LogPHTs == 0 {
		switch c.Second {
		case PerSet:
			c.LogPHTs = 4
		case PerAddress:
			c.LogPHTs = 10
		}
	}
	if c.Second == Global {
		c.LogPHTs = 0
	}
	if c.CounterBits == 0 {
		c.CounterBits = 2
	}
	return c
}

// New returns a two-level predictor for cfg.
func New(cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	if cfg.HistLen < 1 || cfg.HistLen > 24 {
		panic(fmt.Sprintf("twolevel: invalid history length %d", cfg.HistLen))
	}
	if cfg.LogBHRs < 0 || cfg.LogBHRs > 20 || cfg.LogPHTs < 0 || cfg.LogPHTs > 16 {
		panic(fmt.Sprintf("twolevel: invalid table sizes logBHRs=%d logPHTs=%d", cfg.LogBHRs, cfg.LogPHTs))
	}
	p := &Predictor{
		first: cfg.First, second: cfg.Second,
		histLen: cfg.HistLen, logBHRs: cfg.LogBHRs, logPHTs: cfg.LogPHTs,
		counterBits: cfg.CounterBits,
		hmask:       1<<cfg.HistLen - 1,
		bhrs:        make([]uint64, 1<<cfg.LogBHRs),
		phts:        make([][]utils.SignedCounter, 1<<cfg.LogPHTs),
	}
	for i := range p.phts {
		p.phts[i] = make([]utils.SignedCounter, 1<<cfg.HistLen)
		for j := range p.phts[i] {
			p.phts[i][j] = utils.NewSignedCounter(cfg.CounterBits, 0)
		}
	}
	return p
}

// Variant returns the classical name of this configuration, e.g. "GAs".
func (p *Predictor) Variant() string {
	return p.first.letter(true) + "A" + p.second.letter(false)
}

func (p *Predictor) bhrIndex(ip uint64) uint64 {
	if p.logBHRs == 0 {
		return 0
	}
	return utils.XorFold(ip>>2, p.logBHRs)
}

func (p *Predictor) phtIndex(ip uint64) uint64 {
	if p.logPHTs == 0 {
		return 0
	}
	return utils.XorFold(ip>>2, p.logPHTs)
}

func (p *Predictor) counter(ip uint64) *utils.SignedCounter {
	hist := p.bhrs[p.bhrIndex(ip)] & p.hmask
	return &p.phts[p.phtIndex(ip)][hist]
}

// Predict implements bp.Predictor.
func (p *Predictor) Predict(ip uint64) bool {
	return p.counter(ip).Predict()
}

// Train implements bp.Predictor. It runs before Track, so the counter it
// updates is the one Predict consulted.
func (p *Predictor) Train(b bp.Branch) {
	p.counter(b.IP).SumOrSub(b.Taken)
}

// Track implements bp.Predictor: record the outcome in the branch's
// history register.
func (p *Predictor) Track(b bp.Branch) {
	i := p.bhrIndex(b.IP)
	p.bhrs[i] <<= 1
	if b.Taken {
		p.bhrs[i] |= 1
	}
	p.bhrs[i] &= p.hmask
}

// Metadata implements bp.MetadataProvider.
func (p *Predictor) Metadata() map[string]any {
	return map[string]any{
		"name":           "MBPlib Two-Level " + p.Variant(),
		"history_length": p.histLen,
		"log_bhrs":       p.logBHRs,
		"log_phts":       p.logPHTs,
		"counter_bits":   p.counterBits,
	}
}
