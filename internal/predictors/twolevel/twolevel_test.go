package twolevel

import (
	"testing"

	"mbplib/internal/predictors/predtest"
)

func TestVariantNames(t *testing.T) {
	cases := []struct {
		first, second Level
		want          string
	}{
		{Global, Global, "GAg"},
		{Global, PerSet, "GAs"},
		{Global, PerAddress, "GAp"},
		{PerSet, Global, "SAg"},
		{PerSet, PerSet, "SAs"},
		{PerSet, PerAddress, "SAp"},
		{PerAddress, Global, "PAg"},
		{PerAddress, PerSet, "PAs"},
		{PerAddress, PerAddress, "PAp"},
	}
	for _, c := range cases {
		p := New(Config{First: c.first, Second: c.second, HistLen: 6})
		if got := p.Variant(); got != c.want {
			t.Errorf("Variant(%v,%v) = %q, want %q", c.first, c.second, got, c.want)
		}
	}
}

func TestAllVariantsLearnPattern(t *testing.T) {
	for _, first := range []Level{Global, PerSet, PerAddress} {
		for _, second := range []Level{Global, PerSet, PerAddress} {
			p := New(Config{First: first, Second: second, HistLen: 10})
			acc := predtest.Drive(p, 0x400100, predtest.Pattern("TTNTN", 4000))
			if acc < 0.98 {
				t.Errorf("%s accuracy on period-5 pattern = %v, want ~1", p.Variant(), acc)
			}
		}
	}
}

func TestPerAddressHistorySeparation(t *testing.T) {
	// Two branches with alternating outcomes in anti-phase. A global
	// first level sees the merged stream TTNN...; a per-address first
	// level sees clean TN streams for each.
	pag := New(Config{First: PerAddress, Second: Global, HistLen: 8})
	acc := predtest.DriveBranches(pag,
		[]uint64{0x100, 0x200},
		[][]bool{predtest.Alternating(2000), predtest.Pattern("NT", 2000)})
	if acc < 0.98 {
		t.Errorf("PAg on anti-phase alternating branches: accuracy %v", acc)
	}
}

func TestGAgUsesSharedHistory(t *testing.T) {
	// The global variant predicts a branch correlated with another
	// branch's outcome: feeder then dependent with equal outcome.
	gag := New(Config{First: Global, Second: Global, HistLen: 8})
	n := 2000
	feeder := predtest.Pattern("TNNTT", n)
	gagAcc := predtest.DriveBranches(gag, []uint64{0x100, 0x200}, [][]bool{feeder, feeder})
	if gagAcc < 0.97 {
		t.Errorf("GAg on copied-outcome branches: accuracy %v", gagAcc)
	}
}

func TestContract(t *testing.T) {
	p := New(Config{First: PerSet, Second: PerSet})
	predtest.CheckPredictIsPure(t, p, []uint64{0x100, 0x200})
	predtest.CheckMetadata(t, p)
}

func TestDefaults(t *testing.T) {
	p := New(Config{First: PerAddress, Second: PerAddress})
	md := p.Metadata()
	if md["history_length"] != 12 || md["log_bhrs"] != 10 || md["log_phts"] != 10 {
		t.Errorf("defaults wrong: %v", md)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("history length 30 accepted")
		}
	}()
	New(Config{HistLen: 30})
}

func TestMixedWorkload(t *testing.T) {
	p := New(Config{First: Global, Second: PerSet, HistLen: 14})
	if acc := predtest.AccuracyOnSpec(t, p, predtest.MixedSpec(50000)); acc < 0.6 {
		t.Errorf("GAs accuracy on mixed workload = %v", acc)
	}
}
