package ogehl

import (
	"testing"

	"mbplib/internal/predictors/bimodal"
	"mbplib/internal/predictors/predtest"
	"mbplib/internal/tracegen"
)

func TestLearnsConstantAndPattern(t *testing.T) {
	if acc := predtest.Drive(New(), 0x40, predtest.Constant(true, 400)); acc < 0.99 {
		t.Errorf("O-GEHL on constant stream: accuracy %v", acc)
	}
	if acc := predtest.Drive(New(), 0x40, predtest.Pattern("TTNTNNT", 4000)); acc < 0.97 {
		t.Errorf("O-GEHL on period-7 pattern: accuracy %v", acc)
	}
}

func TestLearnsLongPattern(t *testing.T) {
	pattern := "TTTTTTTTTTTTTTTTTTTTTTTTTNNNNNNNNNNNNNNNNNNNNNNNNN" // period 50
	if acc := predtest.Drive(New(), 0x40, predtest.Pattern(pattern, 15000)); acc < 0.9 {
		t.Errorf("O-GEHL on period-50 pattern: accuracy %v", acc)
	}
}

func TestBeatsBimodalOnCorrelated(t *testing.T) {
	spec := tracegen.Spec{
		Name: "corr", Seed: 5, Branches: 60000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Correlated, Feeders: 5}},
	}
	oAcc := predtest.AccuracyOnSpec(t, New(), spec)
	bAcc := predtest.AccuracyOnSpec(t, bimodal.New(), spec)
	if oAcc <= bAcc+0.05 {
		t.Errorf("O-GEHL accuracy %v not clearly above bimodal %v", oAcc, bAcc)
	}
}

func TestAdaptiveMachineryRuns(t *testing.T) {
	p := New()
	_ = predtest.AccuracyOnSpec(t, p, predtest.MixedSpec(60000))
	stats := p.Statistics()
	if stats["table_updates"].(uint64) == 0 {
		t.Errorf("no table updates recorded")
	}
	if stats["threshold"].(int) < 1 {
		t.Errorf("threshold fell below 1")
	}
}

func TestContract(t *testing.T) {
	p := New()
	predtest.CheckPredictIsPure(t, p, []uint64{0x40, 0x80})
	predtest.CheckMetadata(t, p)
}

func TestMixedWorkload(t *testing.T) {
	if acc := predtest.AccuracyOnSpec(t, New(), predtest.MixedSpec(50000)); acc < 0.7 {
		t.Errorf("O-GEHL accuracy on mixed workload = %v", acc)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(WithHistoryLengths([]int{0})) },
		func() { New(WithHistoryLengths([]int{0, 5, 3})) },
		func() { New(WithLogSize(0)) },
		func() { New(WithCounterBits(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid config accepted")
				}
			}()
			f()
		}()
	}
}
