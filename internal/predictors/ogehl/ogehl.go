// Package ogehl implements Seznec's Optimized GEometric History Length
// predictor (O-GEHL, ISCA 2005), the geometric-history ancestor of TAGE: a
// set of counter tables indexed by hashes of geometrically growing history
// slices whose signed sum decides the prediction. Unlike the hashed
// perceptron, the update is GEHL-style — all tables move on a misprediction
// or a low-magnitude sum — and both the threshold and the effective history
// lengths adapt: when long-history tables keep disagreeing with the
// outcome, the predictor shortens its reach.
package ogehl

import (
	"fmt"

	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// Predictor is an O-GEHL branch predictor.
type Predictor struct {
	tables  [][]utils.SignedCounter
	folded  []*utils.FoldedHistory
	lengths []int
	logSize int
	ctrBits int

	ghist *utils.GlobalHistory

	theta int
	tc    utils.SignedCounter // threshold trainer

	// Dynamic history-length fitting: ac tracks whether the longest tables
	// help; when it saturates low, the two longest tables are re-indexed
	// with the intermediate length (midFold).
	ac        utils.SignedCounter
	shortMode bool
	midFold   *utils.FoldedHistory
	midLen    int

	// Cached sum for the last predicted IP.
	lastIP  uint64
	lastSum int
	haveSum bool

	updates uint64
	refits  uint64
}

// Option configures the predictor.
type Option func(*config)

type config struct {
	lengths []int
	logSize int
	ctrBits int
}

// WithHistoryLengths sets the per-table history lengths (first entry 0 for
// the address-indexed table). Default {0, 3, 5, 8, 12, 19, 31, 49, 75, 125},
// close to the paper's geometric series.
func WithHistoryLengths(l []int) Option { return func(c *config) { c.lengths = l } }

// WithLogSize sets the log2 entries per table. Default 11.
func WithLogSize(n int) Option { return func(c *config) { c.logSize = n } }

// WithCounterBits sets the counter width. Default 5, as in the paper.
func WithCounterBits(n int) Option { return func(c *config) { c.ctrBits = n } }

// New returns an O-GEHL predictor.
func New(opts ...Option) *Predictor {
	cfg := config{
		lengths: []int{0, 3, 5, 8, 12, 19, 31, 49, 75, 125},
		logSize: 11,
		ctrBits: 5,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.lengths) < 2 {
		panic("ogehl: need at least two tables")
	}
	if cfg.logSize < 1 || cfg.logSize > 26 {
		panic(fmt.Sprintf("ogehl: invalid log table size %d", cfg.logSize))
	}
	if cfg.ctrBits < 2 || cfg.ctrBits > 8 {
		panic(fmt.Sprintf("ogehl: invalid counter width %d", cfg.ctrBits))
	}
	maxLen := 0
	for i, l := range cfg.lengths {
		if l < 0 || (i > 0 && l <= cfg.lengths[i-1] && l != 0) {
			panic(fmt.Sprintf("ogehl: history lengths must be ascending: %v", cfg.lengths))
		}
		if l > maxLen {
			maxLen = l
		}
	}
	p := &Predictor{
		lengths: cfg.lengths,
		logSize: cfg.logSize,
		ctrBits: cfg.ctrBits,
		ghist:   utils.NewGlobalHistory(maxLen + 1),
		theta:   len(cfg.lengths),
		tc:      utils.NewSignedCounter(7, 0),
		ac:      utils.NewSignedCounter(9, 0),
	}
	for _, l := range cfg.lengths {
		t := make([]utils.SignedCounter, 1<<cfg.logSize)
		for i := range t {
			t[i] = utils.NewSignedCounter(cfg.ctrBits, 0)
		}
		p.tables = append(p.tables, t)
		p.folded = append(p.folded, utils.NewFoldedHistory(l, cfg.logSize))
	}
	p.midLen = cfg.lengths[len(cfg.lengths)/2]
	p.midFold = utils.NewFoldedHistory(p.midLen, cfg.logSize)
	return p
}

// fold returns the folded history table t is currently indexed with: in
// short mode the two longest tables fall back to the intermediate length
// (the dynamic fitting of the paper, simplified to two modes). All folds
// are maintained incrementally in Track, so indexing is O(1).
func (p *Predictor) fold(t int) uint64 {
	if p.shortMode && t >= len(p.lengths)-2 {
		return p.midFold.Value()
	}
	return p.folded[t].Value()
}

func (p *Predictor) index(ip uint64, t int) uint64 {
	return utils.XorFold(ip^(ip>>uint(t+1))^p.fold(t)^uint64(t)*0x9e3779b97f4a7c15, p.logSize)
}

func (p *Predictor) sum(ip uint64) int {
	s := len(p.tables) / 2 // centring term, as GEHL biases toward taken on ties
	for t := range p.tables {
		s += p.tables[t][p.index(ip, t)].Get()
	}
	return s
}

// Predict implements bp.Predictor.
//
//mbpvet:impure caches the table sum for Train's threshold update; the sum is recomputed if Train sees another ip, so predictions are unaffected
func (p *Predictor) Predict(ip uint64) bool {
	s := p.sum(ip)
	p.lastIP, p.lastSum, p.haveSum = ip, s, true
	return s >= 0
}

// Train implements bp.Predictor: GEHL update with adaptive threshold and
// dynamic history-length fitting.
func (p *Predictor) Train(b bp.Branch) {
	s := p.lastSum
	if !p.haveSum || p.lastIP != b.IP {
		s = p.sum(b.IP)
	}
	pred := s >= 0
	mag := s
	if mag < 0 {
		mag = -mag
	}
	mispredicted := pred != b.Taken
	if mispredicted || mag <= p.theta {
		p.updates++
		for t := range p.tables {
			p.tables[t][p.index(b.IP, t)].SumOrSub(b.Taken)
		}
	}
	// Adaptive threshold.
	if mispredicted {
		p.tc.Add(1)
		if p.tc.Get() == p.tc.Max() {
			p.theta++
			p.tc.Set(0)
		}
	} else if mag <= p.theta {
		p.tc.Add(-1)
		if p.tc.Get() == p.tc.Min() {
			if p.theta > 1 {
				p.theta--
			}
			p.tc.Set(0)
		}
	}
	// History-length fitting: did the longest tables vote with the outcome?
	long := p.tables[len(p.tables)-1][p.index(b.IP, len(p.tables)-1)].Predict()
	if long == b.Taken {
		p.ac.Add(1)
	} else {
		p.ac.Add(-1)
	}
	if p.ac.IsSaturated() {
		newMode := p.ac.Get() == p.ac.Min()
		if newMode != p.shortMode {
			p.shortMode = newMode
			p.refits++
		}
		p.ac.Set(0)
	}
}

// Track implements bp.Predictor.
func (p *Predictor) Track(b bp.Branch) {
	p.ghist.Push(b.Taken)
	for t := range p.folded {
		if p.lengths[t] == 0 {
			continue
		}
		p.folded[t].Update(b.Taken, p.ghist.Bit(p.lengths[t]))
	}
	p.midFold.Update(b.Taken, p.ghist.Bit(p.midLen))
	p.haveSum = false
}

// Metadata implements bp.MetadataProvider.
func (p *Predictor) Metadata() map[string]any {
	return map[string]any{
		"name":            "MBPlib O-GEHL",
		"history_lengths": append([]int(nil), p.lengths...),
		"log_table_size":  p.logSize,
		"counter_bits":    p.ctrBits,
	}
}

// Statistics implements bp.StatsProvider.
func (p *Predictor) Statistics() map[string]any {
	return map[string]any{
		"threshold":     p.theta,
		"table_updates": p.updates,
		"length_refits": p.refits,
		"short_mode":    p.shortMode,
	}
}
