// Package loop implements a loop predictor: a small tagged table that
// learns the trip count of regular loops and predicts the exit iteration,
// which counter- and history-based predictors miss when the trip count
// exceeds their history length. The paper cites adding a loop predictor to
// a design as the typical use case for the comparison simulator (§VI-C);
// this package is written to serve both standalone (with a bimodal
// fallback) and as a component with a confidence signal.
package loop

import (
	"fmt"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/bimodal"
	"mbplib/internal/utils"
)

// entry is one loop-table entry. Loops are modeled taken-bodied: the branch
// is taken Trip times, then not taken once.
type entry struct {
	tag     uint16
	trip    uint32 // learned iteration count (body executions per exit)
	current uint32 // iterations seen in the current traversal
	conf    utils.UnsignedCounter
	age     utils.UnsignedCounter
}

// Predictor is a loop predictor with a bimodal fallback.
type Predictor struct {
	entries  []entry
	logSize  int
	tagBits  int
	fallback *bimodal.Predictor

	hits uint64 // statistic: predictions served by a confident loop entry
}

// Option configures the predictor.
type Option func(*config)

type config struct {
	logSize int
	tagBits int
	fbLog   int
}

// WithLogSize sets the log2 number of loop entries. Default 6 (64 loops).
func WithLogSize(n int) Option { return func(c *config) { c.logSize = n } }

// WithTagBits sets the tag width. Default 10.
func WithTagBits(n int) Option { return func(c *config) { c.tagBits = n } }

// WithFallbackLogSize sets the bimodal fallback's log table size.
// Default 12.
func WithFallbackLogSize(n int) Option { return func(c *config) { c.fbLog = n } }

// New returns a loop predictor.
func New(opts ...Option) *Predictor {
	cfg := config{logSize: 6, tagBits: 10, fbLog: 12}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.logSize < 1 || cfg.logSize > 16 || cfg.tagBits < 1 || cfg.tagBits > 16 {
		panic(fmt.Sprintf("loop: invalid geometry logSize=%d tagBits=%d", cfg.logSize, cfg.tagBits))
	}
	p := &Predictor{
		entries:  make([]entry, 1<<cfg.logSize),
		logSize:  cfg.logSize,
		tagBits:  cfg.tagBits,
		fallback: bimodal.New(bimodal.WithLogSize(cfg.fbLog)),
	}
	for i := range p.entries {
		p.entries[i].conf = utils.NewUnsignedCounter(3, 0)
		p.entries[i].age = utils.NewUnsignedCounter(3, 0)
	}
	return p
}

func (p *Predictor) slot(ip uint64) (*entry, uint16) {
	idx := utils.XorFold(ip>>2, p.logSize)
	tag := uint16(utils.XorFold(utils.Mix(ip), p.tagBits))
	return &p.entries[idx], tag
}

// confident is the confidence level at which the loop entry overrides the
// fallback: the trip count was confirmed at least 3 times.
const confident = 3

// lookup returns the loop prediction and whether a confident entry hit.
func (p *Predictor) lookup(ip uint64) (taken, hit bool) {
	e, tag := p.slot(ip)
	if e.tag != tag || e.conf.Get() < confident {
		return false, false
	}
	// Predict the loop exit at the learned trip count.
	return e.current < e.trip, true
}

// Predict implements bp.Predictor.
func (p *Predictor) Predict(ip uint64) bool {
	if taken, hit := p.lookup(ip); hit {
		return taken
	}
	return p.fallback.Predict(ip)
}

// ConfidentHit reports whether a confident loop entry covers ip, the signal
// a composition uses to let the loop predictor override another component.
func (p *Predictor) ConfidentHit(ip uint64) bool {
	_, hit := p.lookup(ip)
	return hit
}

// Train implements bp.Predictor.
func (p *Predictor) Train(b bp.Branch) {
	e, tag := p.slot(b.IP)
	switch {
	case e.tag == tag:
		p.trainEntry(e, b.Taken)
	case b.Taken:
		// A taken conditional is a loop candidate: steal the slot if the
		// incumbent has aged out.
		if e.age.IsZero() {
			*e = entry{tag: tag, conf: utils.NewUnsignedCounter(3, 0), age: utils.NewUnsignedCounter(3, 1)}
			e.current = 1
		} else {
			e.age.Dec()
		}
	}
	p.fallback.Train(b)
}

// trainEntry advances the iteration automaton of a matching entry.
func (p *Predictor) trainEntry(e *entry, taken bool) {
	predictedHit := e.conf.Get() >= confident
	if taken {
		e.current++
		if predictedHit && e.current > e.trip {
			// The loop ran past the learned trip count: the entry is wrong.
			e.conf.Set(0)
		}
		return
	}
	// Loop exit observed.
	if e.trip == e.current && e.trip > 0 {
		e.conf.Inc()
		e.age.Inc()
	} else {
		e.trip = e.current
		e.conf.Set(0)
	}
	e.current = 0
}

// Track implements bp.Predictor. The loop automaton advances in Train; the
// fallback keeps no scenario either.
func (p *Predictor) Track(b bp.Branch) {
	if taken, hit := p.lookup(b.IP); hit && taken == b.Taken {
		p.hits++
	}
}

// Metadata implements bp.MetadataProvider.
func (p *Predictor) Metadata() map[string]any {
	return map[string]any{
		"name":     "MBPlib Loop",
		"log_size": p.logSize,
		"tag_bits": p.tagBits,
		"fallback": p.fallback.Metadata(),
	}
}

// Statistics implements bp.StatsProvider.
func (p *Predictor) Statistics() map[string]any {
	live := 0
	for i := range p.entries {
		if p.entries[i].conf.Get() >= confident {
			live++
		}
	}
	return map[string]any{
		"confident_entries": live,
		"confident_correct": p.hits,
	}
}
