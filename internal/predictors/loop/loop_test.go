package loop

import (
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/gshare"
	"mbplib/internal/predictors/predtest"
	"mbplib/internal/tracegen"
)

// loopOutcomes produces the outcome stream of a loop with the given trip
// count: trip takens followed by one not-taken, repeated.
func loopOutcomes(trip, rounds int) []bool {
	var out []bool
	for r := 0; r < rounds; r++ {
		for i := 0; i < trip; i++ {
			out = append(out, true)
		}
		out = append(out, false)
	}
	return out
}

func TestLearnsTripCount(t *testing.T) {
	p := New()
	acc := predtest.Drive(p, 0x40, loopOutcomes(50, 40))
	// After confidence builds, every exit is predicted: accuracy ~1.
	if acc < 0.99 {
		t.Errorf("loop predictor on trip-50 loop: accuracy %v, want ~1", acc)
	}
}

func TestBeatsShortHistoryGShareOnLongLoops(t *testing.T) {
	outcomes := loopOutcomes(100, 40)
	lAcc := predtest.Drive(New(), 0x40, outcomes)
	gAcc := predtest.Drive(gshare.New(gshare.WithHistoryLength(12)), 0x40, outcomes)
	if lAcc <= gAcc {
		t.Errorf("loop predictor (%v) not above short-history gshare (%v) on trip-100 loop", lAcc, gAcc)
	}
}

func TestRelearnsChangedTripCount(t *testing.T) {
	p := New()
	outcomes := append(loopOutcomes(10, 30), loopOutcomes(20, 30)...)
	acc := predtest.Drive(p, 0x40, outcomes)
	// Second half is all trip-20 rounds; it must re-converge.
	if acc < 0.9 {
		t.Errorf("loop predictor after trip change: accuracy %v", acc)
	}
}

func TestIrregularBranchFallsBack(t *testing.T) {
	p := New()
	// Strongly biased but irregular: the loop table must not gain
	// confidence, and the bimodal fallback handles it.
	acc := predtest.Drive(p, 0x40, predtest.Pattern("TTTTTTTTTN", 5000))
	if acc < 0.85 {
		t.Errorf("loop predictor on biased irregular branch: accuracy %v", acc)
	}
}

func TestConfidentHitSignal(t *testing.T) {
	p := New()
	if p.ConfidentHit(0x40) {
		t.Errorf("fresh predictor reports a confident hit")
	}
	predtest.Drive(p, 0x40, loopOutcomes(8, 30))
	if !p.ConfidentHit(0x40) {
		t.Errorf("no confident hit after 30 identical loop rounds")
	}
	stats := p.Statistics()
	if stats["confident_entries"].(int) < 1 {
		t.Errorf("statistics report no confident entries: %v", stats)
	}
}

func TestContract(t *testing.T) {
	p := New()
	predtest.CheckPredictIsPure(t, p, []uint64{0x40, 0x80})
	predtest.CheckMetadata(t, p)
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("invalid config accepted")
		}
	}()
	New(WithLogSize(0))
}

func TestMixedWorkload(t *testing.T) {
	if acc := predtest.AccuracyOnSpec(t, New(), predtest.MixedSpec(50000)); acc < 0.55 {
		t.Errorf("loop predictor accuracy on mixed workload = %v", acc)
	}
}

func TestLoopKernelNearPerfect(t *testing.T) {
	spec := tracegen.Spec{
		Name: "loops", Seed: 3, Branches: 50000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Loop, Trips: []int{60}}},
	}
	if acc := predtest.AccuracyOnSpec(t, New(), spec); acc < 0.97 {
		t.Errorf("loop predictor on trip-60 loop kernel: accuracy %v", acc)
	}
}

func TestNonConditionalIgnored(t *testing.T) {
	p := New()
	call := bp.Branch{IP: 0x80, Target: 0x1000, Opcode: bp.OpCall, Taken: true}
	// Calls only reach Track in the simulator; it must not disturb state.
	for i := 0; i < 100; i++ {
		p.Track(call)
	}
	if p.ConfidentHit(0x80) {
		t.Errorf("tracking calls created a loop entry")
	}
}
