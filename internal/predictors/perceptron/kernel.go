package perceptron

import (
	"mbplib/internal/bp"
	"mbplib/internal/utils"
)

// This file is the hashed-perceptron bp.BatchPredictor kernel. The scalar
// path hashes every table twice per trained branch — once computing the
// weight sum in Predict and again addressing the update in Train — and pays
// three interface calls per event. The kernel computes each table index
// once into the kidx scratch and reuses it for the update, folds with the
// unrolled branch-free XorFoldWide (narrow tables keep the generic fold),
// and hoists the outcome out of the weight-update loop (AddClamped) so the
// row update carries no data-dependent branches. The adaptive-threshold
// bookkeeping is kept verbatim from Train: its updates are rare and its
// exact sequencing is part of the serialized state.

// PredictBatch implements bp.BatchPredictor: the pure batched read path.
// Unlike Predict it does not touch the sum cache, which the contract
// permits — it must only fill out with what Predict would return.
func (p *Predictor) PredictBatch(branches []bp.Branch, out []bp.Prediction) {
	for i := range branches {
		out[i] = bp.Prediction(p.sum(branches[i].IP) >= 0)
	}
}

// TrainBatch implements bp.BatchPredictor: the fused predict+train kernel,
// byte-identical in effect to the scalar Predict/Train/Track sequence,
// including the serialized sum cache: lastIP/lastSum end at the last
// conditional branch's values and haveSum ends false, exactly as a
// trailing Track leaves them.
func (p *Predictor) TrainBatch(branches []bp.Branch, out []bp.Prediction) {
	if len(branches) == 0 {
		return
	}
	tables, folded, lengths, logSize := p.tables, p.folded, p.lengths, p.logSize
	kidx := p.kidx
	wmin, wmax := tables[0][0].Bounds()
	var lastIP uint64
	var lastSum int
	haveCond := false
	for i := range branches {
		b := &branches[i]
		taken := b.Taken
		if b.Opcode.IsConditional() {
			ip := b.IP
			path := p.phist.Packed()
			s := 0
			for t := range tables {
				h := folded[t].Value()
				pt := uint64(0)
				if lengths[t] >= 8 {
					pt = path
				}
				v := ip ^ h ^ (pt << 1) ^ uint64(t)*0x9e3779b97f4a7c15
				var idx uint64
				if logSize >= 10 {
					idx = utils.XorFoldWide(v, logSize)
				} else {
					idx = utils.XorFold(v, logSize)
				}
				kidx[t] = uint32(idx)
				s += tables[t][idx].Get()
			}
			pred := s >= 0
			out[i] = bp.Prediction(pred)
			mag := s
			if mag < 0 {
				mag = -mag
			}
			mispredicted := pred != taken
			if mispredicted || mag <= p.theta {
				p.trainings++
				d := int32(-1)
				if taken {
					d = 1
				}
				for t := range tables {
					tables[t][kidx[t]].AddClamped(d, wmin, wmax)
				}
			}
			if mispredicted {
				p.tc.Add(1)
				if p.tc.Get() == p.tc.Max() {
					p.theta++
					p.tc.Set(0)
				}
			} else if mag <= p.theta {
				p.tc.Add(-1)
				if p.tc.Get() == p.tc.Min() {
					if p.theta > 1 {
						p.theta--
					}
					p.tc.Set(0)
				}
			}
			lastIP, lastSum, haveCond = ip, s, true
		}
		p.ghist.Push(taken)
		p.phist.Push(b.IP >> 2)
		for t := range folded {
			if lengths[t] == 0 {
				continue
			}
			folded[t].Update(taken, p.ghist.Bit(lengths[t]))
		}
	}
	if haveCond {
		p.lastIP, p.lastSum = lastIP, lastSum
	}
	p.haveSum = false
}
