package perceptron

import (
	"testing"

	"mbplib/internal/predictors/bimodal"
	"mbplib/internal/predictors/predtest"
	"mbplib/internal/tracegen"
)

func TestLearnsConstant(t *testing.T) {
	if acc := predtest.Drive(New(), 0x40, predtest.Constant(true, 400)); acc < 0.99 {
		t.Errorf("perceptron on constant stream: accuracy %v", acc)
	}
}

func TestLearnsPattern(t *testing.T) {
	if acc := predtest.Drive(New(), 0x40, predtest.Pattern("TTNTNNT", 4000)); acc < 0.97 {
		t.Errorf("perceptron on period-7 pattern: accuracy %v", acc)
	}
}

func TestLearnsLongPattern(t *testing.T) {
	// Period 40 exceeds classic 2-level histories but fits the 48/96-bit
	// tables.
	pattern := "TTTTTTTTTTTTTTTTTTTTNNNNNNNNNNNNNNNNNNNN"
	if acc := predtest.Drive(New(), 0x40, predtest.Pattern(pattern, 12000)); acc < 0.9 {
		t.Errorf("perceptron on period-40 pattern: accuracy %v", acc)
	}
}

func TestBeatsBimodalOnCorrelated(t *testing.T) {
	spec := tracegen.Spec{
		Name: "corr", Seed: 5, Branches: 60000,
		Kernels: []tracegen.KernelSpec{{Kind: tracegen.Correlated, Feeders: 6}},
	}
	pAcc := predtest.AccuracyOnSpec(t, New(), spec)
	bAcc := predtest.AccuracyOnSpec(t, bimodal.New(), spec)
	if pAcc <= bAcc+0.05 {
		t.Errorf("perceptron accuracy %v not clearly above bimodal %v", pAcc, bAcc)
	}
}

func TestAdaptiveThresholdMoves(t *testing.T) {
	p := New()
	before := p.theta
	spec := predtest.MixedSpec(30000)
	_ = predtest.AccuracyOnSpec(t, p, spec)
	stats := p.Statistics()
	if stats["weight_trainings"].(uint64) == 0 {
		t.Errorf("no weight trainings recorded")
	}
	after := stats["threshold"].(int)
	if after == before {
		t.Logf("threshold unchanged at %d (allowed, but unusual on noisy input)", after)
	}
	if after < 1 {
		t.Errorf("threshold fell below 1: %d", after)
	}
}

func TestContract(t *testing.T) {
	p := New()
	predtest.CheckPredictIsPure(t, p, []uint64{0x40, 0x80})
	predtest.CheckMetadata(t, p)
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(WithHistoryLengths([]int{0})) },
		func() { New(WithHistoryLengths([]int{5, 3})) },
		func() { New(WithLogSize(0)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid config accepted")
				}
			}()
			f()
		}()
	}
}

func TestMixedWorkload(t *testing.T) {
	if acc := predtest.AccuracyOnSpec(t, New(), predtest.MixedSpec(50000)); acc < 0.7 {
		t.Errorf("perceptron accuracy on mixed workload = %v", acc)
	}
}
