package perceptron

import (
	"testing"

	"mbplib/internal/bp"
	"mbplib/internal/predictors/predtest"
)

// TestKernelZeroAlloc pins the batch kernel's zero-allocation steady state;
// the kernel's per-table index scratch (kidx) is preallocated in New, and
// this guard keeps it that way.
func TestKernelZeroAlloc(t *testing.T) {
	predtest.CheckKernelZeroAlloc(t, func() bp.Predictor { return New() }, 4096)
}
